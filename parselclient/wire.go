// Package parselclient is the Go client for parseld, the selection
// daemon, and the canonical definition of its JSON wire format: the
// daemon's handlers (parsel/internal/serve) marshal and unmarshal these
// same types, so client and server cannot drift.
//
// # Wire format
//
// Every query is an HTTP POST of a JSON Request to one of the
// endpoints:
//
//	/v1/select     {"shards": [[...]], "rank": R}
//	/v1/median     {"shards": [[...]]}
//	/v1/quantile   {"shards": [[...]], "q": Q}
//	/v1/quantiles  {"shards": [[...]], "qs": [Q...]}
//	/v1/ranks      {"shards": [[...]], "ranks": [R...]}
//	/v1/topk       {"shards": [[...]], "k": K}
//	/v1/bottomk    {"shards": [[...]], "k": K}
//	/v1/summary    {"shards": [[...]]}
//
// Resident datasets restore the paper's operating model — the keys are
// already distributed, queries amortize over them:
//
//	PUT    /v1/datasets/{id}        {"shards": [[...]]}    upload once
//	POST   /v1/datasets/{id}/query  {"kind": "select", "rank": R, ...}
//	GET    /v1/datasets/{id}        (info)
//	DELETE /v1/datasets/{id}
//
// An upload ships the shards once into resident per-processor storage;
// every later query carries parameters only (see DatasetQuery — same
// field rules as the shard-carrying endpoints, keyed by "kind") and is
// answered bit-identically to posting the same shards per query.
// Datasets are TTL-evicted when idle and accounted against a
// resident-bytes budget: an upload that would exceed it is refused with
// 413 "resident_budget" in constant time, never by evicting live data.
//
// "shards" is the sharded population: one array of int64 keys per
// simulated processor, exactly as the library's [][]K entry points take
// it. Any request may carry "timeout_ms", a deadline on pool admission:
// if every simulated machine is still busy after that long, the daemon
// answers 429 with code "pool_timeout" instead of queueing forever. A
// query that has started always runs to completion.
//
// Successful queries return 200 with a Response: the scalar endpoints
// fill "value", the multi-value endpoints "values" (aligned with the
// request), summary fills "summary", and every response carries
// "report" — the full simulated-machine report (simulated seconds,
// iterations, message and byte totals), bit-identical to what the
// in-process library returns for the same query.
//
// Failures return a JSON ErrorBody with a stable machine-readable code
// (see the Code constants) and an HTTP status: 400 for invalid
// requests, 404/405 for routing mistakes, 413 for oversized bodies,
// 429 for admission failures (queue full or pool timeout), 503 while
// draining, 500 for internal faults.
package parselclient

import "parsel"

// Key is the set of key kinds the daemon serves: one kind-dispatched
// pool per kind behind a single process. int64 is the historical
// default — requests that carry no "key_kind" field and no
// X-Parsel-Kind header are int64 requests, so pre-multi-kind clients
// keep working unchanged.
type Key interface {
	int64 | float64 | string
}

// Key kind names carried in the wire's "key_kind" fields and the
// X-Parsel-Kind header.
const (
	KeyKindInt64   = "int64"
	KeyKindFloat64 = "float64"
	KeyKindString  = "string"
)

// KindHeader is the request header naming the key kind of an upload
// body (JSON or binary frame). The JSON "key_kind" body field is
// equivalent; when both are present they must agree. Binary frame
// uploads name their kind authoritatively in the frame header itself —
// the HTTP header is then a cross-check.
const KindHeader = "X-Parsel-Kind"

// KeyKindOf returns the wire name of key kind K.
func KeyKindOf[K Key]() string {
	var z K
	switch any(z).(type) {
	case float64:
		return KeyKindFloat64
	case string:
		return KeyKindString
	default:
		return KeyKindInt64
	}
}

// Content types of the two wire encodings. JSON is the default and is
// always supported; the binary frame encoding is negotiated per
// request — Content-Type on a dataset upload selects the snapshot
// binary format for the body, Accept on a query selects the result
// frame for the response (see Client.Binary). Error responses are
// always JSON regardless of Accept.
const (
	// ContentTypeJSON is the default encoding of every body.
	ContentTypeJSON = "application/json"
	// ContentTypeFrame is the binary frame encoding: uploads carry the
	// internal/snapshot dataset format (versioned header, CRC-32C per
	// section, per-proc shard extents — byte-identical to the daemon's
	// durable snapshots), responses carry the result frame (per-result
	// JSON metadata section plus a flat int64 values section, each
	// CRC-checked).
	ContentTypeFrame = "application/x-parsel-frame"
)

// RequestOf is the JSON body of every query endpoint, generic over the
// key kind. Pointer fields distinguish "absent" from a meaningful zero
// (rank 0 is invalid, but q=0 and k=0 are not).
type RequestOf[K Key] struct {
	// KeyKind names the key kind of Shards (one of the KeyKind
	// constants). Empty means int64, so int64 requests are
	// byte-identical to the pre-multi-kind wire.
	KeyKind string `json:"key_kind,omitempty"`
	// Shards is the sharded population, one slice of keys per simulated
	// processor.
	Shards [][]K `json:"shards"`
	// Rank is the 1-based target rank (select).
	Rank *int64 `json:"rank,omitempty"`
	// Ranks are the 1-based target ranks (ranks).
	Ranks []int64 `json:"ranks,omitempty"`
	// Q is the quantile in [0,1] (quantile).
	Q *float64 `json:"q,omitempty"`
	// Qs are the quantiles in [0,1] (quantiles).
	Qs []float64 `json:"qs,omitempty"`
	// K is the element count (topk, bottomk).
	K *int `json:"k,omitempty"`
	// TimeoutMS bounds the wait for a free simulated machine, in
	// milliseconds. 0 means the server's default admission timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Request is the int64 instantiation of RequestOf — the historical
// wire type, unchanged on the wire.
type Request = RequestOf[int64]

// Report mirrors parsel.Report on the wire.
type Report struct {
	SimSeconds     float64 `json:"sim_seconds"`
	BalanceSeconds float64 `json:"balance_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Iterations     int     `json:"iterations"`
	Unsuccessful   int     `json:"unsuccessful"`
	Messages       int64   `json:"messages"`
	Bytes          int64   `json:"bytes"`
}

// WireReport converts a library report to its wire form.
func WireReport(r parsel.Report) Report {
	return Report{
		SimSeconds:     r.SimSeconds,
		BalanceSeconds: r.BalanceSeconds,
		WallSeconds:    r.WallSeconds,
		Iterations:     r.Iterations,
		Unsuccessful:   r.Unsuccessful,
		Messages:       r.Messages,
		Bytes:          r.Bytes,
	}
}

// Report converts the wire form back to the library report. JSON
// round-trips float64 exactly (Go emits the shortest representation
// that parses back bit-identically), so simulated metrics survive the
// wire unchanged.
func (r Report) Report() parsel.Report {
	return parsel.Report{
		SimSeconds:     r.SimSeconds,
		BalanceSeconds: r.BalanceSeconds,
		WallSeconds:    r.WallSeconds,
		Iterations:     r.Iterations,
		Unsuccessful:   r.Unsuccessful,
		Messages:       r.Messages,
		Bytes:          r.Bytes,
	}
}

// SummaryOf is the five-number summary on the wire, generic over the
// key kind.
type SummaryOf[K Key] struct {
	Min    K `json:"min"`
	Q1     K `json:"q1"`
	Median K `json:"median"`
	Q3     K `json:"q3"`
	Max    K `json:"max"`
}

// Summary is the int64 instantiation of SummaryOf.
type Summary = SummaryOf[int64]

// ResponseOf is the 200 body of every query endpoint, generic over the
// key kind.
type ResponseOf[K Key] struct {
	// KeyKind names the key kind of the result values; empty means
	// int64, so int64 responses are byte-identical to the
	// pre-multi-kind wire.
	KeyKind string `json:"key_kind,omitempty"`
	// Value is the selected element (select, median, quantile).
	Value *K `json:"value,omitempty"`
	// Values are the selected elements aligned with the request
	// (quantiles, ranks) or ordered by rank (topk, bottomk). A k=0
	// result is an empty array, not null (omitzero keeps it on the
	// wire).
	Values []K `json:"values,omitzero"`
	// Summary is the five-number summary (summary).
	Summary *SummaryOf[K] `json:"summary,omitempty"`
	// Report is the simulated-machine report of the run.
	Report Report `json:"report"`
}

// Response is the int64 instantiation of ResponseOf — the historical
// wire type, unchanged on the wire.
type Response = ResponseOf[int64]

// DatasetUploadOf is the JSON body of PUT /v1/datasets/{id}: the one
// time the keys cross the wire. The daemon copies the shards into
// resident per-processor storage (snapshot-isolated, pinned to the
// machine shape len(shards)) and every later query against the dataset
// carries parameters only.
type DatasetUploadOf[K Key] struct {
	// KeyKind names the key kind of Shards (one of the KeyKind
	// constants); empty means int64. The X-Parsel-Kind request header
	// is equivalent; when both are present they must agree or the
	// upload is refused with bad_kind.
	KeyKind string `json:"key_kind,omitempty"`
	// Shards is the sharded population, one slice of keys per simulated
	// processor, exactly as the query endpoints take it.
	Shards [][]K `json:"shards"`
}

// DatasetUpload is the int64 instantiation of DatasetUploadOf.
type DatasetUpload = DatasetUploadOf[int64]

// Query kinds accepted by POST /v1/datasets/{id}/query; each mirrors
// the shard-carrying endpoint of the same name.
const (
	KindSelect    = "select"
	KindMedian    = "median"
	KindQuantile  = "quantile"
	KindQuantiles = "quantiles"
	KindRanks     = "ranks"
	KindTopK      = "topk"
	KindBottomK   = "bottomk"
	KindSummary   = "summary"
)

// DatasetQuery is the JSON body of POST /v1/datasets/{id}/query: any
// query of the daemon's surface, addressed at resident shards — the
// body carries no keys. Field requirements per kind match the
// shard-carrying endpoints (rank for select, q for quantile, ...).
type DatasetQuery struct {
	// Kind picks the query (one of the Kind constants).
	Kind string `json:"kind"`
	// KeyKind optionally names the key kind the caller believes the
	// dataset holds (one of the KeyKind constants). The dataset itself
	// is authoritative — the field exists as a cross-check: a mismatch
	// is refused with bad_kind instead of silently answering with keys
	// of another type. Empty skips the check.
	KeyKind string `json:"key_kind,omitempty"`
	// Rank is the 1-based target rank (select).
	Rank *int64 `json:"rank,omitempty"`
	// Ranks are the 1-based target ranks (ranks).
	Ranks []int64 `json:"ranks,omitempty"`
	// Q is the quantile in [0,1] (quantile).
	Q *float64 `json:"q,omitempty"`
	// Qs are the quantiles in [0,1] (quantiles).
	Qs []float64 `json:"qs,omitempty"`
	// K is the element count (topk, bottomk).
	K *int `json:"k,omitempty"`
	// TimeoutMS bounds the wait for a free simulated machine, in
	// milliseconds. 0 means the server's default admission timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DatasetQueryMany is the JSON body of POST /v1/datasets/{id}/querymany:
// a batch of independent queries against one resident dataset, answered
// in a single round trip. Items may mix kinds freely; the daemon fans
// them across its machine pool and results align with the request.
// Per-item failures (a rank out of range, a pool timeout) are reported
// per item — one bad query never poisons the batch.
type DatasetQueryMany struct {
	// Queries are the batch items, validated exactly like single
	// /query bodies. Per-item timeout_ms must be 0: the batch shares
	// one admission deadline, TimeoutMS below.
	Queries []DatasetQuery `json:"queries"`
	// TimeoutMS bounds the whole batch's wait for simulated machines,
	// in milliseconds. 0 means the server's default admission timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryManyResultOf is one item's outcome in a QueryManyResponseOf:
// either the embedded response fields (success) or Error (failure),
// never both.
type QueryManyResultOf[K Key] struct {
	ResponseOf[K]
	// Error is the item's failure, carrying the same stable wire codes
	// single queries map onto HTTP statuses; nil on success.
	Error *ErrorDetail `json:"error,omitempty"`
}

// QueryManyResult is the int64 instantiation of QueryManyResultOf.
type QueryManyResult = QueryManyResultOf[int64]

// QueryManyResponseOf is the 200 body of POST
// /v1/datasets/{id}/querymany; Results align with the request's
// Queries.
type QueryManyResponseOf[K Key] struct {
	Results []QueryManyResultOf[K] `json:"results"`
}

// QueryManyResponse is the int64 instantiation of QueryManyResponseOf.
type QueryManyResponse = QueryManyResponseOf[int64]

// DatasetInfo describes one resident dataset: the 200 body of upload,
// info and delete requests on /v1/datasets/{id}.
type DatasetInfo struct {
	// ID is the caller-chosen dataset identifier.
	ID string `json:"id"`
	// KeyKind names the dataset's key kind (one of the KeyKind
	// constants); empty means int64.
	KeyKind string `json:"key_kind,omitempty"`
	// Tenant names the tenant the dataset's resident bytes are charged
	// to; empty when the daemon runs without tenants.
	Tenant string `json:"tenant,omitempty"`
	// Procs is the machine shape: one simulated processor per shard.
	Procs int `json:"procs"`
	// N is the resident population size.
	N int64 `json:"n"`
	// Bytes is the resident size accounted against the daemon's budget.
	Bytes int64 `json:"bytes"`
	// ExpiresInMS is how long until TTL eviction if the dataset is not
	// touched again (uploads and queries reset the clock).
	ExpiresInMS int64 `json:"expires_in_ms"`
	// Restored reports that this dataset was recovered from a snapshot
	// at daemon startup rather than uploaded over the wire in this
	// process's lifetime. A re-upload of the id clears it.
	Restored bool `json:"restored,omitempty"`
}

// Code is a stable machine-readable wire error code. Every non-2xx
// response body names one; both halves of the wire share this single
// type — the daemon's handlers write the constants below and the
// client maps them back onto typed errors (see APIError.Is) — so the
// two can never drift. Codes are stable across releases; matching on
// them is the supported way to branch on failures.
type Code string

// String returns the code's wire spelling.
func (c Code) String() string { return string(c) }

// ErrorDetail is the machine-readable error payload.
type ErrorDetail struct {
	// Code is one of the Code constants — stable across releases.
	Code Code `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// Stable wire error codes.
const (
	// CodeBadJSON: the body is not valid JSON for the endpoint.
	CodeBadJSON Code = "bad_json"
	// CodeMissingField: a field the endpoint requires is absent.
	CodeMissingField Code = "missing_field"
	// CodeLimitExceeded: the request exceeds a configured server limit
	// (shard count, rank count, timeout).
	CodeLimitExceeded Code = "limit_exceeded"
	// CodeTooLarge: the body exceeds the server's byte limit (HTTP 413).
	CodeTooLarge Code = "too_large"
	// CodeQueueFull: the admission queue is full; retry later (429).
	CodeQueueFull Code = "queue_full"
	// CodePoolTimeout: every machine stayed busy past the deadline (429).
	CodePoolTimeout Code = "pool_timeout"
	// CodeShuttingDown: the daemon is draining (503).
	CodeShuttingDown Code = "shutting_down"
	// CodeRankRange: a rank or k is outside [1, n] (400).
	CodeRankRange Code = "rank_range"
	// CodeBadQuantile: a quantile is outside [0,1] or not a number (400).
	CodeBadQuantile Code = "bad_quantile"
	// CodeNoData: the shards hold zero elements (400).
	CodeNoData Code = "no_data"
	// CodeNoShards: the request carries no shards (400).
	CodeNoShards Code = "no_shards"
	// CodeDatasetNotFound: no resident dataset has this id — never
	// uploaded, deleted, or TTL-evicted (404).
	CodeDatasetNotFound Code = "dataset_not_found"
	// CodeResidentBudget: admitting the upload would exceed the daemon's
	// resident-bytes budget or dataset count; rejected in constant time,
	// without evicting live data (413).
	CodeResidentBudget Code = "resident_budget"
	// CodeBadKind: a dataset query's kind is not one of the Kind
	// constants, a request's key_kind is not one of the KeyKind
	// constants, or the key kind disagrees with the dataset it
	// addresses (400).
	CodeBadKind Code = "bad_kind"
	// CodeUnknownTenant: the daemon runs with tenants configured and
	// the request carries no Authorization bearer token, or one that
	// matches no tenant (401).
	CodeUnknownTenant Code = "unknown_tenant"
	// CodeTenantBudget: admitting the upload would exceed the calling
	// tenant's resident-bytes budget or dataset quota; rejected in
	// constant time, without evicting live data (413). The global
	// resident budget still answers CodeResidentBudget.
	CodeTenantBudget Code = "tenant_budget"
	// CodeBadDatasetID: the dataset id in the URL is empty, too long, or
	// carries characters outside [A-Za-z0-9._-] (400).
	CodeBadDatasetID Code = "bad_dataset_id"
	// CodeBadFrame: a binary-framed upload body failed to decode —
	// truncated, bit-flipped, version-skewed or not the frame format at
	// all (400). Deterministic, never retried: resending the same bytes
	// cannot change the verdict.
	CodeBadFrame Code = "bad_frame"
	// CodeMethodNotAllowed: wrong HTTP method (405).
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeNotFound: unknown endpoint (404).
	CodeNotFound Code = "not_found"
	// CodeInternal: an unexpected server fault (500).
	CodeInternal Code = "internal"
)

// Codes lists every stable wire code, for exhaustive handling (the
// code↔typed-error round-trip test ranges over it; a code added
// without updating the mappings fails there).
func Codes() []Code {
	return []Code{
		CodeBadJSON, CodeMissingField, CodeLimitExceeded, CodeTooLarge,
		CodeQueueFull, CodePoolTimeout, CodeShuttingDown, CodeRankRange,
		CodeBadQuantile, CodeNoData, CodeNoShards, CodeDatasetNotFound,
		CodeResidentBudget, CodeBadKind, CodeUnknownTenant, CodeTenantBudget,
		CodeBadDatasetID, CodeBadFrame, CodeMethodNotAllowed, CodeNotFound,
		CodeInternal,
	}
}

// PoolStats mirrors parsel.PoolStats plus the pool's capacity.
type PoolStats struct {
	Creates     int64 `json:"creates"`
	Hits        int64 `json:"hits"`
	Reshapes    int64 `json:"reshapes"`
	Waits       int64 `json:"waits"`
	Timeouts    int64 `json:"timeouts"`
	Resident    int64 `json:"resident"`
	Idle        int64 `json:"idle"`
	MaxMachines int   `json:"max_machines"`
}

// ServerStats counts what the HTTP front-end did.
type ServerStats struct {
	// Requests counts every query request received (excluding /v1/stats
	// and /healthz).
	Requests int64 `json:"requests"`
	// OK counts 200 responses.
	OK int64 `json:"ok"`
	// ClientErrors counts 4xx responses other than admission failures.
	ClientErrors int64 `json:"client_errors"`
	// ServerErrors counts 5xx responses.
	ServerErrors int64 `json:"server_errors"`
	// Timeouts counts 429 pool_timeout responses.
	Timeouts int64 `json:"timeouts"`
	// Rejected counts 429 queue_full responses.
	Rejected int64 `json:"rejected"`
	// Inflight is the number of requests currently admitted (a gauge).
	Inflight int64 `json:"inflight"`
	// Panics counts handler panics caught by the recovery middleware;
	// each also answered 500 and counted as a ServerError.
	Panics int64 `json:"panics,omitempty"`
	// Draining reports whether the daemon has begun graceful shutdown.
	Draining bool `json:"draining"`
}

// SimStats aggregates the simulated-machine metrics over served
// queries.
type SimStats struct {
	Queries    int64   `json:"queries"`
	SimSeconds float64 `json:"sim_seconds_total"`
	Messages   int64   `json:"messages_total"`
	Bytes      int64   `json:"bytes_total"`
}

// DatasetStats describes the daemon's resident-dataset state: the
// gauges (Count, ResidentBytes against BudgetBytes) and the lifecycle
// counters.
type DatasetStats struct {
	// Count is the number of resident datasets (a gauge).
	Count int64 `json:"count"`
	// ResidentBytes is the total resident size of all datasets (a
	// gauge), never above BudgetBytes.
	ResidentBytes int64 `json:"resident_bytes"`
	// BudgetBytes is the configured resident-bytes budget.
	BudgetBytes int64 `json:"budget_bytes"`
	// Uploads counts accepted uploads (including replacements).
	Uploads int64 `json:"uploads"`
	// Replaced counts uploads that overwrote an existing id.
	Replaced int64 `json:"replaced"`
	// Deletes counts explicit DELETE removals.
	Deletes int64 `json:"deletes"`
	// Expired counts TTL evictions.
	Expired int64 `json:"expired"`
	// Rejected counts uploads refused for the resident budget (413).
	Rejected int64 `json:"rejected"`
	// NotFound counts queries/deletes addressed at absent ids (404).
	NotFound int64 `json:"not_found"`
	// Queries counts dataset-path queries served OK.
	Queries int64 `json:"queries"`
	// Exports counts snapshot-stream exports served OK (GET
	// /v1/datasets/{id}/snapshot) — the replication traffic a cluster
	// router generates when it ships datasets between nodes.
	Exports int64 `json:"exports,omitempty"`
}

// TenantReloadResult answers POST /v1/admin/tenants/reload.
type TenantReloadResult struct {
	// Tenants is how many tenants the reloaded configuration holds.
	Tenants int `json:"tenants"`
}

// TenantStats is one tenant's block in Stats.Tenants: the tenant's
// share of the resident-dataset ledger plus its configured limits.
type TenantStats struct {
	// Datasets is the tenant's resident dataset count (a gauge).
	Datasets int64 `json:"datasets"`
	// ResidentBytes is the tenant's resident size (a gauge), never
	// above MaxResidentBytes.
	ResidentBytes int64 `json:"resident_bytes"`
	// MaxResidentBytes is the tenant's resident-bytes budget; 0 means
	// no per-tenant byte limit (the global budget still applies).
	MaxResidentBytes int64 `json:"max_resident_bytes,omitempty"`
	// MaxDatasets is the tenant's dataset quota; 0 means no per-tenant
	// count limit.
	MaxDatasets int `json:"max_datasets,omitempty"`
	// Requests counts the tenant's authenticated requests.
	Requests int64 `json:"requests"`
	// Rejected counts the tenant's uploads refused for its budget or
	// quota (413 tenant_budget).
	Rejected int64 `json:"rejected"`
}

// SnapshotStats describes the daemon's dataset persistence: disabled
// (all zero, Enabled false) unless parseld runs with -snapshot-dir.
type SnapshotStats struct {
	// Enabled reports whether a snapshot directory is configured.
	Enabled bool `json:"enabled"`
	// Restored counts datasets recovered from snapshots at startup.
	Restored int64 `json:"restored"`
	// RestoreSkipped counts manifest entries not recovered at startup:
	// expired TTLs, missing files, or datasets the budget/count caps
	// could not admit.
	RestoreSkipped int64 `json:"restore_skipped"`
	// Quarantined counts corrupt/truncated/version-skewed snapshot
	// files renamed aside (never loaded, never fatal).
	Quarantined int64 `json:"quarantined"`
	// Persists counts snapshot writes (uploads persisted in the
	// background plus the synchronous flush on drain).
	Persists int64 `json:"persists"`
	// PersistErrors counts snapshot writes that failed. The dataset
	// stays resident and serving; the next persist of its id (a later
	// upload, or the drain flush) retries the write.
	PersistErrors int64 `json:"persist_errors"`
	// SnapshotBytes is the on-disk size of all live snapshot files (a
	// gauge).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Dirty is the number of datasets whose latest state is not yet on
	// disk (a gauge; zero after a graceful drain).
	Dirty int64 `json:"dirty"`
	// LastPersistUnixMS stamps the most recent successful snapshot
	// write, in Unix milliseconds; zero before the first.
	LastPersistUnixMS int64 `json:"last_persist_unix_ms"`
	// Degraded reports that the most recent snapshot persist failed and
	// no write has succeeded since: the daemon keeps serving (uploads
	// never fail on persistence), but /healthz reports degraded until a
	// write lands again.
	Degraded bool `json:"degraded,omitempty"`
}

// Health states reported by GET /healthz; each maps to a distinct HTTP
// status so a probe can branch on the status code alone.
const (
	// HealthOK (HTTP 200): serving normally.
	HealthOK = "ok"
	// HealthDegraded (HTTP 207): still serving every endpoint, but a
	// background obligation is failing — currently, snapshot persistence
	// (the Reason says which). Queries remain safe; durability is not.
	HealthDegraded = "degraded"
	// HealthDraining (HTTP 503): graceful shutdown has begun; in-flight
	// queries finish, new work is refused.
	HealthDraining = "draining"
)

// HealthStatus is the body of GET /healthz.
type HealthStatus struct {
	// Status is one of the Health constants.
	Status string `json:"status"`
	// Reason says why the daemon is not plain-healthy; empty when OK.
	Reason string `json:"reason,omitempty"`
}

// Bucket is one cumulative histogram bucket: Count observations were
// <= LE seconds.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Histogram is a host-latency histogram (seconds), cumulative like a
// Prometheus histogram; the implicit last bucket is +Inf = Count.
type Histogram struct {
	Count      int64    `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	Pool      PoolStats     `json:"pool"`
	Server    ServerStats   `json:"server"`
	Sim       SimStats      `json:"sim"`
	Datasets  DatasetStats  `json:"datasets"`
	Snapshots SnapshotStats `json:"snapshots"`
	Latency   Histogram     `json:"latency"`
	// Tenants maps tenant name to its ledger block; absent when the
	// daemon runs without tenants.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}
