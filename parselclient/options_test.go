package parselclient

import (
	"net/http"
	"testing"
	"time"
)

// TestNewFunctionalOptions pins the redesigned constructor: every
// option lands on its field, a literal nil option (what pre-options
// call sites passed for "no custom http client") is tolerated, and the
// exported fields remain settable afterwards for callers that predate
// the options.
func TestNewFunctionalOptions(t *testing.T) {
	hc := &http.Client{}
	c := New("http://example:7075/",
		WithHTTPClient(hc),
		WithToken("tok-acme"),
		WithBinary(true),
		WithRetry(RetryPolicy{MaxAttempts: 4}),
		WithLimits(ClientLimits{QueryTimeout: 2 * time.Second, MaxResponseBytes: 1 << 20}),
		nil,
	)
	if c.base != "http://example:7075" {
		t.Errorf("base = %q, want trailing slash trimmed", c.base)
	}
	if c.hc != hc {
		t.Error("WithHTTPClient did not land")
	}
	if c.Token != "tok-acme" || !c.Binary || c.Retry.MaxAttempts != 4 {
		t.Errorf("options did not land: token=%q binary=%v retry=%+v", c.Token, c.Binary, c.Retry)
	}
	if c.QueryTimeout != 2*time.Second || c.MaxResponseBytes != 1<<20 {
		t.Errorf("limits did not land: %v, %d", c.QueryTimeout, c.MaxResponseBytes)
	}

	// WithHTTPClient(nil) keeps the default rather than breaking every
	// request.
	d := New("http://x", WithHTTPClient(nil))
	if d.hc != http.DefaultClient {
		t.Error("WithHTTPClient(nil) replaced the default client")
	}

	// The pre-options surface: bare New plus field assignment.
	e := New("http://y")
	e.Token = "legacy"
	e.Binary = true
	e.Retry = RetryPolicy{MaxAttempts: 2}
	if e.hc != http.DefaultClient || e.Token != "legacy" || !e.Binary {
		t.Errorf("legacy field configuration broken: %+v", e)
	}
}
