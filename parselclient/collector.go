package parselclient

import (
	"context"
	"strings"

	"parsel/internal/obs"
)

// RequestIDHeader carries the request id that ties a client call to
// the server's structured logs: the client stamps it on every attempt
// of an operation (the same id across retries, and — through the
// cluster router — across failover attempts), and the daemon echoes it
// on the response and attaches it to every log line the request emits.
const RequestIDHeader = "X-Parsel-Request-Id"

// requestIDKey carries a caller-chosen request id through a context.
type requestIDKey struct{}

// WithRequestID returns a context whose client operations are traced
// under the given id instead of a freshly generated one — how a caller
// threads its own correlation id end to end. The id travels verbatim
// in RequestIDHeader; keep it header-safe (printable ASCII, no
// newlines).
func WithRequestID(ctx context.Context, id string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request id installed by WithRequestID.
func RequestIDFrom(ctx context.Context) (string, bool) {
	if ctx == nil {
		return "", false
	}
	id, ok := ctx.Value(requestIDKey{}).(string)
	return id, ok && id != ""
}

// NewRequestID draws a fresh random request id — the value the client
// stamps when the caller did not supply one via WithRequestID.
func NewRequestID() string { return obs.NewRequestID() }

// Collector receives per-operation telemetry from a Client — the hook
// that lands client-side retry behavior (and, via cluster.Config, the
// router's failover/ship/reupload events) in one scrapeable place,
// typically an obs.Registry owned by the embedding process.
//
// Implementations must be safe for concurrent use. A nil collector
// (the zero value) costs nothing: the client takes a nil-check branch
// and allocates no delta, which TestCollectorNilAllocs pins.
type Collector interface {
	// ClientOp reports one finished logical operation: op is the
	// normalized operation label ("GET /v1/stats",
	// "POST /v1/datasets/{id}/query" — dataset ids are collapsed so the
	// label space stays bounded), delta is the retry activity this one
	// operation added to the client's cumulative RetryStats, and err is
	// the operation's outcome. Router-level events arrive with op
	// "cluster.failover", "cluster.ship", "cluster.reupload" or
	// "cluster.shortfall" and a zero delta.
	ClientOp(op string, delta RetryStats, err error)
}

// WithCollector sets the telemetry hook (see Collector).
func WithCollector(col Collector) Option {
	return func(c *Client) { c.collector = col }
}

// opDelta allocates the per-operation RetryStats delta, or returns nil
// when no collector is listening — the fast path is one nil check.
func (c *Client) opDelta() *RetryStats {
	if c.collector == nil {
		return nil
	}
	return &RetryStats{}
}

// emitOp hands one finished operation to the collector. A nil delta
// (no collector at opDelta time) is a no-op.
func (c *Client) emitOp(method, path string, delta *RetryStats, err error) {
	if delta == nil || c.collector == nil {
		return
	}
	c.collector.ClientOp(opLabel(method, path), *delta, err)
}

// opLabel normalizes a method+path pair into a bounded label:
// per-dataset path segments collapse to {id} so one label covers every
// dataset.
func opLabel(method, path string) string {
	const pfx = "/v1/datasets/"
	if rest, ok := strings.CutPrefix(path, pfx); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			path = pfx + "{id}" + rest[i:]
		} else {
			path = pfx + "{id}"
		}
	}
	return method + " " + path
}
