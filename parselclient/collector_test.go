package parselclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// capturingCollector records every ClientOp call.
type capturingCollector struct {
	mu  sync.Mutex
	ops []struct {
		op    string
		delta RetryStats
		err   error
	}
}

func (cc *capturingCollector) ClientOp(op string, delta RetryStats, err error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.ops = append(cc.ops, struct {
		op    string
		delta RetryStats
		err   error
	}{op, delta, err})
}

// TestCollectorDeltas pins that the Collector hook sees each logical
// operation exactly once, with the retry activity of that operation
// alone as its delta.
func TestCollectorDeltas(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":{"code":"internal","message":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentTypeJSON)
		w.Write([]byte(`{"server":{},"pool":{},"latency":{}}`))
	}))
	defer ts.Close()

	cc := &capturingCollector{}
	c := New(ts.URL,
		WithCollector(cc),
		WithRetry(RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Millisecond,
			Seed:        1,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		}))
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if len(cc.ops) != 1 {
		t.Fatalf("collector saw %d ops, want 1: %+v", len(cc.ops), cc.ops)
	}
	got := cc.ops[0]
	if got.op != "GET /v1/stats" {
		t.Errorf("op = %q, want %q", got.op, "GET /v1/stats")
	}
	want := RetryStats{Requests: 1, Attempts: 3, Retries: 2}
	if got.delta != want {
		t.Errorf("delta = %+v, want %+v", got.delta, want)
	}
	if got.err != nil {
		t.Errorf("err = %v, want nil", got.err)
	}
	// The delta must equal the client's cumulative movement for this
	// single-op client.
	if cum := c.RetryStats(); cum != want {
		t.Errorf("cumulative = %+v, want %+v", cum, want)
	}
}

func TestOpLabel(t *testing.T) {
	cases := []struct{ method, path, want string }{
		{"GET", "/v1/stats", "GET /v1/stats"},
		{"PUT", "/v1/datasets/orders%2F2024", "PUT /v1/datasets/{id}"},
		{"POST", "/v1/datasets/abc/query", "POST /v1/datasets/{id}/query"},
		{"POST", "/v1/datasets/abc/querymany", "POST /v1/datasets/{id}/querymany"},
		{"POST", "/v1/select", "POST /v1/select"},
	}
	for _, tc := range cases {
		if got := opLabel(tc.method, tc.path); got != tc.want {
			t.Errorf("opLabel(%s, %s) = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}

// TestCollectorNilAllocs pins the documented contract that a client
// without a collector pays nothing for the hook: the per-operation
// delta stays nil and the emit funnel allocates nothing.
func TestCollectorNilAllocs(t *testing.T) {
	c := New("http://127.0.0.1:0")
	allocs := testing.AllocsPerRun(1000, func() {
		delta := c.opDelta()
		c.emitOp(http.MethodGet, "/v1/stats", delta, nil)
	})
	if allocs != 0 {
		t.Errorf("nil-collector funnel allocates %v per op, want 0", allocs)
	}
}

// TestRequestIDContext pins the ctx helpers and that the stamped header
// reaches the wire unchanged across retries.
func TestRequestIDContext(t *testing.T) {
	if _, ok := RequestIDFrom(context.Background()); ok {
		t.Error("empty context yielded a request id")
	}
	ctx := WithRequestID(context.Background(), "cafe0123deadbeef")
	if id, ok := RequestIDFrom(ctx); !ok || id != "cafe0123deadbeef" {
		t.Errorf("RequestIDFrom = %q %v", id, ok)
	}

	var mu sync.Mutex
	var seen []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(RequestIDHeader))
		mu.Unlock()
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":{"code":"internal","message":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentTypeJSON)
		w.Write([]byte(`{"server":{},"pool":{},"latency":{}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Seed:        1,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}))
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	mu.Lock()
	if len(seen) != 2 {
		mu.Unlock()
		t.Fatalf("server saw %d attempts, want 2", len(seen))
	}
	for i, id := range seen {
		if id != "cafe0123deadbeef" {
			t.Errorf("attempt %d carried id %q, want the caller's", i+1, id)
		}
	}
	// Without WithRequestID the client generates one id per operation
	// and keeps it across that operation's attempts.
	seen = nil
	mu.Unlock()
	calls.Store(0)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] == "" || seen[0] != seen[1] {
		t.Errorf("generated id not stable across retries: %v", seen)
	}
}
