package parselclient

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// failNTimes answers the first n requests with (status, code) and every
// later one 200 with body. It also records the DeadlineHeader values
// seen. Safe for the sequential traffic these tests generate.
type failNTimes struct {
	n          int64
	status     int
	code       Code
	retryAfter string
	body       string

	calls     atomic.Int64
	deadlines []string
}

func (f *failNTimes) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.deadlines = append(f.deadlines, r.Header.Get(DeadlineHeader))
	if f.calls.Add(1) <= f.n {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: f.code, Message: "injected"}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, f.body)
}

// noSleep is the fake-clock backoff for tests.
func noSleep(context.Context, time.Duration) error { return nil }

// retryClient builds a client against ts with the given policy.
func retryClient(ts *httptest.Server, p RetryPolicy) *Client {
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	c.Retry = p
	return c
}

// TestRetryZeroPolicySingleAttempt pins backward compatibility: the
// zero-value policy never retries.
func TestRetryZeroPolicySingleAttempt(t *testing.T) {
	h := &failNTimes{n: 100, status: 500, code: CodeInternal}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{})
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("want error from a failing daemon")
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("zero policy issued %d attempts, want 1", got)
	}
	if st := c.RetryStats(); st.Requests != 1 || st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("retry stats %+v, want one request, one attempt, no retries", st)
	}
}

// TestRetryRecoversFromTransientFaults checks the core loop: 5xx
// attempts are retried until the daemon answers, and the counters see
// it.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	h := &failNTimes{n: 2, status: 500, code: CodeInternal, body: `{}`}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 5, Sleep: noSleep})
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("retries did not heal two transient 500s: %v", err)
	}
	st := c.RetryStats()
	if st.Attempts != 3 || st.Retries != 2 || st.GaveUp != 0 {
		t.Errorf("retry stats %+v, want 3 attempts / 2 retries / 0 gave-up", st)
	}
}

// TestRetryUploadIsIdempotent checks that dataset PUT retries like any
// read: upload-generation semantics make a replayed PUT safe.
func TestRetryUploadIsIdempotent(t *testing.T) {
	h := &failNTimes{n: 1, status: 500, code: CodeInternal,
		body: `{"id":"d","procs":2,"n":5,"bytes":40,"expires_in_ms":1000}`}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 3, Sleep: noSleep})
	info, err := c.Dataset("d").Upload(context.Background(), [][]int64{{3, 1, 4}, {1, 5}})
	if err != nil {
		t.Fatalf("PUT did not retry the transient 500: %v", err)
	}
	if info.ID != "d" || info.N != 5 {
		t.Errorf("upload info %+v after retry", info)
	}
	if got := h.calls.Load(); got != 2 {
		t.Errorf("%d attempts, want 2", got)
	}
}

// TestRetryHonorsRetryAfter checks the server hint stretches the
// backoff and is surfaced on APIError for non-retrying clients.
func TestRetryHonorsRetryAfter(t *testing.T) {
	h := &failNTimes{n: 1, status: 429, code: CodeQueueFull, retryAfter: "2", body: `{}`}
	ts := httptest.NewServer(h)
	defer ts.Close()
	var slept []time.Duration
	c := retryClient(ts, RetryPolicy{MaxAttempts: 3,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }})
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Errorf("backoff %v, want the 2s Retry-After hint to dominate the 50ms base", slept)
	}
	if st := c.RetryStats(); st.RetryAfterHonored != 1 {
		t.Errorf("retry stats %+v, want RetryAfterHonored=1", st)
	}

	// A non-retrying client surfaces the hint on the error instead.
	h.calls.Store(0)
	c2 := retryClient(ts, RetryPolicy{})
	_, err := c2.Stats(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.RetryAfter != 2*time.Second {
		t.Errorf("error %v carries RetryAfter %v, want 2s", err, api.RetryAfter)
	}
}

// TestRetryNonRetryableFailsFast checks deterministic verdicts are
// never retried.
func TestRetryNonRetryableFailsFast(t *testing.T) {
	h := &failNTimes{n: 100, status: 400, code: CodeRankRange}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 5, Sleep: noSleep})
	rank := int64(99)
	_, err := c.Select(context.Background(), [][]int64{{1}}, rank)
	var api *APIError
	if !errors.As(err, &api) || api.Code != CodeRankRange {
		t.Fatalf("err %v, want rank_range", err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("non-retryable error provoked %d attempts, want 1", got)
	}
}

// TestRetryBudgetStopsAmplification checks the token bucket: once the
// burst is spent, errors surface instead of multiplying load.
func TestRetryBudgetStopsAmplification(t *testing.T) {
	h := &failNTimes{n: 1 << 30, status: 500, code: CodeInternal}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 100, BudgetBurst: 2, BudgetRatio: 1e-9, Sleep: noSleep})
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("want error once the budget is spent")
	}
	st := c.RetryStats()
	if st.Retries != 2 || st.BudgetExhausted != 1 {
		t.Errorf("retry stats %+v, want 2 retries then budget exhaustion", st)
	}
	// A second operation deposits ~nothing: no retries left at all.
	c.Stats(context.Background())
	if st = c.RetryStats(); st.BudgetExhausted != 2 || st.Retries != 2 {
		t.Errorf("retry stats %+v, want the drained bucket to refuse the second operation's retries", st)
	}
}

// TestRetryAttemptTimeoutIsRetryable checks a per-attempt deadline
// expiring does not end the operation while the caller's context is
// alive — and that exhausting attempts counts as giving up.
func TestRetryAttemptTimeoutIsRetryable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // stall until the attempt deadline fires
	}))
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 3, AttemptTimeout: 20 * time.Millisecond, Sleep: noSleep})
	_, err := c.Stats(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want the attempt deadline to surface after retries", err)
	}
	st := c.RetryStats()
	if st.Attempts != 3 || st.GaveUp != 1 {
		t.Errorf("retry stats %+v, want 3 attempts and one gave-up", st)
	}
}

// TestRetryRespectsCallerDeadline checks the loop never sleeps past the
// caller's context deadline: with no budget to back off in, the last
// real error surfaces immediately.
func TestRetryRespectsCallerDeadline(t *testing.T) {
	h := &failNTimes{n: 100, status: 500, code: CodeInternal}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := c.Stats(ctx)
	var api *APIError
	if !errors.As(err, &api) || api.Status != 500 {
		t.Fatalf("err %v, want the server's 500 surfaced rather than a deadline error", err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("%d attempts, want 1 (an hour-long backoff cannot fit a 200ms deadline)", got)
	}
	if st := c.RetryStats(); st.GaveUp != 1 {
		t.Errorf("retry stats %+v, want GaveUp=1", st)
	}
}

// TestDeadlineHeaderStamped checks end-to-end deadline propagation: a
// context deadline reaches the wire in milliseconds; no deadline, no
// header.
func TestDeadlineHeaderStamped(t *testing.T) {
	h := &failNTimes{body: `{}`}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := retryClient(ts, RetryPolicy{})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(h.deadlines) != 2 {
		t.Fatalf("saw %d requests, want 2", len(h.deadlines))
	}
	var ms int
	if _, err := errorsAsInt(h.deadlines[0], &ms); err != nil || ms <= 0 || ms > 500 {
		t.Errorf("deadline header %q, want integer milliseconds in (0, 500]", h.deadlines[0])
	}
	if h.deadlines[1] != "" {
		t.Errorf("deadline header %q on a request with no deadline, want none", h.deadlines[1])
	}
}

// errorsAsInt parses s as a base-10 int; a tiny helper so the header
// assertion reads clearly.
func errorsAsInt(s string, out *int) (int, error) {
	n := 0
	if s == "" {
		return 0, errors.New("empty")
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errors.New("not a number")
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n, nil
}

// TestRetryJitterDeterministicWithSeed pins the reproducibility hook:
// equal seeds draw equal backoff schedules.
func TestRetryJitterDeterministicWithSeed(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		h := &failNTimes{n: 4, status: 500, code: CodeInternal, body: `{}`}
		ts := httptest.NewServer(h)
		defer ts.Close()
		var slept []time.Duration
		c := retryClient(ts, RetryPolicy{MaxAttempts: 5, Seed: seed,
			Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }})
		if _, err := c.Stats(context.Background()); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 4 {
		t.Fatalf("schedule has %d sleeps, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at retry %d: %v vs %v", i, a, b)
		}
	}
}

// TestRetryableClassification pins the exported classification table.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"queue_full", &APIError{Status: 429, Code: CodeQueueFull}, true},
		{"pool_timeout", &APIError{Status: 429, Code: CodePoolTimeout}, true},
		{"shutting_down", &APIError{Status: 503, Code: CodeShuttingDown}, true},
		{"internal_500", &APIError{Status: 500, Code: CodeInternal}, true},
		{"opaque_429", &APIError{Status: 429, Code: CodeInternal}, true},
		{"opaque_502", &APIError{Status: 502, Code: CodeInternal}, true},
		{"not_implemented", &APIError{Status: 501, Code: CodeInternal}, false},
		{"rank_range", &APIError{Status: 400, Code: CodeRankRange}, false},
		{"not_found", &APIError{Status: 404, Code: CodeDatasetNotFound}, false},
		{"resident_budget", &APIError{Status: 413, Code: CodeResidentBudget}, false},
		{"too_large", &APIError{Status: 413, Code: CodeTooLarge}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"transport", io.ErrUnexpectedEOF, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackoffCap pins the exponential schedule shape.
func TestBackoffCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if got := backoffCap(p, i+1); got != w {
			t.Errorf("backoffCap(retry %d) = %v, want %v", i+1, got, w)
		}
	}
}
