package parselclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"time"

	"parsel"
)

// Client talks to a parseld daemon. The zero value is not usable;
// construct with New. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// QueryTimeout, when positive, is sent as timeout_ms on every query:
	// the server-side bound on waiting for a free simulated machine.
	// Independent of it, a context deadline also propagates as
	// timeout_ms (whichever is tighter), so a client deadline is honored
	// on the server rather than discovered by a dropped connection.
	QueryTimeout time.Duration

	// Retry configures transparent retries of transient failures (see
	// RetryPolicy; every operation on this wire is idempotent, so all of
	// them retry). The zero value disables retries. Configure it before
	// the client's first call; it must not be mutated concurrently with
	// calls.
	Retry RetryPolicy

	// retryMu guards the jitter stream and the token-bucket retry
	// budget; the counters are atomics on their own.
	retryMu    sync.Mutex
	rng        *rand.Rand
	budget     float64
	budgetInit bool
	retryCount retryCounters
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7075"). The optional http.Client configures
// transport details; nil means http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// APIError is a structured error response from the daemon.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable wire code (see the Code constants).
	Code string
	// Message is the human-readable detail.
	Message string
	// RetryAfter is the server's backoff hint from the Retry-After
	// header, if the response carried one; a retrying client waits at
	// least this long before the next attempt.
	RetryAfter time.Duration
}

// Error formats the error for humans.
func (e *APIError) Error() string {
	return fmt.Sprintf("parseld: %s (%d %s)", e.Message, e.Status, e.Code)
}

// ErrQueueFull reports that the daemon's admission queue was full; the
// request was rejected before queueing (HTTP 429, code "queue_full").
var ErrQueueFull = errors.New("parselclient: server admission queue full")

// ErrDatasetNotFound reports that no resident dataset has the requested
// id: never uploaded, deleted, or TTL-evicted (HTTP 404, code
// "dataset_not_found").
var ErrDatasetNotFound = errors.New("parselclient: dataset not found")

// ErrResidentBudget reports that an upload was refused because it would
// exceed the daemon's resident-bytes budget (HTTP 413, code
// "resident_budget").
var ErrResidentBudget = errors.New("parselclient: resident-bytes budget exceeded")

// Is maps wire codes back onto the library's typed errors, so callers
// can handle daemon responses exactly like in-process Pool errors:
// errors.Is(err, parsel.ErrPoolTimeout) is true for a 429 pool_timeout,
// and so on for ErrPoolClosed (shutting_down), ErrRankRange,
// ErrBadQuantile, ErrNoData and ErrNoShards — plus ErrQueueFull for
// admission rejections.
func (e *APIError) Is(target error) bool {
	switch target {
	case parsel.ErrPoolTimeout:
		return e.Code == CodePoolTimeout
	case parsel.ErrPoolClosed:
		return e.Code == CodeShuttingDown
	case parsel.ErrRankRange:
		return e.Code == CodeRankRange
	case parsel.ErrBadQuantile:
		return e.Code == CodeBadQuantile
	case parsel.ErrNoData:
		return e.Code == CodeNoData
	case parsel.ErrNoShards:
		return e.Code == CodeNoShards
	case ErrQueueFull:
		return e.Code == CodeQueueFull
	case ErrDatasetNotFound:
		return e.Code == CodeDatasetNotFound
	case ErrResidentBudget:
		return e.Code == CodeResidentBudget
	}
	return false
}

// timeoutMS computes the timeout_ms to send: the tighter of
// QueryTimeout and the context's remaining budget, in milliseconds
// (rounded up so a 300us deadline does not become "no timeout").
func (c *Client) timeoutMS(ctx context.Context) int64 {
	eff := c.QueryTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); eff <= 0 || rem < eff {
			eff = rem
		}
	}
	if eff <= 0 {
		return 0
	}
	ms := int64((eff + time.Millisecond - 1) / time.Millisecond)
	// The wire bounds timeout_ms at 24h; clamp rather than let the
	// server reject an over-generous client budget.
	const maxTimeoutMS = 24 * 60 * 60 * 1000
	return min(ms, maxTimeoutMS)
}

// post sends one query and decodes the response or the structured
// error. A nil context means no deadline, mirroring the Pool methods.
func (c *Client) post(ctx context.Context, path string, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.TimeoutMS == 0 {
		req.TimeoutMS = c.timeoutMS(ctx)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("parselclient: encode: %w", err)
	}
	var resp Response
	if err := c.doJSON(ctx, http.MethodPost, path, body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// decodeError turns a non-200 body into an *APIError, tolerating
// non-JSON bodies (proxies, panics) by quoting them raw.
func decodeError(status int, data []byte) error {
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Code != "" {
		return &APIError{Status: status, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	return &APIError{Status: status, Code: CodeInternal, Message: msg}
}

// scalar runs a single-value query.
func (c *Client) scalar(ctx context.Context, path string, req Request) (parsel.Result[int64], error) {
	resp, err := c.post(ctx, path, req)
	if err != nil {
		return parsel.Result[int64]{}, err
	}
	if resp.Value == nil {
		return parsel.Result[int64]{}, fmt.Errorf("parselclient: %s: response carries no value", path)
	}
	return parsel.Result[int64]{Value: *resp.Value, Report: resp.Report.Report()}, nil
}

// multi runs a multi-value query.
func (c *Client) multi(ctx context.Context, path string, req Request) ([]int64, parsel.Report, error) {
	resp, err := c.post(ctx, path, req)
	if err != nil {
		return nil, parsel.Report{}, err
	}
	return resp.Values, resp.Report.Report(), nil
}

// Select returns the element of 1-based rank among all elements of
// shards, like parsel.Pool.Select but over the wire.
func (c *Client) Select(ctx context.Context, shards [][]int64, rank int64) (parsel.Result[int64], error) {
	return c.scalar(ctx, "/v1/select", Request{Shards: shards, Rank: &rank})
}

// Median returns the element of rank ceil(n/2).
func (c *Client) Median(ctx context.Context, shards [][]int64) (parsel.Result[int64], error) {
	return c.scalar(ctx, "/v1/median", Request{Shards: shards})
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and
// the minimum for q = 0.
func (c *Client) Quantile(ctx context.Context, shards [][]int64, q float64) (parsel.Result[int64], error) {
	return c.scalar(ctx, "/v1/quantile", Request{Shards: shards, Q: &q})
}

// Quantiles returns the elements at several quantiles in one collective
// run; results align with qs.
func (c *Client) Quantiles(ctx context.Context, shards [][]int64, qs []float64) ([]int64, parsel.Report, error) {
	return c.multi(ctx, "/v1/quantiles", Request{Shards: shards, Qs: qs})
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; results align with ranks.
func (c *Client) SelectRanks(ctx context.Context, shards [][]int64, ranks []int64) ([]int64, parsel.Report, error) {
	return c.multi(ctx, "/v1/ranks", Request{Shards: shards, Ranks: ranks})
}

// TopK returns the k largest elements in descending order.
func (c *Client) TopK(ctx context.Context, shards [][]int64, k int) ([]int64, parsel.Report, error) {
	return c.multi(ctx, "/v1/topk", Request{Shards: shards, K: &k})
}

// BottomK returns the k smallest elements in ascending order.
func (c *Client) BottomK(ctx context.Context, shards [][]int64, k int) ([]int64, parsel.Report, error) {
	return c.multi(ctx, "/v1/bottomk", Request{Shards: shards, K: &k})
}

// Summary computes the five-number summary in one multi-rank run.
func (c *Client) Summary(ctx context.Context, shards [][]int64) (parsel.FiveNumber[int64], parsel.Report, error) {
	resp, err := c.post(ctx, "/v1/summary", Request{Shards: shards})
	if err != nil {
		return parsel.FiveNumber[int64]{}, parsel.Report{}, err
	}
	if resp.Summary == nil {
		return parsel.FiveNumber[int64]{}, parsel.Report{}, errors.New("parselclient: summary response carries no summary")
	}
	s := *resp.Summary
	return parsel.FiveNumber[int64]{Min: s.Min, Q1: s.Q1, Median: s.Median, Q3: s.Q3, Max: s.Max},
		resp.Report.Report(), nil
}

// Dataset addresses one resident dataset on the daemon by id. The
// handle is stateless (no network traffic until a method call), so it
// may be built once and shared across goroutines.
func (c *Client) Dataset(id string) *RemoteDataset {
	return &RemoteDataset{c: c, id: id}
}

// RemoteDataset mirrors parsel.Dataset over the wire: upload the shards
// once, then run any query of the daemon's surface against the resident
// state — the query bodies carry no keys. Results, including every
// simulated metric, are bit-identical to posting the same shards with
// each query. Methods are safe for concurrent use.
type RemoteDataset struct {
	c  *Client
	id string
}

// ID returns the dataset id the handle addresses.
func (d *RemoteDataset) ID() string { return d.id }

// path builds the dataset's URL path, escaping the id.
func (d *RemoteDataset) path(suffix string) string {
	return "/v1/datasets/" + url.PathEscape(d.id) + suffix
}

// attempt runs one HTTP attempt for doJSON's retry loop: build the
// request (stamping the remaining deadline budget into DeadlineHeader),
// send it, decode the response or the structured error. It returns the
// attempt's error together with any Retry-After hint accompanying it.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, attemptTimeout time.Duration) (error, time.Duration) {
	actx := ctx
	if attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, attemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return err, 0
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	stampDeadline(hreq, actx)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return err, 0
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(hres.Body)
	if err != nil {
		return fmt.Errorf("parselclient: read response: %w", err), 0
	}
	if hres.StatusCode != http.StatusOK {
		ra := parseRetryAfter(hres.Header)
		derr := decodeError(hres.StatusCode, data)
		var api *APIError
		if errors.As(derr, &api) {
			api.RetryAfter = ra
		}
		return derr, ra
	}
	if out == nil {
		return nil, 0
	}
	// A prior attempt may have decoded part of a truncated body into out
	// before failing; zero it so stale fields cannot survive a retry.
	if v := reflect.ValueOf(out); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("parselclient: decode response: %w", err), 0
	}
	return nil, 0
}

// Upload ships the shards into resident per-processor storage on the
// daemon (PUT), replacing any dataset already under this id. This is
// the only time the keys cross the wire.
func (d *RemoteDataset) Upload(ctx context.Context, shards [][]int64) (DatasetInfo, error) {
	body, err := json.Marshal(DatasetUpload{Shards: shards})
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("parselclient: encode: %w", err)
	}
	var info DatasetInfo
	if err := d.c.doJSON(ctx, http.MethodPut, d.path(""), body, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Info fetches the dataset's description without touching its TTL.
func (d *RemoteDataset) Info(ctx context.Context) (DatasetInfo, error) {
	var info DatasetInfo
	if err := d.c.doJSON(ctx, http.MethodGet, d.path(""), nil, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Delete removes the dataset, freeing its resident-bytes budget
// immediately; queries in flight complete, later ones get
// ErrDatasetNotFound.
func (d *RemoteDataset) Delete(ctx context.Context) (DatasetInfo, error) {
	var info DatasetInfo
	if err := d.c.doJSON(ctx, http.MethodDelete, d.path(""), nil, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// query posts one DatasetQuery, defaulting timeout_ms like post does.
func (d *RemoteDataset) query(ctx context.Context, q DatasetQuery) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.TimeoutMS == 0 {
		q.TimeoutMS = d.c.timeoutMS(ctx)
	}
	body, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("parselclient: encode: %w", err)
	}
	var resp Response
	if err := d.c.doJSON(ctx, http.MethodPost, d.path("/query"), body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// scalar runs a single-value dataset query.
func (d *RemoteDataset) scalar(ctx context.Context, q DatasetQuery) (parsel.Result[int64], error) {
	resp, err := d.query(ctx, q)
	if err != nil {
		return parsel.Result[int64]{}, err
	}
	if resp.Value == nil {
		return parsel.Result[int64]{}, fmt.Errorf("parselclient: dataset %s: response carries no value", q.Kind)
	}
	return parsel.Result[int64]{Value: *resp.Value, Report: resp.Report.Report()}, nil
}

// multi runs a multi-value dataset query.
func (d *RemoteDataset) multi(ctx context.Context, q DatasetQuery) ([]int64, parsel.Report, error) {
	resp, err := d.query(ctx, q)
	if err != nil {
		return nil, parsel.Report{}, err
	}
	return resp.Values, resp.Report.Report(), nil
}

// Select returns the element of 1-based rank among the resident
// population.
func (d *RemoteDataset) Select(ctx context.Context, rank int64) (parsel.Result[int64], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindSelect, Rank: &rank})
}

// Median returns the element of rank ceil(n/2).
func (d *RemoteDataset) Median(ctx context.Context) (parsel.Result[int64], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindMedian})
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and
// the minimum for q = 0.
func (d *RemoteDataset) Quantile(ctx context.Context, q float64) (parsel.Result[int64], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindQuantile, Q: &q})
}

// Quantiles returns the elements at several quantiles in one collective
// run; results align with qs.
func (d *RemoteDataset) Quantiles(ctx context.Context, qs []float64) ([]int64, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindQuantiles, Qs: qs})
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; results align with ranks.
func (d *RemoteDataset) SelectRanks(ctx context.Context, ranks []int64) ([]int64, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindRanks, Ranks: ranks})
}

// TopK returns the k largest resident elements in descending order.
func (d *RemoteDataset) TopK(ctx context.Context, k int) ([]int64, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindTopK, K: &k})
}

// BottomK returns the k smallest resident elements in ascending order.
func (d *RemoteDataset) BottomK(ctx context.Context, k int) ([]int64, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindBottomK, K: &k})
}

// Summary computes the five-number summary in one multi-rank run.
func (d *RemoteDataset) Summary(ctx context.Context) (parsel.FiveNumber[int64], parsel.Report, error) {
	resp, err := d.query(ctx, DatasetQuery{Kind: KindSummary})
	if err != nil {
		return parsel.FiveNumber[int64]{}, parsel.Report{}, err
	}
	if resp.Summary == nil {
		return parsel.FiveNumber[int64]{}, parsel.Report{}, errors.New("parselclient: summary response carries no summary")
	}
	s := *resp.Summary
	return parsel.FiveNumber[int64]{Min: s.Min, Q1: s.Q1, Median: s.Median, Q3: s.Q3, Max: s.Max},
		resp.Report.Report(), nil
}

// Stats fetches the daemon's observability snapshot. Like every other
// read, it retries under the client's RetryPolicy.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Healthz probes /healthz and reports the daemon's health state —
// HealthOK, HealthDegraded (serving, but e.g. snapshot persistence is
// failing) or HealthDraining. The probe never retries: a health check
// wants the instantaneous answer. The error is non-nil only when no
// recognizable health verdict came back at all.
func (c *Client) Healthz(ctx context.Context) (HealthStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return HealthStatus{}, err
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return HealthStatus{}, err
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(hres.Body)
	if err != nil {
		return HealthStatus{}, fmt.Errorf("parselclient: read healthz: %w", err)
	}
	switch hres.StatusCode {
	case http.StatusOK, http.StatusMultiStatus:
		var hs HealthStatus
		if jerr := json.Unmarshal(data, &hs); jerr != nil || hs.Status == "" {
			return HealthStatus{}, fmt.Errorf("parselclient: healthz body %q is not a health state", data)
		}
		return hs, nil
	default:
		derr := decodeError(hres.StatusCode, data)
		var api *APIError
		if errors.As(derr, &api) && api.Code == CodeShuttingDown {
			return HealthStatus{Status: HealthDraining, Reason: api.Message}, nil
		}
		return HealthStatus{}, derr
	}
}

// Health probes /healthz; nil means the daemon is accepting queries
// (healthy or degraded — a degraded daemon still serves). Use Healthz
// for the three-state verdict.
func (c *Client) Health(ctx context.Context) error {
	hs, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if hs.Status == HealthDraining {
		return &APIError{
			Status:  http.StatusServiceUnavailable,
			Code:    CodeShuttingDown,
			Message: "daemon is draining",
		}
	}
	return nil
}
