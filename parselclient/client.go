package parselclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"parsel"
	"parsel/internal/snapshot"
)

// Client talks to a parseld daemon. The zero value is not usable;
// construct with New. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// Token, when non-empty, is sent as a bearer token in the
	// Authorization header of every request — the static per-tenant
	// credential of a daemon running with -tenants. Requests without it
	// (or with a token matching no tenant) are refused with 401
	// unknown_tenant by such a daemon. Configure before the first call;
	// it must not be mutated concurrently with calls.
	Token string

	// QueryTimeout, when positive, is sent as timeout_ms on every query:
	// the server-side bound on waiting for a free simulated machine.
	// Independent of it, a context deadline also propagates as
	// timeout_ms (whichever is tighter), so a client deadline is honored
	// on the server rather than discovered by a dropped connection.
	// timeout_ms is recomputed from the remaining budget on every retry
	// attempt, so a server is never told a budget the caller no longer
	// has.
	QueryTimeout time.Duration

	// Binary switches the key-carrying paths to the binary frame
	// encoding (ContentTypeFrame): dataset uploads stream the
	// internal/snapshot format instead of marshaling a JSON body (the
	// daemon decodes both through one path), and queries send Accept so
	// bulk results come back framed. Responses to a JSON-only daemon
	// still decode — negotiation is per response Content-Type — and
	// results are bit-identical either way, simulated metrics included.
	// Configure before the first call; it must not be mutated
	// concurrently with calls.
	Binary bool

	// Retry configures transparent retries of transient failures (see
	// RetryPolicy; every operation on this wire is idempotent, so all of
	// them retry). The zero value disables retries. Configure it before
	// the client's first call; it must not be mutated concurrently with
	// calls.
	Retry RetryPolicy

	// MaxResponseBytes, when positive, caps how many response-body
	// bytes an attempt will buffer (see ClientLimits.MaxResponseBytes).
	// Configure before the first call.
	MaxResponseBytes int64

	// retryMu guards the jitter stream and the token-bucket retry
	// budget; the counters are atomics on their own.
	retryMu    sync.Mutex
	rng        *rand.Rand
	budget     float64
	budgetInit bool
	retryCount retryCounters

	// collector, when non-nil, receives per-operation telemetry (see
	// Collector and WithCollector). Configure before the first call.
	collector Collector
}

// Option configures a Client at construction. The same options
// configure the cluster router (cluster.New), which builds one
// per-node Client from them — token, binary negotiation and retry
// policy carry through the ring unchanged.
type Option func(*Client)

// WithHTTPClient sets the underlying http.Client (transport, TLS,
// connection pool). nil means http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithToken sets the bearer token sent with every request — the
// static per-tenant credential of a daemon running with -tenants.
func WithToken(token string) Option {
	return func(c *Client) { c.Token = token }
}

// WithBinary switches the key-carrying paths to the binary frame
// encoding (see Client.Binary).
func WithBinary(on bool) Option {
	return func(c *Client) { c.Binary = on }
}

// WithRetry sets the policy for transparent retries of transient
// failures (see RetryPolicy).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.Retry = p }
}

// ClientLimits bounds what the client sends and accepts; the zero
// value means unbounded (QueryTimeout 0 = no server-side wait bound
// beyond the context deadline, MaxResponseBytes 0 = read whole
// responses).
type ClientLimits struct {
	// QueryTimeout is sent as timeout_ms on every query (see
	// Client.QueryTimeout).
	QueryTimeout time.Duration
	// MaxResponseBytes caps how many response-body bytes the client
	// will buffer per attempt; a larger response fails the call rather
	// than ballooning memory. Applies to query/info responses, not to
	// streamed snapshot exports (DatasetSnapshot hands back the raw
	// stream).
	MaxResponseBytes int64
}

// WithLimits sets the client-side limits (see ClientLimits).
func WithLimits(l ClientLimits) Option {
	return func(c *Client) {
		c.QueryTimeout = l.QueryTimeout
		c.MaxResponseBytes = l.MaxResponseBytes
	}
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7075"), configured by the options:
//
//	c := parselclient.New(url,
//		parselclient.WithToken(token),
//		parselclient.WithBinary(true),
//		parselclient.WithRetry(parselclient.RetryPolicy{MaxAttempts: 4}))
//
// With no options the client uses http.DefaultClient, no token, JSON
// encoding and no retries. The exported fields (Token, Binary, Retry,
// QueryTimeout) remain settable before the first call for callers that
// predate the options.
//
// Note for callers of the pre-options signature New(baseURL, hc):
// passing a literal nil still compiles (a nil Option is tolerated),
// but a non-nil *http.Client must move to WithHTTPClient — or use the
// NewWithHTTPClient shim, which keeps the old shape.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		if o != nil { // tolerate a literal nil from pre-options callers
			o(c)
		}
	}
	return c
}

// NewWithHTTPClient builds a client with an explicit *http.Client —
// the exact shape of the pre-options constructor, kept so callers that
// passed a transport do not break. nil means http.DefaultClient. New
// code should prefer New(baseURL, WithHTTPClient(hc)).
func NewWithHTTPClient(baseURL string, hc *http.Client) *Client {
	return New(baseURL, WithHTTPClient(hc))
}

// APIError is a structured error response from the daemon.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable wire code (see the Code constants).
	Code Code
	// Message is the human-readable detail.
	Message string
	// RetryAfter is the server's backoff hint from the Retry-After
	// header, if the response carried one; a retrying client waits at
	// least this long before the next attempt.
	RetryAfter time.Duration
}

// Error formats the error for humans.
func (e *APIError) Error() string {
	return fmt.Sprintf("parseld: %s (%d %s)", e.Message, e.Status, e.Code)
}

// ErrQueueFull reports that the daemon's admission queue was full; the
// request was rejected before queueing (HTTP 429, code "queue_full").
var ErrQueueFull = errors.New("parselclient: server admission queue full")

// ErrDatasetNotFound reports that no resident dataset has the requested
// id: never uploaded, deleted, or TTL-evicted (HTTP 404, code
// "dataset_not_found").
var ErrDatasetNotFound = errors.New("parselclient: dataset not found")

// ErrResidentBudget reports that an upload was refused because it would
// exceed the daemon's resident-bytes budget (HTTP 413, code
// "resident_budget").
var ErrResidentBudget = errors.New("parselclient: resident-bytes budget exceeded")

// ErrUnknownTenant reports that the daemon requires tenant
// authentication and the request carried no bearer token, or one that
// matches no configured tenant (HTTP 401, code "unknown_tenant").
var ErrUnknownTenant = errors.New("parselclient: unknown tenant token")

// ErrTenantBudget reports that an upload was refused because it would
// exceed the calling tenant's resident-bytes budget or dataset quota
// (HTTP 413, code "tenant_budget").
var ErrTenantBudget = errors.New("parselclient: tenant budget exceeded")

// ErrKindMismatch reports that a request's key kind was unknown or
// disagreed with the dataset it addressed (HTTP 400, code "bad_kind").
var ErrKindMismatch = errors.New("parselclient: key kind mismatch")

// Is maps wire codes back onto the library's typed errors, so callers
// can handle daemon responses exactly like in-process Pool errors:
// errors.Is(err, parsel.ErrPoolTimeout) is true for a 429 pool_timeout,
// and so on for ErrPoolClosed (shutting_down), ErrRankRange,
// ErrBadQuantile, ErrNoData and ErrNoShards — plus ErrQueueFull for
// admission rejections.
func (e *APIError) Is(target error) bool {
	switch target {
	case parsel.ErrPoolTimeout:
		return e.Code == CodePoolTimeout
	case parsel.ErrPoolClosed:
		return e.Code == CodeShuttingDown
	case parsel.ErrRankRange:
		return e.Code == CodeRankRange
	case parsel.ErrBadQuantile:
		return e.Code == CodeBadQuantile
	case parsel.ErrNoData:
		return e.Code == CodeNoData
	case parsel.ErrNoShards:
		return e.Code == CodeNoShards
	case ErrQueueFull:
		return e.Code == CodeQueueFull
	case ErrDatasetNotFound:
		return e.Code == CodeDatasetNotFound
	case ErrResidentBudget:
		return e.Code == CodeResidentBudget
	case ErrUnknownTenant:
		return e.Code == CodeUnknownTenant
	case ErrTenantBudget:
		return e.Code == CodeTenantBudget
	case ErrKindMismatch:
		return e.Code == CodeBadKind
	}
	return false
}

// timeoutMS computes the timeout_ms to send: the tighter of
// QueryTimeout and the context's remaining budget, in milliseconds
// (rounded up so a 300us deadline does not become "no timeout").
func (c *Client) timeoutMS(ctx context.Context) int64 {
	eff := c.QueryTimeout
	bounded := eff > 0
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); !bounded || rem < eff {
			eff = rem
		}
		bounded = true
	}
	if !bounded {
		return 0
	}
	if eff <= 0 {
		// The budget is already spent (a deadline in the past). Zero would
		// mean "no timeout" on the wire — the opposite of the truth — so
		// send the 1ms floor and let the server refuse immediately.
		return 1
	}
	ms := int64((eff + time.Millisecond - 1) / time.Millisecond)
	// The wire bounds timeout_ms at 24h; clamp rather than let the
	// server reject an over-generous client budget.
	const maxTimeoutMS = 24 * 60 * 60 * 1000
	return min(ms, maxTimeoutMS)
}

// keyKindField returns the key_kind value a K-kinded request carries:
// empty for int64 (keeping the historical wire byte-identical), the
// kind name otherwise.
func keyKindField[K Key]() string {
	if kind := KeyKindOf[K](); kind != KeyKindInt64 {
		return kind
	}
	return ""
}

// KindClient is a typed view of a Client for one key kind: the same
// connection, retry policy, token and binary negotiation, with the
// query surface typed over K. Build one with Keyed; the zero value is
// not usable. Methods are safe for concurrent use (they share the
// underlying Client's synchronization).
type KindClient[K Key] struct {
	c *Client
}

// Keyed returns the K-kinded query surface of c: non-int64 requests
// stamp "key_kind" into their bodies and decode kind-typed responses.
// Keyed[int64](c) behaves exactly like c's own methods.
func Keyed[K Key](c *Client) KindClient[K] {
	return KindClient[K]{c: c}
}

// Client returns the underlying untyped client.
func (kc KindClient[K]) Client() *Client { return kc.c }

// post sends one query and decodes the response or the structured
// error. A nil context means no deadline, mirroring the Pool methods.
// The body is rebuilt per retry attempt so timeout_ms always reflects
// the attempt's remaining budget, not the first attempt's.
func (kc KindClient[K]) post(ctx context.Context, path string, req RequestOf[K]) (*ResponseOf[K], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req.KeyKind = keyKindField[K]()
	body := func(actx context.Context) (io.Reader, int64, string, error) {
		r := req
		if r.TimeoutMS == 0 {
			r.TimeoutMS = kc.c.timeoutMS(actx)
		}
		return marshalBody(r)
	}
	var resp ResponseOf[K]
	if err := kc.c.do(ctx, http.MethodPost, path, body, kc.c.Binary, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// post is KindClient.post for the historical int64 surface.
func (c *Client) post(ctx context.Context, path string, req Request) (*Response, error) {
	return Keyed[int64](c).post(ctx, path, req)
}

// marshalBody encodes one JSON request body for a single attempt.
func marshalBody(v any) (io.Reader, int64, string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, 0, "", fmt.Errorf("parselclient: encode: %w", err)
	}
	return bytes.NewReader(data), int64(len(data)), ContentTypeJSON, nil
}

// decodeError turns a non-200 body into an *APIError, tolerating
// non-JSON bodies (proxies, panics) by quoting them raw.
func decodeError(status int, data []byte) error {
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Code != "" {
		return &APIError{Status: status, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		// Truncate on a rune boundary: a cut mid-UTF-8-sequence would
		// leave a mangled trailing byte in the quoted message.
		cut := 200
		for cut > 0 && !utf8.RuneStart(msg[cut]) {
			cut--
		}
		msg = msg[:cut] + "..."
	}
	return &APIError{Status: status, Code: CodeInternal, Message: msg}
}

// scalar runs a single-value query.
func (kc KindClient[K]) scalar(ctx context.Context, path string, req RequestOf[K]) (parsel.Result[K], error) {
	resp, err := kc.post(ctx, path, req)
	if err != nil {
		return parsel.Result[K]{}, err
	}
	if resp.Value == nil {
		return parsel.Result[K]{}, fmt.Errorf("parselclient: %s: response carries no value", path)
	}
	return parsel.Result[K]{Value: *resp.Value, Report: resp.Report.Report()}, nil
}

// multi runs a multi-value query.
func (kc KindClient[K]) multi(ctx context.Context, path string, req RequestOf[K]) ([]K, parsel.Report, error) {
	resp, err := kc.post(ctx, path, req)
	if err != nil {
		return nil, parsel.Report{}, err
	}
	return resp.Values, resp.Report.Report(), nil
}

// Select returns the element of 1-based rank among all elements of
// shards, like parsel.Pool.Select but over the wire.
func (kc KindClient[K]) Select(ctx context.Context, shards [][]K, rank int64) (parsel.Result[K], error) {
	return kc.scalar(ctx, "/v1/select", RequestOf[K]{Shards: shards, Rank: &rank})
}

// Median returns the element of rank ceil(n/2).
func (kc KindClient[K]) Median(ctx context.Context, shards [][]K) (parsel.Result[K], error) {
	return kc.scalar(ctx, "/v1/median", RequestOf[K]{Shards: shards})
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and
// the minimum for q = 0.
func (kc KindClient[K]) Quantile(ctx context.Context, shards [][]K, q float64) (parsel.Result[K], error) {
	return kc.scalar(ctx, "/v1/quantile", RequestOf[K]{Shards: shards, Q: &q})
}

// Quantiles returns the elements at several quantiles in one collective
// run; results align with qs.
func (kc KindClient[K]) Quantiles(ctx context.Context, shards [][]K, qs []float64) ([]K, parsel.Report, error) {
	return kc.multi(ctx, "/v1/quantiles", RequestOf[K]{Shards: shards, Qs: qs})
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; results align with ranks.
func (kc KindClient[K]) SelectRanks(ctx context.Context, shards [][]K, ranks []int64) ([]K, parsel.Report, error) {
	return kc.multi(ctx, "/v1/ranks", RequestOf[K]{Shards: shards, Ranks: ranks})
}

// TopK returns the k largest elements in descending order.
func (kc KindClient[K]) TopK(ctx context.Context, shards [][]K, k int) ([]K, parsel.Report, error) {
	return kc.multi(ctx, "/v1/topk", RequestOf[K]{Shards: shards, K: &k})
}

// BottomK returns the k smallest elements in ascending order.
func (kc KindClient[K]) BottomK(ctx context.Context, shards [][]K, k int) ([]K, parsel.Report, error) {
	return kc.multi(ctx, "/v1/bottomk", RequestOf[K]{Shards: shards, K: &k})
}

// Summary computes the five-number summary in one multi-rank run.
func (kc KindClient[K]) Summary(ctx context.Context, shards [][]K) (parsel.FiveNumber[K], parsel.Report, error) {
	resp, err := kc.post(ctx, "/v1/summary", RequestOf[K]{Shards: shards})
	if err != nil {
		return parsel.FiveNumber[K]{}, parsel.Report{}, err
	}
	if resp.Summary == nil {
		return parsel.FiveNumber[K]{}, parsel.Report{}, errors.New("parselclient: summary response carries no summary")
	}
	s := *resp.Summary
	return parsel.FiveNumber[K]{Min: s.Min, Q1: s.Q1, Median: s.Median, Q3: s.Q3, Max: s.Max},
		resp.Report.Report(), nil
}

// Dataset addresses one resident dataset on the daemon by id, typed
// over K. The handle is stateless (no network traffic until a method
// call), so it may be built once and shared across goroutines.
func (kc KindClient[K]) Dataset(id string) *RemoteDatasetOf[K] {
	return &RemoteDatasetOf[K]{c: kc.c, id: id}
}

// Select returns the element of 1-based rank among all elements of
// shards, like parsel.Pool.Select but over the wire.
func (c *Client) Select(ctx context.Context, shards [][]int64, rank int64) (parsel.Result[int64], error) {
	return Keyed[int64](c).Select(ctx, shards, rank)
}

// Median returns the element of rank ceil(n/2).
func (c *Client) Median(ctx context.Context, shards [][]int64) (parsel.Result[int64], error) {
	return Keyed[int64](c).Median(ctx, shards)
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and
// the minimum for q = 0.
func (c *Client) Quantile(ctx context.Context, shards [][]int64, q float64) (parsel.Result[int64], error) {
	return Keyed[int64](c).Quantile(ctx, shards, q)
}

// Quantiles returns the elements at several quantiles in one collective
// run; results align with qs.
func (c *Client) Quantiles(ctx context.Context, shards [][]int64, qs []float64) ([]int64, parsel.Report, error) {
	return Keyed[int64](c).Quantiles(ctx, shards, qs)
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; results align with ranks.
func (c *Client) SelectRanks(ctx context.Context, shards [][]int64, ranks []int64) ([]int64, parsel.Report, error) {
	return Keyed[int64](c).SelectRanks(ctx, shards, ranks)
}

// TopK returns the k largest elements in descending order.
func (c *Client) TopK(ctx context.Context, shards [][]int64, k int) ([]int64, parsel.Report, error) {
	return Keyed[int64](c).TopK(ctx, shards, k)
}

// BottomK returns the k smallest elements in ascending order.
func (c *Client) BottomK(ctx context.Context, shards [][]int64, k int) ([]int64, parsel.Report, error) {
	return Keyed[int64](c).BottomK(ctx, shards, k)
}

// Summary computes the five-number summary in one multi-rank run.
func (c *Client) Summary(ctx context.Context, shards [][]int64) (parsel.FiveNumber[int64], parsel.Report, error) {
	return Keyed[int64](c).Summary(ctx, shards)
}

// Dataset addresses one resident dataset on the daemon by id. The
// handle is stateless (no network traffic until a method call), so it
// may be built once and shared across goroutines.
func (c *Client) Dataset(id string) *RemoteDataset {
	return Keyed[int64](c).Dataset(id)
}

// RemoteDatasetOf mirrors parsel.Dataset over the wire, typed over the
// key kind: upload the shards once, then run any query of the daemon's
// surface against the resident state — the query bodies carry no keys.
// Results, including every simulated metric, are bit-identical to
// posting the same shards with each query. Non-int64 handles stamp
// "key_kind" into uploads and queries, so addressing a dataset of
// another kind fails with bad_kind instead of silently mistyping keys.
// Methods are safe for concurrent use.
type RemoteDatasetOf[K Key] struct {
	c  *Client
	id string
}

// RemoteDataset is the int64 instantiation of RemoteDatasetOf — the
// historical client surface, unchanged.
type RemoteDataset = RemoteDatasetOf[int64]

// ID returns the dataset id the handle addresses.
func (d *RemoteDatasetOf[K]) ID() string { return d.id }

// path builds the dataset's URL path, escaping the id.
func (d *RemoteDatasetOf[K]) path(suffix string) string {
	return "/v1/datasets/" + url.PathEscape(d.id) + suffix
}

// bodyFunc builds one attempt's request body: the reader, its length
// (the request's Content-Length), and its Content-Type. The retry loop
// calls it afresh for every attempt — with the attempt's own context —
// so deadline-derived fields (timeout_ms) are recomputed from the
// remaining budget, and streaming bodies (a binary upload's pipe) get a
// fresh, fully rewound stream per send. A nil bodyFunc means no body.
type bodyFunc func(ctx context.Context) (io.Reader, int64, string, error)

// jsonBody adapts pre-marshaled JSON bytes into a bodyFunc (GET/DELETE
// style requests whose bodies carry nothing deadline-derived).
func jsonBody(data []byte) bodyFunc {
	return func(context.Context) (io.Reader, int64, string, error) {
		return bytes.NewReader(data), int64(len(data)), ContentTypeJSON, nil
	}
}

// permanentError marks a failure that happened before any bytes hit the
// wire (a body that cannot marshal, an unbuildable request): resending
// cannot change it, so the retry loop must not classify it as a
// transient transport fault.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// attempt runs one HTTP attempt for do's retry loop: build the body and
// the request (stamping the remaining deadline budget into
// DeadlineHeader), send it, decode the response — JSON or a binary
// result frame, keyed by the response's Content-Type — or the
// structured error. It returns the attempt's error together with any
// Retry-After hint accompanying it.
func (c *Client) attempt(ctx context.Context, method, path string, body bodyFunc, acceptFrame bool, out any, attemptTimeout time.Duration, reqID string) (error, time.Duration) {
	actx := ctx
	if attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, attemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	var length int64
	var ctype string
	if body != nil {
		var err error
		rd, length, ctype, err = body(actx)
		if err != nil {
			return &permanentError{err}, 0
		}
	}
	hreq, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return &permanentError{err}, 0
	}
	if rd != nil {
		hreq.ContentLength = length
		hreq.Header.Set("Content-Type", ctype)
	}
	if acceptFrame {
		hreq.Header.Set("Accept", ContentTypeFrame)
	}
	if c.Token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if reqID != "" {
		hreq.Header.Set(RequestIDHeader, reqID)
	}
	stampDeadline(hreq, actx)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return err, 0
	}
	defer hres.Body.Close()
	var rdBody io.Reader = hres.Body
	if c.MaxResponseBytes > 0 {
		rdBody = io.LimitReader(hres.Body, c.MaxResponseBytes+1)
	}
	data, err := io.ReadAll(rdBody)
	if err != nil {
		return fmt.Errorf("parselclient: read response: %w", err), 0
	}
	if c.MaxResponseBytes > 0 && int64(len(data)) > c.MaxResponseBytes {
		// Oversize is a property of the response, not the attempt:
		// resending cannot shrink it.
		return &permanentError{fmt.Errorf("parselclient: response exceeds %d-byte limit", c.MaxResponseBytes)}, 0
	}
	if hres.StatusCode != http.StatusOK {
		ra := parseRetryAfter(hres.Header)
		derr := decodeError(hres.StatusCode, data)
		var api *APIError
		if errors.As(derr, &api) {
			api.RetryAfter = ra
		}
		return derr, ra
	}
	if out == nil {
		return nil, 0
	}
	// A prior attempt may have decoded part of a truncated body into out
	// before failing; zero it so stale fields cannot survive a retry.
	if v := reflect.ValueOf(out); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
	if isFrameContentType(hres.Header.Get("Content-Type")) {
		return decodeFrameInto(data, out), 0
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("parselclient: decode response: %w", err), 0
	}
	return nil, 0
}

// isFrameContentType reports whether a Content-Type names the binary
// frame encoding, ignoring parameters.
func isFrameContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	// Media types are case-insensitive (RFC 9110 §8.3.1): a proxy may
	// legally rewrite the casing, so match with EqualFold.
	return strings.EqualFold(strings.TrimSpace(ct), ContentTypeFrame)
}

// decodeFrameInto decodes a binary result frame into the response
// shapes the query paths expect. The frame convention keeps each
// result's JSON metadata (value, summary, report, error — and an empty
// "values" when the query produced one) in the meta section and moves
// only non-empty values into the binary section, so decoding overlays
// the values back and yields a struct bit-identical to the JSON
// encoding of the same result.
func decodeFrameInto(data []byte, out any) error {
	entries, err := snapshot.DecodeFrame(data)
	if err != nil {
		return fmt.Errorf("parselclient: decode frame: %w", err)
	}
	switch v := out.(type) {
	case *Response:
		if len(entries) != 1 {
			return fmt.Errorf("parselclient: frame carries %d results, want 1", len(entries))
		}
		if err := json.Unmarshal(entries[0].Meta, v); err != nil {
			return fmt.Errorf("parselclient: decode frame meta: %w", err)
		}
		if entries[0].Values != nil {
			v.Values = entries[0].Values
		}
		return nil
	case *QueryManyResponse:
		v.Results = make([]QueryManyResult, len(entries))
		for i := range entries {
			if err := json.Unmarshal(entries[i].Meta, &v.Results[i]); err != nil {
				return fmt.Errorf("parselclient: decode frame meta %d: %w", i, err)
			}
			if entries[i].Values != nil {
				v.Results[i].Values = entries[i].Values
			}
		}
		return nil
	case *ResponseOf[float64]:
		// Frame values are a bit container: float64 results travel as
		// their IEEE-754 bits and convert back losslessly here.
		if len(entries) != 1 {
			return fmt.Errorf("parselclient: frame carries %d results, want 1", len(entries))
		}
		if err := json.Unmarshal(entries[0].Meta, v); err != nil {
			return fmt.Errorf("parselclient: decode frame meta: %w", err)
		}
		if entries[0].Values != nil {
			v.Values = float64sFromBits(entries[0].Values)
		}
		return nil
	case *QueryManyResponseOf[float64]:
		v.Results = make([]QueryManyResultOf[float64], len(entries))
		for i := range entries {
			if err := json.Unmarshal(entries[i].Meta, &v.Results[i]); err != nil {
				return fmt.Errorf("parselclient: decode frame meta %d: %w", i, err)
			}
			if entries[i].Values != nil {
				v.Results[i].Values = float64sFromBits(entries[i].Values)
			}
		}
		return nil
	default:
		return fmt.Errorf("parselclient: unexpected binary frame for %T", out)
	}
}

// float64sFromBits reinterprets a frame's bit-container values as the
// float64 keys they encode.
func float64sFromBits(bits []int64) []float64 {
	vals := make([]float64, len(bits))
	for i, b := range bits {
		vals[i] = math.Float64frombits(uint64(b))
	}
	return vals
}

// frameUploadBody builds the streaming binary body for a fixed-width
// upload: the snapshot encoding flows through a pipe, never
// materialized as one request buffer, with Content-Length declared up
// front. Each retry attempt opens a fresh pipe, so the streaming body
// replays as safely as a buffered one. The encoded header carries the
// key type, which the daemon treats as authoritative for the kind.
func frameUploadBody[K snapshot.FixedKey](shards [][]K) bodyFunc {
	return func(context.Context) (io.Reader, int64, string, error) {
		pr, pw := io.Pipe()
		go func() {
			_, err := snapshot.WriteTo(pw, snapshot.Header{}, shards)
			pw.CloseWithError(err)
		}()
		return pr, snapshot.EncodedSize(snapshot.Header{}, shards), ContentTypeFrame, nil
	}
}

// Upload ships the shards into resident per-processor storage on the
// daemon (PUT), replacing any dataset already under this id. This is
// the only time the keys cross the wire. With Client.Binary set the
// fixed-width kinds (int64, float64) stream as the snapshot binary
// format; string shards have no frame encoding and always marshal as
// JSON.
func (d *RemoteDatasetOf[K]) Upload(ctx context.Context, shards [][]K) (DatasetInfo, error) {
	var body bodyFunc
	if d.c.Binary {
		switch sh := any(shards).(type) {
		case [][]int64:
			body = frameUploadBody(sh)
		case [][]float64:
			body = frameUploadBody(sh)
		}
	}
	if body == nil {
		data, err := json.Marshal(DatasetUploadOf[K]{KeyKind: keyKindField[K](), Shards: shards})
		if err != nil {
			return DatasetInfo{}, fmt.Errorf("parselclient: encode: %w", err)
		}
		body = jsonBody(data)
	}
	var info DatasetInfo
	if err := d.c.do(ctx, http.MethodPut, d.path(""), body, false, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Info fetches the dataset's description without touching its TTL.
func (d *RemoteDatasetOf[K]) Info(ctx context.Context) (DatasetInfo, error) {
	var info DatasetInfo
	if err := d.c.doJSON(ctx, http.MethodGet, d.path(""), nil, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Delete removes the dataset, freeing its resident-bytes budget
// immediately; queries in flight complete, later ones get
// ErrDatasetNotFound.
func (d *RemoteDatasetOf[K]) Delete(ctx context.Context) (DatasetInfo, error) {
	var info DatasetInfo
	if err := d.c.doJSON(ctx, http.MethodDelete, d.path(""), nil, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// query posts one DatasetQuery, defaulting timeout_ms like post does —
// recomputed per retry attempt from the attempt's remaining budget.
// Non-int64 handles stamp key_kind so a kind mismatch with the resident
// dataset surfaces as bad_kind instead of mistyped keys.
func (d *RemoteDatasetOf[K]) query(ctx context.Context, q DatasetQuery) (*ResponseOf[K], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.KeyKind = keyKindField[K]()
	body := func(actx context.Context) (io.Reader, int64, string, error) {
		r := q
		if r.TimeoutMS == 0 {
			r.TimeoutMS = d.c.timeoutMS(actx)
		}
		return marshalBody(r)
	}
	var resp ResponseOf[K]
	if err := d.c.do(ctx, http.MethodPost, d.path("/query"), body, d.c.Binary, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryMany runs a batch of independent queries against the resident
// dataset in one round trip; results align with queries, and per-item
// failures surface per item (see QueryManyResult.Err) — one bad query
// never poisons the batch. The whole batch shares one admission
// deadline, recomputed per retry attempt; per-item TimeoutMS must stay
// zero. With Client.Binary set the results come back as one binary
// frame.
func (d *RemoteDatasetOf[K]) QueryMany(ctx context.Context, queries []DatasetQuery) ([]QueryManyResultOf[K], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	kind := keyKindField[K]()
	body := func(actx context.Context) (io.Reader, int64, string, error) {
		qs := queries
		if kind != "" {
			qs = make([]DatasetQuery, len(queries))
			for i, q := range queries {
				q.KeyKind = kind
				qs[i] = q
			}
		}
		return marshalBody(DatasetQueryMany{Queries: qs, TimeoutMS: d.c.timeoutMS(actx)})
	}
	var resp QueryManyResponseOf[K]
	if err := d.c.do(ctx, http.MethodPost, d.path("/querymany"), body, d.c.Binary, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("parselclient: querymany returned %d results for %d queries", len(resp.Results), len(queries))
	}
	return resp.Results, nil
}

// Err converts the item's error detail, if any, into the same *APIError
// a single query returning this code would produce — so errors.Is
// against the library's typed errors (parsel.ErrRankRange,
// parsel.ErrPoolTimeout, ...) works identically for batch items.
func (r *QueryManyResultOf[K]) Err() error {
	if r.Error == nil {
		return nil
	}
	return &APIError{Status: statusForCode(r.Error.Code), Code: r.Error.Code, Message: r.Error.Message}
}

// statusForCode maps a wire error code to the HTTP status a direct
// query failing with it would carry — the inverse of the daemon's
// status mapping, for errors that arrive inside a 200 batch response.
func statusForCode(code Code) int {
	switch code {
	case CodeDatasetNotFound, CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeTooLarge, CodeResidentBudget:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull, CodePoolTimeout:
		return http.StatusTooManyRequests
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// scalar runs a single-value dataset query.
func (d *RemoteDatasetOf[K]) scalar(ctx context.Context, q DatasetQuery) (parsel.Result[K], error) {
	resp, err := d.query(ctx, q)
	if err != nil {
		return parsel.Result[K]{}, err
	}
	if resp.Value == nil {
		return parsel.Result[K]{}, fmt.Errorf("parselclient: dataset %s: response carries no value", q.Kind)
	}
	return parsel.Result[K]{Value: *resp.Value, Report: resp.Report.Report()}, nil
}

// multi runs a multi-value dataset query.
func (d *RemoteDatasetOf[K]) multi(ctx context.Context, q DatasetQuery) ([]K, parsel.Report, error) {
	resp, err := d.query(ctx, q)
	if err != nil {
		return nil, parsel.Report{}, err
	}
	return resp.Values, resp.Report.Report(), nil
}

// Select returns the element of 1-based rank among the resident
// population.
func (d *RemoteDatasetOf[K]) Select(ctx context.Context, rank int64) (parsel.Result[K], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindSelect, Rank: &rank})
}

// Median returns the element of rank ceil(n/2).
func (d *RemoteDatasetOf[K]) Median(ctx context.Context) (parsel.Result[K], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindMedian})
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and
// the minimum for q = 0.
func (d *RemoteDatasetOf[K]) Quantile(ctx context.Context, q float64) (parsel.Result[K], error) {
	return d.scalar(ctx, DatasetQuery{Kind: KindQuantile, Q: &q})
}

// Quantiles returns the elements at several quantiles in one collective
// run; results align with qs.
func (d *RemoteDatasetOf[K]) Quantiles(ctx context.Context, qs []float64) ([]K, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindQuantiles, Qs: qs})
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; results align with ranks.
func (d *RemoteDatasetOf[K]) SelectRanks(ctx context.Context, ranks []int64) ([]K, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindRanks, Ranks: ranks})
}

// TopK returns the k largest resident elements in descending order.
func (d *RemoteDatasetOf[K]) TopK(ctx context.Context, k int) ([]K, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindTopK, K: &k})
}

// BottomK returns the k smallest resident elements in ascending order.
func (d *RemoteDatasetOf[K]) BottomK(ctx context.Context, k int) ([]K, parsel.Report, error) {
	return d.multi(ctx, DatasetQuery{Kind: KindBottomK, K: &k})
}

// Summary computes the five-number summary in one multi-rank run.
func (d *RemoteDatasetOf[K]) Summary(ctx context.Context) (parsel.FiveNumber[K], parsel.Report, error) {
	resp, err := d.query(ctx, DatasetQuery{Kind: KindSummary})
	if err != nil {
		return parsel.FiveNumber[K]{}, parsel.Report{}, err
	}
	if resp.Summary == nil {
		return parsel.FiveNumber[K]{}, parsel.Report{}, errors.New("parselclient: summary response carries no summary")
	}
	s := *resp.Summary
	return parsel.FiveNumber[K]{Min: s.Min, Q1: s.Q1, Median: s.Median, Q3: s.Q3, Max: s.Max},
		resp.Report.Report(), nil
}

// Stats fetches the daemon's observability snapshot. Like every other
// read, it retries under the client's RetryPolicy.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// ReloadTenants asks the daemon to reread its tenant configuration
// (POST /v1/admin/tenants/reload) — token rotation and budget changes
// without a restart. The endpoint exists only on a daemon started with
// a tenant source (parseld -tenants); elsewhere it answers not_found.
func (c *Client) ReloadTenants(ctx context.Context) (TenantReloadResult, error) {
	var res TenantReloadResult
	if err := c.doJSON(ctx, http.MethodPost, "/v1/admin/tenants/reload", nil, &res); err != nil {
		return TenantReloadResult{}, err
	}
	return res, nil
}

// Healthz probes /healthz and reports the daemon's health state —
// HealthOK, HealthDegraded (serving, but e.g. snapshot persistence is
// failing) or HealthDraining. The probe never retries: a health check
// wants the instantaneous answer. The error is non-nil only when no
// recognizable health verdict came back at all.
func (c *Client) Healthz(ctx context.Context) (HealthStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return HealthStatus{}, err
	}
	if c.Token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.Token)
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return HealthStatus{}, err
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(hres.Body)
	if err != nil {
		return HealthStatus{}, fmt.Errorf("parselclient: read healthz: %w", err)
	}
	switch hres.StatusCode {
	case http.StatusOK, http.StatusMultiStatus:
		var hs HealthStatus
		if jerr := json.Unmarshal(data, &hs); jerr != nil || hs.Status == "" {
			return HealthStatus{}, fmt.Errorf("parselclient: healthz body %q is not a health state", data)
		}
		return hs, nil
	default:
		derr := decodeError(hres.StatusCode, data)
		var api *APIError
		if errors.As(derr, &api) && api.Code == CodeShuttingDown {
			return HealthStatus{Status: HealthDraining, Reason: api.Message}, nil
		}
		return HealthStatus{}, derr
	}
}

// DatasetSnapshot opens the binary snapshot stream of a resident
// fixed-width dataset (GET /v1/datasets/{id}/snapshot): the same
// PSELSNAP frame an upload or a disk snapshot carries, CRC-guarded,
// exported without materializing the keys server-side. The caller owns
// the returned body and must Close it. The declared length is the
// exact encoded size (the server computes it up front). String
// datasets have no snapshot encoding and answer bad_kind. The probe is
// a single attempt — the shipping paths built on it (ShipSnapshot)
// retry whole transfers instead, so a half-read stream is never
// resumed mid-frame.
func (c *Client) DatasetSnapshot(ctx context.Context, id string) (io.ReadCloser, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	path := "/v1/datasets/" + url.PathEscape(id) + "/snapshot"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	if c.Token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if rid, ok := RequestIDFrom(ctx); ok {
		// A ship's correlation id rides the export stream too, so both
		// halves of a snapshot transfer log under one id.
		hreq.Header.Set(RequestIDHeader, rid)
	}
	stampDeadline(hreq, ctx)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	if hres.StatusCode != http.StatusOK {
		defer hres.Body.Close()
		data, rerr := io.ReadAll(io.LimitReader(hres.Body, 1<<20))
		if rerr != nil {
			return nil, 0, fmt.Errorf("parselclient: read snapshot error: %w", rerr)
		}
		return nil, 0, decodeError(hres.StatusCode, data)
	}
	if !isFrameContentType(hres.Header.Get("Content-Type")) {
		hres.Body.Close()
		return nil, 0, fmt.Errorf("parselclient: snapshot response is %q, not a frame",
			hres.Header.Get("Content-Type"))
	}
	return hres.Body, hres.ContentLength, nil
}

// ShipSourceError wraps a ShipSnapshot failure that originated on the
// source daemon's snapshot export rather than the destination's
// ingest. errors.As lets a caller attribute the fault to the right
// node — Err is the raw source-side cause, still classifiable with
// Retryable — before deciding which end to fail over or mark down.
type ShipSourceError struct{ Err error }

func (e *ShipSourceError) Error() string {
	return "parselclient: snapshot source: " + e.Err.Error()
}

func (e *ShipSourceError) Unwrap() error { return e.Err }

// ShipSnapshot replicates a resident fixed-width dataset from this
// daemon to another: the source's snapshot stream becomes the
// destination's frame upload, flowing end to end without the keys ever
// materializing in the shipping process — zero-copy on both daemons
// (Dataset.View on export, RestoreDataset on ingest). Each retry
// attempt reopens the source stream, so a torn transfer replays whole;
// CRCs on every section mean a corrupt hop is refused (bad_frame), not
// absorbed. The destination ends up with a bit-identical replica under
// the same id. Retries follow dst's RetryPolicy.
func (c *Client) ShipSnapshot(ctx context.Context, id string, dst *Client) (DatasetInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := RequestIDFrom(ctx); !ok {
		// One id for the whole transfer: the export stream and the ingest
		// upload log under it on both daemons.
		ctx = WithRequestID(ctx, NewRequestID())
	}
	body := func(actx context.Context) (io.Reader, int64, string, error) {
		rc, length, err := c.DatasetSnapshot(actx, id)
		if err != nil {
			// A source failure is not the destination's transient fault:
			// it surfaces immediately (the retry loop treats body-build
			// errors as permanent), wrapped in ShipSourceError so callers
			// can blame the right node. Callers wanting source-side
			// failover retry the whole ship against another holder.
			return nil, 0, "", &ShipSourceError{Err: err}
		}
		return rc, length, ContentTypeFrame, nil
	}
	var info DatasetInfo
	path := "/v1/datasets/" + url.PathEscape(id)
	if err := dst.do(ctx, http.MethodPut, path, body, false, &info); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Health probes /healthz; nil means the daemon is accepting queries
// (healthy or degraded — a degraded daemon still serves). Use Healthz
// for the three-state verdict.
func (c *Client) Health(ctx context.Context) error {
	hs, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if hs.Status == HealthDraining {
		return &APIError{
			Status:  http.StatusServiceUnavailable,
			Code:    CodeShuttingDown,
			Message: "daemon is draining",
		}
	}
	return nil
}
