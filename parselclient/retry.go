package parselclient

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Retry semantics: the self-healing half of the client.
//
// A Client with a RetryPolicy transparently retries transient failures
// — connection resets, truncated or corrupted response bodies, 429
// admission rejections (honoring the server's Retry-After hint), 5xx
// faults — with capped exponential backoff and full jitter, under two
// deadline budgets (per-attempt and overall) and a token-bucket retry
// budget that keeps a retrying client fleet from amplifying an outage
// into a retry storm.
//
// Retrying is safe across the whole wire surface because every
// operation is idempotent: queries (shard-carrying and dataset) are
// pure reads, GET/DELETE are idempotent by construction, and a dataset
// PUT replayed after an ambiguous outcome (e.g. a truncated 200)
// simply replaces the dataset with identical contents under a fresh
// upload generation — the daemon's generation semantics make the
// replay indistinguishable from a deliberate re-upload.
//
// What retries and what does not (see the README's Resilience table):
//
//   - transport errors (reset, refused, EOF, unreadable/corrupt body):
//     retried — the bytes never formed a trustworthy response;
//   - 429 queue_full / pool_timeout: retried, Retry-After honored;
//   - 503 shutting_down and other 5xx (incl. 500 internal): retried —
//     transient by contract (a draining daemon's replacement, a
//     recovered panic);
//   - every 4xx validation failure, 404 dataset_not_found, 413
//     too_large / resident_budget: NOT retried — resending the same
//     request cannot change the verdict;
//   - context cancellation or the caller's deadline expiring: never
//     retried (an attempt exceeding only its per-attempt budget is).

// DeadlineHeader is the end-to-end deadline propagation header: the
// client stamps its remaining deadline budget, in milliseconds, on
// every attempt, and the daemon caps its admission wait at that budget
// — a query whose caller has given up never occupies a machine.
const DeadlineHeader = "X-Parsel-Deadline"

// RetryPolicy configures a Client's self-healing behavior. The zero
// value disables retries (single attempt, exactly the pre-policy
// client); set MaxAttempts > 1 to enable them.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per operation, the first
	// included. 0 or 1 means no retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: before retry n the
	// client sleeps a uniformly jittered duration in
	// [0, min(MaxDelay, BaseDelay*2^(n-1))] — "full jitter", so a
	// synchronized client fleet desynchronizes instead of thundering
	// back together. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. Default 2s.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; an attempt
	// exceeding it is abandoned and retried (the overall context
	// permitting), so one black-holed connection cannot eat the whole
	// deadline budget. 0 means attempts are bounded only by the
	// caller's context.
	AttemptTimeout time.Duration
	// MaxElapsed bounds the whole operation, attempts and sleeps
	// included, in addition to the caller's context. 0 means the
	// context alone bounds it.
	MaxElapsed time.Duration
	// BudgetRatio is the token-bucket retry budget: every fresh
	// operation deposits BudgetRatio tokens (the bucket starts full at
	// BudgetBurst and is capped there), and every retry withdraws one —
	// so in steady state retries are at most BudgetRatio of traffic,
	// and a hard outage drains the bucket instead of multiplying load.
	// 0 means the default 0.1; a negative ratio disables the budget
	// (unlimited retries, for controlled chaos harnesses).
	BudgetRatio float64
	// BudgetBurst is the bucket capacity (default 16): how many retries
	// a quiet client can spend on a sudden fault burst.
	BudgetBurst float64
	// Seed seeds the jitter stream; 0 draws a random seed. Fixed seeds
	// make retry schedules reproducible in tests.
	Seed uint64
	// Sleep replaces the real backoff sleep — fake-clock mode for
	// tests. Nil sleeps on a timer, honoring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// withDefaults fills the zero-valued knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.BudgetRatio == 0 {
		p.BudgetRatio = 0.1
	}
	if p.BudgetBurst == 0 {
		p.BudgetBurst = 16
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// sleepCtx is the default backoff sleep: a timer raced against the
// context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryStats counts a Client's retry behavior — the per-client
// observability of the resilience layer. Snapshot via
// Client.RetryStats.
type RetryStats struct {
	// Requests counts logical operations started (each may span several
	// attempts).
	Requests int64
	// Attempts counts HTTP attempts issued.
	Attempts int64
	// Retries counts attempts beyond each operation's first.
	Retries int64
	// RetryAfterHonored counts backoffs stretched to a server
	// Retry-After hint.
	RetryAfterHonored int64
	// BudgetExhausted counts retries refused by the token-bucket budget
	// (the error surfaces to the caller instead).
	BudgetExhausted int64
	// GaveUp counts operations that surfaced a retryable error anyway:
	// attempts exhausted, or no deadline budget left to back off in.
	GaveUp int64
}

// retryCounters is the atomic backing store of RetryStats.
type retryCounters struct {
	requests, attempts, retries, retryAfterHonored, budgetExhausted, gaveUp atomic.Int64
}

// snapshot samples the counters.
func (rc *retryCounters) snapshot() RetryStats {
	return RetryStats{
		Requests:          rc.requests.Load(),
		Attempts:          rc.attempts.Load(),
		Retries:           rc.retries.Load(),
		RetryAfterHonored: rc.retryAfterHonored.Load(),
		BudgetExhausted:   rc.budgetExhausted.Load(),
		GaveUp:            rc.gaveUp.Load(),
	}
}

// RetryStats snapshots the client's retry counters.
func (c *Client) RetryStats() RetryStats { return c.retryCount.snapshot() }

// Retryable classifies an error of any client method: true if a retry
// of the same request could plausibly succeed (transient transport or
// server faults, admission rejections), false if the verdict is
// deterministic (validation failures, not-found, budget refusals) or
// the caller's own context ended the operation. A Client with a
// RetryPolicy applies exactly this classification internally; it is
// exported so callers layering their own retry logic agree with it.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		// The failure happened before any bytes hit the wire (a body that
		// cannot marshal); resending cannot change it.
		return false
	}
	var api *APIError
	if errors.As(err, &api) {
		switch api.Code {
		case CodeQueueFull, CodePoolTimeout, CodeShuttingDown:
			return true
		case CodeInternal:
			// Our own daemon's 500s (recovered panics) and any non-JSON
			// intermediary verdict in the retryable status classes.
			return api.Status == http.StatusTooManyRequests ||
				(api.Status >= 500 && api.Status != http.StatusNotImplemented)
		}
		return false
	}
	// No structured response at all: the connection reset, the body
	// was truncated or corrupted, the dial failed. The request may or
	// may not have been processed, and every operation on this wire is
	// idempotent, so retrying is safe.
	return true
}

// budgetDeposit credits the token bucket for one fresh operation.
func (c *Client) budgetDeposit(p RetryPolicy) {
	if p.BudgetRatio < 0 {
		return
	}
	c.retryMu.Lock()
	if !c.budgetInit {
		c.budget = p.BudgetBurst // a fresh client starts with a full bucket
		c.budgetInit = true
	}
	c.budget = min(p.BudgetBurst, c.budget+p.BudgetRatio)
	c.retryMu.Unlock()
}

// budgetWithdraw spends one retry token, or reports the bucket empty.
func (c *Client) budgetWithdraw(p RetryPolicy) bool {
	if p.BudgetRatio < 0 {
		return true
	}
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	if c.budget < 1 {
		return false
	}
	c.budget--
	return true
}

// jitter draws a uniformly jittered backoff in [0, cap] from the
// client's seeded stream.
func (c *Client) jitter(capd time.Duration, p RetryPolicy) time.Duration {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	if c.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = rand.Uint64()
		}
		c.rng = rand.New(rand.NewPCG(seed, 0x726574727970636c)) // "retrypcl"
	}
	if capd <= 0 {
		return 0
	}
	return time.Duration(c.rng.Int64N(int64(capd) + 1))
}

// backoffCap is the un-jittered backoff ceiling before retry number
// retry (1-based): min(MaxDelay, BaseDelay*2^(retry-1)).
func backoffCap(p RetryPolicy, retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	return min(d, p.MaxDelay)
}

// stampDeadline writes the remaining deadline budget of ctx into the
// propagation header, rounded up so a sub-millisecond remainder still
// reads as a deadline rather than "none".
func stampDeadline(hreq *http.Request, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	rem := time.Until(dl)
	if rem <= 0 {
		rem = time.Millisecond
	}
	ms := int64((rem + time.Millisecond - 1) / time.Millisecond)
	hreq.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// parseRetryAfter reads a Retry-After hint in either RFC 9110 form:
// delta-seconds (what the daemon emits) or an HTTP-date (what proxies
// and CDNs in front of it emit). A date in the past clamps to zero, as
// does anything unparsable or absent.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 32); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		return max(time.Until(at), 0)
	}
	return 0
}

// doJSON runs one logical operation whose body (if any) is static
// pre-marshaled JSON — the common case for GET/DELETE and
// info/stats-style requests.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var bf bodyFunc
	if body != nil {
		bf = jsonBody(body)
	}
	return c.do(ctx, method, path, bf, false, out)
}

// do runs one logical operation: attempt, classify, back off, retry —
// the retry loop every client method funnels through. The body is
// rebuilt by bodyFunc for every attempt (fresh stream, fresh
// deadline-derived fields); acceptFrame asks the server for a binary
// result frame. With a zero policy it is a single attempt,
// byte-for-byte the pre-policy client. do also resolves the
// operation's request id (the caller's via WithRequestID, or a fresh
// one) — every attempt, retries included, carries the same id — and
// reports the finished operation's RetryStats delta to the collector,
// if one is listening.
func (c *Client) do(ctx context.Context, method, path string, body bodyFunc, acceptFrame bool, out any) error {
	delta := c.opDelta()
	err := c.doRetries(ctx, method, path, body, acceptFrame, out, delta)
	c.emitOp(method, path, delta, err)
	return err
}

// doRetries is do's retry loop, incrementing the per-operation delta
// (nil when no collector is listening) alongside the cumulative
// counters.
func (c *Client) doRetries(ctx context.Context, method, path string, body bodyFunc, acceptFrame bool, out any, delta *RetryStats) error {
	if ctx == nil {
		ctx = context.Background()
	}
	reqID, ok := RequestIDFrom(ctx)
	if !ok {
		reqID = NewRequestID()
	}
	p := c.Retry.withDefaults()
	c.retryCount.requests.Add(1)
	if delta != nil {
		delta.Requests++
	}
	if p.enabled() {
		c.budgetDeposit(p)
		if p.MaxElapsed > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.MaxElapsed)
			defer cancel()
		}
	}
	for attempt := 1; ; attempt++ {
		c.retryCount.attempts.Add(1)
		if delta != nil {
			delta.Attempts++
		}
		err, retryAfter := c.attempt(ctx, method, path, body, acceptFrame, out, p.AttemptTimeout, reqID)
		if err == nil {
			return nil
		}
		retryable := Retryable(err)
		if !retryable && p.AttemptTimeout > 0 && ctx.Err() == nil &&
			errors.Is(err, context.DeadlineExceeded) {
			// The attempt's own budget expired, not the caller's: the
			// operation still has time, so the attempt is retryable.
			retryable = true
		}
		if !p.enabled() || !retryable || ctx.Err() != nil {
			return err
		}
		if attempt >= p.MaxAttempts {
			c.retryCount.gaveUp.Add(1)
			if delta != nil {
				delta.GaveUp++
			}
			return err
		}
		if !c.budgetWithdraw(p) {
			c.retryCount.budgetExhausted.Add(1)
			if delta != nil {
				delta.BudgetExhausted++
			}
			return err
		}
		delay := c.jitter(backoffCap(p, attempt), p)
		if retryAfter > delay {
			delay = retryAfter
			c.retryCount.retryAfterHonored.Add(1)
			if delta != nil {
				delta.RetryAfterHonored++
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			// No budget left to back off in; surface the last error now
			// rather than sleeping into a guaranteed deadline failure.
			c.retryCount.gaveUp.Add(1)
			if delta != nil {
				delta.GaveUp++
			}
			return err
		}
		if serr := p.Sleep(ctx, delay); serr != nil {
			return err
		}
		c.retryCount.retries.Add(1)
		if delta != nil {
			delta.Retries++
		}
	}
}
