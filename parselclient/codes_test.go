package parselclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"parsel"
)

// typedForCode is the full code -> typed-sentinel mapping APIError.Is
// promises. Codes absent here have no typed sentinel (they are request
// shape errors a caller matches by Code, not errors.Is).
func typedForCode() map[Code]error {
	return map[Code]error{
		CodePoolTimeout:     parsel.ErrPoolTimeout,
		CodeShuttingDown:    parsel.ErrPoolClosed,
		CodeRankRange:       parsel.ErrRankRange,
		CodeBadQuantile:     parsel.ErrBadQuantile,
		CodeNoData:          parsel.ErrNoData,
		CodeNoShards:        parsel.ErrNoShards,
		CodeQueueFull:       ErrQueueFull,
		CodeDatasetNotFound: ErrDatasetNotFound,
		CodeResidentBudget:  ErrResidentBudget,
		CodeUnknownTenant:   ErrUnknownTenant,
		CodeTenantBudget:    ErrTenantBudget,
		CodeBadKind:         ErrKindMismatch,
	}
}

// TestCodesExhaustiveRoundTrip walks every published Code through the
// full client decode path — wire body -> decodeError -> *APIError ->
// errors.Is — and pins that each code maps onto exactly its typed
// sentinel (or none), with no cross-talk between codes. Codes() is the
// closed world: the test also pins that every typed sentinel's code is
// published there, so a new code cannot ship without joining the
// round-trip.
func TestCodesExhaustiveRoundTrip(t *testing.T) {
	typed := typedForCode()
	codes := Codes()
	if len(codes) != 21 {
		t.Fatalf("Codes() published %d codes, want 21 — update this test alongside the constants", len(codes))
	}
	seen := make(map[Code]bool, len(codes))
	for _, code := range codes {
		if seen[code] {
			t.Fatalf("Codes() lists %q twice", code)
		}
		seen[code] = true
		if code == "" {
			t.Fatal("Codes() lists an empty code")
		}

		// Synthesize the exact wire body a daemon writes for this code
		// and decode it like a response.
		status := statusForCode(code)
		body, err := json.Marshal(ErrorBody{Error: ErrorDetail{Code: code, Message: "synthesized"}})
		if err != nil {
			t.Fatal(err)
		}
		derr := decodeError(status, body)
		var ae *APIError
		if !errors.As(derr, &ae) {
			t.Fatalf("%s: decodeError returned %T (%v), want *APIError", code, derr, derr)
		}
		if ae.Code != code || ae.Status != status {
			t.Errorf("%s: decoded (%s, %d), want (%s, %d)", code, ae.Code, ae.Status, code, status)
		}

		// The typed-error mapping, both directions: the code's own
		// sentinel matches, every other code's sentinel does not.
		for other, sentinel := range typed {
			if got, want := errors.Is(ae, sentinel), other == code; got != want {
				t.Errorf("errors.Is(%s, sentinel of %s) = %v, want %v", code, other, got, want)
			}
		}
	}
	for code := range typed {
		if !seen[code] {
			t.Errorf("typed sentinel maps code %q that Codes() does not publish", code)
		}
	}
}

// TestStatusForCodeStable pins the status each code decodes with, so a
// server and an older client never disagree about retryability classes
// (4xx vs 429 vs 5xx) for a published code.
func TestStatusForCodeStable(t *testing.T) {
	want := map[Code]int{
		CodeBadJSON:          http.StatusBadRequest,
		CodeMissingField:     http.StatusBadRequest,
		CodeLimitExceeded:    http.StatusBadRequest,
		CodeTooLarge:         http.StatusRequestEntityTooLarge,
		CodeQueueFull:        http.StatusTooManyRequests,
		CodePoolTimeout:      http.StatusTooManyRequests,
		CodeShuttingDown:     http.StatusServiceUnavailable,
		CodeRankRange:        http.StatusBadRequest,
		CodeBadQuantile:      http.StatusBadRequest,
		CodeNoData:           http.StatusBadRequest,
		CodeNoShards:         http.StatusBadRequest,
		CodeDatasetNotFound:  http.StatusNotFound,
		CodeResidentBudget:   http.StatusRequestEntityTooLarge,
		CodeBadKind:          http.StatusBadRequest,
		CodeUnknownTenant:    http.StatusBadRequest, // 401 comes from the wire status, not the fallback
		CodeTenantBudget:     http.StatusBadRequest, // 413 likewise
		CodeBadDatasetID:     http.StatusBadRequest,
		CodeBadFrame:         http.StatusBadRequest,
		CodeMethodNotAllowed: http.StatusMethodNotAllowed,
		CodeNotFound:         http.StatusNotFound,
		CodeInternal:         http.StatusInternalServerError,
	}
	for _, code := range Codes() {
		w, ok := want[code]
		if !ok {
			t.Errorf("no pinned status for %s — update this test alongside the constants", code)
			continue
		}
		if got := statusForCode(code); got != w {
			t.Errorf("statusForCode(%s) = %d, want %d", code, got, w)
		}
	}
}
