package parselclient

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 Retry-After forms. The daemon
// emits delta-seconds; HTTP-dates arrive from proxies and CDNs in
// front of it — before the fix those parsed as zero and the retry loop
// hammered the origin with no pause.
func TestParseRetryAfter(t *testing.T) {
	hdr := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}

	// Exact verdicts: delta-seconds, clamps, garbage, absence.
	exact := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"absent", "", 0},
		{"delta", "2", 2 * time.Second},
		{"delta zero", "0", 0},
		{"delta negative", "-5", 0},
		{"garbage", "soon", 0},
		{"fractional", "1.5", 0},
	}
	for _, tc := range exact {
		if got := parseRetryAfter(hdr(tc.v)); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}

	// A future HTTP-date yields roughly the interval until it. The
	// result races the wall clock, so assert a window.
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(hdr(future)); got < 80*time.Second || got > 91*time.Second {
		t.Errorf("future date: parseRetryAfter(%q) = %v, want ~90s", future, got)
	}
	// All three mandatory HTTP-date formats must parse (http.ParseTime
	// handles RFC 850 and ANSI C asctime too).
	asctime := time.Now().Add(60 * time.Second).UTC().Format(time.ANSIC)
	if got := parseRetryAfter(hdr(asctime)); got < 50*time.Second || got > 61*time.Second {
		t.Errorf("asctime date: parseRetryAfter(%q) = %v, want ~60s", asctime, got)
	}
	// A date in the past clamps to zero rather than going negative.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(hdr(past)); got != 0 {
		t.Errorf("past date: parseRetryAfter(%q) = %v, want 0", past, got)
	}
}

// TestIsFrameContentType pins case-insensitive media-type matching
// (RFC 9110 §8.3.1) with and without parameters — a proxy may legally
// rewrite the casing, and before the fix any non-lowercase form made
// the client misread a binary frame as JSON.
func TestIsFrameContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want bool
	}{
		{ContentTypeFrame, true},
		{"Application/X-Parsel-Frame", true},
		{"APPLICATION/X-PARSEL-FRAME", true},
		{"application/x-parsel-frame; v=1", true},
		{"Application/X-Parsel-Frame;charset=binary", true},
		{"  application/x-parsel-frame", true},
		{"application/json", false},
		{"application/x-parsel-frame2", false},
		{"", false},
	}
	for _, tc := range cases {
		if got := isFrameContentType(tc.ct); got != tc.want {
			t.Errorf("isFrameContentType(%q) = %v, want %v", tc.ct, got, tc.want)
		}
	}
}
