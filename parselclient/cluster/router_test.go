package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"parsel/parselclient"
)

// TestRouterPlaceSetNodesConcurrent pins that routing reads (Place,
// Client, alive, the node sweep Delete and Rebalance walk) are safe
// against a concurrent SetNodes — the documented usage has queries in
// flight across a membership change. Run under -race this catches any
// unguarded read of the ring pointer or replica count.
func TestRouterPlaceSetNodesConcurrent(t *testing.T) {
	fleets := [][]string{
		{"http://n1:7075", "http://n2:7075", "http://n3:7075"},
		{"http://n1:7075", "http://n2:7075", "http://n3:7075", "http://n4:7075"},
		{"http://n2:7075", "http://n3:7075"},
	}
	r, err := New(Config{Nodes: fleets[0], Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("ds-%d-%d", g, i%50)
				replicas := r.Place(id)
				if len(replicas) == 0 {
					t.Error("Place returned no replicas")
					return
				}
				for _, n := range r.nodes() {
					r.alive(n)
					r.Client(n) // may be nil mid-transition; that is the contract
				}
				r.Stats()
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if err := r.SetNodes(fleets[i%len(fleets)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestMarkShipDownAttribution pins which node a failed snapshot ship
// takes out of rotation: a transient source-side export failure
// indicts the source, a transient destination failure the destination,
// and deterministic rejections (budget, bad kind) mark nobody — a node
// that said no is not a node that is down.
func TestMarkShipDownAttribution(t *testing.T) {
	transient := &parselclient.APIError{Status: 503, Code: parselclient.CodeShuttingDown, Message: "draining"}
	deterministic := &parselclient.APIError{Status: 413, Code: parselclient.CodeResidentBudget, Message: "full"}
	cases := []struct {
		name     string
		err      error
		wantDown []string
	}{
		{"source transient", &parselclient.ShipSourceError{Err: transient}, []string{"src"}},
		{"source deterministic", &parselclient.ShipSourceError{Err: deterministic}, nil},
		{"dest transient", transient, []string{"dst"}},
		{"dest deterministic", deterministic, nil},
		{"dest transport", errors.New("connection refused"), []string{"dst"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := New(Config{Nodes: []string{"src", "dst"}, Replicas: 2})
			if err != nil {
				t.Fatal(err)
			}
			r.markShipDown("src", "dst", c.err)
			down := r.Stats().Down
			if len(down) != len(c.wantDown) {
				t.Fatalf("down = %v, want %v", down, c.wantDown)
			}
			for i := range down {
				if down[i] != c.wantDown[i] {
					t.Fatalf("down = %v, want %v", down, c.wantDown)
				}
			}
		})
	}
}
