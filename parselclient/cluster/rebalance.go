package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"parsel/parselclient"
)

// SetNodes replaces the fleet's node list: the ring is rebuilt,
// clients for surviving nodes are kept (their connection pools and
// retry budgets carry over), clients for new nodes are built from the
// Router's options, and departed nodes are dropped from the health
// view. Datasets do not move until Rebalance is called — between the
// two, queries for ids whose placement changed may fail over to a
// node that does not hold a copy yet, so the usual sequence is
// SetNodes immediately followed by Rebalance.
func (r *Router) SetNodes(nodes []string) error {
	ring, err := NewRing(nodes, r.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = ring
	r.cfg.Nodes = ring.Nodes()
	if r.cfg.Replicas > len(nodes) {
		r.cfg.Replicas = len(nodes)
	}
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
		if r.clients[n] == nil {
			r.clients[n] = parselclient.New(n, r.opts...)
		}
	}
	for n := range r.clients {
		if !keep[n] {
			delete(r.clients, n)
			delete(r.downAt, n)
		}
	}
	return nil
}

// RebalanceReport says what a Rebalance pass did.
type RebalanceReport struct {
	// Datasets is how many tracked datasets were examined.
	Datasets int
	// Shipped counts node-to-node snapshot transfers that filled a
	// desired replica.
	Shipped int
	// Deleted counts surplus copies removed from nodes no longer in a
	// dataset's replica set.
	Deleted int
	// Pinned lists string datasets (no snapshot encoding) whose desired
	// placement could not be reached by shipping; their copies stay
	// where they are. Re-upload them to move them.
	Pinned []string
	// Lost lists datasets with no reachable copy anywhere — nothing to
	// ship from. They need a fresh upload.
	Lost []string
	// Errors collects per-dataset failures that left the pass
	// incomplete for that id (the others still proceed).
	Errors []string
}

// Rebalance moves every tracked dataset onto its current replica set:
// for each id it finds the nodes actually holding a copy, ships
// snapshots node-to-node into desired replicas that lack one, and —
// once the desired set is fully populated — deletes surplus copies
// from nodes the ring no longer assigns. Keys never transit the
// client. String datasets cannot ship; copies already on desired
// nodes count, but missing ones are reported in Pinned rather than
// filled.
//
// The pass is idempotent and crash-safe: it only deletes a copy after
// every desired replica confirms one, so interrupting it can leave
// surplus copies (cleaned by the next pass, or by TTL) but never a
// shortfall it created.
func (r *Router) Rebalance(ctx context.Context) (RebalanceReport, error) {
	var rep RebalanceReport
	tracked := r.Datasets()
	ids := make([]string, 0, len(tracked))
	for id := range tracked {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	allNodes := r.nodes()
	for _, id := range ids {
		rep.Datasets++
		kind := tracked[id]
		desired := r.Place(id)
		want := make(map[string]bool, len(desired))
		for _, n := range desired {
			want[n] = true
		}

		// Census: which nodes hold a copy right now? Info is
		// kind-independent, so the int64 handle serves every kind.
		holders := make(map[string]bool, len(desired))
		var censusErr error
		for _, node := range allNodes {
			if !r.alive(node) {
				continue
			}
			c := r.Client(node)
			if c == nil { // node removed by a concurrent SetNodes
				continue
			}
			_, err := parselclient.Keyed[int64](c).Dataset(id).Info(ctx)
			switch {
			case err == nil:
				holders[node] = true
			case errors.Is(err, parselclient.ErrDatasetNotFound):
				// not here — fine
			default:
				if parselclient.Retryable(err) {
					r.markDown(node, err)
				}
				censusErr = err
			}
		}
		if len(holders) == 0 {
			if censusErr != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: census: %v", id, censusErr))
			} else {
				rep.Lost = append(rep.Lost, id)
			}
			continue
		}

		// Fill desired replicas that lack a copy. Prefer shipping from
		// a holder that is itself desired (it keeps its copy — the read
		// load spreads), fall back to any holder.
		sources := make([]string, 0, len(holders))
		for _, n := range desired {
			if holders[n] {
				sources = append(sources, n)
			}
		}
		var surplus []string
		for n := range holders {
			if !want[n] {
				surplus = append(surplus, n)
			}
		}
		sort.Strings(surplus)
		sources = append(sources, surplus...)
		filled := true
		for _, dst := range desired {
			if holders[dst] {
				continue
			}
			if kind == parselclient.KeyKindString {
				rep.Pinned = append(rep.Pinned, id)
				filled = false
				break
			}
			var shipErr error
			shipped := false
			dstC := r.Client(dst)
			if dstC == nil { // placement raced a SetNodes; next pass recomputes
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: ship to %s: node no longer in fleet", id, dst))
				filled = false
				continue
			}
			for _, src := range sources {
				if src == dst {
					continue
				}
				srcC := r.Client(src)
				if srcC == nil {
					continue
				}
				_, err := srcC.ShipSnapshot(ctx, id, dstC)
				if err == nil {
					holders[dst] = true
					shipped = true
					r.bump(&r.shipped)
					rep.Shipped++
					r.logf("cluster: rebalance: shipped %q %s -> %s", id, src, dst)
					break
				}
				shipErr = err
				r.markShipDown(src, dst, err)
			}
			if !shipped {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: ship to %s: %v", id, dst, shipErr))
				filled = false
			}
		}

		// Only once every desired replica holds a copy is a surplus
		// copy safe to drop.
		if !filled {
			continue
		}
		for _, node := range surplus {
			c := r.Client(node)
			if c == nil { // departed the fleet along with its surplus copy
				continue
			}
			_, err := parselclient.Keyed[int64](c).Dataset(id).Delete(ctx)
			if err != nil && !errors.Is(err, parselclient.ErrDatasetNotFound) {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: delete surplus on %s: %v", id, node, err))
				continue
			}
			rep.Deleted++
			r.logf("cluster: rebalance: dropped surplus %q from %s", id, node)
		}
	}
	return rep, nil
}
