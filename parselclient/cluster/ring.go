// Package cluster routes datasets across a fleet of parseld nodes from
// the client library — no coordinator process, no server-side
// membership protocol. Placement is a consistent-hash ring keyed on
// dataset id: every client that knows the node list computes the same
// placement independently, so the "cluster" is nothing but N ordinary
// daemons plus this library agreeing on arithmetic. Replication ships
// snapshots between nodes (the binary dataset format both ends already
// speak, zero-copy on both), queries fail over across replicas, and a
// ring change rebalances by shipping — resident keys move between
// nodes without ever transiting the client again.
//
// The topology deliberately mirrors the paper's own model: selection
// on a p-processor coarse-grained machine scales by adding processors
// that each own a shard of the data; serving scales the same way, with
// datasets in place of shards and daemons in place of processors.
//
// String-keyed datasets are the one caveat: they have no snapshot
// encoding (serve-only, like the daemon's own persistence), so they
// cannot ship between nodes. Uploads replicate them by re-sending the
// client's shards to each replica, and Rebalance pins them — they stay
// where they are and the report names them.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVirtualNodes is how many ring points each node contributes
// when Config.VirtualNodes is zero. 64 points per node keeps the
// largest/smallest node share within a few tens of percent for small
// fleets — tight enough that no node needs 2x the memory of another —
// while the ring stays a few KiB.
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a physical node.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a consistent-hash ring over a fixed node list. It is
// immutable after construction (a membership change builds a new Ring),
// so reads need no locking. Placement depends only on the node names
// and VirtualNodes — never on map order, process identity or time — so
// every client computes identical placements.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring with vnodes points per node (0 means the
// default 64). Node names must be non-empty and unique — they are the
// hash keys, so two spellings of one node would silently double it.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name at index %d", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(n + "#" + strconv.Itoa(v)),
				node: i,
			})
		}
	}
	// Sort by hash; ties (vanishingly rare but possible) break by node
	// index so the ring order is fully deterministic.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// ringHash is FNV-1a 64 followed by a splitmix64-style finalizer —
// both fixed algorithms, so the value is stable across processes,
// architectures and Go releases (unlike maphash), which is what makes
// coordinator-free placement possible. The finalizer matters: raw
// FNV-1a of strings that differ only in a short suffix ("node#0"
// through "node#63") lands within a ~2^46-wide window of the circle,
// because the last byte contributes at most 255 multiples of the FNV
// prime. Without the mix, one node's vnodes all clump together and the
// ring balances no better than a single point per node.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's node list in construction order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Place returns the replicas distinct nodes owning a dataset id, in
// preference order: the first is the primary (the node whose ring
// point follows the id's hash), the rest are successors clockwise.
// replicas is clamped to the node count. The walk skips points of
// already-chosen nodes, which is exactly what makes movement minimal:
// a node joining or leaving only reassigns the ids whose walk crossed
// its points, about 1/n of the keyspace per replica.
func (r *Ring) Place(id string, replicas int) []string {
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(r.nodes) {
		replicas = len(r.nodes)
	}
	h := ringHash(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	chosen := make([]string, 0, replicas)
	taken := make(map[int]bool, replicas)
	for i := 0; i < len(r.points) && len(chosen) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		chosen = append(chosen, r.nodes[p.node])
	}
	return chosen
}
