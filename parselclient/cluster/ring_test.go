package cluster

import (
	"fmt"
	"testing"
)

// TestRingHashStable pins the hash function itself: FNV-1a 64 plus the
// splitmix64 finalizer, on known strings. If this ever moves, every
// deployed client disagrees about placement — it is the one constant
// the coordinator-free design hangs on.
func TestRingHashStable(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xf52a15e9a9b5e89b},
		{"a", 0x2c0bdbf481420f8},
		{"hello", 0x16fe05a1c75bcd0f},
	}
	for _, c := range cases {
		if got := ringHash(c.in); got != c.want {
			t.Errorf("ringHash(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestRingDeterministicAcrossBuilds pins that two independently built
// rings (fresh maps, fresh sorts — everything that could introduce
// process-local order) place a large id population identically, and
// that placement golden values hold for fixed inputs. The golden rows
// are what a different process, machine or Go release must reproduce.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	nodes := []string{"http://n1:7075", "http://n2:7075", "http://n3:7075"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("dataset-%d", i)
		p1, p2 := r1.Place(id, 2), r2.Place(id, 2)
		if len(p1) != 2 || p1[0] != p2[0] || p1[1] != p2[1] {
			t.Fatalf("placement of %q differs between identical rings: %v vs %v", id, p1, p2)
		}
	}
	golden := map[string][]string{
		"alpha":   {"http://n2:7075", "http://n1:7075"},
		"beta":    {"http://n1:7075", "http://n2:7075"},
		"gamma":   {"http://n2:7075", "http://n3:7075"},
		"metrics": {"http://n2:7075", "http://n1:7075"},
	}
	for id, want := range golden {
		got := r1.Place(id, 2)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("golden placement of %q = %v, want %v", id, got, want)
		}
	}
}

// TestRingBalance pins the distribution bound the vnode count buys: over
// a large id population on a small fleet, no node's primary share may
// drift past 2x even or below half of it.
func TestRingBalance(t *testing.T) {
	for _, nNodes := range []int{2, 3, 5, 8} {
		nodes := make([]string, nNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://node-%d:7075", i)
		}
		r, err := NewRing(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		const ids = 20000
		counts := make(map[string]int, nNodes)
		for i := 0; i < ids; i++ {
			counts[r.Place(fmt.Sprintf("id-%d", i), 1)[0]]++
		}
		even := ids / nNodes
		for _, n := range nodes {
			c := counts[n]
			if c < even/2 || c > even*2 {
				t.Errorf("%d nodes: %s owns %d of %d ids, outside [%d, %d]",
					nNodes, n, c, ids, even/2, even*2)
			}
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract on a
// membership change: adding a node moves roughly 1/n of primaries, all
// of them onto the new node; every unmoved id keeps its primary.
// Removing a node moves only the departed node's ids.
func TestRingMinimalMovement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	before, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	joined := "http://f:1"
	after, err := NewRing(append(append([]string{}, nodes...), joined), 0)
	if err != nil {
		t.Fatal(err)
	}
	const ids = 20000
	movedIn := 0
	for i := 0; i < ids; i++ {
		id := fmt.Sprintf("id-%d", i)
		pb, pa := before.Place(id, 1)[0], after.Place(id, 1)[0]
		if pb == pa {
			continue
		}
		if pa != joined {
			t.Fatalf("id %q moved %s -> %s, but only the joiner may gain ids", id, pb, pa)
		}
		movedIn++
	}
	// The joiner should take about 1/6 of the keyspace; allow generous
	// slack for vnode variance but reject wholesale reshuffles.
	if movedIn < ids/12 || movedIn > ids/3 {
		t.Errorf("join moved %d of %d primaries, want about %d", movedIn, ids, ids/6)
	}

	// Symmetric check: removing e moves exactly e's ids.
	removed := "http://e:1"
	shrunk, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	movedOut := 0
	for i := 0; i < ids; i++ {
		id := fmt.Sprintf("id-%d", i)
		pb, pa := before.Place(id, 1)[0], shrunk.Place(id, 1)[0]
		if pb == removed {
			movedOut++
			continue
		}
		if pa != pb {
			t.Fatalf("id %q moved %s -> %s though its owner never left", id, pb, pa)
		}
	}
	if movedOut == 0 {
		t.Error("removed node owned zero ids — balance test should have caught this")
	}
}

// TestRingReplicaSets pins replica-set mechanics: distinct nodes,
// clamping past the fleet size, and stability of the full set across
// calls.
func TestRingReplicaSets(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("id-%d", i)
		got := r.Place(id, 5) // more replicas than nodes: clamp to all 3
		if len(got) != 3 {
			t.Fatalf("Place(%q, 5) = %v, want all 3 nodes", id, got)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("Place(%q) repeats node %s", id, n)
			}
			seen[n] = true
		}
		// The 2-replica set is a prefix of the 3-replica walk.
		two := r.Place(id, 2)
		if two[0] != got[0] || two[1] != got[1] {
			t.Fatalf("Place(%q, 2) = %v is not a prefix of %v", id, two, got)
		}
	}
}

// TestNewRingRejects pins construction validation.
func TestNewRingRejects(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 0); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
}
