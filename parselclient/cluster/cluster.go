package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"parsel"
	"parsel/internal/obs"
	"parsel/parselclient"
)

// defaultRecovery is how long a node marked down stays out of rotation
// before the router optimistically tries it again. Long enough that a
// crashed node is not hammered on every query, short enough that a
// bounced daemon rejoins within a breath.
const defaultRecovery = 5 * time.Second

// Config describes the fleet a Router places datasets on.
type Config struct {
	// Nodes are the daemons' base URLs (e.g. "http://10.0.0.1:7075").
	// The URL strings are the ring's hash keys: every client must use
	// the same spellings, and renaming a node moves its share of the
	// ring.
	Nodes []string

	// Replicas is how many nodes hold each dataset (clamped to
	// len(Nodes); 0 means 2). With R replicas, queries survive R-1 node
	// failures without re-uploading anything.
	Replicas int

	// VirtualNodes is the number of ring points per node (0 means 64).
	// All clients of one fleet must agree on it.
	VirtualNodes int

	// RecoveryInterval is how long a failed node stays out of query
	// rotation before being retried (0 means 5s).
	RecoveryInterval time.Duration

	// Logf, when set, receives one line per routing event worth a
	// human's attention: nodes marked down or recovered, replication
	// shortfalls, rebalance moves.
	Logf func(format string, args ...any)

	// Logger, when set, receives the same routing events as structured
	// records with typed attrs (node, dataset, err) — markdowns at Warn,
	// recoveries at Info. It takes precedence over Logf.
	Logger *slog.Logger

	// Collector, when set, is installed on every per-node client (see
	// parselclient.Collector) and additionally receives the router's own
	// events — "cluster.failover", "cluster.ship", "cluster.reupload",
	// "cluster.shortfall" — with a zero RetryStats delta, so client
	// retries and router traffic shaping land in one scrapeable place.
	Collector parselclient.Collector

	now func() time.Time // test hook; nil means time.Now
}

// Stats counts the router's traffic-shaping decisions since New.
type Stats struct {
	// Shipped counts node-to-node snapshot transfers (replication fills
	// and rebalance moves). The client never touched those keys.
	Shipped int64
	// Reuploads counts replica fills that re-sent client-held shards
	// over the wire — only string datasets, which have no snapshot
	// encoding.
	Reuploads int64
	// Failovers counts queries answered by a replica other than the
	// first one tried.
	Failovers int64
	// ReplicaShortfalls counts uploads that returned success with fewer
	// live copies than Config.Replicas (some replica was down; a later
	// Rebalance repairs it).
	ReplicaShortfalls int64
	// Down lists nodes currently out of query rotation, sorted.
	Down []string
}

// Router places datasets on a fleet of parseld nodes by consistent
// hashing and routes every dataset operation to the right replicas. It
// is safe for concurrent use. The Router holds no dataset bytes and no
// authority — any number of Routers (in any number of processes) serve
// the same fleet correctly as long as they share the Config.
type Router struct {
	cfg  Config
	ring *Ring
	log  *slog.Logger // resolved from Logger/Logf; discards when neither is set

	mu      sync.Mutex
	clients map[string]*parselclient.Client
	downAt  map[string]time.Time // node -> when marked down
	reg     map[string]string    // placed dataset id -> key kind
	opts    []parselclient.Option

	shipped    int64
	reuploads  int64
	failovers  int64
	shortfalls int64
}

// New builds a Router over cfg.Nodes, constructing one
// parselclient.Client per node from opts — the same option values
// (token, binary, retry policy, limits) a single-node caller would
// pass to parselclient.New, applied uniformly across the fleet.
func New(cfg Config, opts ...parselclient.Option) (*Router, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("cluster: negative replicas %d", cfg.Replicas)
	}
	if cfg.Replicas > len(cfg.Nodes) {
		cfg.Replicas = len(cfg.Nodes)
	}
	if cfg.RecoveryInterval <= 0 {
		cfg.RecoveryInterval = defaultRecovery
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	ring, err := NewRing(cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil && cfg.Logf != nil {
		log = obs.LogfLogger(cfg.Logf)
	}
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if cfg.Collector != nil {
		// Every per-node client reports through the same hook; the slice
		// is stored, so SetNodes-added clients inherit it too.
		opts = append(opts, parselclient.WithCollector(cfg.Collector))
	}
	r := &Router{
		cfg:     cfg,
		ring:    ring,
		log:     log,
		clients: make(map[string]*parselclient.Client, len(cfg.Nodes)),
		downAt:  make(map[string]time.Time),
		reg:     make(map[string]string),
		opts:    opts,
	}
	for _, n := range ring.Nodes() {
		r.clients[n] = parselclient.New(n, opts...)
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
		return
	}
	r.log.Info(fmt.Sprintf(format, args...))
}

// collect reports a router-level event to the configured Collector
// (zero retry delta — the per-node clients report those themselves).
func (r *Router) collect(op string, err error) {
	if r.cfg.Collector != nil {
		r.cfg.Collector.ClientOp(op, parselclient.RetryStats{}, err)
	}
}

// Place returns the replica set for a dataset id in preference order
// (primary first). Exposed so operators can answer "where does this
// dataset live?" without a coordinator to ask.
func (r *Router) Place(id string) []string {
	r.mu.Lock()
	ring, replicas := r.ring, r.cfg.Replicas
	r.mu.Unlock()
	return ring.Place(id, replicas)
}

// nodes returns the current fleet's node list. The ring pointer is
// read under the lock (SetNodes swaps it); the Ring itself is
// immutable, so the walk needs no further guarding.
func (r *Router) nodes() []string {
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	return ring.Nodes()
}

// Client returns the per-node client for a node named in Config.Nodes,
// or nil for an unknown node. Useful for node-scoped operations (stats,
// health) outside the router's routing.
func (r *Router) Client(node string) *parselclient.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clients[node]
}

// alive reports whether a node is in query rotation. A node marked
// down re-enters rotation after RecoveryInterval — optimistically, so
// a recovered daemon starts taking traffic without an explicit probe;
// if it is still dead the next failure marks it right back down.
func (r *Router) alive(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, down := r.downAt[node]
	return !down || r.cfg.now().Sub(at) >= r.cfg.RecoveryInterval
}

func (r *Router) markDown(node string, err error) {
	r.mu.Lock()
	_, was := r.downAt[node]
	r.downAt[node] = r.cfg.now()
	r.mu.Unlock()
	if !was {
		r.log.Warn("cluster: node out of rotation", "node", node, "err", err)
	}
}

// markShipDown updates the health view after a failed snapshot ship,
// attributing the fault to the side that produced it: a source-side
// export failure (ShipSourceError) indicts src — the destination never
// saw bytes — anything else reached dst. Either way only transient
// faults take a node out of rotation; deterministic rejections (budget
// exceeded, bad_kind) mean the node is healthy and just said no, and
// pulling it from query rotation would cause needless failovers.
func (r *Router) markShipDown(src, dst string, err error) {
	var se *parselclient.ShipSourceError
	if errors.As(err, &se) {
		if parselclient.Retryable(se.Err) {
			r.markDown(src, err)
		}
		return
	}
	if parselclient.Retryable(err) {
		r.markDown(dst, err)
	}
}

func (r *Router) markUp(node string) {
	r.mu.Lock()
	_, was := r.downAt[node]
	delete(r.downAt, node)
	r.mu.Unlock()
	if was {
		r.log.Info("cluster: node back in rotation", "node", node)
	}
}

// ProbeHealth checks every node's /healthz and updates the rotation
// view: draining or unreachable nodes leave rotation, healthy (or
// degraded — still answering queries) nodes rejoin. Returns each
// node's verdict, nil meaning in rotation. Callers run it on a ticker;
// between probes the router learns the same facts passively from
// request failures.
func (r *Router) ProbeHealth(ctx context.Context) map[string]error {
	verdicts := make(map[string]error, len(r.clients))
	var wg sync.WaitGroup
	var vmu sync.Mutex
	for node, c := range r.snapshotClients() {
		wg.Add(1)
		go func(node string, c *parselclient.Client) {
			defer wg.Done()
			hs, err := c.Healthz(ctx)
			if err == nil && hs.Status == parselclient.HealthDraining {
				err = fmt.Errorf("cluster: node draining: %s", hs.Reason)
			}
			if err != nil {
				r.markDown(node, err)
			} else {
				r.markUp(node)
			}
			vmu.Lock()
			verdicts[node] = err
			vmu.Unlock()
		}(node, c)
	}
	wg.Wait()
	return verdicts
}

func (r *Router) snapshotClients() map[string]*parselclient.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]*parselclient.Client, len(r.clients))
	for k, v := range r.clients {
		m[k] = v
	}
	return m
}

// Stats returns a snapshot of the router's counters and rotation view.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Shipped:           r.shipped,
		Reuploads:         r.reuploads,
		Failovers:         r.failovers,
		ReplicaShortfalls: r.shortfalls,
	}
	now := r.cfg.now()
	for n, at := range r.downAt {
		if now.Sub(at) < r.cfg.RecoveryInterval {
			s.Down = append(s.Down, n)
		}
	}
	sort.Strings(s.Down)
	return s
}

// Datasets lists the dataset ids this Router has placed (uploaded or
// observed via Rebalance input), with their key kinds. It is this
// Router's memory, not cluster truth — another Router's uploads are
// invisible until registered via Track.
func (r *Router) Datasets() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]string, len(r.reg))
	for k, v := range r.reg {
		m[k] = v
	}
	return m
}

// Track registers a dataset id and key kind (a KeyKind constant) this
// Router did not upload itself, so Rebalance and Delete cover it.
func (r *Router) Track(id, kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg[id] = kind
}

func (r *Router) untrack(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.reg, id)
}

// failoverable decides whether an error from one replica justifies
// trying the next: transient faults by the retry classifier (transport
// errors, overload, shutdown), plus dataset-not-found — a replica that
// lost its copy (restarted before re-replication) is wrong to trust,
// but another replica may well still hold the data.
func failoverable(err error) bool {
	return parselclient.Retryable(err) || errors.Is(err, parselclient.ErrDatasetNotFound)
}

// failover runs op against the dataset's replicas in placement order
// until one succeeds. Nodes out of rotation are deferred, not skipped:
// if every in-rotation replica fails, the out-of-rotation ones get one
// try each before the call fails — availability beats the health
// view's freshness. Deterministic errors (bad rank, kind mismatch …)
// return immediately: every replica would say the same thing, because
// the query outcome is a pure function of the dataset and the query.
//
// Retry amplification stays bounded: each per-node client applies its
// own RetryPolicy budget, and the failover loop visits each replica at
// most once per call.
//
// The operation's request id is resolved here — the caller's via
// parselclient.WithRequestID, or a fresh one — and pinned into the
// context every replica attempt runs under, so one id ties the whole
// failover chain together in every node's logs.
func failover[T any](ctx context.Context, r *Router, id string, op func(ctx context.Context, c *parselclient.Client) (T, error)) (T, error) {
	var zero T
	ctx = withOperationID(ctx)
	replicas := r.Place(id)
	tried := make(map[string]bool, len(replicas))
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, node := range replicas {
			if tried[node] || (pass == 0 && !r.alive(node)) {
				continue
			}
			tried[node] = true
			c := r.Client(node)
			if c == nil {
				continue
			}
			v, err := op(ctx, c)
			if err == nil {
				r.markUp(node)
				if len(tried) > 1 {
					r.bump(&r.failovers)
				}
				return v, nil
			}
			lastErr = err
			if !failoverable(err) {
				return zero, err
			}
			if parselclient.Retryable(err) {
				r.markDown(node, err)
			}
		}
	}
	if lastErr == nil {
		return zero, fmt.Errorf("cluster: no replicas for dataset %q", id)
	}
	return zero, lastErr
}

// withOperationID pins a request id into ctx if the caller has not
// already: every attempt of a multi-node operation then carries the
// same X-Parsel-Request-Id.
func withOperationID(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := parselclient.RequestIDFrom(ctx); !ok {
		ctx = parselclient.WithRequestID(ctx, parselclient.NewRequestID())
	}
	return ctx
}

// KindRouter is the typed view of a Router for key kind K, mirroring
// parselclient.KindClient.
type KindRouter[K parselclient.Key] struct {
	r *Router
}

// Keyed returns the typed view of the router for key kind K:
//
//	ds := cluster.Keyed[float64](router).Dataset("latencies")
func Keyed[K parselclient.Key](r *Router) KindRouter[K] {
	return KindRouter[K]{r: r}
}

// Dataset returns a handle on the dataset with the given id, placed
// and replicated by the router.
func (kr KindRouter[K]) Dataset(id string) *Dataset[K] {
	return &Dataset[K]{r: kr.r, id: id}
}

// DatasetOf is shorthand for Keyed[K](r).Dataset(id).
func DatasetOf[K parselclient.Key](r *Router, id string) *Dataset[K] {
	return &Dataset[K]{r: r, id: id}
}

// Dataset is a replicated resident dataset addressed through the ring.
// Its query surface matches parselclient.RemoteDatasetOf; every query
// fails over across replicas.
type Dataset[K parselclient.Key] struct {
	r  *Router
	id string
}

// ID returns the dataset id.
func (d *Dataset[K]) ID() string { return d.id }

// remote returns the single-node handle for this dataset on c.
func (d *Dataset[K]) remote(c *parselclient.Client) *parselclient.RemoteDatasetOf[K] {
	return parselclient.Keyed[K](c).Dataset(d.id)
}

// Upload makes the dataset resident on its replica set. The shards
// travel the client wire once, to the first live replica in placement
// order; the remaining replicas are filled node-to-node by snapshot
// shipping (int64/float64) or, for string keys — which have no
// snapshot encoding — by re-sending the shards to each replica.
//
// A replica that is down at upload time is skipped and counted in
// Stats.ReplicaShortfalls; Rebalance repairs the shortfall once the
// node returns. The call fails only if no replica accepted the upload.
func (d *Dataset[K]) Upload(ctx context.Context, shards [][]K) (parselclient.DatasetInfo, error) {
	ctx = withOperationID(ctx) // one id for the landing and every replica fill
	replicas := d.r.Place(d.id)
	kind := parselclient.KeyKindOf[K]()

	// Land the shards on the first replica that will take them.
	var info parselclient.DatasetInfo
	var primary string
	var lastErr error
	tried := make(map[string]bool, len(replicas))
	for pass := 0; pass < 2 && primary == ""; pass++ {
		for _, node := range replicas {
			if tried[node] || (pass == 0 && !d.r.alive(node)) {
				continue
			}
			tried[node] = true
			c := d.r.Client(node)
			if c == nil { // node removed by a concurrent SetNodes
				continue
			}
			i, err := d.remote(c).Upload(ctx, shards)
			if err == nil {
				d.r.markUp(node)
				info, primary = i, node
				break
			}
			lastErr = err
			if !failoverable(err) {
				return parselclient.DatasetInfo{}, err
			}
			d.r.markDown(node, err)
		}
	}
	if primary == "" {
		if lastErr == nil {
			lastErr = fmt.Errorf("cluster: no replicas for dataset %q", d.id)
		}
		return parselclient.DatasetInfo{}, lastErr
	}

	// Fill the other replicas.
	live := 1
	for _, node := range replicas {
		if node == primary {
			continue
		}
		if !d.r.alive(node) {
			continue
		}
		dst := d.r.Client(node)
		if dst == nil { // node removed by a concurrent SetNodes
			continue
		}
		var err error
		if kind == parselclient.KeyKindString {
			_, err = d.remote(dst).Upload(ctx, shards)
			if err == nil {
				d.r.bump(&d.r.reuploads)
			} else if parselclient.Retryable(err) {
				d.r.markDown(node, err)
			}
		} else {
			src := d.r.Client(primary)
			if src == nil {
				// The primary left the fleet between landing and fill;
				// the shortfall count below flags it for Rebalance.
				break
			}
			_, err = src.ShipSnapshot(ctx, d.id, dst)
			if err == nil {
				d.r.bump(&d.r.shipped)
			} else {
				d.r.markShipDown(primary, node, err)
			}
		}
		if err != nil {
			d.r.logf("cluster: replicate %q to %s: %v", d.id, node, err)
			continue
		}
		d.r.markUp(node)
		live++
	}
	if live < len(replicas) {
		d.r.bump(&d.r.shortfalls)
	}
	d.r.Track(d.id, kind)
	return info, nil
}

// bump increments one router counter and mirrors the event to the
// Collector, so the scraped view moves in lockstep with Stats().
func (r *Router) bump(counter *int64) {
	var op string
	switch counter {
	case &r.shipped:
		op = "cluster.ship"
	case &r.reuploads:
		op = "cluster.reupload"
	case &r.failovers:
		op = "cluster.failover"
	case &r.shortfalls:
		op = "cluster.shortfall"
	}
	r.mu.Lock()
	*counter++
	r.mu.Unlock()
	if op != "" {
		r.collect(op, nil)
	}
}

// Info fetches the dataset's description from the first replica that
// answers.
func (d *Dataset[K]) Info(ctx context.Context) (parselclient.DatasetInfo, error) {
	return failover(ctx, d.r, d.id, func(ctx context.Context, c *parselclient.Client) (parselclient.DatasetInfo, error) {
		return d.remote(c).Info(ctx)
	})
}

// Delete removes the dataset from every node that holds a copy. The
// sweep covers the whole fleet, not just the current replica set:
// after a SetNodes, copies can linger on ex-replicas until a Rebalance
// surplus-drop, and delete means delete everywhere. Nodes without a
// copy are fine (not-found is success for a delete); the call fails
// only if some copy may remain — a node that was unreachable stays
// suspect. Copies on nodes removed from the fleet entirely are out of
// the router's reach; TTL cleans those.
func (d *Dataset[K]) Delete(ctx context.Context) (parselclient.DatasetInfo, error) {
	ctx = withOperationID(ctx) // one id for the fleet-wide sweep
	var info parselclient.DatasetInfo
	var got bool
	var firstErr error
	for _, node := range d.r.nodes() {
		c := d.r.Client(node)
		if c == nil { // node removed by a concurrent SetNodes
			continue
		}
		i, err := d.remote(c).Delete(ctx)
		switch {
		case err == nil:
			if !got {
				info, got = i, true
			}
		case errors.Is(err, parselclient.ErrDatasetNotFound):
			// already gone — that is what we wanted
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: delete %q on %s: %w", d.id, node, err)
			}
			if parselclient.Retryable(err) {
				d.r.markDown(node, err)
			}
		}
	}
	if firstErr != nil {
		return parselclient.DatasetInfo{}, firstErr
	}
	d.r.untrack(d.id)
	if !got {
		return parselclient.DatasetInfo{}, parselclient.ErrDatasetNotFound
	}
	return info, nil
}

// multiResult bundles the two non-error returns of multi-value queries
// through the generic failover helper.
type multiResult[K parselclient.Key] struct {
	keys   []K
	report parsel.Report
}

func (d *Dataset[K]) scalar(ctx context.Context, op func(rd *parselclient.RemoteDatasetOf[K]) (parsel.Result[K], error)) (parsel.Result[K], error) {
	return failover(ctx, d.r, d.id, func(_ context.Context, c *parselclient.Client) (parsel.Result[K], error) {
		return op(d.remote(c))
	})
}

func (d *Dataset[K]) multi(ctx context.Context, op func(rd *parselclient.RemoteDatasetOf[K]) ([]K, parsel.Report, error)) ([]K, parsel.Report, error) {
	res, err := failover(ctx, d.r, d.id, func(_ context.Context, c *parselclient.Client) (multiResult[K], error) {
		keys, rep, err := op(d.remote(c))
		return multiResult[K]{keys: keys, report: rep}, err
	})
	return res.keys, res.report, err
}

// Select returns the key of the given rank (1-based) from the resident
// dataset.
func (d *Dataset[K]) Select(ctx context.Context, rank int64) (parsel.Result[K], error) {
	return d.scalar(ctx, func(rd *parselclient.RemoteDatasetOf[K]) (parsel.Result[K], error) {
		return rd.Select(ctx, rank)
	})
}

// Median returns the lower median.
func (d *Dataset[K]) Median(ctx context.Context) (parsel.Result[K], error) {
	return d.scalar(ctx, func(rd *parselclient.RemoteDatasetOf[K]) (parsel.Result[K], error) {
		return rd.Median(ctx)
	})
}

// Quantile returns the key at quantile q in (0,1].
func (d *Dataset[K]) Quantile(ctx context.Context, q float64) (parsel.Result[K], error) {
	return d.scalar(ctx, func(rd *parselclient.RemoteDatasetOf[K]) (parsel.Result[K], error) {
		return rd.Quantile(ctx, q)
	})
}

// Quantiles returns the keys at each quantile.
func (d *Dataset[K]) Quantiles(ctx context.Context, qs []float64) ([]K, parsel.Report, error) {
	return d.multi(ctx, func(rd *parselclient.RemoteDatasetOf[K]) ([]K, parsel.Report, error) {
		return rd.Quantiles(ctx, qs)
	})
}

// SelectRanks returns the keys at each requested rank.
func (d *Dataset[K]) SelectRanks(ctx context.Context, ranks []int64) ([]K, parsel.Report, error) {
	return d.multi(ctx, func(rd *parselclient.RemoteDatasetOf[K]) ([]K, parsel.Report, error) {
		return rd.SelectRanks(ctx, ranks)
	})
}

// TopK returns the k largest keys in descending order.
func (d *Dataset[K]) TopK(ctx context.Context, k int) ([]K, parsel.Report, error) {
	return d.multi(ctx, func(rd *parselclient.RemoteDatasetOf[K]) ([]K, parsel.Report, error) {
		return rd.TopK(ctx, k)
	})
}

// BottomK returns the k smallest keys in ascending order.
func (d *Dataset[K]) BottomK(ctx context.Context, k int) ([]K, parsel.Report, error) {
	return d.multi(ctx, func(rd *parselclient.RemoteDatasetOf[K]) ([]K, parsel.Report, error) {
		return rd.BottomK(ctx, k)
	})
}

// Summary returns the five-number summary.
func (d *Dataset[K]) Summary(ctx context.Context) (parsel.FiveNumber[K], parsel.Report, error) {
	type sum struct {
		five   parsel.FiveNumber[K]
		report parsel.Report
	}
	res, err := failover(ctx, d.r, d.id, func(ctx context.Context, c *parselclient.Client) (sum, error) {
		five, rep, err := d.remote(c).Summary(ctx)
		return sum{five: five, report: rep}, err
	})
	return res.five, res.report, err
}

// QueryMany runs a batch of queries in one round trip against the
// first replica that answers. Per-item failures ride inside the batch
// result (they are deterministic); only whole-batch failures fail
// over.
func (d *Dataset[K]) QueryMany(ctx context.Context, queries []parselclient.DatasetQuery) ([]parselclient.QueryManyResultOf[K], error) {
	return failover(ctx, d.r, d.id, func(ctx context.Context, c *parselclient.Client) ([]parselclient.QueryManyResultOf[K], error) {
		return d.remote(c).QueryMany(ctx, queries)
	})
}
