package parselclient

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// TestTimeoutMSExpiredDeadline pins the expired-budget mapping: a
// context whose deadline already passed must yield the 1ms floor, never
// 0 — on the wire 0 means "no timeout", the opposite of a spent budget.
func TestTimeoutMSExpiredDeadline(t *testing.T) {
	c := New("http://unused")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if got := c.timeoutMS(ctx); got != 1 {
		t.Errorf("expired deadline: timeout_ms = %d, want the 1ms floor", got)
	}
	// No deadline and no QueryTimeout still means "no timeout".
	if got := c.timeoutMS(context.Background()); got != 0 {
		t.Errorf("unbounded context: timeout_ms = %d, want 0", got)
	}
	// A QueryTimeout alone keeps working.
	c.QueryTimeout = 250 * time.Millisecond
	if got := c.timeoutMS(context.Background()); got != 250 {
		t.Errorf("QueryTimeout 250ms: timeout_ms = %d, want 250", got)
	}
	// An expired deadline beats a generous QueryTimeout.
	if got := c.timeoutMS(ctx); got != 1 {
		t.Errorf("expired deadline under QueryTimeout: timeout_ms = %d, want 1", got)
	}
}

// TestDecodeErrorRuneBoundary pins that quoting an over-long non-JSON
// error body truncates on a rune boundary: a cut mid-UTF-8-sequence
// would mangle the message.
func TestDecodeErrorRuneBoundary(t *testing.T) {
	// 199 ASCII bytes then a 3-byte rune straddling the 200-byte cut.
	body := strings.Repeat("x", 199) + "€€" // €, bytes 199..201 and 202..204
	err := decodeError(http.StatusBadGateway, []byte(body))
	api, ok := err.(*APIError)
	if !ok {
		t.Fatalf("decodeError returned %T, want *APIError", err)
	}
	if !utf8.ValidString(api.Message) {
		t.Errorf("truncated message is not valid UTF-8: %q", api.Message)
	}
	if !strings.HasSuffix(api.Message, "...") {
		t.Errorf("truncated message %q does not end in ...", api.Message)
	}
	if want := strings.Repeat("x", 199) + "..."; api.Message != want {
		t.Errorf("message %q, want %q (rune backed off the 200-byte cut)", api.Message, want)
	}
	// A short body is quoted untouched.
	if api := decodeError(http.StatusBadGateway, []byte("plain")).(*APIError); api.Message != "plain" {
		t.Errorf("short message %q, want %q", api.Message, "plain")
	}
}

// timeoutEcho records the timeout_ms of every request body it sees,
// failing the first n attempts so the client retries.
type timeoutEcho struct {
	n        int
	timeouts []int64
}

func (h *timeoutEcho) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req Request
	body, _ := io.ReadAll(r.Body)
	_ = json.Unmarshal(body, &req)
	h.timeouts = append(h.timeouts, req.TimeoutMS)
	w.Header().Set("Content-Type", "application/json")
	if len(h.timeouts) <= h.n {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: CodeInternal, Message: "injected"}})
		return
	}
	io.WriteString(w, `{"value":1,"report":{}}`)
}

// TestRetryRecomputesTimeoutMS pins the stale-deadline fix: each retry
// attempt's timeout_ms is recomputed from the context's remaining
// budget, so a server is never promised time the caller no longer has.
func TestRetryRecomputesTimeoutMS(t *testing.T) {
	h := &timeoutEcho{n: 1}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	c.Retry = RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			time.Sleep(20 * time.Millisecond) // burn visible budget between attempts
			return nil
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Select(ctx, [][]int64{{3, 1, 4}}, 1); err != nil {
		t.Fatal(err)
	}
	if len(h.timeouts) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(h.timeouts))
	}
	if h.timeouts[0] == 0 || h.timeouts[1] == 0 {
		t.Fatalf("timeout_ms missing: %v", h.timeouts)
	}
	if h.timeouts[1] >= h.timeouts[0] {
		t.Errorf("retry attempt's timeout_ms %d did not shrink below the first attempt's %d",
			h.timeouts[1], h.timeouts[0])
	}
}

// TestMarshalFailureIsPermanent pins that a body that cannot marshal
// surfaces immediately instead of being retried as a transport fault.
func TestMarshalFailureIsPermanent(t *testing.T) {
	err := &permanentError{err: io.ErrUnexpectedEOF}
	if Retryable(err) {
		t.Error("permanentError classified retryable")
	}
}

// TestQueryManyResultErr pins the per-item error mapping: batch items
// surface the same typed errors a direct query would.
func TestQueryManyResultErr(t *testing.T) {
	ok := QueryManyResult{}
	if err := ok.Err(); err != nil {
		t.Errorf("success item: Err() = %v, want nil", err)
	}
	item := QueryManyResult{Error: &ErrorDetail{Code: CodeRankRange, Message: "rank 99 of 3"}}
	err := item.Err()
	api, isAPI := err.(*APIError)
	if !isAPI {
		t.Fatalf("Err() = %T, want *APIError", err)
	}
	if api.Status != http.StatusBadRequest || api.Code != CodeRankRange {
		t.Errorf("Err() = %d %s, want 400 %s", api.Status, api.Code, CodeRankRange)
	}
	timeout := QueryManyResult{Error: &ErrorDetail{Code: CodePoolTimeout, Message: "busy"}}
	if api := timeout.Err().(*APIError); api.Status != http.StatusTooManyRequests {
		t.Errorf("pool_timeout maps to %d, want 429", api.Status)
	}
}
