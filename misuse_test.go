package parsel_test

import (
	"errors"
	"slices"
	"sync"
	"testing"

	"parsel"
)

// TestSelectorUseAfterClose pins the typed-error contract: every method
// of a closed Selector reports ErrSelectorClosed instead of hanging or
// corrupting state.
func TestSelectorUseAfterClose(t *testing.T) {
	sel, err := parsel.NewSelector[int64](parsel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]int64{{3, 1, 2}, {6, 5, 4}}
	if _, err := sel.Select(shards, 1); err != nil {
		t.Fatal(err)
	}
	sel.Close()
	sel.Close() // idempotent

	if _, err := sel.Select(shards, 1); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Select after Close: %v", err)
	}
	if _, err := sel.SelectInPlace(shards, 1); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("SelectInPlace after Close: %v", err)
	}
	if _, err := sel.Median(shards); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Median after Close: %v", err)
	}
	if _, err := sel.Quantile(shards, 0.5); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Quantile after Close: %v", err)
	}
	if _, _, err := sel.SelectRanks(shards, []int64{1}); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("SelectRanks after Close: %v", err)
	}
	if _, _, err := sel.Quantiles(shards, []float64{0.5}); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Quantiles after Close: %v", err)
	}
	if _, _, err := sel.TopK(shards, 1); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("TopK after Close: %v", err)
	}
	if _, _, err := sel.BottomK(shards, 1); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("BottomK after Close: %v", err)
	}
	if _, _, err := sel.Summary(shards); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Summary after Close: %v", err)
	}
}

// TestSelectorBusyDetected deterministically provokes the two-goroutine
// misuse: while one call is (simulated) in flight, every entry point
// reports ErrSelectorBusy, and the Selector works again once released.
func TestSelectorBusyDetected(t *testing.T) {
	sel, err := parsel.NewSelector[int64](parsel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	shards := [][]int64{{3, 1, 2}, {6, 5, 4}}

	if err := sel.AcquireForTest(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Select(shards, 1); !errors.Is(err, parsel.ErrSelectorBusy) {
		t.Errorf("Select while busy: %v", err)
	}
	if _, err := sel.Median(shards); !errors.Is(err, parsel.ErrSelectorBusy) {
		t.Errorf("Median while busy: %v", err)
	}
	if _, _, err := sel.SelectRanks(shards, []int64{1}); !errors.Is(err, parsel.ErrSelectorBusy) {
		t.Errorf("SelectRanks while busy: %v", err)
	}
	if _, _, err := sel.TopK(shards, 2); !errors.Is(err, parsel.ErrSelectorBusy) {
		t.Errorf("TopK while busy: %v", err)
	}
	sel.ReleaseForTest()

	res, err := sel.Select(shards, 4)
	if err != nil {
		t.Fatalf("Select after release: %v", err)
	}
	if res.Value != 4 {
		t.Errorf("Select after release = %d, want 4", res.Value)
	}
}

// TestSelectorCloseWhileBusy pins the deferred-close contract: a Close
// that arrives while a call is in flight does not tear the engine down
// underneath it — the close completes as the call returns, after which
// every method reports ErrSelectorClosed.
func TestSelectorCloseWhileBusy(t *testing.T) {
	sel, err := parsel.NewSelector[int64](parsel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]int64{{3, 1, 2}, {6, 5, 4}}
	if err := sel.AcquireForTest(); err != nil { // a call is in flight
		t.Fatal(err)
	}
	sel.Close() // must not close the machine yet
	if _, err := sel.Select(shards, 1); !errors.Is(err, parsel.ErrSelectorBusy) {
		t.Errorf("Select during deferred close: %v", err)
	}
	sel.ReleaseForTest() // the in-flight call returns; close completes
	if _, err := sel.Select(shards, 1); !errors.Is(err, parsel.ErrSelectorClosed) {
		t.Errorf("Select after deferred close: %v", err)
	}
}

// TestSelectorConcurrentHammer fires many goroutines at one Selector.
// Every call must either succeed with the correct answer or fail with
// ErrSelectorBusy — never corrupt state, deadlock, or return a wrong
// value. Run under -race this doubles as a data-race probe for the
// guard itself.
func TestSelectorConcurrentHammer(t *testing.T) {
	sel, err := parsel.NewSelector[int64](parsel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()

	vals := make([]int64, 4000)
	for i := range vals {
		vals[i] = int64((i * 131) % 4001)
	}
	sorted := slices.Clone(vals)
	slices.Sort(sorted)
	shards := make([][]int64, 4)
	for i, v := range vals {
		shards[i%4] = append(shards[i%4], v)
	}

	const clients = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := sel.Select(shards, 2000)
				if err != nil {
					if !errors.Is(err, parsel.ErrSelectorBusy) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				if res.Value != sorted[1999] {
					t.Errorf("corrupted result %d, want %d", res.Value, sorted[1999])
				}
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if succeeded == 0 {
		t.Error("no call ever succeeded")
	}
}
