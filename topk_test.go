package parsel

import (
	"errors"
	"slices"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	shards := [][]int64{{5, 1, 9}, {3, 7, 9}}
	got, _, err := TopK(shards, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int64{9, 9, 7}) {
		t.Errorf("TopK(3) = %v", got)
	}
}

func TestBottomKBasic(t *testing.T) {
	shards := [][]int64{{5, 1, 9}, {3, 7, 1}}
	got, _, err := BottomK(shards, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int64{1, 1, 3}) {
		t.Errorf("BottomK(3) = %v", got)
	}
}

func TestTopKEdges(t *testing.T) {
	shards := [][]int64{{2, 2, 2}, {2}}
	// All duplicates: exactly k copies returned.
	got, _, err := TopK(shards, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int64{2, 2}) {
		t.Errorf("dup TopK = %v", got)
	}
	// k = 0.
	if got, _, err := TopK(shards, 0, Options{}); err != nil || len(got) != 0 {
		t.Errorf("TopK(0) = %v, %v", got, err)
	}
	// k = n.
	if got, _, err := TopK(shards, 4, Options{}); err != nil || len(got) != 4 {
		t.Errorf("TopK(n) = %v, %v", got, err)
	}
	// Errors.
	if _, _, err := TopK(shards, 5, Options{}); !errors.Is(err, ErrRankRange) {
		t.Errorf("TopK(5 of 4): %v", err)
	}
	if _, _, err := TopK(shards, -1, Options{}); !errors.Is(err, ErrRankRange) {
		t.Errorf("TopK(-1): %v", err)
	}
	if _, _, err := TopK[int64](nil, 1, Options{}); !errors.Is(err, ErrNoShards) {
		t.Errorf("TopK(nil): %v", err)
	}
	if _, _, err := BottomK([][]int64{{}}, 1, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("BottomK(empty): %v", err)
	}
}

func TestTopKBottomKProperty(t *testing.T) {
	f := func(raw []int16, kRaw uint8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := 1 + int(pRaw%6)
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		shards := shardInts(vals, p)
		k := int(kRaw) % (len(vals) + 1)
		sorted := slices.Clone(vals)
		slices.Sort(sorted)

		top, _, err := TopK(shards, k, Options{Algorithm: Randomized})
		if err != nil {
			return false
		}
		wantTop := make([]int64, k)
		for i := 0; i < k; i++ {
			wantTop[i] = sorted[len(sorted)-1-i]
		}
		if !slices.Equal(top, wantTop) {
			return false
		}

		bot, _, err := BottomK(shards, k, Options{Algorithm: Randomized})
		if err != nil {
			return false
		}
		return slices.Equal(bot, sorted[:k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	vals := make([]int64, 101)
	for i := range vals {
		vals[i] = int64(i) // 0..100
	}
	shards := shardInts(vals, 4)
	s, rep, err := Summary(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := FiveNumber[int64]{Min: 0, Q1: 25, Median: 50, Q3: 75, Max: 100}
	if s != want {
		t.Errorf("Summary = %+v, want %+v", s, want)
	}
	if rep.SimSeconds <= 0 {
		t.Error("no simulated time")
	}
}

func TestSummarySingleton(t *testing.T) {
	s, _, err := Summary([][]int64{{7}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
	if _, _, err := Summary([][]int64{{}}, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty summary: %v", err)
	}
	if _, _, err := Summary[int64](nil, Options{}); !errors.Is(err, ErrNoShards) {
		t.Errorf("nil summary: %v", err)
	}
}
