package parsel_test

import (
	"math"
	"math/big"
	"slices"
	"testing"

	"parsel"
)

// engineOpts enumerates the algorithm/balancer pairs the engine tests
// sweep: all four paper algorithms, with and without data migration.
var engineOpts = []struct {
	name string
	opts parsel.Options
}{
	{"fastrand/modomlb", parsel.Options{Algorithm: parsel.FastRandomized, Balancer: parsel.ModifiedOMLB}},
	{"fastrand/none", parsel.Options{Algorithm: parsel.FastRandomized, Balancer: parsel.NoBalance}},
	{"rand/none", parsel.Options{Algorithm: parsel.Randomized, Balancer: parsel.NoBalance}},
	{"rand/omlb", parsel.Options{Algorithm: parsel.Randomized, Balancer: parsel.OMLB}},
	{"mom/globexch", parsel.Options{Algorithm: parsel.MedianOfMedians, Balancer: parsel.GlobalExchange}},
	{"mom/dimexch", parsel.Options{Algorithm: parsel.MedianOfMedians, Balancer: parsel.DimensionExchange}},
	{"bucket", parsel.Options{Algorithm: parsel.BucketBased, Balancer: parsel.NoBalance}},
}

func engineShards(n, p int) [][]int64 {
	shards := make([][]int64, p)
	x := uint64(424242)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		shards[i%p] = append(shards[i%p], int64(x>>30))
	}
	return shards
}

// TestSelectorMatchesOneShot pins the amortization contract: for a fixed
// seed and inputs, a reused Selector must report bit-identical simulated
// metrics (SimSeconds, Iterations, Messages, Bytes) and values to the
// one-shot package functions, across all four algorithms and active
// balancers, and across repeated calls on the same engine.
func TestSelectorMatchesOneShot(t *testing.T) {
	shards := engineShards(20000, 8)
	for _, tc := range engineOpts {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Machine.Procs = len(shards)
			sel, err := parsel.NewSelector[int64](opts)
			if err != nil {
				t.Fatal(err)
			}
			defer sel.Close()
			for call := 0; call < 3; call++ {
				reused, err := sel.Median(shards)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := parsel.Median(shards, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if reused.Value != fresh.Value {
					t.Fatalf("call %d: value %d (reused) != %d (one-shot)", call, reused.Value, fresh.Value)
				}
				if reused.SimSeconds != fresh.SimSeconds ||
					reused.Iterations != fresh.Iterations ||
					reused.Unsuccessful != fresh.Unsuccessful ||
					reused.Messages != fresh.Messages ||
					reused.Bytes != fresh.Bytes {
					t.Fatalf("call %d: simulated metrics diverge:\nreused:  sim=%g iters=%d unsucc=%d msgs=%d bytes=%d\noneshot: sim=%g iters=%d unsucc=%d msgs=%d bytes=%d",
						call,
						reused.SimSeconds, reused.Iterations, reused.Unsuccessful, reused.Messages, reused.Bytes,
						fresh.SimSeconds, fresh.Iterations, fresh.Unsuccessful, fresh.Messages, fresh.Bytes)
				}
			}
		})
	}
}

// TestSelectorSteadyStateAllocs pins the allocation budget of the
// amortized hot path: once warm, a Selector.Select call on the default
// configuration must stay well below the one-shot path's footprint (the
// seed measured ~2300 allocs per call on this workload shape).
func TestSelectorSteadyStateAllocs(t *testing.T) {
	shards := engineShards(64<<10, 8)
	opts := parsel.Options{Algorithm: parsel.FastRandomized, Balancer: parsel.ModifiedOMLB}
	opts.Machine.Procs = len(shards)
	sel, err := parsel.NewSelector[int64](opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	// Warm the arenas.
	for i := 0; i < 3; i++ {
		if _, err := sel.Select(shards, (n+1)/2); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 500
	avg := testing.AllocsPerRun(10, func() {
		if _, err := sel.Select(shards, (n+1)/2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("steady-state Selector.Select allocates %.0f objects per call, budget %d", avg, budget)
	}
}

// TestSelectRanksSteadyStateAllocs pins the multi-rank arena reuse: once
// warm, SelectRanks and Quantiles must run far below their pre-arena
// footprint (~1650 and ~1990 objects per call on this workload shape —
// the result, order, segment and gather buffers were rebuilt every
// call). The remaining allocations are the boxed payloads of the
// generic collectives.
func TestSelectRanksSteadyStateAllocs(t *testing.T) {
	shards := engineShards(64<<10, 8)
	opts := parsel.Options{}
	opts.Machine.Procs = len(shards)
	sel, err := parsel.NewSelector[int64](opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	ranks := []int64{1, 100, 30000, 64000, 65536, 30000}
	qs := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	// Warm the arenas.
	for i := 0; i < 3; i++ {
		if _, _, err := sel.SelectRanks(shards, ranks); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sel.Quantiles(shards, qs); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 1000
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := sel.SelectRanks(shards, ranks); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("steady-state SelectRanks allocates %.0f objects per call, budget %d", avg, budget)
	}
	avg = testing.AllocsPerRun(10, func() {
		if _, _, err := sel.Quantiles(shards, qs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("steady-state Quantiles allocates %.0f objects per call, budget %d", avg, budget)
	}
}

// TestSelectorAdaptsShardCount verifies the engine transparently rebuilds
// for a different shard count and keeps answering correctly.
func TestSelectorAdaptsShardCount(t *testing.T) {
	sel, err := parsel.NewSelector[int64](parsel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	for _, p := range []int{4, 8, 3, 8} {
		shards := engineShards(999, p)
		var all []int64
		for _, s := range shards {
			all = append(all, s...)
		}
		slices.Sort(all)
		res, err := sel.Select(shards, 500)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Value != all[499] {
			t.Errorf("p=%d: rank 500 = %d, want %d", p, res.Value, all[499])
		}
		if sel.Procs() != p {
			t.Errorf("p=%d: Procs() = %d", p, sel.Procs())
		}
	}
}

// TestSelectInPlace verifies the zero-copy path returns the same answer
// as the copying path and preserves the multiset of elements.
func TestSelectInPlace(t *testing.T) {
	shards := engineShards(5000, 4)
	var all []int64
	for _, s := range shards {
		all = append(all, s...)
	}
	slices.Sort(all)

	opts := parsel.Options{}
	opts.Machine.Procs = len(shards)
	sel, err := parsel.NewSelector[int64](opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	res, err := sel.SelectInPlace(shards, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != all[2499] {
		t.Errorf("in-place rank 2500 = %d, want %d", res.Value, all[2499])
	}
	// The shards are consumed (permuted) but the union multiset of the
	// caller's slices must be preserved.
	var after []int64
	for _, s := range shards {
		after = append(after, s...)
	}
	slices.Sort(after)
	if !slices.Equal(after, all) {
		t.Error("in-place selection lost or duplicated elements")
	}
}

// TestCrossProcAgreement exercises the cross-processor result assertion:
// with checks enabled, every algorithm's collective runs must agree on
// the result across all simulated processors, and the detector itself
// must flag a divergent column.
func TestCrossProcAgreement(t *testing.T) {
	parsel.SetAgreementChecks(true)
	defer parsel.SetAgreementChecks(false)
	shards := engineShards(10000, 8)
	for _, tc := range engineOpts {
		if _, err := parsel.Median(shards, tc.opts); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
	if _, _, err := parsel.Quantiles(shards, []float64{0.1, 0.5, 0.5, 0.99}, parsel.Options{}); err != nil {
		t.Fatal(err)
	}
	// The detector flags the first divergent processor.
	if proc, ok := parsel.DisagreementForTest([]int64{7, 7, 8, 7}); ok || proc != 2 {
		t.Errorf("disagreement([7 7 8 7]) = (%d, %v), want (2, false)", proc, ok)
	}
	if _, ok := parsel.DisagreementForTest([]int64{7, 7, 7}); !ok {
		t.Error("disagreement on agreeing values reported a mismatch")
	}
}

// TestQuantileRankExact verifies the exact ceiling arithmetic of
// Quantile/Quantiles against 128-bit rational reference values, at the
// boundaries the floating-point formulation gets wrong: q=0, q=1, q just
// below and at 1/n, and populations near 2^53 where float64 products
// round to neighbouring integers.
func TestQuantileRankExact(t *testing.T) {
	ref := func(n int64, q float64) int64 {
		if q <= 0 || n <= 0 {
			if n < 1 {
				return n
			}
			return 1
		}
		if q >= 1 {
			return n
		}
		// ceil(n*q) with q's exact binary value, via big.Float.
		prod := new(big.Float).SetPrec(200)
		prod.Mul(new(big.Float).SetInt64(n), new(big.Float).SetFloat64(q))
		r, acc := prod.Int(nil)
		ceil := r.Int64()
		if acc != big.Exact {
			ceil++ // Int truncates toward zero; a remainder means round up
		}
		if ceil < 1 {
			ceil = 1
		}
		if ceil > n {
			ceil = n
		}
		return ceil
	}

	ns := []int64{1, 2, 3, 7, 101, 1<<20 + 3, 1<<53 - 1, 1 << 53, 1<<53 + 2, 1 << 62}
	qs := []float64{0, 1e-300, 1e-17, 0.1, 1.0 / 3, 0.25, 0.5, 0.7, 0.75, 0.9999999999999999, 1}
	for _, n := range ns {
		for _, q := range qs {
			want := ref(n, q)
			if got := parsel.QuantileRankForTest(n, q); got != want {
				t.Errorf("quantileRank(%d, %g) = %d, want %d", n, q, got, want)
			}
		}
		// q just below, at, and above 1/n.
		invN := 1.0 / float64(n)
		for _, q := range []float64{math.Nextafter(invN, 0), invN, math.Nextafter(invN, 1)} {
			if q <= 0 || q >= 1 {
				continue
			}
			want := ref(n, q)
			if got := parsel.QuantileRankForTest(n, q); got != want {
				t.Errorf("quantileRank(%d, %g) = %d, want %d", n, q, got, want)
			}
		}
	}

	// End-to-end boundary sweep on a real population.
	vals := make([]int64, 101)
	for i := range vals {
		vals[i] = int64(i)
	}
	shards := [][]int64{vals[:40], vals[40:], {}}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0, 0},
		// float64(1.0/101) rounds just above the exact rational, so
		// ceil(101*q) = 2; one ulp down it is 1. The exact arithmetic
		// distinguishes the two — the floating formulation did not.
		{math.Nextafter(1.0/101, 0), 0},
		{1.0 / 101, 1},
		{0.5, 50},
		{1, 100},
	} {
		res, err := parsel.Quantile(shards, tc.q, parsel.Options{})
		if err != nil {
			t.Fatalf("q=%g: %v", tc.q, err)
		}
		if res.Value != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, res.Value, tc.want)
		}
	}
}
