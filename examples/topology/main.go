// Topology: the paper's §2.1 models the interconnect as a virtual
// crossbar — a fixed message cost regardless of which processors talk —
// arguing that wormhole routing makes distance negligible. This example
// uses the machine's topology-aware pricing to test that argument: the
// same selection runs under crossbar, hypercube, 2-D mesh and ring
// pricing, first with a wormhole-like per-hop cost (tau/20), then with a
// store-and-forward-like cost (tau per hop).
package main

import (
	"fmt"
	"log"
	"time"

	"parsel"
)

func main() {
	const (
		n = 1 << 19
		p = 64
	)
	shards := make([][]int64, p)
	for i := range shards {
		shard := make([]int64, n/p)
		x := uint64(i + 1)
		for j := range shard {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			shard[j] = int64(x >> 20)
		}
		shards[i] = shard
	}

	fmt.Printf("median of %d keys on %d processors, randomized selection\n\n", n, p)
	for _, scenario := range []struct {
		name   string
		perHop time.Duration
	}{
		{"wormhole-like routing (5 us/hop)", 5 * time.Microsecond},
		{"store-and-forward (100 us/hop)", 100 * time.Microsecond},
	} {
		fmt.Println(scenario.name)
		base := 0.0
		for _, topo := range []parsel.Topology{
			parsel.TopologyCrossbar, parsel.TopologyHypercube, parsel.TopologyMesh2D, parsel.TopologyRing,
		} {
			res, err := parsel.Median(shards, parsel.Options{
				Algorithm: parsel.Randomized,
				Balancer:  parsel.NoBalance,
				Machine:   parsel.Machine{Topology: topo, PerHop: scenario.perHop},
			})
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = res.SimSeconds
			}
			fmt.Printf("  %-10v %8.4f s  (%.2fx crossbar)\n", topo, res.SimSeconds, res.SimSeconds/base)
		}
		fmt.Println()
	}
	fmt.Println("wormhole: all topologies within a few percent -> the paper's crossbar model is sound;")
	fmt.Println("store-and-forward: the ring's diameter dominates -> distance would matter.")
}
