// Sorted shards: the paper's adversarial input. When data arrives
// range-partitioned (time-ordered logs, pre-sorted key ranges), the first
// pivot iteration wipes out half the processors entirely and load
// imbalance compounds from there. This example reproduces the paper's
// §5 comparison on that input: randomized selection degrades 2-4x, while
// fast randomized selection with modified OMLB balancing stays close to
// its random-data time.
package main

import (
	"fmt"
	"log"

	"parsel"
)

// rangePartitioned builds the paper's sorted input: keys 0..n-1 with
// processor i holding the contiguous range [i*n/p, (i+1)*n/p).
func rangePartitioned(n int64, p int) [][]int64 {
	shards := make([][]int64, p)
	var next int64
	for i := 0; i < p; i++ {
		size := n / int64(p)
		if int64(i) < n%int64(p) {
			size++
		}
		shard := make([]int64, size)
		for j := range shard {
			shard[j] = next
			next++
		}
		shards[i] = shard
	}
	return shards
}

// scrambled draws the same population in random per-processor order.
func scrambled(n int64, p int) [][]int64 {
	shards := rangePartitioned(n, p)
	// Round-robin redeal to destroy locality.
	out := make([][]int64, p)
	for i, s := range shards {
		for j, v := range s {
			d := (i + j) % p
			out[d] = append(out[d], v)
		}
	}
	return out
}

func main() {
	const n = 1 << 20
	const p = 32

	configs := []struct {
		name string
		opts parsel.Options
	}{
		{"randomized, no balancing", parsel.Options{Algorithm: parsel.Randomized, Balancer: parsel.NoBalance}},
		{"randomized + global exchange", parsel.Options{Algorithm: parsel.Randomized, Balancer: parsel.GlobalExchange}},
		{"fast randomized, no balancing", parsel.Options{Algorithm: parsel.FastRandomized, Balancer: parsel.NoBalance}},
		{"fast randomized + modified OMLB", parsel.Options{Algorithm: parsel.FastRandomized, Balancer: parsel.ModifiedOMLB}},
	}

	fmt.Printf("median of %d keys on %d processors, sorted vs scrambled shards\n\n", n, p)
	fmt.Printf("%-34s %12s %12s %8s\n", "configuration", "sorted (s)", "random (s)", "ratio")
	for _, c := range configs {
		srt, err := parsel.Median(rangePartitioned(n, p), c.opts)
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := parsel.Median(scrambled(n, p), c.opts)
		if err != nil {
			log.Fatal(err)
		}
		if srt.Value != rnd.Value {
			log.Fatalf("%s: sorted and scrambled disagree: %d vs %d", c.name, srt.Value, rnd.Value)
		}
		fmt.Printf("%-34s %12.4f %12.4f %8.2f\n", c.name, srt.SimSeconds, rnd.SimSeconds, srt.SimSeconds/rnd.SimSeconds)
	}
	fmt.Println("\nlow ratio = distribution-insensitive (the paper recommends fast randomized + LB)")
}
