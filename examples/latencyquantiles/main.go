// Latency quantiles: the workload that motivates distributed selection in
// practice. Every node of a service records request latencies locally;
// computing fleet-wide p50/p95/p99 exactly — not sketched — is a
// selection problem over data that must stay sharded. The latency
// distribution is heavy-tailed and differs per node (hot shards), which
// is exactly the skew the paper's load balancers address.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"parsel"
)

// syntheticLatencies builds a heavy-tailed latency population (in
// microseconds) for one node. Nodes with higher index are "hotter": more
// requests and a fatter tail.
func syntheticLatencies(node, nodes int, rng *rand.Rand) []int64 {
	base := 20_000 + 60_000*node/nodes // requests per node
	out := make([]int64, base)
	hot := 1 + float64(node)/float64(nodes)
	for i := range out {
		// Log-normal-ish: exp of a scaled sum of uniforms.
		s := 0.0
		for j := 0; j < 4; j++ {
			s += rng.Float64()
		}
		lat := 200 * math.Exp(hot*(s-2)) // median a few hundred us
		out[i] = int64(lat)
	}
	return out
}

func main() {
	const nodes = 32
	shards := make([][]int64, nodes)
	var total int
	for i := range shards {
		rng := rand.New(rand.NewPCG(7, uint64(i)))
		shards[i] = syntheticLatencies(i, nodes, rng)
		total += len(shards[i])
	}
	fmt.Printf("fleet of %d nodes, %d latency samples (unequal shards: %d..%d)\n",
		nodes, total, len(shards[0]), len(shards[nodes-1]))

	opts := parsel.Options{} // fast randomized + modified OMLB
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		res, err := parsel.Quantile(shards, q, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%-5g = %6d us   (sim %.4fs, %d iterations)\n",
			q*100, res.Value, res.SimSeconds, res.Iterations)
	}

	// Exact maximum as a sanity rank.
	maxRes, err := parsel.Quantile(shards, 1.0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max    = %6d us\n", maxRes.Value)
}
