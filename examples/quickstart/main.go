// Quickstart: find the median of a dataset sharded across simulated
// processors, with the library's default algorithm (fast randomized
// selection + modified OMLB balancing — the paper's overall winner).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"parsel"
)

func main() {
	// 1M keys sharded over 16 simulated processors.
	const (
		procs   = 16
		perProc = 65536
	)
	rng := rand.New(rand.NewPCG(1, 2))
	shards := make([][]int64, procs)
	for i := range shards {
		shards[i] = make([]int64, perProc)
		for j := range shards[i] {
			shards[i][j] = rng.Int64N(1_000_000)
		}
	}

	med, err := parsel.Median(shards, parsel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median of %d keys on %d processors: %d\n", procs*perProc, procs, med.Value)
	fmt.Printf("  simulated parallel time: %.4f s (CM-5-like machine)\n", med.SimSeconds)
	fmt.Printf("  wall time:               %.4f s\n", med.WallSeconds)
	fmt.Printf("  pivot iterations:        %d\n", med.Iterations)
	fmt.Printf("  messages sent:           %d (%d bytes)\n", med.Messages, med.Bytes)

	// Any rank works, not just the median: the 10th smallest key.
	tenth, err := parsel.Select(shards, 10, parsel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10th smallest key: %d\n", tenth.Value)
}
