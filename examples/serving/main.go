// Serving: a resident selection service under concurrent load. A fleet
// of dashboard clients — each wanting exact latency quantiles, top-k
// outliers, or medians over freshly sharded data — hammers one
// parsel.Pool from separate goroutines. The pool keeps a bounded set of
// simulated machines resident, checks one out per query, and reuses
// them across clients, so no query ever pays machine construction and
// no two queries ever race on one machine. This is the serving posture
// a coarse-grained selection service runs in: the machine is long-lived,
// the queries stream past it.
//
// The second half runs the same workload over the network: the pool is
// wrapped in the parseld HTTP handler on a loopback listener and the
// queries go through parselclient — same results, same simulated
// metrics, plus deadlines and admission control in front. The finale is
// the resident-dataset path, the paper's actual operating model: the
// shards ship ONCE (PUT /v1/datasets/{id}) into per-processor resident
// storage, and every later query carries parameters only — on the
// standard 256k benchmark workload that turns ~90ms JSON-dominated
// round trips into ~1.5ms, bit-identical responses included (see
// BENCH_PR4.json). Datasets are TTL-evicted when idle and accounted
// against a resident-bytes budget; deleting one frees the budget
// immediately and later queries get the typed not-found.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"slices"
	"sync"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
)

// nodeLatencies builds one node's heavy-tailed latency shard (in
// microseconds).
func nodeLatencies(node int, rng *rand.Rand) []int64 {
	out := make([]int64, 8000+1000*node)
	for i := range out {
		v := int64(150 + rng.ExpFloat64()*400)
		if rng.IntN(100) == 0 {
			v *= 20 // tail
		}
		out[i] = v
	}
	return out
}

func main() {
	// One fleet snapshot, sharded across 16 nodes.
	const nodes = 16
	shards := make([][]int64, nodes)
	for i := range shards {
		shards[i] = nodeLatencies(i, rand.New(rand.NewPCG(11, uint64(i))))
	}

	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Twelve concurrent clients issue mixed queries against the pool.
	type answer struct {
		client int
		text   string
	}
	answers := make([]answer, 0, 12)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var text string
			switch c % 3 {
			case 0:
				vals, _, err := pool.Quantiles(shards, []float64{0.5, 0.95, 0.99})
				if err != nil {
					log.Fatal(err)
				}
				text = fmt.Sprintf("p50/p95/p99 = %d/%d/%d us", vals[0], vals[1], vals[2])
			case 1:
				top, _, err := pool.TopK(shards, 3)
				if err != nil {
					log.Fatal(err)
				}
				text = fmt.Sprintf("3 slowest requests: %v us", top)
			case 2:
				res, err := pool.Median(shards)
				if err != nil {
					log.Fatal(err)
				}
				text = fmt.Sprintf("median = %d us (sim %.4f s, %d msgs)",
					res.Value, res.SimSeconds, res.Messages)
			}
			mu.Lock()
			answers = append(answers, answer{c, text})
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	for _, a := range answers {
		fmt.Printf("client %2d: %s\n", a.client, a.text)
	}

	// A batched sweep: one rank query per node count, fanned across the
	// pool's machines in one call.
	queries := make([]parsel.Query[int64], 5)
	for i := range queries {
		queries[i] = parsel.Query[int64]{Shards: shards[:4+3*i], Rank: 1000}
	}
	fmt.Println("\nbatched SelectMany over growing fleets:")
	for i, r := range pool.SelectMany(queries) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  %2d nodes: rank-1000 latency = %d us\n", len(queries[i].Shards), r.Value)
	}

	st := pool.Stats()
	fmt.Printf("\npool: %d machines built, %d warm reuses, %d reshapes, %d waits\n",
		st.Creates, st.Hits, st.Reshapes, st.Waits)

	// Now as a network service: the same pool behind the parseld HTTP
	// handler, queried through the Go client. (In production you'd run
	// cmd/parseld; the handler is embeddable for exactly this kind of
	// in-process composition.)
	srv, err := serve.New(serve.Options{Pool: pool, DefaultTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	client := parselclient.New("http://" + ln.Addr().String())
	ctx := context.Background()
	vals, rep, err := client.Quantiles(ctx, shards, []float64{0.5, 0.95, 0.99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover HTTP: p50/p95/p99 = %d/%d/%d us (sim %.4f s, %d msgs — identical to in-process)\n",
		vals[0], vals[1], vals[2], rep.SimSeconds, rep.Messages)
	sum, _, err := client.Summary(ctx, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("over HTTP: five-number summary = %+v\n", sum)

	// Deadlines are first-class on the wire: a query that cannot get a
	// machine in time comes back as the library's typed ErrPoolTimeout.
	hurried := parselclient.New("http://" + ln.Addr().String())
	hurried.QueryTimeout = time.Nanosecond // absurd on purpose; rounds up to 1ms
	busy := make(chan struct{})
	go func() { // occupy all machines briefly
		defer close(busy)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); _, _ = pool.Median(shards) }()
		}
		wg.Wait()
	}()
	if _, err := hurried.Median(ctx, shards); errors.Is(err, parsel.ErrPoolTimeout) {
		fmt.Println("over HTTP: hurried query got the typed pool-timeout, as designed")
	} else if err != nil {
		fmt.Printf("over HTTP: hurried query: %v\n", err)
	} else {
		fmt.Println("over HTTP: hurried query squeezed in before the machines got busy")
	}
	<-busy

	// Resident dataset: upload the fleet snapshot once, then query it
	// without ever re-shipping the keys. Responses — simulated metrics
	// included — are bit-identical to the shard-carrying queries above.
	fleet := client.Dataset("fleet-snapshot")
	info, err := fleet.Upload(ctx, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresident dataset %q: %d keys on %d procs, %d bytes resident, TTL %.0fs\n",
		info.ID, info.N, info.Procs, info.Bytes, float64(info.ExpiresInMS)/1000)
	dvals, drep, err := fleet.Quantiles(ctx, []float64{0.5, 0.95, 0.99})
	if err != nil {
		log.Fatal(err)
	}
	same := slices.Equal(dvals, vals) && drep.SimSeconds == rep.SimSeconds
	fmt.Printf("dataset query (no keys on the wire): p50/p95/p99 = %d/%d/%d us — bit-identical to shard-per-query: %v\n",
		dvals[0], dvals[1], dvals[2], same)
	dmed, err := fleet.Median(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset median = %d us (sim %.4f s)\n", dmed.Value, dmed.SimSeconds)

	// Delete frees the resident budget; the id is gone with a typed
	// error any client can match.
	if _, err := fleet.Delete(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := fleet.Median(ctx); errors.Is(err, parselclient.ErrDatasetNotFound) {
		fmt.Println("after DELETE: queries get the typed dataset-not-found, as designed")
	}

	wire, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon: %d requests, %d ok, %d timeouts; latency observations: %d; dataset uploads/queries: %d/%d\n",
		wire.Server.Requests, wire.Server.OK, wire.Server.Timeouts, wire.Latency.Count,
		wire.Datasets.Uploads, wire.Datasets.Queries)
}
