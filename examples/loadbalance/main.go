// Load balance: the paper's §4 balancers used standalone. Dynamic
// repartitioning is useful beyond selection — any iterative computation
// that discards data unevenly (pruning, filtering, refinement) needs it.
// This example starts from a severely skewed sharding and compares the
// four strategies on communication volume and simulated time.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"parsel"
)

func skewedShards(p int) [][]int64 {
	rng := rand.New(rand.NewPCG(3, 9))
	shards := make([][]int64, p)
	for i := range shards {
		// Quadratic skew: the last processor holds ~p/3 times the
		// average load.
		size := 1000 * (i*i + 1)
		shards[i] = make([]int64, size)
		for j := range shards[i] {
			shards[i][j] = rng.Int64N(1 << 40)
		}
	}
	return shards
}

func spread(shards [][]int64) (lo, hi int) {
	lo, hi = len(shards[0]), len(shards[0])
	for _, s := range shards {
		if len(s) < lo {
			lo = len(s)
		}
		if len(s) > hi {
			hi = len(s)
		}
	}
	return lo, hi
}

func main() {
	const p = 16
	before := skewedShards(p)
	lo, hi := spread(before)
	fmt.Printf("before: %d shards, sizes %d..%d\n\n", p, lo, hi)
	fmt.Printf("%-20s %10s %10s %12s %12s\n", "strategy", "min", "max", "msgs", "sim (s)")

	for _, b := range []parsel.Balancer{
		parsel.OMLB, parsel.ModifiedOMLB, parsel.DimensionExchange, parsel.GlobalExchange,
	} {
		after, rep, err := parsel.Balance(before, parsel.Options{Balancer: b})
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := spread(after)
		fmt.Printf("%-20s %10d %10d %12d %12.5f\n", b, lo, hi, rep.Messages, rep.SimSeconds)
	}
	fmt.Println("\nOMLB preserves global order but moves the most data;")
	fmt.Println("global exchange pairs big sources with big sinks to cut messages.")
}
