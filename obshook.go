package parsel

import (
	"context"
	"time"
)

// checkoutObserverKey carries the pool-wait observer through a context.
type checkoutObserverKey struct{}

// WithCheckoutObserver returns a context whose pool checkouts report
// semaphore wait time to fn. The observer fires only when a checkout
// actually blocks for a slot (the Waits slow path); a fast-path
// checkout costs nothing. fn is called with the time spent waiting,
// whether the wait ended in a slot or in a context timeout, and must
// be safe for concurrent use. Serving layers use this to attribute
// query latency to pool contention without the pool keeping a
// per-request ledger.
func WithCheckoutObserver(ctx context.Context, fn func(wait time.Duration)) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, checkoutObserverKey{}, fn)
}

// checkoutObserver extracts the observer installed by
// WithCheckoutObserver, or nil.
func checkoutObserver(ctx context.Context) func(wait time.Duration) {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(checkoutObserverKey{}).(func(wait time.Duration))
	return fn
}
