# CI entry points for the parsel repo (pure Go, no external deps).
#
#   make ci      - everything below, in order (what a PR must pass)
#   make vet     - static checks
#   make build   - compile all packages, commands and examples
#   make test    - full test suite (includes the differential oracle suite)
#   make race    - full suite under the race detector (pool/selector stress)
#   make fuzz    - short fuzz smoke of the 128-bit quantile-rank arithmetic

GO ?= go

.PHONY: ci vet build test race fuzz

ci: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzQuantileRank -fuzztime=5s .
