# CI entry points for the parsel repo (pure Go, no external deps).
#
#   make ci      - everything below, in order (what a PR must pass);
#                  .github/workflows/ci.yml runs exactly these targets,
#                  split across jobs so the race leg parallelizes
#   make vet     - static checks: go vet + gofmt (fails on unformatted files)
#   make build   - compile all packages, commands and examples
#   make test    - full test suite (includes the differential oracle suite)
#   make race    - full suite under the race detector (pool/selector/daemon/
#                  dataset stress)
#   make e2e     - the daemon end-to-end suite alone (httptest + parselclient,
#                  incl. the kill-and-restart snapshot harness, the multi-kind
#                  catalogues, the tenant admission/ledger suite, the chaos
#                  suite: differential replay through seeded fault injection,
#                  panic recovery, deadline propagation, and the multi-node
#                  cluster harness: routed catalogue replay with one of three
#                  nodes killed), uncached, for quick iteration on the
#                  serving layer
#   make fuzz    - short fuzz smoke: the 128-bit quantile-rank arithmetic, the
#                  daemon's HTTP request decoder, the snapshot decoder and the
#                  binary result-frame decoder
#   make smoke   - metrics-scrape smoke: boot a daemon, run one query, pull
#                  /metrics and strictly validate the exposition
#   make cover   - coverage profile over the core packages (engine, client,
#                  internal) with a hard threshold; writes cover.out

GO ?= go

# Core packages the coverage gate measures: the engine, the wire client
# and every internal package — commands and examples are thin mains and
# excluded.
COVER_PKGS = .,./parselclient,./parselclient/cluster,./internal/...
COVER_MIN ?= 85

.PHONY: ci vet build test race e2e fuzz smoke cover

ci: vet build test race e2e fuzz smoke cover

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

e2e:
	$(GO) test -count=1 -run 'TestDaemon|TestDataset|TestSnapshot|TestTenant|TestCluster|TestObs' ./internal/serve .

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzQuantileRank -fuzztime=5s .
	$(GO) test -run='^$$' -fuzz=FuzzParseRequest -fuzztime=5s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=5s ./internal/snapshot
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=5s ./internal/snapshot

smoke:
	$(GO) test -count=1 -run 'TestObsScrapeSmoke' ./internal/serve

cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=$(COVER_PKGS) \
		. ./parselclient ./parselclient/cluster ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "coverage %.1f%% is below the %s%% threshold\n", t, min; exit 1 } \
		printf "coverage %.1f%% (threshold %s%%)\n", t, min }'
