# CI entry points for the parsel repo (pure Go, no external deps).
#
#   make ci      - everything below, in order (what a PR must pass)
#   make vet     - static checks
#   make build   - compile all packages, commands and examples
#   make test    - full test suite (includes the differential oracle suite)
#   make race    - full suite under the race detector (pool/selector/daemon stress)
#   make e2e     - the daemon end-to-end suite alone (httptest + parselclient),
#                  uncached, for quick iteration on the serving layer
#   make fuzz    - short fuzz smoke: the 128-bit quantile-rank arithmetic and
#                  the daemon's HTTP request decoder

GO ?= go

.PHONY: ci vet build test race e2e fuzz

ci: vet build test race e2e fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

e2e:
	$(GO) test -count=1 -run 'TestDaemon' ./internal/serve .

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzQuantileRank -fuzztime=5s .
	$(GO) test -run='^$$' -fuzz=FuzzParseRequest -fuzztime=5s ./internal/serve
