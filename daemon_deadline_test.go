package parsel_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
)

// TestDaemonDeadlinePropagation is the deterministic end-to-end test of
// the X-Parsel-Deadline header: with the pool's only machine held
// checked out via the test hook (no race about how long it stays busy),
// a request whose body asks for NO timeout but whose header carries a
// nearly-spent deadline budget must be refused by admission as a 429
// pool_timeout — fast, and without ever checking out a machine
// (asserted via the pool gauges). Without header propagation the same
// request would camp on the 30s server default.
func TestDaemonDeadlinePropagation(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv, err := serve.New(serve.Options{Pool: pool, DefaultTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	release, err := pool.CheckoutForTest(2)
	if err != nil {
		t.Fatal(err)
	}
	before := pool.Stats()

	post := func(deadlineMS string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/median",
			strings.NewReader(`{"shards": [[3, 1], [2]]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadlineMS != "" {
			req.Header.Set(parselclient.DeadlineHeader, deadlineMS)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("deadline-stamped request: %v", err)
		}
		return resp
	}

	start := time.Now()
	resp := post("20")
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("deadline-stamped request got %d %s, want 429 pool_timeout", resp.StatusCode, data)
	}
	var eb parselclient.ErrorBody
	if json.Unmarshal(data, &eb) != nil || eb.Error.Code != parselclient.CodePoolTimeout {
		t.Errorf("deadline-stamped request body %s, want code pool_timeout", data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 pool_timeout carries no Retry-After hint")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("20ms header budget waited %v; the header was not honored", waited)
	}

	after := pool.Stats()
	if after.Timeouts != before.Timeouts+1 {
		t.Errorf("pool timeouts %d -> %d, want exactly one admission timeout",
			before.Timeouts, after.Timeouts)
	}
	if after.Creates != before.Creates || after.Hits != before.Hits {
		t.Errorf("expired-deadline request touched a machine: %+v -> %+v", before, after)
	}

	// The retrying client stamps the header from its context deadline;
	// while the machine is held, the whole operation resolves to the
	// typed pool timeout rather than hanging into the server default.
	client := parselclient.New(ts.URL, parselclient.WithHTTPClient(ts.Client()))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = client.Median(ctx, [][]int64{{3, 1}, {2}})
	cancel()
	if !errors.Is(err, parsel.ErrPoolTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("client with expiring context got %v, want a deadline-shaped refusal", err)
	}

	// Released, the identical header-stamped request succeeds: the
	// header bounds only the wait, never the query.
	release()
	resp2 := post("30000")
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d %s, want 200", resp2.StatusCode, body2)
	}
	var qr parselclient.Response
	if json.Unmarshal(body2, &qr) != nil || qr.Value == nil || *qr.Value != 2 {
		t.Errorf("after release: body %s, want value 2", body2)
	}
}
