package parsel

import (
	"testing"
	"time"
)

func TestTopologyPricing(t *testing.T) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64((i * 104729) % 65536)
	}
	shards := shardInts(vals, 16)
	want, err := Median(shards, Options{Algorithm: Randomized, Balancer: NoBalance})
	if err != nil {
		t.Fatal(err)
	}
	var crossbar, ring float64
	for _, topo := range []Topology{TopologyCrossbar, TopologyHypercube, TopologyMesh2D, TopologyRing} {
		res, err := Median(shards, Options{
			Algorithm: Randomized,
			Balancer:  NoBalance,
			Machine:   Machine{Topology: topo, PerHop: 50 * time.Microsecond},
		})
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if res.Value != want.Value {
			t.Errorf("%v: wrong median %d (want %d)", topo, res.Value, want.Value)
		}
		switch topo {
		case TopologyCrossbar:
			crossbar = res.SimSeconds
		case TopologyRing:
			ring = res.SimSeconds
		}
		if topo.String() == "" {
			t.Errorf("topology %d unnamed", int(topo))
		}
	}
	if ring <= crossbar {
		t.Errorf("ring with heavy per-hop cost (%g) not slower than crossbar (%g)", ring, crossbar)
	}
}

func TestMoreProcessorsThanElements(t *testing.T) {
	shards := make([][]int64, 12)
	shards[3] = []int64{5}
	shards[9] = []int64{2}
	for i := range shards {
		if shards[i] == nil {
			shards[i] = []int64{}
		}
	}
	for _, alg := range []Algorithm{FastRandomized, Randomized, MedianOfMedians, BucketBased} {
		res, err := Select(shards, 2, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Value != 5 {
			t.Errorf("%v: rank 2 of {2,5} = %d", alg, res.Value)
		}
	}
}

func TestQuantileRankRounding(t *testing.T) {
	// ceil(q*n) ranking: with n=4, q in (0, 0.25] must give the minimum.
	shards := [][]int64{{10, 20}, {30, 40}}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 10}, {0.1, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.51, 30}, {0.75, 30}, {0.76, 40}, {1.0, 40},
	}
	for _, tc := range cases {
		res, err := Quantile(shards, tc.q, Options{})
		if err != nil {
			t.Fatalf("q=%g: %v", tc.q, err)
		}
		if res.Value != tc.want {
			t.Errorf("q=%g = %d, want %d", tc.q, res.Value, tc.want)
		}
	}
}

func TestFaithfulOptionAgrees(t *testing.T) {
	vals := make([]int64, 60000)
	for i := range vals {
		vals[i] = int64((i * 48271) % 999331)
	}
	shards := shardInts(vals, 8)
	fast, err := Select(shards, 30000, Options{Algorithm: FastRandomized, Faithful: false})
	if err != nil {
		t.Fatal(err)
	}
	faithful, err := Select(shards, 30000, Options{Algorithm: FastRandomized, Faithful: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Value != faithful.Value {
		t.Errorf("faithful (%d) and optimized (%d) disagree", faithful.Value, fast.Value)
	}
	if faithful.Iterations < fast.Iterations {
		t.Errorf("faithful mode used fewer iterations (%d) than optimized (%d)",
			faithful.Iterations, fast.Iterations)
	}
}
