package parsel_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"parsel"
	"parsel/internal/workload"
)

// diffShape is one workload of the differential suite.
type diffShape struct {
	name   string
	shards [][]int64
}

// diffShapes builds the randomized workload catalogue: generator-drawn
// shapes across every distribution (random, sorted, reverse-sorted,
// gaussian, few-distinct, zipf) with randomized sizes and processor
// counts, plus hand-built adversarial shapes (empty shards, n < p,
// all-equal keys, extreme size skew, single processor). Deterministic
// for reproducibility, randomized in structure.
func diffShapes() []diffShape {
	rng := rand.New(rand.NewPCG(2026, 729))
	var shapes []diffShape

	// Three randomized draws per distribution: n in [50, 2500], p in
	// [2, 12], fresh generator seed each.
	for _, kind := range workload.Kinds {
		for draw := 0; draw < 3; draw++ {
			n := 50 + rng.Int64N(2450)
			p := 2 + rng.IntN(11)
			seed := rng.Uint64()
			shapes = append(shapes, diffShape{
				name:   fmt.Sprintf("%s/n%d/p%d", kind, n, p),
				shards: workload.Generate(kind, n, p, seed),
			})
		}
	}

	// Adversarial size skew: quadratically unbalanced shards.
	shapes = append(shapes, diffShape{
		name:   "unbalanced/n2000/p8",
		shards: workload.Unbalanced(2000, 8, rng.Uint64()),
	})

	// Empty shards interleaved with loaded ones.
	empties := make([][]int64, 7)
	for i := range empties {
		if i%2 == 1 {
			empties[i] = []int64{}
			continue
		}
		empties[i] = make([]int64, 200+rng.IntN(200))
		for j := range empties[i] {
			empties[i][j] = rng.Int64N(1 << 20)
		}
	}
	shapes = append(shapes, diffShape{name: "emptyshards/p7", shards: empties})

	// Everything on one processor, the rest empty.
	lone := make([]int64, 900)
	for i := range lone {
		lone[i] = rng.Int64N(50) // duplicate-heavy too
	}
	shapes = append(shapes,
		diffShape{name: "oneloaded/p5", shards: [][]int64{nil, {}, lone, {}, nil}},
		diffShape{name: "allequal/p6", shards: [][]int64{
			{7, 7, 7}, {7, 7}, {7, 7, 7, 7}, {}, {7}, {7, 7}}},
		diffShape{name: "fewerkeysthanprocs/p6", shards: [][]int64{{42}, {}, {-3}, {}, {99}, {}}},
		diffShape{name: "singleton/p4", shards: [][]int64{{}, {}, {11}, {}}},
		diffShape{name: "singleproc/p1", shards: [][]int64{{5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}}},
	)
	return shapes
}

// diffTopologies are the interconnects the suite sweeps: the paper's
// crossbar model plus a per-hop-priced mesh, which exercises the
// distance-dependent pricing path without changing any result.
var diffTopologies = []parsel.Topology{parsel.TopologyCrossbar, parsel.TopologyMesh2D}

// TestDifferentialAgainstSortOracle is the randomized differential
// suite: every primary algorithm × every balancer × both topologies,
// over every workload shape, checked rank-for-rank against a sequential
// sort of the flattened population. Values must match the oracle
// exactly; the simulated report must be internally sane.
func TestDifferentialAgainstSortOracle(t *testing.T) {
	shapes := diffShapes()
	if testing.Short() {
		shapes = shapes[:8]
	}
	algs := []parsel.Algorithm{
		parsel.FastRandomized, parsel.Randomized,
		parsel.MedianOfMedians, parsel.BucketBased,
	}
	bals := []parsel.Balancer{
		parsel.ModifiedOMLB, parsel.NoBalance, parsel.OMLB,
		parsel.DimensionExchange, parsel.GlobalExchange,
	}
	rng := rand.New(rand.NewPCG(99, 1))
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			oracle := workload.Flatten(shape.shards)
			slices.Sort(oracle)
			n := int64(len(oracle))
			ranks := []int64{1, n, (n + 1) / 2, 1 + rng.Int64N(n)}
			for _, topo := range diffTopologies {
				for _, alg := range algs {
					for _, bal := range bals {
						opts := parsel.Options{
							Algorithm: alg,
							Balancer:  bal,
							Machine:   parsel.Machine{Procs: len(shape.shards), Topology: topo},
						}
						sel, err := parsel.NewSelector[int64](opts)
						if err != nil {
							t.Fatalf("%v/%v/%v: %v", alg, bal, topo, err)
						}
						for _, rank := range ranks {
							res, err := sel.Select(shape.shards, rank)
							if err != nil {
								t.Fatalf("%v/%v/%v rank %d: %v", alg, bal, topo, rank, err)
							}
							if res.Value != oracle[rank-1] {
								t.Errorf("%v/%v/%v rank %d = %d, oracle says %d",
									alg, bal, topo, rank, res.Value, oracle[rank-1])
							}
							if res.SimSeconds <= 0 {
								t.Errorf("%v/%v/%v rank %d: no simulated time", alg, bal, topo, rank)
							}
						}
						sel.Close()
					}
				}
			}
		})
	}
}

// TestDifferentialMultiRank runs the multi-rank and top-k entry points
// against the sort oracle on every shape (default options; these paths
// ignore the balancer by design).
func TestDifferentialMultiRank(t *testing.T) {
	shapes := diffShapes()
	if testing.Short() {
		shapes = shapes[:8]
	}
	rng := rand.New(rand.NewPCG(77, 2))
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			oracle := workload.Flatten(shape.shards)
			slices.Sort(oracle)
			n := int64(len(oracle))

			// A shuffled, duplicate-carrying rank vector.
			ranks := []int64{1, n, (n + 1) / 2, 1 + rng.Int64N(n), 1, (n + 3) / 4}
			vals, _, err := parsel.SelectRanks(shape.shards, ranks, parsel.Options{})
			if err != nil {
				t.Fatalf("SelectRanks: %v", err)
			}
			for i, r := range ranks {
				if vals[i] != oracle[r-1] {
					t.Errorf("SelectRanks rank %d = %d, oracle says %d", r, vals[i], oracle[r-1])
				}
			}

			k := int(min(7, n))
			top, _, err := parsel.TopK(shape.shards, k, parsel.Options{})
			if err != nil {
				t.Fatalf("TopK: %v", err)
			}
			wantTop := make([]int64, 0, k)
			for i := 0; i < k; i++ {
				wantTop = append(wantTop, oracle[len(oracle)-1-i])
			}
			if !slices.Equal(top, wantTop) {
				t.Errorf("TopK(%d) = %v, oracle says %v", k, top, wantTop)
			}

			bot, _, err := parsel.BottomK(shape.shards, k, parsel.Options{})
			if err != nil {
				t.Fatalf("BottomK: %v", err)
			}
			if !slices.Equal(bot, oracle[:k]) {
				t.Errorf("BottomK(%d) = %v, oracle says %v", k, bot, oracle[:k])
			}
		})
	}
}

// TestDifferentialShardsPreserved spot-checks that the borrowing entry
// points leave caller shards untouched on adversarial shapes (the
// balancers migrate data internally, which must never leak out).
func TestDifferentialShardsPreserved(t *testing.T) {
	for _, shape := range diffShapes()[:6] {
		before := make([][]int64, len(shape.shards))
		for i, s := range shape.shards {
			before[i] = slices.Clone(s)
		}
		if _, err := parsel.Median(shape.shards, parsel.Options{Balancer: parsel.GlobalExchange}); err != nil {
			t.Fatalf("%s: %v", shape.name, err)
		}
		for i := range shape.shards {
			if !slices.Equal(shape.shards[i], before[i]) {
				t.Errorf("%s: shard %d modified", shape.name, i)
			}
		}
	}
}

// TestDifferentialEmptyPopulation pins the error contract on degenerate
// shapes the generator cannot produce.
func TestDifferentialEmptyPopulation(t *testing.T) {
	allEmpty := [][]int64{{}, nil, {}}
	if _, err := parsel.Select(allEmpty, 1, parsel.Options{}); !errors.Is(err, parsel.ErrNoData) {
		t.Errorf("all-empty shards: %v", err)
	}
	if _, _, err := parsel.SelectRanks(allEmpty, []int64{1}, parsel.Options{}); !errors.Is(err, parsel.ErrNoData) {
		t.Errorf("all-empty SelectRanks: %v", err)
	}
}
