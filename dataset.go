package parsel

import (
	"cmp"
	"context"
	"errors"
	"reflect"
	"slices"
	"sync"
	"sync/atomic"
)

// ErrDatasetClosed is returned by every Dataset method called after
// Close. Queries in flight when Close arrives complete normally.
var ErrDatasetClosed = errors.New("parsel: Dataset used after Close")

// Dataset is resident sharded state: the paper's operating model, where
// each of the p processors already holds its n/p shard and selection
// queries run against that resident distribution. The shards are copied
// once at construction — snapshot-isolated from later caller mutation —
// and pinned to a machine shape (one simulated processor per shard), so
// every query skips the per-call shard shipping entirely: it checks any
// idle machine of matching shape out of the owning Pool and runs
// directly against the resident slices.
//
// Results — values and every simulated metric — are bit-identical to
// passing the same shards through the Pool's shard-per-query methods:
// the engine's per-run RNG/clock/counter reset makes a query's outcome
// a function of (Options, shards, query) only, never of machine
// history.
//
// # Concurrency contract
//
//   - Every method is safe to call from any number of goroutines;
//     concurrent queries fan out across the Pool's machines exactly as
//     direct Pool calls do (at most MaxMachines run at once, the rest
//     wait for admission).
//   - The resident shards are never mutated by queries (the engine
//     copies them into the checked-out machine's per-processor arenas,
//     the same read-only discipline as Pool.Select).
//   - Multi-value results (SelectRanks, Quantiles, TopK, BottomK) are
//     caller-owned copies, safe to retain.
//   - Close marks the Dataset unusable (later methods return
//     ErrDatasetClosed) but never interrupts queries already in flight;
//     it does not touch the Pool, which the caller still owns.
type Dataset[K cmp.Ordered] struct {
	pool   *Pool[K]
	shards [][]K // the resident snapshot; read-only after construction
	n      int64
	bytes  int64

	mu     sync.Mutex
	closed bool
}

// NewDataset uploads shards into a resident Dataset served by this
// pool. The shards are deep-copied into one contiguous per-processor
// backing array (the caller may mutate or discard its slices freely
// afterwards); the dataset's machine shape is len(shards) and cannot
// change. Empty shards — and an entirely empty population — are
// allowed, matching the sharded entry points: queries on an empty
// population return ErrNoData.
func (pl *Pool[K]) NewDataset(shards [][]K) (*Dataset[K], error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	pl.mu.Lock()
	closed := pl.closed
	pl.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	backing := make([]K, n)
	resident := make([][]K, len(shards))
	off := int64(0)
	for i, sh := range shards {
		end := off + int64(len(sh))
		resident[i] = backing[off:end:end]
		copy(resident[i], sh)
		off = end
	}
	return &Dataset[K]{
		pool:   pl,
		shards: resident,
		n:      n,
		bytes:  n * int64(reflect.TypeFor[K]().Size()),
	}, nil
}

// RestoreDataset adopts shards as a resident Dataset without copying:
// the Dataset takes ownership of the slices (and whatever backing
// arrays they share), so the caller must not touch them afterwards.
// This is the warm-restart half of the snapshot contract — a decoded
// snapshot already lives in one contiguous per-processor backing, and
// re-copying it would double the restore's memory traffic for nothing.
//
// A restored Dataset is indistinguishable from a fresh NewDataset of
// the same shards: the engine's per-run reset makes every query's
// outcome — value and every simulated metric — a function of
// (Options, shards, query) only, so results are bit-identical to the
// upload the snapshot was taken from.
func (pl *Pool[K]) RestoreDataset(shards [][]K) (*Dataset[K], error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	pl.mu.Lock()
	closed := pl.closed
	pl.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	return &Dataset[K]{
		pool:   pl,
		shards: shards,
		n:      n,
		bytes:  n * int64(reflect.TypeFor[K]().Size()),
	}, nil
}

// View returns the dataset's resident per-processor shards without
// copying: the export half of the snapshot contract, handing a
// serializer the exact slices queries run against (so a snapshot needs
// no re-sharding and restores bit-identically). The returned slices
// are views into the resident backing array and MUST be treated as
// read-only — mutating them would corrupt every in-flight and future
// query. They remain valid after Close (the memory is reclaimed by the
// runtime once the last reference drops), but View itself follows the
// lifecycle and returns ErrDatasetClosed on a closed dataset.
func (ds *Dataset[K]) View() ([][]K, error) {
	if err := ds.enter(); err != nil {
		return nil, err
	}
	return ds.shards, nil
}

// enter admits one query against the dataset, or reports why it cannot.
func (ds *Dataset[K]) enter() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return ErrDatasetClosed
	}
	return nil
}

// Close marks the dataset unusable: every later method returns
// ErrDatasetClosed. Queries already past admission complete normally
// (the snapshot memory is reclaimed by the runtime once the last of
// them returns). Close is idempotent and does not close the Pool.
func (ds *Dataset[K]) Close() {
	ds.mu.Lock()
	ds.closed = true
	ds.mu.Unlock()
}

// Procs returns the dataset's machine shape: one simulated processor
// per uploaded shard.
func (ds *Dataset[K]) Procs() int { return len(ds.shards) }

// N returns the resident population size.
func (ds *Dataset[K]) N() int64 { return ds.n }

// Bytes returns the resident size of the snapshot in bytes (population
// times the key's in-memory size; variable-size keys such as strings
// count their headers only). This is the quantity the daemon's
// resident-bytes budget accounts.
func (ds *Dataset[K]) Bytes() int64 { return ds.bytes }

// Select returns the element of 1-based rank among the resident
// population; see Pool.Select.
func (ds *Dataset[K]) Select(rank int64) (Result[K], error) {
	return ds.SelectContext(nil, rank)
}

// SelectContext is Select with a deadline on pool admission; see
// Pool.SelectContext.
func (ds *Dataset[K]) SelectContext(ctx context.Context, rank int64) (Result[K], error) {
	if err := ds.enter(); err != nil {
		return Result[K]{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.Select(ds.shards, rank)
}

// SelectMany fans a batch of independent rank queries against the
// resident dataset, running up to the pool's MaxMachines of them
// concurrently — Pool.SelectMany without the per-query shard shipping.
// Results align with ranks; each query carries its own error, so one
// out-of-range rank does not fail the batch, and every result is
// bit-identical to running that query alone. This is the in-process
// twin of the daemon's querymany endpoint.
func (ds *Dataset[K]) SelectMany(ranks []int64) []BatchResult[K] {
	out := make([]BatchResult[K], len(ranks))
	if len(ranks) == 0 {
		return out
	}
	workers := min(ds.pool.max, len(ranks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranks) {
					return
				}
				res, err := ds.Select(ranks[i])
				out[i] = BatchResult[K]{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// Median returns the element of rank ceil(n/2); see Pool.Median.
func (ds *Dataset[K]) Median() (Result[K], error) {
	return ds.MedianContext(nil)
}

// MedianContext is Median with a deadline on pool admission.
func (ds *Dataset[K]) MedianContext(ctx context.Context) (Result[K], error) {
	if err := ds.enter(); err != nil {
		return Result[K]{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.Median(ds.shards)
}

// Quantile returns the element of rank ceil(q*n); see Pool.Quantile.
func (ds *Dataset[K]) Quantile(q float64) (Result[K], error) {
	return ds.QuantileContext(nil, q)
}

// QuantileContext is Quantile with a deadline on pool admission.
func (ds *Dataset[K]) QuantileContext(ctx context.Context, q float64) (Result[K], error) {
	if err := ds.enter(); err != nil {
		return Result[K]{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.Quantile(ds.shards, q)
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; the returned slice is a caller-owned copy.
func (ds *Dataset[K]) SelectRanks(ranks []int64) ([]K, Report, error) {
	return ds.SelectRanksContext(nil, ranks)
}

// SelectRanksContext is SelectRanks with a deadline on pool admission.
func (ds *Dataset[K]) SelectRanksContext(ctx context.Context, ranks []int64) ([]K, Report, error) {
	if err := ds.enter(); err != nil {
		return nil, Report{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer ds.pool.checkin(sel)
	vals, rep, err := sel.SelectRanks(ds.shards, ranks)
	if err != nil {
		return nil, Report{}, err
	}
	return slices.Clone(vals), rep, nil
}

// Quantiles returns the elements at several quantiles in one collective
// run; the returned slice is a caller-owned copy.
func (ds *Dataset[K]) Quantiles(qs []float64) ([]K, Report, error) {
	return ds.QuantilesContext(nil, qs)
}

// QuantilesContext is Quantiles with a deadline on pool admission.
func (ds *Dataset[K]) QuantilesContext(ctx context.Context, qs []float64) ([]K, Report, error) {
	if err := ds.enter(); err != nil {
		return nil, Report{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer ds.pool.checkin(sel)
	vals, rep, err := sel.Quantiles(ds.shards, qs)
	if err != nil {
		return nil, Report{}, err
	}
	return slices.Clone(vals), rep, nil
}

// TopK returns the k largest resident elements in descending order; see
// Pool.TopK.
func (ds *Dataset[K]) TopK(k int) ([]K, Report, error) {
	return ds.TopKContext(nil, k)
}

// TopKContext is TopK with a deadline on pool admission.
func (ds *Dataset[K]) TopKContext(ctx context.Context, k int) ([]K, Report, error) {
	if err := ds.enter(); err != nil {
		return nil, Report{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.TopK(ds.shards, k)
}

// BottomK returns the k smallest resident elements in ascending order;
// see Pool.BottomK.
func (ds *Dataset[K]) BottomK(k int) ([]K, Report, error) {
	return ds.BottomKContext(nil, k)
}

// BottomKContext is BottomK with a deadline on pool admission.
func (ds *Dataset[K]) BottomKContext(ctx context.Context, k int) ([]K, Report, error) {
	if err := ds.enter(); err != nil {
		return nil, Report{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.BottomK(ds.shards, k)
}

// Summary computes the five-number summary in a single multi-rank run;
// see Pool.Summary.
func (ds *Dataset[K]) Summary() (FiveNumber[K], Report, error) {
	return ds.SummaryContext(nil)
}

// SummaryContext is Summary with a deadline on pool admission.
func (ds *Dataset[K]) SummaryContext(ctx context.Context) (FiveNumber[K], Report, error) {
	if err := ds.enter(); err != nil {
		return FiveNumber[K]{}, Report{}, err
	}
	sel, err := ds.pool.checkout(ctx, len(ds.shards))
	if err != nil {
		return FiveNumber[K]{}, Report{}, err
	}
	defer ds.pool.checkin(sel)
	return sel.Summary(ds.shards)
}
