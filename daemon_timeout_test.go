package parsel_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// TestDaemonPoolTimeoutTyped is the deterministic end-to-end deadline
// test: the daemon pool's only machine is held checked out via the test
// hook (so there is no race about how long it stays busy), a
// deadline-carrying HTTP query must come back as the typed 429
// pool_timeout that errors.Is-matches parsel.ErrPoolTimeout, and after
// the machine is released the identical query succeeds. This pins the
// whole chain: Pool.checkout context plumbing -> serve's error mapping
// -> the client's typed-error reconstruction.
func TestDaemonPoolTimeoutTyped(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv, err := serve.New(serve.Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := parselclient.New(ts.URL, parselclient.WithHTTPClient(ts.Client()))
	shards := workload.Generate(workload.Random, 4000, 4, 9)
	ctx := context.Background()

	release, err := pool.CheckoutForTest(4)
	if err != nil {
		t.Fatal(err)
	}
	client.QueryTimeout = 10 * time.Millisecond
	_, err = client.Median(ctx, shards)
	var apiErr *parselclient.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("held machine: err %v, want *APIError", err)
	}
	if apiErr.Status != 429 || apiErr.Code != parselclient.CodePoolTimeout {
		t.Errorf("held machine: %d %s, want 429 %s",
			apiErr.Status, apiErr.Code, parselclient.CodePoolTimeout)
	}
	if !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("wire error %v does not match parsel.ErrPoolTimeout", err)
	}

	// Same over the multi-value and summary surfaces.
	if _, _, err := client.Quantiles(ctx, shards, []float64{0.5, 0.9}); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("quantiles while held: %v", err)
	}
	if _, _, err := client.Summary(ctx, shards); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("summary while held: %v", err)
	}

	st := pool.Stats()
	if st.Timeouts < 3 {
		t.Errorf("pool recorded %d timeouts, want >= 3", st.Timeouts)
	}

	release()
	client.QueryTimeout = 0
	res, err := client.Median(ctx, shards)
	if err != nil {
		t.Fatalf("released machine: %v", err)
	}
	direct, err := pool.Median(shards)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != direct.Value || res.SimSeconds != direct.SimSeconds {
		t.Errorf("released machine: %d (sim %g), want %d (sim %g)",
			res.Value, res.SimSeconds, direct.Value, direct.SimSeconds)
	}
}
