package parsel_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"parsel"
	"parsel/internal/workload"
)

// TestPoolContextTimeout deterministically provokes ErrPoolTimeout: the
// pool's only machine is held checked out, so a deadline-carrying query
// must time out in admission — and must match both the typed pool error
// and the context verdict. After the machine is released the same query
// succeeds.
func TestPoolContextTimeout(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	shards := workload.Generate(workload.Random, 4000, 4, 9)

	release, err := pool.CheckoutForTest(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = pool.SelectContext(ctx, shards, 1)
	if !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Fatalf("saturated pool: err = %v, want ErrPoolTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("saturated pool: err = %v, want to match context.DeadlineExceeded too", err)
	}
	st := pool.Stats()
	if st.Timeouts != 1 || st.Waits != 1 {
		t.Errorf("stats after timeout: %+v, want Timeouts=1 Waits=1", st)
	}

	// The full query surface reports the same typed error while starved.
	short := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), time.Millisecond)
	}
	ctx2, cancel2 := short()
	if _, err := pool.MedianContext(ctx2, shards); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("MedianContext: %v", err)
	}
	cancel2()
	ctx3, cancel3 := short()
	if _, _, err := pool.QuantilesContext(ctx3, shards, []float64{0.5}); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("QuantilesContext: %v", err)
	}
	cancel3()
	ctx4, cancel4 := short()
	if _, _, err := pool.TopKContext(ctx4, shards, 3); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("TopKContext: %v", err)
	}
	cancel4()
	ctx5, cancel5 := short()
	if _, _, err := pool.SummaryContext(ctx5, shards); !errors.Is(err, parsel.ErrPoolTimeout) {
		t.Errorf("SummaryContext: %v", err)
	}
	cancel5()

	release()
	res, err := pool.SelectContext(context.Background(), shards, 1)
	if err != nil {
		t.Fatalf("freed pool: %v", err)
	}
	flat := workload.Flatten(shards)
	minV := flat[0]
	for _, v := range flat {
		if v < minV {
			minV = v
		}
	}
	if res.Value != minV {
		t.Errorf("freed pool: value %d, want %d", res.Value, minV)
	}
}

// TestPoolContextPreCancelled pins the admission contract for a context
// that is already dead: the query is refused with ErrPoolTimeout (and
// the context's cause) even when a machine is free.
func TestPoolContextPreCancelled(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pool.SelectContext(ctx, [][]int64{{1, 2}, {3}}, 1)
	if !errors.Is(err, parsel.ErrPoolTimeout) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want ErrPoolTimeout wrapping context.Canceled", err)
	}
	if st := pool.Stats(); st.Creates != 0 {
		t.Errorf("pre-cancelled ctx built a machine: %+v", st)
	}
}

// TestPoolContextNilMeansForever checks the nil-context path still
// blocks (and completes) rather than timing out, and that a queued
// waiter proceeds once capacity frees up.
func TestPoolContextNilMeansForever(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	shards := workload.Generate(workload.Random, 2000, 2, 4)

	release, err := pool.CheckoutForTest(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.SelectContext(nil, shards, 1); err != nil {
			t.Errorf("nil-ctx select: %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the waiter queue up
	release()
	wg.Wait()
	if st := pool.Stats(); st.Timeouts != 0 {
		t.Errorf("nil-ctx wait counted a timeout: %+v", st)
	}
}

// TestPoolStatsGauges pins the Resident/Idle gauges through a checkout/
// checkin/Close cycle — the leak audit primitive the daemon tests rely
// on.
func TestPoolStatsGauges(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := pool.CheckoutForTest(4)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Resident != 1 || st.Idle != 0 {
		t.Errorf("one checkout: %+v, want Resident=1 Idle=0", st)
	}
	rel1()
	if st := pool.Stats(); st.Resident != 1 || st.Idle != 1 {
		t.Errorf("after checkin: %+v, want Resident=1 Idle=1", st)
	}
	pool.Close()
	if st := pool.Stats(); st.Resident != 0 || st.Idle != 0 {
		t.Errorf("after Close: %+v, want Resident=0 Idle=0", st)
	}
}
