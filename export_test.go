package parsel

import "reflect"

// Test hooks for white-box tests of the engine internals.

// SetAgreementChecks toggles the cross-processor result assertion.
func SetAgreementChecks(on bool) { agreementChecks = on }

// Exported internals under test.
var (
	QuantileRankForTest = quantileRank
	DisagreementForTest = disagreement[int64]
)

// AcquireForTest marks the Selector as serving a call, exactly as a
// public method would, so tests can deterministically provoke
// ErrSelectorBusy.
func (s *Selector[K]) AcquireForTest() error { return s.acquire() }

// ReleaseForTest undoes AcquireForTest.
func (s *Selector[K]) ReleaseForTest() { s.release() }

// CheckoutForTest checks a procs-shaped Selector out of the pool exactly
// as a query would and returns a func that checks it back in, so tests
// can deterministically occupy pool capacity (e.g. to provoke
// ErrPoolTimeout without racing a real query).
func (pl *Pool[K]) CheckoutForTest(procs int) (release func(), err error) {
	sel, err := pl.checkout(nil, procs)
	if err != nil {
		return nil, err
	}
	return func() { pl.checkin(sel) }, nil
}

// DefaultPoolStatsForTest returns the stats of the shared default pool
// the package-level wrappers route through for (opts, int64), creating
// the pool if it does not exist yet. It panics if opts is not
// cacheable (the fallback pool is private to each call and has no
// observable stats).
func DefaultPoolStatsForTest(opts Options) PoolStats {
	pl, done, err := defaultPool[int64](opts)
	if err != nil {
		panic(err)
	}
	done()
	opts.Machine.Procs = 0
	defaultPoolsMu.Lock()
	_, shared := defaultPools[defaultPoolKey{opts: opts, typ: reflect.TypeFor[int64]()}]
	defaultPoolsMu.Unlock()
	if !shared {
		panic("DefaultPoolStatsForTest: opts not served by a shared pool")
	}
	return pl.Stats()
}

// DefaultPoolCountForTest reports how many shared default pools are
// resident (the cache the wrappers intern pools into).
func DefaultPoolCountForTest() int {
	defaultPoolsMu.Lock()
	defer defaultPoolsMu.Unlock()
	return len(defaultPools)
}

// ResetDefaultPoolsForTest closes and clears every shared default pool,
// so a test that deliberately saturates the cache does not degrade the
// rest of the test binary.
func ResetDefaultPoolsForTest() {
	defaultPoolsMu.Lock()
	pools := defaultPools
	defaultPools = make(map[defaultPoolKey]any)
	defaultPoolsMu.Unlock()
	for _, p := range pools {
		p.(interface{ Close() }).Close()
	}
}
