package parsel

// Test hooks for white-box tests of the engine internals.

// SetAgreementChecks toggles the cross-processor result assertion.
func SetAgreementChecks(on bool) { agreementChecks = on }

// Exported internals under test.
var (
	QuantileRankForTest = quantileRank
	DisagreementForTest = disagreement[int64]
)

// AcquireForTest marks the Selector as serving a call, exactly as a
// public method would, so tests can deterministically provoke
// ErrSelectorBusy.
func (s *Selector[K]) AcquireForTest() error { return s.acquire() }

// ReleaseForTest undoes AcquireForTest.
func (s *Selector[K]) ReleaseForTest() { s.release() }
