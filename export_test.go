package parsel

// Test hooks for white-box tests of the engine internals.

// SetAgreementChecks toggles the cross-processor result assertion.
func SetAgreementChecks(on bool) { agreementChecks = on }

// Exported internals under test.
var (
	QuantileRankForTest = quantileRank
	DisagreementForTest = disagreement[int64]
)
