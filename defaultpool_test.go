package parsel_test

import (
	"math"
	"slices"
	"sync"
	"testing"

	"parsel"
	"parsel/internal/workload"
)

// TestPackageWrappersShareDefaultPool is the regression test for the
// shared default pool behind the package-level functions: concurrent
// and repeated Select calls with the same Options must reuse resident
// machines, never rebuild one per call (the pre-PR-3 wrappers built and
// tore down a machine every time).
func TestPackageWrappersShareDefaultPool(t *testing.T) {
	// A seed no other test uses, so this test owns its default pool and
	// the counters start from zero.
	opts := parsel.Options{Machine: parsel.Machine{Seed: 0xD00DF00D}}
	shards := workload.Generate(workload.Random, 20000, 6, 11)
	flat := workload.Flatten(shards)
	slices.Sort(flat)
	want := flat[9999]

	run := func(clients int) {
		t.Helper()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := parsel.Select(shards, 10000, opts)
				if err != nil {
					t.Errorf("Select: %v", err)
					return
				}
				if res.Value != want {
					t.Errorf("Select = %d, want %d", res.Value, want)
				}
			}()
		}
		wg.Wait()
	}

	// Two concurrent calls may each build a machine (the pool is cold),
	// but never more than two.
	run(2)
	st := parsel.DefaultPoolStatsForTest(opts)
	if st.Creates == 0 || st.Creates > 2 {
		t.Fatalf("cold concurrent wrappers built %d machines, want 1-2", st.Creates)
	}
	cold := st.Creates

	// Every later call — concurrent or sequential — must hit a resident
	// machine; machine construction happens zero more times.
	run(2)
	if _, err := parsel.Median(shards, opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := parsel.SelectRanks(shards, []int64{1, 20000}, opts); err != nil {
		t.Fatal(err)
	}
	st = parsel.DefaultPoolStatsForTest(opts)
	if st.Creates != cold {
		t.Errorf("warm wrappers rebuilt machines: %d creates, want %d", st.Creates, cold)
	}
	if st.Hits < 4 {
		t.Errorf("warm wrappers only reused a machine %d times, want >= 4", st.Hits)
	}

	// Distinct Options (different seed) get a distinct pool: stats start
	// over rather than aliasing the first pool.
	other := opts
	other.Machine.Seed = 0xBADCAB1E
	if _, err := parsel.Median(shards, other); err != nil {
		t.Fatal(err)
	}
	if st := parsel.DefaultPoolStatsForTest(other); st.Creates != 1 {
		t.Errorf("second Options pool has %d creates, want 1", st.Creates)
	}
}

// TestDefaultPoolShapeSharing pins the key normalization: calls that
// differ only in Machine.Procs (which the sharded entry points ignore)
// share one default pool.
func TestDefaultPoolShapeSharing(t *testing.T) {
	opts := parsel.Options{Machine: parsel.Machine{Seed: 0xFEEDFACE}}
	shards := workload.Generate(workload.Random, 5000, 4, 3)
	if _, err := parsel.Median(shards, opts); err != nil {
		t.Fatal(err)
	}
	withProcs := opts
	withProcs.Machine.Procs = 32 // ignored by sharded calls
	if _, err := parsel.Median(shards, withProcs); err != nil {
		t.Fatal(err)
	}
	st := parsel.DefaultPoolStatsForTest(opts)
	if st.Creates != 1 || st.Hits < 1 {
		t.Errorf("Procs-only Options variation split the pool: %+v", st)
	}
}

// TestDefaultPoolCacheBounded pins the fallback path: the shared cache
// never grows past its cap, and uncacheable Options (NaN tuning
// fields, or high-cardinality Options churn past the cap) still serve
// correct results through private throwaway pools instead of pinning
// machines and goroutines forever. The cache is deliberately saturated
// here, so it is reset on cleanup to keep the rest of the binary fast.
func TestDefaultPoolCacheBounded(t *testing.T) {
	t.Cleanup(parsel.ResetDefaultPoolsForTest)
	shards := [][]int64{{9, 1, 5}, {3, 7, 2}}

	// NaN options: opts != opts, so no cache entry may appear.
	before := parsel.DefaultPoolCountForTest()
	nan := parsel.Options{SampleExponent: math.NaN()}
	for i := 0; i < 3; i++ {
		res, err := parsel.Select(shards, 3, nan)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 3 {
			t.Fatalf("NaN-options Select = %d, want 3", res.Value)
		}
	}
	if got := parsel.DefaultPoolCountForTest(); got != before {
		t.Errorf("NaN options grew the pool cache %d -> %d", before, got)
	}

	// Churn far more distinct Options than the cap: the cache saturates
	// at the cap, and every call past it still answers correctly.
	for i := 0; i < 80; i++ {
		res, err := parsel.Select(shards, 1, parsel.Options{
			Machine: parsel.Machine{Seed: 0xC0FFEE + uint64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 1 {
			t.Fatalf("churned Options Select = %d, want 1", res.Value)
		}
	}
	if got := parsel.DefaultPoolCountForTest(); got > 64 {
		t.Errorf("pool cache grew to %d entries, cap is 64", got)
	}
}
