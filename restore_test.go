package parsel_test

import (
	"errors"
	"slices"
	"testing"

	"parsel"
	"parsel/internal/workload"
)

// simOnly strips the host-dependent wall clock so reports compare
// bit-for-bit on the simulated metrics.
func simOnly(r parsel.Report) parsel.Report {
	r.WallSeconds = 0
	return r
}

// TestDatasetViewRestoreBitIdentical pins the snapshot contract at
// the library layer: View exports the resident per-proc shards
// without re-sharding, RestoreDataset adopts them zero-copy into
// another pool, and every query against the restored dataset — values
// and every simulated metric — is bit-identical to the original.
func TestDatasetViewRestoreBitIdentical(t *testing.T) {
	opts := parsel.Options{}
	pool, err := parsel.NewPool[int64](opts, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	shards := workload.Generate(workload.ZipfLike, 6000, 5, 99)
	ds, err := pool.NewDataset(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	view, err := ds.View()
	if err != nil {
		t.Fatal(err)
	}
	if len(view) != len(shards) {
		t.Fatalf("view has %d shards, uploaded %d", len(view), len(shards))
	}
	for i := range shards {
		if !slices.Equal(view[i], shards[i]) {
			t.Fatalf("view shard %d diverges from the upload", i)
		}
	}

	// Restore into a second pool, as a restarted daemon would.
	pool2, err := parsel.NewPool[int64](opts, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	restored, err := pool2.RestoreDataset(view)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Procs() != ds.Procs() || restored.N() != ds.N() || restored.Bytes() != ds.Bytes() {
		t.Errorf("restored shape %d/%d/%d, original %d/%d/%d",
			restored.Procs(), restored.N(), restored.Bytes(), ds.Procs(), ds.N(), ds.Bytes())
	}

	n := ds.N()
	for _, rank := range []int64{1, n / 3, (n + 1) / 2, n} {
		want, err := ds.Select(rank)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Select(rank)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || simOnly(got.Report) != simOnly(want.Report) {
			t.Errorf("rank %d: restored %+v, original %+v", rank, got, want)
		}
	}
	wantQ, wantRep, err := ds.Quantiles([]float64{0.01, 0.5, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	gotQ, gotRep, err := restored.Quantiles([]float64{0.01, 0.5, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotQ, wantQ) || simOnly(gotRep) != simOnly(wantRep) {
		t.Errorf("quantiles: restored %v %+v, original %v %+v", gotQ, gotRep, wantQ, wantRep)
	}
	wantS, wantSRep, err := ds.Summary()
	if err != nil {
		t.Fatal(err)
	}
	gotS, gotSRep, err := restored.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if gotS != wantS || simOnly(gotSRep) != simOnly(wantSRep) {
		t.Errorf("summary: restored %+v, original %+v", gotS, wantS)
	}
}

// TestDatasetViewRestoreLifecycle pins the error surface of the new
// export/import methods.
func TestDatasetViewRestoreLifecycle(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := pool.NewDataset([][]int64{{2, 1}, {3}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := pool.RestoreDataset(nil); !errors.Is(err, parsel.ErrNoShards) {
		t.Errorf("RestoreDataset(nil) = %v, want ErrNoShards", err)
	}

	// An empty-shard restore is legal (empty populations are resident
	// too) and queries report ErrNoData like every entry point.
	empty, err := pool.RestoreDataset([][]int64{{}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Median(); !errors.Is(err, parsel.ErrNoData) {
		t.Errorf("empty restored median = %v, want ErrNoData", err)
	}

	ds.Close()
	if _, err := ds.View(); !errors.Is(err, parsel.ErrDatasetClosed) {
		t.Errorf("View after Close = %v, want ErrDatasetClosed", err)
	}

	pool.Close()
	if _, err := pool.RestoreDataset([][]int64{{1}}); !errors.Is(err, parsel.ErrPoolClosed) {
		t.Errorf("RestoreDataset on closed pool = %v, want ErrPoolClosed", err)
	}
}
