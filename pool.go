package parsel

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// PoolOptions configures a Pool.
type PoolOptions struct {
	// MaxMachines bounds the number of resident Selectors (simulated
	// machines) the pool will hold at once. Calls beyond this many
	// concurrent queries block until a machine frees up. 0 means 4.
	MaxMachines int
}

// withDefaults fills in the zero-valued knobs.
func (po PoolOptions) withDefaults() PoolOptions {
	if po.MaxMachines == 0 {
		po.MaxMachines = 4
	}
	return po
}

// PoolStats counts what the pool did, for observability and tests.
type PoolStats struct {
	// Creates is the number of Selectors built.
	Creates int64
	// Hits is the number of checkouts served by an idle Selector that
	// already had the right machine shape.
	Hits int64
	// Reshapes is the number of checkouts that repurposed an idle
	// Selector of a different shape (paying one machine rebuild).
	Reshapes int64
	// Waits is the number of checkouts that blocked for a free slot.
	Waits int64
	// Timeouts is the number of checkouts abandoned because the caller's
	// context expired while waiting for a free slot (ErrPoolTimeout).
	Timeouts int64
	// Resident is the current number of Selectors owned by the pool,
	// idle or checked out (a gauge, sampled by Stats).
	Resident int64
	// Idle is the current number of idle Selectors (a gauge, sampled by
	// Stats). Resident - Idle is the number of queries in flight.
	Idle int64
}

// Pool is a goroutine-safe serving layer over a bounded set of resident
// Selectors sharing one Options configuration. It is the concurrency
// story for a long-lived selection/quantile service: many goroutines
// issue queries against one pool, each query checks a Selector out for
// its duration, and results — including every simulated metric — are
// bit-identical to running the same query on a one-shot Selector.
//
// # Concurrency contract
//
//   - Every method is safe to call from any number of goroutines.
//   - Each query runs on exactly one resident Selector, checked out for
//     the duration of the call; a Selector never serves two queries at
//     once (the machine layer additionally asserts single-flight
//     ownership).
//   - Selectors are pooled per machine shape (processor count = shard
//     count of the call). A query whose shape has an idle Selector
//     reuses it at full amortized speed; a new shape grows the pool if
//     it is below MaxMachines, and otherwise repurposes an idle
//     Selector, paying one machine rebuild.
//   - At most MaxMachines queries execute concurrently; beyond that,
//     calls block (FIFO-ish, via an internal semaphore) until a machine
//     frees up. Blocking calls hold no locks, so progress is always
//     possible.
//   - Shard slices passed to a query are read but never modified; the
//     caller keeps ownership. Result slices (SelectRanks, Quantiles,
//     TopK, BottomK) are caller-owned copies, safe to retain.
//   - After Close, every method returns ErrPoolClosed. Queries already
//     in flight complete normally.
type Pool[K cmp.Ordered] struct {
	opts Options
	max  int
	sem  chan struct{} // counting semaphore: one token per in-flight query

	mu     sync.Mutex
	idle   map[int][]*Selector[K] // idle Selectors keyed by machine shape
	total  int                    // resident Selectors (idle + checked out)
	closed bool
	stats  PoolStats

	// warmMu serializes Warm calls. Warm holds several semaphore tokens
	// at once; two concurrent Warms could otherwise each grab part of
	// the capacity and deadlock waiting for the rest (queries never
	// hold-and-wait, so they need no such serialization).
	warmMu sync.Mutex
}

// NewPool builds a serving pool for opts. Options.Machine.Procs is
// ignored (each query's shard count picks its machine shape); the
// remaining options apply to every resident Selector. No machine is
// built until the first query.
func NewPool[K cmp.Ordered](opts Options, po PoolOptions) (*Pool[K], error) {
	po = po.withDefaults()
	// Validate the machine description once, eagerly, with a throwaway
	// one-processor parameter set, so a misconfigured pool fails at
	// construction rather than on first use.
	if _, err := opts.Machine.params(1); err != nil {
		return nil, err
	}
	return &Pool[K]{
		opts: opts,
		max:  po.MaxMachines,
		sem:  make(chan struct{}, po.MaxMachines),
		idle: make(map[int][]*Selector[K]),
	}, nil
}

// checkout blocks for a slot and returns a Selector for a procs-shaped
// query. The caller must hand it back with checkin. The context bounds
// only the wait for a slot: once a Selector is checked out, the query
// runs to completion (a collective simulation has no safe preemption
// point). A nil context means wait forever, as the plain methods do.
func (pl *Pool[K]) checkout(ctx context.Context, procs int) (*Selector[K], error) {
	if procs == 0 {
		return nil, ErrNoShards
	}
	done := ctxDone(ctx)
	if done != nil {
		select {
		case <-done:
			return nil, poolTimeout(ctx)
		default:
		}
	}
	select {
	case pl.sem <- struct{}{}:
	default:
		pl.mu.Lock()
		pl.stats.Waits++
		pl.mu.Unlock()
		observe := checkoutObserver(ctx)
		var start time.Time
		if observe != nil {
			start = time.Now()
		}
		if done == nil {
			pl.sem <- struct{}{}
		} else {
			select {
			case pl.sem <- struct{}{}:
			case <-done:
				pl.mu.Lock()
				pl.stats.Timeouts++
				pl.mu.Unlock()
				if observe != nil {
					observe(time.Since(start))
				}
				return nil, poolTimeout(ctx)
			}
		}
		if observe != nil {
			observe(time.Since(start))
		}
	}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		<-pl.sem
		return nil, ErrPoolClosed
	}
	if list := pl.idle[procs]; len(list) > 0 {
		sel := list[len(list)-1]
		pl.idle[procs] = list[:len(list)-1]
		pl.stats.Hits++
		pl.mu.Unlock()
		return sel, nil
	}
	if pl.total < pl.max {
		pl.total++
		pl.stats.Creates++
		pl.mu.Unlock()
		o := pl.opts
		o.Machine.Procs = procs
		sel, err := NewSelector[K](o)
		if err != nil {
			pl.mu.Lock()
			pl.total--
			pl.mu.Unlock()
			<-pl.sem
			return nil, err
		}
		return sel, nil
	}
	// The pool is full and no idle Selector has this shape: repurpose
	// one from another shape (Selector.ensure rebuilds transparently on
	// the next call). One must exist: the semaphore admits at most max
	// concurrent holders, so total == max implies at least one resident
	// Selector is idle.
	for shape, list := range pl.idle {
		if len(list) > 0 {
			sel := list[len(list)-1]
			pl.idle[shape] = list[:len(list)-1]
			pl.stats.Reshapes++
			pl.mu.Unlock()
			return sel, nil
		}
	}
	pl.mu.Unlock()
	panic("parsel: pool invariant violated: full pool with no idle Selector")
}

// ctxDone returns the context's done channel, or nil for a nil or
// never-cancelled context (the fast path never touches it then).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// poolTimeout wraps the context's cause so callers can match both the
// pool-level condition (errors.Is(err, ErrPoolTimeout)) and the precise
// context verdict (context.DeadlineExceeded vs context.Canceled).
func poolTimeout(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrPoolTimeout, context.Cause(ctx))
}

// checkin returns a Selector to the idle set (or closes it if the pool
// was closed meanwhile) and frees the slot.
func (pl *Pool[K]) checkin(sel *Selector[K]) {
	pl.mu.Lock()
	if pl.closed {
		pl.total--
		pl.mu.Unlock()
		sel.Close()
		<-pl.sem
		return
	}
	shape := sel.Procs()
	pl.idle[shape] = append(pl.idle[shape], sel)
	pl.mu.Unlock()
	<-pl.sem
}

// Close shuts the pool down: idle Selectors are closed immediately,
// checked-out ones as their queries complete, and every later method
// call returns ErrPoolClosed. Close is idempotent.
func (pl *Pool[K]) Close() {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return
	}
	pl.closed = true
	var all []*Selector[K]
	for shape, list := range pl.idle {
		all = append(all, list...)
		delete(pl.idle, shape)
	}
	pl.total -= len(all)
	pl.mu.Unlock()
	for _, sel := range all {
		sel.Close()
	}
}

// Stats returns a snapshot of the pool's counters, with the Resident
// and Idle gauges sampled at the call.
func (pl *Pool[K]) Stats() PoolStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	st := pl.stats
	st.Resident = int64(pl.total)
	for _, list := range pl.idle {
		st.Idle += int64(len(list))
	}
	return st
}

// MaxMachines returns the pool's capacity: the maximum number of
// resident Selectors, and so of concurrently executing queries.
func (pl *Pool[K]) MaxMachines() int { return pl.max }

// Options returns the configuration every resident Selector runs
// with (Machine.Procs is per-query and meaningless here). Callers use
// it to fingerprint a pool — e.g. to stamp snapshots with the
// configuration they were taken under.
func (pl *Pool[K]) Options() Options { return pl.opts }

// Warm pre-provisions count resident Selectors — machine fabric
// included — for procs-shaped queries (count is capped at MaxMachines),
// so a later burst of concurrent traffic pays no machine construction.
// It holds all count Selectors checked out at once, guaranteeing the
// pool really grows to that size, then returns them idle. Warm blocks
// while count machines are busy with queries; concurrent Warm calls are
// serialized against each other.
func (pl *Pool[K]) Warm(procs, count int) error {
	if procs < 1 {
		return ErrNoShards
	}
	if count > pl.max {
		count = pl.max
	}
	pl.warmMu.Lock()
	defer pl.warmMu.Unlock()
	sels := make([]*Selector[K], 0, count)
	defer func() {
		for _, sel := range sels {
			pl.checkin(sel)
		}
	}()
	for i := 0; i < count; i++ {
		sel, err := pl.checkout(nil, procs)
		if err != nil {
			return err
		}
		sels = append(sels, sel)
		// Force the lazy machine build now; a plain checkout only
		// allocates the Selector shell.
		if err := sel.ensure(procs); err != nil {
			return err
		}
	}
	return nil
}

// Select returns the element of 1-based rank among all elements of
// shards; see Selector.Select. Safe for concurrent use.
func (pl *Pool[K]) Select(shards [][]K, rank int64) (Result[K], error) {
	return pl.SelectContext(nil, shards, rank)
}

// SelectContext is Select with a deadline on pool admission: if every
// machine is busy and the context expires before one frees up, the call
// returns an error matching both ErrPoolTimeout and the context's own
// verdict (errors.Is either way). The deadline bounds only the wait for
// a machine — a query that has started always runs to completion, so a
// served result is never partial. A nil context waits forever.
func (pl *Pool[K]) SelectContext(ctx context.Context, shards [][]K, rank int64) (Result[K], error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer pl.checkin(sel)
	return sel.Select(shards, rank)
}

// SelectInPlace is Select for callers that hand over ownership of their
// shards; see Selector.SelectInPlace. The caller must not touch the
// shards until the call returns. Safe for concurrent use (with distinct
// shards per call).
func (pl *Pool[K]) SelectInPlace(shards [][]K, rank int64) (Result[K], error) {
	return pl.SelectInPlaceContext(nil, shards, rank)
}

// SelectInPlaceContext is SelectInPlace with a deadline on pool
// admission; see SelectContext. A timed-out call has not touched the
// caller's shards.
func (pl *Pool[K]) SelectInPlaceContext(ctx context.Context, shards [][]K, rank int64) (Result[K], error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer pl.checkin(sel)
	return sel.SelectInPlace(shards, rank)
}

// Median returns the element of rank ceil(n/2); see Selector.Median.
func (pl *Pool[K]) Median(shards [][]K) (Result[K], error) {
	return pl.MedianContext(nil, shards)
}

// MedianContext is Median with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) MedianContext(ctx context.Context, shards [][]K) (Result[K], error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer pl.checkin(sel)
	return sel.Median(shards)
}

// Quantile returns the element of rank ceil(q*n); see Selector.Quantile.
func (pl *Pool[K]) Quantile(shards [][]K, q float64) (Result[K], error) {
	return pl.QuantileContext(nil, shards, q)
}

// QuantileContext is Quantile with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) QuantileContext(ctx context.Context, shards [][]K, q float64) (Result[K], error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return Result[K]{}, err
	}
	defer pl.checkin(sel)
	return sel.Quantile(shards, q)
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run; see Selector.SelectRanks. The returned slice is a
// caller-owned copy.
func (pl *Pool[K]) SelectRanks(shards [][]K, ranks []int64) ([]K, Report, error) {
	return pl.SelectRanksContext(nil, shards, ranks)
}

// SelectRanksContext is SelectRanks with a deadline on pool admission;
// see SelectContext.
func (pl *Pool[K]) SelectRanksContext(ctx context.Context, shards [][]K, ranks []int64) ([]K, Report, error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer pl.checkin(sel)
	vals, rep, err := sel.SelectRanks(shards, ranks)
	if err != nil {
		return nil, Report{}, err
	}
	return slices.Clone(vals), rep, nil
}

// Quantiles returns the elements at several quantiles in one collective
// run; see Selector.Quantiles. The returned slice is a caller-owned
// copy.
func (pl *Pool[K]) Quantiles(shards [][]K, qs []float64) ([]K, Report, error) {
	return pl.QuantilesContext(nil, shards, qs)
}

// QuantilesContext is Quantiles with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) QuantilesContext(ctx context.Context, shards [][]K, qs []float64) ([]K, Report, error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer pl.checkin(sel)
	vals, rep, err := sel.Quantiles(shards, qs)
	if err != nil {
		return nil, Report{}, err
	}
	return slices.Clone(vals), rep, nil
}

// TopK returns the k largest elements in descending order; see
// Selector.TopK.
func (pl *Pool[K]) TopK(shards [][]K, k int) ([]K, Report, error) {
	return pl.TopKContext(nil, shards, k)
}

// TopKContext is TopK with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) TopKContext(ctx context.Context, shards [][]K, k int) ([]K, Report, error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer pl.checkin(sel)
	return sel.TopK(shards, k)
}

// BottomK returns the k smallest elements in ascending order; see
// Selector.BottomK.
func (pl *Pool[K]) BottomK(shards [][]K, k int) ([]K, Report, error) {
	return pl.BottomKContext(nil, shards, k)
}

// BottomKContext is BottomK with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) BottomKContext(ctx context.Context, shards [][]K, k int) ([]K, Report, error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return nil, Report{}, err
	}
	defer pl.checkin(sel)
	return sel.BottomK(shards, k)
}

// Summary computes the five-number summary in a single multi-rank run;
// see Selector.Summary.
func (pl *Pool[K]) Summary(shards [][]K) (FiveNumber[K], Report, error) {
	return pl.SummaryContext(nil, shards)
}

// SummaryContext is Summary with a deadline on pool admission; see
// SelectContext.
func (pl *Pool[K]) SummaryContext(ctx context.Context, shards [][]K) (FiveNumber[K], Report, error) {
	sel, err := pl.checkout(ctx, len(shards))
	if err != nil {
		return FiveNumber[K]{}, Report{}, err
	}
	defer pl.checkin(sel)
	return sel.Summary(shards)
}

// Query is one independent selection request of a SelectMany batch.
type Query[K cmp.Ordered] struct {
	// Shards is the sharded population (one simulated processor per
	// shard, as in Select).
	Shards [][]K
	// Rank is the 1-based target rank.
	Rank int64
}

// BatchResult is one query's outcome in a SelectMany batch.
type BatchResult[K cmp.Ordered] struct {
	Result[K]
	// Err is the query's own error (other queries proceed regardless).
	Err error
}

// SelectMany fans a batch of independent queries across the pool's
// machines, running up to MaxMachines of them concurrently. Results
// align with the request; each query carries its own error, so one
// invalid query does not fail the batch. Every result is bit-identical
// to running that query alone.
func (pl *Pool[K]) SelectMany(queries []Query[K]) []BatchResult[K] {
	out := make([]BatchResult[K], len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := min(pl.max, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				res, err := pl.Select(queries[i].Shards, queries[i].Rank)
				out[i] = BatchResult[K]{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
