module parsel

go 1.24
