package snapshot

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a directory of snapshot files plus a manifest of the live
// set. All mutations are crash-safe: file and manifest writes go
// through a temp file, fsync, and an atomic rename, so a kill at any
// instant leaves either the old state or the new one — a partial
// write is invisible (its temp file is swept on the next Open).
//
// Methods are safe for concurrent use; the store serializes its own
// disk access.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]Meta
}

// Meta is one manifest entry: everything the daemon needs to
// re-register a dataset without decoding its snapshot file first.
type Meta struct {
	// ID is the dataset id the snapshot restores under.
	ID string `json:"id"`
	// File is the snapshot's file name within the store directory.
	File string `json:"file"`
	// Procs, N and Bytes mirror the resident dataset's shape and
	// budget accounting.
	Procs int   `json:"procs"`
	N     int64 `json:"n"`
	Bytes int64 `json:"bytes"`
	// DiskBytes is the snapshot file's size.
	DiskBytes int64 `json:"disk_bytes"`
	// Gen is the dataset's upload generation; a Save carrying the
	// generation already on disk skips the data rewrite, and a stale
	// one is ignored entirely.
	Gen int64 `json:"gen"`
	// ExpiresUnixMS is the dataset's TTL deadline at the time of the
	// last persist, as absolute wall-clock milliseconds; recovery
	// skips entries already past it.
	ExpiresUnixMS int64 `json:"expires_unix_ms"`
	// SavedUnixMS stamps the last persist of this entry.
	SavedUnixMS int64 `json:"saved_unix_ms"`
	// Options fingerprints the pool configuration at persist time.
	Options string `json:"options"`
	// KeyType names the dataset's key kind (KeyTypeInt64 or
	// KeyTypeFloat64); manifests written before the field existed imply
	// KeyTypeInt64, which Open fills in.
	KeyType string `json:"key_type,omitempty"`
	// Tenant names the tenant the dataset's resident bytes are charged
	// to; empty when the daemon runs without tenants.
	Tenant string `json:"tenant,omitempty"`
}

// manifestFile is the JSON schema of the store's manifest.
type manifestFile struct {
	Version  int    `json:"version"`
	Datasets []Meta `json:"datasets"`
}

const (
	manifestName    = "manifest.json"
	manifestVersion = 1
	snapSuffix      = ".snap"
	tmpPrefix       = ".tmp-"
	quarantineExt   = ".quarantined"
)

// Open opens (creating if needed) a snapshot store at dir. Leftover
// temp files from interrupted writes are removed. A corrupt or
// version-skewed manifest is quarantined — renamed aside, reported in
// the returned warnings — and the store starts empty rather than
// failing; only an unusable directory is an error.
func Open(dir string) (*Store, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("snapshot: open store: %w", err)
	}
	st := &Store{dir: dir, entries: make(map[string]Meta)}
	var warnings []string

	// Sweep interrupted writes: a temp file that never reached its
	// rename is not part of any state.
	if names, err := os.ReadDir(dir); err == nil {
		for _, de := range names {
			if strings.HasPrefix(de.Name(), tmpPrefix) {
				os.Remove(filepath.Join(dir, de.Name()))
				warnings = append(warnings,
					fmt.Sprintf("removed interrupted partial write %s", de.Name()))
			}
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return st, warnings, nil
	case err != nil:
		return nil, nil, fmt.Errorf("snapshot: read manifest: %w", err)
	}
	var mf manifestFile
	if jsonErr := json.Unmarshal(data, &mf); jsonErr != nil || mf.Version != manifestVersion {
		why := fmt.Sprintf("version %d (want %d)", mf.Version, manifestVersion)
		if jsonErr != nil {
			why = jsonErr.Error()
		}
		q := manifestName + quarantineExt
		os.Rename(filepath.Join(dir, manifestName), filepath.Join(dir, q))
		warnings = append(warnings,
			fmt.Sprintf("quarantined unreadable manifest to %s: %s", q, why))
		return st, warnings, nil
	}
	for _, m := range mf.Datasets {
		if m.ID == "" || !safeID(m.ID) || m.File != m.ID+snapSuffix {
			warnings = append(warnings,
				fmt.Sprintf("dropped manifest entry with unsafe id/file %q/%q", m.ID, m.File))
			continue
		}
		if m.KeyType == "" {
			m.KeyType = KeyTypeInt64
		}
		st.entries[m.ID] = m
	}

	// Sweep orphans: a .snap file no manifest entry references (e.g. a
	// crash between a removal's unlink attempt failing over or an
	// interrupted replace) would otherwise leak disk forever, since
	// nothing ever loads or deletes it.
	if names, err := os.ReadDir(dir); err == nil {
		referenced := make(map[string]bool, len(st.entries))
		for _, m := range st.entries {
			referenced[m.File] = true
		}
		for _, de := range names {
			name := de.Name()
			if !strings.HasSuffix(name, snapSuffix) || referenced[name] {
				continue
			}
			os.Remove(filepath.Join(dir, name))
			warnings = append(warnings,
				fmt.Sprintf("removed orphaned snapshot %s (not in the manifest)", name))
		}
	}
	return st, warnings, nil
}

// safeID reports whether id is usable as a file-name stem: the same
// [A-Za-z0-9._-] alphabet the daemon enforces on the wire, re-checked
// here so the store never trusts its caller with path construction. A
// leading dot is refused outright — it covers "." and "..", and keeps
// snapshot files from masquerading as dotfiles (".foo.snap") or
// colliding with the store's own temp-file prefix.
func safeID(id string) bool {
	if id == "" || len(id) > 255-len(snapSuffix) || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Save is SaveAs for int64 datasets, the historical persist path.
func (st *Store) Save(meta Meta, shards [][]int64) error {
	return SaveAs(st, meta, shards)
}

// SaveAs persists one dataset: its snapshot file (skipped when the
// on-disk generation already matches, so TTL refreshes don't rewrite
// the data) and the manifest. A Save older than the manifest's
// generation is a no-op — a slow background persist can never regress
// a newer state. Meta.KeyType is stamped from K. (A package-level
// function because Go methods cannot take type parameters.)
func SaveAs[K FixedKey](st *Store, meta Meta, shards [][]K) error {
	if !safeID(meta.ID) {
		return fmt.Errorf("snapshot: unsafe dataset id %q", meta.ID)
	}
	meta.KeyType = KeyTypeFor[K]()
	st.mu.Lock()
	defer st.mu.Unlock()
	prev, exists := st.entries[meta.ID]
	if exists && prev.Gen > meta.Gen {
		return nil
	}
	meta.File = meta.ID + snapSuffix
	if exists && prev.Gen == meta.Gen && prev.KeyType == meta.KeyType {
		// Same data already on disk: metadata-only refresh.
		meta.DiskBytes = prev.DiskBytes
	} else {
		// Streamed, not buffered: a near-budget dataset must not double
		// resident memory on its way to disk.
		size, err := st.writeAtomicStream(meta.File, func(w io.Writer) (int64, error) {
			return WriteTo(w, Header{Options: meta.Options}, shards)
		})
		if err != nil {
			return err
		}
		meta.DiskBytes = size
	}
	st.entries[meta.ID] = meta
	return st.writeManifestLocked()
}

// Remove drops a dataset from the manifest and deletes its snapshot
// file. The file is unlinked before the manifest commits: a crash in
// between leaves a manifest entry referencing a missing file, which
// the next startup's Load skips and drops — self-healing — whereas
// the opposite order would orphan the file on disk forever.
// Removing an absent id is a no-op.
func (st *Store) Remove(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	meta, ok := st.entries[id]
	if !ok {
		return nil
	}
	if err := os.Remove(filepath.Join(st.dir, meta.File)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("snapshot: remove %s: %w", meta.File, err)
	}
	delete(st.entries, id)
	return st.writeManifestLocked()
}

// Meta returns the manifest entry for id, if any.
func (st *Store) Meta(id string) (Meta, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.entries[id]
	return m, ok
}

// RefreshMeta updates the metadata (TTL deadline, save stamp) of
// several entries and commits the manifest ONCE — the drain path's
// batched alternative to N gen-matching Saves, each of which would
// rewrite and fsync the manifest individually. An entry that is
// absent or holds a different generation is skipped: metadata must
// never point a manifest entry at data it does not describe.
func (st *Store) RefreshMeta(metas []Meta) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	changed := false
	for _, m := range metas {
		prev, ok := st.entries[m.ID]
		if !ok || prev.Gen != m.Gen {
			continue
		}
		m.File = prev.File
		m.DiskBytes = prev.DiskBytes
		m.KeyType = prev.KeyType
		st.entries[m.ID] = m
		changed = true
	}
	if !changed {
		return nil
	}
	return st.writeManifestLocked()
}

// Load is LoadAs for int64 datasets, the historical restore path.
func (st *Store) Load(id string) (Header, [][]int64, Meta, error) {
	return LoadAs[int64](st, id)
}

// LoadAs reads and decodes one dataset's snapshot through the same
// streaming decoder the daemon's binary uploads use (the file is never
// materialized whole — the data section streams straight into the
// contiguous backing RestoreDataset adopts). A missing file returns an
// fs.ErrNotExist-matching error and drops the manifest entry (it
// referenced nothing). An entry whose manifest key type differs from K
// is refused with ErrKeyType without touching the file — it is the
// reader that is mismatched, not the snapshot. A corrupt, truncated or
// version-skewed file is quarantined — renamed to <file>.quarantined
// so it never poisons another startup — its entry dropped, and the
// typed decode error returned; I/O faults are reported without
// quarantining (the file may be fine).
func LoadAs[K FixedKey](st *Store, id string) (Header, [][]K, Meta, error) {
	st.mu.Lock()
	meta, ok := st.entries[id]
	st.mu.Unlock()
	if !ok {
		return Header{}, nil, Meta{}, fmt.Errorf("snapshot: no manifest entry for %q: %w",
			id, fs.ErrNotExist)
	}
	if want := KeyTypeFor[K](); meta.KeyType != want {
		return Header{}, nil, Meta{}, fmt.Errorf("%w: snapshot %q holds %q keys, reader decodes %q",
			ErrKeyType, id, meta.KeyType, want)
	}
	f, err := os.Open(filepath.Join(st.dir, meta.File))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			st.drop(id)
		}
		return Header{}, nil, Meta{}, fmt.Errorf("snapshot: read %s: %w", meta.File, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Header{}, nil, Meta{}, fmt.Errorf("snapshot: stat %s: %w", meta.File, err)
	}
	var shards [][]K
	dec, err := NewStreamDecoder(bufio.NewReaderSize(f, 1<<16), fi.Size())
	if err == nil {
		shards, err = ReadDataAs[K](dec)
	}
	if err != nil {
		if IsDecodeError(err) {
			st.quarantine(id, meta.File)
			return Header{}, nil, Meta{}, err
		}
		return Header{}, nil, Meta{}, fmt.Errorf("snapshot: read %s: %w", meta.File, err)
	}
	return dec.Header(), shards, meta, nil
}

// drop removes a manifest entry without touching files.
func (st *Store) drop(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[id]; !ok {
		return
	}
	delete(st.entries, id)
	st.writeManifestLocked()
}

// quarantine renames a damaged snapshot aside and drops its entry.
func (st *Store) quarantine(id, file string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	os.Rename(filepath.Join(st.dir, file), filepath.Join(st.dir, file+quarantineExt))
	if _, ok := st.entries[id]; ok {
		delete(st.entries, id)
		st.writeManifestLocked()
	}
}

// Entries returns the manifest's live entries, sorted by id for
// deterministic recovery order.
func (st *Store) Entries() []Meta {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Meta, 0, len(st.entries))
	for _, m := range st.entries {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalDiskBytes sums the live snapshot files' sizes — the stats
// gauge behind /v1/stats.
func (st *Store) TotalDiskBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total int64
	for _, m := range st.entries {
		total += m.DiskBytes
	}
	return total
}

// writeManifestLocked persists the manifest atomically; caller holds
// st.mu.
func (st *Store) writeManifestLocked() error {
	mf := manifestFile{Version: manifestVersion}
	for _, m := range st.entries {
		mf.Datasets = append(mf.Datasets, m)
	}
	sort.Slice(mf.Datasets, func(i, j int) bool { return mf.Datasets[i].ID < mf.Datasets[j].ID })
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: encode manifest: %w", err)
	}
	return st.writeAtomic(manifestName, append(data, '\n'))
}

// writeAtomic writes name via temp file + fsync + rename + directory
// sync, so the file either keeps its old content or carries the new
// one in full.
func (st *Store) writeAtomic(name string, data []byte) error {
	_, err := st.writeAtomicStream(name, func(w io.Writer) (int64, error) {
		n, err := w.Write(data)
		return int64(n), err
	})
	return err
}

// writeAtomicStream is writeAtomic with the content produced by a
// streaming writer; it returns the byte count written.
func (st *Store) writeAtomicStream(name string, write func(io.Writer) (int64, error)) (int64, error) {
	tmp, err := os.CreateTemp(st.dir, tmpPrefix+name+"-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: create temp for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	size, err := write(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: write %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(st.dir, name)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: commit %s: %w", name, err)
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return size, nil
}
