package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode throws adversarial bytes at the snapshot reader:
// it must never panic (no index past the data, no allocation driven
// by an unchecked length field), never return shards alongside an
// error, classify every failure as exactly one typed error, and any
// accepted input must decode into shards consistent with its header —
// a corrupted/truncated/bit-flipped snapshot never resurrects as a
// dataset.
func FuzzSnapshotDecode(f *testing.F) {
	for _, shards := range testShapes {
		f.Add(Encode(Header{Options: "fp"}, shards))
	}
	valid := Encode(Header{Options: "seed"}, [][]int64{{3, 1, 4, 1, 5}, {9, 2, 6}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // truncated CRC
	f.Add(append([]byte(nil), valid[4:]...)) // sheared magic
	f.Add([]byte("PSELSNAP"))                // magic only
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[20] ^= 0x08
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, shards, err := Decode(data)
		if err != nil {
			if shards != nil {
				t.Fatalf("error %v returned alongside %d shards", err, len(shards))
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrKeyType) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: header and shards must agree, and the encoding must
		// be canonical (re-encoding reproduces the input bytes exactly,
		// so no two distinct files decode to the same dataset state).
		if h.Procs != len(shards) {
			t.Fatalf("header claims %d procs, decoded %d shards", h.Procs, len(shards))
		}
		var n int64
		for _, sh := range shards {
			n += int64(len(sh))
		}
		if n != h.N {
			t.Fatalf("header claims %d keys, decoded %d", h.N, n)
		}
		again := Encode(Header{Options: h.Options}, shards)
		if len(again) != len(data) {
			t.Fatalf("accepted %d bytes but canonical encoding is %d", len(data), len(again))
		}
		for i := range again {
			if again[i] != data[i] {
				t.Fatalf("accepted non-canonical encoding (first divergence at byte %d)", i)
			}
		}
	})
}

// FuzzFrameDecode throws adversarial bytes at the result-frame reader:
// like FuzzSnapshotDecode it must never panic, never return entries
// alongside an error, classify every failure as a typed error, and
// accept only canonical encodings — a corrupted or truncated frame
// never resurrects as query results.
func FuzzFrameDecode(f *testing.F) {
	for _, entries := range testFrames {
		f.Add(EncodeFrame(entries))
	}
	valid := EncodeFrame([]FrameEntry{
		{Meta: []byte(`{"report":{"sim_seconds":0.5}}`), Values: []int64{3, 1, 4, 1, 5}},
		{Meta: []byte(`{"error":{"code":"no_data","message":"m"}}`)},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // truncated CRC
	f.Add(append([]byte(nil), valid[4:]...)) // sheared magic
	f.Add([]byte("PSELFRME"))                // magic only
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[17] ^= 0x20
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeFrame(data)
		if err != nil {
			if entries != nil {
				t.Fatalf("error %v returned alongside %d entries", err, len(entries))
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: the encoding must be canonical, so no two distinct
		// frames decode to the same results.
		if again := EncodeFrame(entries); !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical frame (%d bytes, canonical %d)", len(data), len(again))
		}
	})
}
