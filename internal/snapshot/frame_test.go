package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"
)

// testFrames are frame shapes covering the wire's edge cases: empty
// frames, empty metadata, empty values, multi-entry batches, extreme
// keys.
var testFrames = [][]FrameEntry{
	{},
	{{Meta: []byte(`{"report":{}}`), Values: []int64{3, 1, 4}}},
	{{Meta: nil, Values: nil}},
	{{Meta: []byte(`{}`), Values: []int64{}}},
	{
		{Meta: []byte(`{"value":7,"report":{"sim_seconds":0.25}}`)},
		{Meta: []byte(`{"error":{"code":"rank_range","message":"x"}}`)},
		{Meta: []byte(`{}`), Values: []int64{-9223372036854775808, 9223372036854775807, 0}},
	},
}

// TestFrameRoundTrip pins that DecodeFrame inverts EncodeFrame exactly
// and that the encoding is canonical.
func TestFrameRoundTrip(t *testing.T) {
	for fi, entries := range testFrames {
		t.Run(fmt.Sprintf("frame%d", fi), func(t *testing.T) {
			data := EncodeFrame(entries)
			if got := FrameSize(entries); got != int64(len(data)) {
				t.Errorf("FrameSize %d, encoded %d bytes", got, len(data))
			}
			got, err := DecodeFrame(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(entries) {
				t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
			}
			for i := range entries {
				if !bytes.Equal(got[i].Meta, entries[i].Meta) {
					t.Errorf("entry %d meta %q, want %q", i, got[i].Meta, entries[i].Meta)
				}
				if !slices.Equal(got[i].Values, entries[i].Values) {
					t.Errorf("entry %d values %v, want %v", i, got[i].Values, entries[i].Values)
				}
			}
			if again := EncodeFrame(got); !bytes.Equal(again, data) {
				t.Error("re-encoding the decoded entries changed the bytes")
			}
		})
	}
}

// TestFrameRejectsCorruption pins the frame's corruption guarantees:
// every single-byte corruption and every truncation fails with a typed
// error and no entries.
func TestFrameRejectsCorruption(t *testing.T) {
	data := EncodeFrame([]FrameEntry{
		{Meta: []byte(`{"report":{}}`), Values: []int64{3, 1, 4, 1, 5}},
		{Meta: []byte(`{"value":9}`)},
	})
	for off := range data {
		mut := slices.Clone(data)
		mut[off] ^= 0xff
		entries, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("flip at offset %d of %d decoded successfully", off, len(data))
		}
		if entries != nil {
			t.Fatalf("flip at offset %d returned entries alongside error %v", off, err)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if entries, err := DecodeFrame(data[:cut]); err == nil || entries != nil {
			t.Fatalf("truncation to %d of %d bytes decoded (err %v)", cut, len(data), err)
		}
	}
	if _, err := DecodeFrame(append(slices.Clone(data), 7)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: %v, want ErrCorrupt", err)
	}
	if _, err := DecodeFrame([]byte("PSELSNAP....")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("snapshot magic on a frame: %v, want ErrBadMagic", err)
	}
}

// TestEncodedSize pins EncodedSize against the bytes WriteTo actually
// produces, across the shared shape catalogue — the client's streaming
// upload declares this as its Content-Length.
func TestEncodedSize(t *testing.T) {
	for si, shards := range testShapes {
		h := Header{Options: strings.Repeat("o", si)}
		if got, want := EncodedSize(h, shards), int64(len(Encode(h, shards))); got != want {
			t.Errorf("shape %d: EncodedSize %d, encoded %d bytes", si, got, want)
		}
	}
}

// TestStreamDecoderMatchesDecode pins that the streaming decoder and
// the in-memory Decode agree byte-for-byte on the shapes catalogue:
// one decode path, two entry points.
func TestStreamDecoderMatchesDecode(t *testing.T) {
	for si, shards := range testShapes {
		data := Encode(Header{Options: "fp"}, shards)
		wantH, want, err := Decode(data)
		if err != nil {
			t.Fatalf("shape %d: Decode: %v", si, err)
		}
		// A budget far above the input must not change the verdict (the
		// upload path passes the transport's body limit, not the size).
		dec, err := NewStreamDecoder(bytes.NewReader(data), 1<<30)
		if err != nil {
			t.Fatalf("shape %d: NewStreamDecoder: %v", si, err)
		}
		if dec.Header() != wantH {
			t.Errorf("shape %d: header %+v, want %+v", si, dec.Header(), wantH)
		}
		got, err := dec.ReadData()
		if err != nil {
			t.Fatalf("shape %d: ReadData: %v", si, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shape %d: %d shards, want %d", si, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Errorf("shape %d shard %d: %v, want %v", si, i, got[i], want[i])
			}
		}
	}
}

// TestStreamDecoderBudget pins that a dataset larger than the byte
// bound is refused at the header, before any allocation — the serving
// layer's body limit is enforced even when the transport lies about
// Content-Length.
func TestStreamDecoderBudget(t *testing.T) {
	data := Encode(Header{}, [][]int64{{1, 2, 3, 4, 5, 6, 7, 8}, {9, 10}})
	if _, err := NewStreamDecoder(bytes.NewReader(data), 40); !errors.Is(err, ErrCorrupt) {
		t.Errorf("over-budget header: %v, want ErrCorrupt", err)
	}
	if _, err := NewStreamDecoder(bytes.NewReader(data), 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero budget: %v, want ErrBadMagic", err)
	}
}
