package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The result frame: the bulk-results half of the daemon's binary wire
// protocol (the upload half is the snapshot format itself). A frame
// carries one or more query results, each split into a small opaque
// metadata blob (JSON at the serving layer — scalar values, reports,
// per-item errors, whose float fields survive JSON bit-identically)
// and a flat int64 values section holding the heavy part in eight
// bytes a key. The framing reuses the snapshot discipline: magic,
// version, little-endian length prefixes, CRC-32C per section,
// trailing garbage fatal, typed errors (ErrBadMagic / ErrVersion /
// ErrCorrupt), and DecodeFrame never panics and never returns entries
// from corrupted input.
//
//	magic    8 bytes "PSELFRME"
//	version  uint32 (currently FrameVersion)
//	count    uint32 entry count
//	entries  count times:
//	  meta    uint32 length, payload, uint32 CRC-32C of the payload
//	  values  uint64 length (8 bytes a key), keys little-endian, CRC
const (
	frameMagic = "PSELFRME"
	// FrameVersion is the current frame format version.
	FrameVersion = 1

	// maxFrameEntries bounds the entry count a frame may claim — far
	// above any real batch, far below an allocation risk.
	maxFrameEntries = 1 << 16
	// maxFrameMetaLen bounds one entry's metadata blob.
	maxFrameMetaLen = 1 << 20
)

// FrameEntry is one result inside a frame: the opaque metadata bytes
// and the values they describe. An empty Values section is encoded
// (and decoded) as length zero; whether "no values" means null or []
// is the metadata's business, so the JSON layer's distinction survives
// the binary wire exactly.
type FrameEntry struct {
	Meta   []byte
	Values []int64
}

// FrameSize is the exact byte length WriteFrameTo will produce.
func FrameSize(entries []FrameEntry) int64 {
	size := int64(len(frameMagic)) + 4 + 4 // magic + version + count
	for _, e := range entries {
		size += 4 + int64(len(e.Meta)) + 4     // meta section
		size += 8 + 8*int64(len(e.Values)) + 4 // values section
	}
	return size
}

// WriteFrameTo streams one frame into w, returning the bytes written.
// Values CRCs are computed incrementally over fixed-size chunks, so a
// large result set is never materialized a second time on its way out.
func WriteFrameTo(w io.Writer, entries []FrameEntry) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	bw.WriteString(frameMagic)
	writeU32(bw, FrameVersion)
	writeU32(bw, uint32(len(entries)))
	const chunkKeys = 8192
	buf := make([]byte, 0, 8*chunkKeys)
	for _, e := range entries {
		writeU32(bw, uint32(len(e.Meta)))
		bw.Write(e.Meta)
		writeU32(bw, crc32.Checksum(e.Meta, castagnoli))

		writeU64(bw, uint64(8*len(e.Values)))
		sum := uint32(0)
		for off := 0; off < len(e.Values); off += chunkKeys {
			end := min(off+chunkKeys, len(e.Values))
			buf = buf[:0]
			for _, k := range e.Values[off:end] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
			}
			sum = crc32.Update(sum, castagnoli, buf)
			bw.Write(buf)
		}
		writeU32(bw, sum)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// EncodeFrame is WriteFrameTo into a fresh byte slice.
func EncodeFrame(entries []FrameEntry) []byte {
	var buf bytes.Buffer
	WriteFrameTo(&buf, entries) // a bytes.Buffer write cannot fail
	return buf.Bytes()
}

// DecodeFrame parses one frame. Like Decode it never panics, bounds
// every claimed length against the bytes actually present before
// allocating, verifies every CRC, rejects trailing garbage, and on any
// failure returns a typed error (ErrBadMagic, ErrVersion, ErrCorrupt)
// and no entries.
func DecodeFrame(data []byte) ([]FrameEntry, error) {
	r := &reader{data: data}
	mg, err := r.take(len(frameMagic))
	if err != nil || string(mg) != frameMagic {
		return nil, fmt.Errorf("%w (%d bytes, not a parsel result frame)", ErrBadMagic, len(data))
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != FrameVersion {
		return nil, fmt.Errorf("%w: frame version %d, reader version %d",
			ErrVersion, ver, FrameVersion)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > maxFrameEntries {
		return nil, fmt.Errorf("%w: frame claims %d entries, limit %d",
			ErrCorrupt, count, maxFrameEntries)
	}
	entries := make([]FrameEntry, 0, min(int(count), len(data)/8))
	for i := uint32(0); i < count; i++ {
		meta, err := r.section("meta", false, maxFrameMetaLen, -1)
		if err != nil {
			return nil, err
		}
		body, err := r.section("values", true, int64(len(data)), -1)
		if err != nil {
			return nil, err
		}
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("%w: values section of %d bytes is not a whole number of keys",
				ErrCorrupt, len(body))
		}
		var vals []int64
		if len(body) > 0 {
			vals = make([]int64, len(body)/8)
			for k := range vals {
				vals[k] = int64(binary.LittleEndian.Uint64(body[8*k:]))
			}
		}
		entries = append(entries, FrameEntry{Meta: meta, Values: vals})
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last entry",
			ErrCorrupt, len(data)-r.off)
	}
	return entries, nil
}
