// Package snapshot is the durable on-disk form of the daemon's
// resident datasets: a versioned binary snapshot format for one
// dataset's per-processor shards (snapshot.go) and an atomic
// crash-safe store of snapshot files with a manifest of the live set
// (store.go).
//
// # File format
//
// A snapshot file is a sequence of CRC-checksummed sections, every
// multi-byte integer little-endian:
//
//	magic    8 bytes "PSELSNAP"
//	version  uint32 (currently 1)
//	header   uint32 length, payload, uint32 CRC-32C of the payload
//	extents  uint32 length, one uint64 shard length per processor, CRC
//	data     uint64 length, the keys of every shard concatenated, CRC
//
// The header payload carries the key type (length-prefixed string, so
// a future float64 daemon cannot silently misread an int64 snapshot),
// a fingerprint of the pool Options the daemon ran (informational —
// restoring under different Options still answers queries correctly,
// it just changes which algorithm serves them), the processor count
// and the population size. The extents section pins how the flat data
// section re-shards into per-processor slices, so a restored dataset
// is bit-identical to the resident original: same shards, same machine
// shape, no re-sharding.
//
// Decode never panics and never returns data from a corrupted,
// truncated or bit-flipped file: every section is length-bounded
// against the bytes actually present before anything is allocated,
// CRCs are verified per section, and trailing garbage is an error.
// Failures are typed — ErrBadMagic, ErrVersion, ErrKeyType, ErrCorrupt
// — so callers can distinguish "not a snapshot" from "damaged
// snapshot" from "future format".
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Typed decode failures. Every Decode error matches exactly one of
// these under errors.Is.
var (
	// ErrBadMagic: the bytes are not a parsel snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic (not a parsel snapshot)")
	// ErrVersion: the snapshot was written by an unknown (newer or
	// retired) format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrKeyType: the snapshot holds keys of a different type than the
	// reader decodes.
	ErrKeyType = errors.New("snapshot: key type mismatch")
	// ErrCorrupt: the snapshot is truncated, oversized, or fails a
	// structural or CRC check.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated snapshot")
)

const (
	magic = "PSELSNAP"
	// Version is the current format version Encode writes.
	Version = 1
	// KeyTypeInt64 is the only key type this package currently
	// encodes; the header field exists so future key types extend the
	// format instead of aliasing it.
	KeyTypeInt64 = "int64"

	// maxHeaderLen bounds the header section so a corrupt length field
	// cannot drive a huge allocation before the CRC is checked.
	maxHeaderLen = 1 << 16
	// maxProcs bounds the processor count a decoded header may claim;
	// far above any real machine shape, far below an allocation risk.
	maxProcs = 1 << 20
)

// castagnoli is the CRC-32C table shared by every section checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header describes one snapshot independent of its key data.
type Header struct {
	// KeyType names the element type of the shards (KeyTypeInt64).
	KeyType string
	// Options fingerprints the pool configuration the snapshot was
	// taken under (informational; see the package comment).
	Options string
	// Procs is the machine shape: one shard per simulated processor.
	Procs int
	// N is the population size across all shards.
	N int64
}

// WriteTo streams one dataset's resident shards into w as a snapshot,
// returning the bytes written. The data section's CRC is computed
// incrementally over fixed-size chunks, so a near-budget dataset is
// never materialized a second time in memory on its way to disk. The
// caller's slices are only read. Header.KeyType, Procs and N are
// derived from the arguments; only Options is taken from h.
func WriteTo(w io.Writer, h Header, shards [][]int64) (int64, error) {
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}

	hdr := make([]byte, 0, 64)
	hdr = appendString(hdr, KeyTypeInt64)
	hdr = appendString(hdr, h.Options)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(shards)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(n))

	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	bw.WriteString(magic)
	writeU32(bw, Version)

	writeU32(bw, uint32(len(hdr)))
	bw.Write(hdr)
	writeU32(bw, crc32.Checksum(hdr, castagnoli))

	ext := make([]byte, 0, 8*len(shards))
	for _, sh := range shards {
		ext = binary.LittleEndian.AppendUint64(ext, uint64(len(sh)))
	}
	writeU32(bw, uint32(len(ext)))
	bw.Write(ext)
	writeU32(bw, crc32.Checksum(ext, castagnoli))

	writeU64(bw, uint64(8*n))
	const chunkKeys = 8192
	buf := make([]byte, 0, 8*chunkKeys)
	sum := uint32(0)
	for _, sh := range shards {
		for off := 0; off < len(sh); off += chunkKeys {
			end := min(off+chunkKeys, len(sh))
			buf = buf[:0]
			for _, k := range sh[off:end] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
			}
			sum = crc32.Update(sum, castagnoli, buf)
			bw.Write(buf)
		}
	}
	writeU32(bw, sum)
	// bufio errors are sticky; Flush surfaces the first one.
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Encode is WriteTo into a fresh byte slice, for tests and small
// snapshots.
func Encode(h Header, shards [][]int64) []byte {
	var buf bytes.Buffer
	WriteTo(&buf, h, shards) // a bytes.Buffer write cannot fail
	return buf.Bytes()
}

// countWriter counts the bytes reaching the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

// appendString appends a uint16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// reader walks the snapshot bytes with bounds-checked reads; every
// overrun is ErrCorrupt, never a panic.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrCorrupt, n, r.off, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// section reads one length-prefixed payload and verifies its trailing
// CRC. maxLen bounds the claimed length before allocation-free
// slicing; wantLen, when >= 0, additionally pins the exact length.
func (r *reader) section(name string, maxLen, wantLen int64) ([]byte, error) {
	var claimed int64
	if name == "data" {
		n, err := r.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(maxLen) {
			return nil, fmt.Errorf("%w: %s section claims %d bytes", ErrCorrupt, name, n)
		}
		claimed = int64(n)
	} else {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		claimed = int64(n)
	}
	if claimed > maxLen || (wantLen >= 0 && claimed != wantLen) {
		return nil, fmt.Errorf("%w: %s section claims %d bytes (limit %d, want %d)",
			ErrCorrupt, name, claimed, maxLen, wantLen)
	}
	payload, err := r.take(int(claimed))
	if err != nil {
		return nil, err
	}
	sum, err := r.u32()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: %s section CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, name, sum, got)
	}
	return payload, nil
}

// Decode parses one snapshot. On success the returned shards are
// freshly allocated out of a single contiguous backing array — exactly
// the layout parsel.Pool.RestoreDataset adopts without copying — and
// the header describes them (Procs == len(shards), N == total
// population). On any corruption the error matches one of the typed
// failures and no shards are returned.
func Decode(data []byte) (Header, [][]int64, error) {
	r := &reader{data: data}
	mg, err := r.take(len(magic))
	if err != nil || string(mg) != magic {
		return Header{}, nil, fmt.Errorf("%w (%d bytes)", ErrBadMagic, len(data))
	}
	ver, err := r.u32()
	if err != nil {
		return Header{}, nil, err
	}
	if ver != Version {
		return Header{}, nil, fmt.Errorf("%w: file version %d, reader version %d",
			ErrVersion, ver, Version)
	}

	hdrPayload, err := r.section("header", maxHeaderLen, -1)
	if err != nil {
		return Header{}, nil, err
	}
	h, err := decodeHeader(hdrPayload)
	if err != nil {
		return Header{}, nil, err
	}
	if h.KeyType != KeyTypeInt64 {
		return Header{}, nil, fmt.Errorf("%w: snapshot holds %q keys, reader decodes %q",
			ErrKeyType, h.KeyType, KeyTypeInt64)
	}
	if h.Procs < 1 || h.Procs > maxProcs {
		return Header{}, nil, fmt.Errorf("%w: header claims %d processors", ErrCorrupt, h.Procs)
	}
	if h.N < 0 || h.N > int64(len(data))/8 {
		return Header{}, nil, fmt.Errorf("%w: header claims %d keys in a %d-byte file",
			ErrCorrupt, h.N, len(data))
	}

	ext, err := r.section("extents", int64(len(data)), int64(8*h.Procs))
	if err != nil {
		return Header{}, nil, err
	}
	lens := make([]int64, h.Procs)
	var total int64
	for i := range lens {
		l := binary.LittleEndian.Uint64(ext[8*i:])
		if l > uint64(h.N) {
			return Header{}, nil, fmt.Errorf("%w: shard %d claims %d keys of %d total",
				ErrCorrupt, i, l, h.N)
		}
		lens[i] = int64(l)
		total += lens[i]
	}
	if total != h.N {
		return Header{}, nil, fmt.Errorf("%w: extents sum to %d keys, header claims %d",
			ErrCorrupt, total, h.N)
	}

	body, err := r.section("data", int64(len(data)), 8*h.N)
	if err != nil {
		return Header{}, nil, err
	}
	if r.off != len(data) {
		return Header{}, nil, fmt.Errorf("%w: %d trailing bytes after the data section",
			ErrCorrupt, len(data)-r.off)
	}

	backing := make([]int64, h.N)
	for i := range backing {
		backing[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	shards := make([][]int64, h.Procs)
	off := int64(0)
	for i, l := range lens {
		end := off + l
		shards[i] = backing[off:end:end]
		off = end
	}
	return h, shards, nil
}

// decodeHeader parses the CRC-verified header payload.
func decodeHeader(payload []byte) (Header, error) {
	r := &reader{data: payload}
	str := func(what string) (string, error) {
		b, err := r.take(2)
		if err != nil {
			return "", fmt.Errorf("%w: header %s length truncated", ErrCorrupt, what)
		}
		s, err := r.take(int(binary.LittleEndian.Uint16(b)))
		if err != nil {
			return "", fmt.Errorf("%w: header %s truncated", ErrCorrupt, what)
		}
		return string(s), nil
	}
	var h Header
	var err error
	if h.KeyType, err = str("key type"); err != nil {
		return Header{}, err
	}
	if h.Options, err = str("options"); err != nil {
		return Header{}, err
	}
	procs, err := r.u32()
	if err != nil {
		return Header{}, fmt.Errorf("%w: header processor count truncated", ErrCorrupt)
	}
	n, err := r.u64()
	if err != nil {
		return Header{}, fmt.Errorf("%w: header population size truncated", ErrCorrupt)
	}
	if r.off != len(payload) {
		return Header{}, fmt.Errorf("%w: %d trailing header bytes", ErrCorrupt, len(payload)-r.off)
	}
	h.Procs = int(procs)
	h.N = int64(n)
	return h, nil
}
