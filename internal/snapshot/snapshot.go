// Package snapshot is the durable on-disk form of the daemon's
// resident datasets: a versioned binary snapshot format for one
// dataset's per-processor shards (snapshot.go) and an atomic
// crash-safe store of snapshot files with a manifest of the live set
// (store.go).
//
// # File format
//
// A snapshot file is a sequence of CRC-checksummed sections, every
// multi-byte integer little-endian:
//
//	magic    8 bytes "PSELSNAP"
//	version  uint32 (currently 1)
//	header   uint32 length, payload, uint32 CRC-32C of the payload
//	extents  uint32 length, one uint64 shard length per processor, CRC
//	data     uint64 length, the keys of every shard concatenated, CRC
//
// The header payload carries the key type (length-prefixed string, so
// a future float64 daemon cannot silently misread an int64 snapshot),
// a fingerprint of the pool Options the daemon ran (informational —
// restoring under different Options still answers queries correctly,
// it just changes which algorithm serves them), the processor count
// and the population size. The extents section pins how the flat data
// section re-shards into per-processor slices, so a restored dataset
// is bit-identical to the resident original: same shards, same machine
// shape, no re-sharding.
//
// Decode never panics and never returns data from a corrupted,
// truncated or bit-flipped file: every section is length-bounded
// against the bytes actually present before anything is allocated,
// CRCs are verified per section, and trailing garbage is an error.
// Failures are typed — ErrBadMagic, ErrVersion, ErrKeyType, ErrCorrupt
// — so callers can distinguish "not a snapshot" from "damaged
// snapshot" from "future format".
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Typed decode failures. Every Decode error matches exactly one of
// these under errors.Is.
var (
	// ErrBadMagic: the bytes are not a parsel snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic (not a parsel snapshot)")
	// ErrVersion: the snapshot was written by an unknown (newer or
	// retired) format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrKeyType: the snapshot holds keys of a different type than the
	// reader decodes.
	ErrKeyType = errors.New("snapshot: key type mismatch")
	// ErrCorrupt: the snapshot is truncated, oversized, or fails a
	// structural or CRC check.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated snapshot")
)

const (
	magic = "PSELSNAP"
	// Version is the current format version Encode writes.
	Version = 1
	// KeyTypeInt64 and KeyTypeFloat64 are the fixed-width key types
	// this package encodes; both use the same 8-byte flat data section
	// (float64 keys are stored as their IEEE-754 bit patterns), so the
	// header's key-type field is what keeps a float64 daemon from
	// silently misreading an int64 snapshot and vice versa.
	KeyTypeInt64   = "int64"
	KeyTypeFloat64 = "float64"
	// KeyTypeString names the daemon's variable-width key kind. It is
	// never encoded — string datasets are serve-only — and exists so
	// refusals can name the kind in the ErrKeyType they carry.
	KeyTypeString = "string"

	// maxHeaderLen bounds the header section so a corrupt length field
	// cannot drive a huge allocation before the CRC is checked.
	maxHeaderLen = 1 << 16
	// maxProcs bounds the processor count a decoded header may claim;
	// far above any real machine shape, far below an allocation risk.
	maxProcs = 1 << 20
)

// castagnoli is the CRC-32C table shared by every section checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FixedKey is the set of key types with a fixed 8-byte encoding — the
// kinds the snapshot format can hold. Strings are deliberately absent:
// string datasets are serve-only.
type FixedKey interface {
	int64 | float64
}

// KeyTypeFor returns the header key-type name for K.
func KeyTypeFor[K FixedKey]() string {
	var z K
	if _, ok := any(z).(float64); ok {
		return KeyTypeFloat64
	}
	return KeyTypeInt64
}

// appendKeyBits appends the 8-byte little-endian encodings of keys:
// int64 as its two's-complement bits, float64 as its IEEE-754 bits.
func appendKeyBits[K FixedKey](buf []byte, keys []K) []byte {
	switch ks := any(keys).(type) {
	case []int64:
		for _, k := range ks {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		}
	case []float64:
		for _, k := range ks {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(k))
		}
	}
	return buf
}

// decodeKeyBits fills dst from len(dst) consecutive 8-byte encodings in
// src, the inverse of appendKeyBits.
func decodeKeyBits[K FixedKey](dst []K, src []byte) {
	switch ds := any(dst).(type) {
	case []int64:
		for i := range ds {
			ds[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case []float64:
		for i := range ds {
			ds[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	}
}

// Header describes one snapshot independent of its key data.
type Header struct {
	// KeyType names the element type of the shards (KeyTypeInt64 or
	// KeyTypeFloat64).
	KeyType string
	// Options fingerprints the pool configuration the snapshot was
	// taken under (informational; see the package comment).
	Options string
	// Procs is the machine shape: one shard per simulated processor.
	Procs int
	// N is the population size across all shards.
	N int64
}

// WriteTo streams one dataset's resident shards into w as a snapshot,
// returning the bytes written. The data section's CRC is computed
// incrementally over fixed-size chunks, so a near-budget dataset is
// never materialized a second time in memory on its way to disk. The
// caller's slices are only read. Header.KeyType, Procs and N are
// derived from the arguments (the key type from K); only Options is
// taken from h.
func WriteTo[K FixedKey](w io.Writer, h Header, shards [][]K) (int64, error) {
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}

	hdr := make([]byte, 0, 64)
	hdr = appendString(hdr, KeyTypeFor[K]())
	hdr = appendString(hdr, h.Options)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(shards)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(n))

	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	bw.WriteString(magic)
	writeU32(bw, Version)

	writeU32(bw, uint32(len(hdr)))
	bw.Write(hdr)
	writeU32(bw, crc32.Checksum(hdr, castagnoli))

	ext := make([]byte, 0, 8*len(shards))
	for _, sh := range shards {
		ext = binary.LittleEndian.AppendUint64(ext, uint64(len(sh)))
	}
	writeU32(bw, uint32(len(ext)))
	bw.Write(ext)
	writeU32(bw, crc32.Checksum(ext, castagnoli))

	writeU64(bw, uint64(8*n))
	const chunkKeys = 8192
	buf := make([]byte, 0, 8*chunkKeys)
	sum := uint32(0)
	for _, sh := range shards {
		for off := 0; off < len(sh); off += chunkKeys {
			end := min(off+chunkKeys, len(sh))
			buf = appendKeyBits(buf[:0], sh[off:end])
			sum = crc32.Update(sum, castagnoli, buf)
			bw.Write(buf)
		}
	}
	writeU32(bw, sum)
	// bufio errors are sticky; Flush surfaces the first one.
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Encode is WriteTo into a fresh byte slice, for tests and small
// snapshots.
func Encode[K FixedKey](h Header, shards [][]K) []byte {
	var buf bytes.Buffer
	WriteTo(&buf, h, shards) // a bytes.Buffer write cannot fail
	return buf.Bytes()
}

// EncodedSize is the exact byte length WriteTo will produce for the
// same arguments — the Content-Length of a streaming upload, known
// before a byte is encoded.
func EncodedSize[K FixedKey](h Header, shards [][]K) int64 {
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	hdr := int64(2+len(KeyTypeFor[K]())) + int64(2+len(h.Options)) + 4 + 8
	const sectionOverhead = 4 + 4  // uint32 length + uint32 CRC
	return int64(len(magic)) + 4 + // magic + version
		sectionOverhead + hdr + // header section
		sectionOverhead + 8*int64(len(shards)) + // extents section
		8 + 8*n + 4 // data section: uint64 length + keys + CRC
}

// countWriter counts the bytes reaching the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

// appendString appends a uint16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// reader walks the snapshot bytes with bounds-checked reads; every
// overrun is ErrCorrupt, never a panic.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrCorrupt, n, r.off, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// section reads one length-prefixed payload and verifies its trailing
// CRC. wide selects a uint64 length prefix (the data/values sections)
// over the uint32 one. maxLen bounds the claimed length before
// allocation-free slicing; wantLen, when >= 0, additionally pins the
// exact length.
func (r *reader) section(name string, wide bool, maxLen, wantLen int64) ([]byte, error) {
	var claimed int64
	if wide {
		n, err := r.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(maxLen) {
			return nil, fmt.Errorf("%w: %s section claims %d bytes", ErrCorrupt, name, n)
		}
		claimed = int64(n)
	} else {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		claimed = int64(n)
	}
	if claimed > maxLen || (wantLen >= 0 && claimed != wantLen) {
		return nil, fmt.Errorf("%w: %s section claims %d bytes (limit %d, want %d)",
			ErrCorrupt, name, claimed, maxLen, wantLen)
	}
	payload, err := r.take(int(claimed))
	if err != nil {
		return nil, err
	}
	sum, err := r.u32()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: %s section CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, name, sum, got)
	}
	return payload, nil
}

// streamReader feeds StreamDecoder with budgeted, bounds-checked reads:
// every claim is charged against the remaining byte budget before
// anything is read or allocated, every truncation is ErrCorrupt, and a
// genuine I/O failure of the underlying reader (a network fault, an
// http.MaxBytesReader tripping) propagates unmasked so transport-aware
// callers can tell it apart from corruption.
type streamReader struct {
	r       io.Reader
	budget  int64
	scratch [8]byte
}

func (sr *streamReader) read(what string, buf []byte) error {
	if int64(len(buf)) > sr.budget {
		return fmt.Errorf("%w: %s needs %d bytes beyond the byte bound",
			ErrCorrupt, what, len(buf))
	}
	n, err := io.ReadFull(sr.r, buf)
	sr.budget -= int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: %s truncated", ErrCorrupt, what)
		}
		return fmt.Errorf("snapshot: read %s: %w", what, err)
	}
	return nil
}

func (sr *streamReader) u32(what string) (uint32, error) {
	if err := sr.read(what, sr.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(sr.scratch[:4]), nil
}

func (sr *streamReader) u64(what string) (uint64, error) {
	if err := sr.read(what, sr.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(sr.scratch[:8]), nil
}

// StreamDecoder decodes the snapshot format incrementally from a
// reader. Construction consumes and validates the prologue — magic,
// version, the CRC-checked header section — so a serving layer can
// admit an upload against its resident budget (Header.N keys are
// coming) before ReadData streams the keys into place; nothing ever
// materializes the whole input. Decode and the store's Load run on this
// same decoder, so a restored snapshot and a streamed binary upload
// share one decode path and one set of corruption guarantees.
//
// maxBytes bounds every length claim and allocation. Pass the source's
// true size when known (a file, a byte slice), or the transport's body
// limit for a network stream.
type StreamDecoder struct {
	sr  streamReader
	max int64
	h   Header
}

// NewStreamDecoder reads the prologue and returns a decoder ready for
// ReadData. Failures are the same typed errors Decode returns.
func NewStreamDecoder(r io.Reader, maxBytes int64) (*StreamDecoder, error) {
	d := &StreamDecoder{sr: streamReader{r: r, budget: maxBytes}, max: maxBytes}
	var mg [len(magic)]byte
	if int64(len(mg)) > d.sr.budget {
		return nil, fmt.Errorf("%w (%d-byte bound)", ErrBadMagic, maxBytes)
	}
	n, err := io.ReadFull(d.sr.r, mg[:])
	d.sr.budget -= int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w (truncated after %d bytes)", ErrBadMagic, n)
		}
		return nil, fmt.Errorf("snapshot: read magic: %w", err)
	}
	if string(mg[:]) != magic {
		return nil, ErrBadMagic
	}
	ver, err := d.sr.u32("version")
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, reader version %d", ErrVersion, ver, Version)
	}
	payload, err := d.section32("header", maxHeaderLen, -1)
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	if h.KeyType != KeyTypeInt64 && h.KeyType != KeyTypeFloat64 {
		return nil, fmt.Errorf("%w: snapshot holds %q keys, reader decodes %q or %q",
			ErrKeyType, h.KeyType, KeyTypeInt64, KeyTypeFloat64)
	}
	if h.Procs < 1 || h.Procs > maxProcs {
		return nil, fmt.Errorf("%w: header claims %d processors", ErrCorrupt, h.Procs)
	}
	if h.N < 0 || h.N > maxBytes/8 {
		return nil, fmt.Errorf("%w: header claims %d keys within a %d-byte bound",
			ErrCorrupt, h.N, maxBytes)
	}
	d.h = h
	return d, nil
}

// Header describes the dataset the stream carries: validated key type,
// Options fingerprint, machine shape and population size.
func (d *StreamDecoder) Header() Header { return d.h }

// section32 reads one uint32-length-prefixed section and verifies its
// CRC; claims beyond maxLen, wantLen (when >= 0) or the remaining
// budget never allocate.
func (d *StreamDecoder) section32(name string, maxLen, wantLen int64) ([]byte, error) {
	n, err := d.sr.u32(name + " length")
	if err != nil {
		return nil, err
	}
	claimed := int64(n)
	if claimed > maxLen || claimed > d.sr.budget || (wantLen >= 0 && claimed != wantLen) {
		return nil, fmt.Errorf("%w: %s section claims %d bytes (limit %d, want %d)",
			ErrCorrupt, name, claimed, min(maxLen, d.sr.budget), wantLen)
	}
	payload := make([]byte, claimed)
	if err := d.sr.read(name+" payload", payload); err != nil {
		return nil, err
	}
	sum, err := d.sr.u32(name + " CRC")
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: %s section CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, name, sum, got)
	}
	return payload, nil
}

// ReadData is ReadDataAs for int64 snapshots, the historical decode
// path; a stream holding another key type is refused with ErrKeyType.
func (d *StreamDecoder) ReadData() ([][]int64, error) {
	return ReadDataAs[int64](d)
}

// ReadDataAs streams the extents and data sections, verifying the
// per-section CRCs incrementally (fixed-size chunks, never a second
// copy of the population) and requiring a clean end of stream. The
// stream's key type must match K or the read is refused with
// ErrKeyType before anything is allocated. The returned shards are
// sliced out of a single contiguous backing array — exactly the layout
// parsel.Pool.RestoreDataset adopts without copying. Call it once,
// after NewStreamDecoder. (A package-level function because Go methods
// cannot take type parameters.)
func ReadDataAs[K FixedKey](d *StreamDecoder) ([][]K, error) {
	if want := KeyTypeFor[K](); d.h.KeyType != want {
		return nil, fmt.Errorf("%w: snapshot holds %q keys, reader decodes %q",
			ErrKeyType, d.h.KeyType, want)
	}
	ext, err := d.section32("extents", 8*int64(maxProcs), int64(8*d.h.Procs))
	if err != nil {
		return nil, err
	}
	lens := make([]int64, d.h.Procs)
	var total int64
	for i := range lens {
		l := binary.LittleEndian.Uint64(ext[8*i:])
		if l > uint64(d.h.N) {
			return nil, fmt.Errorf("%w: shard %d claims %d keys of %d total",
				ErrCorrupt, i, l, d.h.N)
		}
		lens[i] = int64(l)
		total += lens[i]
	}
	if total != d.h.N {
		return nil, fmt.Errorf("%w: extents sum to %d keys, header claims %d",
			ErrCorrupt, total, d.h.N)
	}

	want := 8 * d.h.N
	claimed, err := d.sr.u64("data length")
	if err != nil {
		return nil, err
	}
	if claimed != uint64(want) || int64(claimed) > d.sr.budget {
		return nil, fmt.Errorf("%w: data section claims %d bytes, header needs %d",
			ErrCorrupt, claimed, want)
	}
	backing := make([]K, d.h.N)
	const chunkKeys = 8192
	buf := make([]byte, min(want, 8*chunkKeys))
	sum := uint32(0)
	key := int64(0)
	for off := int64(0); off < want; {
		chunk := min(int64(len(buf)), want-off)
		if err := d.sr.read("data", buf[:chunk]); err != nil {
			return nil, err
		}
		sum = crc32.Update(sum, castagnoli, buf[:chunk])
		keys := chunk / 8
		decodeKeyBits(backing[key:key+keys], buf[:chunk])
		key += keys
		off += chunk
	}
	stored, err := d.sr.u32("data CRC")
	if err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: data section CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, stored, sum)
	}
	var tail [1]byte
	switch _, err := io.ReadFull(d.sr.r, tail[:]); err {
	case io.EOF:
		// Clean end of stream.
	case nil:
		return nil, fmt.Errorf("%w: trailing bytes after the data section", ErrCorrupt)
	default:
		return nil, fmt.Errorf("snapshot: read trailer: %w", err)
	}

	shards := make([][]K, d.h.Procs)
	off := int64(0)
	for i, l := range lens {
		end := off + l
		shards[i] = backing[off:end:end]
		off = end
	}
	return shards, nil
}

// Decode parses one int64 snapshot held fully in memory; DecodeAs is
// the kind-generic form.
func Decode(data []byte) (Header, [][]int64, error) {
	return DecodeAs[int64](data)
}

// DecodeAs parses one snapshot held fully in memory — NewStreamDecoder
// + ReadDataAs over the byte slice. On success the returned shards are
// freshly allocated out of a single contiguous backing array — exactly
// the layout parsel.Pool.RestoreDataset adopts without copying — and
// the header describes them (Procs == len(shards), N == total
// population). On any corruption — including a key-type mismatch with
// K — the error matches one of the typed failures and no shards are
// returned.
func DecodeAs[K FixedKey](data []byte) (Header, [][]K, error) {
	d, err := NewStreamDecoder(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return Header{}, nil, err
	}
	shards, err := ReadDataAs[K](d)
	if err != nil {
		return Header{}, nil, err
	}
	return d.h, shards, nil
}

// IsDecodeError reports whether err is one of the typed decode
// failures — damaged or alien input, as opposed to an I/O fault of the
// underlying stream. The store quarantines on decode errors only; the
// serving layer maps them to the bad_frame wire code.
func IsDecodeError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrKeyType) || errors.Is(err, ErrCorrupt)
}

// decodeHeader parses the CRC-verified header payload.
func decodeHeader(payload []byte) (Header, error) {
	r := &reader{data: payload}
	str := func(what string) (string, error) {
		b, err := r.take(2)
		if err != nil {
			return "", fmt.Errorf("%w: header %s length truncated", ErrCorrupt, what)
		}
		s, err := r.take(int(binary.LittleEndian.Uint16(b)))
		if err != nil {
			return "", fmt.Errorf("%w: header %s truncated", ErrCorrupt, what)
		}
		return string(s), nil
	}
	var h Header
	var err error
	if h.KeyType, err = str("key type"); err != nil {
		return Header{}, err
	}
	if h.Options, err = str("options"); err != nil {
		return Header{}, err
	}
	procs, err := r.u32()
	if err != nil {
		return Header{}, fmt.Errorf("%w: header processor count truncated", ErrCorrupt)
	}
	n, err := r.u64()
	if err != nil {
		return Header{}, fmt.Errorf("%w: header population size truncated", ErrCorrupt)
	}
	if r.off != len(payload) {
		return Header{}, fmt.Errorf("%w: %d trailing header bytes", ErrCorrupt, len(payload)-r.off)
	}
	h.Procs = int(procs)
	h.N = int64(n)
	return h, nil
}
