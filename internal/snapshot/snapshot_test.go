package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"slices"
	"testing"
)

// testShapes are dataset shapes covering the registry's edge cases:
// ragged shards, empty shards, empty populations, single processor.
var testShapes = [][][]int64{
	{{3, 1, 4}, {1, 5, 9, 2, 6}, {5, 3}},
	{{42}},
	{{}, {7, 7, 7}, {}, {-1, 1 << 62}},
	{{}, {}},
	{{-9223372036854775808, 9223372036854775807, 0}},
}

// randomShards draws a ragged random sharding.
func randomShards(rng *rand.Rand, procs int, n int64) [][]int64 {
	shards := make([][]int64, procs)
	for i := int64(0); i < n; i++ {
		p := rng.IntN(procs)
		shards[p] = append(shards[p], rng.Int64()-rng.Int64())
	}
	return shards
}

// TestEncodeDecodeRoundTrip pins that Decode inverts Encode exactly:
// same shard boundaries, same keys, a consistent header, and a
// contiguous backing array (the layout RestoreDataset adopts).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 11))
	shapes := slices.Clone(testShapes)
	for i := 0; i < 4; i++ {
		shapes = append(shapes, randomShards(rng, 1+rng.IntN(9), rng.Int64N(3000)))
	}
	for si, shards := range shapes {
		t.Run(fmt.Sprintf("shape%d", si), func(t *testing.T) {
			data := Encode(Header{Options: "alg=test seed=7"}, shards)
			h, got, err := Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var n int64
			for _, sh := range shards {
				n += int64(len(sh))
			}
			if h.KeyType != KeyTypeInt64 || h.Options != "alg=test seed=7" ||
				h.Procs != len(shards) || h.N != n {
				t.Errorf("header %+v, want key type %s options %q procs %d n %d",
					h, KeyTypeInt64, "alg=test seed=7", len(shards), n)
			}
			if len(got) != len(shards) {
				t.Fatalf("decoded %d shards, want %d", len(got), len(shards))
			}
			for i := range shards {
				if !slices.Equal(got[i], shards[i]) {
					t.Errorf("shard %d: %v, want %v", i, got[i], shards[i])
				}
			}
			// A second round trip through the decoded shards is
			// byte-identical: the format is canonical.
			if again := Encode(Header{Options: h.Options}, got); !slices.Equal(again, data) {
				t.Error("re-encoding the decoded shards changed the bytes")
			}
		})
	}
}

// TestDecodeRejectsEveryBitFlip pins the corruption guarantee behind
// the durability story: every byte of a snapshot is load-bearing
// (magic, version, lengths, payloads, CRCs), so any single corrupted
// byte makes Decode fail with a typed error instead of returning
// silently wrong data.
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	data := Encode(Header{Options: "fp"}, [][]int64{{3, 1, 4}, {}, {1, 5, 9}})
	for off := range data {
		mut := slices.Clone(data)
		mut[off] ^= 0xff
		_, shards, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at offset %d of %d decoded successfully", off, len(data))
		}
		if shards != nil {
			t.Fatalf("flip at offset %d returned shards alongside error %v", off, err)
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrKeyType) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: untyped error %v", off, err)
		}
	}
}

// TestDecodeRejectsEveryTruncation pins that no prefix of a snapshot
// decodes: a partial write can never be mistaken for a dataset.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data := Encode(Header{}, [][]int64{{2, 7, 1}, {8, 2, 8}})
	for cut := 0; cut < len(data); cut++ {
		if _, shards, err := Decode(data[:cut]); err == nil || shards != nil {
			t.Fatalf("truncation to %d of %d bytes decoded (err %v)", cut, len(data), err)
		}
	}
	// Trailing garbage is equally fatal.
	if _, _, err := Decode(append(slices.Clone(data), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: %v, want ErrCorrupt", err)
	}
}

// TestDecodeTypedFailures pins which typed error each failure class
// maps to.
func TestDecodeTypedFailures(t *testing.T) {
	valid := Encode(Header{}, [][]int64{{1, 2}, {3}})

	if _, _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty input: %v, want ErrBadMagic", err)
	}
	if _, _, err := Decode([]byte("NOTASNAPFILE")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("alien bytes: %v, want ErrBadMagic", err)
	}

	skew := slices.Clone(valid)
	skew[8] = 99 // the version field follows the 8-byte magic
	if _, _, err := Decode(skew); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: %v, want ErrVersion", err)
	}

	// A snapshot claiming a different key type, with its header CRC
	// recomputed so the typed key-type check (not the CRC) fires:
	// patch "int64" -> "int32" inside the header payload, which starts
	// at offset 16 (magic 8 + version 4 + length 4).
	foreign := slices.Clone(valid)
	hdrLen := int(binary.LittleEndian.Uint32(foreign[12:16]))
	payload := foreign[16 : 16+hdrLen]
	idx := bytes.Index(payload, []byte(KeyTypeInt64))
	if idx < 0 {
		t.Fatal("key type string not found in header payload")
	}
	copy(payload[idx:], "int32")
	binary.LittleEndian.PutUint32(foreign[16+hdrLen:], crc32.Checksum(payload, castagnoli))
	if _, _, err := Decode(foreign); !errors.Is(err, ErrKeyType) {
		t.Errorf("foreign key type: %v, want ErrKeyType", err)
	}
}
