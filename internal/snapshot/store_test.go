package snapshot

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// open is Open with warnings surfaced as test log lines.
func open(t *testing.T, dir string) *Store {
	t.Helper()
	st, warnings, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	for _, w := range warnings {
		t.Logf("open warning: %s", w)
	}
	return st
}

func meta(id string, gen int64) Meta {
	return Meta{ID: id, Procs: 2, N: 3, Bytes: 24, Gen: gen,
		ExpiresUnixMS: 1<<60 - 1, SavedUnixMS: 1000, Options: "fp"}
}

// TestStoreLifecycle pins Save/Load/Entries/Remove across a reopen:
// the manifest is the durable registry, entries come back sorted, and
// Remove deletes both the entry and its file.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)

	a := [][]int64{{3, 1}, {4}}
	b := [][]int64{{9}, {8, 7}}
	if err := st.Save(meta("beta", 1), b); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(meta("alpha", 2), a); err != nil {
		t.Fatal(err)
	}

	// Reopen: the manifest carries both entries, sorted by id.
	st = open(t, dir)
	entries := st.Entries()
	if len(entries) != 2 || entries[0].ID != "alpha" || entries[1].ID != "beta" {
		t.Fatalf("entries after reopen: %+v", entries)
	}
	if st.TotalDiskBytes() != entries[0].DiskBytes+entries[1].DiskBytes {
		t.Errorf("TotalDiskBytes %d, entries sum differently", st.TotalDiskBytes())
	}
	h, shards, m, err := st.Load("alpha")
	if err != nil {
		t.Fatalf("load alpha: %v", err)
	}
	if h.Procs != 2 || m.Gen != 2 || len(shards) != 2 ||
		!slices.Equal(shards[0], a[0]) || !slices.Equal(shards[1], a[1]) {
		t.Errorf("alpha round trip: header %+v meta %+v shards %v", h, m, shards)
	}

	if err := st.Remove("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "beta.snap")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("beta.snap survives Remove: %v", err)
	}
	if err := st.Remove("beta"); err != nil {
		t.Errorf("second Remove: %v", err)
	}
	st = open(t, dir)
	if entries := st.Entries(); len(entries) != 1 || entries[0].ID != "alpha" {
		t.Errorf("entries after remove+reopen: %+v", entries)
	}
}

// TestStoreGenerationGuard pins the generation protocol: an equal-gen
// Save refreshes metadata without rewriting the data file, and a
// stale-gen Save is a complete no-op, so a slow background persist
// can never clobber a newer upload.
func TestStoreGenerationGuard(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("x", 5), [][]int64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, "x.snap"))
	if err != nil {
		t.Fatal(err)
	}

	// Same gen, new expiry: metadata-only (different shards here prove
	// the data was NOT rewritten).
	m := meta("x", 5)
	m.ExpiresUnixMS = 777777
	if err := st.Save(m, [][]int64{{9, 9, 9, 9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	_, shards, got, err := st.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(shards[0], []int64{1, 2, 3}) {
		t.Errorf("equal-gen Save rewrote the data: %v", shards)
	}
	if got.ExpiresUnixMS != 777777 {
		t.Errorf("equal-gen Save did not refresh metadata: %+v", got)
	}

	// Stale gen: no-op, metadata included.
	stale := meta("x", 4)
	stale.ExpiresUnixMS = 1
	if err := st.Save(stale, [][]int64{{0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, got, _ := st.Load("x"); got.Gen != 5 || got.ExpiresUnixMS != 777777 {
		t.Errorf("stale Save changed state: %+v", got)
	}

	// Newer gen: full rewrite.
	if err := st.Save(meta("x", 6), [][]int64{{4, 4}}); err != nil {
		t.Fatal(err)
	}
	_, shards, _, err = st.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(shards[0], []int64{4, 4}) {
		t.Errorf("newer-gen Save kept old data: %v", shards)
	}
	if after, _ := os.Stat(filepath.Join(dir, "x.snap")); after.Size() == before.Size() {
		t.Logf("note: sizes equal (%d), rewrite verified by content", after.Size())
	}
}

// TestStorePartialWriteInvisible pins crash safety: a temp file left
// by an interrupted write (no rename) changes nothing — the next Open
// sweeps it and the manifest's state is what loads.
func TestStorePartialWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("live", 1), [][]int64{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	// Crash artifacts: a half-written snapshot and a half-written
	// manifest that never reached their renames.
	junk := Encode(Header{}, [][]int64{{6, 6}})
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"live.snap-123"), junk[:len(junk)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"manifest.json-9"), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}

	st, warnings, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 2 {
		t.Errorf("warnings %v, want the two swept partial writes", warnings)
	}
	if entries := st.Entries(); len(entries) != 1 || entries[0].ID != "live" {
		t.Fatalf("entries: %+v", entries)
	}
	if _, shards, _, err := st.Load("live"); err != nil || !slices.Equal(shards[0], []int64{5, 5}) {
		t.Errorf("live dataset after partial-write sweep: %v %v", shards, err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*"))
	if len(left) != 0 {
		t.Errorf("temp files survive Open: %v", left)
	}
}

// TestStoreMissingFile pins that a manifest entry whose file vanished
// loads as an fs.ErrNotExist-matching error and drops out of the
// manifest instead of poisoning later opens.
func TestStoreMissingFile(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("gone", 1), [][]int64{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(meta("here", 1), [][]int64{{2}}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "gone.snap")); err != nil {
		t.Fatal(err)
	}

	st = open(t, dir)
	if _, _, _, err := st.Load("gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v, want fs.ErrNotExist", err)
	}
	if entries := st.Entries(); len(entries) != 1 || entries[0].ID != "here" {
		t.Errorf("entries after missing-file load: %+v", entries)
	}
	// The drop is durable.
	st = open(t, dir)
	if entries := st.Entries(); len(entries) != 1 {
		t.Errorf("entries after reopen: %+v", entries)
	}
}

// TestStoreQuarantine pins that a corrupt snapshot file is renamed
// aside with its typed error surfaced, dropped from the manifest, and
// never reloaded.
func TestStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("bad", 3), [][]int64{{8, 6, 7, 5, 3, 0, 9}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bad.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, shards, _, err := st.Load("bad"); !errors.Is(err, ErrCorrupt) || shards != nil {
		t.Fatalf("corrupt load: %v (shards %v), want ErrCorrupt and no data", err, shards)
	}
	if _, err := os.Stat(path + quarantineExt); err != nil {
		t.Errorf("no quarantine file: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("corrupt original still in place: %v", err)
	}
	if entries := st.Entries(); len(entries) != 0 {
		t.Errorf("quarantined entry still live: %+v", entries)
	}
	if st.TotalDiskBytes() != 0 {
		t.Errorf("quarantined bytes still counted: %d", st.TotalDiskBytes())
	}
}

// TestStoreCorruptManifest pins that an unreadable or version-skewed
// manifest quarantines and yields an empty store — never a failed
// open.
func TestStoreCorruptManifest(t *testing.T) {
	for _, tc := range []struct{ name, content string }{
		{"garbage", "{not json"},
		{"version skew", `{"version": 99, "datasets": []}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			st, warnings, err := Open(dir)
			if err != nil {
				t.Fatalf("open with corrupt manifest: %v", err)
			}
			if len(warnings) != 1 || !strings.Contains(warnings[0], "quarantined") {
				t.Errorf("warnings: %v", warnings)
			}
			if entries := st.Entries(); len(entries) != 0 {
				t.Errorf("entries from corrupt manifest: %+v", entries)
			}
			if _, err := os.Stat(filepath.Join(dir, manifestName+quarantineExt)); err != nil {
				t.Errorf("manifest not quarantined: %v", err)
			}
			// The store is usable after the quarantine.
			if err := st.Save(meta("fresh", 1), [][]int64{{1}}); err != nil {
				t.Errorf("save after quarantine: %v", err)
			}
		})
	}
}

// TestStoreOrphanSweep pins that a .snap file no manifest entry
// references (e.g. a crash mid-removal or mid-replace) is swept on
// the next Open instead of leaking disk forever.
func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("live", 1), [][]int64{{1}}); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "ghost.snap")
	if err := os.WriteFile(orphan, Encode(Header{}, [][]int64{{2}}), 0o644); err != nil {
		t.Fatal(err)
	}

	st, warnings, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "orphaned") {
		t.Errorf("warnings: %v, want the orphan sweep", warnings)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("orphan survives Open: %v", err)
	}
	if _, _, _, err := st.Load("live"); err != nil {
		t.Errorf("referenced snapshot swept with the orphan: %v", err)
	}
}

// TestStoreRefreshMeta pins the batched metadata commit: matching-gen
// entries get their TTL state updated in one manifest write, absent
// or gen-skewed ones are skipped untouched.
func TestStoreRefreshMeta(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if err := st.Save(meta("a", 1), [][]int64{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(meta("b", 2), [][]int64{{2}}); err != nil {
		t.Fatal(err)
	}

	ma, mb, mc := meta("a", 1), meta("b", 99), meta("c", 1)
	ma.ExpiresUnixMS, mb.ExpiresUnixMS, mc.ExpiresUnixMS = 111, 222, 333
	if err := st.RefreshMeta([]Meta{ma, mb, mc}); err != nil {
		t.Fatal(err)
	}

	// Durable: read back through a fresh Open.
	st = open(t, dir)
	got, ok := st.Meta("a")
	if !ok || got.ExpiresUnixMS != 111 || got.File != "a.snap" || got.DiskBytes == 0 {
		t.Errorf("refreshed entry a: %+v", got)
	}
	if got, _ := st.Meta("b"); got.ExpiresUnixMS == 222 {
		t.Errorf("gen-skewed refresh was applied: %+v", got)
	}
	if _, ok := st.Meta("c"); ok {
		t.Error("refresh invented an entry for an absent id")
	}
	// The refresh never touched the data files.
	if _, shards, _, err := st.Load("a"); err != nil || !slices.Equal(shards[0], []int64{1}) {
		t.Errorf("data after refresh: %v %v", shards, err)
	}
}

// TestStoreUnsafeIDs pins that the store never constructs paths from
// ids outside the daemon's [A-Za-z0-9._-] alphabet, and drops
// manifest entries that smuggle one in.
func TestStoreUnsafeIDs(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	for _, id := range []string{"", "a/b", "..", ".", "a b", strings.Repeat("x", 300)} {
		if err := st.Save(meta(id, 1), [][]int64{{1}}); err == nil {
			t.Errorf("Save accepted unsafe id %q", id)
		}
	}
	// A hand-edited manifest smuggling a path: the entry is dropped on
	// open with a warning.
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"version":1,"datasets":[{"id":"../evil","file":"../evil.snap"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, warnings, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Entries()) != 0 || len(warnings) == 0 {
		t.Errorf("unsafe manifest entry survived: %+v (warnings %v)", st2.Entries(), warnings)
	}
}
