// Package balance implements the paper's dynamic load-balancing
// algorithms (§4): the order-maintaining load balance, its modified
// variant (Alg. 5), the dimension exchange method (Alg. 6), and the
// global exchange (Alg. 7). All redistribute the elements held by the
// processors so that every processor ends with either floor(n/p) or
// ceil(n/p) of the n elements; they differ in how much communication they
// generate and whether they preserve the global element order.
package balance

import (
	"fmt"

	"parsel/internal/comm"
	"parsel/internal/machine"
)

// Method selects a load-balancing algorithm.
type Method int

const (
	// None performs no balancing (the paper's "N" series).
	None Method = iota
	// OMLB is the order-maintaining load balance of §4.1: a parallel
	// prefix computes each element's global position and elements move
	// so that processor i holds positions [i*navg, (i+1)*navg). It can
	// generate much more communication than necessary but preserves
	// the global order of the data.
	OMLB
	// ModifiedOMLB (Alg. 5, the paper's "O" series) lets every
	// processor retain min(ni, navg) of its own elements and moves only
	// the excess from sources to sinks, matched by prefix-sum intervals
	// in processor order.
	ModifiedOMLB
	// DimensionExchange (Alg. 6, "D") pairs processors that differ in
	// bit j of their rank for j = 0..log2(p)-1 and averages their loads
	// pairwise, converging to global balance on a hypercube.
	DimensionExchange
	// GlobalExchange (Alg. 7, "G") is ModifiedOMLB with sources and
	// sinks sorted by decreasing excess/need before interval matching,
	// pairing the fullest processors with the emptiest to reduce the
	// number of messages.
	GlobalExchange
)

// Methods lists every method including None.
var Methods = []Method{None, OMLB, ModifiedOMLB, DimensionExchange, GlobalExchange}

// Active lists the methods that actually move data.
var Active = []Method{OMLB, ModifiedOMLB, DimensionExchange, GlobalExchange}

// String returns the name used in harness output (matching the paper's
// figure legends).
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case OMLB:
		return "omlb"
	case ModifiedOMLB:
		return "modomlb"
	case DimensionExchange:
		return "dimexch"
	case GlobalExchange:
		return "globexch"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Tag bases for this package's point-to-point traffic (disjoint from the
// comm package's bases).
const (
	tagDimCount = 9 << 20
	tagDimData  = 10 << 20
)

// Scratch holds one processor's reusable balancing buffers, so that the
// migrate paths of a long-lived machine allocate nothing in steady state.
// A zero Scratch is ready to use; buffers grow on demand and are retained
// between rounds. The assembled output alternates between two retained
// arrays because the current round's input is a view of the previous
// round's output — the sourced blocks it sends must stay intact until
// every receiver has copied them, which the collectives between two
// balancing rounds guarantee.
type Scratch[K any] struct {
	cbuf     []int64 // Bruck all-gather working space (2p)
	targ     []int64
	cumT     []int64
	inCounts []int64
	out      [][]K
	in       [][]K
	sources  []procExcess
	sinks    []procExcess
	bufA     []K
	bufB     []K
	useB     bool
	dim      [][]K // per-round staging blocks for dimension exchange
}

// outBuf returns an empty output buffer with the requested capacity,
// alternating between the two retained arrays so it never aliases the
// previous round's output (this round's input).
func (s *Scratch[K]) outBuf(n int) []K {
	s.useB = !s.useB
	buf := &s.bufA
	if s.useB {
		buf = &s.bufB
	}
	if cap(*buf) < n {
		*buf = make([]K, 0, n)
	}
	return (*buf)[:0]
}

// outSlices returns the per-destination block table, cleared.
func (s *Scratch[K]) outSlices(p int) [][]K {
	if cap(s.out) < p {
		s.out = make([][]K, p)
	}
	s.out = s.out[:p]
	for i := range s.out {
		s.out[i] = nil
	}
	return s.out
}

// int64Buf returns a zeroed int64 buffer of length p from the given slot.
func int64Buf(slot *[]int64, p int) []int64 {
	if cap(*slot) < p {
		*slot = make([]int64, p)
	}
	*slot = (*slot)[:p]
	for i := range *slot {
		(*slot)[i] = 0
	}
	return *slot
}

// dimBuf returns a staging buffer of length n for the given exchange round.
func (s *Scratch[K]) dimBuf(round, n int) []K {
	for len(s.dim) <= round {
		s.dim = append(s.dim, nil)
	}
	if cap(s.dim[round]) < n {
		s.dim[round] = make([]K, n)
	}
	s.dim[round] = s.dim[round][:n]
	return s.dim[round]
}

// Run redistributes local using the given method and returns the new local
// slice. It must be called by all processors collectively. elemBytes is
// the wire size of one element.
func Run[K any](p *machine.Proc, local []K, method Method, elemBytes int) []K {
	return RunScratch(p, local, method, elemBytes, nil)
}

// RunScratch is Run with per-processor reusable scratch (nil behaves like
// Run). Simulated cost and traffic are identical to Run; only host-side
// allocation differs.
func RunScratch[K any](p *machine.Proc, local []K, method Method, elemBytes int, scr *Scratch[K]) []K {
	if scr == nil {
		scr = &Scratch[K]{}
	}
	switch method {
	case None:
		return local
	case OMLB:
		return orderMaintaining(p, local, elemBytes, scr)
	case ModifiedOMLB:
		return sourceSink(p, local, elemBytes, false, scr)
	case DimensionExchange:
		return dimensionExchange(p, local, elemBytes, scr)
	case GlobalExchange:
		return sourceSink(p, local, elemBytes, true, scr)
	default:
		panic(fmt.Sprintf("balance: unknown method %d", int(method)))
	}
}

// targets fills the balanced shard sizes: the first n%p processors get
// ceil(n/p), the rest floor(n/p).
func targets(slot *[]int64, n int64, p int) []int64 {
	t := int64Buf(slot, p)
	base, rem := n/int64(p), n%int64(p)
	for i := range t {
		t[i] = base
		if int64(i) < rem {
			t[i]++
		}
	}
	return t
}

// orderMaintaining implements the unmodified OMLB: elements keep their
// global order; processor i ends with the elements whose global positions
// fall in its target interval.
func orderMaintaining[K any](p *machine.Proc, local []K, elemBytes int, scr *Scratch[K]) []K {
	size := p.Procs()
	counts, cbuf := comm.GlobalConcatInt64(p, int64(len(local)), scr.cbuf)
	scr.cbuf = cbuf
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 || size == 1 {
		return local
	}
	targ := targets(&scr.targ, n, size)
	// Cumulative target starts: processor j owns [cumT[j], cumT[j+1]).
	cumT := int64Buf(&scr.cumT, size+1)
	for j := 0; j < size; j++ {
		cumT[j+1] = cumT[j] + targ[j]
	}
	// My elements occupy global positions [myStart, myStart+len).
	var myStart int64
	for j := 0; j < p.ID(); j++ {
		myStart += counts[j]
	}
	p.Charge(int64(2 * size)) // the two local prefix walks above

	out := scr.outSlices(size)
	for j := 0; j < size; j++ {
		lo := max64(myStart, cumT[j])
		hi := min64(myStart+int64(len(local)), cumT[j+1])
		if lo < hi {
			out[j] = local[lo-myStart : hi-myStart]
			p.Charge(hi - lo) // block assembly / copy-out
		}
	}
	// Incoming counts: intersect my target interval with source ranges.
	inCounts := int64Buf(&scr.inCounts, size)
	var srcStart int64
	for s := 0; s < size; s++ {
		lo := max64(srcStart, cumT[p.ID()])
		hi := min64(srcStart+counts[s], cumT[p.ID()+1])
		if lo < hi {
			inCounts[s] = hi - lo
		}
		srcStart += counts[s]
	}
	in := comm.TransportKnownInto(p, out, inCounts, elemBytes, scr.in)
	scr.in = in
	res := scr.outBuf(int(targ[p.ID()]))
	for s := 0; s < size; s++ {
		res = append(res, in[s]...)
	}
	p.Charge(int64(len(res))) // assemble the balanced shard
	return res
}

// procExcess is one processor's surplus (source) or deficit (sink) in the
// interval-matching schemes.
type procExcess struct {
	proc int
	amt  int64
}

// sourceSink implements both Modified OMLB (sorted=false: processor-index
// order) and Global Exchange (sorted=true: decreasing excess/need order).
func sourceSink[K any](p *machine.Proc, local []K, elemBytes int, sorted bool, scr *Scratch[K]) []K {
	size := p.Procs()
	counts, cbuf := comm.GlobalConcatInt64(p, int64(len(local)), scr.cbuf)
	scr.cbuf = cbuf
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 || size == 1 {
		return local
	}
	targ := targets(&scr.targ, n, size)
	sources, sinks := scr.sources[:0], scr.sinks[:0]
	for j := 0; j < size; j++ {
		d := counts[j] - targ[j]
		if d > 0 {
			sources = append(sources, procExcess{j, d})
		} else if d < 0 {
			sinks = append(sinks, procExcess{j, -d})
		}
	}
	scr.sources, scr.sinks = sources, sinks
	p.Charge(int64(size))
	if sorted {
		// Global exchange: largest excess first, largest need first;
		// ties by processor index for determinism.
		sortByAmtDesc(sources)
		sortByAmtDesc(sinks)
		p.Charge(int64(len(sources) + len(sinks))) // cheap local sorts
	}

	me := p.ID()
	out := scr.outSlices(size)
	inCounts := int64Buf(&scr.inCounts, size)
	keep := min64(int64(len(local)), targ[me])

	if excess := unitStart(sources, me); excess >= 0 {
		// I am a source: my excess units occupy [excess, excess+amt);
		// send each overlap with a sink's unit interval to that sink.
		amt := counts[me] - targ[me]
		sent := int64(0)
		var sinkPos int64
		for _, snk := range sinks {
			lo := max64(excess, sinkPos)
			hi := min64(excess+amt, sinkPos+snk.amt)
			if lo < hi {
				cnt := hi - lo
				out[snk.proc] = local[keep+sent : keep+sent+cnt]
				p.Charge(cnt)
				sent += cnt
			}
			sinkPos += snk.amt
		}
	}
	if need := unitStart(sinks, me); need >= 0 {
		// I am a sink: my need units occupy [need, need+amt); receive
		// each overlap with a source's unit interval from that source.
		amt := targ[me] - counts[me]
		var srcPos int64
		for _, src := range sources {
			lo := max64(need, srcPos)
			hi := min64(need+amt, srcPos+src.amt)
			if lo < hi {
				inCounts[src.proc] = hi - lo
			}
			srcPos += src.amt
		}
	}
	in := comm.TransportKnownInto(p, out, inCounts, elemBytes, scr.in)
	scr.in = in
	final := scr.outBuf(int(targ[me]))
	final = append(final, local[:keep]...)
	for s := 0; s < size; s++ {
		if s != me {
			final = append(final, in[s]...)
		}
	}
	p.Charge(int64(len(final)))
	return final
}

// unitStart returns the cumulative unit rank at which proc's entry starts
// in the chosen ordering, or -1 when proc is not in the list.
func unitStart(list []procExcess, proc int) int64 {
	var cum int64
	for _, e := range list {
		if e.proc == proc {
			return cum
		}
		cum += e.amt
	}
	return -1
}

// sortByAmtDesc sorts by decreasing amount, breaking ties by processor
// index (insertion sort: the lists have at most p entries).
func sortByAmtDesc(a []procExcess) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && (a[j].amt < x.amt || (a[j].amt == x.amt && a[j].proc > x.proc)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// dimensionExchange implements Alg. 6. In round j, processors whose ranks
// differ in bit j exchange element counts and the fuller half sends the
// surplus so both end with ceil/floor of their joint total. For
// non-power-of-two p a processor whose partner does not exist sits the
// round out (the standard generalization); balance is then approximate.
func dimensionExchange[K any](p *machine.Proc, local []K, elemBytes int, scr *Scratch[K]) []K {
	size := p.Procs()
	me := p.ID()
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		partner := me ^ pow
		if partner >= size {
			continue
		}
		ni := int64(len(local))
		p.SendInt64Pair(partner, tagDimCount+round, ni, 0, machine.WordBytes)
		nl, _ := p.RecvInt64Pair(partner, tagDimCount+round)
		navg := (ni + nl + 1) / 2
		switch {
		case ni > navg:
			// Copy the surplus out: a later round may append into this
			// slice's backing array, which must not alias the block the
			// partner received. The staging block is per-round scratch;
			// it is free for reuse once the collectives separating two
			// balancing rounds have synchronized every processor.
			give := ni - navg
			blk := scr.dimBuf(round, int(give))
			copy(blk, local[navg:ni])
			p.Send(partner, tagDimData+round, blk, int(give)*elemBytes)
			local = local[:navg]
			p.Charge(give)
		case nl > navg:
			blk := p.Recv(partner, tagDimData+round).([]K)
			local = append(local, blk...)
			p.Charge(int64(len(blk)))
		}
	}
	return local
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
