package balance

import (
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

func benchBalance(b *testing.B, method Method) {
	const p = 16
	const n = 1 << 18
	m, err := machine.New(machine.DefaultParams(p))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		shards := workload.Unbalanced(n, p, uint64(i))
		b.StartTimer()
		_, err := m.Run(func(pr *machine.Proc) {
			Run(pr, shards[pr.ID()], method, machine.WordBytes)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n * 8)
}

func BenchmarkOMLB(b *testing.B)              { benchBalance(b, OMLB) }
func BenchmarkModifiedOMLB(b *testing.B)      { benchBalance(b, ModifiedOMLB) }
func BenchmarkDimensionExchange(b *testing.B) { benchBalance(b, DimensionExchange) }
func BenchmarkGlobalExchange(b *testing.B)    { benchBalance(b, GlobalExchange) }
