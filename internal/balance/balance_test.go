package balance

import (
	"math/rand/v2"
	"slices"
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

// runBalance executes one collective balance over the given shards and
// returns the resulting shards.
func runBalance(t *testing.T, method Method, shards [][]int64) [][]int64 {
	t.Helper()
	p := len(shards)
	out := make([][]int64, p)
	_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
		out[pr.ID()] = Run(pr, shards[pr.ID()], method, machine.WordBytes)
	})
	if err != nil {
		t.Fatalf("%v: %v", method, err)
	}
	return out
}

func checkMultisetPreserved(t *testing.T, method Method, before, after [][]int64) {
	t.Helper()
	b := workload.Flatten(before)
	a := workload.Flatten(after)
	slices.Sort(b)
	slices.Sort(a)
	if !slices.Equal(a, b) {
		t.Errorf("%v: multiset not preserved (%d -> %d elements)", method, len(b), len(a))
	}
}

func checkBalanced(t *testing.T, method Method, after [][]int64) {
	t.Helper()
	n := workload.Total(after)
	p := int64(len(after))
	lo, hi := n/p, (n+p-1)/p
	if method == DimensionExchange {
		// Pairwise averaging rounds up at every level, so the final
		// spread can reach log2(p) elements (Cybenko 1989); the paper's
		// equal-load claim holds only when counts divide evenly.
		var slack int64
		for q := int64(1); q < p; q <<= 1 {
			slack++
		}
		lo -= slack
		hi += slack
	}
	for i, s := range after {
		if int64(len(s)) < lo || int64(len(s)) > hi {
			t.Errorf("%v: shard %d has %d elements, want in [%d,%d]", method, i, len(s), lo, hi)
		}
	}
}

// powerOfTwo reports whether p is a power of two (dimension exchange only
// guarantees exact balance there).
func powerOfTwo(p int) bool { return p&(p-1) == 0 }

func TestBalancersAchieveBalance(t *testing.T) {
	for _, method := range Active {
		for _, p := range []int{1, 2, 4, 8, 16} {
			for _, n := range []int64{0, 1, 5, 100, 1000, 4097} {
				shards := workload.Unbalanced(n, p, 11)
				before := make([][]int64, p)
				for i := range shards {
					before[i] = slices.Clone(shards[i])
				}
				after := runBalance(t, method, shards)
				checkMultisetPreserved(t, method, before, after)
				checkBalanced(t, method, after)
			}
		}
	}
}

func TestBalancersNonPowerOfTwo(t *testing.T) {
	for _, method := range Active {
		for _, p := range []int{3, 5, 7, 13} {
			shards := workload.Unbalanced(999, p, 3)
			before := make([][]int64, p)
			for i := range shards {
				before[i] = slices.Clone(shards[i])
			}
			after := runBalance(t, method, shards)
			checkMultisetPreserved(t, method, before, after)
			if method == DimensionExchange && !powerOfTwo(p) {
				// Only approximate balance is guaranteed; require a
				// strict improvement of the maximum load.
				maxBefore, maxAfter := 0, 0
				for i := range before {
					maxBefore = max(maxBefore, len(before[i]))
					maxAfter = max(maxAfter, len(after[i]))
				}
				if maxAfter > maxBefore {
					t.Errorf("dimexch p=%d worsened max load %d -> %d", p, maxBefore, maxAfter)
				}
				continue
			}
			checkBalanced(t, method, after)
		}
	}
}

func TestExtremeSkewOneProcessorHoldsAll(t *testing.T) {
	for _, method := range Active {
		for _, p := range []int{2, 4, 8} {
			shards := make([][]int64, p)
			all := make([]int64, 1000)
			for i := range all {
				all[i] = int64(i)
			}
			shards[p-1] = slices.Clone(all)
			for i := 0; i < p-1; i++ {
				shards[i] = []int64{}
			}
			after := runBalance(t, method, shards)
			checkBalanced(t, method, after)
			flat := workload.Flatten(after)
			slices.Sort(flat)
			for i, v := range flat {
				if v != int64(i) {
					t.Fatalf("%v p=%d: lost element %d", method, p, i)
				}
			}
		}
	}
}

func TestOMLBPreservesGlobalOrder(t *testing.T) {
	// Globally sorted input must stay globally sorted under OMLB.
	p := 5
	shards := make([][]int64, p)
	next := int64(0)
	sizes := []int{17, 0, 3, 40, 9}
	for i := range shards {
		shards[i] = make([]int64, sizes[i])
		for j := range shards[i] {
			shards[i][j] = next
			next++
		}
	}
	after := runBalance(t, OMLB, shards)
	flat := workload.Flatten(after)
	for i, v := range flat {
		if v != int64(i) {
			t.Fatalf("OMLB broke global order at %d: %d", i, v)
		}
	}
	checkBalanced(t, OMLB, after)
}

func TestNoneIsIdentity(t *testing.T) {
	shards := workload.Unbalanced(100, 4, 1)
	after := runBalance(t, None, shards)
	for i := range shards {
		if !slices.Equal(after[i], shards[i]) {
			t.Errorf("None modified shard %d", i)
		}
	}
}

func TestAlreadyBalancedMovesNothing(t *testing.T) {
	for _, method := range []Method{ModifiedOMLB, GlobalExchange, DimensionExchange} {
		p := 8
		shards := workload.Generate(workload.Random, 800, p, 2)
		var moved int64
		_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			Run(pr, shards[pr.ID()], method, machine.WordBytes)
			// Count only data-plane bytes: everything beyond the
			// count-exchange traffic. Data elements are 8 bytes each and
			// blocks are >= 1 element, so any data transfer shows up as
			// a message after the metadata phase; simplest robust check:
			// total bytes should be small (metadata only).
			if pr.ID() == 0 {
				moved = pr.Counters.BytesSent
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Metadata for p=8 is well under 2 KB; any real data movement
		// of ~100 elements would exceed it.
		if moved > 2048 {
			t.Errorf("%v: balanced input still moved %d bytes from proc 0", method, moved)
		}
	}
}

func TestGlobalExchangeFewerMessagesThanModOMLB(t *testing.T) {
	// The point of global exchange: pairing big sources with big sinks
	// reduces message count on skewed inputs. Build a pattern with one
	// huge source and one huge sink plus many slightly-off processors.
	p := 16
	build := func() [][]int64 {
		shards := make([][]int64, p)
		for i := range shards {
			shards[i] = make([]int64, 100)
		}
		shards[0] = make([]int64, 100+15*50) // big source
		for i := 1; i < p; i++ {
			shards[i] = make([]int64, 50) // all small sinks
		}
		return shards
	}
	count := func(method Method) int64 {
		var msgs int64
		_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			Run(pr, build()[pr.ID()], method, machine.WordBytes)
			if pr.ID() == 0 {
				msgs = pr.Counters.MsgsSent
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return msgs
	}
	mod := count(ModifiedOMLB)
	glob := count(GlobalExchange)
	if glob > mod {
		t.Errorf("global exchange sent %d msgs from the big source, modified OMLB %d", glob, mod)
	}
}

func TestDimensionExchangeRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 30; trial++ {
		p := 1 << (1 + rng.IntN(4)) // 2..16, power of two
		shards := make([][]int64, p)
		var before [][]int64
		for i := range shards {
			sz := rng.IntN(200)
			shards[i] = make([]int64, sz)
			for j := range shards[i] {
				shards[i][j] = rng.Int64N(1 << 30)
			}
			before = append(before, slices.Clone(shards[i]))
		}
		after := runBalance(t, DimensionExchange, shards)
		checkMultisetPreserved(t, DimensionExchange, before, after)
		checkBalanced(t, DimensionExchange, after)
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range Methods {
		if m.String() == "" {
			t.Errorf("method %d has empty name", int(m))
		}
	}
	if Method(42).String() != "Method(42)" {
		t.Errorf("unknown method name = %q", Method(42).String())
	}
}

func TestUnknownMethodPanics(t *testing.T) {
	_, err := machine.Run(machine.DefaultParams(1), func(pr *machine.Proc) {
		Run(pr, []int64{1}, Method(42), 8)
	})
	if err == nil {
		t.Fatal("expected panic for unknown method")
	}
}

func TestTargets(t *testing.T) {
	got := targets(new([]int64), 10, 4)
	want := []int64{3, 3, 2, 2}
	if !slices.Equal(got, want) {
		t.Errorf("targets(10,4) = %v, want %v", got, want)
	}
	got = targets(new([]int64), 8, 4)
	want = []int64{2, 2, 2, 2}
	if !slices.Equal(got, want) {
		t.Errorf("targets(8,4) = %v, want %v", got, want)
	}
	got = targets(new([]int64), 2, 4)
	want = []int64{1, 1, 0, 0}
	if !slices.Equal(got, want) {
		t.Errorf("targets(2,4) = %v, want %v", got, want)
	}
}

func TestSortByAmtDesc(t *testing.T) {
	a := []procExcess{{0, 5}, {1, 9}, {2, 5}, {3, 1}}
	sortByAmtDesc(a)
	want := []procExcess{{1, 9}, {0, 5}, {2, 5}, {3, 1}}
	if !slices.Equal(a, want) {
		t.Errorf("sortByAmtDesc = %v, want %v", a, want)
	}
}
