package balance

import (
	"slices"
	"testing"
	"testing/quick"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

// TestQuickBalanceProperties drives every balancer over arbitrary shard
// shapes: the element multiset must be preserved and the final loads must
// be within the method's guarantee.
func TestQuickBalanceProperties(t *testing.T) {
	f := func(sizes []uint16, methodRaw, pRaw uint8) bool {
		p := 1 + int(pRaw%10)
		method := Active[int(methodRaw)%len(Active)]
		if method == DimensionExchange {
			// The pairwise averaging only guarantees balance on a
			// hypercube; snap to a power of two (the paper's machine
			// sizes) for this property.
			q := 1
			for q*2 <= p {
				q *= 2
			}
			p = q
		}
		shards := make([][]int64, p)
		next := int64(0)
		for i := range shards {
			sz := 0
			if i < len(sizes) {
				sz = int(sizes[i] % 600)
			}
			shards[i] = make([]int64, sz)
			for j := range shards[i] {
				shards[i][j] = next
				next++
			}
		}
		before := workload.Flatten(shards)
		out := make([][]int64, p)
		_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			out[pr.ID()] = Run(pr, shards[pr.ID()], method, machine.WordBytes)
		})
		if err != nil {
			return false
		}
		after := workload.Flatten(out)
		slices.Sort(before)
		slices.Sort(after)
		if !slices.Equal(before, after) {
			return false
		}
		// Load bound: exact (floor/ceil) for the interval-matching
		// methods, diameter-of-rounding slack for dimension exchange.
		n := int64(len(after))
		lo, hi := n/int64(p), (n+int64(p)-1)/int64(p)
		if method == DimensionExchange {
			var slack int64
			for q := int64(1); q < int64(p); q <<= 1 {
				slack++
			}
			lo -= slack
			hi += slack
		}
		for _, s := range out {
			if int64(len(s)) < lo || int64(len(s)) > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickOMLBOrder: the order-maintaining variant must preserve global
// order for arbitrary shard shapes of a globally sorted input.
func TestQuickOMLBOrder(t *testing.T) {
	f := func(sizes []uint16, pRaw uint8) bool {
		p := 1 + int(pRaw%10)
		shards := make([][]int64, p)
		next := int64(0)
		for i := range shards {
			sz := 0
			if i < len(sizes) {
				sz = int(sizes[i] % 400)
			}
			shards[i] = make([]int64, sz)
			for j := range shards[i] {
				shards[i][j] = next
				next++
			}
		}
		out := make([][]int64, p)
		_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			out[pr.ID()] = Run(pr, shards[pr.ID()], OMLB, machine.WordBytes)
		})
		if err != nil {
			return false
		}
		flat := workload.Flatten(out)
		for i, v := range flat {
			if v != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
