package seq

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(42, 43)) }

// oracleRank returns the k-th smallest element by sorting a copy.
func oracleRank(a []int64, k int) int64 {
	b := slices.Clone(a)
	slices.Sort(b)
	return b[k]
}

func randomSlice(n int, r *rand.Rand, span int64) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = r.Int64N(span)
	}
	return a
}

func TestInsertionSort(t *testing.T) {
	r := rng()
	for _, n := range []int{0, 1, 2, 3, 10, 50} {
		a := randomSlice(n, r, 20)
		want := slices.Clone(a)
		slices.Sort(want)
		ops := InsertionSort(a)
		if !slices.Equal(a, want) {
			t.Errorf("n=%d not sorted: %v", n, a)
		}
		if n > 1 && ops == 0 {
			t.Errorf("n=%d reported zero ops", n)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int64{}) || !IsSorted([]int64{1}) || !IsSorted([]int64{1, 1, 2}) {
		t.Error("IsSorted false negative")
	}
	if IsSorted([]int64{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func TestPartition3Property(t *testing.T) {
	f := func(raw []int16, pivIdx uint8) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		if len(a) == 0 {
			return true
		}
		pivot := a[int(pivIdx)%len(a)]
		before := slices.Clone(a)
		lt, eq, _ := Partition3(a, pivot)
		// Region invariants.
		for i, v := range a {
			switch {
			case i < lt && v >= pivot:
				return false
			case i >= lt && i < lt+eq && v != pivot:
				return false
			case i >= lt+eq && v <= pivot:
				return false
			}
		}
		// Multiset preserved.
		slices.Sort(before)
		after := slices.Clone(a)
		slices.Sort(after)
		return slices.Equal(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRangeProperty(t *testing.T) {
	f := func(raw []int16, x, y int16) bool {
		lo, hi := int64(x), int64(y)
		if lo > hi {
			lo, hi = hi, lo
		}
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		before := slices.Clone(a)
		nLess, nMid, _ := PartitionRange(a, lo, hi)
		for i, v := range a {
			switch {
			case i < nLess && v >= lo:
				return false
			case i >= nLess && i < nLess+nMid && (v < lo || v > hi):
				return false
			case i >= nLess+nMid && v <= hi:
				return false
			}
		}
		slices.Sort(before)
		after := slices.Clone(a)
		slices.Sort(after)
		return slices.Equal(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountLE(t *testing.T) {
	a := []int64{5, 1, 3, 3, 9}
	for _, tc := range []struct {
		x    int64
		want int
	}{{0, 0}, {1, 1}, {3, 3}, {4, 3}, {9, 5}, {100, 5}} {
		if got, _ := CountLE(a, tc.x); got != tc.want {
			t.Errorf("CountLE(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestQuickselectMatchesOracle(t *testing.T) {
	r := rng()
	for _, n := range []int{1, 2, 3, 10, 100, 1000, 5000} {
		a := randomSlice(n, r, int64(n)*3)
		for _, k := range []int{0, n / 4, n / 2, n - 1} {
			want := oracleRank(a, k)
			got, ops := Quickselect(slices.Clone(a), k, r)
			if got != want {
				t.Errorf("n=%d k=%d: got %d want %d", n, k, got, want)
			}
			if n > 1 && ops <= 0 {
				t.Errorf("n=%d k=%d: nonpositive ops %d", n, k, ops)
			}
		}
	}
}

func TestQuickselectAllEqual(t *testing.T) {
	a := make([]int64, 2000)
	for i := range a {
		a[i] = 7
	}
	got, _ := Quickselect(a, 1000, rng())
	if got != 7 {
		t.Errorf("all-equal select = %d", got)
	}
}

func TestQuickselectSortedAndReverse(t *testing.T) {
	r := rng()
	n := 3000
	asc := make([]int64, n)
	desc := make([]int64, n)
	for i := range asc {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
	}
	if got, _ := Quickselect(slices.Clone(asc), 1234, r); got != 1234 {
		t.Errorf("sorted select = %d", got)
	}
	if got, _ := Quickselect(slices.Clone(desc), 0, r); got != 1 {
		t.Errorf("reverse select min = %d", got)
	}
}

func TestQuickselectPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Quickselect([]int64{1, 2}, 2, rng())
}

func TestSelectBFPRTMatchesOracle(t *testing.T) {
	r := rng()
	for _, n := range []int{1, 2, 5, 24, 25, 100, 1000, 4321} {
		a := randomSlice(n, r, int64(n))
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			want := oracleRank(a, k)
			got, _ := SelectBFPRT(slices.Clone(a), k)
			if got != want {
				t.Errorf("n=%d k=%d: got %d want %d", n, k, got, want)
			}
		}
	}
}

func TestSelectBFPRTWorstCases(t *testing.T) {
	n := 2000
	asc := make([]int64, n)
	allEq := make([]int64, n)
	for i := range asc {
		asc[i] = int64(i)
		allEq[i] = 3
	}
	if got, _ := SelectBFPRT(slices.Clone(asc), 999); got != 999 {
		t.Errorf("sorted BFPRT = %d", got)
	}
	if got, _ := SelectBFPRT(allEq, 1500); got != 3 {
		t.Errorf("all-equal BFPRT = %d", got)
	}
}

// TestBFPRTCostlierThanQuickselect pins the constant-factor relationship
// the paper leans on: deterministic selection does several times more
// element operations than Floyd–Rivest.
func TestBFPRTCostlierThanQuickselect(t *testing.T) {
	r := rng()
	a := randomSlice(200000, r, 1<<40)
	_, detOps := SelectBFPRT(slices.Clone(a), 100000)
	_, randOps := Quickselect(slices.Clone(a), 100000, r)
	if detOps < 3*randOps {
		t.Errorf("BFPRT ops %d not >= 3x Floyd-Rivest ops %d", detOps, randOps)
	}
}

func TestMedianDefinitions(t *testing.T) {
	// Paper: median has rank ceil(N/2) (1-based).
	cases := []struct {
		n    int
		want int // 0-based index
	}{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {100, 49}, {101, 50}}
	for _, tc := range cases {
		if got := MedianIndex(tc.n); got != tc.want {
			t.Errorf("MedianIndex(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	a := []int64{9, 1, 5, 3, 7}
	if m, _ := Median(slices.Clone(a)); m != 5 {
		t.Errorf("Median = %d, want 5", m)
	}
	if m, _ := MedianRandomized(slices.Clone(a), rng()); m != 5 {
		t.Errorf("MedianRandomized = %d, want 5", m)
	}
	b := []int64{4, 1, 3, 2}
	if m, _ := Median(slices.Clone(b)); m != 2 {
		t.Errorf("even Median = %d, want 2", m)
	}
}

func TestWeightedMedianBasic(t *testing.T) {
	// Values 10,20,30 with weights 1,1,1: median is 20.
	if m, _ := WeightedMedian([]int64{30, 10, 20}, []int64{1, 1, 1}); m != 20 {
		t.Errorf("uniform weighted median = %d", m)
	}
	// Weight concentrated on 30.
	if m, _ := WeightedMedian([]int64{10, 20, 30}, []int64{1, 1, 10}); m != 30 {
		t.Errorf("skewed weighted median = %d", m)
	}
	// Zero weights ignored.
	if m, _ := WeightedMedian([]int64{10, 20, 30}, []int64{0, 5, 0}); m != 20 {
		t.Errorf("zero-weight median = %d", m)
	}
}

// TestWeightedMedianProperty: expanding each value by its weight and taking
// the plain lower median must agree with WeightedMedian.
func TestWeightedMedianProperty(t *testing.T) {
	f := func(raw []int16, wraw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		weights := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			vals[i] = int64(v)
			if i < len(wraw) {
				weights[i] = int64(wraw[i] % 8)
			}
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
			total = 1
		}
		got, _ := WeightedMedian(vals, weights)
		var expanded []int64
		for i, v := range vals {
			for j := int64(0); j < weights[i]; j++ {
				expanded = append(expanded, v)
			}
		}
		slices.Sort(expanded)
		want := expanded[MedianIndex(len(expanded))]
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMedianPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { WeightedMedian([]int64{1}, []int64{1, 2}) },
		"negative": func() { WeightedMedian([]int64{1}, []int64{-1}) },
		"zero":     func() { WeightedMedian([]int64{1}, []int64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBounds(t *testing.T) {
	a := []int64{1, 3, 3, 3, 7, 9}
	cases := []struct {
		x      int64
		lb, ub int
	}{{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {7, 4, 5}, {9, 5, 6}, {10, 6, 6}}
	for _, tc := range cases {
		if got, _ := LowerBound(a, tc.x); got != tc.lb {
			t.Errorf("LowerBound(%d) = %d, want %d", tc.x, got, tc.lb)
		}
		if got, _ := UpperBound(a, tc.x); got != tc.ub {
			t.Errorf("UpperBound(%d) = %d, want %d", tc.x, got, tc.ub)
		}
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(raw []int16, x int16) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		slices.Sort(a)
		lb, _ := LowerBound(a, int64(x))
		ub, _ := UpperBound(a, int64(x))
		for i, v := range a {
			if (i < lb) != (v < int64(x)) {
				return false
			}
			if (i < ub) != (v <= int64(x)) {
				return false
			}
		}
		return lb <= ub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleWithReplacement(t *testing.T) {
	r := rng()
	a := []int64{10, 20, 30}
	s, ops := SampleWithReplacement(a, 100, r)
	if len(s) != 100 || ops != 100 {
		t.Fatalf("len=%d ops=%d", len(s), ops)
	}
	for _, v := range s {
		if v != 10 && v != 20 && v != 30 {
			t.Errorf("sampled foreign value %d", v)
		}
	}
	if s2, _ := SampleWithReplacement(a, 0, r); len(s2) != 0 {
		t.Error("empty sample not empty")
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	r := rng()
	for _, n := range []int{0, 1, 2, 17, 100, 1000, 50000} {
		a := randomSlice(n, r, 64) // heavy duplicates stress 3-way path
		want := slices.Clone(a)
		slices.Sort(want)
		Sort(a)
		if !slices.Equal(a, want) {
			t.Errorf("n=%d mismatch", n)
		}
	}
}

func TestSortAdversarial(t *testing.T) {
	n := 30000
	asc := make([]int64, n)
	desc := make([]int64, n)
	organ := make([]int64, n)
	for i := range asc {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
		if i < n/2 {
			organ[i] = int64(i)
		} else {
			organ[i] = int64(n - i)
		}
	}
	for name, a := range map[string][]int64{"asc": asc, "desc": desc, "organ": organ} {
		b := slices.Clone(a)
		want := slices.Clone(a)
		slices.Sort(want)
		ops := Sort(b)
		if !slices.Equal(b, want) {
			t.Errorf("%s: not sorted", name)
		}
		// Introsort must stay loglinear-ish even on adversarial inputs.
		if limit := int64(60 * n); ops > limit {
			t.Errorf("%s: ops %d exceed %d", name, ops, limit)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(raw []int32) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		want := slices.Clone(a)
		slices.Sort(want)
		Sort(a)
		return slices.Equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeK(t *testing.T) {
	runs := [][]int64{
		{1, 4, 9},
		{},
		{2, 2, 2},
		{0},
		{5, 6},
	}
	got, _ := MergeK(runs)
	want := []int64{0, 1, 2, 2, 2, 4, 5, 6, 9}
	if !slices.Equal(got, want) {
		t.Errorf("MergeK = %v, want %v", got, want)
	}
	if out, _ := MergeK[int64](nil); len(out) != 0 {
		t.Error("MergeK(nil) not empty")
	}
	if out, _ := MergeK([][]int64{{}, {}}); len(out) != 0 {
		t.Error("MergeK(empty runs) not empty")
	}
}

func TestMergeKProperty(t *testing.T) {
	f := func(raw [][]int16) bool {
		runs := make([][]int64, len(raw))
		var all []int64
		for i, r := range raw {
			runs[i] = make([]int64, len(r))
			for j, v := range r {
				runs[i][j] = int64(v)
			}
			slices.Sort(runs[i])
			all = append(all, runs[i]...)
		}
		got, _ := MergeK(runs)
		slices.Sort(all)
		return slices.Equal(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectGenericString(t *testing.T) {
	words := []string{"pear", "apple", "fig", "date", "cherry"}
	got, _ := SelectBFPRT(slices.Clone(words), 2)
	if got != "date" {
		t.Errorf("string BFPRT = %q", got)
	}
	got2, _ := Quickselect(slices.Clone(words), 0, rng())
	if got2 != "apple" {
		t.Errorf("string Quickselect = %q", got2)
	}
}
