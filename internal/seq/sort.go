package seq

import (
	"cmp"
	"math/bits"
)

// Sort sorts a in place with an introsort (quicksort with median-of-three
// pivots, falling back to heapsort past a depth limit and to insertion
// sort on small runs) and returns the operation count. It is the local
// sort used by the parallel sample sort and the bucket preprocessing.
func Sort[K cmp.Ordered](a []K) int64 {
	if len(a) < 2 {
		return 0
	}
	limit := 2 * bits.Len(uint(len(a)))
	var ops int64
	introsort(a, limit, &ops)
	return ops
}

func introsort[K cmp.Ordered](a []K, limit int, ops *int64) {
	for len(a) > insertionCutoff {
		if limit == 0 {
			*ops += heapsort(a)
			return
		}
		limit--
		p := medianOfThreePivot(a, ops)
		lt, eq, o := Partition3(a, p)
		*ops += o
		// Recurse on the smaller side, loop on the larger: O(log n) stack.
		if lt < len(a)-(lt+eq) {
			introsort(a[:lt], limit, ops)
			a = a[lt+eq:]
		} else {
			introsort(a[lt+eq:], limit, ops)
			a = a[:lt]
		}
	}
	*ops += InsertionSort(a)
}

// medianOfThreePivot picks the median of the first, middle and last
// elements (with a pseudo-median of nine for large slices).
func medianOfThreePivot[K cmp.Ordered](a []K, ops *int64) K {
	n := len(a)
	m := n / 2
	if n > 256 {
		s := n / 8
		lo := median3(a[0], a[s], a[2*s], ops)
		mid := median3(a[m-s], a[m], a[m+s], ops)
		hi := median3(a[n-1-2*s], a[n-1-s], a[n-1], ops)
		return median3(lo, mid, hi, ops)
	}
	return median3(a[0], a[m], a[n-1], ops)
}

func median3[K cmp.Ordered](x, y, z K, ops *int64) K {
	*ops += 3
	if x > y {
		x, y = y, x
	}
	if y > z {
		y = z
	}
	if x > y {
		y = x
	}
	return y
}

// heapsort sorts a in place; used as the introsort depth-limit fallback.
func heapsort[K cmp.Ordered](a []K) int64 {
	var ops int64
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		ops += siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		ops++
		ops += siftDown(a, 0, end)
	}
	return ops
}

func siftDown[K cmp.Ordered](a []K, root, end int) int64 {
	var ops int64
	for {
		child := 2*root + 1
		if child >= end {
			return ops
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		ops += 2
		if a[root] >= a[child] {
			return ops
		}
		a[root], a[child] = a[child], a[root]
		ops++
		root = child
	}
}

// sortFunc is a small comparison-function quicksort used for auxiliary
// structures (weighted pairs, processor orderings). It returns op counts
// like the key kernels.
func sortFunc[T any](a []T, less func(T, T) bool) int64 {
	var ops int64
	sortFuncRec(a, less, &ops)
	return ops
}

func sortFuncRec[T any](a []T, less func(T, T) bool, ops *int64) {
	for len(a) > 12 {
		// Median-of-three pivot selection, then Hoare-style partition.
		mid := len(a) / 2
		hi := len(a) - 1
		*ops += 3
		if less(a[mid], a[0]) {
			a[mid], a[0] = a[0], a[mid]
		}
		if less(a[hi], a[0]) {
			a[hi], a[0] = a[0], a[hi]
		}
		if less(a[hi], a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := 0, hi
		for {
			for less(a[i], pivot) {
				i++
				*ops++
			}
			for less(pivot, a[j]) {
				j--
				*ops++
			}
			*ops += 2
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
			*ops++
		}
		sortFuncRec(a[:j+1], less, ops)
		a = a[j+1:]
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
			*ops += 2
		}
		*ops++
	}
}

// MergeK merges k sorted runs into a single sorted slice using a binary
// heap of run heads; cost O(total log k). It is the final step of the
// parallel sample sort.
func MergeK[K cmp.Ordered](runs [][]K) ([]K, int64) {
	return MergeKInto[K](nil, runs)
}

// MergeKInto is MergeK appending into dst (truncated first), so repeated
// merges can reuse one buffer.
func MergeKInto[K cmp.Ordered](dst []K, runs [][]K) ([]K, int64) {
	var ops int64
	total := 0
	heads := make([]int, 0, len(runs)) // indices of non-empty runs
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			heads = append(heads, i)
		}
	}
	out := dst[:0]
	if cap(out) < total {
		out = make([]K, 0, total)
	}
	if len(heads) == 0 {
		return out, 0
	}
	// pos[i] is the cursor into runs[i].
	pos := make([]int, len(runs))
	// Binary min-heap over heads, keyed by runs[i][pos[i]].
	lessRun := func(x, y int) bool {
		ops++
		return runs[x][pos[x]] < runs[y][pos[y]]
	}
	down := func(h []int, i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			if c+1 < len(h) && lessRun(h[c+1], h[c]) {
				c++
			}
			if !lessRun(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		down(heads, i)
	}
	for len(heads) > 0 {
		r := heads[0]
		out = append(out, runs[r][pos[r]])
		pos[r]++
		ops++
		if pos[r] == len(runs[r]) {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		if len(heads) > 0 {
			down(heads, 0)
		}
	}
	return out, ops
}
