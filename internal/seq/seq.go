// Package seq provides the sequential building blocks of the parallel
// selection algorithms: deterministic (BFPRT) and randomized
// (Floyd–Rivest) selection, three-way partitioning, introsort, weighted
// median, binary searches, and sampling.
//
// Every kernel reports an operation count — roughly one unit per key
// comparison or key move — which the simulation layer converts into
// processor time. Counting operations of real implementations is what
// reproduces the paper's observation that the deterministic algorithms
// carry much larger constants than the randomized ones.
package seq

import (
	"cmp"
	"math"
	"math/rand/v2"
)

// insertionCutoff is the subproblem size below which selection and sorting
// kernels switch to insertion sort.
const insertionCutoff = 24

// InsertionSort sorts a in place and returns the operation count.
func InsertionSort[K cmp.Ordered](a []K) int64 {
	var ops int64
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		ops++
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
			ops += 2
		}
		a[j+1] = x
	}
	return ops
}

// IsSorted reports whether a is in non-decreasing order.
func IsSorted[K cmp.Ordered](a []K) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}

// Partition3 performs an in-place three-way (Dutch national flag)
// partition of a around pivot. On return a[:lt] < pivot,
// a[lt:lt+eq] == pivot, and a[lt+eq:] > pivot.
//
// The operation count is the model's established pricing — 2 per element
// below or equal to the pivot, 3 per element above — computed from the
// final region sizes so the hot scan carries no accounting arithmetic.
func Partition3[K cmp.Ordered](a []K, pivot K) (lt, eq int, ops int64) {
	lo, mid, hi := 0, 0, len(a)
	for mid < hi {
		switch {
		case a[mid] < pivot:
			a[lo], a[mid] = a[mid], a[lo]
			lo++
			mid++
		case a[mid] > pivot:
			hi--
			a[mid], a[hi] = a[hi], a[mid]
		default:
			mid++
		}
	}
	ops = int64(2*len(a) + (len(a) - mid))
	return lo, mid - lo, ops
}

// PartitionRange performs an in-place partition of a into three regions
// around the closed interval [lo, hi]: a[:nLess] < lo,
// a[nLess:nLess+nMid] in [lo, hi], and the rest > hi. It is the scan step
// of the fast randomized algorithm (Alg. 4 step 5). Requires lo <= hi.
func PartitionRange[K cmp.Ordered](a []K, lo, hi K) (nLess, nMid int, ops int64) {
	lt, eq, o1 := Partition3(a, lo)
	ops = o1
	// a[:lt] < lo; a[lt:lt+eq] == lo belongs to the middle region.
	rest := a[lt+eq:]
	lt2, eq2, o2 := Partition3(rest, hi)
	ops += o2
	// rest[:lt2] in (lo, hi); rest[lt2:lt2+eq2] == hi.
	return lt, eq + lt2 + eq2, ops
}

// CountLE returns how many elements of a are <= x (no reordering). The
// comparison result feeds the counter arithmetically so the scan compiles
// branch-free.
func CountLE[K cmp.Ordered](a []K, x K) (int, int64) {
	n := 0
	for _, v := range a {
		inc := 0
		if v <= x {
			inc = 1
		}
		n += inc
	}
	return n, int64(len(a))
}

// grow returns dst resized to n elements, reallocating only when the
// capacity is short (the out-of-place kernels overwrite every slot they
// return, so no clearing is needed).
func grow[K any](dst []K, n int) []K {
	if cap(dst) < n {
		return make([]K, n)
	}
	return dst[:n]
}

// FilterWindowCount scans a once: it tallies the three regions of the
// closed window [lo, hi] and simultaneously writes the stable sequence of
// in-window elements into dst (out of place; dst must not alias a, and is
// grown as needed). It returns that sequence plus nLess (elements < lo)
// and nMid (elements in the window). The single fused pass is the hot
// loop of the fast randomized algorithm: the store is unconditional and
// the cursor advance branch-free, so unpredictable keep patterns cost no
// mispredictions, and the discard decision needs no second scan over
// cold memory in the common (window hit) case.
//
// The reported operation count is exactly what the three-way partition
// pair of PartitionRange charges for the same input (2n + g1 over all of
// a, then 2*g1 + g2 over the g1 elements above lo, with g2 the elements
// above hi) — the simulated cost model must not see the host-side
// restructuring. Requires lo <= hi.
func FilterWindowCount[K cmp.Ordered](dst, a []K, lo, hi K) (mid []K, nLess, nMid int, ops int64) {
	dst = grow(dst, len(a))
	c1, c2, c3, k := 0, 0, 0, 0
	for _, v := range a {
		i1, i2, i3 := 0, 0, 0
		if v < lo {
			i1 = 1
		}
		if v <= lo {
			i2 = 1
		}
		if v <= hi {
			i3 = 1
		}
		dst[k] = v
		k += i3 - i1
		c1 += i1
		c2 += i2
		c3 += i3
	}
	g1 := len(a) - c2
	g2 := len(a) - c3
	ops = int64(2*len(a)+g1) + int64(2*g1+g2)
	return dst[:k], c1, c3 - c1, ops
}

// FilterLessInto writes the stable sequence of elements < x into dst
// (out of place, grown as needed; must not alias a) and returns it. The
// movement cost is already priced into the count that preceded it, so
// filters charge nothing; see FilterWindowCount for the branch-free
// store discipline.
func FilterLessInto[K cmp.Ordered](dst, a []K, x K) []K {
	dst = grow(dst, len(a))
	k := 0
	for _, v := range a {
		inc := 0
		if v < x {
			inc = 1
		}
		dst[k] = v
		k += inc
	}
	return dst[:k]
}

// FilterGreaterInto writes the stable sequence of elements > x into dst;
// see FilterLessInto.
func FilterGreaterInto[K cmp.Ordered](dst, a []K, x K) []K {
	dst = grow(dst, len(a))
	k := 0
	for _, v := range a {
		inc := 0
		if v > x {
			inc = 1
		}
		dst[k] = v
		k += inc
	}
	return dst[:k]
}

// PartitionTwoInto scans a once and writes the stable sequences of
// elements < pivot into less and > pivot into gt (both out of place,
// grown as needed; neither may alias a), tallying lt and eq. Both streams
// use the unconditional-store, branch-free-advance discipline of
// FilterWindowCount, so one pass replaces the three-way partition the
// deterministic algorithms would otherwise pay for, at the same charged
// operation count (2 per element at or below the pivot, 3 per element
// above, exactly Partition3's pricing).
func PartitionTwoInto[K cmp.Ordered](less, gt, a []K, pivot K) (l, g []K, lt, eq int, ops int64) {
	less = grow(less, len(a))
	gt = grow(gt, len(a))
	c1, c2, kl, kg := 0, 0, 0, 0
	for _, v := range a {
		i1, i2 := 0, 0
		if v < pivot {
			i1 = 1
		}
		if v <= pivot {
			i2 = 1
		}
		less[kl] = v
		kl += i1
		gt[kg] = v
		kg += 1 - i2
		c1 += i1
		c2 += i2
	}
	gtN := len(a) - c2
	return less[:kl], gt[:kg], c1, c2 - c1, int64(2*len(a) + gtN)
}

// Quickselect returns the k-th smallest (0-based) element of a using the
// Floyd–Rivest SELECT algorithm, the randomized expected-O(n) method the
// paper's randomized algorithms build on. a is permuted in place.
func Quickselect[K cmp.Ordered](a []K, k int, rng *rand.Rand) (K, int64) {
	if k < 0 || k >= len(a) {
		panic("seq: Quickselect rank out of range")
	}
	var ops int64
	floydRivest(a, 0, len(a)-1, k, rng, &ops)
	return a[k], ops
}

// floydRivest is the classic SELECT of Floyd & Rivest (CACM 1975),
// confining k into a small sampled window before partitioning. Operation
// counts accumulate in a register and flush to *ops once per partitioning
// pass, keeping the scan loops free of memory traffic.
func floydRivest[K cmp.Ordered](a []K, left, right, k int, rng *rand.Rand, ops *int64) {
	for right > left {
		if right-left > 600 {
			n := float64(right - left + 1)
			i := float64(k - left + 1)
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
			if i < n/2 {
				sd = -sd
			}
			newLeft := max(left, int(float64(k)-i*s/n+sd))
			newRight := min(right, int(float64(k)+(n-i)*s/n+sd))
			floydRivest(a, newLeft, newRight, k, rng, ops)
		}
		var o int64
		t := a[k]
		i, j := left, right
		a[left], a[k] = a[k], a[left]
		o += 2
		if a[right] > t {
			a[right], a[left] = a[left], a[right]
			o++
		}
		for i < j {
			a[i], a[j] = a[j], a[i]
			i++
			j--
			o++
			for a[i] < t {
				i++
				o++
			}
			for a[j] > t {
				j--
				o++
			}
		}
		if a[left] == t {
			a[left], a[j] = a[j], a[left]
		} else {
			j++
			a[j], a[right] = a[right], a[j]
		}
		o += 2
		*ops += o
		if j <= k {
			left = j + 1
		}
		if k <= j {
			right = j - 1
		}
	}
}

// SelectBFPRT returns the k-th smallest (0-based) element of a using the
// deterministic median-of-medians algorithm of Blum, Floyd, Pratt, Rivest
// and Tarjan, the worst-case O(n) method the paper's deterministic
// algorithms build on. a is permuted in place.
func SelectBFPRT[K cmp.Ordered](a []K, k int) (K, int64) {
	if k < 0 || k >= len(a) {
		panic("seq: SelectBFPRT rank out of range")
	}
	var ops int64
	for {
		n := len(a)
		if n <= insertionCutoff {
			ops += InsertionSort(a)
			return a[k], ops
		}
		// Medians of groups of five, compacted to the front.
		g := 0
		for i := 0; i < n; i += 5 {
			j := min(i+5, n)
			ops += InsertionSort(a[i:j])
			m := i + (j-i-1)/2
			a[g], a[m] = a[m], a[g]
			g++
			ops++
		}
		mom, o := SelectBFPRT(a[:g], (g-1)/2)
		ops += o
		lt, eq, o2 := Partition3(a, mom)
		ops += o2
		switch {
		case k < lt:
			a = a[:lt]
		case k < lt+eq:
			return mom, ops
		default:
			a = a[lt+eq:]
			k -= lt + eq
		}
	}
}

// Median returns the element with rank ceil(n/2) (the paper's definition
// of the median) using the deterministic selection algorithm.
func Median[K cmp.Ordered](a []K) (K, int64) {
	if len(a) == 0 {
		panic("seq: Median of empty slice")
	}
	return SelectBFPRT(a, MedianIndex(len(a)))
}

// MedianRandomized is Median using Floyd–Rivest selection.
func MedianRandomized[K cmp.Ordered](a []K, rng *rand.Rand) (K, int64) {
	if len(a) == 0 {
		panic("seq: MedianRandomized of empty slice")
	}
	return Quickselect(a, MedianIndex(len(a)), rng)
}

// MedianIndex converts the paper's 1-based median rank ceil(n/2) into a
// 0-based index.
func MedianIndex(n int) int { return (n+1)/2 - 1 }

// WeightedMedian returns the weighted (lower) median of vals: the smallest
// value m such that the total weight of elements strictly below m is less
// than half the total and the weight of elements up to and including m is
// at least half. Used for the bucket-based algorithm's weighted median of
// local medians (Alg. 2 step 3). Zero-weight entries are ignored; total
// weight must be positive. vals and weights are not modified.
func WeightedMedian[K cmp.Ordered](vals []K, weights []int64) (K, int64) {
	if len(vals) != len(weights) {
		panic("seq: WeightedMedian length mismatch")
	}
	type wv struct {
		v K
		w int64
	}
	var total int64
	items := make([]wv, 0, len(vals))
	for i, v := range vals {
		if weights[i] < 0 {
			panic("seq: WeightedMedian negative weight")
		}
		if weights[i] == 0 {
			continue
		}
		items = append(items, wv{v, weights[i]})
		total += weights[i]
	}
	if total <= 0 {
		panic("seq: WeightedMedian requires positive total weight")
	}
	ops := sortFunc(items, func(x, y wv) bool { return x.v < y.v })
	half := (total + 1) / 2 // weight of the lower median position
	var run int64
	for _, it := range items {
		run += it.w
		ops++
		if run >= half {
			return it.v, ops
		}
	}
	return items[len(items)-1].v, ops // unreachable; run reaches total
}

// LowerBound returns the first index i with a[i] >= x in sorted a, and the
// number of comparisons made.
func LowerBound[K cmp.Ordered](a []K, x K) (int, int64) {
	lo, hi := 0, len(a)
	var ops int64
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ops++
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, ops
}

// UpperBound returns the first index i with a[i] > x in sorted a, and the
// number of comparisons made.
func UpperBound[K cmp.Ordered](a []K, x K) (int, int64) {
	lo, hi := 0, len(a)
	var ops int64
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ops++
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, ops
}

// PseudoMedian returns a deterministic near-median of a: the iterated
// median-of-medians-of-five pivot (repeatedly replace the array by the
// medians of its groups of five until few elements remain, then take the
// exact middle). Unlike full BFPRT it does not recurse to certify a
// constant rank guarantee, so it costs only ~3n operations; callers use
// it where split quality affects performance but never correctness (the
// bucket preprocessing). a is not modified.
func PseudoMedian[K cmp.Ordered](a []K) (K, int64) {
	if len(a) == 0 {
		panic("seq: PseudoMedian of empty slice")
	}
	var ops int64
	buf := make([]K, len(a))
	copy(buf, a)
	ops += int64(len(a))
	for len(buf) > insertionCutoff {
		g := 0
		for i := 0; i < len(buf); i += 5 {
			j := min(i+5, len(buf))
			ops += InsertionSort(buf[i:j])
			buf[g] = buf[i+(j-i-1)/2]
			g++
			ops++
		}
		buf = buf[:g]
	}
	ops += InsertionSort(buf)
	return buf[(len(buf)-1)/2], ops
}

// SampleWithReplacement draws m elements of a uniformly at random (with
// replacement). It never fails for m > len(a); duplicates simply repeat.
func SampleWithReplacement[K cmp.Ordered](a []K, m int, rng *rand.Rand) ([]K, int64) {
	if m < 0 {
		panic("seq: negative sample size")
	}
	return SampleAppend(make([]K, 0, m), a, m, rng)
}

// SampleAppend is SampleWithReplacement writing into dst (truncated, then
// grown as needed), so steady-state callers sample without allocating.
// The random draws are identical to SampleWithReplacement's.
func SampleAppend[K cmp.Ordered](dst, a []K, m int, rng *rand.Rand) ([]K, int64) {
	if m < 0 {
		panic("seq: negative sample size")
	}
	dst = dst[:0]
	for i := 0; i < m; i++ {
		dst = append(dst, a[rng.IntN(len(a))])
	}
	return dst, int64(m)
}
