package seq

import (
	"math/rand/v2"
	"slices"
	"testing"
)

func benchData(n int) []int64 {
	r := rand.New(rand.NewPCG(11, 12))
	a := make([]int64, n)
	for i := range a {
		a[i] = r.Int64N(1 << 40)
	}
	return a
}

func BenchmarkQuickselect(b *testing.B) {
	a := benchData(1 << 20)
	r := rand.New(rand.NewPCG(1, 1))
	buf := make([]int64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		Quickselect(buf, len(buf)/2, r)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkSelectBFPRT(b *testing.B) {
	a := benchData(1 << 20)
	buf := make([]int64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		SelectBFPRT(buf, len(buf)/2)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkPseudoMedian(b *testing.B) {
	a := benchData(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PseudoMedian(a)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkPartition3(b *testing.B) {
	a := benchData(1 << 20)
	pivot := a[0]
	buf := make([]int64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		Partition3(buf, pivot)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkSortIntro(b *testing.B) {
	a := benchData(1 << 18)
	buf := make([]int64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		Sort(buf)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkSortStdlibBaseline(b *testing.B) {
	a := benchData(1 << 18)
	buf := make([]int64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		slices.Sort(buf)
	}
	b.SetBytes(int64(len(a) * 8))
}

func BenchmarkMergeK(b *testing.B) {
	const runs = 16
	const per = 1 << 14
	data := make([][]int64, runs)
	for i := range data {
		data[i] = benchData(per)
		slices.Sort(data[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeK(data)
	}
	b.SetBytes(runs * per * 8)
}

func BenchmarkWeightedMedian(b *testing.B) {
	vals := benchData(4096)
	weights := make([]int64, len(vals))
	for i := range weights {
		weights[i] = int64(i%7 + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WeightedMedian(vals, weights)
	}
}
