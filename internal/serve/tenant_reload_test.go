package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
)

// TestTenantReload pins the dynamic tenant configuration contract end
// to end over the admin endpoint: token rotation and budget changes
// apply without a restart, dropped tenants lose access immediately,
// surviving tenants keep their ledger (resident bytes, dataset counts,
// request counters) across the swap, and a failing source or an empty
// list leaves the previous configuration serving.
func TestTenantReload(t *testing.T) {
	var mu sync.Mutex
	current := []serve.Tenant{
		{Name: "acme", Token: "tok-a", MaxResidentBytes: 4096},
		{Name: "beta", Token: "tok-b"},
	}
	var srcErr error
	source := func() ([]serve.Tenant, error) {
		mu.Lock()
		defer mu.Unlock()
		if srcErr != nil {
			return nil, srcErr
		}
		return append([]serve.Tenant(nil), current...), nil
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{
		Tenants:      current,
		TenantSource: source,
	})
	defer d.close()
	ctx := context.Background()

	acme := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-a"))
	beta := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-b"))
	if _, err := acme.Dataset("held").Upload(ctx, [][]int64{{9, 4}, {7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.Median(ctx, [][]int64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	pre := d.server.Stats().Tenants["acme"]
	if pre.ResidentBytes == 0 || pre.Datasets != 1 {
		t.Fatalf("pre-reload acme ledger: %+v", pre)
	}

	// Rotate: acme gets a new token and a bigger budget, beta is
	// dropped, gamma appears. The old token authenticates the reload
	// itself — it is still live when the POST arrives.
	mu.Lock()
	current = []serve.Tenant{
		{Name: "acme", Token: "tok-a2", MaxResidentBytes: 8192},
		{Name: "gamma", Token: "tok-g"},
	}
	mu.Unlock()
	res, err := acme.ReloadTenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 2 {
		t.Fatalf("reload applied %d tenants, want 2", res.Tenants)
	}

	// Old credentials die at once; the rotated and new ones work.
	if _, err := acme.Median(ctx, [][]int64{{1}}); !errors.Is(err, parselclient.ErrUnknownTenant) {
		t.Fatalf("rotated-away token: %v, want ErrUnknownTenant", err)
	}
	if _, err := beta.Median(ctx, [][]int64{{1}}); !errors.Is(err, parselclient.ErrUnknownTenant) {
		t.Fatalf("dropped tenant token: %v, want ErrUnknownTenant", err)
	}
	acme2 := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-a2"))
	gamma := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-g"))
	if _, err := gamma.Median(ctx, [][]int64{{5, 2}}); err != nil {
		t.Fatal(err)
	}

	// acme's resident dataset and its ledger crossed the reload intact,
	// under the new budget.
	info, err := acme2.Dataset("held").Info(ctx)
	if err != nil || info.Tenant != "acme" {
		t.Fatalf("resident dataset after reload: %+v, %v", info, err)
	}
	post := d.server.Stats().Tenants
	if a := post["acme"]; a.ResidentBytes != pre.ResidentBytes || a.Datasets != pre.Datasets ||
		a.Requests < pre.Requests || a.MaxResidentBytes != 8192 {
		t.Fatalf("acme ledger across reload: %+v, want bytes/datasets of %+v under budget 8192", a, pre)
	}
	if _, ok := post["beta"]; ok {
		t.Fatal("dropped tenant beta still in stats")
	}
	if g, ok := post["gamma"]; !ok || g.Datasets != 0 {
		t.Fatalf("gamma after reload: %+v", post["gamma"])
	}

	// A source failure answers 500 internal and keeps the previous
	// configuration serving.
	mu.Lock()
	srcErr = errors.New("tenants file vanished")
	mu.Unlock()
	var apiErr *parselclient.APIError
	if _, err := acme2.ReloadTenants(ctx); !errors.As(err, &apiErr) ||
		apiErr.Status != 500 || apiErr.Code != parselclient.CodeInternal {
		t.Fatalf("reload with broken source: %v, want 500 internal", err)
	}
	if _, err := acme2.Median(ctx, [][]int64{{3}}); err != nil {
		t.Fatalf("previous configuration stopped serving after failed reload: %v", err)
	}

	// An empty list is refused at the API level — a blank file must not
	// lock every tenant out.
	if err := d.server.ReloadTenants(nil); err == nil {
		t.Fatal("ReloadTenants(nil) accepted")
	}

	// GET is not a reload.
	status, eb := rawRequest(t, d, "GET", "/v1/admin/tenants/reload", "",
		map[string]string{"Authorization": "Bearer tok-a2"})
	if status != 405 || eb.Error.Code != parselclient.CodeMethodNotAllowed {
		t.Fatalf("GET reload: %d %+v", status, eb)
	}
}

// TestTenantReloadUnavailable pins the endpoint's absence contracts: a
// daemon without a TenantSource has no reload endpoint at all, and a
// tenantless daemon refuses ReloadTenants — tenancy cannot be toggled
// on at runtime.
func TestTenantReloadUnavailable(t *testing.T) {
	// Tenants but no source: 404, like any unknown path.
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{
		Tenants: []serve.Tenant{{Name: "acme", Token: "tok-a"}},
	})
	defer d.close()
	c := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-a"))
	var apiErr *parselclient.APIError
	if _, err := c.ReloadTenants(context.Background()); !errors.As(err, &apiErr) ||
		apiErr.Status != 404 || apiErr.Code != parselclient.CodeNotFound {
		t.Fatalf("reload without TenantSource: %v, want 404 not_found", err)
	}

	// No tenants at all: the server API refuses to begin authenticating
	// mid-life.
	d2 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d2.close()
	if err := d2.server.ReloadTenants([]serve.Tenant{{Name: "x", Token: "t"}}); err == nil {
		t.Fatal("tenantless daemon accepted a tenant reload")
	}
}
