package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsel"
	"parsel/internal/obs"
	"parsel/internal/serve"
	"parsel/parselclient"
	"parsel/parselclient/cluster"
)

// countingTransport counts every HTTP round trip the client makes, so
// a test can compare the daemon's request accounting against ground
// truth.
type countingTransport struct {
	rt http.RoundTripper
	n  atomic.Int64
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.n.Add(1)
	return c.rt.RoundTrip(r)
}

// syncBuf is a goroutine-safe log sink for serve.Options.Logger.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrape pulls and strictly parses one /metrics exposition.
func scrape(t *testing.T, base string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("scrape: Content-Type %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	sc, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("scrape: invalid exposition: %v\n%s", err, body)
	}
	return sc
}

// mustValue fetches one sample or fails naming the missing series.
func mustValue(t *testing.T, sc *obs.Scrape, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := sc.Value(name, labels)
	if !ok {
		t.Fatalf("series %s missing", obs.SeriesKey(name, labels))
	}
	return v
}

// TestObsMetricsGolden replays part of the differential catalogue
// through a daemon and pins the /metrics exposition against /v1/stats:
// the latency histogram (count, sum, every cumulative bucket, +Inf)
// must agree exactly — the two endpoints render the same instrument —
// and parsel_requests_total must sum to exactly the requests the
// client's transport saw go out.
func TestObsMetricsGolden(t *testing.T) {
	shapes := e2eShapes()[:6]
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
	defer d.close()
	ct := &countingTransport{rt: d.ts.Client().Transport}
	client := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(&http.Client{Transport: ct}))

	ctx := context.Background()
	for _, shape := range shapes {
		if _, err := client.Median(ctx, shape.shards); err != nil {
			t.Fatalf("%s median: %v", shape.name, err)
		}
		rd := client.Dataset(dsID(shape.name))
		if _, err := rd.Upload(ctx, shape.shards); err != nil {
			t.Fatalf("%s upload: %v", shape.name, err)
		}
		if _, err := rd.Median(ctx); err != nil {
			t.Fatalf("%s dataset median: %v", shape.name, err)
		}
		if _, err := rd.Delete(ctx); err != nil {
			t.Fatalf("%s delete: %v", shape.name, err)
		}
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	issued := ct.n.Load()

	sc := scrape(t, d.ts.URL)

	// Latency histogram: /metrics and /v1/stats render the same
	// backing instrument, so they agree exactly — count, sum and every
	// cumulative bucket.
	const hist = "parsel_query_duration_seconds"
	if got := mustValue(t, sc, hist+"_count", nil); got != float64(st.Latency.Count) {
		t.Errorf("%s_count = %v, stats says %d", hist, got, st.Latency.Count)
	}
	if got := mustValue(t, sc, hist+"_sum", nil); got != st.Latency.SumSeconds {
		t.Errorf("%s_sum = %v, stats says %v", hist, got, st.Latency.SumSeconds)
	}
	for _, b := range st.Latency.Buckets {
		le := strconv.FormatFloat(b.LE, 'g', -1, 64)
		if got := mustValue(t, sc, hist+"_bucket", map[string]string{"le": le}); got != float64(b.Count) {
			t.Errorf("%s_bucket{le=%q} = %v, stats says %d", hist, le, got, b.Count)
		}
	}
	if got := mustValue(t, sc, hist+"_bucket", map[string]string{"le": "+Inf"}); got != float64(st.Latency.Count) {
		t.Errorf("%s_bucket{le=+Inf} = %v, want %d", hist, got, st.Latency.Count)
	}

	// Scrape-time mirrors agree with the stats snapshot (nothing moved
	// between the two reads: stats and metrics requests do not touch
	// these counters).
	for name, want := range map[string]float64{
		"parsel_server_ok_total":        float64(st.Server.OK),
		"parsel_server_rejected_total":  float64(st.Server.Rejected),
		"parsel_pool_creates_total":     float64(st.Pool.Creates),
		"parsel_dataset_uploads_total":  float64(st.Datasets.Uploads),
		"parsel_dataset_deletes_total":  float64(st.Datasets.Deletes),
		"parsel_dataset_queries_total":  float64(st.Datasets.Queries),
		"parsel_datasets":               float64(st.Datasets.Count),
		"parsel_dataset_resident_bytes": float64(st.Datasets.ResidentBytes),
	} {
		if got := mustValue(t, sc, name, nil); got != want {
			t.Errorf("%s = %v, stats says %v", name, got, want)
		}
	}

	// Every request the client sent is in parsel_requests_total —
	// including the /v1/stats call — and nothing else is: the sum over
	// all series equals the transport's ground truth. (The scrape's own
	// GET finishes after rendering, so it is not in its own exposition.)
	var total, ok200 float64
	for key, v := range sc.Samples {
		if strings.HasPrefix(key, "parsel_requests_total{") {
			total += v
			if strings.Contains(key, `code="200"`) {
				ok200 += v
			}
		}
	}
	if total != float64(issued) {
		t.Errorf("sum(parsel_requests_total) = %v, transport issued %d", total, issued)
	}
	if ok200 != total {
		t.Errorf("clean replay has %v/%v requests with code 200", ok200, total)
	}
	// The per-endpoint breakdown: dataset ids are collapsed to {id}.
	wantSeries := map[string]float64{
		`parsel_requests_total{code="200",endpoint="/v1/median",kind="int64"}`:              float64(len(shapes)),
		`parsel_requests_total{code="200",endpoint="/v1/datasets/{id}",kind="none"}`:        float64(2 * len(shapes)), // PUT + DELETE
		`parsel_requests_total{code="200",endpoint="/v1/datasets/{id}/query",kind="int64"}`: float64(len(shapes)),
		`parsel_requests_total{code="200",endpoint="/v1/stats",kind="none"}`:                1,
	}
	for key, want := range wantSeries {
		if got := sc.Samples[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}

	// Stage histograms cover exactly the successful queries of the
	// clean replay, one observation per stage per query.
	for _, stage := range []string{"queue", "checkout", "execute", "encode"} {
		labels := map[string]string{"stage": stage}
		if got := mustValue(t, sc, "parsel_query_stage_seconds_count", labels); got != float64(st.Latency.Count) {
			t.Errorf("stage %s count = %v, want %d", stage, got, st.Latency.Count)
		}
	}
}

// TestObsRequestID pins the request-correlation contract on one
// daemon: a caller-supplied X-Parsel-Request-Id is echoed on the
// response, the response carries the stage-timing header, and the id
// appears in the daemon's structured access log.
func TestObsRequestID(t *testing.T) {
	var buf syncBuf
	logger, err := obs.NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{Logger: logger})
	defer d.close()

	const id = "feedface00000001"
	req, err := http.NewRequest(http.MethodPost, d.ts.URL+"/v1/median",
		strings.NewReader(`{"shards": [[9,1,5],[3,7,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("median: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.RequestIDHeader); got != id {
		t.Errorf("response request id = %q, want the caller's %q", got, id)
	}
	stages := resp.Header.Get(serve.StagesHeader)
	if !regexp.MustCompile(`^queue_ns=\d+;checkout_ns=\d+;execute_ns=\d+$`).MatchString(stages) {
		t.Errorf("stage header %q malformed", stages)
	}
	if !strings.Contains(buf.String(), id) {
		t.Errorf("request id %s not in the structured log:\n%s", id, buf.String())
	}

	// A request without the header gets a generated id, echoed back.
	resp2, err := http.Post(d.ts.URL+"/v1/median", "application/json",
		strings.NewReader(`{"shards": [[9,1,5],[3,7,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if gen := resp2.Header.Get(serve.RequestIDHeader); len(gen) != 16 || gen == id {
		t.Errorf("generated request id %q, want 16 fresh hex chars", gen)
	}
}

// TestObsClusterRequestID is the kill-one-of-3 correlation test: one
// client-chosen request id, stamped into the routing context, shows up
// in the structured logs of the primary (pre-kill) and of the failover
// node serving the same dataset after the primary dies — the id
// survives client retries and router failover unchanged.
func TestObsClusterRequestID(t *testing.T) {
	const n = 3
	logs := make(map[string]*syncBuf, n)
	daemons := make(map[string]*daemon, n)
	var urls []string
	for i := 0; i < n; i++ {
		buf := &syncBuf{}
		logger, err := obs.NewLogger(buf, "text", "debug")
		if err != nil {
			t.Fatal(err)
		}
		d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
			serve.Options{Logger: logger})
		t.Cleanup(d.close)
		logs[d.ts.URL] = buf
		daemons[d.ts.URL] = d
		urls = append(urls, d.ts.URL)
	}
	r, err := cluster.New(cluster.Config{
		Nodes:            urls,
		Replicas:         2,
		RecoveryInterval: time.Hour,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	const dsName = "obs-failover"
	ds := cluster.DatasetOf[int64](r, dsName)
	ctx := context.Background()
	if _, err := ds.Upload(ctx, [][]int64{{9, 1, 5}, {3, 7, 2}, {8, 8}}); err != nil {
		t.Fatal(err)
	}
	placed := r.Place(dsName)
	primary, replica := placed[0], placed[1]

	const reqID = "cafe0123beefcafe"
	qctx := parselclient.WithRequestID(ctx, reqID)
	if _, err := ds.Median(qctx); err != nil {
		t.Fatalf("healthy median: %v", err)
	}
	if !strings.Contains(logs[primary].String(), reqID) {
		t.Fatalf("request id %s not in the primary's (%s) log", reqID, primary)
	}
	if strings.Contains(logs[replica].String(), reqID) {
		t.Fatalf("healthy query leaked to the replica %s", replica)
	}

	// Kill the primary mid-life and re-issue the same logical request:
	// the router fails over, and the same id lands in the replica's log.
	daemons[primary].close()
	if _, err := ds.Median(qctx); err != nil {
		t.Fatalf("failover median: %v", err)
	}
	if !strings.Contains(logs[replica].String(), reqID) {
		t.Fatalf("request id %s not in the failover node's (%s) log", reqID, replica)
	}
	if st := r.Stats(); st.Failovers == 0 {
		t.Error("router recorded no failover")
	}
}

// TestObsScrapeStorm runs queries, /metrics scrapes and tenant reloads
// concurrently; under -race this is the telemetry layer's data-race
// harness, and every scrape must still be a valid exposition.
func TestObsScrapeStorm(t *testing.T) {
	tenants := []serve.Tenant{
		{Name: "acme", Token: "tok-a"},
		{Name: "beta", Token: "tok-b"},
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4},
		serve.Options{QueueDepth: 256, Tenants: tenants})
	defer d.close()
	client := parselclient.New(d.ts.URL,
		parselclient.WithHTTPClient(d.ts.Client()), parselclient.WithToken("tok-a"))
	ctx := context.Background()
	shards := [][]int64{{9, 1, 5, 4}, {3, 7, 2}, {8, 8, 0}}

	const (
		queryWorkers  = 4
		scrapeWorkers = 2
		rounds        = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := client.Median(ctx, shards); err != nil {
					t.Errorf("median: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < scrapeWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(d.ts.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("scrape read: %v", err)
					return
				}
				if _, err := obs.ParseText(body); err != nil {
					t.Errorf("scrape %d invalid: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			cfg := []serve.Tenant{
				{Name: "acme", Token: "tok-a"},
				{Name: "beta", Token: fmt.Sprintf("tok-b%d", i)},
			}
			if err := d.server.ReloadTenants(cfg); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	sc := scrape(t, d.ts.URL)
	want := float64(queryWorkers * rounds)
	if got := mustValue(t, sc, "parsel_query_duration_seconds_count", nil); got != want {
		t.Errorf("latency count after storm = %v, want %v", got, want)
	}
	if got := mustValue(t, sc, "parsel_tenant_requests_total",
		map[string]string{"tenant": "acme"}); got < want {
		t.Errorf("tenant request counter = %v, want >= %v", got, want)
	}
}

// TestObsScrapeSmoke is the CI smoke probe: one query, one scrape, a
// valid exposition carrying the core series.
func TestObsScrapeSmoke(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d.close()
	ctx := context.Background()
	if _, err := d.client.Median(ctx, [][]int64{{3, 1, 4}, {1, 5}}); err != nil {
		t.Fatal(err)
	}
	sc := scrape(t, d.ts.URL)
	if got := mustValue(t, sc, "parsel_query_duration_seconds_count", nil); got != 1 {
		t.Errorf("latency count = %v, want 1", got)
	}
	if got := mustValue(t, sc, "parsel_requests_total", map[string]string{
		"code": "200", "endpoint": "/v1/median", "kind": "int64"}); got != 1 {
		t.Errorf("requests_total median series = %v, want 1", got)
	}
	if got := mustValue(t, sc, "parsel_pool_max_machines", nil); got != 2 {
		t.Errorf("pool max machines gauge = %v, want 2", got)
	}
	// POST is refused: the exposition is read-only.
	resp, err := http.Post(d.ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}
