package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
)

// postRaw sends a raw body at the daemon and decodes the structured
// error, if any.
func postRaw(t *testing.T, d *daemon, path, body string) (int, parselclient.ErrorBody) {
	t.Helper()
	res, err := d.ts.Client().Post(d.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var eb parselclient.ErrorBody
	_ = json.NewDecoder(res.Body).Decode(&eb)
	return res.StatusCode, eb
}

// TestDaemonRequestValidation pins the HTTP status and wire code for
// every class of bad request — the contract the fuzzer checks at the
// decoder level, here verified through the full handler stack.
func TestDaemonRequestValidation(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1}, serve.Options{
		Limits: serve.Limits{MaxBodyBytes: 1 << 16, MaxProcs: 8, MaxRanks: 16},
	})
	defer d.close()

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   parselclient.Code
	}{
		{"bad json", "/v1/select", `{`, 400, parselclient.CodeBadJSON},
		{"json array body", "/v1/select", `[]`, 400, parselclient.CodeBadJSON},
		{"missing shards", "/v1/select", `{"rank": 1}`, 400, parselclient.CodeMissingField},
		{"missing rank", "/v1/select", `{"shards": [[1]]}`, 400, parselclient.CodeMissingField},
		{"missing q", "/v1/quantile", `{"shards": [[1]]}`, 400, parselclient.CodeMissingField},
		{"missing qs", "/v1/quantiles", `{"shards": [[1]]}`, 400, parselclient.CodeMissingField},
		{"missing ranks", "/v1/ranks", `{"shards": [[1]]}`, 400, parselclient.CodeMissingField},
		{"missing k", "/v1/topk", `{"shards": [[1]]}`, 400, parselclient.CodeMissingField},
		{"rank zero", "/v1/select", `{"shards": [[1]], "rank": 0}`, 400, parselclient.CodeRankRange},
		{"rank negative", "/v1/select", `{"shards": [[1]], "rank": -2}`, 400, parselclient.CodeRankRange},
		{"rank too big", "/v1/select", `{"shards": [[1]], "rank": 2}`, 400, parselclient.CodeRankRange},
		{"k negative", "/v1/topk", `{"shards": [[1]], "k": -1}`, 400, parselclient.CodeRankRange},
		{"q above 1", "/v1/quantile", `{"shards": [[1]], "q": 1.5}`, 400, parselclient.CodeBadQuantile},
		{"q huge literal", "/v1/quantile", `{"shards": [[1]], "q": 1e999}`, 400, parselclient.CodeBadJSON},
		{"qs out of range", "/v1/quantiles", `{"shards": [[1]], "qs": [0.5, -0.5]}`, 400, parselclient.CodeBadQuantile},
		{"no shards", "/v1/select", `{"shards": [], "rank": 1}`, 400, parselclient.CodeNoShards},
		{"empty population", "/v1/select", `{"shards": [[],[]], "rank": 1}`, 400, parselclient.CodeNoData},
		{"too many shards", "/v1/median", `{"shards": [[1],[1],[1],[1],[1],[1],[1],[1],[1]]}`, 400, parselclient.CodeLimitExceeded},
		{"too many ranks", "/v1/ranks", `{"shards": [[1]], "ranks": [` + strings.Repeat("1,", 16) + `1]}`, 400, parselclient.CodeLimitExceeded},
		{"negative timeout", "/v1/median", `{"shards": [[1]], "timeout_ms": -1}`, 400, parselclient.CodeLimitExceeded},
		{"overflowing timeout", "/v1/median", `{"shards": [[1]], "timeout_ms": 9300000000000}`, 400, parselclient.CodeLimitExceeded},
		{"unknown endpoint", "/v1/nope", `{}`, 404, parselclient.CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := postRaw(t, d, tc.path, tc.body)
			if status != tc.status || eb.Error.Code != tc.code {
				t.Errorf("%s %s: got %d %q, want %d %q",
					tc.path, tc.body, status, eb.Error.Code, tc.status, tc.code)
			}
			if status >= 400 && eb.Error.Message == "" {
				t.Errorf("%s: error without message", tc.name)
			}
		})
	}

	// Oversized body → 413 too_large.
	big := bytes.Repeat([]byte("7,"), 1<<16)
	body := `{"shards": [[` + string(big[:len(big)-1]) + `]], "rank": 1}`
	if status, eb := postRaw(t, d, "/v1/select", body); status != 413 || eb.Error.Code != parselclient.CodeTooLarge {
		t.Errorf("oversized body: %d %q, want 413 too_large", status, eb.Error.Code)
	}

	// Wrong method → 405 with Allow.
	res, err := d.ts.Client().Get(d.ts.URL + "/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 || res.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET on query endpoint: %d Allow=%q", res.StatusCode, res.Header.Get("Allow"))
	}

	// The client maps validation codes back to the library's typed
	// errors.
	if _, err := d.client.Select(context.Background(), [][]int64{{1}}, 99); !errors.Is(err, parsel.ErrRankRange) {
		t.Errorf("rank_range over the wire: %v", err)
	}
	if _, err := d.client.Quantile(context.Background(), [][]int64{{1}}, 2); !errors.Is(err, parsel.ErrBadQuantile) {
		t.Errorf("bad_quantile over the wire: %v", err)
	}

	// Validation failures must not poison the daemon: a good query
	// still works.
	res2, err := d.client.Median(context.Background(), [][]int64{{3, 1}, {2}})
	if err != nil || res2.Value != 2 {
		t.Errorf("median after error storm: %v %v", res2.Value, err)
	}
}

// TestServeOptionValidation pins construction-time rejection of
// nonsense knobs: a negative queue depth or timeout must be a clean
// error from New, not a panic or a silently-crippled server.
func TestServeOptionValidation(t *testing.T) {
	pool, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := serve.New(serve.Options{}); err == nil {
		t.Error("New without a pool succeeded")
	}
	if _, err := serve.New(serve.Options{Pool: pool, QueueDepth: -5}); err == nil {
		t.Error("New with negative QueueDepth succeeded")
	}
	if _, err := serve.New(serve.Options{Pool: pool, DefaultTimeout: -time.Second}); err == nil {
		t.Error("New with negative DefaultTimeout succeeded")
	}
	if _, err := serve.New(serve.Options{Pool: pool, Limits: serve.Limits{MaxProcs: -1}}); err == nil {
		t.Error("New with negative MaxProcs succeeded")
	}
	if _, err := serve.New(serve.Options{Pool: pool}); err != nil {
		t.Errorf("New with defaults: %v", err)
	}
}

// TestClientNilContext pins the client's nil-context tolerance: the
// Pool methods document nil as "wait forever", and the HTTP client must
// honor the same convention instead of panicking.
func TestClientNilContext(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1}, serve.Options{})
	defer d.close()
	res, err := d.client.Median(nil, [][]int64{{3, 1}, {2}})
	if err != nil || res.Value != 2 {
		t.Errorf("nil-context Median = %v, %v", res.Value, err)
	}
	if err := d.client.Health(nil); err != nil {
		t.Errorf("nil-context Health: %v", err)
	}
	if _, err := d.client.Stats(nil); err != nil {
		t.Errorf("nil-context Stats: %v", err)
	}
}

// TestDaemonTopKZero pins the k=0 edge across the wire: an empty JSON
// array, not null.
func TestDaemonTopKZero(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1}, serve.Options{})
	defer d.close()
	vals, _, err := d.client.TopK(context.Background(), [][]int64{{5, 2}, {8}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vals == nil || len(vals) != 0 {
		t.Errorf("topk k=0 = %#v, want empty non-nil slice", vals)
	}
}
