package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsel"
	"parsel/internal/snapshot"
	"parsel/parselclient"
)

// The resident-dataset registry: upload once, query many. An upload
// (PUT /v1/datasets/{id}) ships the shards a single time into a
// parsel.Dataset — resident per-processor storage pinned to the upload's
// machine shape — and every later query (POST /v1/datasets/{id}/query)
// carries parameters only, checking an idle machine of matching shape
// out of the shared pool. Responses are bit-identical to posting the
// same shards per query.
//
// Two resource bounds keep resident state safe to expose:
//
//   - A resident-bytes budget (Options.MaxResidentBytes, plus an entry
//     count cap MaxDatasets): an upload that would exceed it is refused
//     with 413 "resident_budget" by a constant-time counter comparison —
//     live datasets are never evicted to make room.
//   - A TTL (Options.DatasetTTL): uploads and queries reset a dataset's
//     expiry; one left idle past the TTL is evicted by the lazy sweep
//     that runs on every registry touch (uploads, queries, deletes,
//     stats). Eviction is pure registry work — it never needs a machine,
//     so a wedged or saturated pool cannot pin expired memory.
//
// A query in flight when its dataset is deleted or evicted completes
// normally (the snapshot is reclaimed after the last reader returns);
// later queries get 404 "dataset_not_found".

// dsEntry is one resident dataset with its accounting state.
type dsEntry struct {
	// kind names the dataset's key kind (parselclient.KeyKind*); ds is
	// the matching *parsel.Dataset[K], dispatched by type switch at the
	// query sites. procs and n cache the dataset's shape so registry
	// bookkeeping never needs the typed handle.
	kind  string
	ds    any
	procs int
	n     int64
	// tenant names the tenant whose ledger holds this dataset's bytes;
	// empty on a daemon without tenants.
	tenant  string
	bytes   int64
	expires time.Time
	// gen is the upload generation (monotonic across the registry); the
	// snapshot store uses it to skip data rewrites and ignore stale
	// background persists.
	gen int64
	// persistedExpires is the TTL deadline last written to the snapshot
	// store. Query-driven TTL refreshes re-persist (metadata-only) once
	// the in-memory deadline has advanced at least half a TTL past it,
	// so a hard kill costs an actively-queried dataset at most half its
	// TTL of freshness — not the whole deadline — without an fsync per
	// query.
	persistedExpires time.Time
	// restored marks a dataset recovered from a snapshot at startup
	// rather than uploaded in this process's lifetime.
	restored bool
}

// closeDS releases the entry's typed dataset.
func (e *dsEntry) closeDS() {
	e.ds.(interface{ Close() }).Close()
}

// info shapes the entry's wire description. The key kind travels only
// for non-int64 datasets, keeping the historical wire byte-identical.
func (e *dsEntry) info(id string, now time.Time) parselclient.DatasetInfo {
	kind := e.kind
	if kind == parselclient.KeyKindInt64 {
		kind = ""
	}
	return parselclient.DatasetInfo{
		ID:          id,
		KeyKind:     kind,
		Tenant:      e.tenant,
		Procs:       e.procs,
		N:           e.n,
		Bytes:       e.bytes,
		ExpiresInMS: e.expires.Sub(now).Milliseconds(),
		Restored:    e.restored,
	}
}

// tenantLedger resolves a tenant name to its live ledger; nil for the
// empty name, an unconfigured name (a snapshot from a tenant since
// removed), or a daemon without tenants. Caller holds dsMu.
func (s *Server) tenantLedger(name string) *tenantEntry {
	if name == "" || s.tenantsByName == nil {
		return nil
	}
	return s.tenantsByName[name]
}

// dropLocked removes an entry from the ledger (global and per-tenant
// bytes and counts) without closing its dataset. Caller holds dsMu.
func (s *Server) dropLocked(id string, e *dsEntry) {
	delete(s.datasets, id)
	s.dsBytes -= e.bytes
	if te := s.tenantLedger(e.tenant); te != nil {
		te.bytes -= e.bytes
		te.datasets--
	}
}

// sweepLocked evicts every dataset whose TTL has lapsed. Caller holds
// dsMu. Closing the evicted datasets is a flag write (in-flight queries
// complete and the runtime reclaims the snapshots), so the sweep is
// cheap enough to run on every registry touch.
func (s *Server) sweepLocked(now time.Time) {
	for id, e := range s.datasets {
		if now.Before(e.expires) {
			continue
		}
		s.dropLocked(id, e)
		s.dstats.Expired++
		e.closeDS()
		s.markDirty(id) // the snapshotter removes the evicted id's file
	}
}

// handleDatasets routes /v1/datasets/{id}[/query] by path shape and
// method. Registered under the "/v1/datasets/" prefix.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	id, op, _ := strings.Cut(rest, "/")
	if err := checkDatasetID(id); err != nil {
		// A malformed id is a routing mistake, reported like 404/405:
		// outside the request-accounting counters.
		pe := err.(*ParseError)
		writeError(w, http.StatusBadRequest, pe.Code, pe.Msg)
		return
	}
	switch op {
	case "":
		switch r.Method {
		case http.MethodPut:
			s.handleDatasetUpload(w, r, id)
		case http.MethodGet:
			s.handleDatasetInfo(w, r, id)
		case http.MethodDelete:
			s.handleDatasetDelete(w, r, id)
		default:
			w.Header().Set("Allow", "PUT, GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
				"datasets are PUT (upload), GET (info) or DELETE requests")
		}
	case "query":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
				"dataset queries are POST requests")
			return
		}
		s.handleDatasetQuery(w, r, id)
	case "querymany":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
				"dataset queries are POST requests")
			return
		}
		s.handleDatasetQueryMany(w, r, id)
	case "snapshot":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
				"dataset snapshots are GET requests")
			return
		}
		s.handleDatasetSnapshot(w, r, id)
	default:
		writeError(w, http.StatusNotFound, parselclient.CodeNotFound,
			fmt.Sprintf("no dataset operation %q", op))
	}
}

// admitOrReject takes an admission token, or writes the constant-time
// 429 and returns false. The caller must release() on true.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.admit <- struct{}{}:
		return func() { <-s.admit }, true
	default:
		s.countError(http.StatusTooManyRequests, parselclient.CodeQueueFull)
		s.logShed(r, http.StatusTooManyRequests, parselclient.CodeQueueFull,
			fmt.Sprintf("admission capacity exhausted (capacity %d)", cap(s.admit)))
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, parselclient.CodeQueueFull,
			fmt.Sprintf("admission capacity exhausted (%d requests in flight, capacity %d)",
				len(s.admit), cap(s.admit)))
		return nil, false
	}
}

// refuseIfDraining counts the request and writes the 503 if the daemon
// is draining; it returns true when the caller must stop.
func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	s.mu.Lock()
	s.srv.Requests++
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.countError(http.StatusServiceUnavailable, parselclient.CodeShuttingDown)
		writeError(w, http.StatusServiceUnavailable, parselclient.CodeShuttingDown,
			"daemon is draining")
	}
	return draining
}

// handleDatasetUpload serves PUT /v1/datasets/{id}: the upload-once
// half of the resident contract. The shards are parsed, checked against
// the resident-bytes budget (a constant-time counter comparison — no
// eviction of live data, no machine work), copied into resident
// storage, and registered under the id, replacing any previous dataset
// there.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request, id string) {
	if s.refuseIfDraining(w) {
		return
	}
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer release()

	// Declared-oversize bodies are refused before a byte is read.
	if r.ContentLength > s.opts.Limits.MaxBodyBytes {
		s.writeRequestError(w, parseErrf(parselclient.CodeTooLarge,
			"declared body of %d bytes exceeds %d", r.ContentLength, s.opts.Limits.MaxBodyBytes))
		return
	}
	if isFrameContentType(r.Header.Get("Content-Type")) {
		s.handleFrameUpload(w, r, id)
		return
	}
	body, err := readBody(w, r, s.opts.Limits.MaxBodyBytes)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	kind, err := sniffKeyKind(body, r.Header.Get(parselclient.KindHeader))
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	switch kind {
	case parselclient.KeyKindFloat64:
		runUpload[float64](s, w, r, id, body)
	case parselclient.KeyKindString:
		runUpload[string](s, w, r, id, body)
	default:
		runUpload[int64](s, w, r, id, body)
	}
}

// runUpload is the kind-typed tail of a JSON upload.
func runUpload[K parselclient.Key](s *Server, w http.ResponseWriter, r *http.Request, id string, body []byte) {
	up, err := ParseDatasetUploadOf[K](body, s.opts.Limits)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	tenant := tenantOf(r)
	need := residentBytes(up.Shards)
	replacing, ok := s.reserveUpload(w, r, id, tenant, need)
	if !ok {
		return
	}
	ds, err := poolOf[K](s).NewDataset(up.Shards)
	if err != nil {
		s.unwindUpload(id, tenant, need, replacing)
		s.writeQueryError(w, err)
		return
	}
	commitUpload(s, w, id, tenant, ds, need, replacing)
}

// handleFrameUpload serves a PUT whose Content-Type negotiated the
// binary frame encoding: the body is the snapshot dataset format,
// byte-identical to the daemon's durable snapshots, decoded by the
// same streaming path a warm restart uses. The prologue (magic,
// version, header) arrives before any key does, so the machine-shape
// check and the resident-bytes reservation happen up front; the keys
// then stream in bounded chunks straight into one resident backing
// array that RestoreDataset adopts without copying — the body is never
// materialized whole.
func (s *Server) handleFrameUpload(w http.ResponseWriter, r *http.Request, id string) {
	body := http.MaxBytesReader(w, r.Body, s.opts.Limits.MaxBodyBytes)
	dec, err := snapshot.NewStreamDecoder(bufio.NewReaderSize(body, 1<<16), s.opts.Limits.MaxBodyBytes)
	if err != nil {
		s.writeFrameUploadError(w, err)
		return
	}
	h := dec.Header()
	// The stream header's key type is authoritative for the kind; an
	// X-Parsel-Kind header, if sent, must agree.
	if want := r.Header.Get(parselclient.KindHeader); want != "" &&
		!strings.EqualFold(strings.TrimSpace(want), h.KeyType) {
		s.writeRequestError(w, parseErrf(parselclient.CodeBadKind,
			"%s header %q disagrees with the stream's key type %q",
			parselclient.KindHeader, want, h.KeyType))
		return
	}
	if h.Procs > s.opts.Limits.MaxProcs {
		s.writeRequestError(w, parseErrf(parselclient.CodeLimitExceeded,
			"%d shards, limit %d simulated processors", h.Procs, s.opts.Limits.MaxProcs))
		return
	}
	if h.KeyType == snapshot.KeyTypeFloat64 {
		runFrameUpload[float64](s, w, r, id, dec, h.N)
		return
	}
	runFrameUpload[int64](s, w, r, id, dec, h.N)
}

// runFrameUpload is the kind-typed tail of a binary upload: reserve
// against the header's declared size, stream the keys into resident
// backing, commit.
func runFrameUpload[K snapshot.FixedKey](s *Server, w http.ResponseWriter, r *http.Request, id string, dec *snapshot.StreamDecoder, n int64) {
	tenant := tenantOf(r)
	need := n * 8
	replacing, ok := s.reserveUpload(w, r, id, tenant, need)
	if !ok {
		return
	}
	shards, err := snapshot.ReadDataAs[K](dec)
	if err != nil {
		s.unwindUpload(id, tenant, need, replacing)
		s.writeFrameUploadError(w, err)
		return
	}
	ds, err := poolOf[K](s).RestoreDataset(shards)
	if err != nil {
		s.unwindUpload(id, tenant, need, replacing)
		s.writeQueryError(w, err)
		return
	}
	commitUpload(s, w, id, tenant, ds, need, replacing)
}

// writeFrameUploadError reports a binary-upload decode failure. The
// transport's byte-limit overrun keeps its 413 too_large verdict
// (retryable semantics identical to the JSON path); every actual
// decode failure — truncation, bit flip, version skew, wrong magic —
// is a deterministic 400 bad_frame that no retry can change.
func (s *Server) writeFrameUploadError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeRequestError(w, parseErrf(parselclient.CodeTooLarge,
			"body exceeds %d bytes", mbe.Limit))
		return
	}
	s.countError(http.StatusBadRequest, parselclient.CodeBadFrame)
	writeError(w, http.StatusBadRequest, parselclient.CodeBadFrame,
		fmt.Sprintf("decode binary upload: %v", err))
}

// reserveUpload runs the admission half of an upload against the
// registry: sweep, the constant-time budget and count checks, then the
// need-byte reservation. Admission is a counter comparison under the
// registry lock; the key copy or stream runs unlocked (a near-budget
// upload must not stall queries and stats for the duration), against a
// reservation that commitUpload or unwindUpload settles. A replaced
// dataset leaves the registry here, so during the copy the id reads as
// not-found — the same window a DELETE + re-upload sequence has — and
// queries in flight on the old snapshot complete normally. On false
// the refusal is already written.
func (s *Server) reserveUpload(w http.ResponseWriter, r *http.Request, id, tenant string, need int64) (replacing, ok bool) {
	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	prev, replacing := s.datasets[id]
	freed := int64(0)
	if replacing {
		freed = prev.bytes
	}
	if s.dsBytes-freed+need > s.opts.MaxResidentBytes {
		held := s.dsBytes
		s.dstats.Rejected++
		s.dsMu.Unlock()
		s.countError(http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget)
		s.logShed(r, http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget,
			fmt.Sprintf("dataset %q needs %d bytes, %d of %d held", id, need, held, s.opts.MaxResidentBytes))
		w.Header().Set("Retry-After", "1") // a delete or TTL eviction may free room
		writeError(w, http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget,
			fmt.Sprintf("dataset needs %d resident bytes; %d of the %d-byte budget are held (live data is never evicted to make room)",
				need, held, s.opts.MaxResidentBytes))
		return false, false
	}
	if !replacing && len(s.datasets)+1 > s.opts.MaxDatasets {
		s.dstats.Rejected++
		s.dsMu.Unlock()
		s.countError(http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget)
		s.logShed(r, http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget,
			fmt.Sprintf("daemon already holds %d datasets, the limit", s.opts.MaxDatasets))
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget,
			fmt.Sprintf("daemon already holds %d datasets, the limit", s.opts.MaxDatasets))
		return false, false
	}
	// The tenant's own slice of the budget, after the daemon-wide
	// checks: bytes freed by replacing count only when the replaced
	// dataset is charged to the same tenant.
	if te := s.tenantLedger(tenant); te != nil {
		tfreed, tcount := int64(0), te.datasets
		if replacing && prev.tenant == tenant {
			tfreed = prev.bytes
			tcount--
		}
		var refusal string
		switch {
		case te.cfg.MaxResidentBytes > 0 && te.bytes-tfreed+need > te.cfg.MaxResidentBytes:
			refusal = fmt.Sprintf("dataset needs %d resident bytes; tenant %q holds %d of its %d-byte budget",
				need, tenant, te.bytes, te.cfg.MaxResidentBytes)
		case te.cfg.MaxDatasets > 0 && tcount+1 > int64(te.cfg.MaxDatasets):
			refusal = fmt.Sprintf("tenant %q already holds %d datasets, its quota", tenant, te.cfg.MaxDatasets)
		}
		if refusal != "" {
			te.rejected++
			s.dstats.Rejected++
			s.dsMu.Unlock()
			s.countError(http.StatusRequestEntityTooLarge, parselclient.CodeTenantBudget)
			s.logShed(r, http.StatusRequestEntityTooLarge, parselclient.CodeTenantBudget, refusal)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusRequestEntityTooLarge, parselclient.CodeTenantBudget, refusal)
			return false, false
		}
	}
	if replacing {
		s.dropLocked(id, prev)
		s.dstats.Replaced++
	}
	s.dsBytes += need // the reservation
	if te := s.tenantLedger(tenant); te != nil {
		te.bytes += need
	}
	s.dsMu.Unlock()
	if replacing {
		prev.closeDS()
	}
	return replacing, true
}

// unwindUpload releases a reservation whose dataset never materialized
// (a decode fault mid-stream, a closed pool).
func (s *Server) unwindUpload(id, tenant string, need int64, replacing bool) {
	s.dsMu.Lock()
	s.dsBytes -= need
	if te := s.tenantLedger(tenant); te != nil {
		te.bytes -= need
	}
	s.dsMu.Unlock()
	if replacing {
		// The id's previous dataset left the registry at reservation
		// time; reconcile its snapshot with that.
		s.markDirty(id)
	}
}

// commitUpload installs ds under id against a need-byte reservation,
// reconciling the estimate with the dataset's true resident size, and
// answers the request.
func commitUpload[K parselclient.Key](s *Server, w http.ResponseWriter, id, tenant string, ds *parsel.Dataset[K], need int64, replacing bool) {
	te := func() *tenantEntry { return s.tenantLedger(tenant) } // resolved under dsMu
	s.dsMu.Lock()
	if cur, ok := s.datasets[id]; ok {
		// A concurrent upload of the same id committed during our copy:
		// last writer wins, exactly as serialized PUTs would end.
		s.dropLocked(id, cur)
		s.dstats.Replaced++
		cur.closeDS()
	} else if !replacing && len(s.datasets)+1 > s.opts.MaxDatasets {
		// Concurrent uploads of distinct new ids can pass the count
		// check together; the loser unwinds here (the bytes budget
		// cannot oversubscribe the same way — it is reserved up front).
		s.dsBytes -= need
		if t := te(); t != nil {
			t.bytes -= need
		}
		s.dstats.Rejected++
		s.dsMu.Unlock()
		ds.Close()
		s.countError(http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusRequestEntityTooLarge, parselclient.CodeResidentBudget,
			fmt.Sprintf("daemon already holds %d datasets, the limit", s.opts.MaxDatasets))
		return
	}
	if t := te(); t != nil && t.cfg.MaxDatasets > 0 && t.datasets+1 > int64(t.cfg.MaxDatasets) {
		// The same race, against the tenant's own quota.
		s.dsBytes -= need
		t.bytes -= need
		t.rejected++
		s.dstats.Rejected++
		s.dsMu.Unlock()
		ds.Close()
		s.countError(http.StatusRequestEntityTooLarge, parselclient.CodeTenantBudget)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusRequestEntityTooLarge, parselclient.CodeTenantBudget,
			fmt.Sprintf("tenant %q already holds %d datasets, its quota", tenant, t.cfg.MaxDatasets))
		return
	}
	now := s.now()
	e := &dsEntry{
		kind: parselclient.KeyKindOf[K](), ds: ds, procs: ds.Procs(), n: ds.N(),
		tenant: tenant, bytes: ds.Bytes(), expires: now.Add(s.opts.DatasetTTL),
		gen: s.snapGen.Add(1),
	}
	s.dsBytes += e.bytes - need // reconcile the estimate with the ledger's truth
	if t := te(); t != nil {
		t.bytes += e.bytes - need
		t.datasets++
	}
	s.datasets[id] = e
	s.dstats.Uploads++
	info := e.info(id, now)
	s.dsMu.Unlock()
	s.markDirty(id)

	s.mu.Lock()
	s.srv.OK++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// residentBytes is the admission-time estimate of what the shards will
// occupy once resident, kept in one place so the budget check and the
// ledger (parsel.Dataset.Bytes, reconciled at commit) cannot drift:
// n slots of K's in-memory size — 8 bytes for the fixed-width kinds,
// the 16-byte string header for strings (whose backing arrays the
// budget deliberately does not meter, matching Dataset.Bytes).
func residentBytes[K parselclient.Key](shards [][]K) int64 {
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	return n * int64(reflect.TypeFor[K]().Size())
}

// handleDatasetInfo serves GET /v1/datasets/{id}: the description
// without touching the TTL (probes must not keep a dataset alive).
func (s *Server) handleDatasetInfo(w http.ResponseWriter, r *http.Request, id string) {
	if s.refuseIfDraining(w) {
		return
	}
	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	e, ok := s.datasets[id]
	var info parselclient.DatasetInfo
	if ok {
		info = e.info(id, now)
	} else {
		s.dstats.NotFound++
	}
	s.dsMu.Unlock()
	if !ok {
		s.countError(http.StatusNotFound, parselclient.CodeDatasetNotFound)
		writeError(w, http.StatusNotFound, parselclient.CodeDatasetNotFound,
			fmt.Sprintf("no resident dataset %q", id))
		return
	}
	s.mu.Lock()
	s.srv.OK++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetDelete serves DELETE /v1/datasets/{id}: the dataset
// leaves the registry and its budget is freed immediately; queries in
// flight complete normally.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request, id string) {
	if s.refuseIfDraining(w) {
		return
	}
	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	e, ok := s.datasets[id]
	var info parselclient.DatasetInfo
	if ok {
		s.dropLocked(id, e)
		s.dstats.Deletes++
		info = e.info(id, now)
	} else {
		s.dstats.NotFound++
	}
	s.dsMu.Unlock()
	if !ok {
		s.countError(http.StatusNotFound, parselclient.CodeDatasetNotFound)
		writeError(w, http.StatusNotFound, parselclient.CodeDatasetNotFound,
			fmt.Sprintf("no resident dataset %q", id))
		return
	}
	e.closeDS()
	s.markDirty(id) // the snapshotter removes the deleted id's file
	s.mu.Lock()
	s.srv.OK++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetSnapshot serves GET /v1/datasets/{id}/snapshot: the
// resident dataset streamed out as the snapshot binary format — the
// exact bytes a frame upload of the same shards would carry, CRCs
// included — so a cluster router can replicate a dataset it did not
// upload (Dataset.View on this node, RestoreDataset on the receiver;
// the keys are never materialized a second time on either end). The
// export is TTL-neutral like Info: replication traffic must not keep
// an otherwise-idle dataset alive. String datasets have no snapshot
// encoding and answer 400 bad_kind — routers pin them to their
// primary or re-upload (the documented string-key caveat).
func (s *Server) handleDatasetSnapshot(w http.ResponseWriter, r *http.Request, id string) {
	if s.refuseIfDraining(w) {
		return
	}
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer release()

	// View runs under dsMu: an entry found in the registry cannot be
	// closed while the lock is held (sweeps, deletes and replacement
	// all remove it under this lock first), so the shard views stay
	// valid; they remain readable after release even if the dataset is
	// deleted mid-stream, like queries in flight.
	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	e, ok := s.datasets[id]
	var i64 [][]int64
	var f64 [][]float64
	var kind string
	var verr error
	if ok {
		kind = e.kind
		switch ds := e.ds.(type) {
		case *parsel.Dataset[int64]:
			i64, verr = ds.View()
		case *parsel.Dataset[float64]:
			f64, verr = ds.View()
		}
		if verr == nil && (i64 != nil || f64 != nil) {
			s.dstats.Exports++
		}
	} else {
		s.dstats.NotFound++
	}
	s.dsMu.Unlock()
	if !ok {
		s.countError(http.StatusNotFound, parselclient.CodeDatasetNotFound)
		writeError(w, http.StatusNotFound, parselclient.CodeDatasetNotFound,
			fmt.Sprintf("no resident dataset %q", id))
		return
	}
	if kind == parselclient.KeyKindString {
		s.writeRequestError(w, parseErrf(parselclient.CodeBadKind,
			"string datasets have no snapshot encoding; re-upload to replicate"))
		return
	}
	if verr != nil {
		s.writeQueryError(w, verr)
		return
	}
	s.mu.Lock()
	s.srv.OK++
	s.mu.Unlock()
	if f64 != nil {
		writeSnapshotOf(s, w, kind, f64)
		return
	}
	writeSnapshotOf(s, w, kind, i64)
}

// writeSnapshotOf streams one kind-typed snapshot export: exact
// Content-Length up front (EncodedSize), then the incremental
// CRC-chunked encoding — the dataset is never buffered whole.
func writeSnapshotOf[K snapshot.FixedKey](s *Server, w http.ResponseWriter, kind string, shards [][]K) {
	h := snapshot.Header{Options: s.optionsFP}
	w.Header().Set("Content-Type", parselclient.ContentTypeFrame)
	w.Header().Set("Content-Length", strconv.FormatInt(snapshot.EncodedSize(h, shards), 10))
	if kind != parselclient.KeyKindInt64 {
		w.Header().Set(parselclient.KindHeader, kind)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = snapshot.WriteTo(w, h, shards)
}

// handleDatasetQuery serves POST /v1/datasets/{id}/query: the
// query-many half of the resident contract. The body carries the query
// parameters only; the keys are already resident. A successful lookup
// resets the dataset's TTL.
func (s *Server) handleDatasetQuery(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	if s.refuseIfDraining(w) {
		return
	}
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer release()

	body, err := readBody(w, r, s.opts.Limits.MaxBodyBytes)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	q, ep, err := ParseDatasetQuery(body, s.opts.Limits)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}

	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	e, ok := s.datasets[id]
	if ok {
		e.expires = now.Add(s.opts.DatasetTTL)
		if s.snap != nil && e.expires.Sub(e.persistedExpires) >= s.opts.DatasetTTL/2 {
			s.markDirty(id) // metadata-only re-persist of the advanced TTL
		}
	} else {
		s.dstats.NotFound++
	}
	s.dsMu.Unlock()
	if !ok {
		s.countError(http.StatusNotFound, parselclient.CodeDatasetNotFound)
		writeError(w, http.StatusNotFound, parselclient.CodeDatasetNotFound,
			fmt.Sprintf("no resident dataset %q", id))
		return
	}

	if q.KeyKind != "" && q.KeyKind != e.kind {
		s.writeRequestError(w, parseErrf(parselclient.CodeBadKind,
			"dataset %q holds %s keys; the query asked for %s", id, e.kind, q.KeyKind))
		return
	}

	switch ds := e.ds.(type) {
	case *parsel.Dataset[float64]:
		finishDatasetQuery(s, w, r, ds, ep, q, start)
	case *parsel.Dataset[string]:
		finishDatasetQuery(s, w, r, ds, ep, q, start)
	default:
		finishDatasetQuery(s, w, r, e.ds.(*parsel.Dataset[int64]), ep, q, start)
	}
}

// finishDatasetQuery is the kind-typed tail of a single dataset query.
func finishDatasetQuery[K parselclient.Key](s *Server, w http.ResponseWriter, r *http.Request, ds *parsel.Dataset[K], ep Endpoint, q *parselclient.DatasetQuery, start time.Time) {
	ctx, cancel := s.admissionContext(r, q.TimeoutMS)
	defer cancel()
	tr := trackFrom(r.Context())
	if tr != nil {
		tr.kind = parselclient.KeyKindOf[K]()
		tr.markQueue()
		ctx = parsel.WithCheckoutObserver(ctx, tr.observeCheckout)
	}
	execStart := time.Now()
	resp, err := executeDatasetOf(ctx, ds, ep, q)
	if tr != nil {
		tr.exec = time.Since(execStart)
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}

	s.dsMu.Lock()
	s.dstats.Queries++
	s.dsMu.Unlock()
	s.observe(time.Since(start), resp.Report)
	if tr != nil {
		w.Header().Set(StagesHeader, tr.stagesValue())
	}
	writeResultOf(w, wantsFrame(r), resp)
}

// handleDatasetQueryMany serves POST /v1/datasets/{id}/querymany: a
// batch of independent queries against one resident dataset, answered
// in a single round trip under one admission token and one shared
// admission deadline. Items fan out across workers bounded by the
// pool's machine count (the same worker pattern as the library's batch
// entry points); per-item failures carry the same stable wire codes
// single queries map onto HTTP statuses, and one failing item never
// poisons the rest. Results align with the request.
func (s *Server) handleDatasetQueryMany(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	if s.refuseIfDraining(w) {
		return
	}
	release, ok := s.admitOrReject(w, r)
	if !ok {
		return
	}
	defer release()

	body, err := readBody(w, r, s.opts.Limits.MaxBodyBytes)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	queries, eps, timeoutMS, err := ParseDatasetQueryMany(body, s.opts.Limits)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}

	s.dsMu.Lock()
	now := s.now()
	s.sweepLocked(now)
	e, ok := s.datasets[id]
	if ok {
		e.expires = now.Add(s.opts.DatasetTTL)
		if s.snap != nil && e.expires.Sub(e.persistedExpires) >= s.opts.DatasetTTL/2 {
			s.markDirty(id) // metadata-only re-persist of the advanced TTL
		}
	} else {
		s.dstats.NotFound++
	}
	s.dsMu.Unlock()
	if !ok {
		s.countError(http.StatusNotFound, parselclient.CodeDatasetNotFound)
		writeError(w, http.StatusNotFound, parselclient.CodeDatasetNotFound,
			fmt.Sprintf("no resident dataset %q", id))
		return
	}

	for i := range queries {
		if k := queries[i].KeyKind; k != "" && k != e.kind {
			s.writeRequestError(w, parseErrf(parselclient.CodeBadKind,
				"dataset %q holds %s keys; query %d asked for %s", id, e.kind, i, k))
			return
		}
	}

	switch ds := e.ds.(type) {
	case *parsel.Dataset[float64]:
		finishDatasetQueryMany(s, w, r, ds, queries, eps, timeoutMS, start)
	case *parsel.Dataset[string]:
		finishDatasetQueryMany(s, w, r, ds, queries, eps, timeoutMS, start)
	default:
		finishDatasetQueryMany(s, w, r, e.ds.(*parsel.Dataset[int64]), queries, eps, timeoutMS, start)
	}
}

// finishDatasetQueryMany is the kind-typed tail of a batch query: fan
// out, aggregate, answer.
func finishDatasetQueryMany[K parselclient.Key](s *Server, w http.ResponseWriter, r *http.Request, ds *parsel.Dataset[K], queries []parselclient.DatasetQuery, eps []Endpoint, timeoutMS int64, start time.Time) {
	ctx, cancel := s.admissionContext(r, timeoutMS)
	defer cancel()
	tr := trackFrom(r.Context())
	if tr != nil {
		tr.kind = parselclient.KeyKindOf[K]()
		tr.markQueue()
		// observeCheckout adds atomically: the fan-out workers below all
		// attribute their pool waits to this one request.
		ctx = parsel.WithCheckoutObserver(ctx, tr.observeCheckout)
	}
	execStart := time.Now()

	results := make([]parselclient.QueryManyResultOf[K], len(queries))
	workers := min(s.pool.MaxMachines(), len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				resp, err := executeDatasetOf(ctx, ds, eps[i], &queries[i])
				if err != nil {
					_, code := errorStatus(err)
					results[i] = parselclient.QueryManyResultOf[K]{
						Error: &parselclient.ErrorDetail{Code: code, Message: err.Error()},
					}
					continue
				}
				results[i] = parselclient.QueryManyResultOf[K]{ResponseOf: *resp}
			}
		}()
	}
	wg.Wait()

	// One 200 response, one latency observation; the simulated metrics
	// and the dataset query counter aggregate per successful item, so a
	// batch reads exactly like the same queries posted one at a time.
	var okItems int64
	var agg parselclient.Report
	for i := range results {
		if results[i].Error != nil {
			continue
		}
		okItems++
		agg.SimSeconds += results[i].Report.SimSeconds
		agg.Messages += results[i].Report.Messages
		agg.Bytes += results[i].Report.Bytes
	}
	s.dsMu.Lock()
	s.dstats.Queries += okItems
	s.dsMu.Unlock()
	s.mu.Lock()
	s.srv.OK++
	s.sim.Queries += okItems
	s.sim.SimSeconds += agg.SimSeconds
	s.sim.Messages += agg.Messages
	s.sim.Bytes += agg.Bytes
	s.mu.Unlock()
	s.metrics.latency.Observe(time.Since(start).Seconds())
	if tr != nil {
		tr.exec = time.Since(execStart)
		w.Header().Set(StagesHeader, tr.stagesValue())
	}

	if wantsFrame(r) && parselclient.KeyKindOf[K]() != parselclient.KeyKindString {
		writeFrameResultsOf(w, results)
		return
	}
	writeJSON(w, http.StatusOK, parselclient.QueryManyResponseOf[K]{Results: results})
}

// executeDatasetOf dispatches one validated dataset query, mirroring
// executeOn over the resident shards.
func executeDatasetOf[K parselclient.Key](ctx context.Context, ds *parsel.Dataset[K], ep Endpoint, q *parselclient.DatasetQuery) (*parselclient.ResponseOf[K], error) {
	switch ep {
	case EpSelect:
		res, err := ds.SelectContext(ctx, *q.Rank)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpMedian:
		res, err := ds.MedianContext(ctx)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpQuantile:
		res, err := ds.QuantileContext(ctx, *q.Q)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpQuantiles:
		vals, rep, err := ds.QuantilesContext(ctx, q.Qs)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpRanks:
		vals, rep, err := ds.SelectRanksContext(ctx, q.Ranks)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpTopK:
		vals, rep, err := ds.TopKContext(ctx, *q.K)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpBottomK:
		vals, rep, err := ds.BottomKContext(ctx, *q.K)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpSummary:
		fn, rep, err := ds.SummaryContext(ctx)
		if err != nil {
			return nil, err
		}
		return &parselclient.ResponseOf[K]{
			KeyKind: wireKindField[K](),
			Summary: &parselclient.SummaryOf[K]{
				Min: fn.Min, Q1: fn.Q1, Median: fn.Median, Q3: fn.Q3, Max: fn.Max,
			},
			Report: parselclient.WireReport(rep),
		}, nil
	}
	return nil, fmt.Errorf("serve: unknown endpoint %d", int(ep))
}
