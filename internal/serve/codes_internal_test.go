package serve

import (
	"errors"
	"net/http"
	"testing"

	"parsel"
	"parsel/parselclient"
)

// TestErrorStatusAgreement pins the server half of the shared-code
// contract: every engine error maps onto a (status, code) pair whose
// code is published in parselclient.Codes(), and the pairs themselves
// are stable — the client's typed-error round-trip test pins the same
// pairs from the other end of the wire.
func TestErrorStatusAgreement(t *testing.T) {
	published := make(map[parselclient.Code]bool)
	for _, c := range parselclient.Codes() {
		published[c] = true
	}
	cases := []struct {
		err    error
		status int
		code   parselclient.Code
	}{
		{parsel.ErrPoolTimeout, http.StatusTooManyRequests, parselclient.CodePoolTimeout},
		{parsel.ErrPoolClosed, http.StatusServiceUnavailable, parselclient.CodeShuttingDown},
		{parsel.ErrDatasetClosed, http.StatusNotFound, parselclient.CodeDatasetNotFound},
		{parsel.ErrRankRange, http.StatusBadRequest, parselclient.CodeRankRange},
		{parsel.ErrBadQuantile, http.StatusBadRequest, parselclient.CodeBadQuantile},
		{parsel.ErrNoData, http.StatusBadRequest, parselclient.CodeNoData},
		{parsel.ErrNoShards, http.StatusBadRequest, parselclient.CodeNoShards},
		{errors.New("surprise"), http.StatusInternalServerError, parselclient.CodeInternal},
	}
	for _, tc := range cases {
		status, code := errorStatus(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("errorStatus(%v) = (%d, %s), want (%d, %s)",
				tc.err, status, code, tc.status, tc.code)
		}
		if !published[code] {
			t.Errorf("errorStatus(%v) emits code %q that parselclient.Codes() does not publish", tc.err, code)
		}
	}
}
