package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parsel/internal/obs"
	"parsel/parselclient"
)

// RequestIDHeader is the request-correlation header: accepted from the
// client (parselclient stamps one on every attempt), generated when
// absent, echoed on every response, and attached to every structured
// log line the request emits.
const RequestIDHeader = "X-Parsel-Request-Id"

// StagesHeader carries the per-request stage timing breakdown on
// successful query responses: "queue_ns=…;checkout_ns=…;execute_ns=…"
// (encode time is not included — the header is written before the
// body). The same stages, encode included, feed the
// parsel_query_stage_seconds histogram.
const StagesHeader = "X-Parsel-Stages"

// latencyBounds are the histogram bucket upper bounds in seconds,
// roughly log-spaced from 100us to 10s — the range a selection query
// can plausibly take on a loaded host. Observations above the last
// bound land only in the implicit +Inf bucket (the total count).
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// serverMetrics is the Server's obs instrument set behind GET /metrics.
//
// Two kinds of series live here. The live instruments (requests,
// latency, stages) are updated on the request path and are the same
// backing store /v1/stats renders its latency histogram from — the two
// endpoints cannot disagree. Everything else is filled at scrape time
// from the Stats() snapshot (fill), so the daemon's existing counters
// stay the single source of truth and no request-path code does double
// bookkeeping.
type serverMetrics struct {
	reg *obs.Registry

	// Live request-path instruments.
	requests *obs.CounterVec   // parsel_requests_total{endpoint,kind,code}
	latency  *obs.Histogram    // parsel_query_duration_seconds
	stages   *obs.HistogramVec // parsel_query_stage_seconds{stage}

	// Scrape-time mirrors of the Stats() snapshot.
	poolCreates, poolHits, poolReshapes, poolWaits, poolTimeouts *obs.Counter
	poolResident, poolIdle, poolMax                              *obs.Gauge
	admitInflight, admitCapacity, draining                       *obs.Gauge
	srvOK, srvClientErr, srvServerErr, srvTimeouts, srvRejected  *obs.Counter
	srvPanics                                                    *obs.Counter
	simQueries, simMessages, simBytes                            *obs.Counter
	simSeconds                                                   *obs.Gauge
	dsCount, dsBytes, dsBudget                                   *obs.Gauge
	dsUploads, dsReplaced, dsDeletes, dsExpired                  *obs.Counter
	dsRejected, dsNotFound, dsQueries, dsExports                 *obs.Counter
	snapRestored, snapSkipped, snapQuarantined                   *obs.Counter
	snapPersists, snapPersistErrors                              *obs.Counter
	snapBytes, snapDirty, snapDegraded                           *obs.Gauge
	tenantDatasets, tenantBytes                                  *obs.GaugeVec
	tenantRequests, tenantRejected                               *obs.CounterVec
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.CounterVec("parsel_requests_total",
			"Requests finished, by endpoint (dataset ids collapsed to {id}), key kind and HTTP status code.",
			"endpoint", "kind", "code"),
		latency: r.Histogram("parsel_query_duration_seconds",
			"End-to-end latency of successfully served queries — the same observations /v1/stats reports as latency.",
			latencyBounds),
		stages: r.HistogramVec("parsel_query_stage_seconds",
			"Per-stage latency of query requests: queue (admission+parse), checkout (pool semaphore wait), execute (simulation), encode (response write).",
			latencyBounds, "stage"),

		poolCreates:   r.Counter("parsel_pool_creates_total", "Selectors built by the pool."),
		poolHits:      r.Counter("parsel_pool_hits_total", "Checkouts served by an idle same-shape Selector."),
		poolReshapes:  r.Counter("parsel_pool_reshapes_total", "Checkouts that repurposed an idle Selector of another shape."),
		poolWaits:     r.Counter("parsel_pool_waits_total", "Checkouts that blocked for a free machine slot."),
		poolTimeouts:  r.Counter("parsel_pool_timeouts_total", "Checkouts abandoned because the admission deadline expired."),
		poolResident:  r.Gauge("parsel_pool_resident", "Resident Selectors, idle or checked out."),
		poolIdle:      r.Gauge("parsel_pool_idle", "Idle resident Selectors."),
		poolMax:       r.Gauge("parsel_pool_max_machines", "Configured machine capacity of the int64 pool."),
		admitInflight: r.Gauge("parsel_admission_inflight", "Requests currently holding an admission token."),
		admitCapacity: r.Gauge("parsel_admission_capacity", "Admission tokens (MaxMachines + QueueDepth)."),
		draining:      r.Gauge("parsel_draining", "1 while graceful shutdown is in progress."),

		srvOK:        r.Counter("parsel_server_ok_total", "200 query responses (ServerStats.OK)."),
		srvClientErr: r.Counter("parsel_server_client_errors_total", "4xx responses other than admission failures."),
		srvServerErr: r.Counter("parsel_server_server_errors_total", "5xx responses."),
		srvTimeouts:  r.Counter("parsel_server_pool_timeouts_total", "429 pool_timeout responses."),
		srvRejected:  r.Counter("parsel_server_rejected_total", "429 queue_full admission rejections."),
		srvPanics:    r.Counter("parsel_server_panics_total", "Handler panics caught by the recovery middleware."),

		simQueries:  r.Counter("parsel_sim_queries_total", "Queries aggregated into the simulated-machine metrics."),
		simSeconds:  r.Gauge("parsel_sim_seconds", "Simulated machine-seconds across served queries."),
		simMessages: r.Counter("parsel_sim_messages_total", "Simulated messages across served queries."),
		simBytes:    r.Counter("parsel_sim_bytes_total", "Simulated bytes across served queries."),

		dsCount:    r.Gauge("parsel_datasets", "Resident datasets."),
		dsBytes:    r.Gauge("parsel_dataset_resident_bytes", "Total resident bytes of all datasets."),
		dsBudget:   r.Gauge("parsel_dataset_budget_bytes", "Configured resident-bytes budget."),
		dsUploads:  r.Counter("parsel_dataset_uploads_total", "Accepted dataset uploads, replacements included."),
		dsReplaced: r.Counter("parsel_dataset_replaced_total", "Uploads that overwrote an existing id."),
		dsDeletes:  r.Counter("parsel_dataset_deletes_total", "Explicit dataset deletions."),
		dsExpired:  r.Counter("parsel_dataset_expired_total", "TTL evictions."),
		dsRejected: r.Counter("parsel_dataset_rejected_total", "Uploads refused for a resident budget (413)."),
		dsNotFound: r.Counter("parsel_dataset_not_found_total", "Queries or deletes addressed at absent dataset ids."),
		dsQueries:  r.Counter("parsel_dataset_queries_total", "Dataset-path queries served OK."),
		dsExports:  r.Counter("parsel_dataset_exports_total", "Snapshot-stream exports served OK."),

		snapRestored:      r.Counter("parsel_snapshot_restored_total", "Datasets recovered from snapshots at startup."),
		snapSkipped:       r.Counter("parsel_snapshot_restore_skipped_total", "Manifest entries not recovered at startup."),
		snapQuarantined:   r.Counter("parsel_snapshot_quarantined_total", "Corrupt snapshot files renamed aside."),
		snapPersists:      r.Counter("parsel_snapshot_persists_total", "Snapshot writes."),
		snapPersistErrors: r.Counter("parsel_snapshot_persist_errors_total", "Snapshot writes that failed."),
		snapBytes:         r.Gauge("parsel_snapshot_bytes", "On-disk size of all live snapshot files."),
		snapDirty:         r.Gauge("parsel_snapshot_dirty", "Datasets whose latest state is not yet on disk."),
		snapDegraded:      r.Gauge("parsel_snapshot_degraded", "1 while snapshot persistence is failing."),

		tenantDatasets: r.GaugeVec("parsel_tenant_datasets", "Resident datasets per tenant.", "tenant"),
		tenantBytes:    r.GaugeVec("parsel_tenant_resident_bytes", "Resident bytes per tenant.", "tenant"),
		tenantRequests: r.CounterVec("parsel_tenant_requests_total", "Authenticated requests per tenant.", "tenant"),
		tenantRejected: r.CounterVec("parsel_tenant_rejected_total", "Budget/quota upload rejections per tenant (413 tenant_budget).", "tenant"),
	}
	return m
}

// fill mirrors one Stats() snapshot into the scrape-time series. Called
// by the /metrics handler just before rendering, so the exposition and
// /v1/stats describe the same instant without the request path paying
// for two ledgers.
func (m *serverMetrics) fill(st parselclient.Stats, admitCapacity int) {
	m.poolCreates.Set(st.Pool.Creates)
	m.poolHits.Set(st.Pool.Hits)
	m.poolReshapes.Set(st.Pool.Reshapes)
	m.poolWaits.Set(st.Pool.Waits)
	m.poolTimeouts.Set(st.Pool.Timeouts)
	m.poolResident.Set(float64(st.Pool.Resident))
	m.poolIdle.Set(float64(st.Pool.Idle))
	m.poolMax.Set(float64(st.Pool.MaxMachines))
	m.admitInflight.Set(float64(st.Server.Inflight))
	m.admitCapacity.Set(float64(admitCapacity))
	m.draining.Set(boolGauge(st.Server.Draining))

	m.srvOK.Set(st.Server.OK)
	m.srvClientErr.Set(st.Server.ClientErrors)
	m.srvServerErr.Set(st.Server.ServerErrors)
	m.srvTimeouts.Set(st.Server.Timeouts)
	m.srvRejected.Set(st.Server.Rejected)
	m.srvPanics.Set(st.Server.Panics)

	m.simQueries.Set(st.Sim.Queries)
	m.simSeconds.Set(st.Sim.SimSeconds)
	m.simMessages.Set(st.Sim.Messages)
	m.simBytes.Set(st.Sim.Bytes)

	m.dsCount.Set(float64(st.Datasets.Count))
	m.dsBytes.Set(float64(st.Datasets.ResidentBytes))
	m.dsBudget.Set(float64(st.Datasets.BudgetBytes))
	m.dsUploads.Set(st.Datasets.Uploads)
	m.dsReplaced.Set(st.Datasets.Replaced)
	m.dsDeletes.Set(st.Datasets.Deletes)
	m.dsExpired.Set(st.Datasets.Expired)
	m.dsRejected.Set(st.Datasets.Rejected)
	m.dsNotFound.Set(st.Datasets.NotFound)
	m.dsQueries.Set(st.Datasets.Queries)
	m.dsExports.Set(st.Datasets.Exports)

	m.snapRestored.Set(st.Snapshots.Restored)
	m.snapSkipped.Set(st.Snapshots.RestoreSkipped)
	m.snapQuarantined.Set(st.Snapshots.Quarantined)
	m.snapPersists.Set(st.Snapshots.Persists)
	m.snapPersistErrors.Set(st.Snapshots.PersistErrors)
	m.snapBytes.Set(float64(st.Snapshots.SnapshotBytes))
	m.snapDirty.Set(float64(st.Snapshots.Dirty))
	m.snapDegraded.Set(boolGauge(st.Snapshots.Degraded))

	for name, ts := range st.Tenants {
		m.tenantDatasets.With(name).Set(float64(ts.Datasets))
		m.tenantBytes.With(name).Set(float64(ts.ResidentBytes))
		m.tenantRequests.With(name).Set(ts.Requests)
		m.tenantRejected.With(name).Set(ts.Rejected)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// wireHistogram renders an obs histogram snapshot in the /v1/stats wire
// shape. Both endpoints read the same instrument, so their counts and
// sums agree by construction.
func wireHistogram(snap obs.HistSnapshot) parselclient.Histogram {
	out := parselclient.Histogram{
		Count:      snap.Count,
		SumSeconds: snap.Sum,
		Buckets:    make([]parselclient.Bucket, len(snap.Bounds)),
	}
	for i, le := range snap.Bounds {
		out.Buckets[i] = parselclient.Bucket{LE: le, Count: snap.Cumulative[i]}
	}
	return out
}

// handleMetrics serves GET /metrics: the Prometheus text exposition.
// Unauthenticated, like /healthz — scrapers sit beside load balancers,
// not behind tenant tokens.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
			"metrics is a GET request")
		return
	}
	s.metrics.fill(s.Stats(), cap(s.admit))
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = s.metrics.reg.WriteTo(w)
}

// reqTrack follows one request through the middleware stack: its
// correlation id, who and what it turned out to be (tenant, kind), and
// the per-stage clock marks. All fields are written by the request's
// own goroutine except checkout, which querymany fan-out workers add to
// concurrently.
type reqTrack struct {
	id     string
	start  time.Time
	tenant string
	kind   string

	staged   bool // the query path recorded stage marks
	queue    time.Duration
	exec     time.Duration
	checkout atomic.Int64 // ns
}

// trackKey carries the reqTrack through the request context.
type trackKey struct{}

// trackFrom returns the request's reqTrack, or nil outside the
// middleware stack (direct handler tests).
func trackFrom(ctx context.Context) *reqTrack {
	tr, _ := ctx.Value(trackKey{}).(*reqTrack)
	return tr
}

// observeCheckout is the parsel.WithCheckoutObserver hook: pool
// semaphore wait attributed to this request.
func (tr *reqTrack) observeCheckout(wait time.Duration) {
	tr.checkout.Add(int64(wait))
}

// markQueue closes the queue stage (admission wait, body read, parse)
// and declares the stage marks live.
func (tr *reqTrack) markQueue() {
	tr.queue = time.Since(tr.start)
	tr.staged = true
}

// stagesValue renders the StagesHeader value from the marks so far
// (encode has not happened yet when headers are written).
func (tr *reqTrack) stagesValue() string {
	checkout := time.Duration(tr.checkout.Load())
	execute := max(tr.exec-checkout, 0)
	return fmt.Sprintf("queue_ns=%d;checkout_ns=%d;execute_ns=%d",
		tr.queue.Nanoseconds(), checkout.Nanoseconds(), execute.Nanoseconds())
}

// finishRequest closes the books on one request: the requests_total
// series, the stage histograms (query paths only), and the Debug-level
// access log line.
func (s *Server) finishRequest(tr *reqTrack, code int, r *http.Request) {
	if code == 0 {
		// The handler wrote nothing and did not panic; net/http would
		// answer 200 with an empty body.
		code = http.StatusOK
	}
	total := time.Since(tr.start)
	endpoint := endpointLabel(r.URL.Path)
	s.metrics.requests.With(endpoint, kindLabel(tr.kind), strconv.Itoa(code)).Inc()
	if tr.staged {
		checkout := time.Duration(tr.checkout.Load())
		execute := max(tr.exec-checkout, 0)
		encode := max(total-tr.queue-tr.exec, 0)
		s.metrics.stages.With("queue").Observe(tr.queue.Seconds())
		s.metrics.stages.With("checkout").Observe(checkout.Seconds())
		s.metrics.stages.With("execute").Observe(execute.Seconds())
		s.metrics.stages.With("encode").Observe(encode.Seconds())
	}
	s.log.Debug("serve: request",
		"request_id", tr.id,
		"method", r.Method,
		"endpoint", endpoint,
		"path", r.URL.Path,
		"code", code,
		"kind", tr.kind,
		"tenant", tr.tenant,
		"duration_us", total.Microseconds(),
	)
}

// logShed emits the Warn-level structured record for a load-shedding
// refusal (429 queue_full, 413 resident_budget/tenant_budget): who was
// turned away, where, and why.
func (s *Server) logShed(r *http.Request, code int, reason parselclient.Code, detail string) {
	var id, tenant string
	if tr := trackFrom(r.Context()); tr != nil {
		id, tenant = tr.id, tr.tenant
	}
	s.log.Warn("serve: request shed",
		"request_id", id,
		"endpoint", endpointLabel(r.URL.Path),
		"tenant", tenant,
		"code", code,
		"reason", string(reason),
		"detail", detail,
	)
}

// endpointLabel collapses a request path into a bounded label space:
// fixed endpoints pass through, per-dataset paths collapse their id
// segment to {id}, anything unknown becomes "other" (it answered 404;
// per-path series for scanner noise would grow without bound).
func endpointLabel(path string) string {
	if _, ok := endpoints[path]; ok {
		return path
	}
	switch path {
	case "/v1/stats", "/healthz", "/metrics", "/v1/admin/tenants/reload":
		return path
	}
	const pfx = "/v1/datasets/"
	if rest, ok := strings.CutPrefix(path, pfx); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch suffix := rest[i:]; suffix {
			case "/query", "/querymany", "/snapshot":
				return pfx + "{id}" + suffix
			}
			return "other"
		}
		return pfx + "{id}"
	}
	return "other"
}

// kindLabel maps the tracked key kind onto its label value ("none"
// for requests that never reached a kind-typed code path).
func kindLabel(kind string) string {
	if kind == "" {
		return "none"
	}
	return kind
}
