package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"parsel"
	"parsel/internal/snapshot"
	"parsel/parselclient"
)

// Dataset durability: when Options.SnapshotDir is set, the daemon
// keeps every resident dataset mirrored in an on-disk snapshot store
// (internal/snapshot) so a restart comes back warm — no key ever
// crosses the wire twice.
//
//   - Uploads mark their dataset dirty; a background snapshotter
//     persists dirty datasets as they appear (atomic temp-file +
//     fsync + rename writes, so a kill mid-write is invisible).
//   - Deletes and TTL evictions mark the id dirty too; the
//     snapshotter reconciles disk with the registry, removing the
//     file of an id no longer resident.
//   - Drain marks every resident dataset dirty and flushes
//     synchronously, so a graceful shutdown persists the exact final
//     registry state, TTL clocks included.
//   - Startup recovery re-registers every manifest entry under its
//     original id and TTL deadline, restoring the decoded shards
//     zero-copy via Pool.RestoreDataset — queries against a restored
//     dataset are bit-identical to the pre-restart daemon's. Expired
//     entries, entries whose file is missing, and entries the
//     budget/count caps cannot admit are skipped with a logged
//     warning; corrupt/truncated/version-skewed files are quarantined
//     (renamed aside) with their typed decode error logged. Recovery
//     never fails the daemon.

// ErrSnapshotBudget reports that a snapshot could not be re-admitted
// at recovery because the resident-bytes budget or dataset count cap
// has no room for it (e.g. the daemon was restarted with a smaller
// budget). The snapshot file is kept: a restart with more room
// restores it.
var ErrSnapshotBudget = errors.New("serve: snapshot cannot be admitted within the resident dataset budget")

// initSnapshots opens the store, recovers its manifest into the
// registry, and starts the background snapshotter. Called by New;
// only an unusable directory is an error.
func (s *Server) initSnapshots(dir string) error {
	store, warnings, err := snapshot.Open(dir)
	if err != nil {
		return err
	}
	s.snap = store
	for _, w := range warnings {
		s.log.Warn("snapshots: store warning", "detail", w)
	}
	s.recoverSnapshots()
	go s.snapshotLoop()
	return nil
}

// recoverSnapshots re-registers every manifest entry; see the package
// comment above for the skip/quarantine policy. The manifest's key
// type picks the decode path: int64 (or a legacy manifest without the
// field) and float64 restore through the same typed loader; any other
// key type — there should be none, string datasets are never persisted
// — is skipped with the typed snapshot.ErrKeyType logged.
func (s *Server) recoverSnapshots() {
	s.dsMu.Lock()
	now := s.now()
	s.dsMu.Unlock()
	var maxGen int64
	for _, m := range s.snap.Entries() {
		if m.Gen > maxGen {
			maxGen = m.Gen
		}
		if m.ExpiresUnixMS <= now.UnixMilli() {
			s.snap.Remove(m.ID)
			s.snapMu.Lock()
			s.sstats.RestoreSkipped++
			s.snapMu.Unlock()
			s.log.Warn("snapshots: dataset expired before restart; not restored",
				"id", m.ID,
				"expired_ago", now.Sub(time.UnixMilli(m.ExpiresUnixMS)).Round(time.Second).String())
			continue
		}
		if m.Tenant != "" && len(s.tenantsByName) > 0 && s.tenantsByName[m.Tenant] == nil {
			// The owning tenant left the configuration. The file is
			// kept: a restart that re-adds the tenant restores it.
			s.snapMu.Lock()
			s.sstats.RestoreSkipped++
			s.snapMu.Unlock()
			s.log.Warn("snapshots: dataset belongs to unconfigured tenant; not restored",
				"id", m.ID, "tenant", m.Tenant)
			continue
		}
		var loadErr, restoreErr error
		switch m.KeyType {
		case "", snapshot.KeyTypeInt64:
			loadErr, restoreErr = recoverOne[int64](s, m)
		case snapshot.KeyTypeFloat64:
			loadErr, restoreErr = recoverOne[float64](s, m)
		default:
			loadErr = fmt.Errorf("%w: manifest declares %q keys (string datasets are serve-only, never persisted)",
				snapshot.ErrKeyType, m.KeyType)
		}
		switch {
		case loadErr != nil:
			s.snapMu.Lock()
			if errors.Is(loadErr, fs.ErrNotExist) || errors.Is(loadErr, snapshot.ErrKeyType) {
				s.sstats.RestoreSkipped++
			} else {
				s.sstats.Quarantined++
			}
			s.snapMu.Unlock()
			s.log.Warn("snapshots: dataset not restored", "id", m.ID, "err", loadErr.Error())
		case restoreErr != nil:
			s.snapMu.Lock()
			s.sstats.RestoreSkipped++
			s.snapMu.Unlock()
			s.log.Warn("snapshots: dataset not restored", "id", m.ID, "err", restoreErr.Error())
		default:
			s.snapMu.Lock()
			s.sstats.Restored++
			s.snapMu.Unlock()
		}
	}
	s.snapGen.Store(maxGen)
}

// recoverOne loads and re-registers one manifest entry as K-keyed. A
// load failure and a registration failure report separately so the
// caller can attribute quarantines to decode faults only.
func recoverOne[K snapshot.FixedKey](s *Server, m snapshot.Meta) (loadErr, restoreErr error) {
	h, shards, meta, err := snapshot.LoadAs[K](s.snap, m.ID)
	if err != nil {
		return err, nil
	}
	if h.Options != s.optionsFP {
		s.log.Warn("snapshots: dataset was persisted under different pool options; restoring anyway — values stay correct, simulated metrics follow the new configuration",
			"id", m.ID, "options", h.Options)
	}
	return nil, restoreDataset[K](s, m.ID, shards, meta.Tenant,
		time.UnixMilli(meta.ExpiresUnixMS), meta.Gen)
}

// RestoreDataset registers shards as a resident int64 dataset under id
// with the given TTL deadline, admitting against the same
// resident-bytes budget and count cap an upload faces — a refusal is
// the typed ErrSnapshotBudget, and live data is never evicted to make
// room. The shards are adopted zero-copy (Pool.RestoreDataset), so the
// caller must hand over ownership; gen is the dataset's upload
// generation from the manifest (it keeps stale background persists
// from regressing newer state). Used by startup recovery; exported so
// the admission contract is testable in isolation.
func (s *Server) RestoreDataset(id string, shards [][]int64, expires time.Time, gen int64) error {
	return restoreDataset(s, id, shards, "", expires, gen)
}

// restoreDataset is the kind-typed core of RestoreDataset, charging
// the owning tenant's ledger (and checking its budget and quota) when
// the tenant is configured.
func restoreDataset[K snapshot.FixedKey](s *Server, id string, shards [][]K, tenant string, expires time.Time, gen int64) error {
	if err := checkDatasetID(id); err != nil {
		return err
	}
	need := residentBytes(shards)
	s.dsMu.Lock()
	if _, ok := s.datasets[id]; ok {
		s.dsMu.Unlock()
		return fmt.Errorf("serve: dataset %q is already resident", id)
	}
	if s.dsBytes+need > s.opts.MaxResidentBytes {
		held := s.dsBytes
		s.dsMu.Unlock()
		return fmt.Errorf("%w: needs %d bytes, %d of the %d-byte budget are held",
			ErrSnapshotBudget, need, held, s.opts.MaxResidentBytes)
	}
	if len(s.datasets)+1 > s.opts.MaxDatasets {
		s.dsMu.Unlock()
		return fmt.Errorf("%w: daemon already holds %d datasets, the limit",
			ErrSnapshotBudget, s.opts.MaxDatasets)
	}
	if te := s.tenantLedger(tenant); te != nil {
		switch {
		case te.cfg.MaxResidentBytes > 0 && te.bytes+need > te.cfg.MaxResidentBytes:
			held := te.bytes
			s.dsMu.Unlock()
			return fmt.Errorf("%w: tenant %q holds %d of its %d-byte budget",
				ErrSnapshotBudget, tenant, held, te.cfg.MaxResidentBytes)
		case te.cfg.MaxDatasets > 0 && te.datasets+1 > int64(te.cfg.MaxDatasets):
			s.dsMu.Unlock()
			return fmt.Errorf("%w: tenant %q already holds %d datasets, its quota",
				ErrSnapshotBudget, tenant, te.cfg.MaxDatasets)
		}
	}
	s.dsBytes += need // the reservation, as in handleDatasetUpload
	if te := s.tenantLedger(tenant); te != nil {
		te.bytes += need
	}
	s.dsMu.Unlock()

	ds, err := poolOf[K](s).RestoreDataset(shards)

	s.dsMu.Lock()
	if err == nil {
		if _, ok := s.datasets[id]; ok {
			err = fmt.Errorf("serve: dataset %q is already resident", id)
		}
	}
	if err != nil {
		s.dsBytes -= need
		if te := s.tenantLedger(tenant); te != nil {
			te.bytes -= need
		}
		s.dsMu.Unlock()
		if ds != nil {
			ds.Close()
		}
		return err
	}
	// persistedExpires == expires: the deadline being registered is the
	// one just read off disk.
	e := &dsEntry{
		kind: parselclient.KeyKindOf[K](), ds: ds, procs: ds.Procs(), n: ds.N(),
		tenant: tenant, bytes: ds.Bytes(), expires: expires, gen: gen,
		persistedExpires: expires, restored: true,
	}
	s.dsBytes += e.bytes - need
	if te := s.tenantLedger(tenant); te != nil {
		te.bytes += e.bytes - need
		te.datasets++
	}
	s.datasets[id] = e
	s.dsMu.Unlock()
	return nil
}

// markDirty queues id for the background snapshotter: the dataset's
// disk state no longer matches the registry (uploaded, replaced,
// deleted, or evicted). No-op when snapshots are disabled. Safe to
// call with dsMu held (snapMu is always taken after dsMu, never
// before it).
func (s *Server) markDirty(id string) {
	if s.snap == nil {
		return
	}
	s.snapMu.Lock()
	s.snapDirty[id] = struct{}{}
	s.snapMu.Unlock()
	select {
	case s.snapWake <- struct{}{}:
	default:
	}
}

// popDirty takes one queued id, marking it in flight; the caller must
// pair a successful pop with donePersist.
func (s *Server) popDirty() (string, bool) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for id := range s.snapDirty {
		delete(s.snapDirty, id)
		s.snapInflight++
		return id, true
	}
	return "", false
}

// donePersist retires one in-flight persist and wakes flushers.
func (s *Server) donePersist() {
	s.snapMu.Lock()
	s.snapInflight--
	s.snapMu.Unlock()
	s.snapCond.Broadcast()
}

// snapshotLoop is the background snapshotter: it drains the dirty set
// whenever woken, and exits when the drain flush stops it.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	for {
		select {
		case <-s.snapStop:
			return
		case <-s.snapWake:
			for {
				id, ok := s.popDirty()
				if !ok {
					break
				}
				s.persistOne(id)
				s.donePersist()
			}
		}
	}
}

// persistOne reconciles one id's disk state with the registry: a
// resident dataset is saved (data rewrite skipped when its generation
// is already on disk), an absent one has its snapshot removed.
// Persists are serialized (snapIOMu) and each re-reads the registry
// under the lock, so the last persist of an id always lands its
// latest state — a stale observation can never clobber a newer one.
func (s *Server) persistOne(id string) {
	s.snapIOMu.Lock()
	defer s.snapIOMu.Unlock()
	s.dsMu.Lock()
	e, ok := s.datasets[id]
	var (
		dsAny   any
		gen     int64
		expires time.Time
		tenant  string
	)
	if ok {
		dsAny, gen, expires, tenant = e.ds, e.gen, e.expires, e.tenant
	}
	now := s.now()
	s.dsMu.Unlock()

	if !ok {
		if err := s.snap.Remove(id); err != nil {
			s.countPersist(now, err)
			s.log.Error("snapshots: remove failed", "id", id, "err", err.Error())
		}
		return
	}
	switch ds := dsAny.(type) {
	case *parsel.Dataset[int64]:
		persistEntry(s, id, e, ds, gen, expires, tenant, now)
	case *parsel.Dataset[float64]:
		persistEntry(s, id, e, ds, gen, expires, tenant, now)
	default:
		// String datasets are serve-only — the snapshot format has no
		// variable-width section — so reconcile disk by removing any
		// file a same-id fixed-kind predecessor left behind.
		if err := s.snap.Remove(id); err != nil {
			s.countPersist(now, err)
			s.log.Error("snapshots: remove failed", "id", id, "err", err.Error())
		}
	}
}

// persistEntry writes one fixed-kind dataset's snapshot; the key type
// is stamped from K by the store.
func persistEntry[K snapshot.FixedKey](s *Server, id string, e *dsEntry, ds *parsel.Dataset[K], gen int64, expires time.Time, tenant string, now time.Time) {
	shards, err := ds.View()
	if err != nil {
		// Replaced or deleted between the registry read and here; that
		// path re-marked the id dirty, so the newer state wins.
		return
	}
	err = snapshot.SaveAs(s.snap, snapshot.Meta{
		ID:            id,
		Procs:         ds.Procs(),
		N:             ds.N(),
		Bytes:         ds.Bytes(),
		Gen:           gen,
		ExpiresUnixMS: expires.UnixMilli(),
		SavedUnixMS:   now.UnixMilli(),
		Options:       s.optionsFP,
		Tenant:        tenant,
	}, shards)
	s.countPersist(now, err)
	if err == nil {
		// Record what deadline is on disk, so query-driven TTL
		// refreshes know when a metadata re-persist is due.
		s.dsMu.Lock()
		if cur, ok := s.datasets[id]; ok && cur == e && cur.persistedExpires.Before(expires) {
			cur.persistedExpires = expires
		}
		s.dsMu.Unlock()
	}
	if err != nil {
		// The dataset stays resident and serving; the next persist of
		// this id (a later upload, or the drain flush marking every
		// resident dataset) retries the write.
		s.log.Error("snapshots: persist failed", "id", id, "err", err.Error())
	}
}

// countPersist attributes one snapshot write to the stats and drives
// the degraded-health flag: a failed write flips it (the daemon keeps
// serving, /healthz turns 207), the next successful write clears it.
func (s *Server) countPersist(now time.Time, err error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err != nil {
		s.sstats.PersistErrors++
		s.sstats.Degraded = true
		return
	}
	s.sstats.Persists++
	s.sstats.LastPersistUnixMS = now.UnixMilli()
	s.sstats.Degraded = false
}

// FlushSnapshots persists every dirty dataset synchronously and
// returns only when the dirty set is empty AND no persist is in
// flight anywhere (background snapshotter included) — after it, disk
// reflects every registry change made before the call. No-op when
// snapshots are disabled. Drain calls it after marking all resident
// datasets dirty; tests call it to make background persistence
// deterministic.
func (s *Server) FlushSnapshots() {
	if s.snap == nil {
		return
	}
	for {
		if id, ok := s.popDirty(); ok {
			s.persistOne(id)
			s.donePersist()
			continue
		}
		s.snapMu.Lock()
		for len(s.snapDirty) == 0 && s.snapInflight > 0 {
			s.snapCond.Wait()
		}
		idle := len(s.snapDirty) == 0 && s.snapInflight == 0
		s.snapMu.Unlock()
		if idle {
			return
		}
	}
}

// drainSnapshots runs the shutdown persistence exactly once: stop the
// background snapshotter, flush outstanding data changes, then land
// every resident dataset's final TTL state in ONE batched manifest
// commit — not one fsync'd manifest rewrite per dataset. Datasets
// whose data is not on disk (a failed earlier persist) get a full
// retried save first.
func (s *Server) drainSnapshots() {
	if s.snap == nil {
		return
	}
	s.snapOnce.Do(func() {
		close(s.snapStop)
		<-s.snapDone

		// Snapshot the registry's final state.
		s.dsMu.Lock()
		now := s.now()
		metas := make([]snapshot.Meta, 0, len(s.datasets))
		for id, e := range s.datasets {
			if e.kind == parselclient.KeyKindString {
				continue // serve-only: nothing on disk to refresh
			}
			metas = append(metas, snapshot.Meta{
				ID:            id,
				KeyType:       e.kind,
				Procs:         e.procs,
				N:             e.n,
				Bytes:         e.bytes,
				Gen:           e.gen,
				ExpiresUnixMS: e.expires.UnixMilli(),
				SavedUnixMS:   now.UnixMilli(),
				Options:       s.optionsFP,
				Tenant:        e.tenant,
			})
			e.persistedExpires = e.expires
		}
		s.dsMu.Unlock()

		// Full saves for anything not on disk at its current
		// generation (pending uploads, earlier persist failures), and
		// for pending removals already in the dirty set.
		for _, m := range metas {
			if on, ok := s.snap.Meta(m.ID); !ok || on.Gen != m.Gen {
				s.markDirty(m.ID)
			}
		}
		s.FlushSnapshots()

		// The final TTL clocks, one manifest write for the lot.
		if err := s.snap.RefreshMeta(metas); err != nil {
			s.log.Error("snapshots: drain metadata flush failed", "err", err.Error())
		}
	})
}

// snapshotStats samples the persistence gauges.
func (s *Server) snapshotStats() parselclient.SnapshotStats {
	if s.snap == nil {
		return parselclient.SnapshotStats{}
	}
	s.snapMu.Lock()
	st := s.sstats
	st.Dirty = int64(len(s.snapDirty))
	s.snapMu.Unlock()
	st.Enabled = true
	st.SnapshotBytes = s.snap.TotalDiskBytes()
	return st
}
