package serve

import "parsel/parselclient"

// latencyBounds are the histogram bucket upper bounds in seconds,
// roughly log-spaced from 100us to 10s — the range a selection query
// can plausibly take on a loaded host. Observations above the last
// bound land only in the implicit +Inf bucket (the total count).
var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// histogram accumulates host latencies. It is not self-synchronized;
// the Server updates it under its stats mutex (queries are
// millisecond-scale, so a mutex per observation is noise).
type histogram struct {
	counts [len(latencyBounds)]int64 // non-cumulative per-bucket counts
	over   int64                     // observations above the last bound
	sum    float64
}

// observe records one latency in seconds.
func (h *histogram) observe(sec float64) {
	h.sum += sec
	for i, le := range latencyBounds {
		if sec <= le {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// snapshot renders the cumulative wire form.
func (h *histogram) snapshot() parselclient.Histogram {
	out := parselclient.Histogram{
		SumSeconds: h.sum,
		Buckets:    make([]parselclient.Bucket, len(latencyBounds)),
	}
	var cum int64
	for i, le := range latencyBounds {
		cum += h.counts[i]
		out.Buckets[i] = parselclient.Bucket{LE: le, Count: cum}
	}
	out.Count = cum + h.over
	return out
}
