package serve_test

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parsel"
	"parsel/internal/faults"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// The chaos suite: the differential e2e catalogue replayed through
// deterministic fault injection. The resilience contract under test is
// that a retrying client sees NO errors and BIT-IDENTICAL results
// (values and simulated metrics) through a transport that drops,
// delays, truncates, corrupts and rate-limits ~20% of everything — and
// that the same seed reproduces the same fault sequence exactly.

// chaosPolicy is the retry policy the chaos tests run under: enough
// attempts that a seeded 20% fault stream cannot exhaust them, no
// budget (the harness injects the outage on purpose), fake-clock
// backoff so the suite runs at full speed.
func chaosPolicy(seed uint64) parselclient.RetryPolicy {
	return parselclient.RetryPolicy{
		MaxAttempts: 12,
		BudgetRatio: -1,
		Seed:        seed,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

// chaosClient wires a client to d through in's fault-injecting
// transport.
func chaosClient(d *daemon, in *faults.Injector) *parselclient.Client {
	hc := &http.Client{Transport: in.Transport(d.ts.Client().Transport)}
	c := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(hc))
	c.Retry = chaosPolicy(99)
	return c
}

// TestDaemonChaosDifferentialE2E replays the differential workload
// catalogue through a seeded 20%-fault transport: every query must
// succeed (the faults are all retryable) with value and simulated
// metrics bit-identical to an undisturbed in-process pool — and a
// second run with the same seed must inject the identical fault
// sequence.
func TestDaemonChaosDifferentialE2E(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	ctx := context.Background()
	oracle, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	run := func(t *testing.T, seed uint64) []faults.Event {
		d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
		defer d.close()
		in := faults.New(faults.Options{
			Seed:  seed,
			Probs: faults.Uniform(0.20),
			Sleep: func(time.Duration) {},
		})
		c := chaosClient(d, in)

		for _, shape := range shapes {
			sorted := workload.Flatten(shape.shards)
			slices.Sort(sorted)
			n := int64(len(sorted))

			rank := (n + 1) / 2
			got, err := c.Select(ctx, shape.shards, rank)
			if err != nil {
				t.Fatalf("%s: select through faults: %v", shape.name, err)
			}
			want, err := oracle.Select(shape.shards, rank)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != sorted[rank-1] {
				t.Errorf("%s: select rank %d = %d, sort oracle says %d",
					shape.name, rank, got.Value, sorted[rank-1])
			}
			if got.Value != want.Value || simOf(got.Report) != simOf(want.Report) {
				t.Errorf("%s: select diverges through faults:\nhttp: %d %+v\npool: %d %+v",
					shape.name, got.Value, simOf(got.Report), want.Value, simOf(want.Report))
			}

			qs := []float64{0, 0.5, 1}
			gv, grep, err := c.Quantiles(ctx, shape.shards, qs)
			if err != nil {
				t.Fatalf("%s: quantiles through faults: %v", shape.name, err)
			}
			wv, wrep, err := oracle.Quantiles(shape.shards, qs)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(gv, wv) || simOf(grep) != simOf(wrep) {
				t.Errorf("%s: quantiles diverge through faults: http %v %+v, pool %v %+v",
					shape.name, gv, simOf(grep), wv, simOf(wrep))
			}

			gfn, gr, err := c.Summary(ctx, shape.shards)
			if err != nil {
				t.Fatalf("%s: summary through faults: %v", shape.name, err)
			}
			wfn, wr, err := oracle.Summary(shape.shards)
			if err != nil {
				t.Fatal(err)
			}
			if gfn != wfn || simOf(gr) != simOf(wr) {
				t.Errorf("%s: summary diverges through faults: http %+v, pool %+v",
					shape.name, gfn, wfn)
			}
		}

		if in.Faults() == 0 {
			t.Fatal("the 20% injector never fired; the suite proved nothing")
		}
		if st := c.RetryStats(); st.Retries == 0 {
			t.Errorf("client retried nothing against a 20%% fault stream: %+v", st)
		}
		return in.History()
	}

	h1 := run(t, 20260807)
	h2 := run(t, 20260807)
	if !slices.Equal(h1, h2) {
		t.Errorf("same seed injected different fault sequences across runs (%d vs %d events)",
			len(h1), len(h2))
	}
}

// TestDaemonChaosServerMiddleware splices the injector into the
// daemon's own handler chain (Options.Middleware): server-side 500/429
// bursts and connection aborts must likewise vanish behind the
// retrying client, and a deliberate abort must NOT be counted as a
// recovered panic.
func TestDaemonChaosServerMiddleware(t *testing.T) {
	in := faults.New(faults.Options{Seed: 7, Probs: faults.Uniform(0.20),
		Sleep: func(time.Duration) {}})
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{Middleware: in.Middleware()})
	defer d.close()
	c := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	c.Retry = chaosPolicy(5)
	ctx := context.Background()

	shards := workload.Generate(workload.Random, 4000, 4, 9)
	sorted := workload.Flatten(shards)
	slices.Sort(sorted)
	wantMedian := sorted[(int64(len(sorted))+1)/2-1]
	for i := 0; i < 40; i++ {
		res, err := c.Median(ctx, shards)
		if err != nil {
			t.Fatalf("median %d through server-side faults: %v", i, err)
		}
		if res.Value != wantMedian {
			t.Fatalf("median %d = %d through faults, want %d", i, res.Value, wantMedian)
		}
	}
	if in.Faults() == 0 {
		t.Fatal("the server-side injector never fired")
	}
	if st := d.server.Stats(); st.Server.Panics != 0 {
		t.Errorf("injected connection aborts were miscounted as recovered panics: %+v", st.Server)
	}
}

// TestDaemonPanicRecovery pins the recovery middleware: a panicking
// handler answers a structured 500 internal (counted in Panics and
// ServerErrors), the daemon survives, and a retrying client heals the
// fault without its caller noticing.
func TestDaemonPanicRecovery(t *testing.T) {
	var fired atomic.Bool
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/") && !fired.Swap(true) {
				panic("injected handler panic")
			}
			next.ServeHTTP(w, r)
		})
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{Middleware: mw, Logf: func(string, ...any) {}})
	defer d.close()
	ctx := context.Background()
	shards := [][]int64{{3, 1, 4}, {1, 5}}

	// A non-retrying client sees the structured 500.
	_, err := d.client.Median(ctx, shards)
	var api *parselclient.APIError
	if !errors.As(err, &api) || api.Status != 500 || api.Code != parselclient.CodeInternal {
		t.Fatalf("panicking handler answered %v, want a structured 500 internal", err)
	}

	// The daemon is fine afterwards.
	if res, err := d.client.Median(ctx, shards); err != nil || res.Value != 3 {
		t.Fatalf("daemon did not survive the panic: %v %v", res.Value, err)
	}
	st := d.server.Stats()
	if st.Server.Panics != 1 || st.Server.ServerErrors == 0 {
		t.Errorf("panic accounting: %+v, want Panics=1 and a ServerError", st.Server)
	}

	// A retrying client heals the same fault invisibly.
	fired.Store(false)
	rc := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	rc.Retry = chaosPolicy(3)
	if res, err := rc.Median(ctx, shards); err != nil || res.Value != 3 {
		t.Errorf("retrying client surfaced the recovered panic: %v %v", res.Value, err)
	}
}

// The deadline-propagation acceptance test lives in the root package
// (TestDaemonDeadlinePropagation, daemon_deadline_test.go): holding
// the pool's only machine deterministically needs the
// Pool.CheckoutForTest hook, which only the root test binary sees.

// TestDaemonChaosSnapshotPersistFailure pins graceful degradation of
// durability: with the snapshot directory yanked out from under the
// daemon, an upload still succeeds (persistence must never fail the
// write path), persist_errors counts the failure, /healthz degrades to
// 207 — and the first successful persist heals it back to 200.
func TestDaemonChaosSnapshotPersistFailure(t *testing.T) {
	sdir := filepath.Join(t.TempDir(), "snaps")
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{SnapshotDir: sdir, Logf: func(string, ...any) {}})
	defer d.close()
	ctx := context.Background()
	ds := d.client.Dataset("chaos")

	if _, err := ds.Upload(ctx, [][]int64{{3, 1, 4}, {1, 5}}); err != nil {
		t.Fatal(err)
	}
	d.server.FlushSnapshots()
	if hs, err := d.client.Healthz(ctx); err != nil || hs.Status != parselclient.HealthOK {
		t.Fatalf("healthy daemon reports %+v (%v), want ok", hs, err)
	}

	// Yank the disk. The next persist fails; the upload must not.
	if err := os.RemoveAll(sdir); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Upload(ctx, [][]int64{{9, 8}, {7, 6, 5}}); err != nil {
		t.Fatalf("upload failed on a persistence fault, violating the never-fail-the-upload contract: %v", err)
	}
	d.server.FlushSnapshots()
	st := d.server.Stats()
	if st.Snapshots.PersistErrors == 0 || !st.Snapshots.Degraded {
		t.Errorf("snapshot stats after disk loss: %+v, want persist_errors>0 and degraded", st.Snapshots)
	}
	hs, err := d.client.Healthz(ctx)
	if err != nil || hs.Status != parselclient.HealthDegraded {
		t.Errorf("healthz after disk loss: %+v (%v), want degraded", hs, err)
	}
	// Degraded still serves: Health is nil, queries and uploads work.
	if err := d.client.Health(ctx); err != nil {
		t.Errorf("degraded daemon refused traffic: %v", err)
	}
	if res, err := ds.Median(ctx); err != nil || res.Value != 7 {
		t.Errorf("degraded daemon misanswered a query: %v %v", res.Value, err)
	}

	// Give the disk back; the next successful persist clears the state.
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Upload(ctx, [][]int64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	d.server.FlushSnapshots()
	if hs, err = d.client.Healthz(ctx); err != nil || hs.Status != parselclient.HealthOK {
		t.Errorf("healthz after recovery: %+v (%v), want ok", hs, err)
	}
	if st = d.server.Stats(); st.Snapshots.Degraded {
		t.Errorf("degraded flag stuck after a successful persist: %+v", st.Snapshots)
	}
}
