package serve_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// logCapture collects the daemon's operational log lines for
// assertions on recovery warnings.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.lines, "\n")
}

// snapFiles lists the .snap files in a snapshot directory.
func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range matches {
		matches[i] = filepath.Base(matches[i])
	}
	return matches
}

// TestSnapshotPersistLifecycle pins the persistence side of the
// durability contract: an upload lands on disk after a flush, the
// stats gauges track it, and a delete or TTL eviction removes the
// snapshot so a restart cannot resurrect dead data.
func TestSnapshotPersistLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{SnapshotDir: dir, DatasetTTL: time.Minute})
	defer d.close()

	base := time.Now()
	var offset atomic.Int64
	d.server.SetNowForTest(func() time.Time {
		return base.Add(time.Duration(offset.Load()))
	})

	if _, err := d.client.Dataset("keep").Upload(ctx, [][]int64{{5, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Dataset("drop").Upload(ctx, [][]int64{{9}, {8}}); err != nil {
		t.Fatal(err)
	}
	d.server.FlushSnapshots()

	files := snapFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("snapshot files after flush: %v, want keep.snap and drop.snap", files)
	}
	st := d.server.Stats()
	if !st.Snapshots.Enabled || st.Snapshots.Persists < 2 || st.Snapshots.Dirty != 0 {
		t.Errorf("snapshot stats after flush: %+v", st.Snapshots)
	}
	if st.Snapshots.SnapshotBytes <= 0 || st.Snapshots.LastPersistUnixMS == 0 {
		t.Errorf("snapshot gauges empty after flush: %+v", st.Snapshots)
	}

	// DELETE removes the id's snapshot.
	if _, err := d.client.Dataset("drop").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	d.server.FlushSnapshots()
	if files := snapFiles(t, dir); len(files) != 1 || files[0] != "keep.snap" {
		t.Errorf("snapshot files after delete: %v, want only keep.snap", files)
	}

	// TTL eviction removes it too: lapse the clock, let a registry
	// touch sweep, and flush.
	offset.Store(int64(2 * time.Minute))
	if st := d.server.Stats(); st.Datasets.Expired != 1 {
		t.Fatalf("eviction did not run: %+v", st.Datasets)
	}
	d.server.FlushSnapshots()
	if files := snapFiles(t, dir); len(files) != 0 {
		t.Errorf("snapshot files after eviction: %v, want none", files)
	}

	// A replacement upload persists the new population under the same
	// file.
	if _, err := d.client.Dataset("keep").Upload(ctx, [][]int64{{7}, {7, 7}}); err != nil {
		t.Fatal(err)
	}
	d.server.FlushSnapshots()
	if files := snapFiles(t, dir); len(files) != 1 {
		t.Errorf("snapshot files after re-upload: %v", files)
	}
}

// TestSnapshotTTLRefreshPersisted pins that query-driven TTL
// refreshes reach the snapshot store: once the in-memory deadline has
// advanced at least half a TTL past the persisted one, the dataset is
// re-persisted (metadata-only), so a hard kill costs an
// actively-queried dataset at most half its TTL of freshness — it is
// not deleted at recovery as expired. Smaller advances are throttled
// (no fsync per query).
func TestSnapshotTTLRefreshPersisted(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const ttl = 10 * time.Minute
	d1 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, DatasetTTL: ttl})

	base := time.Now()
	var offset atomic.Int64
	d1.server.SetNowForTest(func() time.Time {
		return base.Add(time.Duration(offset.Load()))
	})

	rd := d1.client.Dataset("hot")
	if _, err := rd.Upload(ctx, [][]int64{{4, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	d1.server.FlushSnapshots()
	persists := d1.server.Stats().Snapshots.Persists

	// +6m: the refreshed deadline is 6m past the persisted one — over
	// the half-TTL threshold, so the refresh lands on disk.
	offset.Store(int64(6 * time.Minute))
	if _, err := rd.Select(ctx, 1); err != nil {
		t.Fatal(err)
	}
	d1.server.FlushSnapshots()
	if got := d1.server.Stats().Snapshots.Persists; got != persists+1 {
		t.Fatalf("TTL refresh persists: %d, want %d", got, persists+1)
	}
	// +7m: only 1m past the persisted deadline — throttled.
	offset.Store(int64(7 * time.Minute))
	if _, err := rd.Select(ctx, 1); err != nil {
		t.Fatal(err)
	}
	d1.server.FlushSnapshots()
	if got := d1.server.Stats().Snapshots.Persists; got != persists+1 {
		t.Errorf("sub-threshold refresh persisted: %d, want %d", got, persists+1)
	}
	// Hard kill (no drain): the restarted daemon restores the dataset
	// with the refreshed deadline — ~16m out, not the original 10m.
	d1.close()
	d2 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, DatasetTTL: ttl})
	defer d2.close()
	info, err := d2.client.Dataset("hot").Info(ctx)
	if err != nil {
		t.Fatalf("restored hot dataset: %v", err)
	}
	if info.ExpiresInMS < (11 * time.Minute).Milliseconds() {
		t.Errorf("restored deadline %dms out, want the refreshed ~16m, not the upload's 10m",
			info.ExpiresInMS)
	}
}

// TestSnapshotRestoreAdmission pins the typed refusal when the
// budget/count caps cannot admit a snapshot: the direct restore
// surface returns ErrSnapshotBudget, and startup recovery skips the
// entry with a logged warning instead of failing the daemon.
func TestSnapshotRestoreAdmission(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Persist a ~100-key dataset with a roomy daemon.
	d1 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir})
	big := workload.Generate(workload.Random, 100, 2, 3)
	if _, err := d1.client.Dataset("big").Upload(ctx, big); err != nil {
		t.Fatal(err)
	}
	d1.server.Drain()
	d1.close()

	// Direct restore against a tiny budget: the typed error.
	small := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{MaxResidentBytes: 80})
	defer small.close()
	err := small.server.RestoreDataset("direct", big, time.Now().Add(time.Hour), 1)
	if !errors.Is(err, serve.ErrSnapshotBudget) {
		t.Fatalf("restore over budget = %v, want ErrSnapshotBudget", err)
	}
	// The count cap refuses with the same typed error.
	capped := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{MaxDatasets: 1})
	defer capped.close()
	if err := capped.server.RestoreDataset("one", [][]int64{{1}}, time.Now().Add(time.Hour), 1); err != nil {
		t.Fatal(err)
	}
	err = capped.server.RestoreDataset("two", [][]int64{{2}}, time.Now().Add(time.Hour), 2)
	if !errors.Is(err, serve.ErrSnapshotBudget) {
		t.Fatalf("restore over count cap = %v, want ErrSnapshotBudget", err)
	}
	if err := capped.server.RestoreDataset("one", [][]int64{{3}}, time.Now().Add(time.Hour), 3); err == nil {
		t.Error("restore onto a resident id succeeded")
	}

	// Startup recovery with the same tiny budget: skipped with a
	// warning, never a crash; the snapshot file survives for a restart
	// with more room.
	var lc logCapture
	d2 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, MaxResidentBytes: 80, Logf: lc.logf})
	defer d2.close()
	st := d2.server.Stats()
	if st.Snapshots.Restored != 0 || st.Snapshots.RestoreSkipped != 1 {
		t.Errorf("recovery stats under tiny budget: %+v", st.Snapshots)
	}
	if !strings.Contains(lc.joined(), "not restored") {
		t.Errorf("no skip warning logged:\n%s", lc.joined())
	}
	if files := snapFiles(t, dir); len(files) != 1 {
		t.Errorf("refused snapshot was deleted: %v", files)
	}

	// A third daemon with the default budget restores it after all.
	d3 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir})
	defer d3.close()
	if st := d3.server.Stats(); st.Snapshots.Restored != 1 {
		t.Errorf("recovery with room: %+v", st.Snapshots)
	}
}

// TestSnapshotCrashSafety pins the startup half of crash safety: a
// partial write (temp file that never reached its rename) is
// invisible; a manifest entry whose file is missing is skipped with a
// logged warning, not a startup failure; a corrupt snapshot is
// quarantined with its typed error logged and the daemon serves on.
func TestSnapshotCrashSafety(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	d1 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir})
	for id, sh := range map[string][][]int64{
		"ok":      {{4, 2}, {6, 1}},
		"missing": {{1}, {2}},
		"corrupt": {{3, 3}, {3}},
	} {
		if _, err := d1.client.Dataset(id).Upload(ctx, sh); err != nil {
			t.Fatal(err)
		}
	}
	d1.server.Drain()
	d1.close()

	// Simulate the crash artifacts.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-partial.snap-42"), []byte("PSELSNAP-half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "missing.snap")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "corrupt.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var lc logCapture
	d2 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, Logf: lc.logf})
	defer d2.close()

	st := d2.server.Stats()
	if st.Snapshots.Restored != 1 || st.Snapshots.RestoreSkipped != 1 || st.Snapshots.Quarantined != 1 {
		t.Errorf("recovery stats: %+v", st.Snapshots)
	}
	logs := lc.joined()
	if !strings.Contains(logs, `"missing"`) {
		t.Errorf("missing-file skip not logged:\n%s", logs)
	}
	if !strings.Contains(logs, `"corrupt"`) {
		t.Errorf("quarantine not logged:\n%s", logs)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}

	// The surviving dataset serves (sorted population [1,2,4,6], the
	// median is rank 2); the others are typed not-founds.
	if res, err := d2.client.Dataset("ok").Median(ctx); err != nil || res.Value != 2 {
		t.Errorf("restored dataset median = %v %v, want 2", res.Value, err)
	}
	for _, id := range []string{"missing", "corrupt"} {
		if _, err := d2.client.Dataset(id).Median(ctx); !errors.Is(err, parselclient.ErrDatasetNotFound) {
			t.Errorf("query on unrecovered %q = %v, want ErrDatasetNotFound", id, err)
		}
	}
	// Info on the survivor reports its provenance.
	info, err := d2.client.Dataset("ok").Info(ctx)
	if err != nil || !info.Restored {
		t.Errorf("restored info: %+v %v, want Restored", info, err)
	}
	// ... which a re-upload clears.
	if _, err := d2.client.Dataset("ok").Upload(ctx, [][]int64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if info, err := d2.client.Dataset("ok").Info(ctx); err != nil || info.Restored {
		t.Errorf("info after re-upload: %+v %v, want not Restored", info, err)
	}
	// Quiesce the snapshotter before the test directory is torn down.
	d2.server.FlushSnapshots()
}

// TestSnapshotExpiredNotRestored pins that recovery honors the TTL:
// an entry whose deadline passed while the daemon was down is not
// restored and its file is cleaned up.
func TestSnapshotExpiredNotRestored(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d1 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, DatasetTTL: 50 * time.Millisecond})
	if _, err := d1.client.Dataset("brief").Upload(ctx, [][]int64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	d1.server.Drain()
	d1.close()

	time.Sleep(80 * time.Millisecond) // outlive the TTL while "down"

	d2 := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{SnapshotDir: dir, DatasetTTL: 50 * time.Millisecond})
	defer d2.close()
	st := d2.server.Stats()
	if st.Snapshots.Restored != 0 || st.Snapshots.RestoreSkipped != 1 {
		t.Errorf("expired entry recovery: %+v", st.Snapshots)
	}
	if files := snapFiles(t, dir); len(files) != 0 {
		t.Errorf("expired snapshot files survive: %v", files)
	}
}
