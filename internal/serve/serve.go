// Package serve is the HTTP front-end of the selection service: a
// handler that exposes a parsel.Pool's full query surface
// (select/median/quantile/quantiles/ranks/topk/bottomk/summary) as
// JSON-over-HTTP with per-request admission deadlines, a bounded
// admission queue, graceful drain, and a stats endpoint aggregating
// simulated-machine metrics and host latency histograms.
//
// The wire format is defined (and documented) in parsel/parselclient,
// which this package shares types with; cmd/parseld wraps this handler
// in a daemon process.
//
// # Overload behavior
//
// Three lines of defense keep the daemon responsive under load:
//
//  1. Admission queue: at most MaxMachines + QueueDepth requests are
//     admitted at once; the rest are rejected immediately with 429
//     "queue_full" (no queueing, constant-time rejection).
//  2. Admission deadline: an admitted request waits for a free
//     simulated machine at most its timeout_ms (capped by MaxTimeout,
//     defaulted by DefaultTimeout). Expiry returns 429 "pool_timeout" —
//     the pool's typed ErrPoolTimeout on the wire. A query that starts
//     always runs to completion, so no partial work is ever returned.
//  3. Drain: once draining, every new query gets 503 "shutting_down"
//     while in-flight queries finish normally.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsel"
	"parsel/internal/obs"
	"parsel/internal/snapshot"
	"parsel/parselclient"
)

// Tenant is one static tenant of a multi-tenant daemon: a bearer
// token plus the slice of the daemon's resources the tenant may hold.
type Tenant struct {
	// Name identifies the tenant in stats and snapshot manifests.
	Name string `json:"name"`
	// Token is the static bearer credential; requests carrying it in
	// the Authorization header act as this tenant.
	Token string `json:"token"`
	// MaxResidentBytes budgets the tenant's resident dataset bytes;
	// 0 means bounded only by the daemon-wide budget.
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// MaxDatasets caps the tenant's resident dataset count; 0 means
	// bounded only by the daemon-wide cap.
	MaxDatasets int `json:"max_datasets"`
}

// tenantEntry is one tenant's live admission ledger. The ledger
// fields (bytes, datasets) move in lockstep with the dataset registry
// and are guarded by dsMu, as are the request counters (the auth path
// touches the registry lock once per request).
type tenantEntry struct {
	cfg      Tenant
	bytes    int64
	datasets int64
	requests int64
	rejected int64
}

// Options configures a Server. Zero-valued knobs take defaults.
type Options struct {
	// Pool is the resident machine pool int64 queries run on, and the
	// template for any kind pool not given explicitly. Required.
	Pool *parsel.Pool[int64]
	// PoolFloat64 runs float64-kinded queries. When nil, New builds
	// one from Pool's options and machine count and owns it (Close
	// releases it).
	PoolFloat64 *parsel.Pool[float64]
	// PoolString runs string-kinded queries. When nil, New builds one
	// from Pool's options and machine count and owns it.
	PoolString *parsel.Pool[string]
	// Tenants, when non-empty, turns on tenant admission: every
	// endpoint except /healthz requires a bearer token matching one
	// tenant, uploads charge that tenant's ledger, and /v1/stats grows
	// per-tenant blocks. Empty leaves the daemon single-tenant and
	// unauthenticated, exactly as before.
	Tenants []Tenant
	// DefaultTimeout is the admission deadline for requests that do not
	// carry timeout_ms (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_ms (default 60s).
	MaxTimeout time.Duration
	// QueueDepth is how many requests beyond the pool's MaxMachines may
	// wait for a machine before new ones are rejected outright with
	// queue_full (default 64).
	QueueDepth int
	// Limits bounds individual requests; see Limits.
	Limits Limits
	// DatasetTTL is how long a resident dataset survives without being
	// uploaded to or queried before the lazy sweep evicts it (default 10
	// minutes).
	DatasetTTL time.Duration
	// MaxResidentBytes budgets the total resident size of all datasets;
	// an upload that would exceed it is refused with 413 resident_budget
	// (default 1 GiB).
	MaxResidentBytes int64
	// MaxDatasets caps the number of resident datasets, so unbounded
	// tiny (even empty) uploads cannot grow the registry under the bytes
	// budget (default 1024).
	MaxDatasets int
	// SnapshotDir, when non-empty, makes resident datasets durable: a
	// snapshot store in this directory mirrors the registry (persisted
	// in the background on upload, synchronously on drain) and startup
	// recovers every live manifest entry under its original id and TTL
	// state. Empty disables persistence. A Server built with a
	// SnapshotDir owns a background snapshotter goroutine that runs
	// until Drain; an embedder that discards such a Server without
	// draining leaks it for the process lifetime.
	SnapshotDir string
	// Logf receives the daemon's operational log lines (snapshot
	// recovery warnings, persist failures, recovered panics), rendered
	// as "msg key=value" text — the pre-slog hook, kept for embedders.
	// Logger takes precedence when both are set; with neither, records
	// go to slog.Default().
	Logf func(format string, args ...any)
	// Logger receives the daemon's structured log records: operational
	// events (Logf's set, with typed attrs), admission rejections and
	// panics at Warn/Error, and per-request access records at Debug —
	// each carrying the request's X-Parsel-Request-Id.
	Logger *slog.Logger
	// TenantSource, when non-nil, powers POST /v1/admin/tenants/reload:
	// the handler calls it for the fresh tenant list (cmd/parseld wires
	// it to reread the -tenants file) and applies it via ReloadTenants.
	// Nil leaves the endpoint unregistered (404). Only meaningful on a
	// daemon started with Tenants; the endpoint authenticates like any
	// other, so any configured tenant's token can trigger a reload.
	TenantSource func() ([]Tenant, error)
	// Middleware, when non-nil, wraps the routing handler — the hook
	// chaos tests use to splice a fault injector
	// (internal/faults.Injector.Middleware) into the daemon. It runs
	// inside the panic-recovery middleware, so an injected
	// http.ErrAbortHandler still aborts the connection while any other
	// panic is recovered and counted.
	Middleware func(http.Handler) http.Handler
}

// withDefaults fills the zero-valued knobs.
func (o Options) withDefaults() Options {
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 60 * time.Second
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.DatasetTTL == 0 {
		o.DatasetTTL = 10 * time.Minute
	}
	if o.MaxResidentBytes == 0 {
		o.MaxResidentBytes = 1 << 30
	}
	if o.MaxDatasets == 0 {
		o.MaxDatasets = 1024
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// Server is the HTTP handler of the selection daemon. Construct with
// New; it is safe for concurrent use.
type Server struct {
	opts    Options
	pool    *parsel.Pool[int64]
	poolF64 *parsel.Pool[float64]
	poolStr *parsel.Pool[string]
	// ownedClose releases the kind pools New built itself (nil-valued
	// Options fields); Close runs them.
	ownedClose []func()
	// tenancy is fixed at New: whether the daemon authenticates at all.
	// Immutable, so the admission fast path reads it lock-free;
	// ReloadTenants can swap the maps below but never toggle this.
	tenancy bool
	// tenants maps bearer token → ledger, tenantsByName maps tenant
	// name → the same ledgers (snapshot recovery attributes restored
	// datasets by name), and tenantNames orders the /v1/stats blocks.
	// All are nil when tenancy is off; guarded by dsMu (ReloadTenants
	// replaces them wholesale).
	tenants       map[string]*tenantEntry
	tenantsByName map[string]*tenantEntry
	tenantNames   []string
	mux           *http.ServeMux
	handler       http.Handler  // recovery → Options.Middleware → routing
	admit         chan struct{} // admission tokens: MaxMachines + QueueDepth

	mu       sync.Mutex
	draining bool
	srv      parselclient.ServerStats
	sim      parselclient.SimStats

	// metrics is the obs instrument set behind GET /metrics; its
	// latency histogram is also what Stats() renders, so the two
	// endpoints always agree.
	metrics *serverMetrics

	// The resident-dataset registry (see dataset.go). dsMu also guards
	// now, the clock the TTL sweep reads — a test hook.
	dsMu     sync.Mutex
	datasets map[string]*dsEntry
	dsBytes  int64
	dstats   parselclient.DatasetStats
	now      func() time.Time

	// Dataset durability (see snapshot.go); snap is nil when disabled.
	// Lock order: snapMu is only ever taken after dsMu, never before.
	snap      *snapshot.Store
	optionsFP string
	log       *slog.Logger
	snapGen   atomic.Int64
	// snapMu guards the dirty set, the inflight count and the stats;
	// snapCond (on snapMu) wakes flushers when an in-flight persist
	// finishes. snapIOMu serializes persistOne bodies so a stale
	// registry observation can never overwrite a newer one's disk
	// state.
	snapMu       sync.Mutex
	snapCond     *sync.Cond
	snapDirty    map[string]struct{}
	snapInflight int
	sstats       parselclient.SnapshotStats
	snapIOMu     sync.Mutex
	snapWake     chan struct{}
	snapStop     chan struct{}
	snapDone     chan struct{}
	snapOnce     sync.Once
}

// New builds the daemon handler over a pool. The pools passed in stay
// owned by the caller (Drain does not close them), so one pool can
// outlive or be shared across servers; kind pools New builds itself
// are owned by the Server and released by Close.
func New(opts Options) (*Server, error) {
	if opts.Pool == nil {
		return nil, errors.New("serve: Options.Pool is required")
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: QueueDepth %d is negative", opts.QueueDepth)
	}
	if opts.DefaultTimeout < 0 || opts.MaxTimeout < 0 {
		return nil, fmt.Errorf("serve: negative timeout (default %v, max %v)",
			opts.DefaultTimeout, opts.MaxTimeout)
	}
	if opts.Limits.MaxBodyBytes < 0 || opts.Limits.MaxProcs < 0 ||
		opts.Limits.MaxRanks < 0 || opts.Limits.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: negative limit: %+v", opts.Limits)
	}
	if opts.DatasetTTL < 0 {
		return nil, fmt.Errorf("serve: DatasetTTL %v is negative", opts.DatasetTTL)
	}
	if opts.MaxResidentBytes < 0 || opts.MaxDatasets < 0 {
		return nil, fmt.Errorf("serve: negative dataset bound (budget %d bytes, %d datasets)",
			opts.MaxResidentBytes, opts.MaxDatasets)
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		pool:      opts.Pool,
		poolF64:   opts.PoolFloat64,
		poolStr:   opts.PoolString,
		admit:     make(chan struct{}, opts.Pool.MaxMachines()+opts.QueueDepth),
		datasets:  make(map[string]*dsEntry),
		now:       time.Now,
		optionsFP: fmt.Sprintf("%+v", opts.Pool.Options()),
		log:       opts.Logger,
		metrics:   newServerMetrics(),
		snapDirty: make(map[string]struct{}),
		snapWake:  make(chan struct{}, 1),
		snapStop:  make(chan struct{}),
		snapDone:  make(chan struct{}),
	}
	if s.log == nil && opts.Logf != nil {
		s.log = obs.LogfLogger(opts.Logf)
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	// The non-int64 kind pools default to clones of the int64 pool's
	// shape, so a daemon configured for one kind serves all three.
	// Admission (the admit channel) is shared across kinds: it bounds
	// requests in flight, not machines per kind.
	if s.poolF64 == nil {
		p, err := parsel.NewPool[float64](s.pool.Options(),
			parsel.PoolOptions{MaxMachines: s.pool.MaxMachines()})
		if err != nil {
			return nil, fmt.Errorf("serve: build float64 pool: %w", err)
		}
		s.poolF64 = p
		s.ownedClose = append(s.ownedClose, func() { p.Close() })
	}
	if s.poolStr == nil {
		p, err := parsel.NewPool[string](s.pool.Options(),
			parsel.PoolOptions{MaxMachines: s.pool.MaxMachines()})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("serve: build string pool: %w", err)
		}
		s.poolStr = p
		s.ownedClose = append(s.ownedClose, func() { p.Close() })
	}
	if len(opts.Tenants) > 0 {
		byToken, byName, names, err := buildTenantMaps(opts.Tenants)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.tenancy = true
		s.tenants, s.tenantsByName, s.tenantNames = byToken, byName, names
	}
	s.snapCond = sync.NewCond(&s.snapMu)
	if opts.SnapshotDir != "" {
		if err := s.initSnapshots(opts.SnapshotDir); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	for path, ep := range endpoints {
		s.mux.HandleFunc(path, s.queryHandler(ep))
	}
	s.mux.HandleFunc("/v1/datasets/", s.handleDatasets)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	if opts.TenantSource != nil {
		s.mux.HandleFunc("/v1/admin/tenants/reload", s.handleTenantReload)
	}
	s.handler = http.Handler(http.HandlerFunc(s.route))
	if opts.Middleware != nil {
		s.handler = opts.Middleware(s.handler)
	}
	s.handler = s.recoverPanics(s.handler)
	return s, nil
}

// buildTenantMaps validates a tenant list and builds the lookup maps:
// token → ledger, name → the same ledgers, and the stats ordering.
// Shared between New and ReloadTenants so both enforce identical
// rules.
func buildTenantMaps(tenants []Tenant) (map[string]*tenantEntry, map[string]*tenantEntry, []string, error) {
	byToken := make(map[string]*tenantEntry, len(tenants))
	byName := make(map[string]*tenantEntry, len(tenants))
	var names []string
	for _, t := range tenants {
		if t.Name == "" || t.Token == "" {
			return nil, nil, nil, fmt.Errorf("serve: tenant needs both a name and a token (got name %q)", t.Name)
		}
		if t.MaxResidentBytes < 0 || t.MaxDatasets < 0 {
			return nil, nil, nil, fmt.Errorf("serve: tenant %q has a negative bound", t.Name)
		}
		if _, dup := byToken[t.Token]; dup {
			return nil, nil, nil, errors.New("serve: duplicate tenant token")
		}
		if _, dup := byName[t.Name]; dup {
			return nil, nil, nil, fmt.Errorf("serve: duplicate tenant name %q", t.Name)
		}
		te := &tenantEntry{cfg: t}
		byToken[t.Token] = te
		byName[t.Name] = te
		names = append(names, t.Name)
	}
	return byToken, byName, names, nil
}

// ReloadTenants swaps the tenant configuration without a restart —
// rotated tokens take effect on the next request, adjusted budgets on
// the next upload. The ledgers of tenants that survive the reload
// (matched by name) carry over intact: their resident datasets stay
// attributed and counted. A tenant that disappears keeps its resident
// datasets until TTL or deletion, but its token stops authenticating
// immediately. Tenancy itself cannot be toggled at runtime: a daemon
// started without tenants stays unauthenticated (the admission fast
// path is lock-free on that invariant), and a tenanted daemon refuses
// an empty reload rather than silently opening up.
func (s *Server) ReloadTenants(tenants []Tenant) error {
	if !s.tenancy {
		return errors.New("serve: daemon runs without tenants; start with Options.Tenants to enable tenancy")
	}
	if len(tenants) == 0 {
		return errors.New("serve: refusing to reload an empty tenant list (it would lock every caller out)")
	}
	byToken, byName, names, err := buildTenantMaps(tenants)
	if err != nil {
		return err
	}
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	for name, te := range byName {
		if old, ok := s.tenantsByName[name]; ok {
			te.bytes = old.bytes
			te.datasets = old.datasets
			te.requests = old.requests
			te.rejected = old.rejected
		}
	}
	s.tenants, s.tenantsByName, s.tenantNames = byToken, byName, names
	return nil
}

// SetNowForTest replaces the clock the dataset TTL sweep reads, so
// tests can advance time deterministically instead of sleeping.
func (s *Server) SetNowForTest(now func() time.Time) {
	s.dsMu.Lock()
	s.now = now
	s.dsMu.Unlock()
}

// ServeHTTP implements http.Handler: the recovery middleware, the
// optional Options.Middleware, then routing.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// route is the innermost handler: the unknown-path check, tenant
// authentication, then the mux.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if _, ok := endpoints[r.URL.Path]; !ok &&
		!strings.HasPrefix(r.URL.Path, "/v1/datasets/") &&
		r.URL.Path != "/v1/stats" && r.URL.Path != "/healthz" &&
		r.URL.Path != "/metrics" &&
		!(r.URL.Path == "/v1/admin/tenants/reload" && s.opts.TenantSource != nil) {
		writeError(w, http.StatusNotFound, parselclient.CodeNotFound,
			fmt.Sprintf("no endpoint %q", r.URL.Path))
		return
	}
	if r, ok := s.authenticate(w, r); ok {
		s.mux.ServeHTTP(w, r)
	}
}

// tenantCtxKey carries the authenticated tenant's name through the
// request context; absent (or empty) on a daemon without tenants.
type tenantCtxKey struct{}

// tenantOf reads the authenticated tenant name off the request.
func tenantOf(r *http.Request) string {
	name, _ := r.Context().Value(tenantCtxKey{}).(string)
	return name
}

// authenticate enforces tenant admission when Options.Tenants is set:
// every endpoint except /healthz (load balancers probe unauthenticated)
// must carry "Authorization: Bearer <token>" naming a configured
// tenant. On success the tenant's name rides the request context; any
// other outcome is a 401 unknown_tenant, already written here.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (*http.Request, bool) {
	if !s.tenancy || r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		return r, true
	}
	auth := r.Header.Get("Authorization")
	scheme, token, _ := strings.Cut(auth, " ")
	var te *tenantEntry
	s.dsMu.Lock()
	if strings.EqualFold(scheme, "Bearer") {
		te = s.tenants[strings.TrimSpace(token)]
	}
	if te != nil {
		te.requests++
	}
	s.dsMu.Unlock()
	if te == nil {
		s.countError(http.StatusUnauthorized, parselclient.CodeUnknownTenant)
		writeError(w, http.StatusUnauthorized, parselclient.CodeUnknownTenant,
			"this daemon requires a bearer token naming a configured tenant")
		return r, false
	}
	if tr := trackFrom(r.Context()); tr != nil {
		tr.tenant = te.cfg.Name
	}
	ctx := context.WithValue(r.Context(), tenantCtxKey{}, te.cfg.Name)
	return r.WithContext(ctx), true
}

// statusWriter remembers whether the handler already started a
// response — so the recovery middleware knows if a 500 can still be
// written — and which status code it committed, for the request
// metrics and access log.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
}

// commit records that the response is started; the first committed
// status sticks.
func (w *statusWriter) commit(code int) {
	if !w.wrote {
		w.wrote = true
		w.code = code
	}
}

func (w *statusWriter) WriteHeader(code int) {
	w.commit(code)
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.commit(http.StatusOK)
	return w.ResponseWriter.Write(b)
}

// The statusWriter variants forward the optional interfaces the
// underlying ResponseWriter supports. A plain statusWriter would hide
// them — interface assertions see the wrapper, not what it wraps — so
// wrapping the net/http writer used to cost streaming handlers their
// Flush and the body copy its sendfile fast path.

type statusWriterFlusher struct {
	*statusWriter
	f http.Flusher
}

func (w *statusWriterFlusher) Flush() {
	// A flush sends the headers if none were written; the status is
	// committed either way.
	w.commit(http.StatusOK)
	w.f.Flush()
}

type statusWriterReaderFrom struct {
	*statusWriter
	rf io.ReaderFrom
}

func (w *statusWriterReaderFrom) ReadFrom(r io.Reader) (int64, error) {
	w.commit(http.StatusOK)
	return w.rf.ReadFrom(r)
}

type statusWriterFlusherReaderFrom struct {
	statusWriterFlusher
	rf io.ReaderFrom
}

func (w *statusWriterFlusherReaderFrom) ReadFrom(r io.Reader) (int64, error) {
	w.commit(http.StatusOK)
	return w.rf.ReadFrom(r)
}

// wrapStatusWriter wraps w for the recovery middleware, returning the
// tracking core plus the writer to pass downstream — the narrowest
// variant that still exposes every optional interface w supports.
func wrapStatusWriter(w http.ResponseWriter) (*statusWriter, http.ResponseWriter) {
	sw := &statusWriter{ResponseWriter: w}
	f, isFlusher := w.(http.Flusher)
	rf, isReaderFrom := w.(io.ReaderFrom)
	switch {
	case isFlusher && isReaderFrom:
		return sw, &statusWriterFlusherReaderFrom{statusWriterFlusher{sw, f}, rf}
	case isFlusher:
		return sw, &statusWriterFlusher{sw, f}
	case isReaderFrom:
		return sw, &statusWriterReaderFrom{sw, rf}
	default:
		return sw, sw
	}
}

// recoverPanics is the outermost middleware: a panicking handler
// answers a structured 500 instead of tearing down the connection (and
// the daemon's goroutine) silently. http.ErrAbortHandler re-panics —
// it is the standard library's (and the fault injector's) deliberate
// abort-the-connection signal, not a fault to mask. Recovered panics
// are logged with the stack and counted in ServerStats.Panics.
// It is also where request tracking begins and ends: the request id
// (the client's X-Parsel-Request-Id, or a fresh one) is resolved,
// echoed on the response up front, and carried through the context; on
// the way out the request lands in parsel_requests_total, the stage
// histograms, and the Debug-level access log. An ErrAbortHandler
// re-panic skips the bookkeeping — the connection died mid-flight, so
// there is no status code to attribute.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := &reqTrack{start: time.Now(), id: r.Header.Get(RequestIDHeader)}
		if tr.id == "" {
			tr.id = obs.NewRequestID()
		}
		r = r.WithContext(context.WithValue(r.Context(), trackKey{}, tr))
		sw, dw := wrapStatusWriter(w)
		dw.Header().Set(RequestIDHeader, tr.id)
		defer func() {
			rec := recover()
			if rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.mu.Lock()
				s.srv.Panics++
				s.mu.Unlock()
				s.countError(http.StatusInternalServerError, parselclient.CodeInternal)
				s.log.Error("serve: panic recovered",
					"request_id", tr.id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, parselclient.CodeInternal,
						"internal fault (recovered panic)")
				}
			}
			s.finishRequest(tr, sw.code, r)
		}()
		next.ServeHTTP(dw, r)
	})
}

// Drain begins graceful shutdown: every subsequent query is answered
// 503 shutting_down, while queries already admitted run to completion.
// With snapshots enabled it stops the background snapshotter and
// persists the registry state — every resident dataset, current TTL
// clocks included — so a restart on the same directory comes back
// warm. Requests that were already admitted may still commit uploads
// or deletes after this flush: pair Drain with http.Server.Shutdown
// (which waits them out), then call FlushSnapshots once more so the
// store holds exactly what clients were acknowledged, and close the
// pool last — the order cmd/parseld uses.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainSnapshots()
}

// Close releases the kind pools the Server built itself (never the
// caller's Options pools). Call it after Drain and the HTTP server's
// shutdown — a closed pool fails queries still in flight.
func (s *Server) Close() {
	for _, f := range s.ownedClose {
		f()
	}
	s.ownedClose = nil
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats snapshots the daemon's counters: pool, server, aggregate
// simulated metrics, and the host latency histogram.
func (s *Server) Stats() parselclient.Stats {
	pst := s.pool.Stats()
	s.dsMu.Lock()
	s.sweepLocked(s.now())
	dst := s.dstats
	dst.Count = int64(len(s.datasets))
	dst.ResidentBytes = s.dsBytes
	dst.BudgetBytes = s.opts.MaxResidentBytes
	var tenants map[string]parselclient.TenantStats
	if s.tenants != nil {
		tenants = make(map[string]parselclient.TenantStats, len(s.tenantNames))
		for _, name := range s.tenantNames {
			te := s.tenantsByName[name]
			tenants[name] = parselclient.TenantStats{
				Datasets:         te.datasets,
				ResidentBytes:    te.bytes,
				MaxResidentBytes: te.cfg.MaxResidentBytes,
				MaxDatasets:      te.cfg.MaxDatasets,
				Requests:         te.requests,
				Rejected:         te.rejected,
			}
		}
	}
	s.dsMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := s.srv
	srv.Inflight = int64(len(s.admit))
	srv.Draining = s.draining
	return parselclient.Stats{
		Pool: parselclient.PoolStats{
			Creates:     pst.Creates,
			Hits:        pst.Hits,
			Reshapes:    pst.Reshapes,
			Waits:       pst.Waits,
			Timeouts:    pst.Timeouts,
			Resident:    pst.Resident,
			Idle:        pst.Idle,
			MaxMachines: s.pool.MaxMachines(),
		},
		Server:    srv,
		Sim:       s.sim,
		Datasets:  dst,
		Tenants:   tenants,
		Snapshots: s.snapshotStats(),
		Latency:   wireHistogram(s.metrics.latency.Snapshot()),
	}
}

// queryHandler builds the handler for one query endpoint.
func (s *Server) queryHandler(ep Endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
				"queries are POST requests")
			return
		}
		if s.refuseIfDraining(w) {
			return
		}
		// Admission: bounded queue, constant-time rejection beyond it.
		release, ok := s.admitOrReject(w, r)
		if !ok {
			return
		}
		defer release()

		body, err := readBody(w, r, s.opts.Limits.MaxBodyBytes)
		if err != nil {
			s.writeRequestError(w, err)
			return
		}
		kind, err := sniffKeyKind(body, "")
		if err != nil {
			s.writeRequestError(w, err)
			return
		}
		switch kind {
		case parselclient.KeyKindFloat64:
			runQuery[float64](s, w, r, ep, body, start)
		case parselclient.KeyKindString:
			runQuery[string](s, w, r, ep, body, start)
		default:
			runQuery[int64](s, w, r, ep, body, start)
		}
	}
}

// runQuery is the kind-typed tail of a one-shot query: parse the body
// under K's schema, run it on K's pool, answer in the negotiated
// encoding. Admission already happened in the caller.
func runQuery[K parselclient.Key](s *Server, w http.ResponseWriter, r *http.Request, ep Endpoint, body []byte, start time.Time) {
	req, err := ParseRequestOf[K](ep, body, s.opts.Limits)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	ctx, cancel := s.admissionContext(r, req.TimeoutMS)
	defer cancel()
	tr := trackFrom(r.Context())
	if tr != nil {
		tr.kind = parselclient.KeyKindOf[K]()
		tr.markQueue()
		ctx = parsel.WithCheckoutObserver(ctx, tr.observeCheckout)
	}
	execStart := time.Now()
	resp, err := executeOn(ctx, poolOf[K](s), ep, req)
	if tr != nil {
		tr.exec = time.Since(execStart)
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	s.observe(time.Since(start), resp.Report)
	if tr != nil {
		w.Header().Set(StagesHeader, tr.stagesValue())
	}
	writeResultOf(w, wantsFrame(r), resp)
}

// poolOf picks the Server's pool for key kind K.
func poolOf[K parselclient.Key](s *Server) *parsel.Pool[K] {
	var z K
	switch any(z).(type) {
	case float64:
		return any(s.poolF64).(*parsel.Pool[K])
	case string:
		return any(s.poolStr).(*parsel.Pool[K])
	default:
		return any(s.pool).(*parsel.Pool[K])
	}
}

// wantsFrame reports whether the request's Accept header asks for the
// binary frame encoding of the result. Anything else (absent, */*,
// JSON) keeps the JSON default; error responses are JSON regardless.
func wantsFrame(r *http.Request) bool {
	for _, v := range r.Header.Values("Accept") {
		for _, part := range strings.Split(v, ",") {
			if isFrameContentType(part) {
				return true
			}
		}
	}
	return false
}

// isFrameContentType reports whether a Content-Type (or Accept member)
// names the binary frame encoding, ignoring parameters. Media types
// are case-insensitive (RFC 9110 §8.3.1), so the match folds case.
func isFrameContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), parselclient.ContentTypeFrame)
}

// frameBits reinterprets a result's values as the frame's int64 bit
// container: int64 passes through, float64 contributes its IEEE-754
// bits. nil (with false) means the kind has no frame encoding.
func frameBits[K parselclient.Key](vals []K) ([]int64, bool) {
	switch v := any(vals).(type) {
	case []int64:
		return v, true
	case []float64:
		bits := make([]int64, len(v))
		for i, f := range v {
			bits[i] = int64(math.Float64bits(f))
		}
		return bits, true
	default:
		return nil, false
	}
}

// writeResultOf writes one successful query response in the negotiated
// encoding: JSON by default, a one-entry binary frame when Accept asked
// for it. String results have no frame encoding and are answered as
// JSON regardless of Accept — negotiation is per response Content-Type,
// so a framing client still decodes them.
func writeResultOf[K parselclient.Key](w http.ResponseWriter, frame bool, resp *parselclient.ResponseOf[K]) {
	if !frame || parselclient.KeyKindOf[K]() == parselclient.KeyKindString {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeFrameResultsOf(w, []parselclient.QueryManyResultOf[K]{{ResponseOf: *resp}})
}

// writeFrameResultsOf writes results as a binary frame, one entry per
// item. Non-empty values move into each entry's binary section (as the
// kind's bit pattern) and out of its JSON metadata; empty or absent
// values stay in the metadata, so the []-versus-null distinction — and
// with it bit-identity to the JSON encoding — survives the frame. A
// success entry's metadata marshals exactly like a bare response (the
// error field is omitted when nil). Callers must not reach here for
// string results — they have no bit container.
func writeFrameResultsOf[K parselclient.Key](w http.ResponseWriter, results []parselclient.QueryManyResultOf[K]) {
	entries := make([]snapshot.FrameEntry, len(results))
	for i := range results {
		item := results[i]
		if len(item.Values) > 0 {
			bits, ok := frameBits(item.Values)
			if !ok {
				writeError(w, http.StatusInternalServerError, parselclient.CodeInternal,
					fmt.Sprintf("result %d has no frame encoding", i))
				return
			}
			entries[i].Values = bits
			item.Values = nil
		}
		meta, err := json.Marshal(item)
		if err != nil {
			writeError(w, http.StatusInternalServerError, parselclient.CodeInternal,
				fmt.Sprintf("encode result %d: %v", i, err))
			return
		}
		entries[i].Meta = meta
	}
	w.Header().Set("Content-Type", parselclient.ContentTypeFrame)
	w.Header().Set("Content-Length", strconv.FormatInt(snapshot.FrameSize(entries), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = snapshot.WriteFrameTo(w, entries)
}

// readBody drains the request body under the byte limit, mapping an
// overrun to the structured too_large error.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, parseErrf(parselclient.CodeTooLarge,
				"body exceeds %d bytes", mbe.Limit)
		}
		return nil, parseErrf(parselclient.CodeBadJSON, "read body: %v", err)
	}
	return body, nil
}

// admissionContext derives the admission deadline: the request's
// timeout_ms if given, else the server default — further bounded by
// the client's propagated X-Parsel-Deadline budget (a caller about to
// give up must never occupy a machine), capped by MaxTimeout, and
// composed with the connection's own context so a vanished client
// stops waiting for a machine.
func (s *Server) admissionContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if hd := headerDeadline(r); hd > 0 && hd < d {
		d = hd
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// headerDeadline reads the client's remaining deadline budget from the
// propagation header, in milliseconds; absent or malformed values mean
// no bound (the header is an optimization, never a validation surface).
func headerDeadline(r *http.Request) time.Duration {
	v := r.Header.Get(parselclient.DeadlineHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// wireKindField is the key_kind value responses of kind K carry:
// empty for int64 (keeping the historical wire byte-identical), the
// kind name otherwise.
func wireKindField[K parselclient.Key]() string {
	if kind := parselclient.KeyKindOf[K](); kind != parselclient.KeyKindInt64 {
		return kind
	}
	return ""
}

// executeOn dispatches one validated request to a kind's pool and
// shapes the response.
func executeOn[K parselclient.Key](ctx context.Context, pool *parsel.Pool[K], ep Endpoint, req *parselclient.RequestOf[K]) (*parselclient.ResponseOf[K], error) {
	switch ep {
	case EpSelect:
		res, err := pool.SelectContext(ctx, req.Shards, *req.Rank)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpMedian:
		res, err := pool.MedianContext(ctx, req.Shards)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpQuantile:
		res, err := pool.QuantileContext(ctx, req.Shards, *req.Q)
		if err != nil {
			return nil, err
		}
		return scalarResponse(res), nil
	case EpQuantiles:
		vals, rep, err := pool.QuantilesContext(ctx, req.Shards, req.Qs)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpRanks:
		vals, rep, err := pool.SelectRanksContext(ctx, req.Shards, req.Ranks)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpTopK:
		vals, rep, err := pool.TopKContext(ctx, req.Shards, *req.K)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpBottomK:
		vals, rep, err := pool.BottomKContext(ctx, req.Shards, *req.K)
		if err != nil {
			return nil, err
		}
		return multiResponse(vals, rep), nil
	case EpSummary:
		fn, rep, err := pool.SummaryContext(ctx, req.Shards)
		if err != nil {
			return nil, err
		}
		return &parselclient.ResponseOf[K]{
			KeyKind: wireKindField[K](),
			Summary: &parselclient.SummaryOf[K]{
				Min: fn.Min, Q1: fn.Q1, Median: fn.Median, Q3: fn.Q3, Max: fn.Max,
			},
			Report: parselclient.WireReport(rep),
		}, nil
	}
	return nil, fmt.Errorf("serve: unknown endpoint %d", int(ep))
}

// scalarResponse shapes a single-value result.
func scalarResponse[K parselclient.Key](res parsel.Result[K]) *parselclient.ResponseOf[K] {
	v := res.Value
	return &parselclient.ResponseOf[K]{
		KeyKind: wireKindField[K](), Value: &v, Report: parselclient.WireReport(res.Report),
	}
}

// multiResponse shapes a multi-value result; the empty (k=0) result
// stays a JSON [] rather than null.
func multiResponse[K parselclient.Key](vals []K, rep parsel.Report) *parselclient.ResponseOf[K] {
	if vals == nil {
		vals = []K{}
	}
	return &parselclient.ResponseOf[K]{
		KeyKind: wireKindField[K](), Values: vals, Report: parselclient.WireReport(rep),
	}
}

// errorStatus maps engine/pool errors onto HTTP status + wire code. The
// daemon's contract: a typed library error crosses the wire with a
// stable code the client maps back to the same typed error.
func errorStatus(err error) (int, parselclient.Code) {
	switch {
	case errors.Is(err, parsel.ErrPoolTimeout):
		return http.StatusTooManyRequests, parselclient.CodePoolTimeout
	case errors.Is(err, parsel.ErrPoolClosed):
		return http.StatusServiceUnavailable, parselclient.CodeShuttingDown
	case errors.Is(err, parsel.ErrDatasetClosed):
		// The dataset was deleted or evicted between lookup and query
		// start: from the wire's perspective it no longer exists.
		return http.StatusNotFound, parselclient.CodeDatasetNotFound
	case errors.Is(err, parsel.ErrRankRange):
		return http.StatusBadRequest, parselclient.CodeRankRange
	case errors.Is(err, parsel.ErrBadQuantile):
		return http.StatusBadRequest, parselclient.CodeBadQuantile
	case errors.Is(err, parsel.ErrNoData):
		return http.StatusBadRequest, parselclient.CodeNoData
	case errors.Is(err, parsel.ErrNoShards):
		return http.StatusBadRequest, parselclient.CodeNoShards
	default:
		return http.StatusInternalServerError, parselclient.CodeInternal
	}
}

// writeQueryError reports a pool/engine failure.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	s.countError(status, code)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, code, err.Error())
}

// writeRequestError reports a decode/validation failure.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	var pe *ParseError
	if !errors.As(err, &pe) {
		pe = &ParseError{Code: parselclient.CodeInternal, Msg: err.Error()}
	}
	status := http.StatusBadRequest
	if pe.Code == parselclient.CodeTooLarge {
		status = http.StatusRequestEntityTooLarge
	}
	s.countError(status, pe.Code)
	writeError(w, status, pe.Code, pe.Msg)
}

// countError attributes a failure to the stats counters.
func (s *Server) countError(status int, code parselclient.Code) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case code == parselclient.CodePoolTimeout:
		s.srv.Timeouts++
	case code == parselclient.CodeQueueFull:
		s.srv.Rejected++
	case status >= 500:
		s.srv.ServerErrors++
	default:
		s.srv.ClientErrors++
	}
}

// observe records a served query in the stats. The latency lands in
// the obs histogram both /v1/stats and /metrics render.
func (s *Server) observe(hostLatency time.Duration, rep parselclient.Report) {
	s.mu.Lock()
	s.srv.OK++
	s.sim.Queries++
	s.sim.SimSeconds += rep.SimSeconds
	s.sim.Messages += rep.Messages
	s.sim.Bytes += rep.Bytes
	s.mu.Unlock()
	s.metrics.latency.Observe(hostLatency.Seconds())
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
			"stats is a GET request")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleTenantReload serves POST /v1/admin/tenants/reload: reread the
// tenant configuration through Options.TenantSource and swap it in via
// ReloadTenants — token rotation and budget changes without a restart
// (the HTTP twin of cmd/parseld's SIGHUP). Failures are the daemon's
// own configuration being unreadable or invalid, never the request's,
// so they answer 500 internal with the detail.
func (s *Server) handleTenantReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, parselclient.CodeMethodNotAllowed,
			"tenant reload is a POST request")
		return
	}
	tenants, err := s.opts.TenantSource()
	if err != nil {
		s.countError(http.StatusInternalServerError, parselclient.CodeInternal)
		writeError(w, http.StatusInternalServerError, parselclient.CodeInternal,
			fmt.Sprintf("read tenant source: %v", err))
		return
	}
	if err := s.ReloadTenants(tenants); err != nil {
		s.countError(http.StatusInternalServerError, parselclient.CodeInternal)
		writeError(w, http.StatusInternalServerError, parselclient.CodeInternal, err.Error())
		return
	}
	s.log.Info("serve: tenant configuration reloaded", "tenants", len(tenants))
	writeJSON(w, http.StatusOK, parselclient.TenantReloadResult{Tenants: len(tenants)})
}

// handleHealth serves GET /healthz, the three-state health machine,
// each state on its own status code so probes can branch without
// parsing the body:
//
//	200 ok       — serving normally
//	207 degraded — still serving every endpoint, but a background
//	               obligation is failing (snapshot persistence); a load
//	               balancer can keep routing, an operator should look
//	503 draining — graceful shutdown begun; stop routing here
//
// Degraded clears by itself the moment a snapshot write lands again.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, parselclient.CodeShuttingDown,
			"daemon is draining")
		return
	}
	if st := s.snapshotStats(); st.Degraded {
		writeJSON(w, http.StatusMultiStatus, parselclient.HealthStatus{
			Status: parselclient.HealthDegraded,
			Reason: "snapshot persistence is failing; resident data is serving but not durable",
		})
		return
	}
	writeJSON(w, http.StatusOK, parselclient.HealthStatus{Status: parselclient.HealthOK})
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the structured error body.
func writeError(w http.ResponseWriter, status int, code parselclient.Code, msg string) {
	writeJSON(w, status, parselclient.ErrorBody{
		Error: parselclient.ErrorDetail{Code: code, Message: msg},
	})
}
