package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// putRaw sends a raw PUT body at the daemon and decodes the structured
// error, if any.
func putRaw(t *testing.T, d *daemon, path, body string) (int, parselclient.ErrorBody) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, d.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var eb parselclient.ErrorBody
	_ = json.NewDecoder(res.Body).Decode(&eb)
	return res.StatusCode, eb
}

// TestDatasetRoundTrip pins the upload-once/query-many lifecycle over
// the wire: upload, info, the full query surface bit-identical to
// in-process Pool calls on the same shards, delete, and the typed
// not-found for queries after DELETE.
func TestDatasetRoundTrip(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d.close()
	oracle, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	shards := workload.Generate(workload.ZipfLike, 9000, 5, 77)
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	rd := d.client.Dataset("fleet.v1")

	info, err := rd.Upload(ctx, shards)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if info.ID != "fleet.v1" || info.Procs != 5 || info.N != n || info.Bytes != n*8 {
		t.Errorf("upload info: %+v", info)
	}
	if info.ExpiresInMS <= 0 {
		t.Errorf("upload info carries no TTL: %+v", info)
	}
	if got, err := rd.Info(ctx); err != nil || got.N != n {
		t.Errorf("info: %+v %v", got, err)
	}

	// The full query surface, bit-identical to in-process Pool calls.
	rank := (n + 1) / 2
	gsel, err := rd.Select(ctx, rank)
	if err != nil {
		t.Fatal(err)
	}
	wsel, err := oracle.Select(shards, rank)
	if err != nil {
		t.Fatal(err)
	}
	if gsel.Value != wsel.Value || simOf(gsel.Report) != simOf(wsel.Report) {
		t.Errorf("select: dataset %d %+v, pool %d %+v",
			gsel.Value, simOf(gsel.Report), wsel.Value, simOf(wsel.Report))
	}
	gmed, err := rd.Median(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gmed.Value != wsel.Value {
		t.Errorf("median %d, select(ceil(n/2)) %d", gmed.Value, wsel.Value)
	}
	gq, err := rd.Quantile(ctx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := oracle.Quantile(shards, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if gq.Value != wq.Value || simOf(gq.Report) != simOf(wq.Report) {
		t.Errorf("quantile: dataset %d, pool %d", gq.Value, wq.Value)
	}
	qs := []float64{0.1, 0.5, 0.99}
	gqs, grep, err := rd.Quantiles(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	wqs, wrep, err := oracle.Quantiles(shards, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gqs, wqs) || simOf(grep) != simOf(wrep) {
		t.Errorf("quantiles: dataset %v, pool %v", gqs, wqs)
	}
	ranks := []int64{1, n}
	grs, _, err := rd.SelectRanks(ctx, ranks)
	if err != nil {
		t.Fatal(err)
	}
	wrs, _, err := oracle.SelectRanks(shards, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(grs, wrs) {
		t.Errorf("ranks: dataset %v, pool %v", grs, wrs)
	}
	gtop, _, err := rd.TopK(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	wtop, _, err := oracle.TopK(shards, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gtop, wtop) {
		t.Errorf("topk: dataset %v, pool %v", gtop, wtop)
	}
	gbot, _, err := rd.BottomK(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	wbot, _, err := oracle.BottomK(shards, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gbot, wbot) {
		t.Errorf("bottomk: dataset %v, pool %v", gbot, wbot)
	}
	gsum, gsrep, err := rd.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wsum, wsrep, err := oracle.Summary(shards)
	if err != nil {
		t.Fatal(err)
	}
	if gsum != wsum || simOf(gsrep) != simOf(wsrep) {
		t.Errorf("summary: dataset %+v, pool %+v", gsum, wsum)
	}

	// Replacement: re-PUT under the same id swaps the population.
	if _, err := rd.Upload(ctx, [][]int64{{10, 30}, {20}}); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if res, err := rd.Median(ctx); err != nil || res.Value != 20 {
		t.Errorf("median after replace = %v %v, want 20", res.Value, err)
	}

	// DELETE frees the id; queries after it get the typed not-found.
	dinfo, err := rd.Delete(ctx)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if dinfo.N != 3 {
		t.Errorf("delete info: %+v, want the replaced population", dinfo)
	}
	_, err = rd.Median(ctx)
	if !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Errorf("query after DELETE = %v, want ErrDatasetNotFound", err)
	}
	var apiErr *parselclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != parselclient.CodeDatasetNotFound {
		t.Errorf("query after DELETE: %v, want 404 %s", err, parselclient.CodeDatasetNotFound)
	}
	if _, err := rd.Delete(ctx); !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Errorf("second DELETE = %v, want ErrDatasetNotFound", err)
	}
	if _, err := rd.Info(ctx); !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Errorf("info after DELETE = %v, want ErrDatasetNotFound", err)
	}

	st := d.server.Stats()
	if st.Datasets.Count != 0 || st.Datasets.ResidentBytes != 0 {
		t.Errorf("gauges after delete: %+v", st.Datasets)
	}
	if st.Datasets.Uploads != 2 || st.Datasets.Replaced != 1 || st.Datasets.Deletes != 1 {
		t.Errorf("lifecycle counters: %+v", st.Datasets)
	}
	if st.Datasets.NotFound != 3 || st.Datasets.Queries == 0 {
		t.Errorf("query counters: %+v", st.Datasets)
	}
	// Request accounting covers the dataset endpoints exactly once each.
	sum := st.Server.OK + st.Server.Timeouts + st.Server.Rejected +
		st.Server.ClientErrors + st.Server.ServerErrors
	if st.Server.Requests != sum {
		t.Errorf("request accounting leak: %d requests, outcomes sum to %d: %+v",
			st.Server.Requests, sum, st.Server)
	}
}

// TestDatasetBudget pins the resident-bytes budget: an upload that
// would exceed it is refused with the typed constant-time 413 — no
// eviction of live data, no partial registration — and the budget frees
// on delete. The dataset count cap rejects with the same code.
func TestDatasetBudget(t *testing.T) {
	ctx := context.Background()
	// Budget: 100 resident keys worth of bytes.
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{MaxResidentBytes: 800})
	defer d.close()

	keys := func(n int) [][]int64 {
		sh := make([]int64, n)
		for i := range sh {
			sh[i] = int64(i)
		}
		return [][]int64{sh}
	}

	// 101 keys do not fit an empty 100-key budget.
	_, err := d.client.Dataset("big").Upload(ctx, keys(101))
	if !errors.Is(err, parselclient.ErrResidentBudget) {
		t.Fatalf("oversized upload = %v, want ErrResidentBudget", err)
	}
	var apiErr *parselclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 413 || apiErr.Code != parselclient.CodeResidentBudget {
		t.Errorf("oversized upload: %v, want 413 %s", err, parselclient.CodeResidentBudget)
	}
	st := d.server.Stats()
	if st.Datasets.Count != 0 || st.Datasets.ResidentBytes != 0 || st.Datasets.Rejected != 1 {
		t.Errorf("rejected upload left state behind: %+v", st.Datasets)
	}

	// 60 keys fit; another 60 do not (live data is never evicted to
	// make room); after deleting the first, they do.
	if _, err := d.client.Dataset("a").Upload(ctx, keys(60)); err != nil {
		t.Fatalf("first upload: %v", err)
	}
	if _, err := d.client.Dataset("b").Upload(ctx, keys(60)); !errors.Is(err, parselclient.ErrResidentBudget) {
		t.Fatalf("second upload = %v, want ErrResidentBudget", err)
	}
	if res, err := d.client.Dataset("a").Median(ctx); err != nil || res.Value != 29 {
		t.Errorf("live dataset after rejected upload: %v %v", res.Value, err)
	}
	// Replacement accounts the freed bytes: re-PUT of "a" at 100 keys
	// fits even though the registry holds 60.
	if _, err := d.client.Dataset("a").Upload(ctx, keys(100)); err != nil {
		t.Fatalf("replacing upload: %v", err)
	}
	if _, err := d.client.Dataset("a").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Dataset("b").Upload(ctx, keys(60)); err != nil {
		t.Fatalf("upload after delete: %v", err)
	}

	// The count cap uses the same typed rejection.
	dc := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{MaxDatasets: 1})
	defer dc.close()
	if _, err := dc.client.Dataset("one").Upload(ctx, keys(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.client.Dataset("two").Upload(ctx, keys(3)); !errors.Is(err, parselclient.ErrResidentBudget) {
		t.Errorf("count-capped upload = %v, want ErrResidentBudget", err)
	}
	// Replacement of the resident id is not a new dataset.
	if _, err := dc.client.Dataset("one").Upload(ctx, keys(5)); err != nil {
		t.Errorf("replacement under count cap: %v", err)
	}
}

// TestDatasetTTLEvictionUnderHeldMachine pins that TTL eviction is pure
// registry work: with the daemon's only machine held by a slow query,
// an idle dataset whose TTL lapses is still evicted (the sweep needs no
// machine), queries bump the TTL, and the probe GET does not.
func TestDatasetTTLEvictionUnderHeldMachine(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{Algorithm: parsel.MedianOfMedians},
		parsel.PoolOptions{MaxMachines: 1},
		serve.Options{DatasetTTL: time.Minute, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	defer d.close()

	// A deterministic clock the test advances by hand.
	base := time.Now()
	var offset atomic.Int64
	d.server.SetNowForTest(func() time.Time {
		return base.Add(time.Duration(offset.Load()))
	})

	rd := d.client.Dataset("cache")
	if _, err := rd.Upload(ctx, [][]int64{{4, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}

	// Hold the single machine with the paper's slowest configuration
	// (median-of-medians on sorted keys).
	slow := workload.Generate(workload.Sorted, 262144, 8, 3)
	slowDone := make(chan error, 1)
	go func() {
		_, err := d.client.Median(ctx, slow)
		slowDone <- err
	}()
	waitStats(t, d, "slow query to be admitted", func(st parselclient.Stats) bool {
		return st.Server.Inflight >= 1
	})

	// 30s in: a query touches the dataset, resetting its TTL clock.
	offset.Store(int64(30 * time.Second))
	if res, err := rd.Select(ctx, 1); err != nil || res.Value != 1 {
		t.Fatalf("select at +30s: %v %v", res.Value, err)
	}
	// 80s in (50s after the touch): still resident; the info probe sees
	// it without extending its life.
	offset.Store(int64(80 * time.Second))
	if _, err := rd.Info(ctx); err != nil {
		t.Errorf("info at +80s: %v", err)
	}
	// 95s in (65s after the touch): the TTL has lapsed; the sweep runs
	// on the stats touch even though the pool's machine is still held.
	offset.Store(int64(95 * time.Second))
	st := d.server.Stats()
	if st.Datasets.Count != 0 || st.Datasets.Expired != 1 || st.Datasets.ResidentBytes != 0 {
		t.Errorf("dataset survived its TTL: %+v", st.Datasets)
	}
	if _, err := rd.Select(ctx, 1); !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Errorf("query after eviction = %v, want ErrDatasetNotFound", err)
	}

	if err := <-slowDone; err != nil {
		t.Errorf("slow query: %v", err)
	}
}

// TestDatasetHandlerValidation pins status + wire code for the dataset
// endpoints' bad-request classes, like the query-endpoint table test.
func TestDatasetHandlerValidation(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{Limits: serve.Limits{MaxProcs: 4, MaxRanks: 4}})
	defer d.close()

	putCases := []struct {
		name, path, body string
		status           int
		code             parselclient.Code
	}{
		{"bad id char", "/v1/datasets/no%20spaces", "{}", 400, parselclient.CodeBadDatasetID},
		{"id too long", "/v1/datasets/" + strings.Repeat("x", 200), "{}", 400, parselclient.CodeBadDatasetID},
		{"bad json", "/v1/datasets/ok", "{", 400, parselclient.CodeBadJSON},
		{"missing shards", "/v1/datasets/ok", "{}", 400, parselclient.CodeMissingField},
		{"too many shards", "/v1/datasets/ok", `{"shards": [[1],[2],[3],[4],[5]]}`, 400, parselclient.CodeLimitExceeded},
	}
	for _, tc := range putCases {
		t.Run("put/"+tc.name, func(t *testing.T) {
			status, eb := putRaw(t, d, tc.path, tc.body)
			if status != tc.status || eb.Error.Code != tc.code {
				t.Errorf("%s %q: %d %q, want %d %q",
					tc.path, tc.body, status, eb.Error.Code, tc.status, tc.code)
			}
		})
	}

	if _, err := d.client.Dataset("ok").Upload(context.Background(), [][]int64{{1, 2}, {3}}); err != nil {
		t.Fatal(err)
	}
	queryCases := []struct {
		name, body string
		status     int
		code       parselclient.Code
	}{
		{"bad json", "{", 400, parselclient.CodeBadJSON},
		{"missing kind", "{}", 400, parselclient.CodeMissingField},
		{"unknown kind", `{"kind": "mode"}`, 400, parselclient.CodeBadKind},
		{"shards not accepted as kind", `{"kind": "shards"}`, 400, parselclient.CodeBadKind},
		{"select without rank", `{"kind": "select"}`, 400, parselclient.CodeMissingField},
		{"quantile out of range", `{"kind": "quantile", "q": 1.5}`, 400, parselclient.CodeBadQuantile},
		{"too many ranks", `{"kind": "ranks", "ranks": [1,1,1,1,1]}`, 400, parselclient.CodeLimitExceeded},
		{"negative timeout", `{"kind": "median", "timeout_ms": -1}`, 400, parselclient.CodeLimitExceeded},
		{"rank out of population", `{"kind": "select", "rank": 99}`, 400, parselclient.CodeRankRange},
		{"good median", `{"kind": "median"}`, 200, ""},
	}
	for _, tc := range queryCases {
		t.Run("query/"+tc.name, func(t *testing.T) {
			status, eb := postRaw(t, d, "/v1/datasets/ok/query", tc.body)
			if status != tc.status || eb.Error.Code != tc.code {
				t.Errorf("%q: %d %q, want %d %q", tc.body, status, eb.Error.Code, tc.status, tc.code)
			}
		})
	}

	// Routing mistakes: wrong methods and unknown sub-operations.
	res, err := d.ts.Client().Post(d.ts.URL+"/v1/datasets/ok", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("POST on dataset id: %d, want 405", res.StatusCode)
	}
	res, err = d.ts.Client().Get(d.ts.URL + "/v1/datasets/ok/query")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Errorf("GET on query: %d, want 405", res.StatusCode)
	}
	status, eb := postRaw(t, d, "/v1/datasets/ok/compact", "{}")
	if status != 404 || eb.Error.Code != parselclient.CodeNotFound {
		t.Errorf("unknown sub-op: %d %q, want 404 not_found", status, eb.Error.Code)
	}
}

// TestDatasetStorm mixes uploads, queries, deletes and clock-driven TTL
// evictions on a single dataset id from many goroutines — run under
// -race this is the registry's consistency stress. Every outcome must
// be structured (200, the typed not-found, or the typed budget
// rejection), and the final gauges must balance.
func TestDatasetStorm(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4},
		serve.Options{DatasetTTL: time.Minute, QueueDepth: 256, MaxResidentBytes: 1 << 20})
	defer d.close()

	base := time.Now()
	var offset atomic.Int64
	d.server.SetNowForTest(func() time.Time {
		return base.Add(time.Duration(offset.Load()))
	})

	shards := workload.Generate(workload.Random, 2000, 4, 5)
	rd := d.client.Dataset("hot")
	var uploads, queries, notFound atomic.Int64

	const goroutines = 24
	const iters = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // uploader: re-PUT the same id
					if _, err := rd.Upload(ctx, shards); err != nil {
						t.Errorf("uploader: %v", err)
						return
					}
					uploads.Add(1)
				case 1, 2: // querier: any structured outcome is legal
					_, err := rd.Median(ctx)
					switch {
					case err == nil:
						queries.Add(1)
					case errors.Is(err, parselclient.ErrDatasetNotFound):
						notFound.Add(1)
					default:
						t.Errorf("querier: unstructured outcome %v", err)
						return
					}
				case 3: // deleter + clock mover
					if i%3 == 0 {
						// Lapse the TTL under the storm: every resident
						// dataset not re-touched is evicted.
						offset.Add(int64(2 * time.Minute))
					}
					_, err := rd.Delete(ctx)
					if err != nil && !errors.Is(err, parselclient.ErrDatasetNotFound) {
						t.Errorf("deleter: unstructured outcome %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := d.server.Stats()
	if st.Datasets.Uploads != uploads.Load() {
		t.Errorf("server counted %d uploads, clients made %d", st.Datasets.Uploads, uploads.Load())
	}
	if st.Datasets.Queries != queries.Load() {
		t.Errorf("server counted %d dataset queries, clients saw %d OK", st.Datasets.Queries, queries.Load())
	}
	if got := st.Datasets.NotFound; got < notFound.Load() {
		t.Errorf("server counted %d not-founds, clients saw at least %d", got, notFound.Load())
	}
	// The budget ledger balances: either one resident dataset with its
	// exact byte count, or none and zero bytes.
	switch st.Datasets.Count {
	case 0:
		if st.Datasets.ResidentBytes != 0 {
			t.Errorf("empty registry holds %d bytes", st.Datasets.ResidentBytes)
		}
	case 1:
		var n int64
		for _, sh := range shards {
			n += int64(len(sh))
		}
		if st.Datasets.ResidentBytes != n*8 {
			t.Errorf("one dataset resident, ledger says %d bytes, want %d", st.Datasets.ResidentBytes, n*8)
		}
	default:
		t.Errorf("storm on one id left %d datasets resident", st.Datasets.Count)
	}
	sum := st.Server.OK + st.Server.Timeouts + st.Server.Rejected +
		st.Server.ClientErrors + st.Server.ServerErrors
	if st.Server.Requests != sum {
		t.Errorf("request accounting leak: %d requests, outcomes sum to %d: %+v",
			st.Server.Requests, sum, st.Server)
	}

	// Quiesced pool: everything checked back in.
	if pst := d.pool.Stats(); pst.Resident != pst.Idle {
		t.Errorf("pool gauges after storm: %+v", pst)
	}
}
