package serve_test

import (
	"context"
	"errors"
	"slices"
	"strings"
	"testing"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
)

// dsQueryRecord is one workload shape's full dataset-path query
// results: every value and every simulated metric, recorded so a
// restarted daemon can be checked bit-identical against them.
type dsQueryRecord struct {
	name     string
	selVal   int64
	selRep   simReport
	medVal   int64
	medRep   simReport
	qVal     int64
	qRep     simReport
	qsVals   []int64
	qsRep    simReport
	ranks    []int64
	rkVals   []int64
	rkRep    simReport
	topVals  []int64
	botVals  []int64
	sum      parsel.FiveNumber[int64]
	sumRep   simReport
	n        int64
	hadOrder bool // n > 0: the order-statistic queries ran
}

// dsID maps a shape name onto a wire-safe dataset id.
func dsID(name string) string { return "wd-" + strings.ReplaceAll(name, "/", "-") }

// datasetSurface is the int64 dataset query surface the catalogue
// replay drives. Both the single-node *parselclient.RemoteDataset and
// the router's *cluster.Dataset[int64] satisfy it, so the same
// bit-identity harness pins the restart contract and the cluster
// failover contract.
type datasetSurface interface {
	Upload(ctx context.Context, shards [][]int64) (parselclient.DatasetInfo, error)
	Select(ctx context.Context, rank int64) (parsel.Result[int64], error)
	Median(ctx context.Context) (parsel.Result[int64], error)
	Quantile(ctx context.Context, q float64) (parsel.Result[int64], error)
	Quantiles(ctx context.Context, qs []float64) ([]int64, parsel.Report, error)
	SelectRanks(ctx context.Context, ranks []int64) ([]int64, parsel.Report, error)
	TopK(ctx context.Context, k int) ([]int64, parsel.Report, error)
	BottomK(ctx context.Context, k int) ([]int64, parsel.Report, error)
	Summary(ctx context.Context) (parsel.FiveNumber[int64], parsel.Report, error)
}

// runDatasetCatalogue uploads (when upload is true) every workload
// shape of the differential catalogue as a resident dataset on one
// daemon and runs the full query surface against it.
func runDatasetCatalogue(t *testing.T, d *daemon, shapes []e2eShape, upload bool) []dsQueryRecord {
	t.Helper()
	return runCatalogueOn(t, func(name string) datasetSurface {
		return d.client.Dataset(dsID(name))
	}, shapes, upload)
}

// runCatalogueOn runs the differential catalogue against whatever
// dataset surface the provider hands back per shape, returning the
// records for bit-identity comparison.
func runCatalogueOn(t *testing.T, surface func(name string) datasetSurface, shapes []e2eShape, upload bool) []dsQueryRecord {
	t.Helper()
	ctx := context.Background()
	var records []dsQueryRecord
	for _, shape := range shapes {
		rd := surface(shape.name)
		if upload {
			if _, err := rd.Upload(ctx, shape.shards); err != nil {
				t.Fatalf("%s: upload: %v", shape.name, err)
			}
		}
		var n int64
		for _, sh := range shape.shards {
			n += int64(len(sh))
		}
		rec := dsQueryRecord{name: shape.name, n: n}
		if n > 0 {
			rec.hadOrder = true
			rank := 1 + (n-1)/3
			res, err := rd.Select(ctx, rank)
			if err != nil {
				t.Fatalf("%s: select: %v", shape.name, err)
			}
			rec.selVal, rec.selRep = res.Value, simOf(res.Report)
			med, err := rd.Median(ctx)
			if err != nil {
				t.Fatalf("%s: median: %v", shape.name, err)
			}
			rec.medVal, rec.medRep = med.Value, simOf(med.Report)
			q, err := rd.Quantile(ctx, 0.9)
			if err != nil {
				t.Fatalf("%s: quantile: %v", shape.name, err)
			}
			rec.qVal, rec.qRep = q.Value, simOf(q.Report)
			qs, qsRep, err := rd.Quantiles(ctx, []float64{0, 0.25, 0.5, 0.75, 0.99, 1})
			if err != nil {
				t.Fatalf("%s: quantiles: %v", shape.name, err)
			}
			rec.qsVals, rec.qsRep = qs, simOf(qsRep)
			rec.ranks = []int64{1, n, (n + 1) / 2}
			rks, rkRep, err := rd.SelectRanks(ctx, rec.ranks)
			if err != nil {
				t.Fatalf("%s: ranks: %v", shape.name, err)
			}
			rec.rkVals, rec.rkRep = rks, simOf(rkRep)
			k := int(min(5, n))
			top, _, err := rd.TopK(ctx, k)
			if err != nil {
				t.Fatalf("%s: topk: %v", shape.name, err)
			}
			rec.topVals = top
			bot, _, err := rd.BottomK(ctx, k)
			if err != nil {
				t.Fatalf("%s: bottomk: %v", shape.name, err)
			}
			rec.botVals = bot
			sum, sumRep, err := rd.Summary(ctx)
			if err != nil {
				t.Fatalf("%s: summary: %v", shape.name, err)
			}
			rec.sum, rec.sumRep = sum, simOf(sumRep)
		}
		records = append(records, rec)
	}
	return records
}

// compareRecords asserts two catalogue replays bit-identical.
func compareRecords(t *testing.T, before, after []dsQueryRecord) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("replay covered %d shapes, original %d", len(after), len(before))
	}
	for i := range before {
		b, a := before[i], after[i]
		if !b.hadOrder {
			continue
		}
		if a.selVal != b.selVal || a.selRep != b.selRep {
			t.Errorf("%s: select diverges after restart: %d %+v, want %d %+v",
				b.name, a.selVal, a.selRep, b.selVal, b.selRep)
		}
		if a.medVal != b.medVal || a.medRep != b.medRep {
			t.Errorf("%s: median diverges after restart: %d %+v, want %d %+v",
				b.name, a.medVal, a.medRep, b.medVal, b.medRep)
		}
		if a.qVal != b.qVal || a.qRep != b.qRep {
			t.Errorf("%s: quantile diverges after restart", b.name)
		}
		if !slices.Equal(a.qsVals, b.qsVals) || a.qsRep != b.qsRep {
			t.Errorf("%s: quantiles diverge after restart: %v, want %v", b.name, a.qsVals, b.qsVals)
		}
		if !slices.Equal(a.rkVals, b.rkVals) || a.rkRep != b.rkRep {
			t.Errorf("%s: ranks diverge after restart: %v, want %v", b.name, a.rkVals, b.rkVals)
		}
		if !slices.Equal(a.topVals, b.topVals) || !slices.Equal(a.botVals, b.botVals) {
			t.Errorf("%s: topk/bottomk diverge after restart", b.name)
		}
		if a.sum != b.sum || a.sumRep != b.sumRep {
			t.Errorf("%s: summary diverges after restart: %+v, want %+v", b.name, a.sum, b.sum)
		}
	}
}

// TestDaemonRestartWarm is the kill-and-restart e2e harness of the
// durability contract: upload the full differential workload
// catalogue as resident datasets, query everything, drain and stop
// the daemon, start a new one on the same snapshot directory, and
// replay the catalogue asserting every response — values and every
// simulated metric — bit-identical to the pre-restart daemon, with
// zero keys re-uploaded.
func TestDaemonRestartWarm(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	dir := t.TempDir()
	opts := parsel.Options{}
	po := parsel.PoolOptions{MaxMachines: 4}

	d1 := newDaemon(t, opts, po, serve.Options{SnapshotDir: dir})
	before := runDatasetCatalogue(t, d1, shapes, true)
	st1 := d1.server.Stats()
	if st1.Datasets.Count != int64(len(shapes)) || st1.Datasets.Uploads != int64(len(shapes)) {
		t.Fatalf("pre-restart registry: %+v, want %d datasets", st1.Datasets, len(shapes))
	}
	// Graceful shutdown persists the final registry state.
	d1.server.Drain()
	d1.close()

	d2 := newDaemon(t, opts, po, serve.Options{SnapshotDir: dir})
	defer d2.close()
	st2 := d2.server.Stats()
	if st2.Snapshots.Restored != int64(len(shapes)) || st2.Snapshots.RestoreSkipped != 0 ||
		st2.Snapshots.Quarantined != 0 {
		t.Fatalf("recovery: %+v, want %d restored", st2.Snapshots, len(shapes))
	}
	if st2.Datasets.Count != int64(len(shapes)) {
		t.Fatalf("post-restart registry: %+v", st2.Datasets)
	}

	// The replay: queries only, no uploads — the keys never cross the
	// wire again.
	after := runDatasetCatalogue(t, d2, shapes, false)
	compareRecords(t, before, after)

	st3 := d2.server.Stats()
	if st3.Datasets.Uploads != 0 {
		t.Errorf("restart replay re-uploaded %d datasets, want 0", st3.Datasets.Uploads)
	}
	if st3.Datasets.NotFound != 0 {
		t.Errorf("restart replay hit %d not-founds, want 0", st3.Datasets.NotFound)
	}
	// Every restored dataset advertises its provenance.
	info, err := d2.client.Dataset(dsID(shapes[0].name)).Info(context.Background())
	if err != nil || !info.Restored {
		t.Errorf("restored dataset info: %+v %v, want Restored", info, err)
	}
}

// TestDaemonRestartAfterKill pins durability without the graceful
// drain: once the background snapshotter has persisted an upload, a
// hard stop (no Drain, listener and pool torn down mid-life) loses
// nothing — the restarted daemon answers bit-identically.
func TestDaemonRestartAfterKill(t *testing.T) {
	shapes := e2eShapes()[:4]
	dir := t.TempDir()
	opts := parsel.Options{}
	po := parsel.PoolOptions{MaxMachines: 2}

	d1 := newDaemon(t, opts, po, serve.Options{SnapshotDir: dir})
	before := runDatasetCatalogue(t, d1, shapes, true)
	// Make the background persistence deterministic, then kill without
	// draining.
	d1.server.FlushSnapshots()
	d1.close()

	d2 := newDaemon(t, opts, po, serve.Options{SnapshotDir: dir})
	defer d2.close()
	if st := d2.server.Stats(); st.Snapshots.Restored != int64(len(shapes)) {
		t.Fatalf("recovery after kill: %+v, want %d restored", st.Snapshots, len(shapes))
	}
	after := runDatasetCatalogue(t, d2, shapes, false)
	compareRecords(t, before, after)

	// The restored daemon accepts queries on the datasets through the
	// typed client surface exactly as before — spot-check the error
	// mapping still works on a restored id.
	rd := d2.client.Dataset(dsID(shapes[0].name))
	if _, err := rd.Select(context.Background(), 1); err != nil {
		t.Errorf("restored dataset select: %v", err)
	}
	var apiErr *parselclient.APIError
	_, err := rd.Select(context.Background(), 1<<40)
	if !errors.As(err, &apiErr) || apiErr.Code != parselclient.CodeRankRange {
		t.Errorf("rank_range on restored dataset: %v", err)
	}
}
