package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"parsel/parselclient"
)

// Endpoint identifies one query endpoint of the daemon.
type Endpoint int

const (
	EpSelect Endpoint = iota
	EpMedian
	EpQuantile
	EpQuantiles
	EpRanks
	EpTopK
	EpBottomK
	EpSummary
)

// endpoints maps URL paths to endpoints (the daemon's query surface).
var endpoints = map[string]Endpoint{
	"/v1/select":    EpSelect,
	"/v1/median":    EpMedian,
	"/v1/quantile":  EpQuantile,
	"/v1/quantiles": EpQuantiles,
	"/v1/ranks":     EpRanks,
	"/v1/topk":      EpTopK,
	"/v1/bottomk":   EpBottomK,
	"/v1/summary":   EpSummary,
}

// String names the endpoint by its path suffix.
func (e Endpoint) String() string {
	for path, ep := range endpoints {
		if ep == e {
			return path
		}
	}
	return fmt.Sprintf("Endpoint(%d)", int(e))
}

// kinds maps dataset-query kinds onto the same endpoints, so the
// dataset path shares the shard-carrying path's validation and
// dispatch.
var kinds = map[string]Endpoint{
	parselclient.KindSelect:    EpSelect,
	parselclient.KindMedian:    EpMedian,
	parselclient.KindQuantile:  EpQuantile,
	parselclient.KindQuantiles: EpQuantiles,
	parselclient.KindRanks:     EpRanks,
	parselclient.KindTopK:      EpTopK,
	parselclient.KindBottomK:   EpBottomK,
	parselclient.KindSummary:   EpSummary,
}

// Limits bounds what a single request may ask of the daemon. Zero
// fields take defaults.
type Limits struct {
	// MaxBodyBytes caps the request body (default 64 MiB). Enforced
	// with http.MaxBytesReader at the handler and re-checked by
	// ParseRequest.
	MaxBodyBytes int64
	// MaxProcs caps the shard count — each shard is one simulated
	// processor, i.e. goroutines and channel fabric (default 256).
	MaxProcs int
	// MaxRanks caps the rank/quantile count of a multi-rank request
	// (default 4096).
	MaxRanks int
	// MaxBatch caps the item count of a querymany batch (default 256).
	MaxBatch int
}

// withDefaults fills the zero-valued limits.
func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = 64 << 20
	}
	if l.MaxProcs == 0 {
		l.MaxProcs = 256
	}
	if l.MaxRanks == 0 {
		l.MaxRanks = 4096
	}
	if l.MaxBatch == 0 {
		l.MaxBatch = 256
	}
	return l
}

// maxTimeoutMS bounds timeout_ms on the wire: 24 hours, in
// milliseconds.
const maxTimeoutMS = 24 * 60 * 60 * 1000

// ParseError is a structured request-decoding failure; it maps onto the
// wire error body verbatim.
type ParseError struct {
	// Code is the stable wire code (parselclient.Code*).
	Code parselclient.Code
	// Msg is the human-readable detail.
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// parseErrf builds a ParseError.
func parseErrf(code parselclient.Code, format string, args ...any) *ParseError {
	return &ParseError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// sniffKeyKind resolves a request's key kind before the typed parse:
// the body's "key_kind" field, the X-Parsel-Kind header (uploads), or
// the int64 default when neither is present. The two sources must
// agree when both are given. A malformed body sniffs as the default —
// the typed parse reports the JSON error with full context.
func sniffKeyKind(body []byte, header string) (string, error) {
	var probe struct {
		KeyKind string `json:"key_kind"`
	}
	if len(body) > 0 {
		_ = json.Unmarshal(body, &probe)
	}
	kind := probe.KeyKind
	if header != "" {
		h := strings.ToLower(strings.TrimSpace(header))
		if kind != "" && kind != h {
			return "", parseErrf(parselclient.CodeBadKind,
				"key_kind %q disagrees with %s header %q", kind, parselclient.KindHeader, header)
		}
		kind = h
	}
	switch kind {
	case "":
		return parselclient.KeyKindInt64, nil
	case parselclient.KeyKindInt64, parselclient.KeyKindFloat64, parselclient.KeyKindString:
		return kind, nil
	default:
		return "", parseErrf(parselclient.CodeBadKind,
			"unknown key kind %q (want int64, float64 or string)", kind)
	}
}

// checkKeyKind validates an optional "key_kind" wire field: empty
// (the int64 default) or one of the registry's kinds.
func checkKeyKind(kind string) error {
	switch kind {
	case "", parselclient.KeyKindInt64, parselclient.KeyKindFloat64, parselclient.KeyKindString:
		return nil
	}
	return parseErrf(parselclient.CodeBadKind,
		"unknown key kind %q (want int64, float64 or string)", kind)
}

// ParseRequestOf decodes and validates one query body for an endpoint
// under key kind K. It never panics on any input; every failure is a
// *ParseError carrying a stable wire code. Validation here is
// structural (required fields, configured limits, non-finite numbers);
// population-dependent checks (rank within [1, n]) stay in the engine,
// whose typed errors the handler maps to wire codes the same way.
func ParseRequestOf[K parselclient.Key](ep Endpoint, body []byte, lim Limits) (*parselclient.RequestOf[K], error) {
	lim = lim.withDefaults()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, parseErrf(parselclient.CodeTooLarge,
			"body is %d bytes, limit %d", len(body), lim.MaxBodyBytes)
	}
	var req parselclient.RequestOf[K]
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, parseErrf(parselclient.CodeBadJSON, "decode request: %v", err)
	}
	if req.Shards == nil {
		return nil, parseErrf(parselclient.CodeMissingField, `"shards" is required`)
	}
	if len(req.Shards) > lim.MaxProcs {
		return nil, parseErrf(parselclient.CodeLimitExceeded,
			"%d shards, limit %d simulated processors", len(req.Shards), lim.MaxProcs)
	}
	if err := checkTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	if err := checkParams(ep, queryParams{
		rank: req.Rank, ranks: req.Ranks, q: req.Q, qs: req.Qs, k: req.K,
	}, lim); err != nil {
		return nil, err
	}
	return &req, nil
}

// ParseRequest is ParseRequestOf for the historical int64 wire.
func ParseRequest(ep Endpoint, body []byte, lim Limits) (*parselclient.Request, error) {
	return ParseRequestOf[int64](ep, body, lim)
}

// checkTimeout bounds timeout_ms so the millisecond->Duration
// conversion can never overflow int64 nanoseconds (which would wrap the
// admission deadline negative or tiny, bypassing the server's
// MaxTimeout cap). Any server-side cap is far below 24h anyway.
func checkTimeout(ms int64) error {
	if ms < 0 {
		return parseErrf(parselclient.CodeLimitExceeded, "timeout_ms %d is negative", ms)
	}
	if ms > maxTimeoutMS {
		return parseErrf(parselclient.CodeLimitExceeded,
			"timeout_ms %d exceeds the maximum %d (24h)", ms, int64(maxTimeoutMS))
	}
	return nil
}

// queryParams are the per-endpoint query parameters, shared between the
// shard-carrying Request and the resident DatasetQuery so both wire
// paths validate identically.
type queryParams struct {
	rank  *int64
	ranks []int64
	q     *float64
	qs    []float64
	k     *int
}

// checkParams enforces the per-endpoint field requirements and limits.
func checkParams(ep Endpoint, p queryParams, lim Limits) error {
	switch ep {
	case EpSelect:
		if p.rank == nil {
			return parseErrf(parselclient.CodeMissingField, `"rank" is required for select`)
		}
	case EpQuantile:
		if p.q == nil {
			return parseErrf(parselclient.CodeMissingField, `"q" is required for quantile`)
		}
		if err := checkQuantile(*p.q); err != nil {
			return err
		}
	case EpQuantiles:
		if len(p.qs) == 0 {
			return parseErrf(parselclient.CodeMissingField, `"qs" must be a non-empty array`)
		}
		if len(p.qs) > lim.MaxRanks {
			return parseErrf(parselclient.CodeLimitExceeded,
				"%d quantiles, limit %d", len(p.qs), lim.MaxRanks)
		}
		for _, q := range p.qs {
			if err := checkQuantile(q); err != nil {
				return err
			}
		}
	case EpRanks:
		if len(p.ranks) == 0 {
			return parseErrf(parselclient.CodeMissingField, `"ranks" must be a non-empty array`)
		}
		if len(p.ranks) > lim.MaxRanks {
			return parseErrf(parselclient.CodeLimitExceeded,
				"%d ranks, limit %d", len(p.ranks), lim.MaxRanks)
		}
	case EpTopK, EpBottomK:
		if p.k == nil {
			return parseErrf(parselclient.CodeMissingField, `"k" is required`)
		}
	case EpMedian, EpSummary:
		// No parameters.
	default:
		return parseErrf(parselclient.CodeNotFound, "unknown endpoint %d", int(ep))
	}
	return nil
}

// ParseDatasetUploadOf decodes and validates a PUT /v1/datasets/{id}
// body under key kind K. Like ParseRequestOf it never panics and
// reports every failure as a *ParseError with a stable wire code.
func ParseDatasetUploadOf[K parselclient.Key](body []byte, lim Limits) (*parselclient.DatasetUploadOf[K], error) {
	lim = lim.withDefaults()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, parseErrf(parselclient.CodeTooLarge,
			"body is %d bytes, limit %d", len(body), lim.MaxBodyBytes)
	}
	var up parselclient.DatasetUploadOf[K]
	if err := json.Unmarshal(body, &up); err != nil {
		return nil, parseErrf(parselclient.CodeBadJSON, "decode upload: %v", err)
	}
	if up.Shards == nil {
		return nil, parseErrf(parselclient.CodeMissingField, `"shards" is required`)
	}
	if len(up.Shards) > lim.MaxProcs {
		return nil, parseErrf(parselclient.CodeLimitExceeded,
			"%d shards, limit %d simulated processors", len(up.Shards), lim.MaxProcs)
	}
	return &up, nil
}

// ParseDatasetUpload is ParseDatasetUploadOf for the historical int64
// wire.
func ParseDatasetUpload(body []byte, lim Limits) (*parselclient.DatasetUpload, error) {
	return ParseDatasetUploadOf[int64](body, lim)
}

// ParseDatasetQuery decodes and validates a POST /v1/datasets/{id}/query
// body, resolving its kind to the endpoint whose field rules it shares.
func ParseDatasetQuery(body []byte, lim Limits) (*parselclient.DatasetQuery, Endpoint, error) {
	lim = lim.withDefaults()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, 0, parseErrf(parselclient.CodeTooLarge,
			"body is %d bytes, limit %d", len(body), lim.MaxBodyBytes)
	}
	var q parselclient.DatasetQuery
	if err := json.Unmarshal(body, &q); err != nil {
		return nil, 0, parseErrf(parselclient.CodeBadJSON, "decode query: %v", err)
	}
	if q.Kind == "" {
		return nil, 0, parseErrf(parselclient.CodeMissingField, `"kind" is required`)
	}
	ep, ok := kinds[q.Kind]
	if !ok {
		return nil, 0, parseErrf(parselclient.CodeBadKind,
			"unknown query kind %q (want select, median, quantile, quantiles, ranks, topk, bottomk or summary)", q.Kind)
	}
	if err := checkKeyKind(q.KeyKind); err != nil {
		return nil, 0, err
	}
	if err := checkTimeout(q.TimeoutMS); err != nil {
		return nil, 0, err
	}
	if err := checkParams(ep, queryParams{
		rank: q.Rank, ranks: q.Ranks, q: q.Q, qs: q.Qs, k: q.K,
	}, lim); err != nil {
		return nil, 0, err
	}
	return &q, ep, nil
}

// ParseDatasetQueryMany decodes and validates a POST
// /v1/datasets/{id}/querymany body. Structural failures anywhere in the
// batch fail the whole request with a 400 — a malformed batch is a
// client bug, unlike per-item runtime failures (rank out of range, pool
// timeout), which the handler reports per item. Returned endpoints
// align with the queries.
func ParseDatasetQueryMany(body []byte, lim Limits) ([]parselclient.DatasetQuery, []Endpoint, int64, error) {
	lim = lim.withDefaults()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, nil, 0, parseErrf(parselclient.CodeTooLarge,
			"body is %d bytes, limit %d", len(body), lim.MaxBodyBytes)
	}
	var qm parselclient.DatasetQueryMany
	if err := json.Unmarshal(body, &qm); err != nil {
		return nil, nil, 0, parseErrf(parselclient.CodeBadJSON, "decode querymany: %v", err)
	}
	if len(qm.Queries) == 0 {
		return nil, nil, 0, parseErrf(parselclient.CodeMissingField, `"queries" must be a non-empty array`)
	}
	if len(qm.Queries) > lim.MaxBatch {
		return nil, nil, 0, parseErrf(parselclient.CodeLimitExceeded,
			"%d queries, limit %d per batch", len(qm.Queries), lim.MaxBatch)
	}
	if err := checkTimeout(qm.TimeoutMS); err != nil {
		return nil, nil, 0, err
	}
	eps := make([]Endpoint, len(qm.Queries))
	for i := range qm.Queries {
		q := &qm.Queries[i]
		if q.TimeoutMS != 0 {
			return nil, nil, 0, parseErrf(parselclient.CodeLimitExceeded,
				"queries[%d]: timeout_ms must be 0 — the batch shares one admission deadline", i)
		}
		if q.Kind == "" {
			return nil, nil, 0, parseErrf(parselclient.CodeMissingField,
				`queries[%d]: "kind" is required`, i)
		}
		ep, ok := kinds[q.Kind]
		if !ok {
			return nil, nil, 0, parseErrf(parselclient.CodeBadKind,
				"queries[%d]: unknown query kind %q (want select, median, quantile, quantiles, ranks, topk, bottomk or summary)", i, q.Kind)
		}
		if err := checkKeyKind(q.KeyKind); err != nil {
			pe := err.(*ParseError)
			return nil, nil, 0, parseErrf(pe.Code, "queries[%d]: %s", i, pe.Msg)
		}
		if err := checkParams(ep, queryParams{
			rank: q.Rank, ranks: q.Ranks, q: q.Q, qs: q.Qs, k: q.K,
		}, lim); err != nil {
			pe := err.(*ParseError)
			return nil, nil, 0, parseErrf(pe.Code, "queries[%d]: %s", i, pe.Msg)
		}
		eps[i] = ep
	}
	return qm.Queries, eps, qm.TimeoutMS, nil
}

// maxDatasetIDLen bounds dataset ids on the wire.
const maxDatasetIDLen = 128

// checkDatasetID validates a dataset id from the URL: 1..128 characters
// out of [A-Za-z0-9._-], not beginning with a dot — "." and ".." are
// path navigation, and a leading dot would produce hidden-file snapshot
// names.
func checkDatasetID(id string) error {
	if id == "" {
		return parseErrf(parselclient.CodeBadDatasetID, "empty dataset id")
	}
	if id[0] == '.' {
		return parseErrf(parselclient.CodeBadDatasetID,
			"dataset id %q begins with a dot", id)
	}
	if len(id) > maxDatasetIDLen {
		return parseErrf(parselclient.CodeBadDatasetID,
			"dataset id is %d characters, limit %d", len(id), maxDatasetIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return parseErrf(parselclient.CodeBadDatasetID,
				"dataset id carries %q; allowed characters are [A-Za-z0-9._-]", c)
		}
	}
	return nil
}

// checkQuantile rejects quantiles the engine would also reject, plus
// non-finite values that cannot even arrive through valid JSON (the
// decoder is also exercised on adversarial bytes directly).
func checkQuantile(q float64) error {
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 || q > 1 {
		return parseErrf(parselclient.CodeBadQuantile, "quantile %v outside [0,1]", q)
	}
	return nil
}
