package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"parsel/parselclient"
)

// Endpoint identifies one query endpoint of the daemon.
type Endpoint int

const (
	EpSelect Endpoint = iota
	EpMedian
	EpQuantile
	EpQuantiles
	EpRanks
	EpTopK
	EpBottomK
	EpSummary
)

// endpoints maps URL paths to endpoints (the daemon's query surface).
var endpoints = map[string]Endpoint{
	"/v1/select":    EpSelect,
	"/v1/median":    EpMedian,
	"/v1/quantile":  EpQuantile,
	"/v1/quantiles": EpQuantiles,
	"/v1/ranks":     EpRanks,
	"/v1/topk":      EpTopK,
	"/v1/bottomk":   EpBottomK,
	"/v1/summary":   EpSummary,
}

// String names the endpoint by its path suffix.
func (e Endpoint) String() string {
	for path, ep := range endpoints {
		if ep == e {
			return path
		}
	}
	return fmt.Sprintf("Endpoint(%d)", int(e))
}

// Limits bounds what a single request may ask of the daemon. Zero
// fields take defaults.
type Limits struct {
	// MaxBodyBytes caps the request body (default 64 MiB). Enforced
	// with http.MaxBytesReader at the handler and re-checked by
	// ParseRequest.
	MaxBodyBytes int64
	// MaxProcs caps the shard count — each shard is one simulated
	// processor, i.e. goroutines and channel fabric (default 256).
	MaxProcs int
	// MaxRanks caps the rank/quantile count of a multi-rank request
	// (default 4096).
	MaxRanks int
}

// withDefaults fills the zero-valued limits.
func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = 64 << 20
	}
	if l.MaxProcs == 0 {
		l.MaxProcs = 256
	}
	if l.MaxRanks == 0 {
		l.MaxRanks = 4096
	}
	return l
}

// maxTimeoutMS bounds timeout_ms on the wire: 24 hours, in
// milliseconds.
const maxTimeoutMS = 24 * 60 * 60 * 1000

// ParseError is a structured request-decoding failure; it maps onto the
// wire error body verbatim.
type ParseError struct {
	// Code is the stable wire code (parselclient.Code*).
	Code string
	// Msg is the human-readable detail.
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// parseErrf builds a ParseError.
func parseErrf(code, format string, args ...any) *ParseError {
	return &ParseError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// ParseRequest decodes and validates one query body for an endpoint. It
// never panics on any input; every failure is a *ParseError carrying a
// stable wire code. Validation here is structural (required fields,
// configured limits, non-finite numbers); population-dependent checks
// (rank within [1, n]) stay in the engine, whose typed errors the
// handler maps to wire codes the same way.
func ParseRequest(ep Endpoint, body []byte, lim Limits) (*parselclient.Request, error) {
	lim = lim.withDefaults()
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, parseErrf(parselclient.CodeTooLarge,
			"body is %d bytes, limit %d", len(body), lim.MaxBodyBytes)
	}
	var req parselclient.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, parseErrf(parselclient.CodeBadJSON, "decode request: %v", err)
	}
	if req.Shards == nil {
		return nil, parseErrf(parselclient.CodeMissingField, `"shards" is required`)
	}
	if len(req.Shards) > lim.MaxProcs {
		return nil, parseErrf(parselclient.CodeLimitExceeded,
			"%d shards, limit %d simulated processors", len(req.Shards), lim.MaxProcs)
	}
	if req.TimeoutMS < 0 {
		return nil, parseErrf(parselclient.CodeLimitExceeded,
			"timeout_ms %d is negative", req.TimeoutMS)
	}
	if req.TimeoutMS > maxTimeoutMS {
		// Bounded here so the millisecond->Duration conversion can never
		// overflow int64 nanoseconds (which would wrap the admission
		// deadline negative or tiny, bypassing the server's MaxTimeout
		// cap). Any server-side cap is far below this anyway.
		return nil, parseErrf(parselclient.CodeLimitExceeded,
			"timeout_ms %d exceeds the maximum %d (24h)", req.TimeoutMS, int64(maxTimeoutMS))
	}

	switch ep {
	case EpSelect:
		if req.Rank == nil {
			return nil, parseErrf(parselclient.CodeMissingField, `"rank" is required for select`)
		}
	case EpQuantile:
		if req.Q == nil {
			return nil, parseErrf(parselclient.CodeMissingField, `"q" is required for quantile`)
		}
		if err := checkQuantile(*req.Q); err != nil {
			return nil, err
		}
	case EpQuantiles:
		if len(req.Qs) == 0 {
			return nil, parseErrf(parselclient.CodeMissingField, `"qs" must be a non-empty array`)
		}
		if len(req.Qs) > lim.MaxRanks {
			return nil, parseErrf(parselclient.CodeLimitExceeded,
				"%d quantiles, limit %d", len(req.Qs), lim.MaxRanks)
		}
		for _, q := range req.Qs {
			if err := checkQuantile(q); err != nil {
				return nil, err
			}
		}
	case EpRanks:
		if len(req.Ranks) == 0 {
			return nil, parseErrf(parselclient.CodeMissingField, `"ranks" must be a non-empty array`)
		}
		if len(req.Ranks) > lim.MaxRanks {
			return nil, parseErrf(parselclient.CodeLimitExceeded,
				"%d ranks, limit %d", len(req.Ranks), lim.MaxRanks)
		}
	case EpTopK, EpBottomK:
		if req.K == nil {
			return nil, parseErrf(parselclient.CodeMissingField, `"k" is required`)
		}
	case EpMedian, EpSummary:
		// Shards only.
	default:
		return nil, parseErrf(parselclient.CodeNotFound, "unknown endpoint %d", int(ep))
	}
	return &req, nil
}

// checkQuantile rejects quantiles the engine would also reject, plus
// non-finite values that cannot even arrive through valid JSON (the
// decoder is also exercised on adversarial bytes directly).
func checkQuantile(q float64) error {
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 || q > 1 {
		return parseErrf(parselclient.CodeBadQuantile, "quantile %v outside [0,1]", q)
	}
	return nil
}
