package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/snapshot"
	"parsel/parselclient"
)

// rawRequest sends an arbitrary method/path/body with extra headers and
// decodes the structured error, if any.
func rawRequest(t *testing.T, d *daemon, method, path, body string, headers map[string]string) (int, parselclient.ErrorBody) {
	t.Helper()
	req, err := http.NewRequest(method, d.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	res, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var eb parselclient.ErrorBody
	_ = json.NewDecoder(res.Body).Decode(&eb)
	return res.StatusCode, eb
}

// float64Shards lifts an int64 catalogue shape into float64 with a
// fractional offset, so the values only exist in the float64 domain and
// any accidental int64 round-trip would corrupt them.
func float64Shards(shards [][]int64) [][]float64 {
	out := make([][]float64, len(shards))
	for i, s := range shards {
		if s == nil {
			continue
		}
		out[i] = make([]float64, len(s))
		for j, v := range s {
			out[i][j] = float64(v) + 0.25
		}
	}
	return out
}

// stringShards lifts an int64 catalogue shape into order-preserving
// fixed-width decimal strings (offset keeps every value non-negative).
func stringShards(shards [][]int64) [][]string {
	const offset = int64(1) << 41
	out := make([][]string, len(shards))
	for i, s := range shards {
		if s == nil {
			continue
		}
		out[i] = make([]string, len(s))
		for j, v := range s {
			out[i][j] = fmt.Sprintf("k%020d", v+offset)
		}
	}
	return out
}

// sortedKeys flattens and sorts a sharded population: the oracle for
// rank queries of any kind.
func sortedKeys[K parselclient.Key](shards [][]K) []K {
	var all []K
	for _, s := range shards {
		all = append(all, s...)
	}
	slices.Sort(all)
	return all
}

// TestDatasetKindDispatchValidation pins the HTTP status and wire code
// for every kind-dispatch error the registry can surface: unknown
// kinds on uploads and queries, body/header kind disagreement, a query
// kind that contradicts the resident dataset's kind, and dot-prefixed
// dataset ids. It also pins the happy paths those errors guard:
// header-only float64 uploads and case-insensitive frame content types.
func TestDatasetKindDispatchValidation(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d.close()

	// Seed an int64 dataset for the kind-mismatch cases.
	if _, err := d.client.Dataset("base").Upload(context.Background(), [][]int64{{3, 1, 2}}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		method  string
		path    string
		body    string
		headers map[string]string
		status  int
		code    parselclient.Code
	}{
		{
			name: "upload unknown key_kind", method: "PUT",
			path: "/v1/datasets/u1", body: `{"key_kind":"uint8","shards":[[1]]}`,
			status: 400, code: parselclient.CodeBadKind,
		},
		{
			name: "upload body/header kind disagreement", method: "PUT",
			path: "/v1/datasets/u2", body: `{"key_kind":"float64","shards":[[1.5]]}`,
			headers: map[string]string{"X-Parsel-Kind": "int64"},
			status:  400, code: parselclient.CodeBadKind,
		},
		{
			name: "upload unknown header kind", method: "PUT",
			path: "/v1/datasets/u3", body: `{"shards":[[1]]}`,
			headers: map[string]string{"X-Parsel-Kind": "decimal"},
			status:  400, code: parselclient.CodeBadKind,
		},
		{
			name: "query unknown key_kind", method: "POST",
			path: "/v1/datasets/base/query", body: `{"kind":"median","key_kind":"decimal"}`,
			status: 400, code: parselclient.CodeBadKind,
		},
		{
			name: "query kind contradicts dataset", method: "POST",
			path: "/v1/datasets/base/query", body: `{"kind":"median","key_kind":"float64"}`,
			status: 400, code: parselclient.CodeBadKind,
		},
		{
			name: "querymany one mismatched item", method: "POST",
			path:   "/v1/datasets/base/querymany",
			body:   `{"queries":[{"kind":"median"},{"kind":"median","key_kind":"string"}]}`,
			status: 400, code: parselclient.CodeBadKind,
		},
		{
			name: "one-shot unknown key_kind", method: "POST",
			path: "/v1/select", body: `{"key_kind":"int32","shards":[[1]],"rank":1}`,
			status: 400, code: parselclient.CodeBadKind,
		},
		{
			name: "dot-prefixed dataset id", method: "PUT",
			path: "/v1/datasets/.foo", body: `{"shards":[[1]]}`,
			status: 400, code: parselclient.CodeBadDatasetID,
		},
		{
			name: "all-dots dataset id", method: "PUT",
			path: "/v1/datasets/...", body: `{"shards":[[1]]}`,
			status: 400, code: parselclient.CodeBadDatasetID,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := rawRequest(t, d, tc.method, tc.path, tc.body, tc.headers)
			if status != tc.status || eb.Error.Code != tc.code {
				t.Fatalf("got %d %q (%s), want %d %q",
					status, eb.Error.Code, eb.Error.Message, tc.status, tc.code)
			}
		})
	}

	// Header-only kind: a body without key_kind plus X-Parsel-Kind
	// must install a float64 dataset.
	req, err := http.NewRequest("PUT", d.ts.URL+"/v1/datasets/hdronly",
		strings.NewReader(`{"shards":[[1.5,2.5],[0.5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Parsel-Kind", "Float64") // header kinds are case-insensitive
	res, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("header-only float64 upload: status %d", res.StatusCode)
	}
	info, err := parselclient.Keyed[float64](d.client).Dataset("hdronly").Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.KeyKind != parselclient.KeyKindFloat64 || info.N != 3 {
		t.Fatalf("header-only upload info: %+v, want float64 kind, n=3", info)
	}

	// One-shot float64 select through raw JSON: the fractional median
	// only survives if the server really dispatched to the float64 pool.
	res, err = d.ts.Client().Post(d.ts.URL+"/v1/median", "application/json",
		strings.NewReader(`{"key_kind":"float64","shards":[[1.5,2.25,9.75]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var oneShot struct {
		Value   float64 `json:"value"`
		KeyKind string  `json:"key_kind"`
	}
	err = json.NewDecoder(res.Body).Decode(&oneShot)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != 200 || oneShot.Value != 2.25 || oneShot.KeyKind != parselclient.KeyKindFloat64 {
		t.Fatalf("one-shot float64 median: status %d, %+v; want value 2.25 kind float64", res.StatusCode, oneShot)
	}

	// Frame uploads must accept the frame content type case-insensitively
	// (RFC 9110: media types are case-insensitive).
	frame := snapshot.Encode(snapshot.Header{}, [][]int64{{5, 1, 3}})
	req, err = http.NewRequest("PUT", d.ts.URL+"/v1/datasets/framecase", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "Application/X-Parsel-Frame")
	res, err = d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("uppercase frame content type: status %d, want 200", res.StatusCode)
	}
	got, err := d.client.Dataset("framecase").Median(context.Background())
	if err != nil || got.Value != 3 {
		t.Fatalf("frame-uploaded median: %v, %v; want 3", got, err)
	}
}

// TestDaemonFloat64DifferentialE2E replays the differential catalogue
// through the float64 registry path — JSON and binary frames — against
// an in-process float64 pool and a sorted-slice oracle. Every value
// carries a fractional part, so bit-exact equality proves the keys
// never collapsed through the int64 path.
func TestDaemonFloat64DifferentialE2E(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
	defer d.close()
	bin := binaryClient(d)

	oracle, err := parsel.NewPool[float64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	ctx := context.Background()
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			shards := float64Shards(sh.shards)
			sorted := sortedKeys(shards)
			n := int64(len(sorted))
			if n == 0 {
				return
			}
			for _, c := range []*parselclient.Client{d.client, bin} {
				kc := parselclient.Keyed[float64](c)

				rank := 1 + rand.Int64N(n)
				got, err := kc.Select(ctx, shards, rank)
				if err != nil {
					t.Fatal(err)
				}
				want, werr := oracle.Select(shards, rank)
				if werr != nil {
					t.Fatal(werr)
				}
				if got.Value != sorted[rank-1] || got.Value != want.Value ||
					simOf(got.Report) != simOf(want.Report) {
					t.Fatalf("select rank %d: got %v, oracle %v, sorted %v",
						rank, got.Value, want.Value, sorted[rank-1])
				}

				med, err := kc.Median(ctx, shards)
				if err != nil {
					t.Fatal(err)
				}
				if med.Value != sorted[(n-1)/2] {
					t.Fatalf("median: got %v, want %v", med.Value, sorted[(n-1)/2])
				}

				qs := []float64{0, 0.25, 0.5, 0.99, 1}
				vals, _, err := kc.Quantiles(ctx, shards, qs)
				if err != nil {
					t.Fatal(err)
				}
				wvals, _, werr2 := oracle.Quantiles(shards, qs)
				if werr2 != nil {
					t.Fatal(werr2)
				}
				if !slices.Equal(vals, wvals) {
					t.Fatalf("quantiles: got %v, oracle %v", vals, wvals)
				}

				k := int(min(n, 5))
				top, _, err := kc.TopK(ctx, shards, k)
				if err != nil {
					t.Fatal(err)
				}
				wtop := slices.Clone(sorted[n-int64(k):])
				slices.Reverse(wtop)
				if !slices.Equal(top, wtop) {
					t.Fatalf("topk: got %v, want %v", top, wtop)
				}

				sum, _, err := kc.Summary(ctx, shards)
				if err != nil {
					t.Fatal(err)
				}
				wsum, _, werr3 := oracle.Summary(shards)
				if werr3 != nil {
					t.Fatal(werr3)
				}
				if sum != wsum || sum.Min != sorted[0] || sum.Max != sorted[n-1] {
					t.Fatalf("summary: got %+v, oracle %+v", sum, wsum)
				}
			}

			// Resident dataset path, JSON and frames, plus QueryMany.
			rd := parselclient.Keyed[float64](bin).Dataset(dsID(sh.name))
			if _, err := rd.Upload(ctx, shards); err != nil {
				t.Fatal(err)
			}
			rank := 1 + rand.Int64N(n)
			results, err := rd.QueryMany(ctx, []parselclient.DatasetQuery{
				{Kind: "select", Rank: &rank},
				{Kind: "median"},
				{Kind: "summary"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 3 {
				t.Fatalf("querymany: %d results", len(results))
			}
			for i, r := range results {
				if r.Error != nil {
					t.Fatalf("querymany[%d]: %+v", i, r.Error)
				}
			}
			if results[0].Value == nil || *results[0].Value != sorted[rank-1] ||
				results[1].Value == nil || *results[1].Value != sorted[(n-1)/2] {
				t.Fatalf("querymany values: %v/%v, want %v/%v",
					results[0].Value, results[1].Value, sorted[rank-1], sorted[(n-1)/2])
			}
			if results[2].Summary == nil || results[2].Summary.Min != sorted[0] {
				t.Fatalf("querymany summary: %+v", results[2].Summary)
			}
			if _, err := rd.Delete(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDaemonStringDatasetE2E drives the serve-only string kind through
// uploads, the full query surface and QueryMany, against a sorted
// oracle. A Binary client exercises the server's refusal to frame
// variable-width keys: responses must silently fall back to JSON.
func TestDaemonStringDatasetE2E(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:4]
	} else {
		shapes = shapes[:10]
	}
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
	defer d.close()

	ctx := context.Background()
	for _, c := range []*parselclient.Client{d.client, binaryClient(d)} {
		kc := parselclient.Keyed[string](c)
		for _, sh := range shapes {
			shards := stringShards(sh.shards)
			sorted := sortedKeys(shards)
			n := int64(len(sorted))
			if n == 0 {
				continue
			}
			rd := kc.Dataset(dsID(sh.name))
			info, err := rd.Upload(ctx, shards)
			if err != nil {
				t.Fatalf("%s: upload: %v", sh.name, err)
			}
			if info.KeyKind != parselclient.KeyKindString {
				t.Fatalf("%s: uploaded kind %q", sh.name, info.KeyKind)
			}

			rank := 1 + rand.Int64N(n)
			got, err := rd.Select(ctx, rank)
			if err != nil {
				t.Fatalf("%s: select: %v", sh.name, err)
			}
			if got.Value != sorted[rank-1] {
				t.Fatalf("%s: select rank %d: got %q, want %q", sh.name, rank, got.Value, sorted[rank-1])
			}
			med, err := rd.Median(ctx)
			if err != nil || med.Value != sorted[(n-1)/2] {
				t.Fatalf("%s: median: %q, %v; want %q", sh.name, med.Value, err, sorted[(n-1)/2])
			}
			k := int(min(n, 4))
			top, _, err := rd.TopK(ctx, k)
			if err != nil {
				t.Fatalf("%s: topk: %v", sh.name, err)
			}
			wtop := slices.Clone(sorted[n-int64(k):])
			slices.Reverse(wtop)
			if !slices.Equal(top, wtop) {
				t.Fatalf("%s: topk: got %v, want %v", sh.name, top, wtop)
			}
			sum, _, err := rd.Summary(ctx)
			if err != nil || sum.Min != sorted[0] || sum.Max != sorted[n-1] {
				t.Fatalf("%s: summary: %+v, %v", sh.name, sum, err)
			}

			results, err := rd.QueryMany(ctx, []parselclient.DatasetQuery{
				{Kind: "median"}, {Kind: "summary"},
			})
			if err != nil {
				t.Fatalf("%s: querymany: %v", sh.name, err)
			}
			if len(results) != 2 || results[0].Error != nil || results[1].Error != nil {
				t.Fatalf("%s: querymany results: %+v", sh.name, results)
			}
			if results[0].Value == nil || *results[0].Value != sorted[(n-1)/2] {
				t.Fatalf("%s: querymany median: %v", sh.name, results[0].Value)
			}
			if _, err := rd.Delete(ctx); err != nil {
				t.Fatalf("%s: delete: %v", sh.name, err)
			}
		}
	}
}

// TestDaemonKindStorm hammers all three kind pools concurrently —
// uploads, queries, deletes interleaved across int64, float64 and
// string datasets — so the race detector can see the registry's
// locking under genuine cross-kind contention.
func TestDaemonKindStorm(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{
		QueueDepth: 64,
	})
	defer d.close()

	const workers = 6
	iters := 30
	if testing.Short() {
		iters = 8
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(99, uint64(w)))
			for i := 0; i < iters; i++ {
				n := 64 + rng.Int64N(192)
				base := make([]int64, n)
				for j := range base {
					base[j] = rng.Int64N(1 << 30)
				}
				shards := [][]int64{base[:n/2], base[n/2:]}
				id := fmt.Sprintf("storm-%d-%d", w, i%3)
				switch w % 3 {
				case 0:
					rd := d.client.Dataset(id)
					if _, err := rd.Upload(ctx, shards); err != nil {
						t.Error(err)
						return
					}
					if _, err := rd.Median(ctx); err != nil {
						t.Error(err)
						return
					}
				case 1:
					rd := parselclient.Keyed[float64](d.client).Dataset(id)
					if _, err := rd.Upload(ctx, float64Shards(shards)); err != nil {
						t.Error(err)
						return
					}
					if _, _, err := rd.TopK(ctx, 3); err != nil {
						t.Error(err)
						return
					}
				default:
					rd := parselclient.Keyed[string](d.client).Dataset(id)
					if _, err := rd.Upload(ctx, stringShards(shards)); err != nil {
						t.Error(err)
						return
					}
					if _, _, err := rd.Summary(ctx); err != nil {
						t.Error(err)
						return
					}
				}
				if i%5 == 4 {
					if _, err := d.client.Dataset(id).Delete(ctx); err != nil &&
						!errors.Is(err, parselclient.ErrDatasetNotFound) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := d.server.Stats()
	var kept int64
	// Every surviving dataset must still answer; the ledger must agree
	// with the registry.
	if st.Datasets.Count < 0 || st.Datasets.ResidentBytes < 0 {
		t.Fatalf("negative registry gauges: %+v", st.Datasets)
	}
	for w := 0; w < workers; w++ {
		for s := 0; s < 3; s++ {
			if _, err := d.client.Dataset(fmt.Sprintf("storm-%d-%d", w, s)).Info(ctx); err == nil {
				kept++
			}
		}
	}
	if kept != st.Datasets.Count {
		t.Fatalf("registry count %d, reachable %d", st.Datasets.Count, kept)
	}
}

// TestSnapshotKindRestart is the multi-kind durability contract: a
// daemon holding int64, float64 and string datasets drains; the
// restarted daemon must recover both fixed-width kinds bit-identically,
// refuse the string dataset (serve-only, never persisted), and skip —
// not quarantine — a manifest entry whose key_type it cannot restore.
func TestSnapshotKindRestart(t *testing.T) {
	dir := t.TempDir()
	po := parsel.PoolOptions{MaxMachines: 4}
	ctx := context.Background()

	ints := [][]int64{{9, 2, 5}, {7, 1}}
	floats := [][]float64{{2.5, 8.25}, {0.125, 7.75, 3.5}}
	strs := [][]string{{"pear", "apple"}, {"mango"}}

	d1 := newDaemon(t, parsel.Options{}, po, serve.Options{SnapshotDir: dir})
	if _, err := d1.client.Dataset("ki").Upload(ctx, ints); err != nil {
		t.Fatal(err)
	}
	if _, err := parselclient.Keyed[float64](d1.client).Dataset("kf").Upload(ctx, floats); err != nil {
		t.Fatal(err)
	}
	if _, err := parselclient.Keyed[string](d1.client).Dataset("ks").Upload(ctx, strs); err != nil {
		t.Fatal(err)
	}
	fmed, err := parselclient.Keyed[float64](d1.client).Dataset("kf").Median(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d1.server.Drain()
	d1.close()

	// The string dataset must have left nothing on disk.
	if _, err := os.Stat(filepath.Join(dir, "ks.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("string snapshot on disk: %v", err)
	}

	d2 := newDaemon(t, parsel.Options{}, po, serve.Options{SnapshotDir: dir})
	st := d2.server.Stats()
	if st.Snapshots.Restored != 2 || st.Snapshots.Quarantined != 0 {
		t.Fatalf("recovery: %+v, want 2 restored, 0 quarantined", st.Snapshots)
	}
	got, err := parselclient.Keyed[float64](d2.client).Dataset("kf").Median(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != fmed.Value || simOf(got.Report) != simOf(fmed.Report) {
		t.Fatalf("restored float64 median: %+v, want %+v", got, fmed)
	}
	imed, err := d2.client.Dataset("ki").Median(ctx)
	if err != nil || imed.Value != 5 {
		t.Fatalf("restored int64 median: %v, %v; want 5", imed.Value, err)
	}
	if _, err := parselclient.Keyed[string](d2.client).Dataset("ks").Info(ctx); !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Fatalf("string dataset after restart: %v, want ErrDatasetNotFound", err)
	}
	d2.server.Drain()
	d2.close()

	// Tamper: declare the float64 manifest entry as string-kinded. The
	// restarted daemon cannot restore it and must skip (ErrKeyType),
	// never quarantine — the bytes on disk are intact.
	manifest := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var mf struct {
		Version  int               `json:"version"`
		Datasets []json.RawMessage `json:"datasets"`
	}
	if err := json.Unmarshal(raw, &mf); err != nil {
		t.Fatal(err)
	}
	for i, e := range mf.Datasets {
		var m map[string]any
		if err := json.Unmarshal(e, &m); err != nil {
			t.Fatal(err)
		}
		if m["id"] == "kf" {
			m["key_type"] = "string"
			mf.Datasets[i], err = json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	tampered, err := json.Marshal(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	d3 := newDaemon(t, parsel.Options{}, po, serve.Options{SnapshotDir: dir})
	defer d3.close()
	st3 := d3.server.Stats()
	if st3.Snapshots.Restored != 1 || st3.Snapshots.RestoreSkipped != 1 || st3.Snapshots.Quarantined != 0 {
		t.Fatalf("tampered recovery: %+v, want 1 restored / 1 skipped / 0 quarantined", st3.Snapshots)
	}
	// Skipped, not quarantined: the snapshot file survives on disk.
	if _, err := os.Stat(filepath.Join(dir, "kf.snap")); err != nil {
		t.Fatalf("skipped snapshot removed: %v", err)
	}
}

// TestTenantAdmission pins the tenant surface: bearer auth on every
// endpoint except /healthz, per-tenant byte budgets and dataset
// quotas with typed 413s, isolation between tenants, and the
// per-tenant stats blocks.
func TestTenantAdmission(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{
		Tenants: []serve.Tenant{
			{Name: "acme", Token: "tok-acme", MaxResidentBytes: 64, MaxDatasets: 2},
			{Name: "globex", Token: "tok-globex"},
		},
	})
	defer d.close()
	ctx := context.Background()

	// No token: 401 with the typed sentinel. /healthz stays open.
	if _, err := d.client.Median(ctx, [][]int64{{1, 2, 3}}); !errors.Is(err, parselclient.ErrUnknownTenant) {
		t.Fatalf("tokenless query: %v, want ErrUnknownTenant", err)
	}
	if _, err := d.client.Healthz(ctx); err != nil {
		t.Fatalf("tokenless healthz: %v", err)
	}
	wrong := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	wrong.Token = "tok-nobody"
	if _, err := wrong.Median(ctx, [][]int64{{1}}); !errors.Is(err, parselclient.ErrUnknownTenant) {
		t.Fatalf("bad-token query: %v, want ErrUnknownTenant", err)
	}

	acme := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	acme.Token = "tok-acme"
	globex := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	globex.Token = "tok-globex"

	med, err := acme.Median(ctx, [][]int64{{4, 9, 6}})
	if err != nil || med.Value != 6 {
		t.Fatalf("acme median: %v, %v", med.Value, err)
	}

	// acme's byte budget is 64 = eight int64 keys. Six keys fit...
	info, err := acme.Dataset("a1").Upload(ctx, [][]int64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "acme" {
		t.Fatalf("uploaded tenant %q, want acme", info.Tenant)
	}
	// ...but nine more blow the budget, with the typed 413.
	if _, err := acme.Dataset("a2").Upload(ctx, [][]int64{{1, 2, 3, 4, 5, 6, 7, 8, 9}}); !errors.Is(err, parselclient.ErrTenantBudget) {
		t.Fatalf("over-budget upload: %v, want ErrTenantBudget", err)
	}
	// Two tiny datasets hit the quota instead.
	if _, err := acme.Dataset("a2").Upload(ctx, [][]int64{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Dataset("a3").Upload(ctx, [][]int64{{1}}); !errors.Is(err, parselclient.ErrTenantBudget) {
		t.Fatalf("over-quota upload: %v, want ErrTenantBudget", err)
	}
	// Replacing a resident id stays inside the quota.
	if _, err := acme.Dataset("a2").Upload(ctx, [][]int64{{7, 8}}); err != nil {
		t.Fatalf("same-id replace: %v", err)
	}

	// globex is unlimited and unaffected by acme's exhaustion.
	if _, err := globex.Dataset("g1").Upload(ctx, [][]int64{{10, 20, 30, 40, 50, 60, 70, 80, 90}}); err != nil {
		t.Fatal(err)
	}
	// Tenants cannot see each other's datasets charged to their ledger,
	// but the namespace is shared: globex replacing acme's id frees
	// acme's bytes.
	gmed, err := globex.Dataset("a1").Median(ctx)
	if err != nil || gmed.Value != 3 {
		t.Fatalf("cross-tenant read: %v, %v", gmed.Value, err)
	}

	st := d.server.Stats()
	ta, tg := st.Tenants["acme"], st.Tenants["globex"]
	if ta.Datasets != 2 || ta.ResidentBytes != 64 ||
		ta.MaxResidentBytes != 64 || ta.MaxDatasets != 2 {
		t.Fatalf("acme stats: %+v", ta)
	}
	if ta.Rejected != 2 {
		t.Fatalf("acme rejected: %d, want 2", ta.Rejected)
	}
	if tg.Datasets != 1 || tg.ResidentBytes != 72 || tg.MaxResidentBytes != 0 {
		t.Fatalf("globex stats: %+v", tg)
	}
	if ta.Requests == 0 || tg.Requests == 0 {
		t.Fatalf("request counters: acme %d, globex %d", ta.Requests, tg.Requests)
	}

	// Deleting frees the tenant's ledger.
	if _, err := acme.Dataset("a1").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Dataset("a2").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if ta := d.server.Stats().Tenants["acme"]; ta.Datasets != 0 || ta.ResidentBytes != 0 {
		t.Fatalf("acme after deletes: %+v", ta)
	}
}

// TestTenantLedgerReconcileStorm drives concurrent uploads, queries,
// replacements, deletes and TTL evictions against two budgeted tenants
// and then requires the ledgers to reconcile exactly: after deleting
// everything, every tenant gauge and the global registry must read
// zero.
func TestTenantLedgerReconcileStorm(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{
		DatasetTTL: 250 * time.Millisecond,
		Tenants: []serve.Tenant{
			{Name: "t1", Token: "tok1", MaxResidentBytes: 4096},
			{Name: "t2", Token: "tok2", MaxResidentBytes: 4096, MaxDatasets: 8},
		},
	})
	defer d.close()
	ctx := context.Background()

	clients := []*parselclient.Client{
		parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client())),
		parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client())),
	}
	clients[0].Token = "tok1"
	clients[1].Token = "tok2"

	const workers = 6
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(7, uint64(w)))
			c := clients[w%2]
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("led-%d-%d", w%2, rng.IntN(6))
				n := 1 + rng.Int64N(40)
				shard := make([]int64, n)
				for j := range shard {
					shard[j] = rng.Int64N(1 << 20)
				}
				rd := c.Dataset(id)
				switch rng.IntN(4) {
				case 0, 1:
					if _, err := rd.Upload(ctx, [][]int64{shard}); err != nil &&
						!errors.Is(err, parselclient.ErrTenantBudget) {
						t.Error(err)
						return
					}
				case 2:
					if _, err := rd.Median(ctx); err != nil &&
						!errors.Is(err, parselclient.ErrDatasetNotFound) {
						t.Error(err)
						return
					}
				default:
					if _, err := rd.Delete(ctx); err != nil &&
						!errors.Is(err, parselclient.ErrDatasetNotFound) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Let the TTL expire everything the storm left behind, then touch
	// the registry so the sweep runs.
	time.Sleep(400 * time.Millisecond)
	for _, c := range clients {
		for s := 0; s < 6; s++ {
			for w := 0; w < 2; w++ {
				_, err := c.Dataset(fmt.Sprintf("led-%d-%d", w, s)).Delete(ctx)
				if err != nil && !errors.Is(err, parselclient.ErrDatasetNotFound) {
					t.Fatal(err)
				}
			}
		}
	}

	st := d.server.Stats()
	if st.Datasets.Count != 0 || st.Datasets.ResidentBytes != 0 {
		t.Fatalf("global ledger after storm: %+v, want empty", st.Datasets)
	}
	for name, ts := range st.Tenants {
		if ts.Datasets != 0 || ts.ResidentBytes != 0 {
			t.Fatalf("tenant %q ledger after storm: %+v, want zero gauges", name, ts)
		}
	}
}
