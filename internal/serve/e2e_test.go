package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// simReport strips the host-dependent wall clock out of a Report so the
// simulated metrics can be compared bit-for-bit across the wire.
type simReport struct {
	SimSeconds     float64
	BalanceSeconds float64
	Iterations     int
	Unsuccessful   int
	Messages       int64
	Bytes          int64
}

func simOf(rep parsel.Report) simReport {
	return simReport{
		SimSeconds:     rep.SimSeconds,
		BalanceSeconds: rep.BalanceSeconds,
		Iterations:     rep.Iterations,
		Unsuccessful:   rep.Unsuccessful,
		Messages:       rep.Messages,
		Bytes:          rep.Bytes,
	}
}

// daemon is one running test daemon with its backing pool.
type daemon struct {
	client *parselclient.Client
	server *serve.Server
	pool   *parsel.Pool[int64]
	ts     *httptest.Server
}

// newDaemon spins a daemon on a loopback listener. The caller owns the
// returned handles; close() tears listener and pool down.
func newDaemon(t *testing.T, opts parsel.Options, po parsel.PoolOptions, so serve.Options) *daemon {
	t.Helper()
	pool, err := parsel.NewPool[int64](opts, po)
	if err != nil {
		t.Fatal(err)
	}
	so.Pool = pool
	srv, err := serve.New(so)
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return &daemon{
		client: parselclient.New(ts.URL, parselclient.WithHTTPClient(ts.Client())),
		server: srv,
		pool:   pool,
		ts:     ts,
	}
}

func (d *daemon) close() {
	d.ts.Close()
	d.pool.Close()
}

// e2eShape is one workload of the HTTP differential replay.
type e2eShape struct {
	name   string
	shards [][]int64
}

// e2eShapes rebuilds the randomized differential catalogue of
// differential_test.go for the daemon: generator-drawn shapes across
// every distribution plus the hand-built adversarial shapes (empty
// shards, n < p, all-equal keys, extreme skew, single processor).
func e2eShapes() []e2eShape {
	rng := rand.New(rand.NewPCG(2026, 730))
	var shapes []e2eShape
	for _, kind := range workload.Kinds {
		for draw := 0; draw < 2; draw++ {
			n := 50 + rng.Int64N(1950)
			p := 2 + rng.IntN(9)
			seed := rng.Uint64()
			shapes = append(shapes, e2eShape{
				name:   fmt.Sprintf("%s/n%d/p%d", kind, n, p),
				shards: workload.Generate(kind, n, p, seed),
			})
		}
	}
	shapes = append(shapes, e2eShape{
		name:   "unbalanced/n1500/p8",
		shards: workload.Unbalanced(1500, 8, rng.Uint64()),
	})
	empties := make([][]int64, 7)
	for i := range empties {
		if i%2 == 1 {
			empties[i] = []int64{}
			continue
		}
		empties[i] = make([]int64, 150+rng.IntN(150))
		for j := range empties[i] {
			empties[i][j] = rng.Int64N(1 << 20)
		}
	}
	lone := make([]int64, 700)
	for i := range lone {
		lone[i] = rng.Int64N(40)
	}
	shapes = append(shapes,
		e2eShape{name: "emptyshards/p7", shards: empties},
		e2eShape{name: "oneloaded/p5", shards: [][]int64{nil, {}, lone, {}, nil}},
		e2eShape{name: "allequal/p6", shards: [][]int64{
			{7, 7, 7}, {7, 7}, {7, 7, 7, 7}, {}, {7}, {7, 7}}},
		e2eShape{name: "fewerkeysthanprocs/p6", shards: [][]int64{{42}, {}, {-3}, {}, {99}, {}}},
		e2eShape{name: "singleton/p4", shards: [][]int64{{}, {}, {11}, {}}},
		e2eShape{name: "singleproc/p1", shards: [][]int64{{5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}}},
	)
	return shapes
}

// e2eConfigs are the daemon configurations the differential replay
// sweeps: the library default and a contrasting algorithm/balancer/
// topology triple, to pin the daemon's Options plumbing.
var e2eConfigs = []struct {
	name string
	opts parsel.Options
}{
	{"default", parsel.Options{}},
	{"rand-nobal-mesh", parsel.Options{
		Algorithm: parsel.Randomized,
		Balancer:  parsel.NoBalance,
		Machine:   parsel.Machine{Topology: parsel.TopologyMesh2D},
	}},
}

// TestDaemonDifferentialE2E replays the randomized differential
// workloads through the HTTP client against a daemon on a loopback
// listener, and checks every endpoint's response — value(s) and every
// simulated metric echoed in the report — bit-identical to in-process
// Pool calls, and values against the sequential sort oracle.
func TestDaemonDifferentialE2E(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(4, 2))
	for _, cfg := range e2eConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			d := newDaemon(t, cfg.opts, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
			defer d.close()
			// The in-process oracle pool: same Options, separate machines.
			oracle, err := parsel.NewPool[int64](cfg.opts, parsel.PoolOptions{MaxMachines: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()

			for _, shape := range shapes {
				t.Run(shape.name, func(t *testing.T) {
					sorted := workload.Flatten(shape.shards)
					slices.Sort(sorted)
					n := int64(len(sorted))

					for _, rank := range []int64{1, n, (n + 1) / 2, 1 + rng.Int64N(n)} {
						got, err := d.client.Select(ctx, shape.shards, rank)
						if err != nil {
							t.Fatalf("http select rank %d: %v", rank, err)
						}
						want, err := oracle.Select(shape.shards, rank)
						if err != nil {
							t.Fatalf("oracle select rank %d: %v", rank, err)
						}
						if got.Value != want.Value || simOf(got.Report) != simOf(want.Report) {
							t.Errorf("select rank %d diverges from in-process pool:\nhttp: %d %+v\npool: %d %+v",
								rank, got.Value, simOf(got.Report), want.Value, simOf(want.Report))
						}
						if got.Value != sorted[rank-1] {
							t.Errorf("select rank %d = %d, sort oracle says %d", rank, got.Value, sorted[rank-1])
						}
					}

					gmed, err := d.client.Median(ctx, shape.shards)
					if err != nil {
						t.Fatalf("http median: %v", err)
					}
					wmed, err := oracle.Median(shape.shards)
					if err != nil {
						t.Fatal(err)
					}
					if gmed.Value != wmed.Value || simOf(gmed.Report) != simOf(wmed.Report) {
						t.Errorf("median diverges: http %d %+v, pool %d %+v",
							gmed.Value, simOf(gmed.Report), wmed.Value, simOf(wmed.Report))
					}

					gq, err := d.client.Quantile(ctx, shape.shards, 0.9)
					if err != nil {
						t.Fatalf("http quantile: %v", err)
					}
					wq, err := oracle.Quantile(shape.shards, 0.9)
					if err != nil {
						t.Fatal(err)
					}
					if gq.Value != wq.Value || simOf(gq.Report) != simOf(wq.Report) {
						t.Errorf("quantile(0.9) diverges: http %d, pool %d", gq.Value, wq.Value)
					}

					qs := []float64{0, 0.25, 0.5, 0.75, 0.99, 1}
					gqs, grep, err := d.client.Quantiles(ctx, shape.shards, qs)
					if err != nil {
						t.Fatalf("http quantiles: %v", err)
					}
					wqs, wrep, err := oracle.Quantiles(shape.shards, qs)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(gqs, wqs) || simOf(grep) != simOf(wrep) {
						t.Errorf("quantiles diverge: http %v %+v, pool %v %+v",
							gqs, simOf(grep), wqs, simOf(wrep))
					}

					ranks := []int64{1, n, (n + 1) / 2, 1 + rng.Int64N(n), 1}
					grs, grep2, err := d.client.SelectRanks(ctx, shape.shards, ranks)
					if err != nil {
						t.Fatalf("http ranks: %v", err)
					}
					wrs, wrep2, err := oracle.SelectRanks(shape.shards, ranks)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(grs, wrs) || simOf(grep2) != simOf(wrep2) {
						t.Errorf("ranks diverge: http %v, pool %v", grs, wrs)
					}
					for i, r := range ranks {
						if grs[i] != sorted[r-1] {
							t.Errorf("ranks[%d] (rank %d) = %d, sort oracle says %d", i, r, grs[i], sorted[r-1])
						}
					}

					k := int(min(5, n))
					gtop, _, err := d.client.TopK(ctx, shape.shards, k)
					if err != nil {
						t.Fatalf("http topk: %v", err)
					}
					wtop, _, err := oracle.TopK(shape.shards, k)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(gtop, wtop) {
						t.Errorf("topk diverges: http %v, pool %v", gtop, wtop)
					}
					gbot, _, err := d.client.BottomK(ctx, shape.shards, k)
					if err != nil {
						t.Fatalf("http bottomk: %v", err)
					}
					if !slices.Equal(gbot, sorted[:k]) {
						t.Errorf("bottomk = %v, sort oracle says %v", gbot, sorted[:k])
					}

					gsum, gsrep, err := d.client.Summary(ctx, shape.shards)
					if err != nil {
						t.Fatalf("http summary: %v", err)
					}
					wsum, wsrep, err := oracle.Summary(shape.shards)
					if err != nil {
						t.Fatal(err)
					}
					if gsum != wsum || simOf(gsrep) != simOf(wsrep) {
						t.Errorf("summary diverges: http %+v, pool %+v", gsum, wsum)
					}

					// The same workload replayed through the resident-dataset
					// path: the shards ship once, every query body carries
					// parameters only, and each response — simulated metrics
					// included — must be bit-identical to the shard-per-query
					// results above.
					rd := d.client.Dataset("e2e-" + strings.ReplaceAll(shape.name, "/", "-"))
					if _, err := rd.Upload(ctx, shape.shards); err != nil {
						t.Fatalf("dataset upload: %v", err)
					}
					medRank := (n + 1) / 2
					dsel, err := rd.Select(ctx, medRank)
					if err != nil {
						t.Fatalf("dataset select: %v", err)
					}
					if dsel.Value != sorted[medRank-1] {
						t.Errorf("dataset select rank %d = %d, sort oracle says %d",
							medRank, dsel.Value, sorted[medRank-1])
					}
					dmed, err := rd.Median(ctx)
					if err != nil {
						t.Fatalf("dataset median: %v", err)
					}
					if dmed.Value != wmed.Value || simOf(dmed.Report) != simOf(wmed.Report) {
						t.Errorf("dataset median diverges: %d %+v, pool %d %+v",
							dmed.Value, simOf(dmed.Report), wmed.Value, simOf(wmed.Report))
					}
					dq, err := rd.Quantile(ctx, 0.9)
					if err != nil {
						t.Fatalf("dataset quantile: %v", err)
					}
					if dq.Value != wq.Value || simOf(dq.Report) != simOf(wq.Report) {
						t.Errorf("dataset quantile(0.9) diverges: %d, pool %d", dq.Value, wq.Value)
					}
					dqs, dqrep, err := rd.Quantiles(ctx, qs)
					if err != nil {
						t.Fatalf("dataset quantiles: %v", err)
					}
					if !slices.Equal(dqs, wqs) || simOf(dqrep) != simOf(wrep) {
						t.Errorf("dataset quantiles diverge: %v %+v, pool %v %+v",
							dqs, simOf(dqrep), wqs, simOf(wrep))
					}
					drs, drrep, err := rd.SelectRanks(ctx, ranks)
					if err != nil {
						t.Fatalf("dataset ranks: %v", err)
					}
					if !slices.Equal(drs, wrs) || simOf(drrep) != simOf(wrep2) {
						t.Errorf("dataset ranks diverge: %v, pool %v", drs, wrs)
					}
					dtop, _, err := rd.TopK(ctx, k)
					if err != nil {
						t.Fatalf("dataset topk: %v", err)
					}
					if !slices.Equal(dtop, wtop) {
						t.Errorf("dataset topk diverges: %v, pool %v", dtop, wtop)
					}
					dbot, _, err := rd.BottomK(ctx, k)
					if err != nil {
						t.Fatalf("dataset bottomk: %v", err)
					}
					if !slices.Equal(dbot, sorted[:k]) {
						t.Errorf("dataset bottomk = %v, sort oracle says %v", dbot, sorted[:k])
					}
					dsum, dsrep, err := rd.Summary(ctx)
					if err != nil {
						t.Fatalf("dataset summary: %v", err)
					}
					if dsum != wsum || simOf(dsrep) != simOf(wsrep) {
						t.Errorf("dataset summary diverges: %+v, pool %+v", dsum, wsum)
					}
					if _, err := rd.Delete(ctx); err != nil {
						t.Fatalf("dataset delete: %v", err)
					}
				})
			}
		})
	}
}

// TestDaemonConcurrentClientsBitIdentical hammers one daemon with 48
// concurrent HTTP clients over a mixed query set and asserts every
// response — including the simulated metrics — bit-identical to
// in-process expectations. Run under -race this is the serving-layer
// stress for the whole HTTP stack.
func TestDaemonConcurrentClientsBitIdentical(t *testing.T) {
	type job struct {
		shards   [][]int64
		rank     int64
		wantVal  int64
		wantRep  simReport
		ranks    []int64
		wantVals []int64
	}
	var jobs []job
	for _, cfg := range []struct {
		kind workload.Kind
		n    int64
		p    int
	}{
		{workload.Random, 30000, 8},
		{workload.Sorted, 20000, 8},
		{workload.FewDistinct, 15000, 4},
		{workload.ZipfLike, 18000, 6},
	} {
		shards := workload.Generate(cfg.kind, cfg.n, cfg.p, 7)
		for _, rank := range []int64{1, cfg.n / 3, (cfg.n + 1) / 2, cfg.n} {
			res, err := parsel.Select(shards, rank, parsel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{shards: shards, rank: rank, wantVal: res.Value, wantRep: simOf(res.Report)})
		}
		ranks := []int64{1, cfg.n / 4, cfg.n / 2, cfg.n}
		vals, rep, err := parsel.SelectRanks(shards, ranks, parsel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{shards: shards, ranks: ranks, wantVals: slices.Clone(vals), wantRep: simOf(rep)})
	}

	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4},
		serve.Options{QueueDepth: 256})
	defer d.close()

	const clients = 48
	rounds := 2
	if testing.Short() {
		rounds = 1
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := 0; off < len(jobs); off++ {
					j := jobs[(c+off)%len(jobs)]
					if j.ranks != nil {
						vals, rep, err := d.client.SelectRanks(ctx, j.shards, j.ranks)
						if err != nil {
							t.Errorf("client %d ranks: %v", c, err)
							return
						}
						if !slices.Equal(vals, j.wantVals) || simOf(rep) != j.wantRep {
							t.Errorf("client %d ranks diverge: %v %+v, want %v %+v",
								c, vals, simOf(rep), j.wantVals, j.wantRep)
							return
						}
						continue
					}
					res, err := d.client.Select(ctx, j.shards, j.rank)
					if err != nil {
						t.Errorf("client %d rank %d: %v", c, j.rank, err)
						return
					}
					if res.Value != j.wantVal || simOf(res.Report) != j.wantRep {
						t.Errorf("client %d rank %d diverges: %d %+v, want %d %+v",
							c, j.rank, res.Value, simOf(res.Report), j.wantVal, j.wantRep)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st, err := d.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantOK := int64(clients * rounds * len(jobs))
	if st.Server.OK != wantOK || st.Server.Requests != wantOK {
		t.Errorf("stats: %d/%d ok/requests, want %d", st.Server.OK, st.Server.Requests, wantOK)
	}
	if st.Sim.Queries != wantOK || st.Latency.Count != wantOK {
		t.Errorf("stats: sim queries %d, latency count %d, want %d",
			st.Sim.Queries, st.Latency.Count, wantOK)
	}
	if st.Sim.SimSeconds <= 0 || st.Sim.Messages <= 0 {
		t.Errorf("stats: empty simulated aggregates: %+v", st.Sim)
	}
	if st.Pool.Creates > 4 {
		t.Errorf("pool built %d machines, capacity 4", st.Pool.Creates)
	}
	if st.Pool.Resident > 4 || st.Pool.Resident != st.Pool.Idle {
		t.Errorf("pool gauges after quiesce: %+v, want Resident==Idle<=4", st.Pool)
	}
}

// TestDaemonStatsAndHealth pins the observability surface: /healthz
// flips to 503 on drain, /v1/stats rejects POST, queries during drain
// are refused with the shutting_down code mapped to ErrPoolClosed.
func TestDaemonStatsAndHealth(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d.close()

	if err := d.client.Health(ctx); err != nil {
		t.Fatalf("healthy daemon: %v", err)
	}
	shards := [][]int64{{3, 1, 4}, {1, 5}}
	if _, err := d.client.Median(ctx, shards); err != nil {
		t.Fatal(err)
	}
	st, err := d.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.OK != 1 || st.Pool.MaxMachines != 2 || st.Latency.Count != 1 {
		t.Errorf("stats after one query: %+v", st)
	}
	if len(st.Latency.Buckets) == 0 ||
		st.Latency.Buckets[len(st.Latency.Buckets)-1].Count != 1 {
		t.Errorf("latency histogram missing the query: %+v", st.Latency)
	}

	d.server.Drain()
	if err := d.client.Health(ctx); err == nil {
		t.Error("draining daemon still reports healthy")
	}
	_, err = d.client.Median(ctx, shards)
	var apiErr *parselclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != parselclient.CodeShuttingDown {
		t.Errorf("query while draining: %v", err)
	}
	if !errors.Is(err, parsel.ErrPoolClosed) {
		t.Errorf("draining error should map to ErrPoolClosed, got %v", err)
	}
}
