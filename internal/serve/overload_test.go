package serve_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// waitStats polls the daemon's stats until cond holds, failing the test
// after five seconds — the synchronization primitive that keeps the
// overload tests deterministic instead of sleep-based.
func waitStats(t *testing.T, d *daemon, what string, cond func(parselclient.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(d.server.Stats()) {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s; stats: %+v", what, d.server.Stats())
}

// TestDaemonOverloadDeadlines saturates a single-machine daemon with
// slow queries and pins the overload contract end to end: requests with
// tight admission deadlines resolve to the typed 429 pool_timeout
// (mapped back to parsel.ErrPoolTimeout by the client), a 48-client
// storm under -race stays structured (every outcome is success,
// pool_timeout or queue_full — never a hang or a panic), the slow
// queries all complete, and after drain the pool audits clean: zero
// resident Selectors and no leaked goroutines.
// (TestDaemonPoolTimeoutTyped in the root package pins the same typed
// error with the machine held deterministically.)
func TestDaemonOverloadDeadlines(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	// Median-of-medians on sorted data is the paper's slowest
	// configuration (~15ms per 256k-key query on a reference host), so
	// eight queued queries hold the daemon's only machine for a long,
	// scheduler-independent window.
	d := newDaemon(t, parsel.Options{Algorithm: parsel.MedianOfMedians},
		parsel.PoolOptions{MaxMachines: 1},
		serve.Options{QueueDepth: 64, DefaultTimeout: 30 * time.Second})
	slow := workload.Generate(workload.Sorted, 262144, 8, 3)
	ctx := context.Background()

	// Eight slow queries, no client deadline: they must all eventually
	// succeed, and while they hold the machine + admission slots the
	// daemon is saturated.
	const slowN = 8
	var slowWG sync.WaitGroup
	slowErrs := make([]error, slowN)
	for i := 0; i < slowN; i++ {
		slowWG.Add(1)
		go func(i int) {
			defer slowWG.Done()
			_, slowErrs[i] = d.client.Median(ctx, slow)
		}(i)
	}
	waitStats(t, d, "slow queries to be admitted", func(st parselclient.Stats) bool {
		return st.Server.Inflight >= 6
	})

	// The storm: 48 concurrent HTTP clients with 1ms admission
	// deadlines against the one machine, which the slow queries keep
	// busy for >= 5 * 15ms after the admission check above. Every
	// request must resolve to a structured outcome. Small shards keep
	// the storm's cost in admission, not serialization.
	tc := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	tc.QueryTimeout = time.Millisecond
	small := workload.Generate(workload.Random, 8192, 4, 11)
	const stormClients = 48
	var ok, timedOut, queueFull atomic.Int64
	var sampleMu sync.Mutex
	var sampleTimeout error
	var stormWG sync.WaitGroup
	for c := 0; c < stormClients; c++ {
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			for i := 0; i < 3; i++ {
				_, err := tc.Median(ctx, small)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, parsel.ErrPoolTimeout):
					timedOut.Add(1)
					sampleMu.Lock()
					sampleTimeout = err
					sampleMu.Unlock()
				case errors.Is(err, parselclient.ErrQueueFull):
					queueFull.Add(1)
				default:
					t.Errorf("storm client: unstructured outcome %v", err)
					return
				}
			}
		}()
	}
	stormWG.Wait()
	slowWG.Wait()
	for i, err := range slowErrs {
		if err != nil {
			t.Errorf("slow query %d: %v", i, err)
		}
	}
	if timedOut.Load() == 0 {
		t.Error("storm produced no pool_timeout responses")
	} else {
		// The typed shape of a timeout, sampled from the storm.
		var apiErr *parselclient.APIError
		if !errors.As(sampleTimeout, &apiErr) {
			t.Errorf("timeout outcome is %T, want *APIError", sampleTimeout)
		} else if apiErr.Status != 429 || apiErr.Code != parselclient.CodePoolTimeout {
			t.Errorf("timeout outcome %d %s, want 429 %s",
				apiErr.Status, apiErr.Code, parselclient.CodePoolTimeout)
		}
	}
	if total := ok.Load() + timedOut.Load() + queueFull.Load(); total != stormClients*3 {
		t.Errorf("storm outcomes %d, want %d", total, stormClients*3)
	}

	// Counters must account for every request exactly once.
	st := d.server.Stats()
	sum := st.Server.OK + st.Server.Timeouts + st.Server.Rejected +
		st.Server.ClientErrors + st.Server.ServerErrors
	if st.Server.Requests != sum {
		t.Errorf("request accounting leak: %d requests, outcomes sum to %d: %+v",
			st.Server.Requests, sum, st.Server)
	}
	if st.Server.Timeouts != timedOut.Load() || st.Server.Rejected != queueFull.Load() {
		t.Errorf("server counted %d/%d timeouts/rejections, clients saw %d/%d",
			st.Server.Timeouts, st.Server.Rejected, timedOut.Load(), queueFull.Load())
	}
	if st.Pool.Timeouts == 0 {
		t.Errorf("pool never recorded an admission timeout: %+v", st.Pool)
	}
	if st.Pool.Creates != 1 {
		t.Errorf("single-machine pool built %d machines", st.Pool.Creates)
	}

	// Drain, shut down, and audit for leaks: no resident Selectors, and
	// the goroutine count returns to its pre-daemon level.
	d.server.Drain()
	if _, err := d.client.Median(ctx, [][]int64{{1}, {2}}); !errors.Is(err, parsel.ErrPoolClosed) {
		t.Errorf("query during drain: %v, want ErrPoolClosed mapping", err)
	}
	d.ts.Close()
	d.pool.Close()
	if st := d.pool.Stats(); st.Resident != 0 || st.Idle != 0 {
		t.Errorf("Selector leak after drain: %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseGoroutines+3 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak after drain: %d now, %d before the daemon",
		runtime.NumGoroutine(), baseGoroutines)
}

// stalledRequest opens a raw connection and sends a query's headers
// plus a partial body, then stops: the handler admits the request (the
// admission slot is taken before the body is read) and blocks reading
// the rest, holding the slot until the connection is closed — a fully
// deterministic way to occupy admission capacity.
func stalledRequest(t *testing.T, d *daemon) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", d.ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	partial := `{"shards": [[1, 2], [3]]` // valid prefix, never completed
	_, err = fmt.Fprintf(conn, "POST /v1/median HTTP/1.1\r\nHost: parseld\r\n"+
		"Content-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(partial)+100, partial)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestDaemonQueueFull pins the constant-time rejection line: once
// MaxMachines + QueueDepth requests are admitted, the next query is
// answered 429 queue_full immediately (no queueing), mapped to
// parselclient.ErrQueueFull. Admission capacity is held by stalled
// uploads, so the window is deterministic.
func TestDaemonQueueFull(t *testing.T) {
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1},
		serve.Options{QueueDepth: 1, DefaultTimeout: 10 * time.Second})
	defer d.close()
	ctx := context.Background()
	small := [][]int64{{1, 2}, {3}}

	// Fill both admission slots (MaxMachines 1 + QueueDepth 1) with
	// stalled uploads.
	c1 := stalledRequest(t, d)
	defer c1.Close()
	c2 := stalledRequest(t, d)
	defer c2.Close()
	waitStats(t, d, "admission slots to fill", func(st parselclient.Stats) bool {
		return st.Server.Inflight >= 2
	})

	_, err := d.client.Median(ctx, small)
	if !errors.Is(err, parselclient.ErrQueueFull) {
		t.Errorf("overfull daemon: %v, want ErrQueueFull", err)
	}
	var apiErr *parselclient.APIError
	if errors.As(err, &apiErr) && apiErr.Status != 429 {
		t.Errorf("queue_full status = %d, want 429", apiErr.Status)
	}

	// Release one slot: its handler fails the half-read body with a
	// structured 400, and the freed capacity serves real queries again.
	c1.Close()
	readStatus(t, c1) // connection is closed; just ensure no hang
	waitStats(t, d, "slot release", func(st parselclient.Stats) bool {
		return st.Server.Inflight <= 1
	})
	res, err := d.client.Median(ctx, small)
	if err != nil || res.Value != 2 {
		t.Errorf("median after queue drain: %v %v", res.Value, err)
	}

	st := d.server.Stats()
	if st.Server.Rejected == 0 {
		t.Errorf("queue-full accounting: %+v", st.Server)
	}
}

// readStatus drains whatever response the stalled connection got, if
// any; closed-connection errors are fine.
func readStatus(t *testing.T, conn net.Conn) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err == nil && !strings.HasPrefix(line, "HTTP/1.1") {
		t.Errorf("stalled connection got non-HTTP response %q", line)
	}
}
