package serve_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"parsel"
	"parsel/internal/serve"
	"parsel/parselclient"
	"parsel/parselclient/cluster"
)

// fleet is N independent test daemons plus a router placing datasets
// across them — the cluster e2e rig. The daemons share nothing: no
// common pool, no common snapshot directory, no knowledge of each
// other. Everything cluster-shaped lives in the router.
type fleet struct {
	daemons map[string]*daemon // base URL -> daemon
	urls    []string
	router  *cluster.Router
}

// newFleet spins n daemons on loopback listeners and a router over
// them with the given replica count. RecoveryInterval is effectively
// infinite so a node the test kills stays out of rotation — the test
// controls the health view, not the clock.
func newFleet(t *testing.T, n, replicas int) *fleet {
	t.Helper()
	f := &fleet{daemons: make(map[string]*daemon, n)}
	for i := 0; i < n; i++ {
		d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
		t.Cleanup(d.close)
		f.daemons[d.ts.URL] = d
		f.urls = append(f.urls, d.ts.URL)
	}
	r, err := cluster.New(cluster.Config{
		Nodes:            f.urls,
		Replicas:         replicas,
		RecoveryInterval: time.Hour,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.router = r
	return f
}

// uploadsByNode snapshots each daemon's dataset-upload counter, keyed
// by node URL. Snapshot ships land as uploads on the receiving daemon,
// so the counters distinguish "keys moved" from "nothing moved".
func (f *fleet) uploadsByNode() map[string]int64 {
	m := make(map[string]int64, len(f.daemons))
	for url, d := range f.daemons {
		m[url] = d.server.Stats().Datasets.Uploads
	}
	return m
}

// copiesOf counts how many live daemons hold a resident copy of id,
// asking each daemon directly (not through the router).
func (f *fleet) copiesOf(t *testing.T, id string) []string {
	t.Helper()
	var holders []string
	for url, d := range f.daemons {
		_, err := d.client.Dataset(id).Info(context.Background())
		switch {
		case err == nil:
			holders = append(holders, url)
		case errors.Is(err, parselclient.ErrDatasetNotFound):
		default:
			t.Fatalf("info %s on %s: %v", id, url, err)
		}
	}
	return holders
}

// TestClusterKillOneNode is the cluster e2e harness of the replication
// contract: upload the full differential catalogue through the router
// onto a 3-node fleet at 2 replicas — the keys crossing the client
// wire exactly once per dataset, replicas filled purely by node-to-node
// snapshot shipping — then kill the node that is primary for the first
// shape and replay the whole catalogue through the router, asserting
// every response bit-identical to the healthy-fleet run and zero keys
// re-uploaded by the client.
func TestClusterKillOneNode(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	f := newFleet(t, 3, 2)
	surface := func(name string) datasetSurface {
		return cluster.DatasetOf[int64](f.router, dsID(name))
	}

	before := runCatalogueOn(t, surface, shapes, true)

	// Replication was pure snapshot shipping: one ship per dataset
	// (replicas=2 means one copy beyond the primary), no client
	// re-uploads, no shortfalls — the whole fleet was up.
	st := f.router.Stats()
	if st.Reuploads != 0 {
		t.Fatalf("fixed-kind uploads re-sent client shards %d times, want 0", st.Reuploads)
	}
	if st.Shipped != int64(len(shapes)) {
		t.Fatalf("shipped %d snapshots, want %d (one per dataset)", st.Shipped, len(shapes))
	}
	if st.ReplicaShortfalls != 0 || len(st.Down) != 0 {
		t.Fatalf("healthy-fleet upload saw shortfalls: %+v", st)
	}
	// Every dataset is resident on exactly its two placed nodes.
	for _, shape := range shapes {
		id := dsID(shape.name)
		want := f.router.Place(id)
		got := f.copiesOf(t, id)
		if len(got) != len(want) {
			t.Fatalf("%s: resident on %v, want %v", id, got, want)
		}
	}

	// Kill the primary of the first shape — a node that provably owns
	// data — with no drain: listener and pool torn down mid-life.
	victim := f.router.Place(dsID(shapes[0].name))[0]
	f.daemons[victim].close()
	survivors := make(map[string]*daemon, len(f.daemons)-1)
	for url, d := range f.daemons {
		if url != victim {
			survivors[url] = d
		}
	}
	f.daemons = survivors
	preReplay := f.uploadsByNode()

	// The replay: queries only, through the router. Every dataset still
	// has a live replica (R=2, one node down), so the full catalogue
	// answers bit-identically; dataset keys never cross any wire again.
	after := runCatalogueOn(t, surface, shapes, false)
	compareRecords(t, before, after)

	st = f.router.Stats()
	if st.Reuploads != 0 {
		t.Errorf("replay re-uploaded client shards %d times, want 0", st.Reuploads)
	}
	if st.Failovers == 0 {
		t.Errorf("replay never failed over, yet the victim was shape 0's primary")
	}
	if len(st.Down) != 1 || st.Down[0] != victim {
		t.Errorf("rotation view: down=%v, want [%s]", st.Down, victim)
	}
	for url, n := range f.uploadsByNode() {
		if n != preReplay[url] {
			t.Errorf("node %s upload counter moved %d -> %d during replay, want unchanged",
				url, preReplay[url], n)
		}
	}

	// The health probe agrees with the passive view: the victim is the
	// one node with a verdict.
	verdicts := f.router.ProbeHealth(context.Background())
	for url, err := range verdicts {
		if (err != nil) != (url == victim) {
			t.Errorf("probe %s: %v", url, err)
		}
	}
}

// TestClusterRebalanceOnJoin pins the ring-change contract: adding a
// node moves only the datasets the ring now places there, the moves
// are node-to-node snapshot ships (never client re-uploads), surplus
// copies are deleted only after the new replica is confirmed, and the
// post-rebalance fleet answers queries exactly as before.
func TestClusterRebalanceOnJoin(t *testing.T) {
	shapes := e2eShapes()[:8]
	f := newFleet(t, 3, 2)
	surface := func(name string) datasetSurface {
		return cluster.DatasetOf[int64](f.router, dsID(name))
	}
	before := runCatalogueOn(t, surface, shapes, true)

	// A fourth daemon joins; the ring is rebuilt and the data follows.
	joined := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	t.Cleanup(joined.close)
	f.daemons[joined.ts.URL] = joined
	f.urls = append(f.urls, joined.ts.URL)
	if err := f.router.SetNodes(f.urls); err != nil {
		t.Fatal(err)
	}
	rep, err := f.router.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Datasets != len(shapes) {
		t.Fatalf("rebalance examined %d datasets, want %d", rep.Datasets, len(shapes))
	}
	if len(rep.Errors) != 0 || len(rep.Lost) != 0 || len(rep.Pinned) != 0 {
		t.Fatalf("rebalance report: %+v", rep)
	}

	// After the pass every dataset sits on exactly its (new) replica
	// set: fills happened, surpluses are gone.
	moved := 0
	for _, shape := range shapes {
		id := dsID(shape.name)
		want := f.router.Place(id)
		wantSet := make(map[string]bool, len(want))
		for _, n := range want {
			wantSet[n] = true
		}
		got := f.copiesOf(t, id)
		if len(got) != len(want) {
			t.Fatalf("%s: resident on %v, want %v", id, got, want)
		}
		for _, n := range got {
			if !wantSet[n] {
				t.Fatalf("%s: surplus copy on %s survived rebalance", id, n)
			}
		}
		if wantSet[joined.ts.URL] {
			moved++
		}
	}
	if rep.Shipped != moved || rep.Deleted != moved {
		t.Errorf("rebalance shipped %d, deleted %d; want %d each (datasets placed on the joiner)",
			rep.Shipped, rep.Deleted, moved)
	}
	if st := f.router.Stats(); st.Reuploads != 0 {
		t.Errorf("rebalance re-uploaded client shards %d times, want 0", st.Reuploads)
	}

	// A second pass is a no-op: the fleet already matches the ring.
	rep2, err := f.router.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Shipped != 0 || rep2.Deleted != 0 || len(rep2.Errors) != 0 {
		t.Errorf("second rebalance not idempotent: %+v", rep2)
	}

	// The rebalanced fleet answers the catalogue bit-identically.
	after := runCatalogueOn(t, surface, shapes, false)
	compareRecords(t, before, after)
}

// TestClusterStringReplication pins the string-kind caveat end to end:
// string datasets have no snapshot encoding, so replicas fill by
// re-sending the client's shards (counted in Stats.Reuploads), queries
// still fail over, and Rebalance pins rather than ships them.
func TestClusterStringReplication(t *testing.T) {
	f := newFleet(t, 3, 2)
	ctx := context.Background()
	ds := cluster.Keyed[string](f.router).Dataset("words")
	shards := [][]string{{"pear", "apple"}, {"fig", "quince", "mango"}}
	if _, err := ds.Upload(ctx, shards); err != nil {
		t.Fatal(err)
	}
	st := f.router.Stats()
	if st.Reuploads != 1 || st.Shipped != 0 {
		t.Fatalf("string replication: %+v, want 1 reupload and 0 ships", st)
	}
	holders := f.copiesOf(t, "words")
	if len(holders) != 2 {
		t.Fatalf("string dataset resident on %v, want 2 nodes", holders)
	}

	med, err := ds.Median(ctx)
	if err != nil || med.Value != "mango" {
		t.Fatalf("median: %q, %v", med.Value, err)
	}
	// Kill the primary; the re-uploaded replica answers identically.
	victim := f.router.Place("words")[0]
	f.daemons[victim].close()
	delete(f.daemons, victim)
	med2, err := ds.Median(ctx)
	if err != nil || med2.Value != med.Value {
		t.Fatalf("median after kill: %q, %v; want %q", med2.Value, err, med.Value)
	}

	// Rebalance cannot refill the lost string replica by shipping: the
	// dataset lands in Pinned, and nothing is deleted.
	rep, err := f.router.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pinned) != 1 || rep.Pinned[0] != "words" {
		t.Fatalf("rebalance with dead string primary: %+v, want words pinned", rep)
	}
	if rep.Shipped != 0 || rep.Deleted != 0 {
		t.Fatalf("rebalance moved a string dataset: %+v", rep)
	}
}

// TestClusterDeleteBroadcast pins that a router delete removes every
// replica: no node still answers for the id afterwards, and not-found
// replicas do not fail the delete.
func TestClusterDeleteBroadcast(t *testing.T) {
	f := newFleet(t, 3, 3)
	ctx := context.Background()
	ds := cluster.DatasetOf[int64](f.router, "doomed")
	if _, err := ds.Upload(ctx, [][]int64{{5, 1}, {9, 3, 7}}); err != nil {
		t.Fatal(err)
	}
	if holders := f.copiesOf(t, "doomed"); len(holders) != 3 {
		t.Fatalf("resident on %v, want all 3 nodes", holders)
	}
	// Remove one copy behind the router's back: delete must treat the
	// hole as success, not an error.
	pre := f.router.Place("doomed")[1]
	if _, err := f.daemons[pre].client.Dataset("doomed").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if holders := f.copiesOf(t, "doomed"); len(holders) != 0 {
		t.Fatalf("copies survive delete on %v", holders)
	}
	if _, err := ds.Info(ctx); !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Fatalf("info after delete: %v, want ErrDatasetNotFound", err)
	}
	if reg := f.router.Datasets(); len(reg) != 0 {
		t.Fatalf("router still tracks %v after delete", reg)
	}
}

// TestClusterFloat64Ships pins that snapshot shipping preserves the
// float64 kind across nodes: the replica's copy carries the kind and
// answers a fractional median only the float64 domain can represent.
func TestClusterFloat64Ships(t *testing.T) {
	f := newFleet(t, 2, 2)
	ctx := context.Background()
	ds := cluster.Keyed[float64](f.router).Dataset("lat")
	if _, err := ds.Upload(ctx, [][]float64{{0.25, 9.75}, {3.5}}); err != nil {
		t.Fatal(err)
	}
	if st := f.router.Stats(); st.Shipped != 1 || st.Reuploads != 0 {
		t.Fatalf("float64 replication: %+v, want 1 ship", st)
	}
	// Ask each node directly: both hold the same typed dataset.
	for url, d := range f.daemons {
		info, err := parselclient.Keyed[float64](d.client).Dataset("lat").Info(ctx)
		if err != nil || info.KeyKind != parselclient.KeyKindFloat64 || info.N != 3 {
			t.Fatalf("node %s: info %+v, %v", url, info, err)
		}
		med, err := parselclient.Keyed[float64](d.client).Dataset("lat").Median(ctx)
		if err != nil || med.Value != 3.5 {
			t.Fatalf("node %s: median %v, %v", url, med.Value, err)
		}
	}
}

// TestClusterPlacementAgreement pins the coordinator-free premise: two
// routers built independently from the same Config place every dataset
// identically.
func TestClusterPlacementAgreement(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r1, err := cluster.New(cluster.Config{Nodes: urls, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cluster.New(cluster.Config{Nodes: urls, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("ds-%d", i)
		p1, p2 := r1.Place(id), r2.Place(id)
		if len(p1) != 2 || len(p2) != 2 || p1[0] != p2[0] || p1[1] != p2[1] {
			t.Fatalf("routers disagree on %s: %v vs %v", id, p1, p2)
		}
	}
}
