package serve

import (
	"errors"
	"strings"
	"testing"

	"parsel/parselclient"
)

// TestCheckDatasetID exercises the id validator directly, in
// particular the literal "." and ".." segments that net/http's ServeMux
// path-cleans into redirects before any handler runs — the validator
// must still refuse them for callers that bypass the mux (snapshot
// recovery, RestoreDataset).
func TestCheckDatasetID(t *testing.T) {
	bad := []string{
		"", ".", "..", "...", ".hidden", ".foo.bar",
		"has space", "sla/sh", "semi;colon", "café",
		strings.Repeat("x", 129),
	}
	for _, id := range bad {
		err := checkDatasetID(id)
		if err == nil {
			t.Errorf("checkDatasetID(%q) = nil, want error", id)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) || pe.Code != parselclient.CodeBadDatasetID {
			t.Errorf("checkDatasetID(%q) = %v, want code %q", id, err, parselclient.CodeBadDatasetID)
		}
	}
	good := []string{
		"a", "A-1", "weekly.2026-08-08", "x..y", "trailing.", "under_score",
		strings.Repeat("x", 128),
	}
	for _, id := range good {
		if err := checkDatasetID(id); err != nil {
			t.Errorf("checkDatasetID(%q) = %v, want nil", id, err)
		}
	}
}

// TestCheckKeyKind pins the registry's kind vocabulary: the empty
// default plus the three served kinds, everything else refused with
// bad_kind.
func TestCheckKeyKind(t *testing.T) {
	for _, k := range []string{"", "int64", "float64", "string"} {
		if err := checkKeyKind(k); err != nil {
			t.Errorf("checkKeyKind(%q) = %v, want nil", k, err)
		}
	}
	for _, k := range []string{"Int64", "uint8", "decimal", "float32", " int64"} {
		err := checkKeyKind(k)
		var pe *ParseError
		if err == nil || !errors.As(err, &pe) || pe.Code != parselclient.CodeBadKind {
			t.Errorf("checkKeyKind(%q) = %v, want code %q", k, err, parselclient.CodeBadKind)
		}
	}
}
