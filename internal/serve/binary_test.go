package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"parsel"
	"parsel/internal/serve"
	"parsel/internal/snapshot"
	"parsel/internal/workload"
	"parsel/parselclient"
)

// binaryClient builds a second client on the same daemon with the
// binary frame encoding switched on.
func binaryClient(d *daemon) *parselclient.Client {
	c := parselclient.New(d.ts.URL, parselclient.WithHTTPClient(d.ts.Client()))
	c.Binary = true
	return c
}

// TestDaemonBinaryDifferentialE2E replays the differential catalogue
// over the binary wire: every shape is uploaded twice — once as JSON,
// once streamed as the snapshot binary format — and the full query
// surface (single queries with framed responses, plus a mixed
// querymany batch) must answer bit-identically across both encodings
// and the in-process oracle, simulated metrics included.
func TestDaemonBinaryDifferentialE2E(t *testing.T) {
	shapes := e2eShapes()
	if testing.Short() {
		shapes = shapes[:6]
	}
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 4}, serve.Options{})
	defer d.close()
	bc := binaryClient(d)
	oracle, err := parsel.NewPool[int64](parsel.Options{}, parsel.PoolOptions{MaxMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			sorted := workload.Flatten(shape.shards)
			slices.Sort(sorted)
			n := int64(len(sorted))
			ods, err := oracle.NewDataset(shape.shards)
			if err != nil {
				t.Fatal(err)
			}
			defer ods.Close()

			id := "bin-" + strings.ReplaceAll(shape.name, "/", "-")
			jd := d.client.Dataset(id + "-json")
			bd := bc.Dataset(id)
			jinfo, err := jd.Upload(ctx, shape.shards)
			if err != nil {
				t.Fatalf("json upload: %v", err)
			}
			binfo, err := bd.Upload(ctx, shape.shards)
			if err != nil {
				t.Fatalf("binary upload: %v", err)
			}
			// Identical datasets however the keys crossed the wire.
			if jinfo.Procs != binfo.Procs || jinfo.N != binfo.N || jinfo.Bytes != binfo.Bytes {
				t.Errorf("upload infos diverge: json %+v, binary %+v", jinfo, binfo)
			}

			rank := (n + 1) / 2
			jsel, err := jd.Select(ctx, rank)
			if err != nil {
				t.Fatalf("json select: %v", err)
			}
			bsel, err := bd.Select(ctx, rank)
			if err != nil {
				t.Fatalf("binary select: %v", err)
			}
			osel, err := ods.Select(rank)
			if err != nil {
				t.Fatal(err)
			}
			if bsel.Value != jsel.Value || simOf(bsel.Report) != simOf(jsel.Report) {
				t.Errorf("select diverges across encodings: binary %d %+v, json %d %+v",
					bsel.Value, simOf(bsel.Report), jsel.Value, simOf(jsel.Report))
			}
			if bsel.Value != osel.Value || simOf(bsel.Report) != simOf(osel.Report) {
				t.Errorf("binary select diverges from in-process: %d %+v, dataset %d %+v",
					bsel.Value, simOf(bsel.Report), osel.Value, simOf(osel.Report))
			}
			if bsel.Value != sorted[rank-1] {
				t.Errorf("binary select rank %d = %d, sort oracle says %d", rank, bsel.Value, sorted[rank-1])
			}

			qs := []float64{0, 0.25, 0.5, 0.75, 0.99, 1}
			jqs, jrep, err := jd.Quantiles(ctx, qs)
			if err != nil {
				t.Fatalf("json quantiles: %v", err)
			}
			bqs, brep, err := bd.Quantiles(ctx, qs)
			if err != nil {
				t.Fatalf("binary quantiles: %v", err)
			}
			if !slices.Equal(bqs, jqs) || simOf(brep) != simOf(jrep) {
				t.Errorf("quantiles diverge across encodings: binary %v %+v, json %v %+v",
					bqs, simOf(brep), jqs, simOf(jrep))
			}

			// k=0 keeps its empty-not-null values array through the frame.
			btop, _, err := bd.TopK(ctx, 0)
			if err != nil {
				t.Fatalf("binary topk(0): %v", err)
			}
			if btop == nil || len(btop) != 0 {
				t.Errorf("binary topk(0) = %#v, want non-nil empty slice", btop)
			}

			bsum, bsrep, err := bd.Summary(ctx)
			if err != nil {
				t.Fatalf("binary summary: %v", err)
			}
			jsum, jsrep, err := jd.Summary(ctx)
			if err != nil {
				t.Fatalf("json summary: %v", err)
			}
			if bsum != jsum || simOf(bsrep) != simOf(jsrep) {
				t.Errorf("summary diverges across encodings: binary %+v, json %+v", bsum, jsum)
			}

			// A mixed batch over both encodings: per-item results must
			// match the single-query answers bit-for-bit, and the
			// out-of-range item fails alone without poisoning the batch.
			k := int(min(5, n))
			batch := []parselclient.DatasetQuery{
				{Kind: parselclient.KindSelect, Rank: &rank},
				{Kind: parselclient.KindMedian},
				{Kind: parselclient.KindQuantiles, Qs: qs},
				{Kind: parselclient.KindSelect, Rank: ptr(n + 1)}, // out of range
				{Kind: parselclient.KindTopK, K: &k},
				{Kind: parselclient.KindSummary},
			}
			jres, err := jd.QueryMany(ctx, batch)
			if err != nil {
				t.Fatalf("json querymany: %v", err)
			}
			bres, err := bd.QueryMany(ctx, batch)
			if err != nil {
				t.Fatalf("binary querymany: %v", err)
			}
			for i := range batch {
				jb, bb := jres[i], bres[i]
				if (jb.Err() == nil) != (bb.Err() == nil) {
					t.Fatalf("batch[%d] verdicts diverge: json %v, binary %v", i, jb.Err(), bb.Err())
				}
				if jb.Err() != nil {
					continue
				}
				if !slices.Equal(bb.Values, jb.Values) || simOf(bb.Report.Report()) != simOf(jb.Report.Report()) {
					t.Errorf("batch[%d] diverges across encodings: binary %v %+v, json %v %+v",
						i, bb.Values, bb.Report, jb.Values, jb.Report)
				}
				if (jb.Value == nil) != (bb.Value == nil) ||
					(jb.Value != nil && *jb.Value != *bb.Value) {
					t.Errorf("batch[%d] scalar diverges across encodings", i)
				}
			}
			if !errors.Is(bres[3].Err(), parsel.ErrRankRange) {
				t.Errorf("batch out-of-range item: %v, want ErrRankRange", bres[3].Err())
			}
			if bres[1].Value == nil {
				t.Fatal("batch median carries no value")
			}
			bmed, err := bd.Median(ctx)
			if err != nil {
				t.Fatalf("binary median: %v", err)
			}
			if *bres[1].Value != bmed.Value || simOf(bres[1].Report.Report()) != simOf(bmed.Report) {
				t.Errorf("batch median %d %+v diverges from single query %d %+v",
					*bres[1].Value, bres[1].Report, bmed.Value, simOf(bmed.Report))
			}

			for _, rd := range []*parselclient.RemoteDataset{jd, bd} {
				if _, err := rd.Delete(ctx); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
		})
	}
}

func ptr[T any](v T) *T { return &v }

// TestDaemonQueryManyValidation pins the batch endpoint's structural
// verdicts: empty batches, per-item timeouts, over-limit batches and
// bad kinds fail the whole request with a 400 and a stable code.
func TestDaemonQueryManyValidation(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2},
		serve.Options{Limits: serve.Limits{MaxBatch: 4}})
	defer d.close()
	rd := d.client.Dataset("qv")
	if _, err := rd.Upload(ctx, [][]int64{{3, 1, 4}, {1, 5}}); err != nil {
		t.Fatal(err)
	}

	check := func(name string, queries []parselclient.DatasetQuery, wantCode parselclient.Code) {
		t.Helper()
		_, err := rd.QueryMany(ctx, queries)
		var api *parselclient.APIError
		if !errors.As(err, &api) || api.Code != wantCode || api.Status != http.StatusBadRequest {
			t.Errorf("%s: err %v, want 400 %s", name, err, wantCode)
		}
	}
	check("empty batch", nil, parselclient.CodeMissingField)
	check("per-item timeout", []parselclient.DatasetQuery{
		{Kind: parselclient.KindMedian, TimeoutMS: 50},
	}, parselclient.CodeLimitExceeded)
	five := make([]parselclient.DatasetQuery, 5)
	for i := range five {
		five[i] = parselclient.DatasetQuery{Kind: parselclient.KindMedian}
	}
	check("over MaxBatch", five, parselclient.CodeLimitExceeded)
	check("bad kind", []parselclient.DatasetQuery{{Kind: "mean"}}, parselclient.CodeBadKind)

	// An absent dataset 404s the whole batch.
	_, err := d.client.Dataset("never-uploaded").QueryMany(ctx,
		[]parselclient.DatasetQuery{{Kind: parselclient.KindMedian}})
	if !errors.Is(err, parselclient.ErrDatasetNotFound) {
		t.Errorf("absent dataset: err %v, want ErrDatasetNotFound", err)
	}
}

// TestDaemonFrameUploadErrors pins the binary upload's failure
// verdicts: corruption and truncation are deterministic 400 bad_frame
// (with the reservation unwound — a later upload must succeed), a
// declared-oversize body is 413 too_large, and a JSON body on the
// frame content type is bad_frame, not a hang or a panic.
func TestDaemonFrameUploadErrors(t *testing.T) {
	ctx := context.Background()
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 2}, serve.Options{})
	defer d.close()
	shards := [][]int64{{3, 1, 4, 1, 5}, {9, 2, 6}}
	valid := snapshot.Encode(snapshot.Header{}, shards)

	put := func(body []byte, length int64) *http.Response {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			d.ts.URL+"/v1/datasets/frame-err", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.ContentLength = length
		req.Header.Set("Content-Type", parselclient.ContentTypeFrame)
		res, err := d.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wantCode := func(res *http.Response, status int, code parselclient.Code) {
		t.Helper()
		defer res.Body.Close()
		data, _ := io.ReadAll(res.Body)
		if res.StatusCode != status || !strings.Contains(string(data), fmt.Sprintf("%q", code)) {
			t.Errorf("got %d %s, want %d %s", res.StatusCode, data, status, code)
		}
	}

	corrupt := slices.Clone(valid)
	corrupt[len(corrupt)-10] ^= 0x40
	wantCode(put(corrupt, int64(len(corrupt))), http.StatusBadRequest, parselclient.CodeBadFrame)
	wantCode(put(valid[:len(valid)-5], int64(len(valid)-5)), http.StatusBadRequest, parselclient.CodeBadFrame)
	wantCode(put([]byte(`{"shards":[[1]]}`), 16), http.StatusBadRequest, parselclient.CodeBadFrame)

	// A declared-oversize ContentLength is refused up front. The Go
	// client refuses to send a short body under a huge ContentLength, so
	// this probe drives the handler directly.
	oversize := httptest.NewRequest(http.MethodPut, "/v1/datasets/frame-err", bytes.NewReader(valid))
	oversize.ContentLength = d.server.Stats().Datasets.BudgetBytes + 1<<30
	oversize.Header.Set("Content-Type", parselclient.ContentTypeFrame)
	rec := httptest.NewRecorder()
	d.server.ServeHTTP(rec, oversize)
	wantCode(rec.Result(), http.StatusRequestEntityTooLarge, parselclient.CodeTooLarge)

	// Every failure unwound its reservation: the budget gauge is zero
	// and a clean binary upload of the same id succeeds.
	if got := d.server.Stats().Datasets.ResidentBytes; got != 0 {
		t.Errorf("failed uploads leaked %d resident bytes", got)
	}
	bc := binaryClient(d)
	info, err := bc.Dataset("frame-err").Upload(ctx, shards)
	if err != nil {
		t.Fatalf("clean upload after failures: %v", err)
	}
	if info.N != 8 || info.Procs != 2 {
		t.Errorf("upload info %+v, want n=8 procs=2", info)
	}
}

// flusherRecorder implements exactly http.ResponseWriter + Flusher.
type flusherRecorder struct {
	*httptest.ResponseRecorder
}

// plainRecorder hides ResponseRecorder's Flush, implementing only
// http.ResponseWriter.
type plainRecorder struct {
	w http.ResponseWriter
}

func (p *plainRecorder) Header() http.Header         { return p.w.Header() }
func (p *plainRecorder) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *plainRecorder) WriteHeader(code int)        { p.w.WriteHeader(code) }

// readerFromRecorder implements ResponseWriter + io.ReaderFrom.
type readerFromRecorder struct {
	plainRecorder
}

func (rf *readerFromRecorder) ReadFrom(r io.Reader) (int64, error) {
	return io.Copy(&rf.plainRecorder, r)
}

// TestStatusWriterForwardsOptionalInterfaces pins the recovery
// middleware's writer wrapping: the writer handlers receive must still
// expose exactly the optional interfaces (http.Flusher, io.ReaderFrom)
// the underlying ResponseWriter supports — wrapping must not cost a
// streaming handler its Flush or the body copy its ReadFrom fast path.
func TestStatusWriterForwardsOptionalInterfaces(t *testing.T) {
	var sawFlusher, sawReaderFrom bool
	d := newDaemon(t, parsel.Options{}, parsel.PoolOptions{MaxMachines: 1}, serve.Options{
		Middleware: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				_, sawFlusher = w.(http.Flusher)
				_, sawReaderFrom = w.(io.ReaderFrom)
				next.ServeHTTP(w, r)
			})
		},
	})
	defer d.close()

	probe := func(w http.ResponseWriter) {
		t.Helper()
		r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		d.server.ServeHTTP(w, r)
	}

	// The real net/http writer (as on the loopback listener) supports
	// both; here each capability is probed in isolation.
	probe(&flusherRecorder{httptest.NewRecorder()})
	if !sawFlusher {
		t.Error("Flusher on the underlying writer was hidden from the handler")
	}
	if sawReaderFrom {
		t.Error("handler saw a ReaderFrom the underlying writer does not support")
	}
	probe(&readerFromRecorder{plainRecorder{httptest.NewRecorder()}})
	if sawFlusher {
		t.Error("handler saw a Flusher the underlying writer does not support")
	}
	if !sawReaderFrom {
		t.Error("ReaderFrom on the underlying writer was hidden from the handler")
	}
	probe(&plainRecorder{httptest.NewRecorder()})
	if sawFlusher || sawReaderFrom {
		t.Error("plain writer grew optional interfaces through the wrapper")
	}

	// And the real server still answers through the wrappers.
	res, err := d.ts.Client().Get(d.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("healthz through wrapped writer: %d", res.StatusCode)
	}
}
