package serve_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"parsel/internal/serve"
	"parsel/parselclient"
)

// knownCodes is the closed set of wire codes ParseRequest may emit.
var knownCodes = map[parselclient.Code]bool{
	parselclient.CodeBadJSON:       true,
	parselclient.CodeMissingField:  true,
	parselclient.CodeLimitExceeded: true,
	parselclient.CodeTooLarge:      true,
	parselclient.CodeBadQuantile:   true,
	parselclient.CodeNotFound:      true,
}

// fuzzLimits are deliberately tight so the fuzzer reaches every limit
// branch with small inputs.
var fuzzLimits = serve.Limits{MaxBodyBytes: 1 << 16, MaxProcs: 16, MaxRanks: 32}

// FuzzParseRequest throws adversarial bytes at the daemon's request
// decoder across every endpoint: it must never panic, every rejection
// must be a *ParseError carrying a known wire code, and every accepted
// request must satisfy the invariants the handlers rely on (required
// fields present, quantiles finite and in range, limits respected).
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		`{"shards": [[1,2],[3]], "rank": 2}`,
		`{"shards": [[1,2],[3]], "rank": -5}`,
		`{"shards": [], "ranks": [0, -1, 99999999999]}`,
		`{"shards": [[1]], "q": 0.5}`,
		`{"shards": [[1]], "q": NaN}`,
		`{"shards": [[1]], "q": 1e999}`,
		`{"shards": [[1]], "qs": [0.5, -0.1, 2.5]}`,
		`{"shards": [[9007199254740993, -42]], "qs": []}`,
		`{"shards": [[1]], "k": -3}`,
		`{"shards": [[1]], "k": 3, "timeout_ms": -100}`,
		`{"shards": [[1]], "k": 3, "timeout_ms": 9300000000000}`,
		`{"shards": [[1]], "k": 3, "timeout_ms": 18446744073710}`,
		`{"shards": null, "rank": 1}`,
		`{"shards": [[1]], "rank": 1, "unknown_field": {"a": [1,2]}}`,
		`{"shards": [[1.5]], "rank": 1}`,
		`{`,
		`[]`,
		`"shards"`,
		``,
		strings.Repeat(`[`, 2000),
		`{"shards": [` + strings.Repeat(`[1],`, 40) + `[1]], "rank": 1}`,
	}
	for ep := 0; ep < 8; ep++ {
		for _, s := range seeds {
			f.Add(uint8(ep), []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, epRaw uint8, body []byte) {
		ep := serve.Endpoint(int(epRaw) % 8)
		req, err := serve.ParseRequest(ep, body, fuzzLimits)
		if err != nil {
			var pe *serve.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ep %v: non-structured decode error %T: %v", ep, err, err)
			}
			if !knownCodes[pe.Code] {
				t.Fatalf("ep %v: unknown wire code %q", ep, pe.Code)
			}
			if pe.Msg == "" {
				t.Fatalf("ep %v: empty error message for code %s", ep, pe.Code)
			}
			return
		}
		// Accepted: the invariants the handlers dereference without
		// checking.
		if req.Shards == nil {
			t.Fatalf("ep %v: accepted request without shards", ep)
		}
		if len(req.Shards) > fuzzLimits.MaxProcs {
			t.Fatalf("ep %v: accepted %d shards over limit", ep, len(req.Shards))
		}
		if req.TimeoutMS < 0 || req.TimeoutMS > 24*60*60*1000 {
			t.Fatalf("ep %v: accepted out-of-bounds timeout_ms %d (duration conversion could overflow)",
				ep, req.TimeoutMS)
		}
		switch ep {
		case serve.EpSelect:
			if req.Rank == nil {
				t.Fatal("select accepted without rank")
			}
		case serve.EpQuantile:
			if req.Q == nil || math.IsNaN(*req.Q) || *req.Q < 0 || *req.Q > 1 {
				t.Fatalf("quantile accepted with q=%v", req.Q)
			}
		case serve.EpQuantiles:
			if len(req.Qs) == 0 || len(req.Qs) > fuzzLimits.MaxRanks {
				t.Fatalf("quantiles accepted with %d qs", len(req.Qs))
			}
			for _, q := range req.Qs {
				if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 || q > 1 {
					t.Fatalf("quantiles accepted q=%v", q)
				}
			}
		case serve.EpRanks:
			if len(req.Ranks) == 0 || len(req.Ranks) > fuzzLimits.MaxRanks {
				t.Fatalf("ranks accepted with %d ranks", len(req.Ranks))
			}
		case serve.EpTopK, serve.EpBottomK:
			if req.K == nil {
				t.Fatal("topk/bottomk accepted without k")
			}
		}
	})
}
