// Package bucket implements the local preprocessing of the paper's
// bucket-based selection algorithm (Alg. 2, step 0): the n/p elements on a
// processor are split into O(log p) buckets such that every element of
// bucket i is no larger than any element of bucket j for i < j. The
// buckets are built by recursively median-splitting, which costs
// O((n/p) log log p) — cheaper than a full sort — and afterwards both the
// local median and the partition against an estimated median touch only a
// single bucket, i.e. O(log log p + n/(p log p)) operations per iteration.
package bucket

import (
	"cmp"
	"fmt"

	"parsel/internal/seq"
)

// Selector finds the k-th smallest (0-based) element of a in place. Both
// seq.SelectBFPRT and a Floyd–Rivest closure satisfy it; the hybrid
// variants of the paper's §5 swap the deterministic selector for the
// randomized one.
type Selector[K cmp.Ordered] func(a []K, k int) (K, int64)

// Table is the bucketed view of one processor's local elements. Elements
// are stored in a single backing slice grouped into inter-ordered buckets;
// discarded elements are excluded via per-bucket active windows rather
// than moved.
type Table[K cmp.Ordered] struct {
	data []K
	// off[i] is the start of bucket i in data; off has B+1 entries.
	off []int
	// splitters[i] separates buckets i and i+1: every element of buckets
	// 0..i is <= splitters[i] and every element of buckets i+1.. is
	// >= splitters[i]. len(splitters) == B-1.
	splitters []K
	// lo[i], hi[i] delimit the active window inside bucket i.
	lo, hi []int

	// lastLoB..lastHiB is the bucket range partitioned by the most
	// recent Count; lastLess[i] and lastSplit[i] are the in-bucket
	// boundaries (< pivot | == pivot | > pivot) for bucket lastLoB+i.
	// KeepLess/KeepGreater use them to discard without rescanning.
	lastLoB, lastHiB int
	lastLess         []int
	lastSplit        []int

	sel Selector[K]
}

// NumBuckets returns the paper's bucket count for p processors: the
// smallest power of two >= log2(p), and at least 2 (so that bucketing is
// meaningful whenever it is used at all).
func NumBuckets(p int) int {
	logp := 1
	for 1<<logp < p {
		logp++
	}
	b := 2
	for b < logp {
		b <<= 1
	}
	return b
}

// Build constructs a bucket table over data (taking ownership of it) with
// b buckets using sel for the median splits. It returns the table and the
// preprocessing operation count.
func Build[K cmp.Ordered](data []K, b int, sel Selector[K]) (*Table[K], int64) {
	if b < 1 {
		panic(fmt.Sprintf("bucket: invalid bucket count %d", b))
	}
	if b&(b-1) != 0 {
		panic(fmt.Sprintf("bucket: bucket count %d not a power of two", b))
	}
	t := &Table[K]{data: data, sel: sel}
	var ops int64
	t.split(0, len(data), b, &ops)
	// split appends off boundaries in order; finish the fence.
	t.off = append(t.off, len(data))
	B := len(t.off) - 1
	t.lo = make([]int, B)
	t.hi = make([]int, B)
	for i := 0; i < B; i++ {
		t.lo[i] = t.off[i]
		t.hi[i] = t.off[i+1]
	}
	return t, ops
}

// split recursively median-splits data[from:to] into b buckets, recording
// bucket starts and splitters in order.
func (t *Table[K]) split(from, to, b int, ops *int64) {
	if b == 1 || to-from <= 1 {
		t.off = append(t.off, from)
		// Degenerate leaves for remaining b-1 buckets when the segment
		// is too small to split further.
		for extra := 1; extra < b; extra++ {
			t.off = append(t.off, to)
			t.splitters = append(t.splitters, t.boundaryValue(from, to))
		}
		return
	}
	seg := t.data[from:to]
	// Split around a deterministic pseudo-median rather than an exact
	// median: the build then costs ~5(n/p) per level instead of BFPRT's
	// ~21(n/p), and split quality affects only bucket-size balance,
	// never correctness (Select and Count handle any sizes). This is
	// what makes the bucket preprocessing cheaper than the repeated
	// full scans of the median of medians algorithm in practice.
	med, o := seq.PseudoMedian(seg)
	*ops += o
	lt, eq, o2 := seq.Partition3(seg, med)
	*ops += o2
	// Cut on whichever side of the equal run lands nearer the middle.
	cut := lt + eq
	if mid := len(seg) / 2; abs(lt-mid) < abs(cut-mid) {
		cut = lt
	}
	t.split(from, from+cut, b/2, ops)
	t.splitters = append(t.splitters, med)
	t.split(from+cut, to, b/2, ops)
}

// boundaryValue produces a splitter for degenerate (empty or singleton)
// leaves that keeps the splitter sequence non-decreasing: the leaf's own
// element if it has one, otherwise the previous splitter. An empty table
// falls back to the zero value, which is never consulted because all
// buckets are empty.
func (t *Table[K]) boundaryValue(from, to int) K {
	if to > from {
		return t.data[to-1]
	}
	if len(t.splitters) > 0 {
		return t.splitters[len(t.splitters)-1]
	}
	var zero K
	return zero
}

// Buckets returns the number of buckets.
func (t *Table[K]) Buckets() int { return len(t.off) - 1 }

// Remaining returns the number of active (not yet discarded) elements.
func (t *Table[K]) Remaining() int {
	n := 0
	for i := range t.lo {
		n += t.hi[i] - t.lo[i]
	}
	return n
}

// Select returns the k-th smallest (0-based) active element. It locates
// the bucket holding rank k by a cumulative scan over O(log p) buckets and
// then runs the sequential selector inside that bucket only (Alg. 2
// step 1).
func (t *Table[K]) Select(k int) (K, int64) {
	if k < 0 || k >= t.Remaining() {
		panic(fmt.Sprintf("bucket: Select rank %d out of %d active", k, t.Remaining()))
	}
	var ops int64
	for i := range t.lo {
		sz := t.hi[i] - t.lo[i]
		ops++
		if k < sz {
			v, o := t.sel(t.data[t.lo[i]:t.hi[i]], k)
			return v, ops + o
		}
		k -= sz
	}
	panic("bucket: Select fell off the table")
}

// Count partitions the straddling bucket range around pivot and returns
// the number of active elements strictly below pivot and equal to pivot
// (Alg. 2 step 4, refined to three-way for duplicate safety). Normally a
// single bucket straddles the pivot; when duplicates of the pivot value
// span several buckets, all of them are partitioned. The table records
// the splits so a following Keep call can discard in O(#buckets).
func (t *Table[K]) Count(pivot K) (less, equal int64, ops int64) {
	loB, o1 := t.locateLower(pivot)
	hiB, o2 := t.locate(pivot)
	ops = o1 + o2
	for i := 0; i < loB; i++ {
		less += int64(t.hi[i] - t.lo[i])
		ops++
	}
	t.lastLoB, t.lastHiB = loB, hiB
	t.lastLess = t.lastLess[:0]
	t.lastSplit = t.lastSplit[:0]
	for b := loB; b <= hiB; b++ {
		seg := t.data[t.lo[b]:t.hi[b]]
		lt, eq, o := seq.Partition3(seg, pivot)
		ops += o
		less += int64(lt)
		equal += int64(eq)
		t.lastLess = append(t.lastLess, t.lo[b]+lt)
		t.lastSplit = append(t.lastSplit, t.lo[b]+lt+eq)
	}
	return less, equal, ops
}

// KeepLess discards all active elements >= the pivot passed to the
// immediately preceding Count call.
func (t *Table[K]) KeepLess() {
	for b := t.lastLoB; b <= t.lastHiB; b++ {
		t.hi[b] = t.lastLess[b-t.lastLoB]
	}
	for i := t.lastHiB + 1; i < len(t.lo); i++ {
		t.lo[i] = t.off[i]
		t.hi[i] = t.off[i]
	}
}

// KeepGreater discards all active elements <= the pivot passed to the
// immediately preceding Count call.
func (t *Table[K]) KeepGreater() {
	for b := t.lastLoB; b <= t.lastHiB; b++ {
		t.lo[b] = t.lastSplit[b-t.lastLoB]
	}
	for i := 0; i < t.lastLoB; i++ {
		t.lo[i] = t.off[i]
		t.hi[i] = t.off[i]
	}
}

// locate returns the last bucket that can contain elements <= pivot:
// buckets after it hold values >= splitters[idx] > pivot. Binary search
// over the splitters is the paper's O(log log p) bucket search.
func (t *Table[K]) locate(pivot K) (int, int64) {
	return seq.UpperBound(t.splitters, pivot)
}

// locateLower returns the first bucket that can contain elements >= pivot:
// buckets before it hold values <= splitters[idx-1] < pivot.
func (t *Table[K]) locateLower(pivot K) (int, int64) {
	return seq.LowerBound(t.splitters, pivot)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Collect appends all active elements to dst and returns it.
func (t *Table[K]) Collect(dst []K) []K {
	for i := range t.lo {
		dst = append(dst, t.data[t.lo[i]:t.hi[i]]...)
	}
	return dst
}
