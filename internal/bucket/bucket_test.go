package bucket

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"

	"parsel/internal/seq"
)

func detSel(a []int64, k int) (int64, int64) { return seq.SelectBFPRT(a, k) }

func randSlice(n int, span int64, r *rand.Rand) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = r.Int64N(span)
	}
	return a
}

func TestNumBuckets(t *testing.T) {
	cases := []struct{ p, want int }{
		{1, 2}, {2, 2}, {4, 2}, {8, 4}, {16, 4}, {32, 8}, {64, 8}, {128, 8}, {1024, 16},
	}
	for _, tc := range cases {
		if got := NumBuckets(tc.p); got != tc.want {
			t.Errorf("NumBuckets(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestBuildOrdersBuckets(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, b := range []int{1, 2, 4, 8} {
			data := randSlice(n, 50, r)
			want := slices.Clone(data)
			tab, _ := Build(slices.Clone(data), b, detSel)
			if tab.Buckets() != b {
				t.Fatalf("n=%d b=%d: Buckets() = %d", n, b, tab.Buckets())
			}
			if tab.Remaining() != n {
				t.Fatalf("n=%d b=%d: Remaining() = %d", n, b, tab.Remaining())
			}
			// Multiset preserved.
			got := tab.Collect(nil)
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d b=%d: multiset changed", n, b)
			}
			// Inter-bucket ordering: max(bucket i) <= min(bucket j), i<j.
			for i := 0; i < b; i++ {
				bi := tab.data[tab.off[i]:tab.off[i+1]]
				for j := i + 1; j < b; j++ {
					bj := tab.data[tab.off[j]:tab.off[j+1]]
					for _, x := range bi {
						for _, y := range bj {
							if x > y {
								t.Fatalf("n=%d b=%d: bucket %d elem %d > bucket %d elem %d", n, b, i, x, j, y)
							}
						}
					}
				}
			}
			// Splitters non-decreasing (locate depends on it).
			for i := 1; i < len(tab.splitters); i++ {
				if tab.splitters[i] < tab.splitters[i-1] {
					t.Fatalf("n=%d b=%d: splitters not sorted: %v", n, b, tab.splitters)
				}
			}
		}
	}
}

func TestBuildPanicsOnBadCount(t *testing.T) {
	for _, b := range []int{0, -1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("b=%d: expected panic", b)
				}
			}()
			Build([]int64{1, 2, 3}, b, detSel)
		}()
	}
}

func TestSelectMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 5, 100, 999} {
		data := randSlice(n, int64(n), r)
		sorted := slices.Clone(data)
		slices.Sort(sorted)
		tab, _ := Build(slices.Clone(data), 8, detSel)
		for _, k := range []int{0, n / 2, n - 1} {
			got, _ := tab.Select(k)
			if got != sorted[k] {
				t.Errorf("n=%d k=%d: got %d want %d", n, k, got, sorted[k])
			}
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	tab, _ := Build([]int64{5, 2, 8}, 2, detSel)
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			tab.Select(k)
		}()
	}
}

func TestCountAndKeep(t *testing.T) {
	data := []int64{9, 1, 7, 3, 5, 3, 8, 2}
	tab, _ := Build(slices.Clone(data), 4, detSel)

	less, eq, _ := tab.Count(5)
	if less != 4 || eq != 1 { // <5: 1,3,3,2; ==5: one
		t.Fatalf("Count(5) = (%d,%d), want (4,1)", less, eq)
	}
	tab.KeepLess()
	if tab.Remaining() != 4 {
		t.Fatalf("after KeepLess Remaining = %d", tab.Remaining())
	}
	act := tab.Collect(nil)
	slices.Sort(act)
	if !slices.Equal(act, []int64{1, 2, 3, 3}) {
		t.Fatalf("active after KeepLess = %v", act)
	}

	less2, eq2, _ := tab.Count(2)
	if less2 != 1 || eq2 != 1 {
		t.Fatalf("Count(2) = (%d,%d), want (1,1)", less2, eq2)
	}
	tab.KeepGreater()
	act2 := tab.Collect(nil)
	slices.Sort(act2)
	if !slices.Equal(act2, []int64{3, 3}) {
		t.Fatalf("active after KeepGreater = %v", act2)
	}
}

// TestIterativeNarrowingProperty simulates what the selection algorithm
// does: repeatedly count against pivots and keep one side, checking the
// active multiset always equals the value-interval filter of the input.
func TestIterativeNarrowingProperty(t *testing.T) {
	f := func(raw []int16, pivots []int16, keepLowBits uint8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]int64, len(raw))
		for i, v := range raw {
			data[i] = int64(v)
		}
		tab, _ := Build(slices.Clone(data), 4, detSel)
		// Track the surviving interval (lo, hi] by value.
		reference := slices.Clone(data)
		for i, pv := range pivots {
			if i >= 6 {
				break
			}
			pivot := int64(pv)
			less, eq, _ := tab.Count(pivot)
			var wantLess, wantEq int64
			for _, v := range reference {
				if v < pivot {
					wantLess++
				} else if v == pivot {
					wantEq++
				}
			}
			if less != wantLess || eq != wantEq {
				return false
			}
			var next []int64
			if keepLowBits&(1<<i) != 0 {
				tab.KeepLess()
				for _, v := range reference {
					if v < pivot {
						next = append(next, v)
					}
				}
			} else {
				tab.KeepGreater()
				for _, v := range reference {
					if v > pivot {
						next = append(next, v)
					}
				}
			}
			reference = next
			if tab.Remaining() != len(reference) {
				return false
			}
			got := tab.Collect(nil)
			slices.Sort(got)
			slices.Sort(reference)
			if !slices.Equal(got, reference) {
				return false
			}
			if len(reference) == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAllEqualElements(t *testing.T) {
	data := make([]int64, 64)
	for i := range data {
		data[i] = 42
	}
	tab, _ := Build(data, 8, detSel)
	if v, _ := tab.Select(31); v != 42 {
		t.Errorf("Select on all-equal = %d", v)
	}
	less, eq, _ := tab.Count(42)
	if less != 0 || eq != 64 {
		t.Errorf("Count(42) = (%d,%d)", less, eq)
	}
	less2, eq2, _ := tab.Count(41)
	if less2 != 0 || eq2 != 0 {
		t.Errorf("Count(41) = (%d,%d)", less2, eq2)
	}
}

func TestRandomizedSelectorVariant(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	randSel := func(a []int64, k int) (int64, int64) { return seq.Quickselect(a, k, r) }
	data := randSlice(500, 1000, r)
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	tab, _ := Build(slices.Clone(data), 8, randSel)
	if got, _ := tab.Select(250); got != sorted[250] {
		t.Errorf("randomized-selector Select = %d want %d", got, sorted[250])
	}
}

// TestPerIterationCheaperThanRescan pins the point of the bucket
// preprocessing (paper §3.2): after building, one selection iteration
// (local median + partition against a pivot) touches roughly one bucket,
// i.e. far fewer operations than the full-scan equivalent that the median
// of medians algorithm pays every iteration.
func TestPerIterationCheaperThanRescan(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	const n = 100000
	data := randSlice(n, 1<<40, r)
	tab, _ := Build(slices.Clone(data), 8, detSel)

	_, selOps := tab.Select(tab.Remaining() / 2)
	_, _, countOps := tab.Count(data[0])

	// The full-scan equivalents: BFPRT over all elements + full partition
	// with the same kernel.
	_, fullSel := seq.SelectBFPRT(slices.Clone(data), n/2)
	_, _, fullScan := seq.Partition3(slices.Clone(data), data[0])

	if selOps*4 >= fullSel {
		t.Errorf("bucketed select ops %d not far below full BFPRT %d", selOps, fullSel)
	}
	if countOps*4 >= fullScan {
		t.Errorf("bucketed partition ops %d not far below full scan %d", countOps, fullScan)
	}
}
