// Package psort implements a parallel sample sort (PSRS: Parallel Sorting
// by Regular Sampling) over the simulated machine. It is the ParallelSort
// used by the paper's fast randomized selection algorithm (Alg. 4 step 2)
// and is usable as a standalone substrate.
//
// Each processor sorts locally, contributes p regular samples, a root
// picks p-1 splitters from the gathered samples, every processor splits
// its sorted run along the splitters, blocks travel with the
// transportation primitive, and each processor multiway-merges what it
// receives. The concatenation of the outputs across processors in rank
// order is the sorted input.
package psort

import (
	"cmp"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// Sort sorts the distributed multiset whose local part is local. It
// returns this processor's run of the globally sorted sequence: all keys
// on processor i are <= all keys on processor j for i < j, each run is
// sorted, and the multiset is preserved. The output sizes are roughly
// balanced for well-spread inputs but are not guaranteed equal (standard
// PSRS behaviour). local is taken over and permuted.
func Sort[K cmp.Ordered](p *machine.Proc, local []K, elemBytes int) []K {
	return SortOversampled(p, local, elemBytes, p.Procs())
}

// SortOversampled is Sort with an explicit per-processor sample count c.
// Classic PSRS uses c = p, whose p^2 gathered samples give a 2x balance
// guarantee but cost the root O(p^2 log p) sorting work — prohibitive at
// high processor counts when the data itself is small. Smaller c trades
// output balance for a cheaper splitter phase; correctness (global order,
// multiset preservation) never depends on c.
func SortOversampled[K cmp.Ordered](p *machine.Proc, local []K, elemBytes, c int) []K {
	return SortOversampledScratch(p, local, elemBytes, c, nil)
}

// Scratch holds one processor's reusable sample-sort buffers. A zero
// Scratch is ready; buffers grow on demand. The merged output of a
// scratch-backed sort aliases the scratch and is valid only until the
// next sort that reuses it.
type Scratch[K cmp.Ordered] struct {
	samples   []K
	gather    []K
	splitters []K
	out       [][]K
	in        [][]K
	counts    []int64
	cbuf      []int64
	merged    []K
}

// SortOversampledScratch is SortOversampled drawing every buffer from scr
// (nil behaves like SortOversampled). Simulated cost and traffic are
// identical; only host-side allocation differs.
func SortOversampledScratch[K cmp.Ordered](p *machine.Proc, local []K, elemBytes, c int, scr *Scratch[K]) []K {
	if scr == nil {
		scr = &Scratch[K]{}
	}
	size := p.Procs()
	p.Charge(seq.Sort(local))
	if size == 1 {
		return local
	}
	if c < 1 {
		c = 1
	}

	// Regular sampling: up to c evenly-strided samples per processor
	// (fewer when the processor holds fewer keys — duplicated samples
	// would only inflate the root gather).
	samples := scr.samples[:0]
	if len(local) > 0 {
		cnt := c
		if len(local) < cnt {
			cnt = len(local)
		}
		for i := 0; i < cnt; i++ {
			idx := i * len(local) / cnt
			samples = append(samples, local[idx])
		}
		p.Charge(int64(cnt))
	}
	scr.samples = samples
	all, gbuf := comm.GatherFlatInto(p, 0, samples, elemBytes, scr.gather)
	scr.gather = gbuf

	// Root: sort samples, choose p-1 regular splitters.
	var splitters []K
	if p.ID() == 0 {
		p.Charge(seq.Sort(all))
		splitters = scr.splitters[:0]
		for i := 1; i < size; i++ {
			if len(all) == 0 {
				break
			}
			idx := i * len(all) / size
			if idx >= len(all) {
				idx = len(all) - 1
			}
			splitters = append(splitters, all[idx])
		}
		scr.splitters = splitters
	}
	splitters = comm.BroadcastSlice(p, 0, splitters, elemBytes)

	// Split the sorted local run along the splitters. Splitter j is the
	// upper bound of destination j's range, so destination j receives
	// keys in (splitters[j-1], splitters[j]].
	if cap(scr.out) < size {
		scr.out = make([][]K, size)
	}
	out := scr.out[:size]
	for i := range out {
		out[i] = nil
	}
	start := 0
	for j, s := range splitters {
		end, ops := seq.UpperBound(local[start:], s)
		p.Charge(ops)
		out[j] = local[start : start+end]
		start += end
	}
	out[size-1] = local[start:]
	if len(splitters) < size-1 {
		// Degenerate sample (tiny or empty input): any missing ranges
		// stay empty; everything beyond the last splitter goes to the
		// last processor, which out[size-1] already covers.
		for j := len(splitters); j < size-1; j++ {
			if out[j] == nil {
				out[j] = local[:0]
			}
		}
	}

	// The transportation primitive, with its counts exchange drawn from
	// scratch (identical wire behaviour to comm.Transport).
	counts := scr.counts
	if cap(counts) < size {
		counts = make([]int64, size)
	}
	counts = counts[:size]
	for j, block := range out {
		counts[j] = int64(len(block))
	}
	allCounts, cbuf := comm.GlobalConcatInt64Flat(p, counts, scr.cbuf)
	scr.cbuf = cbuf
	for src := 0; src < size; src++ {
		counts[src] = allCounts[src*size+p.ID()]
	}
	scr.counts = counts
	in := comm.TransportKnownInto(p, out, counts, elemBytes, scr.in)
	scr.in = in
	merged, ops := seq.MergeKInto(scr.merged, in)
	scr.merged = merged
	p.Charge(ops)
	return merged
}

// RankElement returns the element at global 0-based rank r of a
// distributed sorted sequence (as produced by Sort): runs[i] on processor
// i, globally ordered by rank. All processors receive the element. It
// panics (collectively) if r is out of range.
func RankElement[K cmp.Ordered](p *machine.Proc, run []K, r int64, elemBytes int) K {
	prefix := comm.PrefixSumInt64(p, int64(len(run)))
	myStart := prefix - int64(len(run))
	total := comm.BroadcastInt64(p, p.Procs()-1, prefix, machine.WordBytes)
	if r < 0 || r >= total {
		panic("psort: RankElement rank out of range")
	}
	// The unique owner broadcasts. Ownership: myStart <= r < prefix.
	owner := 0
	var val K
	mine := r >= myStart && r < prefix
	if mine {
		val = run[r-myStart]
	}
	// Everyone must agree on the owner for the broadcast: combine the
	// owner id (max works since exactly one processor holds it).
	cand := int64(-1)
	if mine {
		cand = int64(p.ID())
	}
	owner = int(comm.CombineMaxInt64(p, cand, machine.WordBytes))
	return comm.Broadcast(p, owner, val, elemBytes)
}
