package psort

import (
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

func benchSort(b *testing.B, p int, n int64, kind workload.Kind) {
	m, err := machine.New(machine.DefaultParams(p))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		shards := workload.Generate(kind, n, p, uint64(i))
		b.StartTimer()
		_, err := m.Run(func(pr *machine.Proc) {
			Sort(pr, shards[pr.ID()], machine.WordBytes)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n * 8)
}

func BenchmarkPSRSRandom8(b *testing.B)    { benchSort(b, 8, 1<<18, workload.Random) }
func BenchmarkPSRSSorted8(b *testing.B)    { benchSort(b, 8, 1<<18, workload.Sorted) }
func BenchmarkPSRSDuplicate8(b *testing.B) { benchSort(b, 8, 1<<18, workload.FewDistinct) }
