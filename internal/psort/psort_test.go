package psort

import (
	"math/rand/v2"
	"slices"
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

func runSort(t *testing.T, shards [][]int64) [][]int64 {
	t.Helper()
	p := len(shards)
	out := make([][]int64, p)
	_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
		out[pr.ID()] = Sort(pr, shards[pr.ID()], machine.WordBytes)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkGloballySorted(t *testing.T, before, after [][]int64) {
	t.Helper()
	flatAfter := workload.Flatten(after)
	if !slices.IsSorted(flatAfter) {
		t.Error("concatenated output not sorted")
	}
	flatBefore := workload.Flatten(before)
	slices.Sort(flatBefore)
	if !slices.Equal(flatBefore, flatAfter) {
		t.Errorf("multiset changed: %d -> %d elements", len(flatBefore), len(flatAfter))
	}
}

func clone2(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

func TestSortDistributions(t *testing.T) {
	for _, kind := range workload.Kinds {
		for _, p := range []int{1, 2, 3, 8, 13} {
			shards := workload.Generate(kind, 4000, p, 7)
			before := clone2(shards)
			after := runSort(t, shards)
			checkGloballySorted(t, before, after)
		}
	}
}

func TestSortTinyInputs(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int64{0, 1, 2, int64(p) - 1, int64(p), int64(p) + 1} {
			if n < 0 {
				continue
			}
			shards := workload.Generate(workload.Random, n, p, 3)
			before := clone2(shards)
			after := runSort(t, shards)
			checkGloballySorted(t, before, after)
		}
	}
}

func TestSortEmptyAndSkewedShards(t *testing.T) {
	shards := [][]int64{
		{},
		{5, 1, 5, 5},
		{},
		{9, 0, 2, 2, 2, 2, 2, 7},
	}
	before := clone2(shards)
	after := runSort(t, shards)
	checkGloballySorted(t, before, after)
}

func TestSortAllEqual(t *testing.T) {
	p := 4
	shards := make([][]int64, p)
	for i := range shards {
		shards[i] = make([]int64, 100)
		for j := range shards[i] {
			shards[i][j] = 42
		}
	}
	before := clone2(shards)
	after := runSort(t, shards)
	checkGloballySorted(t, before, after)
}

func TestSortRoughBalanceOnRandomData(t *testing.T) {
	p := 8
	const n = 80000
	shards := workload.Generate(workload.Random, n, p, 5)
	after := runSort(t, shards)
	for i, run := range after {
		if len(run) > 3*n/p {
			t.Errorf("run %d has %d elements (> 3x ideal %d)", i, len(run), n/p)
		}
	}
}

func TestRankElement(t *testing.T) {
	p := 4
	shards := workload.Generate(workload.Random, 1000, p, 9)
	flat := workload.Flatten(shards)
	slices.Sort(flat)
	got := make([]int64, p)
	for _, r := range []int64{0, 1, 499, 500, 999} {
		_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			run := Sort(pr, slices.Clone(shards[pr.ID()]), machine.WordBytes)
			got[pr.ID()] = RankElement(pr, run, r, machine.WordBytes)
		})
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range got {
			if v != flat[r] {
				t.Errorf("rank %d on proc %d = %d, want %d", r, id, v, flat[r])
			}
		}
	}
}

func TestRankElementOutOfRange(t *testing.T) {
	_, err := machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		run := Sort(pr, []int64{1, 2}, machine.WordBytes)
		RankElement(pr, run, 10, machine.WordBytes)
	})
	if err == nil {
		t.Fatal("expected out-of-range panic")
	}
}

func TestSortRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.IntN(10)
		shards := make([][]int64, p)
		for i := range shards {
			shards[i] = make([]int64, rng.IntN(300))
			for j := range shards[i] {
				shards[i][j] = rng.Int64N(50) // heavy duplicates
			}
		}
		before := clone2(shards)
		after := runSort(t, shards)
		checkGloballySorted(t, before, after)
	}
}
