// Package workload generates the input distributions used by the paper's
// experiments (random and sorted), plus additional adversarial
// distributions used to widen test and benchmark coverage. All generators
// are deterministic in (kind, n, p, seed).
package workload

import (
	"fmt"
	"math/rand/v2"
)

// Kind identifies an input distribution.
type Kind int

const (
	// Random draws n/p independent uniform keys on every processor —
	// the paper's "random" input, close to the best case.
	Random Kind = iota
	// Sorted assigns processor i the keys i*n/p .. (i+1)*n/p - 1 — the
	// paper's "sorted" input, close to the worst case: after the first
	// iteration about half the processors lose all their data.
	Sorted
	// ReverseSorted is Sorted with processors in reverse order; it
	// stresses the same imbalance pattern mirrored.
	ReverseSorted
	// Gaussian draws sums of uniforms, concentrating keys near the
	// middle of the range (duplicate-free is not guaranteed).
	Gaussian
	// FewDistinct draws keys from a tiny alphabet, stressing the
	// duplicate handling of the partition steps.
	FewDistinct
	// ZipfLike draws keys with a heavy-tailed (power-law-ish) skew.
	ZipfLike
)

// String returns the name used in harness output.
func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case Sorted:
		return "sorted"
	case ReverseSorted:
		return "revsorted"
	case Gaussian:
		return "gaussian"
	case FewDistinct:
		return "fewdistinct"
	case ZipfLike:
		return "zipf"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every distribution (for exhaustive tests).
var Kinds = []Kind{Random, Sorted, ReverseSorted, Gaussian, FewDistinct, ZipfLike}

// keySpan is the value range for random keys.
const keySpan = int64(1) << 40

// Generate produces p shards totalling exactly n keys; shard sizes differ
// by at most one (floor/ceil of n/p), the paper's initial balanced
// distribution. It panics on invalid n or p.
func Generate(kind Kind, n int64, p int, seed uint64) [][]int64 {
	if n < 0 || p < 1 {
		panic(fmt.Sprintf("workload: invalid n=%d p=%d", n, p))
	}
	shards := make([][]int64, p)
	var start int64
	for i := 0; i < p; i++ {
		size := n / int64(p)
		if int64(i) < n%int64(p) {
			size++
		}
		shards[i] = fill(kind, start, size, n, i, seed)
		start += size
	}
	return shards
}

// fill produces the keys with global positions [start, start+size) of the
// distribution.
func fill(kind Kind, start, size, n int64, proc int, seed uint64) []int64 {
	out := make([]int64, size)
	rng := rand.New(rand.NewPCG(seed, uint64(proc)*0x9e3779b97f4a7c15+uint64(kind)))
	switch kind {
	case Random:
		for i := range out {
			out[i] = rng.Int64N(keySpan)
		}
	case Sorted:
		for i := range out {
			out[i] = start + int64(i)
		}
	case ReverseSorted:
		for i := range out {
			out[i] = n - 1 - (start + int64(i))
		}
	case Gaussian:
		for i := range out {
			var s int64
			for j := 0; j < 6; j++ {
				s += rng.Int64N(keySpan / 6)
			}
			out[i] = s
		}
	case FewDistinct:
		for i := range out {
			out[i] = rng.Int64N(8)
		}
	case ZipfLike:
		for i := range out {
			// Inverse-power transform of a uniform: small values are
			// overwhelmingly more common.
			u := rng.Float64()
			v := int64(1.0 / (u + 1e-9))
			if v >= keySpan {
				v = keySpan - 1
			}
			out[i] = v
		}
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(kind)))
	}
	return out
}

// Unbalanced produces p shards with an adversarial size skew for load
// balancer tests: shard i holds a share proportional to (i+1)^2 of n
// random keys (the last processor dominates). The total is exactly n.
func Unbalanced(n int64, p int, seed uint64) [][]int64 {
	if n < 0 || p < 1 {
		panic(fmt.Sprintf("workload: invalid n=%d p=%d", n, p))
	}
	weights := make([]int64, p)
	var totalW int64
	for i := range weights {
		weights[i] = int64((i + 1) * (i + 1))
		totalW += weights[i]
	}
	shards := make([][]int64, p)
	var assigned int64
	for i := 0; i < p; i++ {
		size := n * weights[i] / totalW
		if i == p-1 {
			size = n - assigned
		}
		assigned += size
		rng := rand.New(rand.NewPCG(seed, uint64(i)+77))
		shard := make([]int64, size)
		for j := range shard {
			shard[j] = rng.Int64N(keySpan)
		}
		shards[i] = shard
	}
	return shards
}

// Flatten concatenates shards into one slice (for oracle checks).
func Flatten(shards [][]int64) []int64 {
	var total int
	for _, s := range shards {
		total += len(s)
	}
	out := make([]int64, 0, total)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}

// Total returns the number of keys across all shards.
func Total(shards [][]int64) int64 {
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	return n
}
