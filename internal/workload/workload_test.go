package workload

import (
	"slices"
	"testing"
)

func TestGenerateSizesBalanced(t *testing.T) {
	for _, kind := range Kinds {
		for _, p := range []int{1, 2, 3, 7, 16} {
			for _, n := range []int64{0, 1, 10, 101, 1 << 12} {
				shards := Generate(kind, n, p, 5)
				if len(shards) != p {
					t.Fatalf("%v n=%d p=%d: %d shards", kind, n, p, len(shards))
				}
				if Total(shards) != n {
					t.Fatalf("%v n=%d p=%d: total %d", kind, n, p, Total(shards))
				}
				lo, hi := int64(1<<62), int64(0)
				for _, s := range shards {
					if int64(len(s)) < lo {
						lo = int64(len(s))
					}
					if int64(len(s)) > hi {
						hi = int64(len(s))
					}
				}
				if hi-lo > 1 {
					t.Errorf("%v n=%d p=%d: shard size spread %d..%d", kind, n, p, lo, hi)
				}
			}
		}
	}
}

func TestSortedIsGloballySorted(t *testing.T) {
	shards := Generate(Sorted, 1000, 8, 1)
	flat := Flatten(shards)
	for i, v := range flat {
		if v != int64(i) {
			t.Fatalf("sorted key %d = %d", i, v)
		}
	}
}

func TestReverseSortedCoversRange(t *testing.T) {
	shards := Generate(ReverseSorted, 100, 4, 1)
	flat := Flatten(shards)
	slices.Sort(flat)
	for i, v := range flat {
		if v != int64(i) {
			t.Fatalf("revsorted key %d = %d after sort", i, v)
		}
	}
	// First shard must hold the largest keys.
	if shards[0][0] != 99 {
		t.Errorf("revsorted shard0[0] = %d", shards[0][0])
	}
}

func TestDeterministicAndSeedSensitive(t *testing.T) {
	a := Generate(Random, 512, 4, 9)
	b := Generate(Random, 512, 4, 9)
	c := Generate(Random, 512, 4, 10)
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			t.Fatalf("same seed produced different shard %d", i)
		}
	}
	same := true
	for i := range a {
		if !slices.Equal(a[i], c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestFewDistinctAlphabet(t *testing.T) {
	for _, v := range Flatten(Generate(FewDistinct, 2000, 3, 2)) {
		if v < 0 || v >= 8 {
			t.Fatalf("fewdistinct key %d out of alphabet", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	flat := Flatten(Generate(ZipfLike, 10000, 2, 3))
	small := 0
	for _, v := range flat {
		if v <= 4 {
			small++
		}
	}
	if small < len(flat)/2 {
		t.Errorf("zipf distribution not skewed: only %d/%d small keys", small, len(flat))
	}
}

func TestUnbalanced(t *testing.T) {
	shards := Unbalanced(10000, 5, 4)
	if Total(shards) != 10000 {
		t.Fatalf("total %d", Total(shards))
	}
	if len(shards[4]) <= len(shards[0]) {
		t.Errorf("expected strong skew, got %d vs %d", len(shards[4]), len(shards[0]))
	}
}

func TestPanicsOnInvalidArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"neg n":     func() { Generate(Random, -1, 2, 1) },
		"zero p":    func() { Generate(Random, 10, 0, 1) },
		"bad kind":  func() { Generate(Kind(99), 10, 2, 1) },
		"unbal bad": func() { Unbalanced(5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind name = %q", Kind(42).String())
	}
}
