package harness

import (
	"testing"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/selection"
	"parsel/internal/workload"
)

// TestFaithfulFastRandLBHelpsOnSorted reproduces the paper's §5 finding
// that load balancing significantly improves the (paper-faithful) fast
// randomized algorithm on sorted data — the uncapped sampling window
// leaves a long tail of iterations scanning survivors concentrated on
// few processors, which balancing spreads out.
func TestFaithfulFastRandLBHelpsOnSorted(t *testing.T) {
	if testing.Short() {
		t.Skip("2M-element sweep")
	}
	const n = 2 << 20
	const p = 32
	run := func(bal balance.Method) float64 {
		var total float64
		for seed := 0; seed < 3; seed++ {
			shards := workload.Generate(workload.Sorted, n, p, uint64(seed))
			params := machine.DefaultParams(p)
			params.Seed = uint64(seed + 1)
			sim, err := machine.Run(params, func(pr *machine.Proc) {
				selection.Select(pr, shards[pr.ID()], (n+1)/2, selection.Options{
					Algorithm: selection.FastRandomized,
					Balancer:  bal,
					Faithful:  true,
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			total += sim
		}
		return total / 3
	}
	none := run(balance.None)
	lb := run(balance.ModifiedOMLB)
	t.Logf("faithful fastrand sorted n=2M p=32: none=%.3fs modomlb=%.3fs", none, lb)
	if lb >= none {
		t.Errorf("LB (%.3fs) did not improve faithful fastrand on sorted data (none %.3fs)", lb, none)
	}
}
