package harness

import (
	"bytes"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) string {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not found", id)
	}
	var buf bytes.Buffer
	if err := exp.Run(Config{Out: &buf, Seeds: 1, Quick: true}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness sweep still takes seconds")
	}
	for _, e := range Experiments {
		out := runQuick(t, e.ID)
		if !strings.Contains(out, "#") {
			t.Errorf("%s produced no captioned output", e.ID)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("%s produced fewer than 3 lines:\n%s", e.ID, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	exp, _ := ByID("fig1r")
	var buf bytes.Buffer
	if err := exp.Run(Config{Out: &buf, Seeds: 1, Quick: true, CSV: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p,rand,fastrand") {
		t.Errorf("missing CSV header:\n%s", out)
	}
}

func TestMeasureAveragesSeeds(t *testing.T) {
	cfg := Config{Seeds: 2, Quick: true}
	c := measure(cfg, spec{n: 8 << 10, p: 4}) // mom, none, random
	if c.sim <= 0 || c.iters <= 0 {
		t.Errorf("empty measurement: %+v", c)
	}
}

func TestSizeName(t *testing.T) {
	cases := map[int64]string{
		128 << 10: "128k",
		512 << 10: "512k",
		2 << 20:   "2M",
		1000:      "1000",
	}
	for n, want := range cases {
		if got := sizeName(n); got != want {
			t.Errorf("sizeName(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMeasurePrim(t *testing.T) {
	for _, op := range []primOp{primBroadcast, primCombine, primPrefix, primConcat, primTransport} {
		if v := measurePrim(4, 64, op); v <= 0 {
			t.Error("primitive reported nonpositive time")
		}
	}
}
