package harness

import (
	"fmt"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/model"
	"parsel/internal/selection"
	"parsel/internal/workload"
)

// runTopo quantifies the paper's §2.1 modelling argument: with
// wormhole-like small per-hop latency, the distance-dependent topologies
// cost nearly the same as the virtual crossbar (justifying the two-level
// model); with store-and-forward-like large per-hop latency they do not.
func runTopo(cfg Config) error {
	cfg = cfg.withDefaults()
	n := int64(k512)
	ps := []int{16, 64}
	if cfg.Quick {
		n = 64 << 10
		ps = []int{16}
	}
	w := cfg.Out
	for _, scenario := range []struct {
		label  string
		perHop float64
	}{
		{"wormhole-like (per hop = tau/20)", 0}, // 0 = the default tau/20
		{"store-and-forward-like (per hop = tau)", 100e-6},
	} {
		fmt.Fprintf(w, "\n# topo %s, randomized selection, random data, n=%s\n", scenario.label, sizeName(n))
		fmt.Fprintf(w, "%6s", "p")
		for _, topo := range machine.Topologies {
			fmt.Fprintf(w, " %12s", topo)
		}
		fmt.Fprintln(w)
		for _, p := range ps {
			fmt.Fprintf(w, "%6d", p)
			for _, topo := range machine.Topologies {
				fmt.Fprintf(w, " %12.6f", measureTopo(cfg, n, p, topo, scenario.perHop))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "close columns in the first table = the crossbar abstraction is sound under wormhole routing")
	return nil
}

// measureTopo runs randomized median selection under one topology.
func measureTopo(cfg Config, n int64, p int, topo machine.Topology, perHop float64) float64 {
	var total float64
	for t := 0; t < cfg.Seeds; t++ {
		shards := workload.Generate(workload.Random, n, p, uint64(7000+t))
		params := machine.DefaultParams(p)
		params.Seed = uint64(t + 1)
		params.Topology = topo
		params.PerHopSec = perHop
		sim, err := machine.Run(params, func(pr *machine.Proc) {
			selection.Select(pr, shards[pr.ID()], (n+1)/2, selection.Options{
				Algorithm: selection.Randomized,
				Balancer:  balance.None,
			})
		})
		if err != nil {
			panic(err)
		}
		total += sim
	}
	return total / float64(cfg.Seeds)
}

// runSortSel compares the paper's selection algorithms against the
// sort-everything baseline: a PSRS sort of the full dataset followed by a
// rank lookup. Selection's whole reason to exist is beating this.
func runSortSel(cfg Config) error {
	cfg = cfg.withDefaults()
	n := int64(k512)
	ps := []int{4, 16, 64}
	if cfg.Quick {
		n = 64 << 10
		ps = []int{4, 16}
	}
	w := cfg.Out
	fmt.Fprintf(w, "\n# sortsel random n=%s: simulated seconds, selection vs full parallel sort\n", sizeName(n))
	fmt.Fprintf(w, "%6s %12s %12s %12s %10s\n", "p", "rand", "fastrand", "psort+rank", "sort/rand")
	for _, p := range ps {
		ra := measure(cfg, spec{alg: selection.Randomized, bal: balance.None, kind: workload.Random, n: n, p: p})
		fa := measure(cfg, spec{alg: selection.FastRandomized, bal: balance.None, kind: workload.Random, n: n, p: p})
		vs := measureViaSort(cfg, n, p)
		fmt.Fprintf(w, "%6d %12.6f %12.6f %12.6f %10.1f\n", p, ra.sim, fa.sim, vs, vs/ra.sim)
	}
	return nil
}

// measureViaSort times the sort-based baseline.
func measureViaSort(cfg Config, n int64, p int) float64 {
	var total float64
	for t := 0; t < cfg.Seeds; t++ {
		shards := workload.Generate(workload.Random, n, p, uint64(7100+t))
		params := machine.DefaultParams(p)
		params.Seed = uint64(t + 1)
		sim, err := machine.Run(params, func(pr *machine.Proc) {
			selection.ViaSort(pr, shards[pr.ID()], (n+1)/2, selection.Options{})
		})
		if err != nil {
			panic(err)
		}
		total += sim
	}
	return total / float64(cfg.Seeds)
}

// runModel prints the analytic Table 1/2 predictions next to simulated
// measurements, with their ratio — the executable version of the paper's
// complexity tables.
func runModel(cfg Config) error {
	cfg = cfg.withDefaults()
	n := int64(m2)
	ps := []int{4, 16, 64}
	if cfg.Quick {
		n = 128 << 10
		ps = []int{4, 16}
	}
	w := cfg.Out
	rows := []struct {
		name      string
		alg       selection.Algorithm
		bal       balance.Method
		kind      workload.Kind
		worstCase bool
	}{
		{"mom (table1)", selection.MedianOfMedians, balance.GlobalExchange, workload.Random, false},
		{"bucket (table2)", selection.BucketBased, balance.None, workload.Sorted, true},
		{"rand (table1)", selection.Randomized, balance.None, workload.Random, false},
		{"rand (table2)", selection.Randomized, balance.None, workload.Sorted, true},
		{"fastrand (table1)", selection.FastRandomized, balance.None, workload.Random, false},
	}
	fmt.Fprintf(w, "\n# model n=%s: analytic Table 1/2 prediction vs simulation\n", sizeName(n))
	fmt.Fprintf(w, "%-18s %6s %12s %12s %8s\n", "row", "p", "predicted", "simulated", "ratio")
	for _, r := range rows {
		for _, p := range ps {
			m := measure(cfg, spec{alg: r.alg, bal: r.bal, kind: r.kind, n: n, p: p})
			pred := model.Predict(r.alg, n, machine.DefaultParams(p), r.worstCase)
			fmt.Fprintf(w, "%-18s %6d %12.5f %12.5f %8.2f\n", r.name, p, pred, m.sim, pred/m.sim)
		}
	}
	return nil
}
