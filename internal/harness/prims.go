package harness

import (
	"parsel/internal/comm"
	"parsel/internal/machine"
)

// primOp runs one collective over an m-element payload per processor.
type primOp func(p *machine.Proc, payload []int64)

func primBroadcast(p *machine.Proc, payload []int64) {
	comm.BroadcastSlice(p, 0, payload, machine.WordBytes)
}

func primCombine(p *machine.Proc, payload []int64) {
	var s int64
	for _, v := range payload {
		s += v
	}
	comm.CombineInt64(p, s)
}

func primPrefix(p *machine.Proc, payload []int64) {
	comm.PrefixSumInt64(p, int64(len(payload)))
}

func primConcat(p *machine.Proc, payload []int64) {
	comm.GlobalConcatv(p, payload, machine.WordBytes)
}

func primTransport(p *machine.Proc, payload []int64) {
	// Spread the payload evenly across all destinations.
	size := p.Procs()
	out := make([][]int64, size)
	per := len(payload) / size
	for j := 0; j < size; j++ {
		lo := j * per
		hi := lo + per
		if j == size-1 {
			hi = len(payload)
		}
		out[j] = payload[lo:hi]
	}
	comm.Transport(p, out, machine.WordBytes)
}

// measurePrim returns the simulated time of one collective invocation
// with m elements per processor.
func measurePrim(p, m int, op primOp) float64 {
	params := machine.DefaultParams(p)
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		payload := make([]int64, m)
		for i := range payload {
			payload[i] = int64(pr.ID()*m + i)
		}
		op(pr, payload)
	})
	if err != nil {
		panic(err)
	}
	return sim
}
