// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation (§5), plus the §5 hybrid and variance
// observations and a primitives microbenchmark. Each experiment sweeps
// the paper's parameter grid (n in 32k..2M, p in 2..128, random and
// sorted inputs, 5 seeds per random point) and prints the same series the
// paper plots, measured in simulated seconds on the CM-5-like machine.
package harness

import (
	"fmt"
	"io"
	"sync"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/selection"
	"parsel/internal/workload"
)

// Config controls a harness run.
type Config struct {
	// Out receives the report.
	Out io.Writer
	// Seeds is the number of trials averaged per data point (the paper
	// used 5 for random inputs). 0 means 5.
	Seeds int
	// Quick shrinks problem sizes and grids by roughly an order of
	// magnitude for smoke tests and benchmarks.
	Quick bool
	// CSV switches output from aligned text to comma-separated rows.
	CSV bool
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 5
	}
	return c
}

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

// Experiments lists every experiment in paper order.
var Experiments = []Experiment{
	{"table1", "Table 1: run times with load-balanced iterations (random data)", runTable1},
	{"table2", "Table 2: worst-case run times without load balancing (sorted data)", runTable2},
	{"fig1", "Figure 1 (left): four selection algorithms, random data, no LB (MoM: global exchange)", runFig1},
	{"fig1r", "Figure 1 (right): the two randomized algorithms, random data", runFig1R},
	{"fig2", "Figure 2: randomized selection under four LB strategies", runFig2},
	{"fig3", "Figure 3: fast randomized selection under four LB strategies", runFig3},
	{"fig4", "Figure 4: randomized vs fast randomized on sorted data, best LB each", runFig4},
	{"fig5", "Figure 5: randomized selection total vs load-balance time, n=2M", runFig5},
	{"fig6", "Figure 6: fast randomized selection total vs load-balance time, n=2M", runFig6},
	{"hybrid", "§5 hybrid: deterministic parallel + randomized sequential kernels", runHybrid},
	{"ablate", "ablation: paper-faithful vs gather-optimized sample handling in fast randomized", runAblate},
	{"variance", "§5 variance: random vs sorted run-time ratio for the randomized algorithms", runVariance},
	{"prims", "§2.2 primitives: measured vs modelled collective costs", runPrims},
	{"topo", "§2.1 model check: selection under crossbar vs hypercube/mesh/ring pricing", runTopo},
	{"model", "Tables 1-2 as formulas: analytic prediction vs simulated measurement", runModel},
	{"sortsel", "baseline: selection algorithms vs sort-the-world-and-index", runSortSel},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// grid returns the paper's sweep dimensions, shrunk in quick mode.
func grid(cfg Config) (ns []int64, ps []int) {
	if cfg.Quick {
		return []int64{16 << 10, 64 << 10, 256 << 10}, []int{2, 4, 8, 16}
	}
	return []int64{128 << 10, 512 << 10, 2 << 20}, []int{2, 4, 8, 16, 32, 64, 128}
}

const (
	k512 = 512 << 10
	m2   = 2 << 20
)

// sizePair returns the paper's {512k, 2M} detail sizes (shrunk in quick
// mode).
func sizePair(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{32 << 10, 128 << 10}
	}
	return []int64{k512, m2}
}

// cell is one averaged measurement.
type cell struct {
	sim      float64 // simulated total seconds
	balance  float64 // simulated seconds inside load balancing
	iters    float64
	unsucc   float64
	messages float64
}

// spec identifies one configuration to measure.
type spec struct {
	alg  selection.Algorithm
	bal  balance.Method
	kind workload.Kind
	n    int64
	p    int
	// optimizedSampling disables Faithful (used by the
	// ablation experiment; reproduction runs stay paper-faithful).
	optimizedSampling bool
}

// memoKey identifies a measurement for caching: measurements are
// deterministic in (spec, seeds), and figures 5/6 request the same spec
// once per plotted column.
type memoKey struct {
	s     spec
	seeds int
}

var memo sync.Map // memoKey -> cell

// ResetCache clears the measurement memo. Benchmarks call it between
// iterations so every iteration measures real work.
func ResetCache() { memo = sync.Map{} }

// measure runs spec cfg.Seeds times (median selection, the paper's task)
// and averages. Results are memoized per (spec, seeds).
func measure(cfg Config, s spec) cell {
	key := memoKey{s, cfg.Seeds}
	if v, ok := memo.Load(key); ok {
		return v.(cell)
	}
	c := measureUncached(cfg, s)
	memo.Store(key, c)
	return c
}

func measureUncached(cfg Config, s spec) cell {
	var c cell
	seeds := cfg.Seeds
	for t := 0; t < seeds; t++ {
		shards := workload.Generate(s.kind, s.n, s.p, uint64(9000+t))
		params := machine.DefaultParams(s.p)
		params.Seed = uint64(t + 1)
		stats := make([]selection.Stats, s.p)
		counters := make([]machine.Counters, s.p)
		sim, err := machine.Run(params, func(pr *machine.Proc) {
			_, stats[pr.ID()] = selection.Select(pr, shards[pr.ID()], (s.n+1)/2, selection.Options{
				Algorithm: s.alg,
				Balancer:  s.bal,
				Faithful:  !s.optimizedSampling,
			})
			counters[pr.ID()] = pr.Counters
		})
		if err != nil {
			panic(fmt.Sprintf("harness: %v/%v n=%d p=%d: %v", s.alg, s.bal, s.n, s.p, err))
		}
		c.sim += sim
		var bal float64
		var iters, unsucc int
		var msgs int64
		for i := range stats {
			if stats[i].BalanceSeconds > bal {
				bal = stats[i].BalanceSeconds
			}
			if stats[i].Iterations > iters {
				iters = stats[i].Iterations
			}
			if stats[i].Unsuccessful > unsucc {
				unsucc = stats[i].Unsuccessful
			}
			msgs += counters[i].MsgsSent
		}
		c.balance += bal
		c.iters += float64(iters)
		c.unsucc += float64(unsucc)
		c.messages += float64(msgs)
	}
	inv := 1 / float64(seeds)
	c.sim *= inv
	c.balance *= inv
	c.iters *= inv
	c.unsucc *= inv
	c.messages *= inv
	return c
}

// series is a named column of a figure.
type series struct {
	name string
	make func(p int) spec
	get  func(cell) float64 // value plotted (defaults to total sim time)
}

// emitTable measures and prints one figure panel: rows are processor
// counts, columns are series.
func emitTable(cfg Config, w io.Writer, caption string, ps []int, cols []series) {
	fmt.Fprintf(w, "\n# %s\n", caption)
	if cfg.CSV {
		fmt.Fprintf(w, "p")
		for _, c := range cols {
			fmt.Fprintf(w, ",%s", c.name)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "%6s", "p")
		for _, c := range cols {
			fmt.Fprintf(w, " %12s", c.name)
		}
		fmt.Fprintln(w)
	}
	for _, p := range ps {
		if cfg.CSV {
			fmt.Fprintf(w, "%d", p)
		} else {
			fmt.Fprintf(w, "%6d", p)
		}
		for _, c := range cols {
			val := measure(cfg, c.make(p))
			v := val.sim
			if c.get != nil {
				v = c.get(val)
			}
			if cfg.CSV {
				fmt.Fprintf(w, ",%.6f", v)
			} else {
				fmt.Fprintf(w, " %12.6f", v)
			}
		}
		fmt.Fprintln(w)
	}
}

// sizeName prints 128k/512k/2M style names.
func sizeName(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// sortedKinds is the input pair the paper evaluates everywhere.
var bothKinds = []workload.Kind{workload.Random, workload.Sorted}

// fig1 series constructors.
func algSeries(alg selection.Algorithm, bal balance.Method, name string, kind workload.Kind, n int64) series {
	return series{
		name: name,
		make: func(p int) spec { return spec{alg: alg, bal: bal, kind: kind, n: n, p: p} },
	}
}

func runFig1(cfg Config) error {
	cfg = cfg.withDefaults()
	ns, ps := grid(cfg)
	for _, n := range ns {
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("fig1 random n=%s: simulated seconds (MoM uses global exchange; others no LB)", sizeName(n)),
			ps, []series{
				algSeries(selection.MedianOfMedians, balance.GlobalExchange, "mom", workload.Random, n),
				algSeries(selection.BucketBased, balance.None, "bucket", workload.Random, n),
				algSeries(selection.Randomized, balance.None, "rand", workload.Random, n),
				algSeries(selection.FastRandomized, balance.None, "fastrand", workload.Random, n),
			})
	}
	return nil
}

func runFig1R(cfg Config) error {
	cfg = cfg.withDefaults()
	ns, ps := grid(cfg)
	for _, n := range ns {
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("fig1r random n=%s: the two randomized algorithms", sizeName(n)),
			ps, []series{
				algSeries(selection.Randomized, balance.None, "rand", workload.Random, n),
				algSeries(selection.FastRandomized, balance.None, "fastrand", workload.Random, n),
			})
	}
	return nil
}

// lbSeries builds the four load-balancing series of figures 2 and 3.
func lbSeries(alg selection.Algorithm, kind workload.Kind, n int64) []series {
	mk := func(bal balance.Method, name string) series {
		return series{
			name: name,
			make: func(p int) spec { return spec{alg: alg, bal: bal, kind: kind, n: n, p: p} },
		}
	}
	return []series{
		mk(balance.None, "none"),
		mk(balance.ModifiedOMLB, "modomlb"),
		mk(balance.DimensionExchange, "dimexch"),
		mk(balance.GlobalExchange, "globexch"),
	}
}

func runFig2(cfg Config) error { return runLBFigure(cfg, selection.Randomized, "fig2 randomized") }
func runFig3(cfg Config) error {
	return runLBFigure(cfg, selection.FastRandomized, "fig3 fast randomized")
}

func runLBFigure(cfg Config, alg selection.Algorithm, label string) error {
	cfg = cfg.withDefaults()
	_, ps := grid(cfg)
	for _, kind := range bothKinds {
		for _, n := range sizePair(cfg) {
			emitTable(cfg, cfg.Out,
				fmt.Sprintf("%s %v n=%s: simulated seconds under LB strategies", label, kind, sizeName(n)),
				ps, lbSeries(alg, kind, n))
		}
	}
	return nil
}

func runFig4(cfg Config) error {
	cfg = cfg.withDefaults()
	_, ps := grid(cfg)
	for _, n := range sizePair(cfg) {
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("fig4 sorted n=%s: best-LB comparison (rand: none, fastrand: modified OMLB)", sizeName(n)),
			ps, []series{
				algSeries(selection.Randomized, balance.None, "rand", workload.Sorted, n),
				algSeries(selection.FastRandomized, balance.ModifiedOMLB, "fastrand+omlb", workload.Sorted, n),
			})
	}
	return nil
}

func runFig5(cfg Config) error {
	return runBreakdown(cfg, selection.Randomized, "fig5 randomized")
}
func runFig6(cfg Config) error {
	return runBreakdown(cfg, selection.FastRandomized, "fig6 fast randomized")
}

// runBreakdown prints the stacked-bar data of figures 5 and 6: total
// simulated time and the load-balancing share, for the four strategies
// N/O/D/G at n=2M across p in {4..128}.
func runBreakdown(cfg Config, alg selection.Algorithm, label string) error {
	cfg = cfg.withDefaults()
	n := int64(m2)
	ps := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		n = 128 << 10
		ps = []int{4, 8, 16}
	}
	strategies := []struct {
		bal  balance.Method
		name string
	}{
		{balance.None, "N"},
		{balance.ModifiedOMLB, "O"},
		{balance.DimensionExchange, "D"},
		{balance.GlobalExchange, "G"},
	}
	for _, kind := range bothKinds {
		var cols []series
		for _, s := range strategies {
			s := s
			cols = append(cols,
				series{
					name: s.name + "-total",
					make: func(p int) spec { return spec{alg: alg, bal: s.bal, kind: kind, n: n, p: p} },
				},
				series{
					name: s.name + "-lb",
					make: func(p int) spec { return spec{alg: alg, bal: s.bal, kind: kind, n: n, p: p} },
					get:  func(c cell) float64 { return c.balance },
				})
		}
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("%s %v n=%s: total simulated seconds and LB share per strategy", label, kind, sizeName(n)),
			ps, cols)
	}
	return nil
}

func runHybrid(cfg Config) error {
	cfg = cfg.withDefaults()
	_, ps := grid(cfg)
	for _, n := range sizePair(cfg) {
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("hybrid random n=%s: deterministic vs hybrid vs randomized", sizeName(n)),
			ps, []series{
				algSeries(selection.MedianOfMedians, balance.GlobalExchange, "mom", workload.Random, n),
				algSeries(selection.MedianOfMediansHybrid, balance.GlobalExchange, "mom-hybrid", workload.Random, n),
				algSeries(selection.BucketBased, balance.None, "bucket", workload.Random, n),
				algSeries(selection.BucketBasedHybrid, balance.None, "bucket-hyb", workload.Random, n),
				algSeries(selection.Randomized, balance.None, "rand", workload.Random, n),
			})
	}
	return nil
}

// runAblate quantifies the design choice documented in DESIGN.md: when
// the per-iteration sample is small relative to p^2, gathering it on P0
// and picking the window keys with two sequential selections beats
// running the full parallel sample sort (the paper's structure). The
// series cross over exactly where the paper's fig. 1 rand/fastrand
// crossover lives.
func runAblate(cfg Config) error {
	cfg = cfg.withDefaults()
	_, ps := grid(cfg)
	for _, n := range sizePair(cfg) {
		mk := func(opt bool, name string) series {
			return series{
				name: name,
				make: func(p int) spec {
					return spec{alg: selection.FastRandomized, bal: balance.None,
						kind: workload.Random, n: n, p: p, optimizedSampling: opt}
				},
			}
		}
		emitTable(cfg, cfg.Out,
			fmt.Sprintf("ablate random n=%s: fast randomized sample handling", sizeName(n)),
			ps, []series{
				mk(false, "faithful"),
				mk(true, "optimized"),
				algSeries(selection.Randomized, balance.None, "rand", workload.Random, n),
			})
	}
	return nil
}

func runVariance(cfg Config) error {
	cfg = cfg.withDefaults()
	n := int64(m2)
	ps := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		n = 128 << 10
		ps = []int{4, 8, 16}
	}
	w := cfg.Out
	fmt.Fprintf(w, "\n# variance n=%s: sorted/random simulated-time ratio (rand: no LB; fastrand: modified OMLB)\n", sizeName(n))
	fmt.Fprintf(w, "%6s %12s %12s %12s %12s %10s %10s\n",
		"p", "rand-rnd", "rand-srt", "fast-rnd", "fast-srt", "ratio-rand", "ratio-fast")
	for _, p := range ps {
		rr := measure(cfg, spec{alg: selection.Randomized, bal: balance.None, kind: workload.Random, n: n, p: p})
		rs := measure(cfg, spec{alg: selection.Randomized, bal: balance.None, kind: workload.Sorted, n: n, p: p})
		fr := measure(cfg, spec{alg: selection.FastRandomized, bal: balance.ModifiedOMLB, kind: workload.Random, n: n, p: p})
		fs := measure(cfg, spec{alg: selection.FastRandomized, bal: balance.ModifiedOMLB, kind: workload.Sorted, n: n, p: p})
		fmt.Fprintf(w, "%6d %12.6f %12.6f %12.6f %12.6f %10.2f %10.2f\n",
			p, rr.sim, rs.sim, fr.sim, fs.sim, rs.sim/rr.sim, fs.sim/fr.sim)
	}
	return nil
}

// runTable1 and runTable2 check the complexity claims of tables 1 and 2
// empirically: simulated time and iteration counts across p, on random
// data (table 1's balanced-iterations assumption) and on sorted data
// without LB (table 2's worst case).
func runTable1(cfg Config) error {
	return runScalingTable(cfg, workload.Random, "table1 random (LB assumption holds)")
}

func runTable2(cfg Config) error {
	return runScalingTable(cfg, workload.Sorted, "table2 sorted, no LB (worst case)")
}

func runScalingTable(cfg Config, kind workload.Kind, label string) error {
	cfg = cfg.withDefaults()
	n := int64(m2)
	ps := []int{2, 4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		n = 128 << 10
		ps = []int{2, 4, 8, 16}
	}
	w := cfg.Out
	fmt.Fprintf(w, "\n# %s, n=%s: simulated seconds (t) and iterations (it) per algorithm\n", label, sizeName(n))
	fmt.Fprintf(w, "%6s %10s %5s %10s %5s %10s %5s %10s %5s\n",
		"p", "mom-t", "it", "bucket-t", "it", "rand-t", "it", "fast-t", "it")
	for _, p := range ps {
		momBal := balance.GlobalExchange
		if kind == workload.Sorted {
			momBal = balance.None
		}
		mo := measure(cfg, spec{alg: selection.MedianOfMedians, bal: momBal, kind: kind, n: n, p: p})
		bu := measure(cfg, spec{alg: selection.BucketBased, bal: balance.None, kind: kind, n: n, p: p})
		ra := measure(cfg, spec{alg: selection.Randomized, bal: balance.None, kind: kind, n: n, p: p})
		fa := measure(cfg, spec{alg: selection.FastRandomized, bal: balance.None, kind: kind, n: n, p: p})
		fmt.Fprintf(w, "%6d %10.5f %5.1f %10.5f %5.1f %10.5f %5.1f %10.5f %5.1f\n",
			p, mo.sim, mo.iters, bu.sim, bu.iters, ra.sim, ra.iters, fa.sim, fa.iters)
	}
	return nil
}

// runPrims microbenchmarks the §2.2 primitives against the model's
// closed forms.
func runPrims(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	ps := []int{4, 16, 64}
	if cfg.Quick {
		ps = []int{4, 16}
	}
	sizes := []int{1, 1 << 10, 64 << 10}
	fmt.Fprintf(w, "\n# prims: measured simulated seconds per collective (m = elements per processor)\n")
	fmt.Fprintf(w, "%6s %9s %12s %12s %12s %12s %12s\n", "p", "m", "broadcast", "combine", "prefix", "concat", "transport")
	for _, p := range ps {
		for _, m := range sizes {
			bc := measurePrim(p, m, primBroadcast)
			cb := measurePrim(p, m, primCombine)
			pf := measurePrim(p, m, primPrefix)
			gc := measurePrim(p, m, primConcat)
			tr := measurePrim(p, m, primTransport)
			fmt.Fprintf(w, "%6d %9d %12.6f %12.6f %12.6f %12.6f %12.6f\n", p, m, bc, cb, pf, gc, tr)
		}
	}
	fmt.Fprintf(w, "model: tau=%.0fus mu=%.3fus/B word=8B\n",
		machine.DefaultParams(2).TauSec*1e6, machine.DefaultParams(2).MuSecPerByte*1e6)
	return nil
}
