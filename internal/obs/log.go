package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewRequestID draws a fresh 64-bit random request id, hex-encoded —
// the value of an X-Parsel-Request-Id header when the caller did not
// supply one.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's entropy source is
		// gone; tracing ids are not worth dying over.
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given level ("debug", "info", "warn",
// "error") — the -log-format/-log-level surface of cmd/parseld.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// LogfLogger adapts a printf-style sink into a *slog.Logger — the
// compatibility shim for callers of the pre-slog Options.Logf hook.
// Records at Info and above render as "msg key=value ..." (string
// values quoted) and go to logf as one line each; Debug records are
// dropped, matching the hook's historical volume.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{logf: logf})
}

// logfHandler is the slog.Handler behind LogfLogger.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	appendAttr := func(a slog.Attr) {
		b.WriteByte(' ')
		if h.group != "" {
			b.WriteString(h.group)
			b.WriteByte('.')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		v := a.Value.Resolve()
		if v.Kind() == slog.KindString {
			fmt.Fprintf(&b, "%q", v.String())
		} else {
			b.WriteString(v.String())
		}
	}
	for _, a := range h.attrs {
		appendAttr(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		appendAttr(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if nh.group != "" {
		nh.group += "." + name
	} else {
		nh.group = name
	}
	return &nh
}
