// Package obs is the daemon's zero-dependency telemetry layer: a
// metrics registry with Prometheus-text-format exposition (counters,
// gauges, labeled histograms), a strict parser for the same format
// (golden tests, CI smoke probes and selectbench diff a scrape with
// it), request-id generation for cross-node tracing, and slog
// construction helpers shared by internal/serve and cmd/parseld.
//
// Everything here is hand-rolled on the standard library alone — the
// repo takes no dependencies — and the exposition is deliberately the
// minimal text format a Prometheus scraper accepts: one HELP and TYPE
// line per family, samples sorted by family name then label values,
// histograms as cumulative buckets with the implicit +Inf bucket and
// the _sum/_count series.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them in Prometheus
// text format. Construct instruments through its methods; registering
// the same name twice panics (a wiring bug, not a runtime condition).
// All instruments are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema; its series are
// the label-value combinations observed so far.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge" or "histogram"
	labels []string
	bounds []float64 // histogram bucket upper bounds, ascending

	mu     sync.Mutex
	series map[string]*series
}

// series is one label-value combination's state. Counters and gauges
// are atomics (hot paths touch them lock-free); histogram state is
// guarded by mu.
type series struct {
	labelVals []string

	count atomic.Int64  // counter value
	gauge atomic.Uint64 // gauge value, as float64 bits

	mu     sync.Mutex
	hcount []int64 // per-bucket (non-cumulative) observation counts
	hover  int64   // observations above the last bound
	hsum   float64
}

// register installs a family, panicking on a duplicate name or an
// invalid schema.
func (r *Registry) register(name, help, kind string, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: metric needs a name")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s: histogram bounds not ascending at %v", name, bounds[i]))
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: labels, bounds: bounds,
		series: make(map[string]*series),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.families[name] = f
	return f
}

// get returns the series for one label-value combination, creating it
// on first use.
func (f *family) get(vals ...string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d labels", f.name, len(vals), len(f.labels)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), vals...)}
		if f.kind == "histogram" {
			s.hcount = make([]int64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// A Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.s.count.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.s.count.Add(1) }

// Set overwrites the counter's value — for counters that mirror an
// external monotonic source (a stats struct sampled at scrape time)
// rather than being incremented in place.
func (c *Counter) Set(n int64) { c.s.count.Store(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.s.count.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.s.gauge.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.gauge.Load()) }

// A Histogram accumulates observations into fixed buckets.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	s := h.s
	s.mu.Lock()
	s.hsum += v
	placed := false
	for i, le := range h.bounds {
		if v <= le {
			s.hcount[i]++
			placed = true
			break
		}
	}
	if !placed {
		s.hover++
	}
	s.mu.Unlock()
}

// HistSnapshot is a consistent point-in-time view of a histogram:
// cumulative per-bucket counts aligned with Bounds, the total count
// (the implicit +Inf bucket) and the sum of observations.
type HistSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot samples the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := h.s
	out := HistSnapshot{Bounds: h.bounds, Cumulative: make([]int64, len(h.bounds))}
	s.mu.Lock()
	var cum int64
	for i, c := range s.hcount {
		cum += c
		out.Cumulative[i] = cum
	}
	out.Count = cum + s.hover
	out.Sum = s.hsum
	s.mu.Unlock()
	return out
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return &Counter{s: f.get()}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return &Gauge{s: f.get()}
}

// Histogram registers an unlabeled histogram over the given ascending
// bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, append([]float64(nil), bounds...))
	return &Histogram{s: f.get(), bounds: f.bounds}
}

// A CounterVec is a counter family with labels; With resolves one
// label-value combination's counter.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// With returns the counter for the given label values (in the order
// the labels were registered), creating the series on first use.
func (v *CounterVec) With(vals ...string) *Counter { return &Counter{s: v.f.get(vals...)} }

// A GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return &Gauge{s: v.f.get(vals...)} }

// A HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family over the given
// ascending bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labels, append([]float64(nil), bounds...))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	return &Histogram{s: v.f.get(vals...), bounds: v.f.bounds}
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every family in Prometheus text format: families
// sorted by name, series sorted by label values, histograms as
// cumulative buckets with +Inf and the _sum/_count pair. A family with
// no series yet still renders its HELP and TYPE lines (a scraper sees
// the schema before the first event).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// render writes one family's HELP/TYPE header and samples.
func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	sers := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		sers = append(sers, s)
	}
	f.mu.Unlock()
	sort.Slice(sers, func(i, j int) bool {
		a, c := sers[i].labelVals, sers[j].labelVals
		for k := range a {
			if a[k] != c[k] {
				return a[k] < c[k]
			}
		}
		return false
	})

	for _, s := range sers {
		switch f.kind {
		case "counter":
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.count.Load())
		case "gauge":
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""),
				formatFloat(math.Float64frombits(s.gauge.Load())))
		case "histogram":
			h := Histogram{s: s, bounds: f.bounds}
			snap := h.Snapshot()
			for i, le := range snap.Bounds {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "le", formatFloat(le)), snap.Cumulative[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "le", "+Inf"), snap.Count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatFloat(snap.Sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), snap.Count)
		}
	}
}

// labelString renders a {k="v",...} label set, with an optional extra
// label appended last (the histogram's le). Empty label sets render as
// nothing at all.
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float sample value; integral values render
// without an exponent or trailing zeros, exactly as Prometheus's own
// text encoder does for the common cases.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line's free text: backslashes and
// newlines (the format's only HELP escapes).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
