package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a parsed text-format exposition: every sample keyed by its
// series signature (metric name plus its canonicalized label set), and
// every family's declared type. ParseText validates structure as it
// parses, so a Scrape in hand is also a verdict that the exposition
// was well-formed.
type Scrape struct {
	// Samples maps "name{k="v",...}" (labels sorted by key; bare "name"
	// when unlabeled) to the sample value. Histogram series appear under
	// their expanded names (name_bucket with le, name_sum, name_count).
	Samples map[string]float64
	// Types maps family name to its declared TYPE.
	Types map[string]string
}

// Value looks up one sample by metric name and label set (nil or empty
// for an unlabeled sample).
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	v, ok := s.Samples[SeriesKey(name, labels)]
	return v, ok
}

// SeriesKey builds the canonical sample key Value and Samples use:
// labels sorted by name, values escaped exactly as the exposition
// escapes them.
func SeriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses a Prometheus text-format exposition, validating as
// it goes: TYPE declarations must precede their samples and name a
// known type, sample lines must parse completely, histogram buckets
// must be cumulative (non-decreasing in le order) with a +Inf bucket
// equal to _count. Any violation is an error naming the offending
// line.
func ParseText(data []byte) (*Scrape, error) {
	s := &Scrape{
		Samples: make(map[string]float64),
		Types:   make(map[string]string),
	}
	type bucketRec struct {
		le  float64
		val float64
	}
	buckets := make(map[string][]bucketRec) // family base name -> buckets in file order

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := s.Types[fields[2]]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %s (already %s)", lineNo, fields[2], prev)
				}
				s.Types[fields[2]] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		base := familyOf(name)
		if _, ok := s.Types[base]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %s precedes its TYPE declaration", lineNo, name)
		}
		key := SeriesKey(name, labels)
		if _, dup := s.Samples[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate sample %s", lineNo, key)
		}
		s.Samples[key] = value
		if strings.HasSuffix(name, "_bucket") && s.Types[base] == "histogram" {
			le, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("obs: line %d: histogram bucket without le label", lineNo)
			}
			lev := math.Inf(1)
			if le != "+Inf" {
				lev, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: line %d: bad le %q: %w", lineNo, le, err)
				}
			}
			delete(labels, "le")
			buckets[SeriesKey(base, labels)] = append(buckets[SeriesKey(base, labels)], bucketRec{lev, value})
		}
	}

	// Histogram invariants: buckets cumulative in le order, +Inf present
	// and equal to _count.
	for series, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		prev := 0.0
		for _, b := range bs {
			if b.le == last {
				return nil, fmt.Errorf("obs: histogram %s: duplicate le %v", series, b.le)
			}
			if b.val < prev {
				return nil, fmt.Errorf("obs: histogram %s: bucket counts not cumulative at le=%v (%v < %v)",
					series, b.le, b.val, prev)
			}
			last, prev = b.le, b.val
		}
		if len(bs) == 0 || !math.IsInf(bs[len(bs)-1].le, +1) {
			return nil, fmt.Errorf("obs: histogram %s: no +Inf bucket", series)
		}
		name, labelPart, _ := strings.Cut(series, "{")
		countKey := name + "_count"
		if labelPart != "" {
			countKey += "{" + labelPart
		}
		count, ok := s.Samples[countKey]
		if !ok {
			return nil, fmt.Errorf("obs: histogram %s: missing _count", series)
		}
		if count != bs[len(bs)-1].val {
			return nil, fmt.Errorf("obs: histogram %s: +Inf bucket %v != _count %v",
				series, bs[len(bs)-1].val, count)
		}
	}
	return s, nil
}

// familyOf strips a histogram sample suffix back to its family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseSample parses one sample line: name{labels} value. Timestamps
// (a third field) are not produced by this package's renderer and are
// rejected.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			val, n, verr := unescapeLabel(rest[eq+2:])
			if verr != nil {
				return "", nil, 0, fmt.Errorf("label %s in %q: %w", lname, line, verr)
			}
			labels[lname] = val
			rest = rest[eq+2+n:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	if rest == "+Inf" {
		return name, labels, math.Inf(1), nil
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", rest, err)
	}
	return name, labels, value, nil
}

// unescapeLabel consumes an escaped label value up to its closing
// quote, returning the value and how many input bytes (closing quote
// included) were consumed.
func unescapeLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// validMetricName checks the [a-zA-Z_:][a-zA-Z0-9_:]* metric name
// grammar.
func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
