package obs

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text rendering: HELP/TYPE pairs,
// family and series ordering, label escaping, cumulative buckets with
// +Inf, and the _sum/_count pair.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	cv := r.CounterVec("test_labeled_total", `labels with "quotes", \slashes and`+"\nnewlines", "tenant", "code")
	cv.With(`te"nant\one`+"\n", "200").Add(3)
	cv.With("b", "429").Add(1)
	cv.With("a", "200").Add(2)
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99) // above the last bound: only in +Inf
	hv := r.HistogramVec("test_staged_seconds", "labeled histogram", []float64{1}, "stage")
	hv.With("queue").Observe(0.5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_gauge a gauge
# TYPE test_gauge gauge
test_gauge 2.5
# HELP test_labeled_total labels with "quotes", \\slashes and\nnewlines
# TYPE test_labeled_total counter
test_labeled_total{tenant="a",code="200"} 2
test_labeled_total{tenant="b",code="429"} 1
test_labeled_total{tenant="te\"nant\\one\n",code="200"} 3
# HELP test_seconds a histogram
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 2
test_seconds_bucket{le="1"} 3
test_seconds_bucket{le="10"} 3
test_seconds_bucket{le="+Inf"} 4
test_seconds_sum 99.6
test_seconds_count 4
# HELP test_staged_seconds labeled histogram
# TYPE test_staged_seconds histogram
test_staged_seconds_bucket{stage="queue",le="1"} 1
test_staged_seconds_bucket{stage="queue",le="+Inf"} 1
test_staged_seconds_sum{stage="queue"} 0.5
test_staged_seconds_count{stage="queue"} 1
# HELP test_total a counter
# TYPE test_total counter
test_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The parser must accept its own renderer's output and recover the
	// exact values, escapes included.
	sc, err := ParseText([]byte(b.String()))
	if err != nil {
		t.Fatalf("ParseText on own output: %v", err)
	}
	if v, ok := sc.Value("test_total", nil); !ok || v != 42 {
		t.Errorf("test_total = %v %v, want 42", v, ok)
	}
	if v, ok := sc.Value("test_labeled_total", map[string]string{"tenant": `te"nant\one` + "\n", "code": "200"}); !ok || v != 3 {
		t.Errorf("escaped label sample = %v %v, want 3", v, ok)
	}
	if v, ok := sc.Value("test_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 4 {
		t.Errorf("+Inf bucket = %v %v, want 4", v, ok)
	}
	if v, ok := sc.Value("test_seconds_sum", nil); !ok || v != 99.6 {
		t.Errorf("sum = %v %v, want 99.6", v, ok)
	}
	if sc.Types["test_staged_seconds"] != "histogram" {
		t.Errorf("type = %q, want histogram", sc.Types["test_staged_seconds"])
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Sum != 5 {
		t.Errorf("count/sum = %d/%v, want 3/5", snap.Count, snap.Sum)
	}
	if snap.Cumulative[0] != 1 || snap.Cumulative[1] != 2 {
		t.Errorf("cumulative = %v, want [1 2]", snap.Cumulative)
	}
}

// TestParseRejects pins the validation: malformed lines, samples
// before TYPE, broken histogram invariants.
func TestParseRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"sample before TYPE", "a_total 1\n"},
		{"bad TYPE", "# TYPE a_total widget\na_total 1\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a counter\na 1\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1 2\n"},
		{"bad escape", "# TYPE a counter\na{x=\"\\q\"} 1\n"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n"},
		{"bad metric name", "# TYPE 1a counter\n1a 2\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 3\n"},
		{"missing +Inf", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + "h_sum 1\nh_count 1\n"},
		{"+Inf disagrees with count", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 4\n"},
		{"missing count", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseText([]byte(tc.text)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
}

func TestParseInfValue(t *testing.T) {
	sc, err := ParseText([]byte("# TYPE g gauge\ng +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("g", nil); !ok || !math.IsInf(v, 1) {
		t.Errorf("g = %v %v, want +Inf", v, ok)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Errorf("two ids collided: %s", a)
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	log := LogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(strings.ReplaceAll(format, "%s", args[0].(string))))
	})
	log.Info("snapshots: dataset not restored", "id", "missing", "err", "gone")
	log.Debug("access", "path", "/v1/stats") // dropped: Logf users keep the historical volume
	log.With("node", "n1").Warn("shed", "code", 429)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
	if want := `snapshots: dataset not restored id="missing" err="gone"`; lines[0] != want {
		t.Errorf("line = %q, want %q", lines[0], want)
	}
	if want := `shed node="n1" code=429`; lines[1] != want {
		t.Errorf("line = %q, want %q", lines[1], want)
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"msg":"visible"`) {
		t.Errorf("json logger output: %q", out)
	}
	if _, err := NewLogger(&b, "xml", "info"); err == nil {
		t.Error("xml format accepted")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}
