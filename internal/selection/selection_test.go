package selection

import (
	"math/rand/v2"
	"slices"
	"testing"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/workload"
)

// runSelect executes one collective selection and checks that every
// processor agrees on the result; it returns the result, the max of the
// per-processor stats and the simulated time.
func runSelect(t *testing.T, shards [][]int64, rank int64, opts Options) (int64, []Stats, float64) {
	t.Helper()
	p := len(shards)
	res := make([]int64, p)
	stats := make([]Stats, p)
	work := make([][]int64, p)
	for i := range shards {
		work[i] = slices.Clone(shards[i])
	}
	sim, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
		res[pr.ID()], stats[pr.ID()] = Select(pr, work[pr.ID()], rank, opts)
	})
	if err != nil {
		t.Fatalf("%v/%v rank=%d: %v", opts.Algorithm, opts.Balancer, rank, err)
	}
	for id := 1; id < p; id++ {
		if res[id] != res[0] {
			t.Fatalf("%v: processors disagree: proc0=%d proc%d=%d", opts.Algorithm, res[0], id, res[id])
		}
	}
	return res[0], stats, sim
}

func oracle(shards [][]int64, rank int64) int64 {
	flat := workload.Flatten(shards)
	slices.Sort(flat)
	return flat[rank-1]
}

// ranksToProbe picks interesting ranks for population n.
func ranksToProbe(n int64) []int64 {
	set := map[int64]bool{1: true, n: true, (n + 1) / 2: true, n / 4: true, 3 * n / 4: true}
	var out []int64
	for r := range set {
		if r >= 1 && r <= n {
			out = append(out, r)
		}
	}
	slices.Sort(out)
	return out
}

func TestAllAlgorithmsMatchOracle(t *testing.T) {
	const n = 6000
	for _, alg := range AllAlgorithms {
		for _, kind := range []workload.Kind{workload.Random, workload.Sorted} {
			for _, p := range []int{1, 2, 4, 8} {
				shards := workload.Generate(kind, n, p, 21)
				for _, rank := range ranksToProbe(n) {
					want := oracle(shards, rank)
					got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
					if got != want {
						t.Errorf("%v %v p=%d rank=%d: got %d want %d", alg, kind, p, rank, got, want)
					}
				}
			}
		}
	}
}

func TestAllAlgorithmsAllDistributions(t *testing.T) {
	const n = 3000
	const p = 5 // non-power-of-two on purpose
	for _, alg := range AllAlgorithms {
		for _, kind := range workload.Kinds {
			shards := workload.Generate(kind, n, p, 33)
			rank := int64((n + 1) / 2)
			want := oracle(shards, rank)
			got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
			if got != want {
				t.Errorf("%v %v: median got %d want %d", alg, kind, got, want)
			}
		}
	}
}

func TestAllBalancersAllAlgorithms(t *testing.T) {
	const n = 4000
	const p = 8
	for _, alg := range Algorithms {
		for _, bal := range balance.Methods {
			for _, kind := range []workload.Kind{workload.Random, workload.Sorted} {
				shards := workload.Generate(kind, n, p, 5)
				rank := int64(n / 3)
				want := oracle(shards, rank)
				got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg, Balancer: bal})
				if got != want {
					t.Errorf("%v+%v %v: got %d want %d", alg, bal, kind, got, want)
				}
			}
		}
	}
}

func TestExtremeRanks(t *testing.T) {
	const n = 2500
	const p = 4
	shards := workload.Generate(workload.Random, n, p, 8)
	for _, alg := range Algorithms {
		for _, rank := range []int64{1, 2, n - 1, n} {
			want := oracle(shards, rank)
			got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
			if got != want {
				t.Errorf("%v rank=%d: got %d want %d", alg, rank, got, want)
			}
		}
	}
}

func TestAllEqualKeys(t *testing.T) {
	const p = 4
	shards := make([][]int64, p)
	for i := range shards {
		shards[i] = make([]int64, 1000)
		for j := range shards[i] {
			shards[i][j] = 99
		}
	}
	for _, alg := range AllAlgorithms {
		got, _, _ := runSelect(t, shards, 2000, Options{Algorithm: alg})
		if got != 99 {
			t.Errorf("%v: all-equal select = %d", alg, got)
		}
	}
}

func TestTwoDistinctValues(t *testing.T) {
	// The adversarial case for the fast randomized stall fallback.
	const p = 4
	shards := make([][]int64, p)
	for i := range shards {
		shards[i] = make([]int64, 800)
		for j := range shards[i] {
			shards[i][j] = int64(j % 2)
		}
	}
	// 1600 zeros, 1600 ones; rank 1600 is 0, rank 1601 is 1.
	for _, alg := range AllAlgorithms {
		for rank, want := range map[int64]int64{1: 0, 1600: 0, 1601: 1, 3200: 1} {
			got, stats, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
			if got != want {
				t.Errorf("%v rank=%d: got %d want %d", alg, rank, got, want)
			}
			for _, st := range stats {
				if st.CapHit {
					t.Errorf("%v rank=%d: hit the iteration cap", alg, rank)
				}
			}
		}
	}
}

func TestSmallPopulations(t *testing.T) {
	for _, alg := range Algorithms {
		for _, p := range []int{1, 2, 3, 7} {
			for _, n := range []int64{1, 2, 3, int64(p), int64(p) + 1, int64(p * p), int64(p*p) + 1} {
				shards := workload.Generate(workload.Random, n, p, 13)
				for _, rank := range []int64{1, (n + 1) / 2, n} {
					want := oracle(shards, rank)
					got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
					if got != want {
						t.Errorf("%v p=%d n=%d rank=%d: got %d want %d", alg, p, n, rank, got, want)
					}
				}
			}
		}
	}
}

func TestEmptyShardsMixed(t *testing.T) {
	// Some processors start with nothing at all.
	shards := [][]int64{
		{},
		{5, 3, 9, 1},
		{},
		{7, 7, 2, 8, 0},
	}
	for _, alg := range Algorithms {
		for rank := int64(1); rank <= 9; rank++ {
			want := oracle(shards, rank)
			got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg})
			if got != want {
				t.Errorf("%v rank=%d: got %d want %d", alg, rank, got, want)
			}
		}
	}
}

func TestMedianHelper(t *testing.T) {
	const p = 4
	shards := workload.Generate(workload.Random, 1001, p, 3)
	want := oracle(shards, 501) // ceil(1001/2)
	res := make([]int64, p)
	work := make([][]int64, p)
	for i := range shards {
		work[i] = slices.Clone(shards[i])
	}
	_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
		res[pr.ID()], _ = Median(pr, work[pr.ID()], Options{Algorithm: Randomized})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != want {
		t.Errorf("Median = %d, want %d", res[0], want)
	}
}

func TestInvalidArgsPanicCollectively(t *testing.T) {
	shards := workload.Generate(workload.Random, 100, 2, 1)
	for name, rank := range map[string]int64{"zero": 0, "negative": -5, "too big": 101} {
		work := [][]int64{slices.Clone(shards[0]), slices.Clone(shards[1])}
		_, err := machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
			Select(pr, work[pr.ID()], rank, Options{Algorithm: Randomized})
		})
		if err == nil {
			t.Errorf("%s rank: expected error", name)
		}
	}
	// Empty population.
	_, err := machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		Select(pr, []int64{}, 1, Options{})
	})
	if err == nil {
		t.Error("empty population: expected error")
	}
	// Unknown algorithm.
	_, err = machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		Select(pr, []int64{1, 2}, 1, Options{Algorithm: Algorithm(77)})
	})
	if err == nil {
		t.Error("unknown algorithm: expected error")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	shards := workload.Generate(workload.Random, 3000, 4, 77)
	for _, alg := range Algorithms {
		r1, s1, sim1 := runSelect(t, shards, 1500, Options{Algorithm: alg})
		r2, s2, sim2 := runSelect(t, shards, 1500, Options{Algorithm: alg})
		if r1 != r2 || sim1 != sim2 {
			t.Errorf("%v: non-deterministic result/time: (%d,%g) vs (%d,%g)", alg, r1, sim1, r2, sim2)
		}
		for i := range s1 {
			if s1[i].Iterations != s2[i].Iterations ||
				s1[i].Unsuccessful != s2[i].Unsuccessful ||
				s1[i].BalanceSeconds != s2[i].BalanceSeconds {
				t.Errorf("%v: stats differ on proc %d", alg, i)
			}
		}
	}
}

func TestIterationCountsScale(t *testing.T) {
	// Fast randomized needs far fewer iterations than randomized
	// (O(log log n) vs O(log n)) — the core of Table 1/2's difference.
	const n = 200000
	const p = 8
	shards := workload.Generate(workload.Random, n, p, 5)
	_, stR, _ := runSelect(t, shards, n/2, Options{Algorithm: Randomized})
	_, stF, _ := runSelect(t, shards, n/2, Options{Algorithm: FastRandomized})
	if stF[0].Iterations >= stR[0].Iterations {
		t.Errorf("fastrand iterations %d not below rand iterations %d",
			stF[0].Iterations, stR[0].Iterations)
	}
	if stF[0].Iterations > 8 {
		t.Errorf("fastrand took %d iterations; want O(log log n) ~ <= 8", stF[0].Iterations)
	}
	if stR[0].Iterations > 60 {
		t.Errorf("rand took %d iterations; want O(log n) ~ <= 60", stR[0].Iterations)
	}
}

func TestBalanceTimeAccounted(t *testing.T) {
	shards := workload.Generate(workload.Sorted, 40000, 8, 1)
	_, stats, _ := runSelect(t, shards, 20000, Options{Algorithm: Randomized, Balancer: balance.GlobalExchange})
	var total float64
	for _, st := range stats {
		total += st.BalanceSeconds
	}
	if total <= 0 {
		t.Error("no balance time recorded despite active balancer on sorted data")
	}
	_, stats2, _ := runSelect(t, shards, 20000, Options{Algorithm: Randomized})
	for _, st := range stats2 {
		if st.BalanceSeconds != 0 {
			t.Error("balance time recorded with balancer None")
		}
	}
}

func TestRandomizedFasterThanDeterministicSimTime(t *testing.T) {
	// The paper's headline: randomized algorithms beat deterministic by
	// a wide margin. Check simulated times preserve the ordering.
	const n = 100000
	const p = 8
	shards := workload.Generate(workload.Random, n, p, 9)
	opts := func(a Algorithm, b balance.Method) Options { return Options{Algorithm: a, Balancer: b} }
	_, _, tMoM := runSelect(t, shards, n/2, opts(MedianOfMedians, balance.GlobalExchange))
	_, _, tBucket := runSelect(t, shards, n/2, opts(BucketBased, balance.None))
	_, _, tRand := runSelect(t, shards, n/2, opts(Randomized, balance.None))
	_, _, tFast := runSelect(t, shards, n/2, opts(FastRandomized, balance.None))
	if tRand >= tMoM || tFast >= tMoM {
		t.Errorf("randomized (%g, %g) not faster than median-of-medians (%g)", tRand, tFast, tMoM)
	}
	if tBucket >= tMoM {
		t.Errorf("bucket-based (%g) not faster than median-of-medians (%g)", tBucket, tMoM)
	}
}

func TestHybridBetweenDetAndRand(t *testing.T) {
	// §5: hybrid run time lies between the deterministic and randomized
	// parallel algorithms. Allow slack: assert hybrid is faster than
	// pure deterministic (the sequential part dominates for large n).
	const n = 100000
	const p = 8
	shards := workload.Generate(workload.Random, n, p, 9)
	_, _, tMoM := runSelect(t, shards, n/2, Options{Algorithm: MedianOfMedians, Balancer: balance.GlobalExchange})
	_, _, tHyb := runSelect(t, shards, n/2, Options{Algorithm: MedianOfMediansHybrid, Balancer: balance.GlobalExchange})
	if tHyb >= tMoM {
		t.Errorf("hybrid (%g) not faster than deterministic (%g)", tHyb, tMoM)
	}
}

func TestRandomizedPropertyFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(123, 456))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.IntN(8)
		shards := make([][]int64, p)
		var n int64
		for i := range shards {
			sz := rng.IntN(400)
			shards[i] = make([]int64, sz)
			for j := range shards[i] {
				shards[i][j] = rng.Int64N(97) // duplicates likely
			}
			n += int64(sz)
		}
		if n == 0 {
			continue
		}
		rank := 1 + rng.Int64N(n)
		alg := AllAlgorithms[rng.IntN(len(AllAlgorithms))]
		bal := balance.Methods[rng.IntN(len(balance.Methods))]
		if alg == BucketBased || alg == BucketBasedHybrid {
			bal = balance.None
		}
		want := oracle(shards, rank)
		got, _, _ := runSelect(t, shards, rank, Options{Algorithm: alg, Balancer: bal})
		if got != want {
			t.Errorf("trial %d %v+%v p=%d n=%d rank=%d: got %d want %d",
				trial, alg, bal, p, n, rank, got, want)
		}
	}
}

func TestStringKeys(t *testing.T) {
	shards := [][]string{
		{"pear", "apple"},
		{"fig", "date"},
		{"cherry", "banana"},
	}
	want := []string{"apple", "banana", "cherry", "date", "fig", "pear"}
	for _, alg := range Algorithms {
		res := make([]string, 3)
		work := [][]string{
			slices.Clone(shards[0]), slices.Clone(shards[1]), slices.Clone(shards[2]),
		}
		_, err := machine.Run(machine.DefaultParams(3), func(pr *machine.Proc) {
			res[pr.ID()], _ = Select(pr, work[pr.ID()], 3, Options{Algorithm: alg, ElemBytes: 8})
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res[0] != want[2] {
			t.Errorf("%v: string rank 3 = %q, want %q", alg, res[0], want[2])
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range AllAlgorithms {
		if a.String() == "" {
			t.Errorf("algorithm %d has empty name", int(a))
		}
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Errorf("unknown algorithm name = %q", Algorithm(42).String())
	}
}
