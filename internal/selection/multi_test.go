package selection

import (
	"math/rand/v2"
	"slices"
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

func runSelectMany(t *testing.T, shards [][]int64, ranks []int64, opts Options) ([]int64, []Stats) {
	t.Helper()
	p := len(shards)
	res := make([][]int64, p)
	stats := make([]Stats, p)
	work := make([][]int64, p)
	for i := range shards {
		work[i] = slices.Clone(shards[i])
	}
	_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
		res[pr.ID()], stats[pr.ID()] = SelectMany(pr, work[pr.ID()], ranks, opts)
	})
	if err != nil {
		t.Fatalf("SelectMany: %v", err)
	}
	for id := 1; id < p; id++ {
		if !slices.Equal(res[id], res[0]) {
			t.Fatalf("processors disagree: %v vs %v", res[0], res[id])
		}
	}
	return res[0], stats
}

func TestSelectManyMatchesOracle(t *testing.T) {
	const n = 5000
	for _, p := range []int{1, 2, 4, 8} {
		for _, kind := range []workload.Kind{workload.Random, workload.Sorted, workload.FewDistinct} {
			shards := workload.Generate(kind, n, p, 17)
			flat := workload.Flatten(shards)
			slices.Sort(flat)
			ranks := []int64{1, n / 4, n / 2, 3 * n / 4, n}
			got, _ := runSelectMany(t, shards, ranks, Options{})
			for i, r := range ranks {
				if got[i] != flat[r-1] {
					t.Errorf("p=%d %v rank %d: got %d want %d", p, kind, r, got[i], flat[r-1])
				}
			}
		}
	}
}

func TestSelectManyOrderAndDuplicates(t *testing.T) {
	shards := workload.Generate(workload.Random, 3000, 4, 3)
	flat := workload.Flatten(shards)
	slices.Sort(flat)
	// Unsorted request order with duplicates.
	ranks := []int64{2999, 1, 1500, 1, 2999}
	got, _ := runSelectMany(t, shards, ranks, Options{})
	want := []int64{flat[2998], flat[0], flat[1499], flat[0], flat[2998]}
	if !slices.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSelectManyEmptyRanks(t *testing.T) {
	shards := workload.Generate(workload.Random, 100, 2, 1)
	got, st := runSelectMany(t, shards, nil, Options{})
	if len(got) != 0 || st[0].Iterations != 0 {
		t.Errorf("empty ranks: got %v, %d iterations", got, st[0].Iterations)
	}
}

func TestSelectManySharesWork(t *testing.T) {
	// Selecting 5 quantiles at once must cost far less than 5 separate
	// selections (in pivot iterations).
	const n = 200000
	const p = 8
	shards := workload.Generate(workload.Random, n, p, 5)
	ranks := []int64{n / 100, n / 4, n / 2, 3 * n / 4, 99 * n / 100}
	_, stMany := runSelectMany(t, shards, ranks, Options{})

	var singleIters int
	for _, r := range ranks {
		_, st, _ := runSelect(t, shards, r, Options{Algorithm: Randomized})
		singleIters += st[0].Iterations
	}
	if stMany[0].Iterations >= singleIters {
		t.Errorf("SelectMany used %d iterations, five singles used %d", stMany[0].Iterations, singleIters)
	}
}

func TestSelectManyInvalid(t *testing.T) {
	shards := workload.Generate(workload.Random, 50, 2, 1)
	work := [][]int64{slices.Clone(shards[0]), slices.Clone(shards[1])}
	_, err := machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		SelectMany(pr, work[pr.ID()], []int64{0}, Options{})
	})
	if err == nil {
		t.Error("rank 0 accepted")
	}
	_, err = machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		SelectMany(pr, []int64{}, []int64{1}, Options{})
	})
	if err == nil {
		t.Error("empty population accepted")
	}
}

func TestSelectManyFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.IntN(6)
		shards := make([][]int64, p)
		var n int64
		for i := range shards {
			sz := rng.IntN(500)
			shards[i] = make([]int64, sz)
			for j := range shards[i] {
				shards[i][j] = rng.Int64N(40) // duplicates galore
			}
			n += int64(sz)
		}
		if n == 0 {
			continue
		}
		m := 1 + rng.IntN(6)
		ranks := make([]int64, m)
		for i := range ranks {
			ranks[i] = 1 + rng.Int64N(n)
		}
		flat := workload.Flatten(shards)
		slices.Sort(flat)
		got, _ := runSelectMany(t, shards, ranks, Options{})
		for i, r := range ranks {
			if got[i] != flat[r-1] {
				t.Errorf("trial %d rank %d: got %d want %d", trial, r, got[i], flat[r-1])
			}
		}
	}
}

func TestTraceRecording(t *testing.T) {
	shards := workload.Generate(workload.Random, 50000, 4, 2)
	for _, alg := range Algorithms {
		_, stats, _ := runSelect(t, shards, 25000, Options{Algorithm: alg, RecordTrace: true})
		st := stats[0]
		if len(st.Trace) != st.Iterations {
			t.Errorf("%v: %d trace entries for %d iterations", alg, len(st.Trace), st.Iterations)
		}
		prevPop := int64(1 << 62)
		for i, tr := range st.Trace {
			if tr.Population <= 0 || tr.Population > prevPop {
				t.Errorf("%v: trace %d population %d not shrinking (prev %d)", alg, i, tr.Population, prevPop)
			}
			if tr.Rank < 1 || tr.Rank > tr.Population {
				t.Errorf("%v: trace %d rank %d outside population %d", alg, i, tr.Rank, tr.Population)
			}
			if i > 0 && tr.SimSeconds < st.Trace[i-1].SimSeconds {
				t.Errorf("%v: trace %d time went backwards", alg, i)
			}
			prevPop = tr.Population
		}
		// Without the option, no trace.
		_, stats2, _ := runSelect(t, shards, 25000, Options{Algorithm: alg})
		if len(stats2[0].Trace) != 0 {
			t.Errorf("%v: trace recorded without RecordTrace", alg)
		}
	}
}
