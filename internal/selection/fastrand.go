package selection

import (
	"cmp"
	"math"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/psort"
	"parsel/internal/seq"
)

// debugFastRand enables an iteration trace on processor 0 (development
// aid; kept off).
var debugFastRand = false

// windowRanks brackets the scaled target rank m = ceil(rank*S/n) with the
// slack delta of Alg. 4 step 3, returning 1-based sample ranks r1 <= r2.
//
// The paper's slack sqrt(|S| ln n) approaches |S| once the population is
// small, which stalls the geometric shrink in a long tail of iterations
// that keep ~85% of the survivors each; because the §3.4 modification
// makes window misses cheap (misses still discard one side), the
// optimized mode caps the slack at |S|/8 so every iteration keeps at
// most about a quarter of the sample range. The faithful mode uses the
// paper's uncapped slack — and consequently also reproduces the paper's
// finding that load balancing helps this algorithm on sorted inputs (the
// tail repeatedly scans survivors concentrated on few processors). See
// DESIGN.md (deviations) and the harness's ablate experiment.
func windowRanks(rank, S, n int64, opts Options) (r1, r2 int64) {
	m := (rank*S + n - 1) / n
	delta := int64(opts.RankSlack*math.Sqrt(float64(S)*math.Log(float64(n)))) + 1
	if cap := 1 + S/8; !opts.Faithful && delta > cap {
		delta = cap
	}
	r1 = max(1, m-delta)
	r2 = min(S, m+delta)
	return r1, r2
}

// selectFastRandomized is Alg. 4, the fast randomized algorithm of
// Rajasekaran et al.: each iteration draws an o(n) random sample, sorts
// it in parallel, and brackets the target rank between two sample keys k1
// and k2 whose sample ranks sit sqrt(|S| ln n) on either side of the
// scaled target. With high probability the answer lies in [k1, k2] and
// everything outside is discarded, giving O(log log n) iterations. When
// the window misses (an "unsuccessful" iteration), the §3.4 modification
// still discards everything on the wrong side of the window. When an
// iteration fails to shrink the population at all (possible only with
// massive duplication), one single-pivot randomized step runs instead —
// a documented termination safeguard.
func selectFastRandomized[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options, st *Stats, sel selector[K]) K {
	ar := arenaOf[K](p)
	thr := threshold(p)
	// curWin tracks which arena window buffer currently backs local, so
	// each iteration's out-of-place filter targets the other one.
	curWin := -1
	for n > thr {
		if st.Iterations >= opts.MaxIterations {
			st.CapHit = true
			break
		}
		st.Iterations++

		// Step 1: draw |S| ~ n^e keys, each processor contributing in
		// proportion to its surviving population.
		ni := int64(len(local))
		sTarget := int64(math.Pow(float64(n), opts.SampleExponent))
		if sTarget < 1 {
			sTarget = 1
		}
		si := 0
		if ni > 0 {
			// Ceil keeps the global sample non-empty and spreads it
			// across all non-empty processors.
			si = int((ni*sTarget + n - 1) / n)
		}
		sample, ops := seq.SampleAppend(ar.sample, local, si, p.Local)
		ar.sample = sample
		p.Charge(ops)

		// Steps 2–4: order the sample and extract the two window keys
		// k1 and k2 bracketing the scaled target rank.
		//
		// When the sample is comparable to the p^2 sequential threshold
		// it is cheaper to gather it on P0 and pick the two ranks with
		// two Floyd–Rivest selections (the paper's own "On P0, pick k1,
		// k2 from S") than to run a full parallel sort; the PSRS path
		// pays ~10 collectives per iteration and dominates at high p.
		var k1, k2 K
		if !opts.Faithful && sTarget <= int64(4*p.Procs()*p.Procs()) {
			all, gbuf := comm.GatherFlatInto(p, 0, sample, opts.ElemBytes, ar.gather)
			ar.gather = gbuf
			var pair []K
			if p.ID() == 0 {
				r1, r2 := windowRanks(rank, int64(len(all)), n, opts)
				v1, o1 := seq.Quickselect(all, int(r1-1), p.Local)
				v2, o2 := seq.Quickselect(all, int(r2-1), p.Local)
				p.Charge(o1 + o2)
				pair = append(ar.kbuf[:0], v1, v2)
				ar.kbuf = pair
			}
			pair = comm.BroadcastSlice(p, 0, pair, opts.ElemBytes)
			k1, k2 = pair[0], pair[1]
		} else {
			// Oversampling factor 8: classic PSRS's p samples per
			// processor would make the root sort p^2 keys, which
			// dwarfs the o(n) sample itself at high p.
			run := psort.SortOversampledScratch(p, sample, opts.ElemBytes, 8, &ar.sort)
			S := comm.CombineInt64(p, int64(len(run)))
			r1, r2 := windowRanks(rank, S, n, opts)
			k1 = psort.RankElement(p, run, r1-1, opts.ElemBytes)
			k2 = psort.RankElement(p, run, r2-1, opts.ElemBytes)
		}

		// Step 5: one fused scan tallies the window regions and
		// speculatively materializes the in-window survivors out of
		// place — window hits are the overwhelmingly common outcome by
		// construction of the slack, and the originals stay intact in
		// local for the rare miss. The scan charges exactly what the
		// three-way partition pair would; survivors keep their stable
		// input order rather than the partition's scramble, which makes
		// the positional sampling of later iterations draw a different
		// (equally deterministic) trajectory than the scrambling
		// implementation did.
		tgt := 0
		if curWin == 0 {
			tgt = 1
		}
		midBuf, nLess, nMid, ops2 := seq.FilterWindowCount(ar.win[tgt], local, k1, k2)
		ar.win[tgt] = midBuf[:cap(midBuf)]
		p.Charge(ops2)

		// Steps 6–8: tallies and the discard decision (c.eq holds the
		// in-window count here).
		c := combineCounts(p, int64(nLess), int64(nMid))
		if debugFastRand && p.ID() == 0 {
			println("iter", st.Iterations, "n", n, "cless", c.less, "cmid", c.eq, "rank", rank)
		}
		var newN int64
		switch {
		case rank > c.less && rank <= c.less+c.eq:
			// Window hit. If the window has collapsed to a single key,
			// every middle element equals it: done.
			if k1 == k2 {
				st.PivotExit = true
				return k1
			}
			local = midBuf
			curWin = tgt
			rank -= c.less
			newN = c.eq
		case rank <= c.less:
			// Both window keys rank above the target: keep the < side
			// (refiltered from the untouched input).
			st.Unsuccessful++
			local = seq.FilterLessInto(ar.win[tgt], local, k1)
			ar.win[tgt] = local[:cap(local)]
			curWin = tgt
			newN = c.less
		default:
			// Both window keys rank below the target: keep the > side.
			st.Unsuccessful++
			local = seq.FilterGreaterInto(ar.win[tgt], local, k2)
			ar.win[tgt] = local[:cap(local)]
			curWin = tgt
			rank -= c.less + c.eq
			newN = n - c.less - c.eq
		}

		if newN >= n {
			// No progress (duplicates spanning the whole window): fall
			// back to one single-pivot step, which always either shrinks
			// the population or proves a pivot.
			st.Stalled++
			var piv K
			var done bool
			local, rank, newN, piv, done = randomizedStep(p, local, rank, n, opts)
			if done {
				st.PivotExit = true
				return piv
			}
		}
		n = newN

		// Load balancing between iterations (the paper's best variant
		// for sorted data uses modified OMLB here). When the balancer
		// hands back different storage, the window buffer it replaced
		// becomes a free filter target again.
		prev := local
		local = runBalance(p, local, opts, st)
		if len(local) == 0 || len(prev) == 0 || &local[0] != &prev[0] {
			curWin = -1
		}
		st.record(p, opts, n, rank, len(local))
	}
	// Steps 9–10: gather the survivors and solve sequentially.
	return finalSolve(p, local, rank, opts, st, sel)
}
