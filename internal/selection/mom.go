package selection

import (
	"cmp"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// selectMoM is Alg. 1, the median of medians algorithm: every iteration
// each processor finds the median of its local elements, the medians are
// gathered on processor 0, their median becomes the estimated global
// median, everyone partitions against it, and a Combine decides which
// side survives. The guaranteed-fraction property of the median of
// medians bounds the iteration count by O(log n).
//
// sel is the sequential selection kernel: deterministic BFPRT for the
// paper's Alg. 1, Floyd–Rivest for the §5 hybrid.
func selectMoM[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options, st *Stats, sel selector[K]) K {
	ar := arenaOf[K](p)
	thr := threshold(p)
	// curWin tracks which arena window buffer currently backs local; the
	// out-of-place partition streams target the other two.
	curWin := -1
	for n > thr {
		if st.Iterations >= opts.MaxIterations {
			st.CapHit = true
			break
		}
		st.Iterations++

		// Step 1: local median (processors that ran out of elements
		// contribute nothing).
		var meds []K
		if len(local) > 0 {
			m, ops := sel(local, seq.MedianIndex(len(local)))
			p.Charge(ops)
			meds = append(ar.kbuf[:0], m)
			ar.kbuf = meds
		}

		// Steps 2–3: gather medians on P0, find their median, broadcast.
		all, gbuf := comm.GatherFlatInto(p, 0, meds, opts.ElemBytes, ar.gather)
		ar.gather = gbuf
		var pivS []K
		if p.ID() == 0 {
			m, ops := sel(all, seq.MedianIndex(len(all)))
			p.Charge(ops)
			pivS = append(ar.kbuf[:0], m)
			ar.kbuf = pivS
		}
		piv := comm.BroadcastSlice(p, 0, pivS, opts.ElemBytes)[0]

		// Step 4: one fused scan splits the local list into its two
		// candidate survivor streams out of place (both stable), at
		// exactly the partition's charged cost; the collective decision
		// then just picks a stream — no second scan over cold memory.
		// The stable order means the balancers migrate different
		// concrete elements than the scrambling partition would, so the
		// trajectory (still fully deterministic per seed) differs from
		// the pre-engine implementation's.
		tA := 0
		if curWin == 0 {
			tA = 1
		}
		tB := tA + 1
		if curWin == tB {
			tB++
		}
		lessBuf, gtBuf, lt, eq, ops := seq.PartitionTwoInto(ar.win[tA], ar.win[tB], local, piv)
		ar.win[tA] = lessBuf[:cap(lessBuf)]
		ar.win[tB] = gtBuf[:cap(gtBuf)]
		p.Charge(ops)

		// Steps 5–6: global tallies and the discard decision.
		c := combineCounts(p, int64(lt), int64(eq))
		side, newRank, newN := decide(rank, n, c)
		switch side {
		case -1:
			local = lessBuf
			curWin = tA
		case 0:
			st.PivotExit = true
			return piv
		case +1:
			local = gtBuf
			curWin = tB
		}
		rank, n = newRank, newN

		// Step 7: rebalance the survivors. A balancer that hands back
		// different storage frees the window buffer it replaced.
		prev := local
		local = runBalance(p, local, opts, st)
		if len(local) == 0 || len(prev) == 0 || &local[0] != &prev[0] {
			curWin = -1
		}
		st.record(p, opts, n, rank, len(local))
	}
	// Steps 8–9: gather the remainder and solve sequentially.
	return finalSolve(p, local, rank, opts, st, sel)
}
