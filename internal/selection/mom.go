package selection

import (
	"cmp"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// selectMoM is Alg. 1, the median of medians algorithm: every iteration
// each processor finds the median of its local elements, the medians are
// gathered on processor 0, their median becomes the estimated global
// median, everyone partitions against it, and a Combine decides which
// side survives. The guaranteed-fraction property of the median of
// medians bounds the iteration count by O(log n).
//
// sel is the sequential selection kernel: deterministic BFPRT for the
// paper's Alg. 1, Floyd–Rivest for the §5 hybrid.
func selectMoM[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options, st *Stats, sel selector[K]) K {
	thr := threshold(p)
	for n > thr {
		if st.Iterations >= opts.MaxIterations {
			st.CapHit = true
			break
		}
		st.Iterations++

		// Step 1: local median (processors that ran out of elements
		// contribute nothing).
		var meds []K
		if len(local) > 0 {
			m, ops := sel(local, seq.MedianIndex(len(local)))
			p.Charge(ops)
			meds = []K{m}
		}

		// Steps 2–3: gather medians on P0, find their median, broadcast.
		all := comm.GatherFlat(p, 0, meds, opts.ElemBytes)
		var pivS []K
		if p.ID() == 0 {
			m, ops := sel(all, seq.MedianIndex(len(all)))
			p.Charge(ops)
			pivS = []K{m}
		}
		piv := comm.BroadcastSlice(p, 0, pivS, opts.ElemBytes)[0]

		// Step 4: partition the local list around the estimate.
		lt, eq, ops := seq.Partition3(local, piv)
		p.Charge(ops)

		// Steps 5–6: global tallies and the discard decision.
		c := combineCounts(p, int64(lt), int64(eq))
		side, newRank, newN := decide(rank, n, c)
		switch side {
		case -1:
			local = local[:lt]
		case 0:
			st.PivotExit = true
			return piv
		case +1:
			local = local[lt+eq:]
		}
		rank, n = newRank, newN

		// Step 7: rebalance the survivors.
		local = runBalance(p, local, opts, st)
		st.record(p, opts, n, rank, len(local))
	}
	// Steps 8–9: gather the remainder and solve sequentially.
	return finalSolve(p, local, rank, opts, st, sel)
}
