package selection

import (
	"slices"
	"testing"

	"parsel/internal/machine"
	"parsel/internal/workload"
)

func TestViaSortMatchesOracle(t *testing.T) {
	const n = 3000
	for _, p := range []int{1, 2, 5, 8} {
		for _, kind := range []workload.Kind{workload.Random, workload.Sorted, workload.FewDistinct} {
			shards := workload.Generate(kind, n, p, 11)
			flat := workload.Flatten(shards)
			slices.Sort(flat)
			for _, rank := range []int64{1, n / 2, n} {
				res := make([]int64, p)
				work := make([][]int64, p)
				for i := range shards {
					work[i] = slices.Clone(shards[i])
				}
				_, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
					res[pr.ID()], _ = ViaSort(pr, work[pr.ID()], rank, Options{})
				})
				if err != nil {
					t.Fatal(err)
				}
				for id, v := range res {
					if v != flat[rank-1] {
						t.Errorf("p=%d %v rank=%d proc %d: got %d want %d", p, kind, rank, id, v, flat[rank-1])
					}
				}
			}
		}
	}
}

func TestViaSortInvalid(t *testing.T) {
	_, err := machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		ViaSort(pr, []int64{}, 1, Options{})
	})
	if err == nil {
		t.Error("empty population accepted")
	}
	work := [][]int64{{1}, {2}}
	_, err = machine.Run(machine.DefaultParams(2), func(pr *machine.Proc) {
		ViaSort(pr, work[pr.ID()], 3, Options{})
	})
	if err == nil {
		t.Error("bad rank accepted")
	}
}

// TestSelectionBeatsSorting pins the premise: any §3 algorithm must be
// substantially cheaper (in simulated time) than sorting everything.
func TestSelectionBeatsSorting(t *testing.T) {
	const n = 200000
	const p = 8
	shards := workload.Generate(workload.Random, n, p, 5)
	runSim := func(body func(pr *machine.Proc, local []int64)) float64 {
		work := make([][]int64, p)
		for i := range shards {
			work[i] = slices.Clone(shards[i])
		}
		sim, err := machine.Run(machine.DefaultParams(p), func(pr *machine.Proc) {
			body(pr, work[pr.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	tSort := runSim(func(pr *machine.Proc, local []int64) {
		ViaSort(pr, local, n/2, Options{})
	})
	tRand := runSim(func(pr *machine.Proc, local []int64) {
		Select(pr, local, n/2, Options{Algorithm: Randomized})
	})
	if tRand*3 >= tSort {
		t.Errorf("randomized selection (%g) not well below sort baseline (%g)", tRand, tSort)
	}
}
