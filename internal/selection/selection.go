// Package selection implements the paper's four parallel selection
// algorithms for coarse-grained machines (§3):
//
//	Alg. 1  Median of Medians   (deterministic, needs load balancing)
//	Alg. 2  Bucket-Based        (deterministic, no load balancing)
//	Alg. 3  Randomized          (parallel Floyd–Rivest)
//	Alg. 4  Fast Randomized     (Rajasekaran-style sampling, O(log log n)
//	                             iterations with high probability)
//
// plus the hybrid variants of §5 (deterministic parallel structure with
// randomized sequential kernels). All algorithms are iterative: each
// iteration estimates a pivot, counts elements below/equal to it with a
// Combine, discards one side, and optionally rebalances the surviving
// elements. When the surviving population drops to p^2 or below, the
// remainder is gathered on processor 0 and solved sequentially.
//
// Deviations from the paper, both documented in DESIGN.md: partitions are
// three-way, enabling an early exit when the pivot itself is the answer
// (necessary for termination on duplicate-heavy inputs), and the fast
// randomized algorithm falls back to one single-pivot step whenever a
// sampling iteration fails to shrink the population.
package selection

import (
	"cmp"
	"fmt"

	"parsel/internal/balance"
	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// Algorithm identifies a parallel selection algorithm.
type Algorithm int

const (
	// MedianOfMedians is Alg. 1.
	MedianOfMedians Algorithm = iota
	// BucketBased is Alg. 2. It ignores Options.Balancer: the bucketed
	// representation is local by construction and the algorithm is
	// designed to not need balancing.
	BucketBased
	// Randomized is Alg. 3.
	Randomized
	// FastRandomized is Alg. 4.
	FastRandomized
	// MedianOfMediansHybrid is Alg. 1 with the sequential kernels
	// (local medians, median of medians, final solve) replaced by
	// Floyd–Rivest selection — the hybrid experiment of §5.
	MedianOfMediansHybrid
	// BucketBasedHybrid is Alg. 2 with randomized sequential kernels.
	BucketBasedHybrid
)

// Algorithms lists the paper's four primary algorithms.
var Algorithms = []Algorithm{MedianOfMedians, BucketBased, Randomized, FastRandomized}

// AllAlgorithms additionally includes the hybrid variants.
var AllAlgorithms = []Algorithm{
	MedianOfMedians, BucketBased, Randomized, FastRandomized,
	MedianOfMediansHybrid, BucketBasedHybrid,
}

// String returns the name used in harness output.
func (a Algorithm) String() string {
	switch a {
	case MedianOfMedians:
		return "mom"
	case BucketBased:
		return "bucket"
	case Randomized:
		return "rand"
	case FastRandomized:
		return "fastrand"
	case MedianOfMediansHybrid:
		return "mom-hybrid"
	case BucketBasedHybrid:
		return "bucket-hybrid"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a selection run. The zero value is usable: it means
// MedianOfMedians with no load balancing and default tuning.
type Options struct {
	// Algorithm picks the parallel selection algorithm.
	Algorithm Algorithm
	// Balancer is applied at the end of every iteration (None disables;
	// BucketBased always behaves as None).
	Balancer balance.Method
	// SampleExponent e sets the fast randomized sample size to n^e per
	// iteration. The paper found 0.6 appropriate; 0 means 0.6.
	SampleExponent float64
	// RankSlack scales the sample-rank window half-width
	// sqrt(|S| ln n) of the fast randomized algorithm. 0 means 1.0.
	RankSlack float64
	// MaxIterations caps the iteration count before falling back to a
	// gather-and-solve (a safety net; unreachable on sane inputs).
	// 0 means 200.
	MaxIterations int
	// Faithful makes the fast randomized algorithm follow the paper's
	// Alg. 4 exactly: the sample is parallel-sorted on every iteration
	// and the rank window uses the uncapped sqrt(|S| ln n) slack. By
	// default (false) small samples (<= 4p^2 keys) are instead gathered
	// on processor 0, which picks the two window keys with two
	// sequential selections, and the slack is capped at |S|/8 — both
	// cheaper, at the price of diverging from the paper's cost profile.
	// The harness sets Faithful to reproduce the paper's figures; the
	// ablate experiment quantifies the difference.
	Faithful bool
	// RecordTrace appends one IterTrace per pivot iteration to
	// Stats.Trace (costs memory only; simulated time is unaffected).
	RecordTrace bool
	// ElemBytes is the wire size of one key. 0 means 8 (int64 keys).
	ElemBytes int
	// BorrowedInput marks local as caller-owned memory that must not be
	// mutated: Select copies it into the processor's arena (host cost
	// only — simulated metrics are unchanged) before partitioning.
	// Callers that hand over ownership leave it false and save the copy.
	BorrowedInput bool
}

// withDefaults fills in zero-valued tuning knobs.
func (o Options) withDefaults() Options {
	if o.SampleExponent == 0 {
		o.SampleExponent = 0.6
	}
	if o.RankSlack == 0 {
		o.RankSlack = 1.0
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.ElemBytes == 0 {
		o.ElemBytes = machine.WordBytes
	}
	return o
}

// Stats reports what one processor observed during a selection run.
type Stats struct {
	// Iterations is the number of parallel pivot iterations executed.
	Iterations int
	// Unsuccessful counts fast randomized iterations whose sample
	// window missed the target rank (the paper's "unsuccessful"
	// iterations; the §3.4 modification still makes them discard data).
	Unsuccessful int
	// Stalled counts iterations that failed to shrink the population
	// and triggered the single-pivot fallback step.
	Stalled int
	// CapHit records that MaxIterations was reached and the run
	// finished by gathering early.
	CapHit bool
	// PivotExit records that the run ended early because a pivot was
	// proven to be the answer.
	PivotExit bool
	// BalanceSeconds is the simulated time this processor spent inside
	// load balancing.
	BalanceSeconds float64
	// FinalGatherElems is the number of elements gathered for the
	// sequential finish (set on processor 0 only).
	FinalGatherElems int64
	// Trace holds one record per iteration when Options.RecordTrace is
	// set.
	Trace []IterTrace
}

// IterTrace describes the state at the end of one pivot iteration on
// this processor.
type IterTrace struct {
	// Population is the global number of surviving elements.
	Population int64
	// Rank is the target rank within the surviving population.
	Rank int64
	// Local is this processor's surviving element count.
	Local int
	// SimSeconds is the processor's simulated clock at the end of the
	// iteration.
	SimSeconds float64
	// BalanceSeconds is the cumulative simulated time spent balancing.
	BalanceSeconds float64
}

// record appends a trace entry if tracing is on.
func (st *Stats) record(p *machine.Proc, opts Options, n, rank int64, local int) {
	if !opts.RecordTrace {
		return
	}
	st.Trace = append(st.Trace, IterTrace{
		Population:     n,
		Rank:           rank,
		Local:          local,
		SimSeconds:     p.Now(),
		BalanceSeconds: st.BalanceSeconds,
	})
}

// selector finds the k-th smallest element of a slice in place.
type selector[K cmp.Ordered] func(a []K, k int) (K, int64)

// Select returns the element of 1-based rank among the union of all
// processors' local slices. It must be called collectively; every
// processor receives the same result. local is consumed (permuted and
// possibly redistributed).
func Select[K cmp.Ordered](p *machine.Proc, local []K, rank int64, opts Options) (K, Stats) {
	opts = opts.withDefaults()
	st := &Stats{}
	n := comm.CombineInt64(p, int64(len(local)))
	if n == 0 {
		panic("selection: Select on an empty population")
	}
	if rank < 1 || rank > n {
		panic(fmt.Sprintf("selection: rank %d out of range [1,%d]", rank, n))
	}
	if opts.BorrowedInput {
		local = arenaOf[K](p).copyIn(local)
	}

	det := func(a []K, k int) (K, int64) { return seq.SelectBFPRT(a, k) }
	rnd := func(a []K, k int) (K, int64) { return seq.Quickselect(a, k, p.Local) }

	if p.Procs() == 1 {
		// Single processor: the parallel structure degenerates, solve
		// directly with the algorithm's sequential kernel.
		sel := det
		switch opts.Algorithm {
		case Randomized, FastRandomized, MedianOfMediansHybrid, BucketBasedHybrid:
			sel = rnd
		}
		v, ops := sel(local, int(rank-1))
		p.Charge(ops)
		st.FinalGatherElems = n
		return v, *st
	}

	var res K
	switch opts.Algorithm {
	case MedianOfMedians:
		res = selectMoM(p, local, rank, n, opts, st, det)
	case MedianOfMediansHybrid:
		res = selectMoM(p, local, rank, n, opts, st, rnd)
	case BucketBased:
		res = selectBucket(p, local, rank, n, opts, st, det)
	case BucketBasedHybrid:
		res = selectBucket(p, local, rank, n, opts, st, rnd)
	case Randomized:
		res = selectRandomized(p, local, rank, n, opts, st, rnd)
	case FastRandomized:
		res = selectFastRandomized(p, local, rank, n, opts, st, rnd)
	default:
		panic(fmt.Sprintf("selection: unknown algorithm %d", int(opts.Algorithm)))
	}
	return res, *st
}

// Median returns the element of rank ceil(n/2), the paper's median.
func Median[K cmp.Ordered](p *machine.Proc, local []K, opts Options) (K, Stats) {
	n := comm.CombineInt64(p, int64(len(local)))
	if n == 0 {
		panic("selection: Median of an empty population")
	}
	return Select(p, local, (n+1)/2, opts)
}

// threshold is the population size at which iteration stops and the
// remainder is solved sequentially on processor 0 (the paper's p^2).
func threshold(p *machine.Proc) int64 {
	pp := int64(p.Procs())
	return pp * pp
}

// finalSolve gathers the surviving elements on processor 0, selects the
// rank-th smallest there, and broadcasts the answer.
func finalSolve[K cmp.Ordered](p *machine.Proc, local []K, rank int64, opts Options, st *Stats, sel selector[K]) K {
	ar := arenaOf[K](p)
	all, gbuf := comm.GatherFlatInto(p, 0, local, opts.ElemBytes, ar.gather)
	ar.gather = gbuf
	var res []K
	if p.ID() == 0 {
		st.FinalGatherElems = int64(len(all))
		v, ops := sel(all, int(rank-1))
		p.Charge(ops)
		res = append(ar.kbuf[:0], v)
		ar.kbuf = res
	}
	return comm.BroadcastSlice(p, 0, res, opts.ElemBytes)[0]
}

// counts carries the (less, equal) tallies through a Combine.
type counts struct{ less, eq int64 }

// combineCounts sums per-processor partition tallies across the machine
// (an allocation-free all-reduce of the two tallies in one message per
// tree edge, as the generic Combine of a counts struct was).
func combineCounts(p *machine.Proc, less, eq int64) counts {
	l, e := comm.CombineSumInt64Pair(p, less, eq, 2*machine.WordBytes)
	return counts{l, e}
}

// owned carries a possibly-present value through a Combine so that the
// unique owner of a pivot can deliver it to everyone in one collective.
type owned[K any] struct {
	has bool
	val K
}

// combineOwned resolves the value held by exactly one processor.
func combineOwned[K any](p *machine.Proc, mine owned[K], elemBytes int) K {
	res := comm.Combine(p, mine, elemBytes+1, func(a, b owned[K]) owned[K] {
		if a.has {
			return a
		}
		return b
	})
	if !res.has {
		panic("selection: no processor owned the pivot")
	}
	return res.val
}

// runBalance applies the configured balancer and accounts its simulated
// time on this processor.
func runBalance[K cmp.Ordered](p *machine.Proc, local []K, opts Options, st *Stats) []K {
	if opts.Balancer == balance.None {
		return local
	}
	t0 := p.Now()
	local = balance.RunScratch(p, local, opts.Balancer, opts.ElemBytes, &arenaOf[K](p).bal)
	st.BalanceSeconds += p.Now() - t0
	return local
}

// decide applies the paper's step 6 to three-way counts. It returns the
// side to keep: -1 for the < side, 0 when the pivot is the answer, +1 for
// the > side, along with the updated rank and population.
func decide(rank, n int64, c counts) (side int, newRank, newN int64) {
	switch {
	case rank <= c.less:
		return -1, rank, c.less
	case rank <= c.less+c.eq:
		return 0, rank, n
	default:
		return +1, rank - c.less - c.eq, n - c.less - c.eq
	}
}
