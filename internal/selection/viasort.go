package selection

import (
	"cmp"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/psort"
)

// ViaSort is the brute-force baseline the paper's premise implicitly
// compares against: parallel-sort the entire dataset (PSRS) and read off
// the element at the target rank. It is asymptotically and practically
// inferior to every §3 algorithm — the harness's "sortsel" experiment
// quantifies by how much — but is useful as an oracle and as a baseline
// for benchmarks.
func ViaSort[K cmp.Ordered](p *machine.Proc, local []K, rank int64, opts Options) (K, Stats) {
	opts = opts.withDefaults()
	st := &Stats{}
	n := comm.CombineInt64(p, int64(len(local)))
	if n == 0 {
		panic("selection: ViaSort on an empty population")
	}
	if rank < 1 || rank > n {
		panic("selection: ViaSort rank out of range")
	}
	run := psort.Sort(p, local, opts.ElemBytes)
	st.Iterations = 1
	return psort.RankElement(p, run, rank-1, opts.ElemBytes), *st
}
