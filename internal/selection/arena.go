package selection

import (
	"cmp"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/psort"
)

// Arena holds one simulated processor's reusable scratch memory: the
// copy-in buffer for borrowed caller shards, the per-iteration sample and
// pivot buffers, the gather-tree staging buffer, and the nested balance
// and sample-sort scratches. It is parked in machine.Proc.Scratch, so a
// long-lived machine serves repeated selections without per-call
// allocation. Buffers grow on demand and are never shrunk.
//
// Reuse safety: every buffer is written by exactly one processor and is
// re-filled only after a full collective (Combine, gather + broadcast) has
// synchronized all processors, which is when any cross-processor aliases
// created by the zero-copy message layer are guaranteed drained.
type Arena[K cmp.Ordered] struct {
	local   []K    // copy-in buffer for borrowed caller shards
	sample  []K    // fast randomized per-iteration sample
	gather  []K    // gather-tree staging / root gather target
	kbuf    []K    // tiny pivot and window-key slices (1–2 elements)
	win     [3][]K // rotating targets for the out-of-place filter kernels
	wts     []int64
	wgather []int64
	bal     balance.Scratch[K]
	sort    psort.Scratch[K]

	// Multi-rank (SelectMany) scratch: the result values, the root's
	// per-segment answer staging, the segment work list, and bump slabs
	// carving the per-segment rank/position lists.
	many   []K
	mvals  []K
	msegs  []multiSeg[K]
	mranks slab[int64]
	mouts  slab[int]
}

// slab is a bump allocator over one growable backing array. Chunks are
// carved with full capacity bounds, so appends within a chunk can never
// bleed into a neighbour; when the backing array is exhausted a fresh
// one is allocated (previously carved chunks keep the old array alive
// until the run ends). reset recycles the high-water backing, making
// steady-state carving allocation-free.
type slab[T any] struct {
	buf []T
	off int
}

// reset recycles the backing array for a new run.
func (s *slab[T]) reset() { s.off = 0 }

// take carves a zero-length chunk with capacity n.
func (s *slab[T]) take(n int) []T {
	if s.off+n > len(s.buf) {
		grown := 2 * len(s.buf)
		if grown < n {
			grown = n
		}
		if grown < 64 {
			grown = 64
		}
		s.buf = make([]T, grown)
		s.off = 0
	}
	chunk := s.buf[s.off : s.off : s.off+n]
	s.off += n
	return chunk
}

// arenaOf returns the processor's arena, creating and parking it in
// Proc.Scratch on first use. One machine always serves one key type
// through the public API, so the type assertion never churns.
func arenaOf[K cmp.Ordered](p *machine.Proc) *Arena[K] {
	if a, ok := p.Scratch.(*Arena[K]); ok {
		return a
	}
	a := &Arena[K]{}
	p.Scratch = a
	return a
}

// copyIn copies borrowed caller data into the arena so the algorithms can
// permute and migrate it freely. The copy is host work only — the
// simulated model never charged for the entry copy and still does not.
func (a *Arena[K]) copyIn(data []K) []K {
	a.local = append(a.local[:0], data...)
	return a.local
}
