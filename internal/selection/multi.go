package selection

import (
	"cmp"
	"fmt"
	"slices"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// multiSeg is one disjoint population segment of a SelectMany run: this
// processor's share of the segment's data, the segment's global
// population, and the target ranks (with their result positions) that
// fall inside it. The ranks and out slices are carved from the arena's
// bump slabs.
type multiSeg[K cmp.Ordered] struct {
	data  []K     // this processor's share of the segment
	n     int64   // global population of the segment
	ranks []int64 // target ranks within the segment, ascending
	out   []int   // result positions, aligned with ranks
}

// SelectMany returns the elements at the given 1-based ranks (in the
// order requested; duplicate ranks are allowed), sharing partitioning
// work across the ranks instead of running one selection per rank. It is
// the natural extension of the paper's randomized algorithm to
// simultaneous quantile extraction (e.g. all three quartiles in roughly
// one selection's work).
//
// The algorithm maintains a work list of disjoint population segments,
// each carrying the ranks that fall inside it. Every step partitions one
// segment with a shared random pivot; ranks hitting the pivot resolve
// immediately, the others split between the two sides, and segments at
// or below the p^2 threshold are gathered on processor 0 and solved
// together. Load balancing is not applied (segments alias one another's
// storage), so Options.Balancer is ignored.
//
// The returned slice is backed by the processor's arena and is valid
// until the next selection on the same machine.
func SelectMany[K cmp.Ordered](p *machine.Proc, local []K, ranks []int64, opts Options) ([]K, Stats) {
	opts = opts.withDefaults()
	st := &Stats{}
	n := comm.CombineInt64(p, int64(len(local)))
	if n == 0 {
		panic("selection: SelectMany on an empty population")
	}
	for _, r := range ranks {
		if r < 1 || r > n {
			panic(fmt.Sprintf("selection: rank %d out of range [1,%d]", r, n))
		}
	}
	ar := arenaOf[K](p)
	ar.mranks.reset()
	ar.mouts.reset()
	if cap(ar.many) < len(ranks) {
		ar.many = make([]K, len(ranks))
	}
	results := ar.many[:len(ranks)]
	if len(ranks) == 0 {
		return results, *st
	}
	if opts.BorrowedInput {
		local = ar.copyIn(local)
	}

	// Sort the rank set once, remembering result positions.
	order := ar.mouts.take(len(ranks))
	for i := 0; i < len(ranks); i++ {
		order = append(order, i)
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(ranks[a], ranks[b]) })

	first := multiSeg[K]{data: local, n: n, ranks: ar.mranks.take(len(order)), out: order}
	for _, idx := range order {
		first.ranks = append(first.ranks, ranks[idx])
	}
	queue := append(ar.msegs[:0], first)
	defer func() { ar.msegs = queue[:0] }()
	thr := threshold(p)

	for len(queue) > 0 {
		seg := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if seg.n <= thr || st.Iterations >= opts.MaxIterations || p.Procs() == 1 {
			if st.Iterations >= opts.MaxIterations {
				st.CapHit = true
			}
			// Gather the whole segment once and answer all its ranks.
			// Arena reuse across segments is safe: before either buffer
			// is refilled, the root has received from every processor
			// (gather tree) and every processor has received from the
			// root (broadcast), so all cross-processor aliases of the
			// previous segment's buffers are drained.
			all, gbuf := comm.GatherFlatInto(p, 0, seg.data, opts.ElemBytes, ar.gather)
			ar.gather = gbuf
			var vals []K
			if p.ID() == 0 {
				st.FinalGatherElems += int64(len(all))
				p.Charge(seq.Sort(all))
				if cap(ar.mvals) < len(seg.ranks) {
					ar.mvals = make([]K, len(seg.ranks))
				}
				vals = ar.mvals[:len(seg.ranks)]
				for i, r := range seg.ranks {
					vals[i] = all[r-1]
				}
			}
			vals = comm.BroadcastSlice(p, 0, vals, opts.ElemBytes)
			for i, pos := range seg.out {
				results[pos] = vals[i]
			}
			continue
		}

		st.Iterations++
		// One shared-pivot partition step (as in Alg. 3).
		ni := int64(len(seg.data))
		s := comm.PrefixSumInt64(p, ni)
		nr := p.Shared.Int64N(seg.n)
		mine := owned[K]{}
		if nr >= s-ni && nr < s {
			mine = owned[K]{has: true, val: seg.data[nr-(s-ni)]}
		}
		piv := combineOwned(p, mine, opts.ElemBytes)
		lt, eq, ops := seq.Partition3(seg.data, piv)
		p.Charge(ops)
		c := combineCounts(p, int64(lt), int64(eq))

		// Distribute the segment's ranks across the three regions. The
		// split sizes are counted first so each side gets an exactly
		// sized slab chunk.
		nLo, nHi := 0, 0
		for _, r := range seg.ranks {
			switch {
			case r <= c.less:
				nLo++
			case r > c.less+c.eq:
				nHi++
			}
		}
		lo := multiSeg[K]{data: seg.data[:lt], n: c.less,
			ranks: ar.mranks.take(nLo), out: ar.mouts.take(nLo)}
		hi := multiSeg[K]{data: seg.data[lt+eq:], n: seg.n - c.less - c.eq,
			ranks: ar.mranks.take(nHi), out: ar.mouts.take(nHi)}
		for i, r := range seg.ranks {
			switch {
			case r <= c.less:
				lo.ranks = append(lo.ranks, r)
				lo.out = append(lo.out, seg.out[i])
			case r <= c.less+c.eq:
				results[seg.out[i]] = piv
			default:
				hi.ranks = append(hi.ranks, r-c.less-c.eq)
				hi.out = append(hi.out, seg.out[i])
			}
		}
		if len(lo.ranks) > 0 {
			queue = append(queue, lo)
		}
		if len(hi.ranks) > 0 {
			queue = append(queue, hi)
		}
	}
	return results, *st
}
