package selection

import (
	"cmp"

	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// randomizedStep performs one iteration of Alg. 3: all processors draw
// the same uniform position nr in [0, n) from the shared random stream, a
// parallel prefix identifies the processor holding the nr-th element in
// processor order, that element becomes the pivot, and the usual
// partition/Combine/discard follows.
//
// It returns the surviving local slice, updated rank and population, and
// (done, answer) when the pivot itself was proven to be the answer.
func randomizedStep[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options) (newLocal []K, newRank, newN int64, answer K, done bool) {
	// Steps 0–1: sizes and their parallel prefix.
	ni := int64(len(local))
	s := comm.PrefixSumInt64(p, ni)

	// Step 2: the shared stream yields the same nr everywhere.
	nr := p.Shared.Int64N(n)

	// Step 3: the owner contributes the pivot.
	mine := owned[K]{}
	if nr >= s-ni && nr < s {
		mine = owned[K]{has: true, val: local[nr-(s-ni)]}
	}
	piv := combineOwned(p, mine, opts.ElemBytes)

	// Step 4: partition. This stays a true three-way partition rather
	// than the count-then-compact of the other algorithms: the next
	// pivot is drawn by global *position*, so the survivors' order
	// feeds back into the pivot sequence, and the partition's exact
	// permutation is part of the reproducible trajectory.
	lt, eq, ops := seq.Partition3(local, piv)
	p.Charge(ops)

	// Steps 5–6: tallies and decision.
	c := combineCounts(p, int64(lt), int64(eq))
	side, newRank, newN := decide(rank, n, c)
	switch side {
	case -1:
		return local[:lt], newRank, newN, piv, false
	case 0:
		return local, rank, n, piv, true
	default:
		return local[lt+eq:], newRank, newN, piv, false
	}
}

// selectRandomized is Alg. 3, the parallel randomized (Floyd–Rivest
// style) selection: expected O(log n) single-pivot iterations.
func selectRandomized[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options, st *Stats, sel selector[K]) K {
	thr := threshold(p)
	for n > thr {
		if st.Iterations >= opts.MaxIterations {
			st.CapHit = true
			break
		}
		st.Iterations++

		var piv K
		var done bool
		local, rank, n, piv, done = randomizedStep(p, local, rank, n, opts)
		if done {
			st.PivotExit = true
			return piv
		}

		// Step 7: rebalance the survivors.
		local = runBalance(p, local, opts, st)
		st.record(p, opts, n, rank, len(local))
	}
	// Steps 8–9 (labelled 7–8 in the paper's listing): gather and solve.
	return finalSolve(p, local, rank, opts, st, sel)
}
