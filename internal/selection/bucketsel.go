package selection

import (
	"cmp"

	"parsel/internal/bucket"
	"parsel/internal/comm"
	"parsel/internal/machine"
	"parsel/internal/seq"
)

// selectBucket is Alg. 2, the bucket-based algorithm. Local data is
// preprocessed into O(log p) inter-ordered buckets (step 0), after which
// each iteration's local median and partition touch roughly one bucket.
// Because processors keep unequal populations (there is no load
// balancing), the estimated median is the *weighted* median of the local
// medians, each weighted by its processor's surviving element count,
// which preserves the guaranteed-fraction discard.
func selectBucket[K cmp.Ordered](p *machine.Proc, local []K, rank, n int64, opts Options, st *Stats, sel selector[K]) K {
	ar := arenaOf[K](p)
	// Step 0: bucket preprocessing.
	tab, ops := bucket.Build(local, bucket.NumBuckets(p.Procs()), bucket.Selector[K](sel))
	p.Charge(ops)

	thr := threshold(p)
	for n > thr {
		if st.Iterations >= opts.MaxIterations {
			st.CapHit = true
			break
		}
		st.Iterations++

		// Step 1: local median among the surviving elements, via the
		// bucket search.
		ni := tab.Remaining()
		var meds []K
		var wts []int64
		if ni > 0 {
			m, o := tab.Select(seq.MedianIndex(ni))
			p.Charge(o)
			meds = append(ar.kbuf[:0], m)
			ar.kbuf = meds
			wts = append(ar.wts[:0], int64(ni))
			ar.wts = wts
		}

		// Steps 2–3: gather (median, weight) pairs on P0, compute the
		// weighted median of medians, broadcast it.
		ms, gbuf := comm.GatherFlatInto(p, 0, meds, opts.ElemBytes, ar.gather)
		ar.gather = gbuf
		qs, wbuf := comm.GatherFlatInto(p, 0, wts, machine.WordBytes, ar.wgather)
		ar.wgather = wbuf
		var pivS []K
		if p.ID() == 0 {
			wm, o := seq.WeightedMedian(ms, qs)
			p.Charge(o)
			pivS = append(ar.kbuf[:0], wm)
			ar.kbuf = pivS
		}
		piv := comm.BroadcastSlice(p, 0, pivS, opts.ElemBytes)[0]

		// Step 4: partition against the estimate inside the straddling
		// bucket(s) only.
		less, eq, o := tab.Count(piv)
		p.Charge(o)

		// Steps 5–6: global tallies and the discard decision.
		c := combineCounts(p, less, eq)
		side, newRank, newN := decide(rank, n, c)
		switch side {
		case -1:
			tab.KeepLess()
		case 0:
			st.PivotExit = true
			return piv
		case +1:
			tab.KeepGreater()
		}
		rank, n = newRank, newN
		st.record(p, opts, n, rank, tab.Remaining())
	}
	// Steps 7–8: gather the survivors and solve sequentially.
	ar.sample = tab.Collect(ar.sample[:0])
	return finalSolve(p, ar.sample, rank, opts, st, sel)
}
