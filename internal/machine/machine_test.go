package machine

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestDefaultParamsValidate(t *testing.T) {
	for _, p := range []int{1, 2, 3, 64, 128} {
		if err := DefaultParams(p).Validate(); err != nil {
			t.Errorf("DefaultParams(%d) invalid: %v", p, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero procs", func(p *Params) { p.Procs = 0 }},
		{"negative procs", func(p *Params) { p.Procs = -3 }},
		{"negative tau", func(p *Params) { p.TauSec = -1 }},
		{"negative mu", func(p *Params) { p.MuSecPerByte = -1 }},
		{"negative op cost", func(p *Params) { p.SecPerOp = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params := DefaultParams(4)
			tc.mut(&params)
			if err := params.Validate(); err == nil {
				t.Fatal("expected validation error, got nil")
			}
			if _, err := New(params); err == nil {
				t.Fatal("New accepted invalid params")
			}
		})
	}
}

func TestRunAllProcessorsExecute(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 17} {
		var count int64
		seen := make([]int64, p)
		_, err := Run(DefaultParams(p), func(pr *Proc) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt64(&seen[pr.ID()], 1)
			if pr.Procs() != p {
				t.Errorf("Procs() = %d, want %d", pr.Procs(), p)
			}
		})
		if err != nil {
			t.Fatalf("Run(p=%d): %v", p, err)
		}
		if count != int64(p) {
			t.Fatalf("Run(p=%d) executed %d bodies", p, count)
		}
		for id, c := range seen {
			if c != 1 {
				t.Errorf("processor %d ran %d times", id, c)
			}
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	_, err := Run(DefaultParams(3), func(pr *Proc) {
		if pr.ID() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error from panicking processor")
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	params := DefaultParams(1)
	_, err := Run(params, func(pr *Proc) {
		pr.Charge(1000)
		want := 1000 * params.SecPerOp
		if math.Abs(pr.Now()-want) > 1e-15 {
			t.Errorf("Now() = %g, want %g", pr.Now(), want)
		}
		if pr.Counters.Ops != 1000 {
			t.Errorf("Ops = %d, want 1000", pr.Counters.Ops)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargeSecondsAndAdvanceTo(t *testing.T) {
	_, err := Run(DefaultParams(1), func(pr *Proc) {
		pr.ChargeSeconds(0.5)
		pr.AdvanceTo(0.25) // in the past: no-op
		if pr.Now() != 0.5 {
			t.Errorf("Now() = %g, want 0.5", pr.Now())
		}
		pr.AdvanceTo(0.75)
		if pr.Now() != 0.75 {
			t.Errorf("Now() = %g, want 0.75", pr.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvPayloadAndTiming(t *testing.T) {
	params := DefaultParams(2)
	const bytes = 800
	sim, err := Run(params, func(pr *Proc) {
		switch pr.ID() {
		case 0:
			pr.Send(1, 7, []int64{1, 2, 3}, bytes)
			wantSender := params.TauSec + params.MuSecPerByte*bytes
			if math.Abs(pr.Now()-wantSender) > 1e-12 {
				t.Errorf("sender clock %g, want %g", pr.Now(), wantSender)
			}
		case 1:
			got := pr.Recv(0, 7).([]int64)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("payload = %v", got)
			}
			// Receiver: arrival (tau + mu*b) + drain (mu*b).
			want := params.TauSec + 2*params.MuSecPerByte*bytes
			if math.Abs(pr.Now()-want) > 1e-12 {
				t.Errorf("receiver clock %g, want %g", pr.Now(), want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSim := params.TauSec + 2*params.MuSecPerByte*bytes
	if math.Abs(sim-wantSim) > 1e-12 {
		t.Errorf("sim time %g, want %g", sim, wantSim)
	}
}

func TestSendToSelfIsFree(t *testing.T) {
	_, err := Run(DefaultParams(1), func(pr *Proc) {
		pr.Send(0, 3, 42, 8)
		got := pr.Recv(0, 3).(int)
		if got != 42 {
			t.Errorf("self payload = %d", got)
		}
		if pr.Now() != 0 {
			t.Errorf("self send advanced clock to %g", pr.Now())
		}
		if pr.Counters.MsgsSent != 0 || pr.Counters.MsgsReceived != 0 {
			t.Errorf("self send counted as network traffic: %+v", pr.Counters)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesOrderedPerPair(t *testing.T) {
	_, err := Run(DefaultParams(2), func(pr *Proc) {
		const k = 100
		if pr.ID() == 0 {
			for i := 0; i < k; i++ {
				pr.Send(1, i, i, 8)
			}
		} else {
			for i := 0; i < k; i++ {
				if got := pr.Recv(0, i).(int); got != i {
					t.Errorf("message %d arrived out of order: %d", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	_, err := Run(DefaultParams(2), func(pr *Proc) {
		if pr.ID() == 0 {
			pr.Send(1, 1, nil, 0)
		} else {
			pr.Recv(0, 2)
		}
	})
	if err == nil {
		t.Fatal("expected tag mismatch to surface as error")
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	_, err := Run(DefaultParams(2), func(pr *Proc) {
		if pr.ID() == 0 {
			pr.Send(1, 0, nil, 100)
			pr.Send(1, 1, nil, 50)
			if pr.Counters.MsgsSent != 2 || pr.Counters.BytesSent != 150 {
				t.Errorf("sender counters %+v", pr.Counters)
			}
		} else {
			pr.Recv(0, 0)
			pr.Recv(0, 1)
			if pr.Counters.MsgsReceived != 2 || pr.Counters.BytesReceived != 150 {
				t.Errorf("receiver counters %+v", pr.Counters)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{MsgsSent: 1, BytesSent: 2, MsgsReceived: 3, BytesReceived: 4, Ops: 5}
	b := Counters{MsgsSent: 10, BytesSent: 20, MsgsReceived: 30, BytesReceived: 40, Ops: 50}
	a.Add(b)
	want := Counters{MsgsSent: 11, BytesSent: 22, MsgsReceived: 33, BytesReceived: 44, Ops: 55}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestSharedRNGIdenticalAcrossProcessors(t *testing.T) {
	const p = 8
	draws := make([][]uint64, p)
	_, err := Run(DefaultParams(p), func(pr *Proc) {
		seq := make([]uint64, 16)
		for i := range seq {
			seq[i] = pr.Shared.Uint64()
		}
		draws[pr.ID()] = seq
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id < p; id++ {
		for i := range draws[0] {
			if draws[id][i] != draws[0][i] {
				t.Fatalf("shared stream diverges at proc %d draw %d", id, i)
			}
		}
	}
}

func TestLocalRNGDiffersAcrossProcessors(t *testing.T) {
	const p = 4
	first := make([]uint64, p)
	_, err := Run(DefaultParams(p), func(pr *Proc) {
		first[pr.ID()] = pr.Local.Uint64()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if first[i] == first[j] {
				t.Errorf("local streams of %d and %d coincide", i, j)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, []uint64) {
		vals := make([]uint64, 4)
		sim, err := Run(DefaultParams(4), func(pr *Proc) {
			v := pr.Local.Uint64()
			pr.Charge(int64(pr.ID()) * 10)
			if pr.ID() == 0 {
				pr.Send(1, 0, v, 8)
			} else if pr.ID() == 1 {
				pr.Recv(0, 0)
			}
			vals[pr.ID()] = v
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim, vals
	}
	sim1, v1 := run()
	sim2, v2 := run()
	if sim1 != sim2 {
		t.Errorf("sim times differ: %g vs %g", sim1, sim2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Errorf("rng draw %d differs across runs", i)
		}
	}
}

func TestSendInvalidDestinationPanics(t *testing.T) {
	_, err := Run(DefaultParams(1), func(pr *Proc) { pr.Send(5, 0, nil, 0) })
	if err == nil {
		t.Fatal("expected panic for invalid destination")
	}
	_, err = Run(DefaultParams(1), func(pr *Proc) { pr.Recv(-1, 0) })
	if err == nil {
		t.Fatal("expected panic for invalid source")
	}
	_, err = Run(DefaultParams(1), func(pr *Proc) { pr.Send(0, 0, nil, -4) })
	if err == nil {
		t.Fatal("expected panic for negative bytes")
	}
	_, err = Run(DefaultParams(1), func(pr *Proc) { pr.Charge(-1) })
	if err == nil {
		t.Fatal("expected panic for negative charge")
	}
	_, err = Run(DefaultParams(1), func(pr *Proc) { pr.ChargeSeconds(-1) })
	if err == nil {
		t.Fatal("expected panic for negative time charge")
	}
}

func TestMachineReuse(t *testing.T) {
	m, err := New(DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		sim, err := m.Run(func(pr *Proc) {
			if pr.ID() == 0 {
				pr.Send(2, round, round, 8)
			}
			if pr.ID() == 2 {
				if got := pr.Recv(0, round).(int); got != round {
					t.Errorf("round %d payload %d", round, got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if sim <= 0 {
			t.Errorf("round %d sim time %g", round, sim)
		}
	}
	if m.Params().Procs != 3 {
		t.Errorf("Params().Procs = %d", m.Params().Procs)
	}
}
