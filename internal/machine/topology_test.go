package machine

import (
	"math"
	"testing"
)

func TestHopsBasics(t *testing.T) {
	for _, topo := range Topologies {
		for _, p := range []int{2, 4, 16, 64} {
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					h := topo.Hops(src, dst, p)
					switch {
					case src == dst && h != 0:
						t.Fatalf("%v: Hops(%d,%d)=%d, want 0", topo, src, dst, h)
					case src != dst && h < 1:
						t.Fatalf("%v: Hops(%d,%d)=%d, want >=1", topo, src, dst, h)
					}
					// Symmetric.
					if rev := topo.Hops(dst, src, p); rev != h {
						t.Fatalf("%v: asymmetric hops %d vs %d", topo, h, rev)
					}
					// Bounded by the diameter.
					if h > topo.Diameter(p) {
						t.Fatalf("%v p=%d: Hops(%d,%d)=%d exceeds diameter %d",
							topo, p, src, dst, h, topo.Diameter(p))
					}
				}
			}
		}
	}
}

func TestHopsKnownValues(t *testing.T) {
	cases := []struct {
		topo     Topology
		src, dst int
		p        int
		want     int
	}{
		{Crossbar, 0, 63, 64, 1},
		{Hypercube, 0, 63, 64, 6}, // 111111
		{Hypercube, 5, 6, 64, 2},  // 101 ^ 110 = 011
		{Mesh2D, 0, 63, 64, 14},   // (0,0) -> (7,7) on 8x8
		{Mesh2D, 0, 9, 64, 2},     // (0,0) -> (1,1)
		{Ring, 0, 1, 64, 1},
		{Ring, 0, 63, 64, 1}, // wraps
		{Ring, 0, 32, 64, 32},
	}
	for _, tc := range cases {
		if got := tc.topo.Hops(tc.src, tc.dst, tc.p); got != tc.want {
			t.Errorf("%v.Hops(%d,%d,%d) = %d, want %d", tc.topo, tc.src, tc.dst, tc.p, got, tc.want)
		}
	}
}

func TestDiameters(t *testing.T) {
	cases := []struct {
		topo Topology
		p    int
		want int
	}{
		{Crossbar, 128, 1},
		{Hypercube, 128, 7},
		{Mesh2D, 64, 14},
		{Ring, 64, 32},
		{Ring, 1, 0},
	}
	for _, tc := range cases {
		if got := tc.topo.Diameter(tc.p); got != tc.want {
			t.Errorf("%v.Diameter(%d) = %d, want %d", tc.topo, tc.p, got, tc.want)
		}
	}
}

func TestTopologyStrings(t *testing.T) {
	for _, topo := range Topologies {
		if topo.String() == "" {
			t.Errorf("topology %d unnamed", int(topo))
		}
	}
	if Topology(9).String() != "Topology(9)" {
		t.Errorf("unknown topology name %q", Topology(9).String())
	}
}

func TestPerHopCostCharged(t *testing.T) {
	// On a 64-node ring, a message to the opposite side must cost 31
	// extra hops; on the crossbar none.
	base := DefaultParams(64)
	ring := base
	ring.Topology = Ring
	ring.PerHopSec = 1e-6

	run := func(params Params) float64 {
		sim, err := Run(params, func(pr *Proc) {
			if pr.ID() == 0 {
				pr.Send(32, 0, nil, 8)
			}
			if pr.ID() == 32 {
				pr.Recv(0, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	cross := run(base)
	far := run(ring)
	wantExtra := 31e-6
	if math.Abs((far-cross)-wantExtra) > 1e-12 {
		t.Errorf("ring extra cost = %g, want %g", far-cross, wantExtra)
	}
}

func TestPerHopDefaultsForNonCrossbar(t *testing.T) {
	params := DefaultParams(16)
	params.Topology = Mesh2D
	// PerHopSec deliberately zero: should default to Tau/20.
	sim, err := Run(params, func(pr *Proc) {
		if pr.ID() == 0 {
			pr.Send(15, 0, nil, 0) // (0,0)->(3,3): 6 hops, 5 extra
		}
		if pr.ID() == 15 {
			pr.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := params.TauSec + 5*params.TauSec/20
	if math.Abs(sim-want) > 1e-12 {
		t.Errorf("mesh default per-hop sim = %g, want %g", sim, want)
	}
}

func TestValidateTopology(t *testing.T) {
	params := DefaultParams(4)
	params.Topology = Topology(9)
	if err := params.Validate(); err == nil {
		t.Error("unknown topology accepted")
	}
	params = DefaultParams(4)
	params.PerHopSec = -1
	if err := params.Validate(); err == nil {
		t.Error("negative per-hop accepted")
	}
}
