// Package machine simulates a coarse-grained distributed-memory parallel
// computer of the kind the paper targets (CM-5, SP-2, Paragon, T3D): p
// relatively powerful processors connected by an interconnection network
// that behaves like a virtual crossbar.
//
// Each simulated processor is a goroutine executing the same SPMD program.
// Point-to-point messages travel over Go channels, so programs written
// against this package really run in parallel; in addition, every processor
// carries a simulated clock advanced according to the paper's two-level
// model of computation:
//
//   - sending a message of b bytes costs tau + mu*b on the sender,
//   - the message arrives at the sender's post-send time, and the receiver
//     pays a further mu*b to drain it off its node interface,
//   - local computation costs ops*cyclesPerOp/clockHz, where ops are
//     operation counts reported by the sequential kernels.
//
// Simulated time is deterministic for a fixed seed and processor count,
// independent of the host machine, which is what lets a laptop reproduce
// the shape of 128-processor CM-5 curves.
package machine

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// WordBytes is the size of one data element (int64 keys) on the wire.
const WordBytes = 8

// Params describes the simulated machine. The zero value is not useful;
// use DefaultParams (CM-5-like constants) or fill in all fields.
type Params struct {
	// Procs is the number of simulated processors (p >= 1).
	Procs int
	// TauSec is the communication start-up overhead in seconds (the
	// paper's tau). CM-5 CMMD start-up is on the order of 100 us.
	TauSec float64
	// MuSecPerByte is the inverse data-transfer rate in seconds per byte
	// (the paper's mu = 1/rate). CM-5 per-node bandwidth is ~8 MB/s.
	MuSecPerByte float64
	// SecPerOp is the simulated cost of one element-level operation
	// (comparison, move, arithmetic step) as counted by the sequential
	// kernels. The CM-5 default assumes ~10 cycles per counted op on a
	// 33 MHz SPARC: selection kernels stream multi-hundred-KB working
	// sets that do not fit the node cache, so loads dominate.
	SecPerOp float64
	// Seed feeds all deterministic random streams on the machine.
	Seed uint64
	// Topology prices messages with a per-hop latency on top of the
	// two-level model: cost = Tau + PerHopSec*(hops-1) + Mu*bytes. The
	// zero value (Crossbar) is the paper's distance-independent model.
	Topology Topology
	// PerHopSec is the extra latency per hop beyond the first. Zero
	// with a non-crossbar topology defaults to Tau/20, a
	// wormhole-routing-like small per-hop cost.
	PerHopSec float64
}

// DefaultParams returns CM-5-like machine constants for p processors:
// tau = 100 microseconds, bandwidth = 8 MB/s, and a 33 MHz processor
// retiring one counted operation every 10 cycles (memory-bound kernels;
// see Params.SecPerOp).
func DefaultParams(p int) Params {
	return Params{
		Procs:        p,
		TauSec:       100e-6,
		MuSecPerByte: 0.125e-6,
		SecPerOp:     10.0 / 33e6,
		Seed:         1,
	}
}

// Validate reports whether the parameters describe a runnable machine.
func (pr Params) Validate() error {
	switch {
	case pr.Procs < 1:
		return fmt.Errorf("machine: Procs must be >= 1, got %d", pr.Procs)
	case pr.TauSec < 0:
		return fmt.Errorf("machine: TauSec must be >= 0, got %g", pr.TauSec)
	case pr.MuSecPerByte < 0:
		return fmt.Errorf("machine: MuSecPerByte must be >= 0, got %g", pr.MuSecPerByte)
	case pr.SecPerOp < 0:
		return fmt.Errorf("machine: SecPerOp must be >= 0, got %g", pr.SecPerOp)
	case pr.PerHopSec < 0:
		return fmt.Errorf("machine: PerHopSec must be >= 0, got %g", pr.PerHopSec)
	case pr.Topology < Crossbar || pr.Topology > Ring:
		return fmt.Errorf("machine: unknown topology %d", int(pr.Topology))
	}
	return nil
}

// hopCost returns the extra latency of a message from src to dst beyond
// the first hop.
func (pr Params) hopCost(src, dst int) float64 {
	if pr.Topology == Crossbar {
		return 0
	}
	perHop := pr.PerHopSec
	if perHop == 0 {
		perHop = pr.TauSec / 20
	}
	h := pr.Topology.Hops(src, dst, pr.Procs)
	if h <= 1 {
		return 0
	}
	return perHop * float64(h-1)
}

// message is a point-to-point payload with simulated arrival time. Small
// integer payloads travel in the inline i64 array and int64 slices in the
// typed i64s field, so the hot collectives (counts, prefix sums, tallies)
// never box values into the payload interface.
type message struct {
	tag     int
	payload any
	i64     [2]int64
	i64s    []int64
	bytes   int
	arrive  float64 // simulated time at which the message is available
}

// job is one processor's share of an SPMD run, handed to a parked worker.
type job struct {
	proc *Proc
	body func(*Proc)
	done chan<- int
}

// run executes the job body, trapping panics on the proc.
func (j job) run() {
	defer func() {
		j.proc.panicVal = recover()
		j.done <- j.proc.id
	}()
	j.body(j.proc)
}

// pool is the set of parked worker goroutines serving a machine. It is a
// separate allocation holding no reference back to the Machine, so a
// runtime cleanup can shut the workers down once the machine itself
// becomes unreachable (callers that forget Close do not leak goroutines).
type pool struct {
	jobs []chan job
	once sync.Once
}

// shutdown closes the work channels, releasing the parked workers.
func (pl *pool) shutdown() {
	pl.once.Do(func() {
		for _, c := range pl.jobs {
			close(c)
		}
	})
}

// worker serves one processor slot: it parks on the job channel and runs
// each submitted body to completion. It deliberately drops the job value
// after each run so an idle pool holds no reference to the machine.
func worker(jobs <-chan job) {
	for {
		j, ok := <-jobs
		if !ok {
			return
		}
		j.run()
		j = job{}
		_ = j
	}
}

// Machine owns the channel fabric connecting the simulated processors and
// a pool of parked goroutines, one per processor. Constructing a Machine
// once and calling Run repeatedly amortizes the fabric allocation, the
// goroutine spawns, and (through Proc.Scratch) all per-processor scratch
// memory across calls.
type Machine struct {
	params Params
	// links[src*p+dst] carries messages from src to dst in FIFO order,
	// which models the virtual crossbar: one dedicated, uncongested
	// channel per ordered processor pair.
	links []chan message
	procs []*Proc
	pl    *pool
	done  chan int
	// dirty is set when a run ended in a panic and residual messages may
	// be parked in the links; the next run drains them first.
	dirty  bool
	closed bool
	// running asserts single-flight ownership: a machine serves one Run
	// at a time, and a second concurrent Run is reported as an error
	// instead of corrupting the fabric.
	running atomic.Bool
}

// New allocates the channel fabric for a machine with the given parameters
// and parks one worker goroutine per processor. Call Close when done with
// the machine; a runtime cleanup releases the workers of machines that are
// dropped without Close.
func New(params Params) (*Machine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := params.Procs
	m := &Machine{
		params: params,
		links:  make([]chan message, p*p),
		procs:  make([]*Proc, p),
		pl:     &pool{jobs: make([]chan job, p)},
		done:   make(chan int, p),
	}
	for i := range m.links {
		// Generous buffering keeps senders non-blocking in the common
		// case; simulated time, not channel backpressure, is the model.
		m.links[i] = make(chan message, 64)
	}
	seed := params.Seed
	for id := 0; id < p; id++ {
		m.procs[id] = &Proc{
			m:         m,
			id:        id,
			p:         p,
			sharedSrc: rand.NewPCG(seed, sharedStream),
			localSrc:  rand.NewPCG(seed, uint64(id)+1),
		}
		// Shared stream: identical on every processor (same seed), used
		// where the paper requires all processors to draw the same
		// random number (Alg. 3 step 2). Local stream: unique per
		// processor, used for local sampling (Alg. 4 step 1).
		m.procs[id].Shared = rand.New(m.procs[id].sharedSrc)
		m.procs[id].Local = rand.New(m.procs[id].localSrc)
		m.pl.jobs[id] = make(chan job, 1)
		go worker(m.pl.jobs[id])
	}
	runtime.AddCleanup(m, func(pl *pool) { pl.shutdown() }, m.pl)
	return m, nil
}

// sharedStream is the PCG stream selector of the machine-wide shared RNG.
const sharedStream = 0x9e3779b97f4a7c15

// Params returns the machine's parameters.
func (m *Machine) Params() Params { return m.params }

// Close releases the machine's parked worker goroutines. The machine must
// not be used after Close. Closing is optional — unreachable machines are
// cleaned up by the runtime — but deterministic release is cheaper.
func (m *Machine) Close() {
	m.closed = true
	m.pl.shutdown()
}

// Run executes body as an SPMD program: one simulated processor per
// goroutine, each receiving its own *Proc. Run returns once every
// processor has finished. It returns the maximum simulated completion time
// across processors, which corresponds to the parallel running time the
// paper reports.
func Run(params Params, body func(*Proc)) (simSeconds float64, err error) {
	m, err := New(params)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	return m.Run(body)
}

// Run executes body on each simulated processor of m and returns the
// maximum simulated completion time. A machine may be reused for multiple
// consecutive runs, but not concurrently. Each run starts from a pristine
// simulated state: clocks at zero, counters cleared, and random streams
// re-seeded, so repeated runs are bit-identical to one-shot runs.
func (m *Machine) Run(body func(*Proc)) (simSeconds float64, err error) {
	if !m.running.CompareAndSwap(false, true) {
		return 0, fmt.Errorf("machine: concurrent Run on one machine")
	}
	defer m.running.Store(false)
	if m.closed {
		return 0, fmt.Errorf("machine: Run on closed machine")
	}
	if m.dirty {
		m.drainLinks()
		m.dirty = false
	}
	p := m.params.Procs
	for _, proc := range m.procs {
		proc.reset(m.params.Seed)
	}
	for id := 0; id < p; id++ {
		m.pl.jobs[id] <- job{proc: m.procs[id], body: body, done: m.done}
	}
	for i := 0; i < p; i++ {
		<-m.done
	}
	for _, proc := range m.procs {
		if proc.panicVal != nil {
			m.dirty = true
			return 0, fmt.Errorf("machine: processor %d panicked: %v", proc.id, proc.panicVal)
		}
	}
	// Cheap reset audit: a clean SPMD run matches every send with a
	// receive, so residual messages in the fabric mean a protocol bug
	// (mismatched tags or counts) that would corrupt the next run.
	if left := m.residualMessages(); left > 0 {
		m.dirty = true
		return 0, fmt.Errorf("machine: %d residual message(s) left in the fabric after a run", left)
	}
	var max float64
	for _, proc := range m.procs {
		if proc.now > max {
			max = proc.now
		}
	}
	return max, nil
}

// residualMessages counts messages still parked in the links.
func (m *Machine) residualMessages() int {
	left := 0
	for _, link := range m.links {
		left += len(link)
	}
	return left
}

// drainLinks discards messages left in the fabric by a failed run.
func (m *Machine) drainLinks() {
	for _, link := range m.links {
		for {
			select {
			case <-link:
			default:
			}
			if len(link) == 0 {
				break
			}
		}
	}
}

// Proc is a simulated processor's view of the machine: its identity, its
// clock, its random streams, and its communication endpoints. All methods
// are for use only by the goroutine running that processor's SPMD body.
type Proc struct {
	m  *Machine
	id int
	p  int

	now float64 // simulated clock, seconds

	// Shared draws the same sequence on every processor (common seed);
	// Local draws an independent per-processor sequence.
	Shared *rand.Rand
	Local  *rand.Rand

	// Counters accumulates message/byte/op statistics for reporting.
	Counters Counters

	// Scratch is an arbitrary per-processor scratch slot that survives
	// across runs of a reused machine. Higher layers park reusable
	// buffers (arenas) here so repeated runs allocate nothing; the
	// machine itself never touches it beyond keeping it alive.
	Scratch any

	// sharedSrc and localSrc are the retained RNG sources, re-seeded on
	// every run so reused machines replay the exact random streams of a
	// fresh one.
	sharedSrc *rand.PCG
	localSrc  *rand.PCG

	panicVal any // recovered panic of the last run, if any
}

// reset returns the processor to its pristine pre-run state. Scratch is
// deliberately preserved: it holds cross-run arenas.
func (p *Proc) reset(seed uint64) {
	p.now = 0
	p.Counters = Counters{}
	p.panicVal = nil
	p.sharedSrc.Seed(seed, sharedStream)
	p.localSrc.Seed(seed, uint64(p.id)+1)
}

// Counters records communication and computation volume on one processor.
type Counters struct {
	MsgsSent      int64
	BytesSent     int64
	MsgsReceived  int64
	BytesReceived int64
	Ops           int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.MsgsSent += other.MsgsSent
	c.BytesSent += other.BytesSent
	c.MsgsReceived += other.MsgsReceived
	c.BytesReceived += other.BytesReceived
	c.Ops += other.Ops
}

// ID returns the processor's rank in [0, Procs).
func (p *Proc) ID() int { return p.id }

// Procs returns the machine size.
func (p *Proc) Procs() int { return p.p }

// Params returns the machine parameters.
func (p *Proc) Params() Params { return p.m.params }

// Now returns the processor's current simulated time in seconds.
func (p *Proc) Now() float64 { return p.now }

// AdvanceTo moves the clock forward to t (no-op if t is in the past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.now {
		p.now = t
	}
}

// Charge advances the clock by the cost of ops counted element operations.
func (p *Proc) Charge(ops int64) {
	if ops < 0 {
		panic(fmt.Sprintf("machine: negative op charge %d", ops))
	}
	p.Counters.Ops += ops
	p.now += float64(ops) * p.m.params.SecPerOp
}

// ChargeSeconds advances the clock by raw simulated seconds. It is used by
// higher layers that price work directly (rarely; prefer Charge).
func (p *Proc) ChargeSeconds(s float64) {
	if s < 0 {
		panic(fmt.Sprintf("machine: negative time charge %g", s))
	}
	p.now += s
}

// post prices an outgoing message (tau + mu*bytes for remote sends,
// nothing for self-sends), stamps its arrival time, and enqueues it.
func (p *Proc) post(dst int, msg message) {
	if dst < 0 || dst >= p.p {
		panic(fmt.Sprintf("machine: Send to invalid processor %d of %d", dst, p.p))
	}
	if msg.bytes < 0 {
		panic(fmt.Sprintf("machine: Send with negative byte count %d", msg.bytes))
	}
	if dst != p.id {
		pr := p.m.params
		p.now += pr.TauSec + pr.hopCost(p.id, dst) + pr.MuSecPerByte*float64(msg.bytes)
		p.Counters.MsgsSent++
		p.Counters.BytesSent += int64(msg.bytes)
	}
	msg.arrive = p.now
	p.m.links[p.id*p.p+dst] <- msg
}

// take dequeues the next message from src, checks its tag, and advances
// the receiver's clock to the arrival time plus the mu*bytes drain cost.
func (p *Proc) take(src, tag int) message {
	if src < 0 || src >= p.p {
		panic(fmt.Sprintf("machine: Recv from invalid processor %d of %d", src, p.p))
	}
	msg := <-p.m.links[src*p.p+p.id]
	if msg.tag != tag {
		panic(fmt.Sprintf("machine: processor %d expected tag %d from %d, got %d",
			p.id, tag, src, msg.tag))
	}
	if src != p.id {
		p.AdvanceTo(msg.arrive)
		p.now += p.m.params.MuSecPerByte * float64(msg.bytes)
		p.Counters.MsgsReceived++
		p.Counters.BytesReceived += int64(msg.bytes)
	}
	return msg
}

// Send transmits payload (bytes long on the wire) to processor dst with the
// given tag. Per the two-level model the sender pays tau + mu*bytes; the
// message becomes available to dst at the sender's post-send clock.
// Sending to self is allowed and costs nothing (local move is charged by
// the caller as computation, as the paper's analysis does).
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	p.post(dst, message{tag: tag, payload: payload, bytes: bytes})
}

// Recv blocks until the next message from src arrives, checks its tag, and
// returns the payload. The receiver's clock advances to the message arrival
// time plus the mu*bytes cost of draining it off the node interface.
func (p *Proc) Recv(src, tag int) any {
	return p.take(src, tag).payload
}

// SendInt64Pair transmits up to two int64 values without boxing them into
// an interface: the values ride inline in the message struct, so the send
// allocates nothing on the host. Pricing and counters are identical to
// Send with the same bytes.
func (p *Proc) SendInt64Pair(dst, tag int, a, b int64, bytes int) {
	p.post(dst, message{tag: tag, i64: [2]int64{a, b}, bytes: bytes})
}

// RecvInt64Pair receives a message sent with SendInt64Pair.
func (p *Proc) RecvInt64Pair(src, tag int) (int64, int64) {
	msg := p.take(src, tag)
	return msg.i64[0], msg.i64[1]
}

// SendInt64Slice transmits an int64 slice through the typed slice field of
// the message, avoiding the interface boxing of Send. The receiver sees
// the sender's backing array (as with Send of a slice); the usual SPMD
// synchronization rules make that safe.
func (p *Proc) SendInt64Slice(dst, tag int, v []int64, bytes int) {
	p.post(dst, message{tag: tag, i64s: v, bytes: bytes})
}

// RecvInt64Slice receives a message sent with SendInt64Slice.
func (p *Proc) RecvInt64Slice(src, tag int) []int64 {
	return p.take(src, tag).i64s
}
