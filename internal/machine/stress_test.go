package machine

import (
	"sync/atomic"
	"testing"
)

// TestManyMessagesPerPairNoDeadlock pushes far more messages through a
// single ordered pair than the per-link buffer holds; the sender must
// block gracefully and the run must still complete.
func TestManyMessagesPerPairNoDeadlock(t *testing.T) {
	const k = 10000
	var sum int64
	_, err := Run(DefaultParams(2), func(pr *Proc) {
		if pr.ID() == 0 {
			for i := 0; i < k; i++ {
				pr.Send(1, i, i, 8)
			}
		} else {
			for i := 0; i < k; i++ {
				atomic.AddInt64(&sum, int64(pr.Recv(0, i).(int)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(k) * (k - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

// TestAllToAllStorm exercises every ordered pair simultaneously.
func TestAllToAllStorm(t *testing.T) {
	const p = 16
	const rounds = 20
	_, err := Run(DefaultParams(p), func(pr *Proc) {
		me := pr.ID()
		for r := 0; r < rounds; r++ {
			for d := 0; d < p; d++ {
				if d != me {
					pr.Send(d, r, me*1000+r, 8)
				}
			}
			for s := 0; s < p; s++ {
				if s != me {
					got := pr.Recv(s, r).(int)
					if got != s*1000+r {
						t.Errorf("round %d from %d: got %d", r, s, got)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClockMonotonicUnderTraffic checks that simulated clocks never move
// backwards regardless of interleaving.
func TestClockMonotonicUnderTraffic(t *testing.T) {
	const p = 8
	_, err := Run(DefaultParams(p), func(pr *Proc) {
		last := 0.0
		check := func() {
			if pr.Now() < last {
				t.Errorf("proc %d clock moved backwards: %g -> %g", pr.ID(), last, pr.Now())
			}
			last = pr.Now()
		}
		for r := 0; r < 50; r++ {
			dst := (pr.ID() + 1 + r) % p
			src := (pr.ID() - 1 - r%p + 2*p) % p
			if dst != pr.ID() {
				pr.Send(dst, r, nil, 64)
				check()
			}
			if src != pr.ID() {
				pr.Recv(src, r)
				check()
			}
			pr.Charge(int64(r))
			check()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSimTimeIndependentOfHostScheduling runs the same communication
// pattern many times; the simulated result must be bit-identical
// regardless of goroutine interleavings.
func TestSimTimeIndependentOfHostScheduling(t *testing.T) {
	const p = 8
	pattern := func(pr *Proc) {
		for r := 0; r < 10; r++ {
			dst := (pr.ID() + r + 1) % p
			src := (pr.ID() - r - 1 + 10*p) % p
			if dst != pr.ID() {
				pr.Send(dst, r, r, 16)
			}
			if src != pr.ID() {
				pr.Recv(src, r)
			}
			pr.Charge(100)
		}
	}
	first, err := Run(DefaultParams(p), pattern)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		sim, err := Run(DefaultParams(p), pattern)
		if err != nil {
			t.Fatal(err)
		}
		if sim != first {
			t.Fatalf("trial %d: simulated time %g differs from %g", trial, sim, first)
		}
	}
}
