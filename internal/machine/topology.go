package machine

import (
	"fmt"
	"math"
	"math/bits"
)

// Topology selects the interconnection network used to price
// point-to-point messages. The paper's two-level model (§2.1) treats the
// network as a virtual crossbar — a fixed cost independent of distance —
// arguing that wormhole routing makes distance a minor factor. The other
// topologies let that claim be quantified: they add a per-hop latency
// term PerHopSec*(hops-1) to every message, with hop counts taken from
// the named network.
type Topology int

const (
	// Crossbar is the paper's model: cost tau + mu*b regardless of the
	// communicating pair. The default.
	Crossbar Topology = iota
	// Hypercube routes along differing address bits: hops = popcount
	// of src XOR dst (as on the nCUBE 2).
	Hypercube
	// Mesh2D embeds the processors in a near-square grid and routes
	// X-then-Y (as on the Paragon or T3D without the third dimension).
	Mesh2D
	// Ring routes along the shorter arc of a cycle.
	Ring
)

// Topologies lists all supported network shapes.
var Topologies = []Topology{Crossbar, Hypercube, Mesh2D, Ring}

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Crossbar:
		return "crossbar"
	case Hypercube:
		return "hypercube"
	case Mesh2D:
		return "mesh2d"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Hops returns the routing distance between two processors of a p-node
// network under topology t (0 for src == dst, at least 1 otherwise).
func (t Topology) Hops(src, dst, p int) int {
	if src == dst {
		return 0
	}
	switch t {
	case Crossbar:
		return 1
	case Hypercube:
		return bits.OnesCount(uint(src ^ dst))
	case Mesh2D:
		cols := int(math.Ceil(math.Sqrt(float64(p))))
		sr, sc := src/cols, src%cols
		dr, dc := dst/cols, dst%cols
		return absInt(sr-dr) + absInt(sc-dc)
	case Ring:
		d := src - dst
		if d < 0 {
			d = -d
		}
		if p-d < d {
			d = p - d
		}
		return d
	default:
		panic(fmt.Sprintf("machine: unknown topology %d", int(t)))
	}
}

// Diameter returns the maximum hop distance of a p-node network.
func (t Topology) Diameter(p int) int {
	if p <= 1 {
		return 0
	}
	switch t {
	case Crossbar:
		return 1
	case Hypercube:
		return bits.Len(uint(p - 1))
	case Mesh2D:
		cols := int(math.Ceil(math.Sqrt(float64(p))))
		rows := (p + cols - 1) / cols
		return (rows - 1) + (cols - 1)
	case Ring:
		return p / 2
	default:
		panic(fmt.Sprintf("machine: unknown topology %d", int(t)))
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
