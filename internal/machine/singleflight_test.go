package machine

import (
	"strings"
	"testing"
)

// TestRunSingleFlight pins the single-flight ownership assertion: a
// second Run entered while one is in flight errors out instead of
// corrupting the fabric, and the machine keeps working afterwards.
func TestRunSingleFlight(t *testing.T) {
	m, err := New(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := m.Run(func(p *Proc) {
			started <- struct{}{}
			<-release
		})
		done <- err
	}()
	<-started // a processor is inside the body, so the run is in flight

	if _, err := m.Run(func(p *Proc) {}); err == nil ||
		!strings.Contains(err.Error(), "concurrent Run") {
		t.Errorf("concurrent Run: %v, want single-flight error", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatalf("run after single-flight violation: %v", err)
	}
}

// TestResidualMessageAudit pins the cheap reset audit: a run that leaves
// an unmatched message in the fabric is reported as an error, and the
// next run starts from a drained fabric.
func TestResidualMessageAudit(t *testing.T) {
	m, err := New(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	_, err = m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 42, nil, 8) // never received
		}
	})
	if err == nil || !strings.Contains(err.Error(), "residual message") {
		t.Fatalf("leaky run: %v, want residual-message error", err)
	}

	// The audit marked the machine dirty; the next run must drain the
	// leftover message and complete cleanly.
	sim, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, nil, 8)
		} else {
			p.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatalf("run after audit failure: %v", err)
	}
	if sim <= 0 {
		t.Error("no simulated time after recovery")
	}
}
