// Package model encodes the analytic running-time formulas of the
// paper's Table 1 (balanced iterations) and Table 2 (worst case, no load
// balancing) as executable predictions, calibrated to this repository's
// measured kernel constants. The harness prints predictions next to
// simulated measurements so that the tables can be checked as shapes, not
// just as asymptotic strings.
//
// The formulas (Table 1, with load-balanced iterations):
//
//	Median of Medians: O(n/p +  tau log p log n +  mu p log n)
//	Randomized:        O(n/p + (tau+mu) log p log n)
//	Fast Randomized:   O(n/p + (tau+mu) log p log log n)
//
// and Table 2 (worst case, without load balancing):
//
//	Median of Medians: O(n/p log n + tau log p log n + mu p log n)
//	Bucket-Based:      O(n/p (log log p + log n / log p) + tau log p log n + mu p log n)
//	Randomized:        O(n/p log n + (tau+mu) log p log n)
//	Fast Randomized:   O(n/p log log n + (tau+mu) log p log log n)
//
// Constants: the sequential kernels of this repository cost, per element,
// about 19 operations for deterministic (BFPRT) selection, 1.4 for
// Floyd–Rivest selection, 2.5 for a three-way partition pass, and the
// bucket preprocessing about 5.5 per element per level. Those constants,
// times machine.Params.SecPerOp, turn the asymptotic forms into seconds.
package model

import (
	"math"

	"parsel/internal/machine"
	"parsel/internal/selection"
)

// Measured kernel constants (operations per element); see the kernel
// benchmarks in internal/seq.
const (
	opsBFPRT     = 19.0 // deterministic selection
	opsFR        = 1.4  // Floyd–Rivest selection
	opsPartition = 2.5  // one three-way partition pass
	opsBucketLvl = 5.5  // pseudo-median split, per element per level
)

// Predict returns the modelled simulated run time, in seconds, of one
// median selection under the paper's assumptions. worstCase selects the
// Table 2 (sorted input, no balancing) forms; otherwise the Table 1
// (balanced iterations) forms apply.
func Predict(alg selection.Algorithm, n int64, params machine.Params, worstCase bool) float64 {
	p := float64(params.Procs)
	N := float64(n)
	if N < 1 || p < 1 {
		return 0
	}
	logp := math.Max(1, math.Log2(p))
	// Iterations until the population falls to p^2.
	iters := math.Max(1, math.Log2(math.Max(2, N/(p*p))))
	loglogn := math.Max(1, math.Log2(math.Max(2, math.Log2(N))))
	op := params.SecPerOp
	tau := params.TauSec
	word := float64(machine.WordBytes)
	mu := params.MuSecPerByte * word

	// Collective costs per iteration (§2.2): a handful of
	// O((tau+mu) log p) collectives, and for the deterministic
	// algorithms one gather of p medians, O(tau log p + mu p).
	small := (tau + 2*mu) * logp
	gather := tau*logp + 2*mu*p

	// Final sequential solve on p^2 gathered elements.
	finish := gather*p + opsFR*p*p*op

	// Local compute per iteration: with balanced halving the per-
	// processor population sums to ~2 n/p across iterations; in the
	// worst case (no balancing, sorted data) one processor keeps its
	// full n/p share for ~log p iterations before its range is split.
	computeSum := 2 * N / p
	if worstCase {
		computeSum = N / p * math.Min(iters, logp+1)
	}

	switch alg {
	case selection.MedianOfMedians, selection.MedianOfMediansHybrid:
		perElem := opsBFPRT + opsPartition
		if alg == selection.MedianOfMediansHybrid {
			perElem = opsFR + opsPartition
		}
		return computeSum*perElem*op + iters*(gather+3*small) + finish
	case selection.BucketBased, selection.BucketBasedHybrid:
		loglogp := math.Max(1, math.Log2(logp))
		build := N / p * opsBucketLvl * loglogp * op
		// Per-iteration local work touches ~one bucket of the
		// surviving population.
		perIter := (N / p / math.Max(2, logp)) * (opsBFPRT + opsPartition) * op
		if alg == selection.BucketBasedHybrid {
			perIter = (N / p / math.Max(2, logp)) * (opsFR + opsPartition) * op
		}
		// The surviving population halves, so the bucket work is a
		// geometric series ~2x the first term.
		return build + 2*perIter + iters*(gather+3*small) + finish
	case selection.Randomized:
		return computeSum*opsPartition*op + iters*4*small + finish
	case selection.FastRandomized:
		fIters := loglogn
		// Each iteration partitions against a window (two passes) and
		// sample-sorts n^0.6 keys.
		sample := math.Pow(N, 0.6)
		sortCost := sample / p * 46 * op // introsort constant
		return computeSum*2*opsPartition*op + fIters*(sortCost+10*small+gather) + finish
	default:
		return 0
	}
}

// Speedup returns the modelled speedup of alg at p processors relative to
// one processor running the corresponding sequential kernel.
func Speedup(alg selection.Algorithm, n int64, params machine.Params, worstCase bool) float64 {
	seq := float64(n) * opsFR * params.SecPerOp
	switch alg {
	case selection.MedianOfMedians, selection.BucketBased:
		seq = float64(n) * opsBFPRT * params.SecPerOp
	}
	t := Predict(alg, n, params, worstCase)
	if t <= 0 {
		return 0
	}
	return seq / t
}
