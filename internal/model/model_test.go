package model

import (
	"testing"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/selection"
	"parsel/internal/workload"
)

func predictParams(p int) machine.Params { return machine.DefaultParams(p) }

func TestPredictPositiveAndFinite(t *testing.T) {
	for _, alg := range selection.AllAlgorithms {
		for _, p := range []int{2, 8, 32, 128} {
			for _, n := range []int64{32 << 10, 2 << 20} {
				for _, wc := range []bool{false, true} {
					v := Predict(alg, n, predictParams(p), wc)
					if v <= 0 || v != v || v > 1e6 {
						t.Errorf("%v n=%d p=%d wc=%v: predict %g", alg, n, p, wc, v)
					}
				}
			}
		}
	}
}

func TestPredictMonotoneInN(t *testing.T) {
	for _, alg := range selection.Algorithms {
		prev := 0.0
		for _, n := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
			v := Predict(alg, n, predictParams(16), false)
			if v <= prev {
				t.Errorf("%v: predict not increasing in n at %d: %g <= %g", alg, n, v, prev)
			}
			prev = v
		}
	}
}

func TestPredictOrderingMatchesPaper(t *testing.T) {
	// At the paper's flagship point the model must order the algorithms
	// as the paper found: randomized < fast < bucket < mom... at n=2M,
	// p=32 the deterministic ones must trail both randomized ones.
	params := predictParams(32)
	n := int64(2 << 20)
	mom := Predict(selection.MedianOfMedians, n, params, false)
	bucket := Predict(selection.BucketBased, n, params, false)
	rand := Predict(selection.Randomized, n, params, false)
	fast := Predict(selection.FastRandomized, n, params, false)
	if rand >= mom || fast >= mom {
		t.Errorf("model orders randomized (%g, %g) above mom (%g)", rand, fast, mom)
	}
	if bucket >= mom {
		t.Errorf("model orders bucket (%g) above mom (%g)", bucket, mom)
	}
}

func TestWorstCaseCostlier(t *testing.T) {
	for _, alg := range selection.Algorithms {
		best := Predict(alg, 2<<20, predictParams(32), false)
		worst := Predict(alg, 2<<20, predictParams(32), true)
		if worst < best {
			t.Errorf("%v: worst case %g below balanced case %g", alg, worst, best)
		}
	}
}

func TestSpeedupReasonable(t *testing.T) {
	for _, alg := range selection.Algorithms {
		s8 := Speedup(alg, 2<<20, predictParams(8), false)
		if s8 <= 0 {
			t.Errorf("%v: speedup %g", alg, s8)
		}
	}
	// Randomized selection at large n should achieve real speedup.
	if s := Speedup(selection.Randomized, 8<<20, predictParams(8), false); s < 2 {
		t.Errorf("randomized speedup at p=8 only %g", s)
	}
}

// TestPredictTracksSimulation is the fidelity check: across the grid the
// model's prediction must stay within a constant band of the simulated
// measurement (shape agreement, not exact equality).
func TestPredictTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	type cfg struct {
		alg selection.Algorithm
		bal balance.Method
	}
	cfgs := []cfg{
		{selection.MedianOfMedians, balance.GlobalExchange},
		{selection.BucketBased, balance.None},
		{selection.Randomized, balance.None},
		{selection.FastRandomized, balance.None},
	}
	n := int64(512 << 10)
	for _, c := range cfgs {
		for _, p := range []int{4, 16, 64} {
			shards := workload.Generate(workload.Random, n, p, 3)
			params := machine.DefaultParams(p)
			sim, err := machine.Run(params, func(pr *machine.Proc) {
				selection.Select(pr, shards[pr.ID()], (n+1)/2, selection.Options{
					Algorithm: c.alg, Balancer: c.bal,
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			pred := Predict(c.alg, n, params, false)
			ratio := pred / sim
			if ratio < 0.25 || ratio > 4 {
				t.Errorf("%v p=%d: predicted %gs vs simulated %gs (ratio %.2f outside [0.25,4])",
					c.alg, p, pred, sim, ratio)
			}
		}
	}
}
