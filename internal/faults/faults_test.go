package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"syscall"
	"testing"
	"time"
)

// echoHandler answers every request 200 with a fixed JSON body.
func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"value": 42, "report": {"sim_seconds": 1.5}}`)
	})
}

// TestInjectorDeterministic pins the reproducibility contract: two
// injectors with the same seed, driven by the same request sequence,
// record identical histories; a different seed diverges.
func TestInjectorDeterministic(t *testing.T) {
	drive := func(seed uint64) []Event {
		in := New(Options{Seed: seed, Probs: Uniform(0.5), Sleep: func(time.Duration) {}})
		for i := 0; i < 200; i++ {
			in.decide("POST", "/v1/select")
		}
		return in.History()
	}
	a, b := drive(7), drive(7)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if slices.Equal(a, drive(8)) {
		t.Fatal("different seeds produced the identical 200-event sequence")
	}
	var faults int
	for _, ev := range a {
		if ev.Class != None {
			faults++
		}
	}
	if faults < 60 || faults > 140 {
		t.Errorf("0.5 fault rate injected %d/200 faults", faults)
	}
}

// TestUniformCoversEveryClass checks the uniform split draws every
// class over a long stream, and that counts account for every decision.
func TestUniformCoversEveryClass(t *testing.T) {
	in := New(Options{Seed: 3, Probs: Uniform(0.7), Sleep: func(time.Duration) {}})
	const n = 2000
	for i := 0; i < n; i++ {
		in.decide("GET", "/healthz")
	}
	counts := in.Counts()
	var total int64
	for _, c := range []Class{Latency, Reset, HTTP500, HTTP429, Truncate, Corrupt, SlowRead} {
		if counts[c] == 0 {
			t.Errorf("class %v never drawn in %d decisions at rate 0.7", c, n)
		}
	}
	for _, v := range counts {
		total += v
	}
	if total != n {
		t.Errorf("counts sum to %d, want %d", total, n)
	}
	if in.Faults() != n-counts[None] {
		t.Errorf("Faults() = %d, want %d", in.Faults(), n-counts[None])
	}
}

// TestTransportFaultShapes drives one transport through each class with
// certainty and checks the wire shape the client sees.
func TestTransportFaultShapes(t *testing.T) {
	ts := httptest.NewServer(echoHandler())
	defer ts.Close()

	roundTrip := func(t *testing.T, probs Probs, slept *[]time.Duration) (*http.Response, error) {
		t.Helper()
		in := New(Options{Seed: 1, Probs: probs, SlowChunk: 4,
			Sleep: func(d time.Duration) {
				if slept != nil {
					*slept = append(*slept, d)
				}
			}})
		hc := &http.Client{Transport: in.Transport(ts.Client().Transport)}
		req, err := http.NewRequest(http.MethodGet, ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return hc.Do(req)
	}

	t.Run("reset", func(t *testing.T) {
		_, err := roundTrip(t, Probs{Reset: 1}, nil)
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("reset fault surfaced as %v, want ECONNRESET", err)
		}
	})
	t.Run("http500", func(t *testing.T) {
		resp, err := roundTrip(t, Probs{HTTP500: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 500 {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
	})
	t.Run("http429", func(t *testing.T) {
		resp, err := roundTrip(t, Probs{HTTP429: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 429 || resp.Header.Get("Retry-After") != "1" {
			t.Fatalf("status %d Retry-After %q, want 429 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		body, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(body), "queue_full") {
			t.Errorf("injected 429 body %q carries no queue_full code", body)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		resp, err := roundTrip(t, Probs{Truncate: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if len(body) == 0 || strings.HasSuffix(string(body), "}") {
			t.Errorf("truncated body %q still looks complete", body)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		resp, err := roundTrip(t, Probs{Corrupt: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if len(body) == 0 || body[0] == '{' {
			t.Errorf("corrupted body %q still opens as JSON", body)
		}
	})
	t.Run("latency+slowread", func(t *testing.T) {
		var slept []time.Duration
		resp, err := roundTrip(t, Probs{Latency: 1}, &slept)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(slept) != 1 || slept[0] < time.Millisecond {
			t.Errorf("latency fault slept %v, want one injected delay >= MinLatency", slept)
		}
		slept = nil
		resp, err = roundTrip(t, Probs{SlowRead: 1}, &slept)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.HasSuffix(string(body), "}") {
			t.Errorf("slow-read body %q arrived damaged; the class delays, never corrupts", body)
		}
		if len(slept) == 0 {
			t.Error("slow-read never paused between chunked reads")
		}
	})
	t.Run("passthrough", func(t *testing.T) {
		resp, err := roundTrip(t, Probs{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || !strings.HasSuffix(string(body), "}") {
			t.Errorf("clean pass-through mangled the response: %d %q", resp.StatusCode, body)
		}
	})
}

// TestMiddlewareFaults drives the server-side hook through its classes.
func TestMiddlewareFaults(t *testing.T) {
	newServer := func(probs Probs) (*httptest.Server, *Injector) {
		in := New(Options{Seed: 5, Probs: probs, Sleep: func(time.Duration) {}})
		return httptest.NewServer(in.Middleware()(echoHandler())), in
	}

	t.Run("http500", func(t *testing.T) {
		ts, _ := newServer(Probs{HTTP500: 1})
		defer ts.Close()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 500 {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
	})
	t.Run("http429", func(t *testing.T) {
		ts, _ := newServer(Probs{HTTP429: 1})
		defer ts.Close()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 429 || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	})
	t.Run("reset", func(t *testing.T) {
		ts, _ := newServer(Probs{Reset: 1})
		defer ts.Close()
		_, err := http.Get(ts.URL)
		if err == nil {
			t.Fatal("aborted connection still produced a response")
		}
	})
	t.Run("passthrough", func(t *testing.T) {
		ts, in := newServer(Probs{})
		defer ts.Close()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		if got := in.History(); len(got) != 1 || got[0].Class != None {
			t.Errorf("history %+v, want one None decision", got)
		}
	})
}

// TestInvalidProbsPanic pins the fail-loud contract for misconfigured
// harnesses.
func TestInvalidProbsPanic(t *testing.T) {
	for _, probs := range []Probs{{Latency: -0.1}, {Reset: 0.6, HTTP500: 0.6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", probs)
				}
			}()
			New(Options{Probs: probs})
		}()
	}
}
