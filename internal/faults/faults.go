// Package faults is a deterministic, seedable fault injector for the
// parseld serving stack: the chaos half of the resilience layer. It
// perturbs HTTP traffic with the transient failures a production
// deployment sees routinely — injected latency, connection resets,
// 5xx/429 bursts, truncated and corrupted response bodies, slow-loris
// reads — on both sides of the wire:
//
//   - Transport wraps an http.RoundTripper, so a parselclient pointed
//     through it experiences client-observed faults (the chaos e2e
//     suite replays the full differential catalogue this way).
//   - Middleware wraps an http.Handler, the hook internal/serve exposes
//     (serve.Options.Middleware), so the daemon itself can be made to
//     reject, stall, or drop connections.
//
// Every decision is drawn from one seeded PCG stream behind a mutex:
// with sequential requests, the same seed injects the identical fault
// sequence — History returns it for equality assertions — so every
// chaos test is reproducible from its seed. A Sleep hook replaces the
// real clock (fake-clock mode), so injected latency and slow-loris
// pacing cost nothing in tests.
//
// At most one fault is injected per request, chosen by a single
// uniform draw against the cumulative class probabilities; the
// remaining mass is a clean pass-through. Which classes are meaningful
// depends on the side: Transport implements all of them, Middleware
// implements Latency, HTTP500, HTTP429 and Reset (a server cannot
// truncate a body it has not produced yet; Reset aborts the connection
// via http.ErrAbortHandler) and passes the rest through.
package faults

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"sync"
	"syscall"
	"time"
)

// Class is one fault class.
type Class uint8

const (
	// None is a clean pass-through (no fault injected).
	None Class = iota
	// Latency delays the request by a deterministic duration drawn from
	// [MinLatency, MaxLatency] before forwarding it.
	Latency
	// Reset fails the request with a connection-reset error before it
	// reaches the server (client side), or aborts the connection without
	// a response (server side). The request is never processed, so a
	// retry is always safe.
	Reset
	// HTTP500 answers a synthesized 500 without forwarding the request.
	HTTP500
	// HTTP429 answers a synthesized 429 queue_full with a Retry-After
	// header, without forwarding the request.
	HTTP429
	// Truncate forwards the request but cuts the response body in half,
	// so the client sees a JSON decode failure on a request the server
	// did process (the hard retry case: idempotency matters).
	Truncate
	// Corrupt forwards the request but flips the first body byte, so
	// the response is bit-rot the client must detect and retry.
	Corrupt
	// SlowRead forwards the request but drip-feeds the response body in
	// SlowChunk-byte reads with an injected pause between each — a
	// slow-loris client from the server's point of view.
	SlowRead
)

// classNames is indexed by Class.
var classNames = [...]string{"none", "latency", "reset", "http500", "http429", "truncate", "corrupt", "slowread"}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Probs are the per-class injection probabilities. Their sum must not
// exceed 1; the remainder is the clean pass-through probability.
type Probs struct {
	Latency  float64
	Reset    float64
	HTTP500  float64
	HTTP429  float64
	Truncate float64
	Corrupt  float64
	SlowRead float64
}

// Uniform spreads a total fault rate evenly across all seven classes.
func Uniform(rate float64) Probs {
	p := rate / 7
	return Probs{Latency: p, Reset: p, HTTP500: p, HTTP429: p, Truncate: p, Corrupt: p, SlowRead: p}
}

// Total is the summed fault probability.
func (p Probs) Total() float64 {
	return p.Latency + p.Reset + p.HTTP500 + p.HTTP429 + p.Truncate + p.Corrupt + p.SlowRead
}

// Options configures an Injector. Zero-valued knobs take defaults.
type Options struct {
	// Seed seeds the decision stream; the same seed over the same
	// request sequence injects the identical fault sequence.
	Seed uint64
	// Probs are the per-class probabilities.
	Probs Probs
	// MinLatency and MaxLatency bound injected latency (defaults 1ms
	// and 20ms).
	MinLatency, MaxLatency time.Duration
	// RetryAfter is the hint stamped on injected 429s (default 1s;
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// SlowChunk is the bytes-per-read granularity of SlowRead faults
	// (default 64).
	SlowChunk int
	// Sleep replaces time.Sleep for injected latency and slow-read
	// pacing — fake-clock mode for tests. Nil means real sleeping.
	Sleep func(d time.Duration)
}

// withDefaults fills the zero-valued knobs.
func (o Options) withDefaults() Options {
	if o.MinLatency == 0 {
		o.MinLatency = time.Millisecond
	}
	if o.MaxLatency == 0 {
		o.MaxLatency = 20 * time.Millisecond
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	if o.SlowChunk == 0 {
		o.SlowChunk = 64
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Event is one injection decision, in sequence order. Clean
// pass-throughs are recorded too (Class None), so History is a total
// account of the traffic the injector saw.
type Event struct {
	// Seq is the 0-based decision index.
	Seq int
	// Class is the injected fault (None for a pass-through).
	Class Class
	// Method and Path identify the request.
	Method, Path string
	// Delay is the injected latency (Latency faults only).
	Delay time.Duration
}

// Injector draws fault decisions from one seeded stream. Safe for
// concurrent use; determinism of the sequence requires the requests
// themselves to be issued sequentially.
type Injector struct {
	opts Options

	mu     sync.Mutex
	rng    *rand.Rand
	events []Event
	counts [len(classNames)]int64
}

// New builds an Injector. It panics if the probabilities are invalid
// (negative, or summing past 1) — a misconfigured chaos harness should
// fail loudly, not skew silently.
func New(opts Options) *Injector {
	p := opts.Probs
	for _, v := range []float64{p.Latency, p.Reset, p.HTTP500, p.HTTP429, p.Truncate, p.Corrupt, p.SlowRead} {
		if v < 0 || v != v {
			panic(fmt.Sprintf("faults: negative or NaN probability in %+v", p))
		}
	}
	if p.Total() > 1 {
		panic(fmt.Sprintf("faults: probabilities sum to %v > 1", p.Total()))
	}
	opts = opts.withDefaults()
	return &Injector{
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, 0x70617273656c6466)), // "parseldf"
	}
}

// decide draws one fault decision and records it.
func (in *Injector) decide(method, path string) Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	ev := Event{Seq: len(in.events), Method: method, Path: path}
	u := in.rng.Float64()
	p := in.opts.Probs
	for _, c := range []struct {
		class Class
		prob  float64
	}{
		{Latency, p.Latency}, {Reset, p.Reset}, {HTTP500, p.HTTP500}, {HTTP429, p.HTTP429},
		{Truncate, p.Truncate}, {Corrupt, p.Corrupt}, {SlowRead, p.SlowRead},
	} {
		if u < c.prob {
			ev.Class = c.class
			break
		}
		u -= c.prob
	}
	if ev.Class == Latency {
		span := in.opts.MaxLatency - in.opts.MinLatency
		ev.Delay = in.opts.MinLatency
		if span > 0 {
			ev.Delay += time.Duration(in.rng.Int64N(int64(span) + 1))
		}
	}
	in.events = append(in.events, ev)
	in.counts[ev.Class]++
	return ev
}

// History returns a copy of every decision so far, in order. Two runs
// with the same seed over the same request sequence return equal
// histories — the determinism assertion of the chaos suite.
func (in *Injector) History() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Counts returns the per-class decision counts (None included).
func (in *Injector) Counts() map[Class]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Class]int64, len(in.counts))
	for c, n := range in.counts {
		if n > 0 {
			out[Class(c)] = n
		}
	}
	return out
}

// Faults is the total number of injected (non-None) decisions.
func (in *Injector) Faults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for c, cnt := range in.counts {
		if Class(c) != None {
			n += cnt
		}
	}
	return n
}

// errReset is the connection-reset error Transport synthesizes: shaped
// like a real peer reset (a *net.OpError wrapping ECONNRESET), so the
// client's retry classification sees exactly what the kernel would
// hand it.
var errReset = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}

// transport is the client-side RoundTripper wrapper.
type transport struct {
	in   *Injector
	next http.RoundTripper
}

// Transport wraps next so every round trip may be perturbed by one
// fault. A nil next means http.DefaultTransport.
func (in *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ev := t.in.decide(req.Method, req.URL.Path)
	switch ev.Class {
	case Latency:
		t.in.opts.Sleep(ev.Delay)
		return t.next.RoundTrip(req)
	case Reset:
		// The request never reaches the server; always safe to retry.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errReset
	case HTTP500:
		return synthesize(req, http.StatusInternalServerError, nil,
			"injected fault: http500"), nil
	case HTTP429:
		h := http.Header{}
		h.Set("Retry-After", strconv.FormatInt(int64((t.in.opts.RetryAfter+time.Second-1)/time.Second), 10))
		return synthesize(req, http.StatusTooManyRequests, h,
			`{"error":{"code":"queue_full","message":"injected fault: http429"}}`), nil
	case Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		return resp, nil
	case Corrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			// Flipping the leading byte guarantees a JSON body no longer
			// parses — corruption the client must detect, never absorb.
			body[0] ^= 0xFF
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	case SlowRead:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &slowBody{rc: resp.Body, chunk: t.in.opts.SlowChunk, sleep: t.in.opts.Sleep}
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

// synthesize builds a fault response without touching the network.
func synthesize(req *http.Request, status int, h http.Header, body string) *http.Response {
	if req.Body != nil {
		req.Body.Close()
	}
	if h == nil {
		h = http.Header{}
	}
	if len(body) > 0 && body[0] == '{' {
		h.Set("Content-Type", "application/json")
	} else {
		h.Set("Content-Type", "text/plain")
	}
	return &http.Response{
		Status:        http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// slowBody drip-feeds an underlying body chunk bytes per read, pausing
// between reads via the injected clock.
type slowBody struct {
	rc    io.ReadCloser
	chunk int
	sleep func(time.Duration)
	first bool
}

// Read implements io.Reader.
func (b *slowBody) Read(p []byte) (int, error) {
	if b.first {
		b.sleep(time.Millisecond)
	}
	b.first = true
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.rc.Read(p)
}

// Close implements io.Closer.
func (b *slowBody) Close() error { return b.rc.Close() }

// Middleware returns the server-side hook for serve.Options.Middleware:
// a wrapper injecting Latency (stalling the handler), HTTP500/HTTP429
// (rejecting before the handler runs) and Reset (aborting the
// connection without a response, via the http.ErrAbortHandler
// convention). Other classes pass through — a server cannot truncate a
// response the handler streams itself.
func (in *Injector) Middleware() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ev := in.decide(r.Method, r.URL.Path)
			switch ev.Class {
			case Latency:
				in.opts.Sleep(ev.Delay)
			case HTTP500:
				w.Header().Set("Content-Type", "text/plain")
				w.WriteHeader(http.StatusInternalServerError)
				io.WriteString(w, "injected fault: http500")
				return
			case HTTP429:
				w.Header().Set("Retry-After",
					strconv.FormatInt(int64((in.opts.RetryAfter+time.Second-1)/time.Second), 10))
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				io.WriteString(w, `{"error":{"code":"queue_full","message":"injected fault: http429"}}`)
				return
			case Reset:
				// net/http's sanctioned way to drop the connection on the
				// floor: the recovery middleware re-panics this sentinel.
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
}
