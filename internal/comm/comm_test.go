package comm

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"parsel/internal/machine"
)

// procCounts exercises the non-power-of-two paths deliberately.
var procCounts = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32}

func runSPMD(t *testing.T, p int, body func(*machine.Proc)) float64 {
	t.Helper()
	sim, err := machine.Run(machine.DefaultParams(p), body)
	if err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
	return sim
}

func TestBroadcastScalar(t *testing.T) {
	for _, p := range procCounts {
		for root := 0; root < p; root += max(1, p/3) {
			got := make([]int64, p)
			runSPMD(t, p, func(pr *machine.Proc) {
				val := int64(-1)
				if pr.ID() == root {
					val = 4242
				}
				got[pr.ID()] = Broadcast(pr, root, val, 8)
			})
			for id, v := range got {
				if v != 4242 {
					t.Errorf("p=%d root=%d proc %d got %d", p, root, id, v)
				}
			}
		}
	}
}

func TestBroadcastSlice(t *testing.T) {
	want := []int64{5, 4, 3, 2, 1}
	for _, p := range procCounts {
		root := p - 1
		results := make([][]int64, p)
		runSPMD(t, p, func(pr *machine.Proc) {
			var in []int64
			if pr.ID() == root {
				in = want
			}
			results[pr.ID()] = BroadcastSlice(pr, root, in, 8)
		})
		for id, res := range results {
			if !reflect.DeepEqual(res, want) {
				t.Errorf("p=%d proc %d got %v", p, id, res)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range procCounts {
		for _, root := range []int{0, p / 2} {
			var want int64
			for i := 0; i < p; i++ {
				want += int64(i * i)
			}
			runSPMD(t, p, func(pr *machine.Proc) {
				v := int64(pr.ID() * pr.ID())
				got, ok := Reduce(pr, root, v, 8, func(a, b int64) int64 { return a + b })
				if (pr.ID() == root) != ok {
					t.Errorf("p=%d proc %d ok=%v", p, pr.ID(), ok)
				}
				if ok && got != want {
					t.Errorf("p=%d root sum=%d want %d", p, got, want)
				}
			})
		}
	}
}

func TestReduceMax(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			v := int64((pr.ID()*7 + 3) % p)
			got, ok := Reduce(pr, 0, v, 8, func(a, b int64) int64 {
				if a > b {
					return a
				}
				return b
			})
			if ok {
				var want int64
				for i := 0; i < p; i++ {
					if w := int64((i*7 + 3) % p); w > want {
						want = w
					}
				}
				if got != want {
					t.Errorf("p=%d max=%d want %d", p, got, want)
				}
			}
		})
	}
}

func TestCombineEveryoneGetsResult(t *testing.T) {
	for _, p := range procCounts {
		want := int64(p * (p - 1) / 2)
		got := make([]int64, p)
		runSPMD(t, p, func(pr *machine.Proc) {
			got[pr.ID()] = CombineInt64(pr, int64(pr.ID()))
		})
		for id, v := range got {
			if v != want {
				t.Errorf("p=%d proc %d combine=%d want %d", p, id, v, want)
			}
		}
	}
}

func TestPrefixSum(t *testing.T) {
	for _, p := range procCounts {
		got := make([]int64, p)
		runSPMD(t, p, func(pr *machine.Proc) {
			got[pr.ID()] = PrefixSumInt64(pr, int64(pr.ID()+1))
		})
		var run int64
		for id, v := range got {
			run += int64(id + 1)
			if v != run {
				t.Errorf("p=%d proc %d prefix=%d want %d", p, id, v, run)
			}
		}
	}
}

func TestPrefixNonCommutativeOrder(t *testing.T) {
	// String concatenation is associative but not commutative, so this
	// detects any left/right mixups in the scan.
	for _, p := range procCounts {
		got := make([]string, p)
		runSPMD(t, p, func(pr *machine.Proc) {
			s := string(rune('a' + pr.ID()%26))
			got[pr.ID()] = Prefix(pr, s, len(s), func(a, b string) string { return a + b })
		})
		want := ""
		for id := 0; id < p; id++ {
			want += string(rune('a' + id%26))
			if got[id] != want {
				t.Errorf("p=%d proc %d prefix=%q want %q", p, id, got[id], want)
			}
		}
	}
}

func TestGatherScalar(t *testing.T) {
	for _, p := range procCounts {
		for _, root := range []int{0, p - 1} {
			runSPMD(t, p, func(pr *machine.Proc) {
				res := Gather(pr, root, int64(pr.ID()*10), 8)
				if pr.ID() != root {
					if res != nil {
						t.Errorf("p=%d non-root %d got %v", p, pr.ID(), res)
					}
					return
				}
				if len(res) != p {
					t.Fatalf("p=%d root got %d entries", p, len(res))
				}
				for i, v := range res {
					if v != int64(i*10) {
						t.Errorf("p=%d root entry %d = %d", p, i, v)
					}
				}
			})
		}
	}
}

func TestGathervVariableSizes(t *testing.T) {
	for _, p := range procCounts {
		root := p / 2
		runSPMD(t, p, func(pr *machine.Proc) {
			mine := make([]int64, pr.ID()) // proc i contributes i elements
			for j := range mine {
				mine[j] = int64(pr.ID()*1000 + j)
			}
			res := Gatherv(pr, root, mine, 8)
			if pr.ID() != root {
				return
			}
			for src := 0; src < p; src++ {
				if len(res[src]) != src {
					t.Fatalf("p=%d block %d has %d elems", p, src, len(res[src]))
				}
				for j, v := range res[src] {
					if v != int64(src*1000+j) {
						t.Errorf("p=%d block %d elem %d = %d", p, src, j, v)
					}
				}
			}
		})
	}
}

func TestGatherFlat(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			mine := []int64{int64(pr.ID()), int64(pr.ID() + 100)}
			res := GatherFlat(pr, 0, mine, 8)
			if pr.ID() != 0 {
				return
			}
			if len(res) != 2*p {
				t.Fatalf("p=%d flat len %d", p, len(res))
			}
			for i := 0; i < p; i++ {
				if res[2*i] != int64(i) || res[2*i+1] != int64(i+100) {
					t.Errorf("p=%d wrong flat order at %d: %v", p, i, res[2*i:2*i+2])
				}
			}
		})
	}
}

func TestGlobalConcatScalar(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			res := GlobalConcat(pr, int64(pr.ID()*3+1), 8)
			if len(res) != p {
				t.Fatalf("p=%d len %d", p, len(res))
			}
			for i, v := range res {
				if v != int64(i*3+1) {
					t.Errorf("p=%d proc %d entry %d = %d", p, pr.ID(), i, v)
				}
			}
		})
	}
}

func TestGlobalConcatvVariableSizes(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			mine := make([]int64, (pr.ID()*13)%5)
			for j := range mine {
				mine[j] = int64(pr.ID()*100 + j)
			}
			res := GlobalConcatv(pr, mine, 8)
			for src := 0; src < p; src++ {
				wantLen := (src * 13) % 5
				if len(res[src]) != wantLen {
					t.Fatalf("p=%d src %d len %d want %d", p, src, len(res[src]), wantLen)
				}
				for j, v := range res[src] {
					if v != int64(src*100+j) {
						t.Errorf("p=%d src %d elem %d = %d", p, src, j, v)
					}
				}
			}
		})
	}
}

// transportPattern builds a deterministic all-to-all pattern where proc i
// sends (i+j)%4 elements to proc j with recognizable values.
func transportPattern(p, src, dst int) []int64 {
	n := (src + dst) % 4
	out := make([]int64, n)
	for k := range out {
		out[k] = int64(src*10000 + dst*100 + k)
	}
	return out
}

func TestTransport(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			out := make([][]int64, p)
			for dst := 0; dst < p; dst++ {
				out[dst] = transportPattern(p, pr.ID(), dst)
			}
			in := Transport(pr, out, 8)
			for src := 0; src < p; src++ {
				want := transportPattern(p, src, pr.ID())
				if len(want) == 0 {
					if len(in[src]) != 0 {
						t.Errorf("p=%d got unexpected block from %d", p, src)
					}
					continue
				}
				if !reflect.DeepEqual(in[src], want) {
					t.Errorf("p=%d from %d got %v want %v", p, src, in[src], want)
				}
			}
		})
	}
}

func TestTransportKnown(t *testing.T) {
	for _, p := range procCounts {
		runSPMD(t, p, func(pr *machine.Proc) {
			out := make([][]int64, p)
			inCounts := make([]int64, p)
			for dst := 0; dst < p; dst++ {
				out[dst] = transportPattern(p, pr.ID(), dst)
				inCounts[dst] = int64(len(transportPattern(p, dst, pr.ID())))
			}
			in := TransportKnown(pr, out, inCounts, 8)
			for src := 0; src < p; src++ {
				want := transportPattern(p, src, pr.ID())
				if len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(in[src], want) {
					t.Errorf("p=%d from %d got %v want %v", p, src, in[src], want)
				}
			}
		})
	}
}

func TestTransportSelfOnly(t *testing.T) {
	runSPMD(t, 4, func(pr *machine.Proc) {
		out := make([][]int64, 4)
		out[pr.ID()] = []int64{int64(pr.ID())}
		in := Transport(pr, out, 8)
		if len(in[pr.ID()]) != 1 || in[pr.ID()][0] != int64(pr.ID()) {
			t.Errorf("self block lost: %v", in)
		}
	})
}

func TestBarrierAlignsClocks(t *testing.T) {
	for _, p := range procCounts {
		if p == 1 {
			continue
		}
		after := make([]float64, p)
		runSPMD(t, p, func(pr *machine.Proc) {
			// Skew the clocks heavily, then barrier.
			pr.ChargeSeconds(float64(pr.ID()) * 0.01)
			Barrier(pr)
			after[pr.ID()] = pr.Now()
		})
		// After a barrier every clock must be at least the maximum
		// pre-barrier clock (the slowest processor gates everyone).
		slowest := float64(p-1) * 0.01
		for id, ts := range after {
			if ts < slowest {
				t.Errorf("p=%d proc %d finished barrier at %g before slowest %g", p, id, ts, slowest)
			}
		}
	}
}

// TestBroadcastModelCost checks the simulated cost of a broadcast against
// the paper's O((tau+mu) log p) closed form for power-of-two p.
func TestBroadcastModelCost(t *testing.T) {
	params := machine.DefaultParams(8)
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		Broadcast(pr, 0, int64(99), 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	perHop := params.TauSec + 2*params.MuSecPerByte*8
	want := 3 * perHop // log2(8) levels along the critical path
	if math.Abs(sim-want) > want*0.01 {
		t.Errorf("broadcast sim cost %g, want ~%g", sim, want)
	}
}

// TestGatherCostScalesLinearly: gather of m total elements must cost at
// least mu*m (bandwidth bound at the root) and not more than a small
// multiple of it plus log p startups.
func TestGatherModelCost(t *testing.T) {
	params := machine.DefaultParams(16)
	const perProc = 4096
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		mine := make([]int64, perProc)
		Gatherv(pr, 0, mine, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	low := params.MuSecPerByte * float64((16-1)*perProc*8)
	high := 4*low + 16*params.TauSec
	if sim < low || sim > high {
		t.Errorf("gather sim cost %g outside [%g, %g]", sim, low, high)
	}
}

func TestCollectivesDeterministic(t *testing.T) {
	run := func() float64 {
		sim, err := machine.Run(machine.DefaultParams(6), func(pr *machine.Proc) {
			v := CombineInt64(pr, int64(pr.ID()))
			Prefix(pr, v, 8, func(a, b int64) int64 { return a + b })
			GlobalConcat(pr, v, 8)
			Barrier(pr)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic simulated time: %g vs %g", a, b)
	}
}

// TestRandomizedTransportFuzz cross-checks Transport against a serial
// shuffle for random patterns and processor counts.
func TestRandomizedTransportFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.IntN(12)
		pattern := make([][][]int64, p)
		for src := 0; src < p; src++ {
			pattern[src] = make([][]int64, p)
			for dst := 0; dst < p; dst++ {
				n := rng.IntN(5)
				blk := make([]int64, n)
				for k := range blk {
					blk[k] = rng.Int64N(1 << 40)
				}
				pattern[src][dst] = blk
			}
		}
		runSPMD(t, p, func(pr *machine.Proc) {
			in := Transport(pr, pattern[pr.ID()], 8)
			for src := 0; src < p; src++ {
				want := pattern[src][pr.ID()]
				if len(want) == 0 {
					if len(in[src]) != 0 {
						t.Errorf("trial %d: unexpected data from %d", trial, src)
					}
					continue
				}
				if !reflect.DeepEqual(in[src], want) {
					t.Errorf("trial %d: from %d got %v want %v", trial, src, in[src], want)
				}
			}
		})
	}
}
