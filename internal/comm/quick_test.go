package comm

import (
	"testing"
	"testing/quick"

	"parsel/internal/machine"
)

// quickRun executes an SPMD body or reports the failure through ok.
func quickRun(p int, body func(pr *machine.Proc)) bool {
	_, err := machine.Run(machine.DefaultParams(p), body)
	return err == nil
}

// TestQuickCombineAgainstSerial: for arbitrary per-processor inputs and a
// set of associative+commutative operators, Combine must equal the serial
// fold on every processor.
func TestQuickCombineAgainstSerial(t *testing.T) {
	ops := map[string]func(int64, int64) int64{
		"sum": func(a, b int64) int64 { return a + b },
		"min": func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		"max": func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		"xor": func(a, b int64) int64 { return a ^ b },
	}
	for name, op := range ops {
		f := func(raw []int32, pRaw uint8) bool {
			p := 1 + int(pRaw%12)
			vals := make([]int64, p)
			for i := range vals {
				if i < len(raw) {
					vals[i] = int64(raw[i])
				}
			}
			want := vals[0]
			for _, v := range vals[1:] {
				want = op(want, v)
			}
			good := true
			ok := quickRun(p, func(pr *machine.Proc) {
				got := Combine(pr, vals[pr.ID()], 8, op)
				if got != want {
					good = false
				}
			})
			return ok && good
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestQuickPrefixAgainstSerial checks inclusive scans for arbitrary
// inputs and processor counts.
func TestQuickPrefixAgainstSerial(t *testing.T) {
	f := func(raw []int32, pRaw uint8) bool {
		p := 1 + int(pRaw%12)
		vals := make([]int64, p)
		for i := range vals {
			if i < len(raw) {
				vals[i] = int64(raw[i])
			}
		}
		want := make([]int64, p)
		run := int64(0)
		for i, v := range vals {
			run += v
			want[i] = run
		}
		good := true
		ok := quickRun(p, func(pr *machine.Proc) {
			if PrefixSumInt64(pr, vals[pr.ID()]) != want[pr.ID()] {
				good = false
			}
		})
		return ok && good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickGatherConcatAgree: Gatherv on the root must agree with
// GlobalConcatv everywhere, for arbitrary shard shapes.
func TestQuickGatherConcatAgree(t *testing.T) {
	f := func(raw [][]int16, pRaw, rootRaw uint8) bool {
		p := 1 + int(pRaw%10)
		root := int(rootRaw) % p
		shards := make([][]int64, p)
		for i := range shards {
			if i < len(raw) {
				shards[i] = make([]int64, len(raw[i]))
				for j, v := range raw[i] {
					shards[i][j] = int64(v)
				}
			}
		}
		good := true
		ok := quickRun(p, func(pr *machine.Proc) {
			gat := Gatherv(pr, root, shards[pr.ID()], 8)
			all := GlobalConcatv(pr, shards[pr.ID()], 8)
			for src := 0; src < p; src++ {
				if len(all[src]) != len(shards[src]) {
					good = false
					return
				}
				for j, v := range all[src] {
					if v != shards[src][j] {
						good = false
						return
					}
				}
			}
			if pr.ID() == root {
				for src := 0; src < p; src++ {
					if len(gat[src]) != len(all[src]) {
						good = false
						return
					}
					for j := range gat[src] {
						if gat[src][j] != all[src][j] {
							good = false
							return
						}
					}
				}
			}
		})
		return ok && good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
