// Typed int64 fast paths for the hottest collectives. Each mirrors its
// generic counterpart exactly — same tree shape, same tags, same message
// count and byte sizes — so simulated time and traffic counters are
// bit-identical; the only difference is that values travel through the
// machine's inline int64 message fields instead of being boxed into
// interfaces, making the host-side cost allocation-free.
package comm

import "parsel/internal/machine"

// BroadcastInt64 is Broadcast specialised to a single int64.
func BroadcastInt64(p *machine.Proc, root int, val int64, bytes int) int64 {
	v, _ := BroadcastInt64Pair(p, root, val, 0, bytes)
	return v
}

// BroadcastInt64Pair broadcasts two int64 values from root in one message
// per tree edge (the wire size is whatever bytes says, as with Broadcast).
func BroadcastInt64Pair(p *machine.Proc, root int, a, b int64, bytes int) (int64, int64) {
	size := p.Procs()
	if size == 1 {
		return a, b
	}
	rel := relRank(p.ID(), root, size)
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := absRank(rel-mask, root, size)
			a, b = p.RecvInt64Pair(src, tagBroadcast+mask)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel&(mask-1) == 0 && rel&mask == 0 && rel+mask < size {
			dst := absRank(rel+mask, root, size)
			p.SendInt64Pair(dst, tagBroadcast+mask, a, b, bytes)
		}
	}
	return a, b
}

// reduceInt64Pair mirrors Reduce for a pair of int64 accumulators merged
// with op. The boolean reports whether this processor is the root.
func reduceInt64Pair(p *machine.Proc, root int, a, b int64, bytes int, op func(a0, b0, a1, b1 int64) (int64, int64)) (int64, int64, bool) {
	size := p.Procs()
	if size == 1 {
		return a, b, true
	}
	rel := relRank(p.ID(), root, size)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < size {
				src := absRank(srcRel, root, size)
				oa, ob := p.RecvInt64Pair(src, tagReduce+mask)
				a, b = op(a, b, oa, ob)
			}
		} else {
			dst := absRank(rel&^mask, root, size)
			p.SendInt64Pair(dst, tagReduce+mask, a, b, bytes)
			return 0, 0, false
		}
	}
	return a, b, true
}

// combineInt64Pair mirrors Combine (reduce to root 0, then broadcast) for
// an int64 pair under op.
func combineInt64Pair(p *machine.Proc, a, b int64, bytes int, op func(a0, b0, a1, b1 int64) (int64, int64)) (int64, int64) {
	a, b, _ = reduceInt64Pair(p, 0, a, b, bytes, op)
	if p.Procs() == 1 {
		return a, b
	}
	return BroadcastInt64Pair(p, 0, a, b, bytes)
}

// CombineInt64 is Combine specialised to int64 sums, the most common use
// in the selection algorithms (counting elements below a pivot).
func CombineInt64(p *machine.Proc, val int64) int64 {
	v, _ := combineInt64Pair(p, val, 0, machine.WordBytes,
		func(a0, b0, a1, b1 int64) (int64, int64) { return a0 + a1, 0 })
	return v
}

// CombineSumInt64Pair all-reduces two independent int64 sums in one
// collective (the paper's Combine of a (less, equal) tally).
func CombineSumInt64Pair(p *machine.Proc, a, b int64, bytes int) (int64, int64) {
	return combineInt64Pair(p, a, b, bytes,
		func(a0, b0, a1, b1 int64) (int64, int64) { return a0 + a1, b0 + b1 })
}

// CombineMaxInt64 all-reduces an int64 maximum.
func CombineMaxInt64(p *machine.Proc, val int64, bytes int) int64 {
	v, _ := combineInt64Pair(p, val, 0, bytes,
		func(a0, b0, a1, b1 int64) (int64, int64) { return max(a0, a1), 0 })
	return v
}

// PrefixSumInt64 returns the inclusive prefix sum of val across processors
// (dissemination scan, identical in shape to Prefix).
func PrefixSumInt64(p *machine.Proc, val int64) int64 {
	size := p.Procs()
	me := p.ID()
	acc := val
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		if me+pow < size {
			p.SendInt64Pair(me+pow, tagPrefix+round, acc, 0, machine.WordBytes)
		}
		if me-pow >= 0 {
			left, _ := p.RecvInt64Pair(me-pow, tagPrefix+round)
			acc = left + acc
		}
	}
	return acc
}

// GlobalConcatInt64 is GlobalConcat specialised to one int64 per
// processor. buf, when large enough (2p), provides all working storage so
// the collective allocates nothing; it is returned (possibly grown) for
// the caller to retain. The result is a view into it indexed by absolute
// rank, valid until the next call that reuses the buffer. Shape, tags and
// bytes match GlobalConcat exactly.
func GlobalConcatInt64(p *machine.Proc, val int64, buf []int64) (out, grown []int64) {
	return globalConcatInt64Flat(p, val, nil, 1, buf)
}

// GlobalConcatInt64Flat is GlobalConcatv specialised to a fixed-length
// int64 slice per processor (the counts exchange of Transport). The result
// is flat: processor r's contribution occupies [r*L, (r+1)*L). buf as in
// GlobalConcatInt64 (needs 2*p*L).
func GlobalConcatInt64Flat(p *machine.Proc, vals []int64, buf []int64) (out, grown []int64) {
	return globalConcatInt64Flat(p, 0, vals, len(vals), buf)
}

// globalConcatInt64Flat implements the Bruck all-gather over a flat int64
// buffer. When vals is nil the single value val is the contribution
// (L must be 1).
func globalConcatInt64Flat(p *machine.Proc, val int64, vals []int64, L int, buf []int64) (result, grown []int64) {
	size := p.Procs()
	me := p.ID()
	need := 2 * size * L
	if cap(buf) < need {
		buf = make([]int64, need)
	}
	buf = buf[:need]
	// have holds contributions in rank-rotated order: the block of
	// processor (me+i)%size occupies have[i*L:(i+1)*L].
	have := buf[: L : size*L]
	if vals == nil {
		have[0] = val
	} else {
		copy(have, vals)
	}
	if size == 1 {
		return have, buf
	}
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		cnt := pow
		if size-pow < cnt {
			cnt = size - pow
		}
		dst := (me - pow + size) % size
		src := (me + pow) % size
		p.SendInt64Slice(dst, tagConcat+round, have[:cnt*L], cnt*L*machine.WordBytes)
		in := p.RecvInt64Slice(src, tagConcat+round)
		have = append(have, in...)
	}
	out := buf[size*L : need]
	for i := 0; i < size; i++ {
		copy(out[((me+i)%size)*L:], have[i*L:(i+1)*L])
	}
	return out, buf
}
