package comm

import (
	"testing"

	"parsel/internal/machine"
)

// benchCollective times the *wall-clock* cost of running a collective on
// p real goroutines (the simulated cost is exercised by the harness's
// prims experiment).
func benchCollective(b *testing.B, p int, body func(pr *machine.Proc, payload []int64)) {
	m, err := machine.New(machine.DefaultParams(p))
	if err != nil {
		b.Fatal(err)
	}
	const elems = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.Run(func(pr *machine.Proc) {
			payload := make([]int64, elems)
			body(pr, payload)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcast16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		BroadcastSlice(pr, 0, payload, machine.WordBytes)
	})
}

func BenchmarkCombine16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		CombineInt64(pr, int64(pr.ID()))
	})
}

func BenchmarkPrefix16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		PrefixSumInt64(pr, int64(pr.ID()))
	})
}

func BenchmarkGatherv16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		Gatherv(pr, 0, payload, machine.WordBytes)
	})
}

func BenchmarkGlobalConcatv16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		GlobalConcatv(pr, payload[:64], machine.WordBytes)
	})
}

func BenchmarkTransport16(b *testing.B) {
	benchCollective(b, 16, func(pr *machine.Proc, payload []int64) {
		out := make([][]int64, pr.Procs())
		per := len(payload) / pr.Procs()
		for j := range out {
			out[j] = payload[j*per : (j+1)*per]
		}
		Transport(pr, out, machine.WordBytes)
	})
}

func BenchmarkBarrier64(b *testing.B) {
	benchCollective(b, 64, func(pr *machine.Proc, payload []int64) {
		Barrier(pr)
	})
}
