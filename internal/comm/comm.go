// Package comm implements the parallel communication primitives of the
// paper's §2.2 on top of the simulated machine's point-to-point layer:
//
//	Broadcast          O((tau+mu) log p)    binomial tree
//	Combine            O((tau+mu) log p)    binomial reduce + broadcast
//	Parallel Prefix    O((tau+mu) log p)    dissemination (Hillis–Steele)
//	Gather             O(tau log p + mu p)  binomial tree
//	Global Concatenate O(tau log p + mu p)  Bruck all-gather
//	Transportation     ~2 mu t              pairwise-scheduled all-to-all-v
//	Barrier            O(tau log p)         dissemination
//
// All primitives work for arbitrary processor counts, not only powers of
// two. Message costs (tau + mu*bytes) are charged by the machine layer;
// per the paper's model the primitives themselves charge no computation.
package comm

import "parsel/internal/machine"

// Tag bases keep the message streams of distinct primitives disjoint.
// Within a primitive, the round number is added to the base. Because each
// ordered processor pair has a FIFO link and SPMD programs invoke
// collectives in program order, bases may be reused across invocations.
const (
	tagBroadcast = 1 << 20
	tagReduce    = 2 << 20
	tagPrefix    = 3 << 20
	tagGather    = 4 << 20
	tagConcat    = 5 << 20
	tagTransport = 6 << 20
	tagBarrier   = 7 << 20
	tagCounts    = 8 << 20
)

// Broadcast distributes the root's value to every processor and returns it.
// bytes is the on-the-wire size of the value.
func Broadcast[T any](p *machine.Proc, root int, val T, bytes int) T {
	size := p.Procs()
	if size == 1 {
		return val
	}
	rel := relRank(p.ID(), root, size)
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := absRank(rel-mask, root, size)
			val = p.Recv(src, tagBroadcast+mask).(T)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel&(mask-1) == 0 && rel&mask == 0 && rel+mask < size {
			dst := absRank(rel+mask, root, size)
			p.Send(dst, tagBroadcast+mask, val, bytes)
		}
	}
	return val
}

// BroadcastSlice distributes the root's slice to every processor. Non-root
// inputs are ignored. The returned slice must not be mutated by receivers
// that share memory with the root in-process; callers that need ownership
// should copy.
func BroadcastSlice[T any](p *machine.Proc, root int, vals []T, elemBytes int) []T {
	size := p.Procs()
	if size == 1 {
		return vals
	}
	rel := relRank(p.ID(), root, size)
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := absRank(rel-mask, root, size)
			vals = p.Recv(src, tagBroadcast+mask).([]T)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel&(mask-1) == 0 && rel&mask == 0 && rel+mask < size {
			dst := absRank(rel+mask, root, size)
			p.Send(dst, tagBroadcast+mask, vals, len(vals)*elemBytes)
		}
	}
	return vals
}

// Reduce combines one value per processor with a commutative, associative
// op and leaves the result on root. The second return is true only on root.
func Reduce[T any](p *machine.Proc, root int, val T, bytes int, op func(T, T) T) (T, bool) {
	size := p.Procs()
	if size == 1 {
		return val, true
	}
	rel := relRank(p.ID(), root, size)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < size {
				src := absRank(srcRel, root, size)
				other := p.Recv(src, tagReduce+mask).(T)
				val = op(val, other)
			}
		} else {
			dst := absRank(rel&^mask, root, size)
			p.Send(dst, tagReduce+mask, val, bytes)
			var zero T
			return zero, false
		}
	}
	return val, true
}

// Combine is the paper's Combine primitive: an all-reduce. Every processor
// contributes val and receives op applied across all contributions.
func Combine[T any](p *machine.Proc, val T, bytes int, op func(T, T) T) T {
	res, ok := Reduce(p, 0, val, bytes, op)
	if p.Procs() == 1 {
		return res
	}
	if !ok {
		var zero T
		res = zero
	}
	return Broadcast(p, 0, res, bytes)
}

// Prefix computes the inclusive parallel prefix of val under the
// associative op: processor i returns op(x0, x1, ..., xi). Implemented as a
// dissemination (Hillis–Steele) scan in ceil(log2 p) rounds for any p.
func Prefix[T any](p *machine.Proc, val T, bytes int, op func(T, T) T) T {
	size := p.Procs()
	me := p.ID()
	acc := val
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		if me+pow < size {
			p.Send(me+pow, tagPrefix+round, acc, bytes)
		}
		if me-pow >= 0 {
			left := p.Recv(me-pow, tagPrefix+round).(T)
			acc = op(left, acc)
		}
	}
	return acc
}

// gatherBlock is a contiguous run of per-processor slices in relative-rank
// order, used internally by the binomial gather tree.
type gatherBlock[T any] struct {
	start int // relative rank of the first slice
	parts [][]T
}

// Gatherv collects a variable-length slice from every processor on root.
// On root the result has one entry per processor (indexed by absolute
// rank); on other processors it is nil. Cost O(tau log p + mu * total).
func Gatherv[T any](p *machine.Proc, root int, vals []T, elemBytes int) [][]T {
	size := p.Procs()
	if size == 1 {
		return [][]T{vals}
	}
	me := p.ID()
	rel := relRank(me, root, size)
	block := gatherBlock[T]{start: rel, parts: [][]T{vals}}
	blockBytes := len(vals) * elemBytes
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel + mask
			if srcRel < size {
				src := absRank(srcRel, root, size)
				in := p.Recv(src, tagGather+mask).(gatherBlock[T])
				block.parts = append(block.parts, in.parts...)
				for _, part := range in.parts {
					blockBytes += len(part) * elemBytes
				}
			}
		} else {
			dst := absRank(rel-mask, root, size)
			p.Send(dst, tagGather+mask, block, blockBytes)
			return nil
		}
	}
	// Root: block.parts[i] is the slice of relative rank i; unrotate.
	out := make([][]T, size)
	for i, part := range block.parts {
		out[(i+root)%size] = part
	}
	return out
}

// Gather collects one value per processor on root (absolute-rank order).
// On non-roots the result is nil.
func Gather[T any](p *machine.Proc, root int, val T, bytes int) []T {
	parts := Gatherv(p, root, []T{val}, bytes)
	if parts == nil {
		return nil
	}
	out := make([]T, len(parts))
	for i, part := range parts {
		out[i] = part[0]
	}
	return out
}

// GatherFlat gathers variable-length slices on root and concatenates them
// in absolute-rank order. Non-roots receive nil.
func GatherFlat[T any](p *machine.Proc, root int, vals []T, elemBytes int) []T {
	parts := Gatherv(p, root, vals, elemBytes)
	if parts == nil {
		return nil
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// flatRun is a contiguous run of relative-rank blocks already flattened
// into one slice, the payload of the allocation-light gather tree.
type flatRun[T any] struct {
	data []T
}

// GatherFlatInto is GatherFlat with caller-provided storage: every
// processor passes its own reusable buffer (dst may be nil), interior tree
// nodes flatten their subtree into it, and the root's buffer carries the
// final concatenation. It returns the gathered slice (nil on non-roots)
// and the possibly grown buffer, which the caller should retain for the
// next call. Tree shape, tags and byte counts are identical to GatherFlat;
// only host-side allocation differs. Requires root 0 (all hot callers
// gather on processor 0); other roots fall back to GatherFlat.
func GatherFlatInto[T any](p *machine.Proc, root int, vals []T, elemBytes int, dst []T) (out, buf []T) {
	size := p.Procs()
	if root != 0 {
		// The flat representation loses per-processor boundaries, which
		// the rank rotation of a non-zero root would need.
		flat := GatherFlat(p, root, vals, elemBytes)
		if flat == nil {
			return nil, dst
		}
		buf = append(dst[:0], flat...)
		return buf, buf
	}
	if size == 1 {
		buf = append(dst[:0], vals...)
		return buf, buf
	}
	rel := p.ID()
	buf = append(dst[:0], vals...)
	bufBytes := len(vals) * elemBytes
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel + mask
			if srcRel < size {
				in := p.Recv(srcRel, tagGather+mask).(flatRun[T])
				buf = append(buf, in.data...)
				bufBytes += len(in.data) * elemBytes
			}
		} else {
			p.Send(rel-mask, tagGather+mask, flatRun[T]{buf}, bufBytes)
			return nil, buf
		}
	}
	return buf, buf
}

// GlobalConcatv is the paper's Global Concatenate for variable-length
// slices: every processor receives all p slices, indexed by absolute rank.
// Implemented with the Bruck all-gather: ceil(log2 p) rounds, total data
// moved per processor O(sum of slice sizes), so O(tau log p + mu p m).
func GlobalConcatv[T any](p *machine.Proc, vals []T, elemBytes int) [][]T {
	size := p.Procs()
	if size == 1 {
		return [][]T{vals}
	}
	me := p.ID()
	// have[i] holds the slice of processor (me+i) mod size.
	have := make([][]T, 1, size)
	have[0] = vals
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		cnt := pow
		if size-pow < cnt {
			cnt = size - pow
		}
		dst := (me - pow + size) % size
		src := (me + pow) % size
		bytes := 0
		for _, blk := range have[:cnt] {
			bytes += len(blk) * elemBytes
		}
		p.Send(dst, tagConcat+round, have[:cnt:cnt], bytes)
		in := p.Recv(src, tagConcat+round).([][]T)
		have = append(have, in...)
	}
	out := make([][]T, size)
	for i := 0; i < size; i++ {
		out[(me+i)%size] = have[i]
	}
	return out
}

// GlobalConcat gathers one value per processor onto all processors
// (absolute-rank order). This is the paper's Global Concatenate.
func GlobalConcat[T any](p *machine.Proc, val T, bytes int) []T {
	parts := GlobalConcatv(p, []T{val}, bytes)
	out := make([]T, len(parts))
	for i, part := range parts {
		out[i] = part[0]
	}
	return out
}

// Transport is the transportation primitive: many-to-many personalized
// communication with possibly high variance in message sizes. out[j] holds
// the elements destined for processor j (out[me] is delivered locally).
// The result is indexed by source processor. Counts are exchanged first
// with a Global Concatenate; use TransportKnown when receivers already
// know their incoming counts (the load balancers do).
func Transport[T any](p *machine.Proc, out [][]T, elemBytes int) [][]T {
	size := p.Procs()
	if len(out) != size {
		panic("comm: Transport requires exactly one out slice per processor")
	}
	myCounts := make([]int64, size)
	for j, block := range out {
		myCounts[j] = int64(len(block))
	}
	all, _ := GlobalConcatInt64Flat(p, myCounts, nil)
	inCounts := myCounts
	for src := 0; src < size; src++ {
		inCounts[src] = all[src*size+p.ID()]
	}
	return TransportKnown(p, out, inCounts, elemBytes)
}

// TransportKnown performs the transportation primitive when every receiver
// already knows how many elements arrive from each source (inCounts[src]).
// Only non-empty messages are sent. Communication is scheduled pairwise
// (step k exchanges with ranks me±k) to avoid hot spots, giving the
// ~2*mu*t behaviour the paper cites for bounded in/out traffic t.
func TransportKnown[T any](p *machine.Proc, out [][]T, inCounts []int64, elemBytes int) [][]T {
	return TransportKnownInto(p, out, inCounts, elemBytes, nil)
}

// TransportKnownInto is TransportKnown with a caller-provided result
// buffer for the p incoming block headers (grown as needed).
func TransportKnownInto[T any](p *machine.Proc, out [][]T, inCounts []int64, elemBytes int, in [][]T) [][]T {
	size := p.Procs()
	me := p.ID()
	if len(out) != size || len(inCounts) != size {
		panic("comm: TransportKnown requires p outgoing blocks and p incoming counts")
	}
	if cap(in) < size {
		in = make([][]T, size)
	}
	in = in[:size]
	for i := range in {
		in[i] = nil
	}
	if len(out[me]) > 0 {
		in[me] = out[me]
	}
	for k := 1; k < size; k++ {
		dst := (me + k) % size
		src := (me - k + size) % size
		if len(out[dst]) > 0 {
			p.Send(dst, tagTransport+k, out[dst], len(out[dst])*elemBytes)
		}
		if inCounts[src] > 0 {
			blk := p.Recv(src, tagTransport+k).([]T)
			if int64(len(blk)) != inCounts[src] {
				panic("comm: TransportKnown received unexpected element count")
			}
			in[src] = blk
		}
	}
	return in
}

// Barrier synchronises all processors (dissemination barrier, any p).
// Simulated clocks advance to a common frontier through the message
// arrival rule.
func Barrier(p *machine.Proc) {
	size := p.Procs()
	me := p.ID()
	for pow, round := 1, 0; pow < size; pow, round = pow<<1, round+1 {
		dst := (me + pow) % size
		src := (me - pow + size) % size
		p.Send(dst, tagBarrier+round, nil, 0)
		p.Recv(src, tagBarrier+round)
	}
}

// relRank maps an absolute rank to its rank relative to root.
func relRank(id, root, size int) int { return (id - root + size) % size }

// absRank maps a root-relative rank back to an absolute rank.
func absRank(rel, root, size int) int { return (rel + root) % size }
