package parsel

import "testing"

// TestSimulatedTimeRegressionBands pins the simulated cost model: a fixed
// configuration must land inside a generous band. Failures here mean the
// cost model changed (deliberately or not) and EXPERIMENTS.md needs
// re-running — the bands are wide enough to survive algorithmic noise
// across seeds but not a mispriced tau, mu or SecPerOp.
func TestSimulatedTimeRegressionBands(t *testing.T) {
	if testing.Short() {
		t.Skip("0.5M-element runs")
	}
	vals := make([]int64, 512<<10)
	x := uint64(2463534242)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = int64(x >> 20)
	}
	shards := shardInts(vals, 16)

	cases := []struct {
		name   string
		opts   Options
		lo, hi float64
	}{
		{"randomized", Options{Algorithm: Randomized, Balancer: NoBalance}, 0.04, 0.40},
		{"fastrand-faithful", Options{Algorithm: FastRandomized, Balancer: NoBalance, Faithful: true}, 0.05, 0.50},
		{"mom", Options{Algorithm: MedianOfMedians, Balancer: GlobalExchange}, 0.20, 1.60},
		{"bucket", Options{Algorithm: BucketBased}, 0.15, 1.40},
	}
	for _, tc := range cases {
		res, err := Median(shards, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.SimSeconds < tc.lo || res.SimSeconds > tc.hi {
			t.Errorf("%s: simulated %g s outside regression band [%g, %g]",
				tc.name, res.SimSeconds, tc.lo, tc.hi)
		}
		// The pooled serving path must stay inside the same band — and,
		// stronger, reproduce the one-shot simulated time bit-for-bit,
		// on a cold machine and on a warm reused one.
		pool, err := NewPool[int64](tc.opts, PoolOptions{MaxMachines: 2})
		if err != nil {
			t.Fatalf("%s: pool: %v", tc.name, err)
		}
		for _, pass := range []string{"cold", "warm"} {
			pres, err := pool.Median(shards)
			if err != nil {
				t.Fatalf("%s: pooled median (%s): %v", tc.name, pass, err)
			}
			if pres.SimSeconds < tc.lo || pres.SimSeconds > tc.hi {
				t.Errorf("%s: pooled (%s) simulated %g s outside regression band [%g, %g]",
					tc.name, pass, pres.SimSeconds, tc.lo, tc.hi)
			}
			if pres.SimSeconds != res.SimSeconds {
				t.Errorf("%s: pooled (%s) simulated %g s != one-shot %g s",
					tc.name, pass, pres.SimSeconds, res.SimSeconds)
			}
		}
		pool.Close()
	}
}
