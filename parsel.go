// Package parsel is a library of practical selection algorithms for
// coarse-grained parallel machines, reproducing Al-Furaih, Aluru, Goil and
// Ranka, "Practical Algorithms for Selection on Coarse-Grained Parallel
// Computers" (IPPS 1996).
//
// Given a dataset sharded across p (simulated) processors, parsel finds
// the element of any rank — median, quantiles, extremes — without sorting,
// using one of four parallel algorithms (two deterministic, two
// randomized) and optionally one of four dynamic load balancers. The
// processors are goroutines connected by a virtual crossbar whose
// communication is priced with the paper's two-level (tau, mu) cost
// model, so results carry both a wall-clock time and a simulated parallel
// time that reproduces the paper's CM-5 measurements in shape.
//
// Quick start:
//
//	shards := [][]int64{{9, 1, 5}, {3, 7, 2}}       // 2 processors
//	res, err := parsel.Select(shards, 3, parsel.Options{})
//	// res.Value == 3, the 3rd smallest of {1,2,3,5,7,9}
//
// The Options zero value picks the paper's overall winner: fast
// randomized selection with modified order-maintaining load balancing on
// a CM-5-like machine.
package parsel

import (
	"cmp"
	"errors"
	"fmt"
	"time"

	"parsel/internal/balance"
	"parsel/internal/machine"
	"parsel/internal/selection"
)

// Algorithm selects the parallel selection algorithm (paper §3).
type Algorithm int

const (
	// FastRandomized is Alg. 4: O(log log n) sampling iterations; the
	// paper's recommendation for all input distributions. The default.
	FastRandomized Algorithm = iota
	// Randomized is Alg. 3: single random pivot per iteration; fastest
	// on well-behaved (random) data.
	Randomized
	// MedianOfMedians is Alg. 1: deterministic; an order of magnitude
	// slower than the randomized algorithms but worst-case O(log n)
	// iterations with certainty.
	MedianOfMedians
	// BucketBased is Alg. 2: deterministic with local bucket
	// preprocessing; the faster deterministic choice, needing no load
	// balancing.
	BucketBased
	// MedianOfMediansHybrid and BucketBasedHybrid keep the
	// deterministic parallel structure but use randomized sequential
	// kernels (the §5 hybrid experiment).
	MedianOfMediansHybrid
	// BucketBasedHybrid is the bucket-based hybrid; see
	// MedianOfMediansHybrid.
	BucketBasedHybrid
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string { return toInternalAlg(a).String() }

// Balancer selects the dynamic load-balancing strategy (paper §4).
type Balancer int

const (
	// ModifiedOMLB retains min(ni, navg) locally and moves only the
	// excess (Alg. 5) — the paper's best partner for fast randomized
	// selection on adversarial data. The default.
	ModifiedOMLB Balancer = iota
	// NoBalance disables balancing — the paper's best choice for
	// randomized selection and for random data generally.
	NoBalance
	// OMLB preserves the global element order while balancing (§4.1).
	OMLB
	// DimensionExchange balances pairwise along hypercube dimensions
	// (Alg. 6).
	DimensionExchange
	// GlobalExchange pairs the fullest processors with the emptiest
	// (Alg. 7).
	GlobalExchange
)

// String names the balancer as in the paper's figures.
func (b Balancer) String() string { return toInternalBal(b).String() }

// Topology selects the interconnection network used to price messages.
// The paper's model is the distance-independent crossbar (§2.1); the
// other shapes add a per-hop latency so the crossbar abstraction can be
// stress-tested.
type Topology int

const (
	// TopologyCrossbar is the paper's model (the default).
	TopologyCrossbar Topology = iota
	// TopologyHypercube routes along differing rank bits.
	TopologyHypercube
	// TopologyMesh2D routes X-then-Y on a near-square grid.
	TopologyMesh2D
	// TopologyRing routes along the shorter arc of a cycle.
	TopologyRing
)

// String names the topology.
func (t Topology) String() string { return machine.Topology(t).String() }

// Machine describes the simulated coarse-grained machine. The zero value
// of each field is replaced by the CM-5-like default.
type Machine struct {
	// Procs is the number of simulated processors (default 8).
	Procs int
	// Tau is the message start-up overhead (default 100 microseconds).
	Tau time.Duration
	// BytesPerSecond is the per-link bandwidth, the inverse of the
	// paper's mu (default 8 MB/s).
	BytesPerSecond float64
	// SecondsPerOp prices one counted element operation (default: 10
	// cycles at 33 MHz — memory-bound kernels).
	SecondsPerOp float64
	// Seed drives every random stream (default 1).
	Seed uint64
	// Topology prices messages by routing distance (default crossbar,
	// the paper's model).
	Topology Topology
	// PerHop is the extra latency per hop beyond the first for
	// non-crossbar topologies (default Tau/20, wormhole-like).
	PerHop time.Duration
}

// Options configures Select and friends. The zero value means: fast
// randomized selection with modified OMLB balancing on an 8-processor
// CM-5-like machine (the number of processors is overridden by the number
// of shards passed in; see Select).
type Options struct {
	// Algorithm picks the selection algorithm (default FastRandomized).
	Algorithm Algorithm
	// Balancer picks the load balancer (default ModifiedOMLB; ignored
	// by the bucket-based algorithms, which never balance).
	Balancer Balancer
	// Machine configures the simulated hardware. Machine.Procs is
	// ignored by the sharded entry points, which use one processor per
	// shard.
	Machine Machine
	// SampleExponent and RankSlack tune the fast randomized algorithm;
	// zero means the paper's values (0.6 and 1.0).
	SampleExponent float64
	RankSlack      float64
	// MaxIterations caps pivot iterations before the safety fallback
	// (default 200).
	MaxIterations int
	// Faithful forces the fast randomized algorithm to follow the
	// paper's Alg. 4 exactly (parallel sample sort every iteration,
	// uncapped rank-window slack). Leave false for best performance;
	// set for paper-faithful runs.
	Faithful bool
}

// Report describes one collective run.
type Report struct {
	// SimSeconds is the simulated parallel time (the paper's metric):
	// the maximum over processors of communication plus priced
	// computation.
	SimSeconds float64
	// BalanceSeconds is the simulated time spent inside load balancing
	// (maximum over processors).
	BalanceSeconds float64
	// WallSeconds is the host wall-clock time of the run.
	WallSeconds float64
	// Iterations is the number of parallel pivot iterations.
	Iterations int
	// Unsuccessful counts fast randomized iterations whose sample
	// window missed the target rank.
	Unsuccessful int
	// Messages and Bytes total the point-to-point traffic across all
	// processors.
	Messages int64
	// Bytes is the total number of bytes sent across all processors.
	Bytes int64
}

// Result is a selection outcome.
type Result[K cmp.Ordered] struct {
	Value K
	Report
}

// errors returned by argument validation.
var (
	ErrNoData      = errors.New("parsel: no elements")
	ErrRankRange   = errors.New("parsel: rank out of range")
	ErrNoShards    = errors.New("parsel: need at least one shard")
	ErrBadQuantile = errors.New("parsel: quantile must be in [0,1]")
)

// Select returns the element of 1-based rank among all elements of
// shards, running one simulated processor per shard. Shards may have any
// (including zero) lengths; shard contents are not modified.
func Select[K cmp.Ordered](shards [][]K, rank int64, opts Options) (Result[K], error) {
	var zero Result[K]
	if len(shards) == 0 {
		return zero, ErrNoShards
	}
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	if n == 0 {
		return zero, ErrNoData
	}
	if rank < 1 || rank > n {
		return zero, fmt.Errorf("%w: rank %d, population %d", ErrRankRange, rank, n)
	}
	return run(shards, rank, opts)
}

// Median returns the element of rank ceil(n/2) (the paper's median).
func Median[K cmp.Ordered](shards [][]K, opts Options) (Result[K], error) {
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	return Select(shards, (n+1)/2, opts)
}

// Quantile returns the element of rank ceil(q*n) for q in (0,1], and the
// minimum for q = 0.
func Quantile[K cmp.Ordered](shards [][]K, q float64, opts Options) (Result[K], error) {
	var zero Result[K]
	if q < 0 || q > 1 {
		return zero, fmt.Errorf("%w: %g", ErrBadQuantile, q)
	}
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	if n == 0 {
		if len(shards) == 0 {
			return zero, ErrNoShards
		}
		return zero, ErrNoData
	}
	rank := int64(float64(n)*q + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return Select(shards, rank, opts)
}

// SelectRanks returns the elements at several 1-based ranks in one
// collective run, sharing partitioning work across the ranks (roughly one
// selection's cost for a handful of ranks). Ranks may repeat and appear
// in any order; results align with the request. Options.Balancer is
// ignored (multi-rank segments alias storage and cannot migrate).
func SelectRanks[K cmp.Ordered](shards [][]K, ranks []int64, opts Options) ([]K, Report, error) {
	if len(shards) == 0 {
		return nil, Report{}, ErrNoShards
	}
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	if n == 0 {
		return nil, Report{}, ErrNoData
	}
	for _, r := range ranks {
		if r < 1 || r > n {
			return nil, Report{}, fmt.Errorf("%w: rank %d, population %d", ErrRankRange, r, n)
		}
	}
	p := len(shards)
	params, err := opts.Machine.params(p)
	if err != nil {
		return nil, Report{}, err
	}
	iopts := selection.Options{
		MaxIterations: opts.MaxIterations,
	}
	vals := make([][]K, p)
	stats := make([]selection.Stats, p)
	counters := make([]machine.Counters, p)
	start := time.Now()
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		local := make([]K, len(shards[pr.ID()]))
		copy(local, shards[pr.ID()])
		vals[pr.ID()], stats[pr.ID()] = selection.SelectMany(pr, local, ranks, iopts)
		counters[pr.ID()] = pr.Counters
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return nil, Report{}, err
	}
	rep := Report{SimSeconds: sim, WallSeconds: wall}
	for i := range stats {
		if stats[i].Iterations > rep.Iterations {
			rep.Iterations = stats[i].Iterations
		}
		rep.Messages += counters[i].MsgsSent
		rep.Bytes += counters[i].BytesSent
	}
	return vals[0], rep, nil
}

// Quantiles returns the elements at several quantiles (each in [0,1]) in
// one collective run; see SelectRanks.
func Quantiles[K cmp.Ordered](shards [][]K, qs []float64, opts Options) ([]K, Report, error) {
	var n int64
	for _, s := range shards {
		n += int64(len(s))
	}
	if len(shards) == 0 {
		return nil, Report{}, ErrNoShards
	}
	if n == 0 {
		return nil, Report{}, ErrNoData
	}
	ranks := make([]int64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, Report{}, fmt.Errorf("%w: %g", ErrBadQuantile, q)
		}
		r := int64(float64(n)*q + 0.9999999)
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		ranks[i] = r
	}
	return SelectRanks(shards, ranks, opts)
}

// run executes the collective selection.
func run[K cmp.Ordered](shards [][]K, rank int64, opts Options) (Result[K], error) {
	p := len(shards)
	params, err := opts.Machine.params(p)
	if err != nil {
		return Result[K]{}, err
	}
	iopts := selection.Options{
		Algorithm:      toInternalAlg(opts.Algorithm),
		Balancer:       toInternalBal(opts.Balancer),
		SampleExponent: opts.SampleExponent,
		RankSlack:      opts.RankSlack,
		MaxIterations:  opts.MaxIterations,
		Faithful:       opts.Faithful,
	}

	vals := make([]K, p)
	stats := make([]selection.Stats, p)
	counters := make([]machine.Counters, p)
	start := time.Now()
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		local := make([]K, len(shards[pr.ID()]))
		copy(local, shards[pr.ID()])
		vals[pr.ID()], stats[pr.ID()] = selection.Select(pr, local, rank, iopts)
		counters[pr.ID()] = pr.Counters
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return Result[K]{}, err
	}

	rep := Report{SimSeconds: sim, WallSeconds: wall}
	for i := range stats {
		if stats[i].BalanceSeconds > rep.BalanceSeconds {
			rep.BalanceSeconds = stats[i].BalanceSeconds
		}
		if stats[i].Iterations > rep.Iterations {
			rep.Iterations = stats[i].Iterations
		}
		if stats[i].Unsuccessful > rep.Unsuccessful {
			rep.Unsuccessful = stats[i].Unsuccessful
		}
		rep.Messages += counters[i].MsgsSent
		rep.Bytes += counters[i].BytesSent
	}
	return Result[K]{Value: vals[0], Report: rep}, nil
}

// Balance redistributes shards so that every shard ends with floor(n/p)
// or ceil(n/p) elements, using the configured balancer. It returns the
// new shards and a report. Shard contents are not modified.
func Balance[K cmp.Ordered](shards [][]K, opts Options) ([][]K, Report, error) {
	p := len(shards)
	if p == 0 {
		return nil, Report{}, ErrNoShards
	}
	params, err := opts.Machine.params(p)
	if err != nil {
		return nil, Report{}, err
	}
	method := toInternalBal(opts.Balancer)
	out := make([][]K, p)
	counters := make([]machine.Counters, p)
	start := time.Now()
	sim, err := machine.Run(params, func(pr *machine.Proc) {
		local := make([]K, len(shards[pr.ID()]))
		copy(local, shards[pr.ID()])
		out[pr.ID()] = balance.Run(pr, local, method, machine.WordBytes)
		counters[pr.ID()] = pr.Counters
	})
	if err != nil {
		return nil, Report{}, err
	}
	rep := Report{SimSeconds: sim, BalanceSeconds: sim, WallSeconds: time.Since(start).Seconds()}
	for i := range counters {
		rep.Messages += counters[i].MsgsSent
		rep.Bytes += counters[i].BytesSent
	}
	return out, rep, nil
}

// params converts the public machine description to internal parameters.
func (m Machine) params(procs int) (machine.Params, error) {
	params := machine.DefaultParams(procs)
	if m.Tau > 0 {
		params.TauSec = m.Tau.Seconds()
	}
	if m.BytesPerSecond > 0 {
		params.MuSecPerByte = 1 / m.BytesPerSecond
	}
	if m.SecondsPerOp > 0 {
		params.SecPerOp = m.SecondsPerOp
	}
	if m.Seed != 0 {
		params.Seed = m.Seed
	}
	params.Topology = machine.Topology(m.Topology)
	if m.PerHop > 0 {
		params.PerHopSec = m.PerHop.Seconds()
	}
	if err := params.Validate(); err != nil {
		return machine.Params{}, err
	}
	return params, nil
}

// toInternalAlg maps the public algorithm enum (default-first) onto the
// internal one (paper order).
func toInternalAlg(a Algorithm) selection.Algorithm {
	switch a {
	case FastRandomized:
		return selection.FastRandomized
	case Randomized:
		return selection.Randomized
	case MedianOfMedians:
		return selection.MedianOfMedians
	case BucketBased:
		return selection.BucketBased
	case MedianOfMediansHybrid:
		return selection.MedianOfMediansHybrid
	case BucketBasedHybrid:
		return selection.BucketBasedHybrid
	default:
		panic(fmt.Sprintf("parsel: unknown algorithm %d", int(a)))
	}
}

// toInternalBal maps the public balancer enum (default-first) onto the
// internal one.
func toInternalBal(b Balancer) balance.Method {
	switch b {
	case ModifiedOMLB:
		return balance.ModifiedOMLB
	case NoBalance:
		return balance.None
	case OMLB:
		return balance.OMLB
	case DimensionExchange:
		return balance.DimensionExchange
	case GlobalExchange:
		return balance.GlobalExchange
	default:
		panic(fmt.Sprintf("parsel: unknown balancer %d", int(b)))
	}
}
